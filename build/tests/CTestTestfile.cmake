# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bytes[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_dns_name[1]_include.cmake")
include("/root/repo/build/tests/test_dns_message[1]_include.cmake")
include("/root/repo/build/tests/test_dns_edge[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_zone[1]_include.cmake")
include("/root/repo/build/tests/test_zone_parser[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_resolver[1]_include.cmake")
include("/root/repo/build/tests/test_resolver_stress[1]_include.cmake")
include("/root/repo/build/tests/test_ratelimit[1]_include.cmake")
include("/root/repo/build/tests/test_cookie_engine[1]_include.cmake")
include("/root/repo/build/tests/test_guard_schemes[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_local_guard[1]_include.cmake")
include("/root/repo/build/tests/test_attack[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_authoritative[1]_include.cmake")
include("/root/repo/build/tests/test_attack_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_system_properties[1]_include.cmake")
include("/root/repo/build/tests/test_guard_fuzz[1]_include.cmake")
