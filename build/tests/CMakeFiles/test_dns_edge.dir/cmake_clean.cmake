file(REMOVE_RECURSE
  "CMakeFiles/test_dns_edge.dir/test_dns_edge.cpp.o"
  "CMakeFiles/test_dns_edge.dir/test_dns_edge.cpp.o.d"
  "test_dns_edge"
  "test_dns_edge.pdb"
  "test_dns_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
