file(REMOVE_RECURSE
  "CMakeFiles/test_zone.dir/test_zone.cpp.o"
  "CMakeFiles/test_zone.dir/test_zone.cpp.o.d"
  "test_zone"
  "test_zone.pdb"
  "test_zone[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
