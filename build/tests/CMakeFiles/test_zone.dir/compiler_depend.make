# Empty compiler generated dependencies file for test_zone.
# This may be replaced when dependencies are built.
