file(REMOVE_RECURSE
  "CMakeFiles/test_zone_parser.dir/test_zone_parser.cpp.o"
  "CMakeFiles/test_zone_parser.dir/test_zone_parser.cpp.o.d"
  "test_zone_parser"
  "test_zone_parser.pdb"
  "test_zone_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zone_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
