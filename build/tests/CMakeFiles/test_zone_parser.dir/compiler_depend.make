# Empty compiler generated dependencies file for test_zone_parser.
# This may be replaced when dependencies are built.
