file(REMOVE_RECURSE
  "CMakeFiles/test_guard_schemes.dir/test_guard_schemes.cpp.o"
  "CMakeFiles/test_guard_schemes.dir/test_guard_schemes.cpp.o.d"
  "test_guard_schemes"
  "test_guard_schemes.pdb"
  "test_guard_schemes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guard_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
