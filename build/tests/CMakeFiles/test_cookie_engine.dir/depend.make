# Empty dependencies file for test_cookie_engine.
# This may be replaced when dependencies are built.
