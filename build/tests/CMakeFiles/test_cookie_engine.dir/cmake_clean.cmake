file(REMOVE_RECURSE
  "CMakeFiles/test_cookie_engine.dir/test_cookie_engine.cpp.o"
  "CMakeFiles/test_cookie_engine.dir/test_cookie_engine.cpp.o.d"
  "test_cookie_engine"
  "test_cookie_engine.pdb"
  "test_cookie_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cookie_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
