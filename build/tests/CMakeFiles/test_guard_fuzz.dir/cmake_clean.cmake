file(REMOVE_RECURSE
  "CMakeFiles/test_guard_fuzz.dir/test_guard_fuzz.cpp.o"
  "CMakeFiles/test_guard_fuzz.dir/test_guard_fuzz.cpp.o.d"
  "test_guard_fuzz"
  "test_guard_fuzz.pdb"
  "test_guard_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guard_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
