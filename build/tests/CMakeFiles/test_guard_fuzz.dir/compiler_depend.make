# Empty compiler generated dependencies file for test_guard_fuzz.
# This may be replaced when dependencies are built.
