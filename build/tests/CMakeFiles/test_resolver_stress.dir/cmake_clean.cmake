file(REMOVE_RECURSE
  "CMakeFiles/test_resolver_stress.dir/test_resolver_stress.cpp.o"
  "CMakeFiles/test_resolver_stress.dir/test_resolver_stress.cpp.o.d"
  "test_resolver_stress"
  "test_resolver_stress.pdb"
  "test_resolver_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolver_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
