# Empty dependencies file for test_resolver_stress.
# This may be replaced when dependencies are built.
