# Empty dependencies file for test_ratelimit.
# This may be replaced when dependencies are built.
