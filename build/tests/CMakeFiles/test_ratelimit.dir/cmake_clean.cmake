file(REMOVE_RECURSE
  "CMakeFiles/test_ratelimit.dir/test_ratelimit.cpp.o"
  "CMakeFiles/test_ratelimit.dir/test_ratelimit.cpp.o.d"
  "test_ratelimit"
  "test_ratelimit.pdb"
  "test_ratelimit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ratelimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
