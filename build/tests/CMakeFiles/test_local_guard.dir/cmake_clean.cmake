file(REMOVE_RECURSE
  "CMakeFiles/test_local_guard.dir/test_local_guard.cpp.o"
  "CMakeFiles/test_local_guard.dir/test_local_guard.cpp.o.d"
  "test_local_guard"
  "test_local_guard.pdb"
  "test_local_guard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
