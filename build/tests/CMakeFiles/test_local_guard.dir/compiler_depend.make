# Empty compiler generated dependencies file for test_local_guard.
# This may be replaced when dependencies are built.
