# Empty compiler generated dependencies file for test_authoritative.
# This may be replaced when dependencies are built.
