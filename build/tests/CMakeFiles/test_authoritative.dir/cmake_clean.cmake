file(REMOVE_RECURSE
  "CMakeFiles/test_authoritative.dir/test_authoritative.cpp.o"
  "CMakeFiles/test_authoritative.dir/test_authoritative.cpp.o.d"
  "test_authoritative"
  "test_authoritative.pdb"
  "test_authoritative[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_authoritative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
