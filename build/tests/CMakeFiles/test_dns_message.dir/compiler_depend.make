# Empty compiler generated dependencies file for test_dns_message.
# This may be replaced when dependencies are built.
