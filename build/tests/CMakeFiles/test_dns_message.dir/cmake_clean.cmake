file(REMOVE_RECURSE
  "CMakeFiles/test_dns_message.dir/test_dns_message.cpp.o"
  "CMakeFiles/test_dns_message.dir/test_dns_message.cpp.o.d"
  "test_dns_message"
  "test_dns_message.pdb"
  "test_dns_message[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
