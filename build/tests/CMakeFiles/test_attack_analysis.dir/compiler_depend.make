# Empty compiler generated dependencies file for test_attack_analysis.
# This may be replaced when dependencies are built.
