file(REMOVE_RECURSE
  "CMakeFiles/test_attack_analysis.dir/test_attack_analysis.cpp.o"
  "CMakeFiles/test_attack_analysis.dir/test_attack_analysis.cpp.o.d"
  "test_attack_analysis"
  "test_attack_analysis.pdb"
  "test_attack_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
