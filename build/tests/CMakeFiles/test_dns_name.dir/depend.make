# Empty dependencies file for test_dns_name.
# This may be replaced when dependencies are built.
