file(REMOVE_RECURSE
  "CMakeFiles/test_dns_name.dir/test_dns_name.cpp.o"
  "CMakeFiles/test_dns_name.dir/test_dns_name.cpp.o.d"
  "test_dns_name"
  "test_dns_name.pdb"
  "test_dns_name[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_name.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
