# Empty compiler generated dependencies file for fig6_guard_under_attack.
# This may be replaced when dependencies are built.
