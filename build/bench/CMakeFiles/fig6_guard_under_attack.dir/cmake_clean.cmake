file(REMOVE_RECURSE
  "CMakeFiles/fig6_guard_under_attack.dir/fig6_guard_under_attack.cpp.o"
  "CMakeFiles/fig6_guard_under_attack.dir/fig6_guard_under_attack.cpp.o.d"
  "fig6_guard_under_attack"
  "fig6_guard_under_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_guard_under_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
