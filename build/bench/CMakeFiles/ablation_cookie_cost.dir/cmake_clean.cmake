file(REMOVE_RECURSE
  "CMakeFiles/ablation_cookie_cost.dir/ablation_cookie_cost.cpp.o"
  "CMakeFiles/ablation_cookie_cost.dir/ablation_cookie_cost.cpp.o.d"
  "ablation_cookie_cost"
  "ablation_cookie_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cookie_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
