# Empty dependencies file for ablation_cookie_cost.
# This may be replaced when dependencies are built.
