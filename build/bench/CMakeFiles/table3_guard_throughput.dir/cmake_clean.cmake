file(REMOVE_RECURSE
  "CMakeFiles/table3_guard_throughput.dir/table3_guard_throughput.cpp.o"
  "CMakeFiles/table3_guard_throughput.dir/table3_guard_throughput.cpp.o.d"
  "table3_guard_throughput"
  "table3_guard_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_guard_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
