# Empty dependencies file for table3_guard_throughput.
# This may be replaced when dependencies are built.
