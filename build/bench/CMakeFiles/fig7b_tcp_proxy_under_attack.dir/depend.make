# Empty dependencies file for fig7b_tcp_proxy_under_attack.
# This may be replaced when dependencies are built.
