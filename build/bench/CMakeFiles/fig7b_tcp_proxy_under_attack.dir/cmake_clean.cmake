file(REMOVE_RECURSE
  "CMakeFiles/fig7b_tcp_proxy_under_attack.dir/fig7b_tcp_proxy_under_attack.cpp.o"
  "CMakeFiles/fig7b_tcp_proxy_under_attack.dir/fig7b_tcp_proxy_under_attack.cpp.o.d"
  "fig7b_tcp_proxy_under_attack"
  "fig7b_tcp_proxy_under_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_tcp_proxy_under_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
