# Empty compiler generated dependencies file for fig5_bind_under_attack.
# This may be replaced when dependencies are built.
