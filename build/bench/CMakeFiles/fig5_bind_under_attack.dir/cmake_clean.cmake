file(REMOVE_RECURSE
  "CMakeFiles/fig5_bind_under_attack.dir/fig5_bind_under_attack.cpp.o"
  "CMakeFiles/fig5_bind_under_attack.dir/fig5_bind_under_attack.cpp.o.d"
  "fig5_bind_under_attack"
  "fig5_bind_under_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bind_under_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
