# Empty dependencies file for ablation_ry_range.
# This may be replaced when dependencies are built.
