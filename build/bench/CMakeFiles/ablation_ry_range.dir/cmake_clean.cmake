file(REMOVE_RECURSE
  "CMakeFiles/ablation_ry_range.dir/ablation_ry_range.cpp.o"
  "CMakeFiles/ablation_ry_range.dir/ablation_ry_range.cpp.o.d"
  "ablation_ry_range"
  "ablation_ry_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ry_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
