
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_ry_range.cpp" "bench/CMakeFiles/ablation_ry_range.dir/ablation_ry_range.cpp.o" "gcc" "bench/CMakeFiles/ablation_ry_range.dir/ablation_ry_range.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dnsguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dnsguard_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dnsguard_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnsguard_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dnsguard_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/dnsguard_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/dnsguard_server.dir/DependInfo.cmake"
  "/root/repo/build/src/ratelimit/CMakeFiles/dnsguard_ratelimit.dir/DependInfo.cmake"
  "/root/repo/build/src/guard/CMakeFiles/dnsguard_guard.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/dnsguard_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dnsguard_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
