# Empty compiler generated dependencies file for ablation_ratelimiter.
# This may be replaced when dependencies are built.
