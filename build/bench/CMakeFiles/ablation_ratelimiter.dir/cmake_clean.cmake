file(REMOVE_RECURSE
  "CMakeFiles/ablation_ratelimiter.dir/ablation_ratelimiter.cpp.o"
  "CMakeFiles/ablation_ratelimiter.dir/ablation_ratelimiter.cpp.o.d"
  "ablation_ratelimiter"
  "ablation_ratelimiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ratelimiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
