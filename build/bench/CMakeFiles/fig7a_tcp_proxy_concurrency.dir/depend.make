# Empty dependencies file for fig7a_tcp_proxy_concurrency.
# This may be replaced when dependencies are built.
