file(REMOVE_RECURSE
  "CMakeFiles/fig7a_tcp_proxy_concurrency.dir/fig7a_tcp_proxy_concurrency.cpp.o"
  "CMakeFiles/fig7a_tcp_proxy_concurrency.dir/fig7a_tcp_proxy_concurrency.cpp.o.d"
  "fig7a_tcp_proxy_concurrency"
  "fig7a_tcp_proxy_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_tcp_proxy_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
