# Empty dependencies file for ablation_activation.
# This may be replaced when dependencies are built.
