file(REMOVE_RECURSE
  "CMakeFiles/ablation_activation.dir/ablation_activation.cpp.o"
  "CMakeFiles/ablation_activation.dir/ablation_activation.cpp.o.d"
  "ablation_activation"
  "ablation_activation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
