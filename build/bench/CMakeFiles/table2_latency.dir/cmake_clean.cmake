file(REMOVE_RECURSE
  "CMakeFiles/table2_latency.dir/table2_latency.cpp.o"
  "CMakeFiles/table2_latency.dir/table2_latency.cpp.o.d"
  "table2_latency"
  "table2_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
