file(REMOVE_RECURSE
  "CMakeFiles/dnsguard_guard.dir/cookie_engine.cpp.o"
  "CMakeFiles/dnsguard_guard.dir/cookie_engine.cpp.o.d"
  "CMakeFiles/dnsguard_guard.dir/local_guard.cpp.o"
  "CMakeFiles/dnsguard_guard.dir/local_guard.cpp.o.d"
  "CMakeFiles/dnsguard_guard.dir/remote_guard.cpp.o"
  "CMakeFiles/dnsguard_guard.dir/remote_guard.cpp.o.d"
  "libdnsguard_guard.a"
  "libdnsguard_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsguard_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
