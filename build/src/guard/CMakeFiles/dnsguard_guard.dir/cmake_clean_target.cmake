file(REMOVE_RECURSE
  "libdnsguard_guard.a"
)
