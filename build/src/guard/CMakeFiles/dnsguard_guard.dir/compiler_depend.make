# Empty compiler generated dependencies file for dnsguard_guard.
# This may be replaced when dependencies are built.
