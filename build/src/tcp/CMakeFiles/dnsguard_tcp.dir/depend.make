# Empty dependencies file for dnsguard_tcp.
# This may be replaced when dependencies are built.
