file(REMOVE_RECURSE
  "CMakeFiles/dnsguard_tcp.dir/syn_cookie.cpp.o"
  "CMakeFiles/dnsguard_tcp.dir/syn_cookie.cpp.o.d"
  "CMakeFiles/dnsguard_tcp.dir/tcp_stack.cpp.o"
  "CMakeFiles/dnsguard_tcp.dir/tcp_stack.cpp.o.d"
  "libdnsguard_tcp.a"
  "libdnsguard_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsguard_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
