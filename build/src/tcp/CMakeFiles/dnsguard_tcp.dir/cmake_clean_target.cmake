file(REMOVE_RECURSE
  "libdnsguard_tcp.a"
)
