
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/syn_cookie.cpp" "src/tcp/CMakeFiles/dnsguard_tcp.dir/syn_cookie.cpp.o" "gcc" "src/tcp/CMakeFiles/dnsguard_tcp.dir/syn_cookie.cpp.o.d"
  "/root/repo/src/tcp/tcp_stack.cpp" "src/tcp/CMakeFiles/dnsguard_tcp.dir/tcp_stack.cpp.o" "gcc" "src/tcp/CMakeFiles/dnsguard_tcp.dir/tcp_stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dnsguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dnsguard_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
