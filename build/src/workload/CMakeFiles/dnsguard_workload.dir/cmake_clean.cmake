file(REMOVE_RECURSE
  "CMakeFiles/dnsguard_workload.dir/lrs_driver.cpp.o"
  "CMakeFiles/dnsguard_workload.dir/lrs_driver.cpp.o.d"
  "CMakeFiles/dnsguard_workload.dir/metrics.cpp.o"
  "CMakeFiles/dnsguard_workload.dir/metrics.cpp.o.d"
  "libdnsguard_workload.a"
  "libdnsguard_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsguard_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
