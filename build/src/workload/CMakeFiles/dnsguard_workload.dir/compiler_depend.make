# Empty compiler generated dependencies file for dnsguard_workload.
# This may be replaced when dependencies are built.
