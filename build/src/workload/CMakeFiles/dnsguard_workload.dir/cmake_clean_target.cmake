file(REMOVE_RECURSE
  "libdnsguard_workload.a"
)
