file(REMOVE_RECURSE
  "libdnsguard_attack.a"
)
