file(REMOVE_RECURSE
  "CMakeFiles/dnsguard_attack.dir/attackers.cpp.o"
  "CMakeFiles/dnsguard_attack.dir/attackers.cpp.o.d"
  "libdnsguard_attack.a"
  "libdnsguard_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsguard_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
