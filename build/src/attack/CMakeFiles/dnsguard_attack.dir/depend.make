# Empty dependencies file for dnsguard_attack.
# This may be replaced when dependencies are built.
