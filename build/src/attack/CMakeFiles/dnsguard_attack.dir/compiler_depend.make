# Empty compiler generated dependencies file for dnsguard_attack.
# This may be replaced when dependencies are built.
