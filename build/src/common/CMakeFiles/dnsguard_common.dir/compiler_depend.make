# Empty compiler generated dependencies file for dnsguard_common.
# This may be replaced when dependencies are built.
