file(REMOVE_RECURSE
  "CMakeFiles/dnsguard_common.dir/bytes.cpp.o"
  "CMakeFiles/dnsguard_common.dir/bytes.cpp.o.d"
  "CMakeFiles/dnsguard_common.dir/hex.cpp.o"
  "CMakeFiles/dnsguard_common.dir/hex.cpp.o.d"
  "CMakeFiles/dnsguard_common.dir/log.cpp.o"
  "CMakeFiles/dnsguard_common.dir/log.cpp.o.d"
  "CMakeFiles/dnsguard_common.dir/rng.cpp.o"
  "CMakeFiles/dnsguard_common.dir/rng.cpp.o.d"
  "CMakeFiles/dnsguard_common.dir/stats.cpp.o"
  "CMakeFiles/dnsguard_common.dir/stats.cpp.o.d"
  "CMakeFiles/dnsguard_common.dir/time.cpp.o"
  "CMakeFiles/dnsguard_common.dir/time.cpp.o.d"
  "libdnsguard_common.a"
  "libdnsguard_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsguard_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
