file(REMOVE_RECURSE
  "libdnsguard_common.a"
)
