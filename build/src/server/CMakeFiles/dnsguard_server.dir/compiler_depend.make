# Empty compiler generated dependencies file for dnsguard_server.
# This may be replaced when dependencies are built.
