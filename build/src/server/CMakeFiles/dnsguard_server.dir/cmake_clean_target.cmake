file(REMOVE_RECURSE
  "libdnsguard_server.a"
)
