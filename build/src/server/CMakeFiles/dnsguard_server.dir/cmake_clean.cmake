file(REMOVE_RECURSE
  "CMakeFiles/dnsguard_server.dir/authoritative_node.cpp.o"
  "CMakeFiles/dnsguard_server.dir/authoritative_node.cpp.o.d"
  "CMakeFiles/dnsguard_server.dir/cache.cpp.o"
  "CMakeFiles/dnsguard_server.dir/cache.cpp.o.d"
  "CMakeFiles/dnsguard_server.dir/resolver_node.cpp.o"
  "CMakeFiles/dnsguard_server.dir/resolver_node.cpp.o.d"
  "CMakeFiles/dnsguard_server.dir/stub_node.cpp.o"
  "CMakeFiles/dnsguard_server.dir/stub_node.cpp.o.d"
  "CMakeFiles/dnsguard_server.dir/zone.cpp.o"
  "CMakeFiles/dnsguard_server.dir/zone.cpp.o.d"
  "CMakeFiles/dnsguard_server.dir/zone_parser.cpp.o"
  "CMakeFiles/dnsguard_server.dir/zone_parser.cpp.o.d"
  "libdnsguard_server.a"
  "libdnsguard_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsguard_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
