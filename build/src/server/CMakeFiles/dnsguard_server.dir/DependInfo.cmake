
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/authoritative_node.cpp" "src/server/CMakeFiles/dnsguard_server.dir/authoritative_node.cpp.o" "gcc" "src/server/CMakeFiles/dnsguard_server.dir/authoritative_node.cpp.o.d"
  "/root/repo/src/server/cache.cpp" "src/server/CMakeFiles/dnsguard_server.dir/cache.cpp.o" "gcc" "src/server/CMakeFiles/dnsguard_server.dir/cache.cpp.o.d"
  "/root/repo/src/server/resolver_node.cpp" "src/server/CMakeFiles/dnsguard_server.dir/resolver_node.cpp.o" "gcc" "src/server/CMakeFiles/dnsguard_server.dir/resolver_node.cpp.o.d"
  "/root/repo/src/server/stub_node.cpp" "src/server/CMakeFiles/dnsguard_server.dir/stub_node.cpp.o" "gcc" "src/server/CMakeFiles/dnsguard_server.dir/stub_node.cpp.o.d"
  "/root/repo/src/server/zone.cpp" "src/server/CMakeFiles/dnsguard_server.dir/zone.cpp.o" "gcc" "src/server/CMakeFiles/dnsguard_server.dir/zone.cpp.o.d"
  "/root/repo/src/server/zone_parser.cpp" "src/server/CMakeFiles/dnsguard_server.dir/zone_parser.cpp.o" "gcc" "src/server/CMakeFiles/dnsguard_server.dir/zone_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dnsguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dnsguard_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnsguard_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dnsguard_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/dnsguard_tcp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
