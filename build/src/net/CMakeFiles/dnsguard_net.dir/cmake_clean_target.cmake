file(REMOVE_RECURSE
  "libdnsguard_net.a"
)
