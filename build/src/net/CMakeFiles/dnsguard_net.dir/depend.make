# Empty dependencies file for dnsguard_net.
# This may be replaced when dependencies are built.
