file(REMOVE_RECURSE
  "CMakeFiles/dnsguard_net.dir/headers.cpp.o"
  "CMakeFiles/dnsguard_net.dir/headers.cpp.o.d"
  "CMakeFiles/dnsguard_net.dir/ipv4.cpp.o"
  "CMakeFiles/dnsguard_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/dnsguard_net.dir/packet.cpp.o"
  "CMakeFiles/dnsguard_net.dir/packet.cpp.o.d"
  "libdnsguard_net.a"
  "libdnsguard_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsguard_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
