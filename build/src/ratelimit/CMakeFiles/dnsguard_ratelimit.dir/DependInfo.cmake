
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ratelimit/limiters.cpp" "src/ratelimit/CMakeFiles/dnsguard_ratelimit.dir/limiters.cpp.o" "gcc" "src/ratelimit/CMakeFiles/dnsguard_ratelimit.dir/limiters.cpp.o.d"
  "/root/repo/src/ratelimit/token_bucket.cpp" "src/ratelimit/CMakeFiles/dnsguard_ratelimit.dir/token_bucket.cpp.o" "gcc" "src/ratelimit/CMakeFiles/dnsguard_ratelimit.dir/token_bucket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dnsguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dnsguard_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
