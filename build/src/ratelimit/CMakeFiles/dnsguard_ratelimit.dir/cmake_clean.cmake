file(REMOVE_RECURSE
  "CMakeFiles/dnsguard_ratelimit.dir/limiters.cpp.o"
  "CMakeFiles/dnsguard_ratelimit.dir/limiters.cpp.o.d"
  "CMakeFiles/dnsguard_ratelimit.dir/token_bucket.cpp.o"
  "CMakeFiles/dnsguard_ratelimit.dir/token_bucket.cpp.o.d"
  "libdnsguard_ratelimit.a"
  "libdnsguard_ratelimit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsguard_ratelimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
