# Empty compiler generated dependencies file for dnsguard_ratelimit.
# This may be replaced when dependencies are built.
