file(REMOVE_RECURSE
  "libdnsguard_ratelimit.a"
)
