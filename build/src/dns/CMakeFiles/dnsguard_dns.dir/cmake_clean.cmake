file(REMOVE_RECURSE
  "CMakeFiles/dnsguard_dns.dir/message.cpp.o"
  "CMakeFiles/dnsguard_dns.dir/message.cpp.o.d"
  "CMakeFiles/dnsguard_dns.dir/name.cpp.o"
  "CMakeFiles/dnsguard_dns.dir/name.cpp.o.d"
  "CMakeFiles/dnsguard_dns.dir/records.cpp.o"
  "CMakeFiles/dnsguard_dns.dir/records.cpp.o.d"
  "libdnsguard_dns.a"
  "libdnsguard_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsguard_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
