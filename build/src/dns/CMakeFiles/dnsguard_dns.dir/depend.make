# Empty dependencies file for dnsguard_dns.
# This may be replaced when dependencies are built.
