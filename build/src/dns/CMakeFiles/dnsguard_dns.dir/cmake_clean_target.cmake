file(REMOVE_RECURSE
  "libdnsguard_dns.a"
)
