file(REMOVE_RECURSE
  "CMakeFiles/dnsguard_crypto.dir/cookie_hash.cpp.o"
  "CMakeFiles/dnsguard_crypto.dir/cookie_hash.cpp.o.d"
  "CMakeFiles/dnsguard_crypto.dir/md5.cpp.o"
  "CMakeFiles/dnsguard_crypto.dir/md5.cpp.o.d"
  "libdnsguard_crypto.a"
  "libdnsguard_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsguard_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
