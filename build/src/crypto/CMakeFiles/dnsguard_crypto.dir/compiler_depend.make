# Empty compiler generated dependencies file for dnsguard_crypto.
# This may be replaced when dependencies are built.
