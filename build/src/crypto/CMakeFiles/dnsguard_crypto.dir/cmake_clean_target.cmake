file(REMOVE_RECURSE
  "libdnsguard_crypto.a"
)
