file(REMOVE_RECURSE
  "libdnsguard_sim.a"
)
