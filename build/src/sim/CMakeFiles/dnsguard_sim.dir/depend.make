# Empty dependencies file for dnsguard_sim.
# This may be replaced when dependencies are built.
