file(REMOVE_RECURSE
  "CMakeFiles/dnsguard_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dnsguard_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/dnsguard_sim.dir/node.cpp.o"
  "CMakeFiles/dnsguard_sim.dir/node.cpp.o.d"
  "CMakeFiles/dnsguard_sim.dir/simulator.cpp.o"
  "CMakeFiles/dnsguard_sim.dir/simulator.cpp.o.d"
  "libdnsguard_sim.a"
  "libdnsguard_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsguard_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
