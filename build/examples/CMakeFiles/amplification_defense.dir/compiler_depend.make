# Empty compiler generated dependencies file for amplification_defense.
# This may be replaced when dependencies are built.
