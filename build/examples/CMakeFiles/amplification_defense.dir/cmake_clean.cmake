file(REMOVE_RECURSE
  "CMakeFiles/amplification_defense.dir/amplification_defense.cpp.o"
  "CMakeFiles/amplification_defense.dir/amplification_defense.cpp.o.d"
  "amplification_defense"
  "amplification_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amplification_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
