file(REMOVE_RECURSE
  "CMakeFiles/scheme_walkthrough.dir/scheme_walkthrough.cpp.o"
  "CMakeFiles/scheme_walkthrough.dir/scheme_walkthrough.cpp.o.d"
  "scheme_walkthrough"
  "scheme_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
