# Empty compiler generated dependencies file for scheme_walkthrough.
# This may be replaced when dependencies are built.
