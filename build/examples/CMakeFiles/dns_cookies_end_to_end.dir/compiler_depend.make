# Empty compiler generated dependencies file for dns_cookies_end_to_end.
# This may be replaced when dependencies are built.
