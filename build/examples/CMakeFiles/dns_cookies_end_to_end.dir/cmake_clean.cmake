file(REMOVE_RECURSE
  "CMakeFiles/dns_cookies_end_to_end.dir/dns_cookies_end_to_end.cpp.o"
  "CMakeFiles/dns_cookies_end_to_end.dir/dns_cookies_end_to_end.cpp.o.d"
  "dns_cookies_end_to_end"
  "dns_cookies_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_cookies_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
