file(REMOVE_RECURSE
  "CMakeFiles/protect_root_server.dir/protect_root_server.cpp.o"
  "CMakeFiles/protect_root_server.dir/protect_root_server.cpp.o.d"
  "protect_root_server"
  "protect_root_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protect_root_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
