# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for protect_root_server.
