# Empty compiler generated dependencies file for protect_root_server.
# This may be replaced when dependencies are built.
