// Dump-on-failure support for simulator tests: a gtest listener that, on
// the first failing assertion of a test, fires a registered callback —
// typically a FlightRecorder::dump() of the test's simulator — so a red
// test leaves behind the metrics snapshot, time-series windows, trace
// rings and open journeys that explain it.
//
// Usage inside a test body:
//
//   sim::Simulator sim;
//   testing_support::arm_failure_dump([&](const std::string& test) {
//     sim.flight_recorder().dump(test, sim.now());
//   });
//
// The callback is cleared automatically when the test ends, so the
// captured simulator can never dangle into the next test.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>

namespace dnsguard::testing_support {

inline std::function<void(const std::string&)>& failure_dump_fn() {
  static std::function<void(const std::string&)> fn;
  return fn;
}

class FlightRecorderOnFailure : public ::testing::EmptyTestEventListener {
 public:
  void OnTestStart(const ::testing::TestInfo&) override { dumped_ = false; }

  void OnTestPartResult(const ::testing::TestPartResult& result) override {
    if (!result.failed() || dumped_) return;
    auto& fn = failure_dump_fn();
    if (!fn) return;
    dumped_ = true;  // one recording per test is plenty
    // Resolved here (not in OnTestStart) because the listener is first
    // appended from inside a running test's body.
    std::string label = "test";
    if (const auto* info =
            ::testing::UnitTest::GetInstance()->current_test_info()) {
      label = std::string(info->test_suite_name()) + "." + info->name();
    }
    fn(label);
  }

  void OnTestEnd(const ::testing::TestInfo&) override {
    failure_dump_fn() = nullptr;  // the test's simulator dies with it
  }

 private:
  bool dumped_ = false;
};

/// Registers the listener once per process (safe to call repeatedly) and
/// arms `fn` as the current test's failure dump.
inline void arm_failure_dump(std::function<void(const std::string&)> fn) {
  static bool installed = false;
  if (!installed) {
    installed = true;
    ::testing::UnitTest::GetInstance()->listeners().Append(
        new FlightRecorderOnFailure);
  }
  failure_dump_fn() = std::move(fn);
}

}  // namespace dnsguard::testing_support
