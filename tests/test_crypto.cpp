// MD5 (RFC 1321 appendix test suite) and the paper's cookie construction.
#include <gtest/gtest.h>

#include <vector>

#include "common/hex.h"
#include "crypto/cookie_hash.h"
#include "crypto/md5.h"

namespace dnsguard::crypto {
namespace {

std::string md5_hex(std::string_view input) {
  Md5Digest d = Md5::hash(input);
  return hex_encode(BytesView(d.data(), d.size()));
}

// The seven reference digests from RFC 1321 §A.5.
TEST(Md5, Rfc1321TestSuite) {
  EXPECT_EQ(md5_hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5_hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5_hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5_hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5_hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      md5_hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(md5_hex("123456789012345678901234567890123456789012345678901234567"
                    "89012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
  std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in interesting ways. 0123456789abcdef";
  Md5Digest oneshot = Md5::hash(msg);
  for (std::size_t chunk : {1u, 3u, 7u, 63u, 64u, 65u}) {
    Md5 ctx;
    for (std::size_t i = 0; i < msg.size(); i += chunk) {
      ctx.update(std::string_view(msg).substr(i, chunk));
    }
    EXPECT_EQ(ctx.finish(), oneshot) << "chunk size " << chunk;
  }
}

TEST(Md5, ExactlyOneBlock) {
  std::string msg(64, 'x');
  Md5 ctx;
  ctx.update(msg);
  Md5Digest d = ctx.finish();
  EXPECT_EQ(d, Md5::hash(msg));
}

TEST(Md5, ResetReusesContext) {
  Md5 ctx;
  ctx.update(std::string_view("abc"));
  (void)ctx.finish();
  ctx.reset();
  ctx.update(std::string_view("abc"));
  EXPECT_EQ(hex_encode(BytesView(ctx.finish())),
            "900150983cd24fb0d6963f7d28e17f72");
}

TEST(CookieHash, KeyIs76Bytes) {
  // §III.E: 76-byte key + 4-byte source IP = 80-byte MD5 input.
  EXPECT_EQ(kCookieKeySize, 76u);
  EXPECT_EQ(kCookieSize, 16u);
}

TEST(CookieHash, DeterministicPerKeyAndIp) {
  CookieKey key = derive_key(42);
  Cookie a = compute_cookie(key, 0x0a000001);
  Cookie b = compute_cookie(key, 0x0a000001);
  EXPECT_EQ(a, b);
}

TEST(CookieHash, DifferentIpsGetDifferentCookies) {
  CookieKey key = derive_key(42);
  Cookie a = compute_cookie(key, 0x0a000001);
  Cookie b = compute_cookie(key, 0x0a000002);
  EXPECT_NE(a, b);
}

TEST(CookieHash, DifferentKeysGetDifferentCookies) {
  Cookie a = compute_cookie(derive_key(1), 0x0a000001);
  Cookie b = compute_cookie(derive_key(2), 0x0a000001);
  EXPECT_NE(a, b);
}

TEST(CookieHash, MatchesManualConstruction) {
  // The cookie must literally be MD5(key || ip_be).
  CookieKey key = derive_key(7);
  std::uint32_t ip = 0xc0a80101;  // 192.168.1.1
  Md5 ctx;
  ctx.update(BytesView(key.data(), key.size()));
  std::uint8_t ip_be[4] = {0xc0, 0xa8, 0x01, 0x01};
  ctx.update(BytesView(ip_be, 4));
  EXPECT_EQ(compute_cookie(key, ip), ctx.finish());
}

TEST(CookieHash, ConstantTimeEqualBehaviour) {
  Cookie a{}, b{};
  EXPECT_TRUE(cookie_equal(a, b));
  b[15] = 1;
  EXPECT_FALSE(cookie_equal(a, b));
  EXPECT_TRUE(cookie_prefix_equal(a, b, 15));
  EXPECT_FALSE(cookie_prefix_equal(a, b, 16));
}

TEST(CookiePrefix32, TakesFirstFourBytes) {
  Cookie c{};
  c[0] = 0x12;
  c[1] = 0x34;
  c[2] = 0x56;
  c[3] = 0x78;
  EXPECT_EQ(cookie_prefix32(c), 0x12345678u);
}

TEST(RotatingKeys, MintVerifyRoundTrip) {
  RotatingKeys keys(1001);
  Cookie c = keys.mint(0x0a000001);
  EXPECT_TRUE(keys.verify(0x0a000001, c));
  EXPECT_FALSE(keys.verify(0x0a000002, c));
}

TEST(RotatingKeys, GenerationBitRidesFirstBit) {
  RotatingKeys keys(1001);
  Cookie g0 = keys.mint(0x0a000001);
  EXPECT_EQ(g0[0] >> 7, 0);  // generation 0 parity
  keys.rotate(1002);
  Cookie g1 = keys.mint(0x0a000001);
  EXPECT_EQ(g1[0] >> 7, 1);  // generation 1 parity
}

TEST(RotatingKeys, PreviousGenerationStillVerifiesAfterOneRotation) {
  // §III.E: cookies from week N-1 remain valid in week N, each check
  // still costing exactly one MD5.
  RotatingKeys keys(1001);
  Cookie old_cookie = keys.mint(0x0a000001);
  keys.rotate(1002);
  EXPECT_TRUE(keys.verify(0x0a000001, old_cookie));
  Cookie new_cookie = keys.mint(0x0a000001);
  EXPECT_TRUE(keys.verify(0x0a000001, new_cookie));
}

TEST(RotatingKeys, TwoRotationsExpireOldCookies) {
  RotatingKeys keys(1001);
  Cookie old_cookie = keys.mint(0x0a000001);
  keys.rotate(1002);
  keys.rotate(1003);
  EXPECT_FALSE(keys.verify(0x0a000001, old_cookie));
}

TEST(RotatingKeys, Prefix32Verification) {
  RotatingKeys keys(77);
  Cookie c = keys.mint(0x0a000001);
  EXPECT_TRUE(keys.verify_prefix32(0x0a000001, cookie_prefix32(c)));
  EXPECT_FALSE(keys.verify_prefix32(0x0a000001, cookie_prefix32(c) ^ 1));
  EXPECT_FALSE(keys.verify_prefix32(0x0a000002, cookie_prefix32(c)));
}

TEST(RotatingKeys, Prefix32SurvivesOneRotation) {
  RotatingKeys keys(77);
  Cookie c = keys.mint(0x0a000001);
  keys.rotate(78);
  EXPECT_TRUE(keys.verify_prefix32(0x0a000001, cookie_prefix32(c)));
  keys.rotate(79);
  EXPECT_FALSE(keys.verify_prefix32(0x0a000001, cookie_prefix32(c)));
}

// Property sweep: many IPs round-trip mint/verify and never cross-verify.
class CookieSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CookieSweep, MintVerifyNeverCrossValidates) {
  RotatingKeys keys(2024);
  std::uint32_t ip = GetParam();
  Cookie c = keys.mint(ip);
  EXPECT_TRUE(keys.verify(ip, c));
  EXPECT_FALSE(keys.verify(ip + 1, c));
  EXPECT_FALSE(keys.verify(ip ^ 0x80000000, c));
}

INSTANTIATE_TEST_SUITE_P(ManyIps, CookieSweep,
                         ::testing::Values(0x0a000001u, 0xc0a80101u,
                                           0x08080808u, 0xfffffffeu, 0x1u,
                                           0xdeadbeefu, 0x7f000001u,
                                           0x0b16212cu));

TEST(CookieHasher, MidstateMatchesOneShotCompute) {
  // The pre-keyed hasher caches the MD5 midstate after the 76-byte key
  // (64 bytes = one full compression block); resuming from the copy must
  // be bit-identical to hashing key || ip from scratch.
  CookieKey key = derive_key(0xfeedULL);
  CookieHasher hasher(key);
  for (std::uint32_t ip :
       {0x0a000001u, 0xffffffffu, 0x0u, 0xdeadbeefu, 0x7f000001u}) {
    EXPECT_EQ(hasher.compute(ip), compute_cookie(key, ip)) << ip;
  }
}

TEST(RotatingKeys, GenZeroPreviousBitFailureIsNotStale) {
  // Before the first rotation there is no previous generation: a cookie
  // whose generation bit selects it is a plain forgery. This used to
  // report used_previous=true, which the guard charged to "stale key".
  RotatingKeys keys(501);
  Cookie forged = keys.mint(0x0a000001);
  forged[0] ^= 0x80;  // flip the generation bit to "previous"
  VerifyResult vr = keys.verify_ex(0x0a000001, forged);
  EXPECT_FALSE(vr.ok);
  EXPECT_FALSE(vr.used_previous);
  EXPECT_FALSE(vr.stale);
  VerifyResult pr = keys.verify_prefix32_ex(0x0a000001,
                                            cookie_prefix32(forged));
  EXPECT_FALSE(pr.ok);
  EXPECT_FALSE(pr.used_previous);
  EXPECT_FALSE(pr.stale);
}

TEST(RotatingKeys, RetiredGenerationCookieClassifiedStaleNotForged) {
  // A cookie from two rotations back carries the current parity (the bit
  // alternates), fails the current-key check, but matches the retired key
  // exactly: a real-but-outdated client, reported via `stale`. A random
  // forgery with the same parity stays stale=false.
  RotatingKeys keys(501);
  Cookie old_cookie = keys.mint(0x0a000001);
  keys.rotate(502);
  keys.rotate(503);
  VerifyResult vr = keys.verify_ex(0x0a000001, old_cookie);
  EXPECT_FALSE(vr.ok);
  EXPECT_TRUE(vr.stale);
  VerifyResult pr = keys.verify_prefix32_ex(0x0a000001,
                                            cookie_prefix32(old_cookie));
  EXPECT_FALSE(pr.ok);
  EXPECT_TRUE(pr.stale);

  Cookie forged{};
  forged[0] = static_cast<std::uint8_t>((keys.generation() & 1) << 7);
  VerifyResult fr = keys.verify_ex(0x0a000001, forged);
  EXPECT_FALSE(fr.ok);
  EXPECT_FALSE(fr.stale);
  // And never on success.
  EXPECT_FALSE(keys.verify_ex(0x0a000001, keys.mint(0x0a000001)).stale);
}

TEST(RotatingKeys, Prefix32BatchMatchesScalarAcrossRotation) {
  RotatingKeys keys(901);
  // A mix of current, previous-generation, retired and forged prefixes.
  std::vector<std::uint32_t> ips;
  std::vector<std::uint32_t> prefixes;
  for (std::uint32_t i = 0; i < 8; ++i) {
    ips.push_back(0x0a010000u + i);
    prefixes.push_back(cookie_prefix32(keys.mint(0x0a010000u + i)));
  }
  keys.rotate(902);
  for (std::uint32_t i = 8; i < 16; ++i) {
    ips.push_back(0x0a010000u + i);
    prefixes.push_back(cookie_prefix32(keys.mint(0x0a010000u + i)) ^
                       (i % 3 == 0 ? 0x5au : 0x0u));
  }
  keys.rotate(903);

  std::vector<VerifyResult> batch(ips.size());
  keys.verify_prefix32_batch(ips.data(), prefixes.data(), batch.data(),
                             ips.size());
  for (std::size_t i = 0; i < ips.size(); ++i) {
    VerifyResult scalar = keys.verify_prefix32_ex(ips[i], prefixes[i]);
    EXPECT_EQ(batch[i].ok, scalar.ok) << i;
    EXPECT_EQ(batch[i].used_previous, scalar.used_previous) << i;
    EXPECT_EQ(batch[i].stale, scalar.stale) << i;
  }
}

}  // namespace
}  // namespace dnsguard::crypto
