// LrsSimulatorNode (the paper's LRS simulator) behaviour.
#include <gtest/gtest.h>

#include "guard/remote_guard.h"
#include "server/authoritative_node.h"
#include "sim/simulator.h"
#include "workload/lrs_driver.h"
#include "workload/metrics.h"

namespace dnsguard::workload {
namespace {

using net::Ipv4Address;

constexpr Ipv4Address kAnsIp(10, 1, 1, 254);
constexpr Ipv4Address kDriverIp(10, 0, 1, 1);

struct Bed {
  sim::Simulator sim;
  server::AnsSimulatorNode ans{sim, "ans", {.address = kAnsIp}};
  std::unique_ptr<guard::RemoteGuardNode> guard;
  std::unique_ptr<LrsSimulatorNode> driver;

  void with_guard(guard::Scheme scheme) {
    guard::RemoteGuardNode::Config gc;
    gc.guard_address = Ipv4Address(10, 1, 1, 253);
    gc.ans_address = kAnsIp;
    gc.protected_zone = dns::DomainName{};
    gc.subnet_base = Ipv4Address(10, 1, 1, 0);
    gc.scheme = scheme;
    gc.rl1.per_address_rate = 1e7;
    gc.rl1.per_address_burst = 1e6;
    gc.rl2.per_host_rate = 1e7;
    gc.rl2.per_host_burst = 1e6;
    gc.proxy_conn_rate = 1e7;
    gc.proxy_conn_burst = 1e6;
    guard = std::make_unique<guard::RemoteGuardNode>(sim, "guard", gc, &ans);
    guard->install();
  }
  void without_guard() { sim.add_host_route(kAnsIp, &ans); }

  LrsSimulatorNode* make_driver(LrsSimulatorNode::Config cfg) {
    cfg.address = kDriverIp;
    cfg.target = {kAnsIp, net::kDnsPort};
    driver = std::make_unique<LrsSimulatorNode>(sim, "driver", cfg);
    sim.add_host_route(kDriverIp, driver.get());
    return driver.get();
  }
};

TEST(Driver, PlainUdpClosedLoopThroughputScalesWithConcurrency) {
  double tput1 = 0, tput8 = 0;
  for (int conc : {1, 8}) {
    Bed bed;
    bed.without_guard();
    auto* d = bed.make_driver({.mode = DriveMode::PlainUdp,
                               .concurrency = conc});
    d->start();
    bed.sim.run_for(seconds(1));
    d->stop();
    double tput = static_cast<double>(d->driver_stats().completed);
    (conc == 1 ? tput1 : tput8) = tput;
  }
  // 1 worker is latency-bound (~1/0.41ms); 8 workers ~8x until service
  // limits kick in.
  EXPECT_GT(tput8, tput1 * 4);
}

TEST(Driver, ThinkTimePacesLoad) {
  Bed bed;
  bed.without_guard();
  auto* d = bed.make_driver({.mode = DriveMode::PlainUdp,
                             .concurrency = 10,
                             .think_time = milliseconds(9)});
  d->start();
  bed.sim.run_for(seconds(2));
  d->stop();
  // 10 workers / (0.4ms latency + 9.0ms think + 0.1ms stagger amortized)
  // ~ 1060/s.
  double rate = static_cast<double>(d->driver_stats().completed) / 2.0;
  EXPECT_GT(rate, 900.0);
  EXPECT_LT(rate, 1200.0);
}

TEST(Driver, TimeoutCountedWhenServerDead) {
  Bed bed;  // no route to the ANS at all
  auto* d = bed.make_driver({.mode = DriveMode::PlainUdp,
                             .concurrency = 2,
                             .timeout = milliseconds(10)});
  d->start();
  bed.sim.run_for(milliseconds(105));
  d->stop();
  EXPECT_EQ(d->driver_stats().completed, 0u);
  // ~2 workers x ~10 timeouts each.
  EXPECT_GE(d->driver_stats().timeouts, 16u);
}

TEST(Driver, LatenciesRecordedPerRequest) {
  Bed bed;
  bed.without_guard();
  auto* d = bed.make_driver({.mode = DriveMode::PlainUdp, .concurrency = 1});
  d->start();
  bed.sim.run_for(milliseconds(100));
  d->stop();
  ASSERT_GT(d->latencies().count(), 10u);
  // One exchange over a 0.4 ms RTT plus ANS service time.
  EXPECT_NEAR(d->latencies().mean(), 0.41, 0.1);
}

TEST(Driver, HitModesPrimeExactlyOnce) {
  Bed bed;
  bed.with_guard(guard::Scheme::ModifiedDns);
  auto* d = bed.make_driver({.mode = DriveMode::ModifiedHit,
                             .concurrency = 4});
  d->start();
  bed.sim.run_for(milliseconds(200));
  d->stop();
  // 4 workers each prime once (not counted), then loop 1-exchange hits.
  const auto& s = d->driver_stats();
  EXPECT_GT(s.completed, 100u);
  // Each of the 4 primings is 2 exchanges, plus up to 4 in flight at
  // stop; steady state is 1 exchange per request.
  EXPECT_LE(s.exchanges_sent, s.completed + 13);
  EXPECT_EQ(bed.guard->guard_stats().cookies_minted, 4u);
}

TEST(Driver, ModeNamesAreStable) {
  EXPECT_EQ(drive_mode_name(DriveMode::PlainUdp), "plain-udp");
  EXPECT_EQ(drive_mode_name(DriveMode::NsNameMiss), "ns-name/miss");
  EXPECT_EQ(drive_mode_name(DriveMode::TcpWithRedirect), "tcp/redirect");
}

TEST(RateDriver, FiresAtConfiguredRate) {
  sim::Simulator sim;
  int fired = 0;
  RateDriver driver(sim, 500.0, [&] { fired++; });
  driver.start();
  sim.run_for(seconds(2));
  driver.stop();
  sim.run_for(seconds(1));
  EXPECT_NEAR(fired, 1000, 5);
}

TEST(ThroughputMeter, CountsAndConverts) {
  ThroughputMeter m;
  m.record(10);
  m.record();
  EXPECT_EQ(m.count(), 11u);
  EXPECT_DOUBLE_EQ(m.per_second(seconds(2)), 5.5);
  m.reset();
  EXPECT_EQ(m.count(), 0u);
}

TEST(TablePrinterFormat, Numbers) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::kilo(84200), "84.2K");
  EXPECT_EQ(TablePrinter::percent(0.256), "25.6%");
}

}  // namespace
}  // namespace dnsguard::workload
