// Master-file zone parser.
#include <gtest/gtest.h>

#include "server/zone.h"
#include "server/zone_parser.h"

namespace dnsguard::server {
namespace {

using dns::DomainName;
using dns::RrType;

Zone must_parse(std::string_view text, const char* origin = ".") {
  auto r = parse_zone(text, *DomainName::parse(origin));
  if (auto* err = std::get_if<ZoneParseError>(&r)) {
    ADD_FAILURE() << err->to_string();
    return Zone(DomainName{});
  }
  return std::get<Zone>(std::move(r));
}

ZoneParseError must_fail(std::string_view text, const char* origin = ".") {
  auto r = parse_zone(text, *DomainName::parse(origin));
  if (std::holds_alternative<Zone>(r)) {
    ADD_FAILURE() << "expected parse failure";
    return ZoneParseError{};
  }
  return std::get<ZoneParseError>(r);
}

constexpr const char* kFooZone = R"(
$ORIGIN foo.com.
$TTL 3600
@       IN SOA ns1 admin (2024070601 7200 900 1209600 300)
@       IN NS  ns1
ns1     IN A   10.0.0.3
www     60 IN A 192.0.2.80
web     IN CNAME www
mail    A 192.0.2.25          ; class omitted
info    IN TXT "hello world" "second"
)";

TEST(ZoneParser, ParsesRepresentativeZone) {
  Zone z = must_parse(kFooZone);
  EXPECT_EQ(z.origin().to_string(), "foo.com.");
  EXPECT_EQ(z.record_count(), 7u);

  auto soa = z.soa();
  ASSERT_TRUE(soa.has_value());
  const auto& rd = std::get<dns::SoaRdata>(soa->rdata);
  EXPECT_EQ(rd.mname.to_string(), "ns1.foo.com.");
  EXPECT_EQ(rd.rname.to_string(), "admin.foo.com.");
  EXPECT_EQ(rd.serial, 2024070601u);
  EXPECT_EQ(rd.minimum, 300u);

  auto www = z.find(*DomainName::parse("www.foo.com"), RrType::A);
  ASSERT_EQ(www.size(), 1u);
  EXPECT_EQ(www[0].ttl, 60u);  // per-record TTL override
  EXPECT_EQ(std::get<dns::ARdata>(www[0].rdata).address,
            net::Ipv4Address(192, 0, 2, 80));

  auto ns1 = z.find(*DomainName::parse("ns1.foo.com"), RrType::A);
  ASSERT_EQ(ns1.size(), 1u);
  EXPECT_EQ(ns1[0].ttl, 3600u);  // $TTL default

  auto txt = z.find(*DomainName::parse("info.foo.com"), RrType::TXT);
  ASSERT_EQ(txt.size(), 1u);
  EXPECT_EQ(std::get<dns::TxtRdata>(txt[0].rdata).strings.size(), 2u);
}

TEST(ZoneParser, RelativeAndAbsoluteNames) {
  Zone z = must_parse(R"(
$ORIGIN foo.com.
www           IN A 1.2.3.4
bare.example. IN A 5.6.7.8
)");
  EXPECT_FALSE(z.find(*dns::DomainName::parse("www.foo.com"),
                      RrType::A).empty());
  // The absolute out-of-zone A record is retained as glue.
  EXPECT_FALSE(z.find(*dns::DomainName::parse("bare.example"),
                      RrType::A).empty());
}

TEST(ZoneParser, OwnerInheritance) {
  Zone z = must_parse(R"(
$ORIGIN foo.com.
www IN A 1.1.1.1
    IN A 2.2.2.2
)");
  EXPECT_EQ(z.find(*DomainName::parse("www.foo.com"), RrType::A).size(), 2u);
}

TEST(ZoneParser, AtSignIsOrigin) {
  Zone z = must_parse("$ORIGIN bar.org.\n@ IN NS ns.bar.org.\n");
  EXPECT_EQ(z.find(*DomainName::parse("bar.org"), RrType::NS).size(), 1u);
}

TEST(ZoneParser, DefaultOriginUsedWithoutDirective) {
  Zone z = must_parse("www IN A 9.9.9.9\n", "corp.test.");
  EXPECT_FALSE(z.find(*DomainName::parse("www.corp.test"),
                      RrType::A).empty());
}

TEST(ZoneParser, MultiLineSoaParens) {
  Zone z = must_parse(R"(
$ORIGIN x.y.
@ IN SOA ns admin (
      1      ; serial
      7200   ; refresh
      900    ; retry
      1209600
      300 )
)");
  EXPECT_TRUE(z.soa().has_value());
}

TEST(ZoneParser, CommentsAndBlankLinesIgnored) {
  Zone z = must_parse(R"(
; a full-line comment

$ORIGIN z.example.   ; trailing comment
a IN A 1.1.1.1 ; another
)");
  EXPECT_EQ(z.record_count(), 1u);
}

TEST(ZoneParser, ErrorsCarryLineNumbers) {
  auto err = must_fail("$ORIGIN ok.example.\nbroken IN A not-an-ip\n");
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("IPv4"), std::string::npos);
}

TEST(ZoneParser, RejectsUnknownType) {
  auto err = must_fail("$ORIGIN e.\nx IN MX 10 mail.e.\n");
  EXPECT_EQ(err.line, 2);
}

TEST(ZoneParser, RejectsUnknownDirective) {
  auto err = must_fail("$INCLUDE other.zone\n");
  EXPECT_EQ(err.line, 1);
}

TEST(ZoneParser, RejectsUnbalancedParens) {
  auto err = must_fail("$ORIGIN e.\n@ IN SOA a b (1 2 3 4 5\n");
  EXPECT_NE(err.message.find("unbalanced"), std::string::npos);
}

TEST(ZoneParser, RejectsUnterminatedString) {
  auto err = must_fail("$ORIGIN e.\nx IN TXT \"oops\n");
  EXPECT_NE(err.message.find("unterminated"), std::string::npos);
}

TEST(ZoneParser, RejectsTrailingTokens) {
  auto err = must_fail("$ORIGIN e.\nx IN A 1.2.3.4 extra\n");
  EXPECT_EQ(err.line, 2);
}

TEST(ZoneParser, RejectsBadTtlDirective) {
  auto err = must_fail("$TTL soon\n");
  EXPECT_EQ(err.line, 1);
}

TEST(ZoneParser, ParsedZoneServesQueries) {
  // End-to-end: a parsed zone drives the authoritative engine.
  AuthoritativeEngine engine;
  engine.add_zone(must_parse(kFooZone));
  auto q = dns::Message::query(1, *DomainName::parse("web.foo.com"),
                               RrType::A, false);
  Answer a = engine.answer(q);
  EXPECT_EQ(a.kind, AnswerKind::Authoritative);
  ASSERT_EQ(a.message.answers.size(), 2u);  // CNAME + chased A
}

}  // namespace
}  // namespace dnsguard::server
