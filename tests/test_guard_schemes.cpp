// RemoteGuardNode behaviour, scheme by scheme, driven by the paper's LRS
// simulator against the high-rate ANS simulator. Covers the cookie dances
// of Figs. 2-3, spoof rejection, the zero-false-positive claim (§V), the
// activation threshold (§IV.C) and both rate limiters in situ.
#include <gtest/gtest.h>

#include "attack/attackers.h"
#include "guard/remote_guard.h"
#include "server/authoritative_node.h"
#include "sim/simulator.h"
#include "workload/lrs_driver.h"

namespace dnsguard {
namespace {

using guard::RemoteGuardNode;
using guard::Scheme;
using net::Ipv4Address;
using server::AnsSimulatorNode;
using workload::DriveMode;
using workload::LrsSimulatorNode;

constexpr Ipv4Address kAnsIp(10, 1, 1, 254);
constexpr Ipv4Address kGuardIp(10, 1, 1, 253);
constexpr Ipv4Address kSubnetBase(10, 1, 1, 0);
constexpr Ipv4Address kLrsIp(10, 0, 1, 1);

struct GuardBed {
  sim::Simulator sim;
  std::unique_ptr<AnsSimulatorNode> ans;
  std::unique_ptr<RemoteGuardNode> guard;
  std::unique_ptr<LrsSimulatorNode> driver;

  explicit GuardBed(Scheme scheme, DriveMode mode, int concurrency = 1,
                    double activation_threshold = 0.0,
                    std::function<void(RemoteGuardNode::Config&)> tweak = {}) {
    ans = std::make_unique<AnsSimulatorNode>(
        sim, "ans", AnsSimulatorNode::Config{.address = kAnsIp});

    RemoteGuardNode::Config gc;
    gc.guard_address = kGuardIp;
    gc.ans_address = kAnsIp;
    gc.protected_zone = dns::DomainName{};  // a root guard
    gc.subnet_base = kSubnetBase;
    gc.r_y = 250;
    gc.scheme = scheme;
    gc.activation_threshold_rps = activation_threshold;
    // Benchmark-style limiter settings: high enough that a single polite
    // closed-loop requester is never throttled (the paper's throughput
    // tests push 110K req/s from one LRS through the guard). Tests that
    // exercise the limiters pass the paper's tight settings via `tweak`.
    gc.rl1.per_address_rate = 1e6;
    gc.rl1.per_address_burst = 1e5;
    gc.rl2.per_host_rate = 1e6;
    gc.rl2.per_host_burst = 1e5;
    if (tweak) tweak(gc);
    guard = std::make_unique<RemoteGuardNode>(sim, "guard", gc, ans.get());
    guard->install(/*subnet_prefix_len=*/24);

    LrsSimulatorNode::Config dc;
    dc.address = kLrsIp;
    dc.target = {kAnsIp, net::kDnsPort};
    dc.mode = mode;
    dc.concurrency = concurrency;
    driver = std::make_unique<LrsSimulatorNode>(sim, "driver", dc);
    sim.add_host_route(kLrsIp, driver.get());
    sim.set_default_latency(microseconds(200));  // 0.4 ms RTT testbed
  }

  void run(SimDuration d) {
    driver->start();
    sim.run_for(d);
    driver->stop();
  }
};

// --- NS-name scheme ----------------------------------------------------------

TEST(NsNameScheme, CookieDanceCompletes) {
  GuardBed bed(Scheme::NsName, DriveMode::NsNameMiss);
  bed.run(milliseconds(100));
  EXPECT_GT(bed.driver->driver_stats().completed, 10u);
  EXPECT_EQ(bed.driver->driver_stats().timeouts, 0u);
  EXPECT_EQ(bed.driver->driver_stats().unexpected, 0u);
  // Every completed request minted one cookie and checked one.
  EXPECT_GE(bed.guard->guard_stats().cookies_minted, 10u);
  EXPECT_GE(bed.guard->guard_stats().cookie_checks, 10u);
  EXPECT_EQ(bed.guard->guard_stats().spoofs_dropped, 0u);
}

TEST(NsNameScheme, AnsOnlySeesRestoredQuestions) {
  GuardBed bed(Scheme::NsName, DriveMode::NsNameMiss);
  bed.run(milliseconds(50));
  // The ANS must see exactly one query per completed request (the
  // restored next-level question), never the fabricated cookie name.
  EXPECT_EQ(bed.ans->ans_stats().udp_queries,
            bed.driver->driver_stats().completed);
}

TEST(NsNameScheme, HitPathSkipsFabrication) {
  GuardBed bed(Scheme::NsName, DriveMode::NsNameHit);
  bed.run(milliseconds(100));
  EXPECT_GT(bed.driver->driver_stats().completed, 10u);
  // Only the priming request fabricates a referral.
  EXPECT_EQ(bed.guard->guard_stats().fabricated_referrals, 1u);
}

TEST(NsNameScheme, SpoofedFloodNeverReachesAns) {
  GuardBed bed(Scheme::NsName, DriveMode::NsNameMiss);
  attack::SpoofedFloodNode attacker(
      bed.sim, "attacker",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                                    .target = {kAnsIp, net::kDnsPort},
                                    .rate = 20000});
  attacker.start();
  bed.run(milliseconds(100));
  attacker.stop();
  // Attack requests without cookies get fabricated referrals (cheap) or
  // are RL1-throttled; none carries a valid cookie, so none is forwarded
  // beyond the legitimate driver's traffic.
  EXPECT_EQ(bed.ans->ans_stats().udp_queries,
            bed.driver->driver_stats().completed);
  // And the legitimate driver still finished its dances: zero false
  // positives (§V).
  EXPECT_GT(bed.driver->driver_stats().completed, 10u);
  EXPECT_EQ(bed.driver->driver_stats().timeouts, 0u);
}

TEST(NsNameScheme, GuessedCookieLabelsDropped) {
  GuardBed bed(Scheme::NsName, DriveMode::NsNameMiss);
  attack::CookieGuessNode guesser(
      bed.sim, "guesser",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 8),
                                    .target = {kAnsIp, net::kDnsPort},
                                    .rate = 10000},
      attack::CookieGuessNode::GuessConfig{
          .mode = attack::CookieGuessNode::Mode::NsNameLabel,
          .victim = Ipv4Address(10, 99, 0, 1),
          .zone = dns::DomainName{}});
  guesser.start();
  bed.run(milliseconds(100));
  guesser.stop();
  // ~1000 guesses against a 2^32 range: none should pass.
  EXPECT_GT(bed.guard->guard_stats().spoofs_dropped, 500u);
  EXPECT_EQ(bed.ans->ans_stats().udp_queries,
            bed.driver->driver_stats().completed);
}

// --- fabricated NS name + IP scheme ------------------------------------------

TEST(FabricatedScheme, ThreeExchangeDanceCompletes) {
  GuardBed bed(Scheme::FabricatedNsIp, DriveMode::FabricatedMiss);
  bed.run(milliseconds(100));
  EXPECT_GT(bed.driver->driver_stats().completed, 10u);
  EXPECT_EQ(bed.driver->driver_stats().unexpected, 0u);
  EXPECT_EQ(bed.guard->guard_stats().spoofs_dropped, 0u);
  EXPECT_EQ(bed.ans->ans_stats().udp_queries,
            bed.driver->driver_stats().completed);
}

TEST(FabricatedScheme, HitPathIsOneExchange) {
  GuardBed bed(Scheme::FabricatedNsIp, DriveMode::FabricatedHit);
  bed.run(milliseconds(100));
  const auto& d = bed.driver->driver_stats();
  EXPECT_GT(d.completed, 10u);
  // Steady state: one exchange per request (plus the 3-exchange priming).
  EXPECT_LE(d.exchanges_sent, d.completed + 4);
}

TEST(FabricatedScheme, SubnetSprayPenetratesAtOneOverRy) {
  GuardBed bed(Scheme::FabricatedNsIp, DriveMode::FabricatedHit);
  attack::CookieGuessNode sprayer(
      bed.sim, "sprayer",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 8),
                                    .target = {kAnsIp, net::kDnsPort},
                                    .rate = 50000},
      attack::CookieGuessNode::GuessConfig{
          .mode = attack::CookieGuessNode::Mode::SubnetAddress,
          .victim = Ipv4Address(10, 99, 0, 1),
          .subnet_base = kSubnetBase,
          .r_y = 250});
  sprayer.start();
  bed.run(milliseconds(200));
  sprayer.stop();
  const auto& g = bed.guard->guard_stats();
  std::uint64_t attack_requests = sprayer.flood_stats().sent;
  // §III.G: 1/R_y of sprayed requests carry the right y. Expect ~0.4%.
  std::uint64_t penetrated =
      g.forwarded_to_ans - bed.driver->driver_stats().completed;
  double ratio = static_cast<double>(penetrated) /
                 static_cast<double>(attack_requests);
  EXPECT_GT(ratio, 0.0005);
  EXPECT_LT(ratio, 0.02);
}

// --- TCP-based scheme ---------------------------------------------------------

TEST(TcpScheme, RedirectAndProxyCompleteQueries) {
  GuardBed bed(Scheme::TcpRedirect, DriveMode::TcpWithRedirect, 4);
  bed.run(milliseconds(200));
  const auto& d = bed.driver->driver_stats();
  EXPECT_GT(d.completed, 10u);
  EXPECT_EQ(d.unexpected, 0u);
  EXPECT_GE(bed.guard->guard_stats().tc_redirects, d.completed);
  EXPECT_EQ(bed.guard->guard_stats().proxy_queries, d.completed);
  // The ANS sees only UDP (the proxy converts), one query per request.
  EXPECT_EQ(bed.ans->ans_stats().udp_queries, d.completed);
}

TEST(TcpScheme, DirectTcpAlsoServed) {
  GuardBed bed(Scheme::TcpRedirect, DriveMode::TcpDirect, 4);
  bed.run(milliseconds(200));
  EXPECT_GT(bed.driver->driver_stats().completed, 10u);
  EXPECT_EQ(bed.driver->driver_stats().unexpected, 0u);
}

TEST(TcpScheme, ProxyConnectionsAreCleanedUp) {
  GuardBed bed(Scheme::TcpRedirect, DriveMode::TcpDirect, 8);
  bed.run(milliseconds(200));
  bed.sim.run_for(milliseconds(50));  // drain teardown
  EXPECT_LE(bed.guard->proxy_connections(), 8u);
}

// --- modified-DNS scheme -------------------------------------------------------

// A server that never answers: proxied queries stay in flight, so the
// guard's NAT entries stay live (collision tests) or go stale (reap
// tests) on demand.
class BlackholeNode : public sim::Node {
 public:
  BlackholeNode(sim::Simulator& s, std::string name)
      : sim::Node(s, std::move(name)) {}

 protected:
  SimDuration process(const net::Packet&) override { return {}; }
};

struct NatBed {
  sim::Simulator sim;
  BlackholeNode ans{sim, "ans"};
  std::unique_ptr<RemoteGuardNode> guard;
  std::vector<std::unique_ptr<LrsSimulatorNode>> drivers;

  explicit NatBed(std::function<void(RemoteGuardNode::Config&)> tweak = {}) {
    RemoteGuardNode::Config gc;
    gc.guard_address = kGuardIp;
    gc.ans_address = kAnsIp;
    gc.subnet_base = kSubnetBase;
    gc.scheme = Scheme::TcpRedirect;
    gc.rl1.per_address_rate = 1e6;
    gc.rl1.per_address_burst = 1e5;
    gc.rl2.per_host_rate = 1e6;
    gc.rl2.per_host_burst = 1e5;
    if (tweak) tweak(gc);
    guard = std::make_unique<RemoteGuardNode>(sim, "guard", gc, &ans);
    guard->install();
    sim.set_default_latency(microseconds(200));
  }

  LrsSimulatorNode* add_driver(const std::string& name, Ipv4Address ip,
                               int concurrency, SimDuration timeout) {
    LrsSimulatorNode::Config dc;
    dc.address = ip;
    dc.target = {kAnsIp, net::kDnsPort};
    dc.mode = DriveMode::TcpDirect;
    dc.concurrency = concurrency;
    dc.timeout = timeout;
    drivers.push_back(std::make_unique<LrsSimulatorNode>(sim, name, dc));
    sim.add_host_route(ip, drivers.back().get());
    return drivers.back().get();
  }
};

TEST(TcpScheme, NatPortCollisionProbesFreshPort) {
  // Regression: the NAT table is keyed by guard source port; a colliding
  // allocation used to overwrite the old entry silently, orphaning its
  // in-flight ANS query and leaking the client connection.
  NatBed bed;
  auto* d1 = bed.add_driver("d1", Ipv4Address(10, 0, 1, 1), 4, seconds(5));
  bed.guard->set_next_nat_port(30000);
  d1->start();
  bed.sim.run_for(milliseconds(50));
  ASSERT_EQ(bed.guard->nat_entries(), 4u);

  // Rewind the allocator onto the live entries: the next queries must
  // detect the collisions and probe fresh ports.
  bed.guard->set_next_nat_port(30000);
  auto* d2 = bed.add_driver("d2", Ipv4Address(10, 0, 1, 2), 4, seconds(5));
  d2->start();
  bed.sim.run_for(milliseconds(50));
  d1->stop();
  d2->stop();

  EXPECT_EQ(bed.guard->nat_entries(), 8u)
      << "colliding allocations must coexist on fresh ports, not overwrite";
  EXPECT_EQ(bed.guard->nat_table_stats().evicted_capacity.value(), 0u);
  EXPECT_EQ(bed.guard->drop_counters().value(
                obs::DropReason::kStateTableFull),
            0u);
}

TEST(TcpScheme, NatEntriesReapedWhenAnsNeverReplies) {
  // Entries whose ANS reply never arrives must not accumulate: they are
  // TTL-reaped on later proxy activity and their client connections get
  // closed instead of dangling.
  NatBed bed([](RemoteGuardNode::Config& gc) {
    gc.nat_ttl = milliseconds(50);
  });
  // d1's workers wait far past the NAT TTL, so their entries go stale
  // while the connections stay open.
  auto* d1 = bed.add_driver("d1", Ipv4Address(10, 0, 1, 1), 4, seconds(5));
  d1->start();
  bed.sim.run_for(milliseconds(60));
  ASSERT_EQ(bed.guard->nat_entries(), 4u);

  // Fresh proxy activity from another client reaps the stale entries and
  // closes their dangling connections.
  auto* d2 = bed.add_driver("d2", Ipv4Address(10, 0, 1, 2), 4, seconds(5));
  d2->start();
  bed.sim.run_for(milliseconds(40));
  d1->stop();
  d2->stop();

  EXPECT_GE(bed.guard->nat_table_stats().expired_ttl.value(), 4u);
  EXPECT_GE(bed.guard->drop_counters().value(obs::DropReason::kProxyTimeout),
            4u);
  EXPECT_LE(bed.guard->nat_entries(), 4u) << "stale entries must be gone";
  // Occupancy never exceeded the in-flight working set.
  EXPECT_LE(bed.guard->nat_table_stats().occupancy.max(), 8);
}

TEST(TcpScheme, NatTableCapacityRecyclesLruNotUnbounded) {
  // At capacity the oldest in-flight entry is recycled (connection
  // closed, kStateTableFull counted) instead of the table growing.
  NatBed bed([](RemoteGuardNode::Config& gc) {
    gc.nat_table_capacity = 4;
  });
  auto* d1 = bed.add_driver("d1", Ipv4Address(10, 0, 1, 1), 8, seconds(5));
  d1->start();
  bed.sim.run_for(milliseconds(100));
  d1->stop();

  EXPECT_LE(bed.guard->nat_entries(), 4u);
  EXPECT_GE(bed.guard->nat_table_stats().evicted_capacity.value(), 4u);
  EXPECT_GE(bed.guard->drop_counters().value(
                obs::DropReason::kStateTableFull),
            4u);
  EXPECT_LE(bed.guard->nat_table_stats().occupancy.max(), 4);
}

TEST(ModifiedScheme, CookieExchangeThenQuery) {
  GuardBed bed(Scheme::ModifiedDns, DriveMode::ModifiedMiss);
  bed.run(milliseconds(100));
  const auto& d = bed.driver->driver_stats();
  EXPECT_GT(d.completed, 10u);
  EXPECT_EQ(d.unexpected, 0u);
  EXPECT_GE(bed.guard->guard_stats().cookie_replies, d.completed);
  EXPECT_EQ(bed.ans->ans_stats().udp_queries, d.completed);
}

TEST(ModifiedScheme, CachedCookieIsOneExchange) {
  GuardBed bed(Scheme::ModifiedDns, DriveMode::ModifiedHit);
  bed.run(milliseconds(100));
  const auto& d = bed.driver->driver_stats();
  EXPECT_GT(d.completed, 10u);
  EXPECT_LE(d.exchanges_sent, d.completed + 3);
  // Exactly one cookie mint (the priming request).
  EXPECT_EQ(bed.guard->guard_stats().cookies_minted, 1u);
}

TEST(ModifiedScheme, RandomTxtCookiesDropped) {
  GuardBed bed(Scheme::ModifiedDns, DriveMode::ModifiedHit);
  attack::CookieGuessNode guesser(
      bed.sim, "guesser",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 8),
                                    .target = {kAnsIp, net::kDnsPort},
                                    .rate = 10000},
      attack::CookieGuessNode::GuessConfig{
          .mode = attack::CookieGuessNode::Mode::TxtCookie,
          .victim = Ipv4Address(10, 99, 0, 1)});
  guesser.start();
  bed.run(milliseconds(100));
  guesser.stop();
  EXPECT_GT(bed.guard->guard_stats().spoofs_dropped, 500u);
  // completed + the one priming exchange; nothing from the guesser.
  EXPECT_LE(bed.ans->ans_stats().udp_queries,
            bed.driver->driver_stats().completed + 1);
}

TEST(ModifiedScheme, StrippedBeforeAns) {
  // §III.D msg 5: "the ANS doesn't see any cookie extension". Verified
  // structurally: the ANS simulator decodes every request; cookie TXT
  // records in additional would change nothing for it, so instead check
  // at the guard: forwarded == completed and each was transformed.
  GuardBed bed(Scheme::ModifiedDns, DriveMode::ModifiedHit);
  bed.run(milliseconds(50));
  // completed, plus the priming exchange and at most one in-flight
  // request at stop time.
  EXPECT_GE(bed.guard->guard_stats().forwarded_to_ans,
            bed.driver->driver_stats().completed);
  EXPECT_LE(bed.guard->guard_stats().forwarded_to_ans,
            bed.driver->driver_stats().completed + 2);
}

// --- activation threshold (§IV.C) ---------------------------------------------

TEST(ActivationThreshold, PassThroughBelowThreshold) {
  // Threshold far above the driver's offered rate: the guard must not
  // interfere; plain queries flow straight to the ANS.
  GuardBed bed(Scheme::NsName, DriveMode::PlainUdp, 1,
               /*activation_threshold=*/1e9);
  bed.run(milliseconds(100));
  EXPECT_GT(bed.driver->driver_stats().completed, 10u);
  EXPECT_GT(bed.guard->guard_stats().forwarded_inactive, 10u);
  EXPECT_EQ(bed.guard->guard_stats().fabricated_referrals, 0u);
}

TEST(ActivationThreshold, KicksInUnderFlood) {
  GuardBed bed(Scheme::NsName, DriveMode::NsNameMiss, 1,
               /*activation_threshold=*/5000.0);
  attack::SpoofedFloodNode attacker(
      bed.sim, "attacker",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                                    .target = {kAnsIp, net::kDnsPort},
                                    .rate = 50000});
  attacker.start();
  bed.run(milliseconds(200));
  attacker.stop();
  // Once the estimator crosses 5K req/s, spoof detection engages and the
  // flood stops reaching the ANS.
  EXPECT_TRUE(bed.guard->protection_active());
  EXPECT_GT(bed.guard->guard_stats().fabricated_referrals, 100u);
  // Most of the flood must NOT have reached the ANS.
  EXPECT_LT(bed.ans->ans_stats().udp_queries,
            attacker.flood_stats().sent / 2);
}

// --- rate limiters in situ -----------------------------------------------------

TEST(RateLimiter2, ThrottlesVerifiedZombie) {
  GuardBed bed(Scheme::ModifiedDns, DriveMode::ModifiedHit, 1, 0.0,
               [](RemoteGuardNode::Config& gc) {
                 gc.rl2 = ratelimit::VerifiedRequestLimiter::Config{};
               });
  // A zombie with a real address plays by the rules (gets a cookie via
  // the driver protocol) but floods. Simplify: a second driver at very
  // high concurrency IS the zombie; RL2 must cap what the ANS sees from
  // it while the first driver keeps its share.
  LrsSimulatorNode::Config zc;
  zc.address = Ipv4Address(10, 0, 2, 2);
  zc.target = {kAnsIp, net::kDnsPort};
  zc.mode = DriveMode::ModifiedHit;
  zc.concurrency = 64;
  zc.timeout = milliseconds(5);
  auto zombie = std::make_unique<LrsSimulatorNode>(bed.sim, "zombie", zc);
  bed.sim.add_host_route(zc.address, zombie.get());

  zombie->start();
  bed.run(seconds(1));
  zombie->stop();

  // RL2 defaults: 200 req/s per host. The zombie's completions must be
  // bounded near that, far below its offered load.
  EXPECT_LT(zombie->driver_stats().completed, 400u);
  EXPECT_GT(bed.guard->guard_stats().rl2_throttled, 1000u);
  // The polite driver (1 outstanding, ~2.5K/s offered max) is also capped
  // by RL2 but keeps completing requests.
  EXPECT_GT(bed.driver->driver_stats().completed, 150u);
}

TEST(RateLimiter1, BoundsCookieReflection) {
  GuardBed bed(Scheme::NsName, DriveMode::NsNameHit, 1, 0.0,
               [](RemoteGuardNode::Config& gc) {
                 gc.rl1 = ratelimit::CookieResponseLimiter::Config{};
               });
  // Spoofed flood pretending to be one victim: RL1 must cap the
  // fabricated-referral responses reflected at that victim.
  attack::VictimNode victim(bed.sim, "victim", Ipv4Address(10, 99, 0, 1));
  bed.sim.add_host_route(Ipv4Address(10, 99, 0, 1), &victim);
  attack::SpoofedFloodNode attacker(
      bed.sim, "attacker",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                                    .target = {kAnsIp, net::kDnsPort},
                                    .rate = 20000},
      attack::SpoofedFloodNode::SpoofConfig{
          .spoof_base = Ipv4Address(10, 99, 0, 1), .spoof_range = 1});
  attacker.start();
  bed.run(seconds(1));
  attacker.stop();
  // 20K spoofed requests in 1s, but RL1 (default 100/s + burst) caps the
  // reflected responses.
  EXPECT_LT(victim.packets_received(), 300u);
  EXPECT_GT(bed.guard->guard_stats().rl1_throttled, 15000u);
}

// Parameterized zero-false-positive sweep: under a heavy spoofed flood,
// every scheme keeps serving its legitimate requester without timeouts.
struct SchemeModeParam {
  Scheme scheme;
  DriveMode mode;
};

class ZeroFalsePositives
    : public ::testing::TestWithParam<SchemeModeParam> {};

TEST_P(ZeroFalsePositives, LegitNeverDropped) {
  auto p = GetParam();
  GuardBed bed(p.scheme, p.mode, 2);
  attack::SpoofedFloodNode attacker(
      bed.sim, "attacker",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                                    .target = {kAnsIp, net::kDnsPort},
                                    .rate = 30000});
  attacker.start();
  bed.run(milliseconds(300));
  attacker.stop();
  EXPECT_GT(bed.driver->driver_stats().completed, 20u);
  EXPECT_EQ(bed.driver->driver_stats().timeouts, 0u)
      << "scheme dropped legitimate traffic under attack";
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ZeroFalsePositives,
    ::testing::Values(
        SchemeModeParam{Scheme::NsName, DriveMode::NsNameMiss},
        SchemeModeParam{Scheme::NsName, DriveMode::NsNameHit},
        SchemeModeParam{Scheme::FabricatedNsIp, DriveMode::FabricatedMiss},
        SchemeModeParam{Scheme::FabricatedNsIp, DriveMode::FabricatedHit},
        SchemeModeParam{Scheme::ModifiedDns, DriveMode::ModifiedMiss},
        SchemeModeParam{Scheme::ModifiedDns, DriveMode::ModifiedHit},
        SchemeModeParam{Scheme::TcpRedirect, DriveMode::TcpWithRedirect}));

}  // namespace
}  // namespace dnsguard
