// The guard's cookie encodings: NS-name labels, fabricated addresses,
// TXT records (§III.E).
#include <gtest/gtest.h>

#include <vector>

#include "common/hex.h"
#include "guard/cookie_engine.h"

namespace dnsguard::guard {
namespace {

using net::Ipv4Address;

TEST(CookieLabel, EncodesPrefixHexAndRestore) {
  CookieEngine e(1);
  auto label = e.make_cookie_label(Ipv4Address(10, 0, 1, 1), "com");
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(label->substr(0, 2), "PR");
  EXPECT_EQ(label->size(), 2u + 8u + 3u);
  EXPECT_TRUE(dnsguard::is_hex(label->substr(2, 8)));
  EXPECT_EQ(label->substr(10), "com");
}

TEST(CookieLabel, ParsesBack) {
  CookieEngine e(1);
  auto label = e.make_cookie_label(Ipv4Address(10, 0, 1, 1), "foo");
  auto parsed = CookieEngine::parse_cookie_label(*label);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->restore_label, "foo");
  EXPECT_TRUE(e.verify_prefix(Ipv4Address(10, 0, 1, 1),
                              parsed->cookie_prefix));
  EXPECT_FALSE(e.verify_prefix(Ipv4Address(10, 0, 1, 2),
                               parsed->cookie_prefix));
}

TEST(CookieLabel, ParseRejectsNonCookieLabels) {
  EXPECT_FALSE(CookieEngine::parse_cookie_label("www").has_value());
  EXPECT_FALSE(CookieEngine::parse_cookie_label("PRshort").has_value());
  EXPECT_FALSE(CookieEngine::parse_cookie_label("PRzzzzzzzzcom").has_value());
  EXPECT_FALSE(CookieEngine::parse_cookie_label("XXa1b2c3d4com").has_value());
  // Empty restore label is structurally fine.
  EXPECT_TRUE(CookieEngine::parse_cookie_label("PRa1b2c3d4").has_value());
}

TEST(CookieLabel, RespectsLabelLengthLimit) {
  CookieEngine e(1);
  // 2 + 8 + 53 = 63: fits exactly.
  EXPECT_TRUE(
      e.make_cookie_label(Ipv4Address(1, 2, 3, 4), std::string(53, 'a'))
          .has_value());
  // 2 + 8 + 54 = 64: too long for one label.
  EXPECT_FALSE(
      e.make_cookie_label(Ipv4Address(1, 2, 3, 4), std::string(54, 'a'))
          .has_value());
}

TEST(CookieLabel, DistinctPerRequester) {
  CookieEngine e(1);
  auto a = e.make_cookie_label(Ipv4Address(10, 0, 1, 1), "com");
  auto b = e.make_cookie_label(Ipv4Address(10, 0, 1, 2), "com");
  EXPECT_NE(*a, *b);
}

TEST(CookieAddress, InRangeAndVerifiable) {
  CookieEngine e(7);
  Ipv4Address base(10, 7, 7, 0);
  for (std::uint32_t ip = 1; ip < 64; ++ip) {
    Ipv4Address requester(0x0a000000u + ip);
    Ipv4Address c2 = e.make_cookie_address(requester, base, 250);
    EXPECT_GT(c2.value(), base.value());
    EXPECT_LE(c2.value(), base.value() + 250);
    EXPECT_TRUE(e.verify_cookie_address(requester, c2, base, 250));
  }
}

TEST(CookieAddress, WrongAddressRejected) {
  CookieEngine e(7);
  Ipv4Address base(10, 7, 7, 0);
  Ipv4Address requester(10, 0, 1, 1);
  Ipv4Address c2 = e.make_cookie_address(requester, base, 250);
  Ipv4Address wrong(c2.value() == base.value() + 1 ? base.value() + 2
                                                   : base.value() + 1);
  EXPECT_FALSE(e.verify_cookie_address(requester, wrong, base, 250));
  // Out-of-range offsets always fail.
  EXPECT_FALSE(e.verify_cookie_address(requester, base, base, 250));
  EXPECT_FALSE(e.verify_cookie_address(
      requester, Ipv4Address(base.value() + 251), base, 250));
}

TEST(CookieAddress, GuessingSucceedsAtOneOverRy) {
  // §III.G: spraying the subnet penetrates with probability 1/R_y.
  CookieEngine e(7);
  Ipv4Address base(10, 7, 7, 0);
  const std::uint32_t r_y = 250;
  int hits = 0;
  const int requesters = 500;
  for (int i = 0; i < requesters; ++i) {
    Ipv4Address victim(0x0a000000u + static_cast<std::uint32_t>(i));
    for (std::uint32_t y = 0; y < r_y; ++y) {
      if (e.verify_cookie_address(victim, Ipv4Address(base.value() + 1 + y),
                                  base, r_y)) {
        hits++;
      }
    }
  }
  // Exactly one offset per victim is valid.
  EXPECT_EQ(hits, requesters);
}

TEST(TxtCookie, AttachExtractStrip) {
  CookieEngine e(5);
  dns::Message m = dns::Message::query(
      1, *dns::DomainName::parse("www.foo.com"), dns::RrType::A, false);
  EXPECT_FALSE(CookieEngine::extract_txt_cookie(m).has_value());

  crypto::Cookie c = e.mint(Ipv4Address(10, 0, 1, 1));
  CookieEngine::attach_txt_cookie(m, c, 3600);
  auto extracted = CookieEngine::extract_txt_cookie(m);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(*extracted, c);

  // Survives the wire.
  auto decoded = dns::Message::decode(BytesView(m.encode()));
  ASSERT_TRUE(decoded.has_value());
  auto wire_cookie = CookieEngine::extract_txt_cookie(*decoded);
  ASSERT_TRUE(wire_cookie.has_value());
  EXPECT_EQ(*wire_cookie, c);

  CookieEngine::strip_txt_cookie(m);
  EXPECT_FALSE(CookieEngine::extract_txt_cookie(m).has_value());
  EXPECT_TRUE(m.additional.empty());
}

TEST(TxtCookie, ZeroCookieDetected) {
  crypto::Cookie zero{};
  EXPECT_TRUE(CookieEngine::is_zero_cookie(zero));
  zero[3] = 1;
  EXPECT_FALSE(CookieEngine::is_zero_cookie(zero));
}

TEST(TxtCookie, StripLeavesOtherTxtRecordsAlone) {
  dns::Message m;
  m.additional.push_back(dns::ResourceRecord::txt(
      *dns::DomainName::parse("info.example"),
      dns::TxtRdata::single(BytesView(Bytes{'h', 'i'})), 60));
  CookieEngine::attach_txt_cookie(m, crypto::Cookie{}, 0);
  CookieEngine::strip_txt_cookie(m);
  ASSERT_EQ(m.additional.size(), 1u);
  EXPECT_EQ(m.additional[0].name.to_string(), "info.example.");
}

TEST(TxtCookie, MessageSizeSymmetry) {
  // §III.D: cookie request (msg 2) and reply (msg 3) are the same size,
  // so the exchange amplifies nothing.
  CookieEngine e(5);
  dns::Message req = dns::Message::query(
      9, *dns::DomainName::parse("www.foo.com"), dns::RrType::A, false);
  CookieEngine::attach_txt_cookie(req, crypto::Cookie{}, 0);

  dns::Message resp = dns::Message::response_to(req);
  // The reply's cookie replaces the request's zero cookie.
  CookieEngine::attach_txt_cookie(resp, e.mint(Ipv4Address(1, 2, 3, 4)), 0);

  EXPECT_EQ(req.encode().size(), resp.encode().size());
}

TEST(CookieLabel, ParsesExactly63ByteLabel) {
  CookieEngine e(1);
  // 2 + 8 + 53 = 63: the maximum legal DNS label.
  std::string restore(53, 'a');
  auto label = e.make_cookie_label(Ipv4Address(1, 2, 3, 4), restore);
  ASSERT_TRUE(label.has_value());
  ASSERT_EQ(label->size(), 63u);
  auto parsed = CookieEngine::parse_cookie_label(*label);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->restore_label, restore);
  EXPECT_TRUE(e.verify_prefix(Ipv4Address(1, 2, 3, 4),
                              parsed->cookie_prefix));
}

TEST(CookieLabel, ParseAcceptsUppercaseHex) {
  // Resolvers may 0x20-randomize or uppercase qnames; the hex cookie value
  // must decode case-insensitively.
  auto lower = CookieEngine::parse_cookie_label("PRa1b2c3d4com");
  auto upper = CookieEngine::parse_cookie_label("PRA1B2C3D4com");
  ASSERT_TRUE(lower.has_value());
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(lower->cookie_prefix, upper->cookie_prefix);
  EXPECT_EQ(upper->cookie_prefix, 0xa1b2c3d4u);
}

TEST(CookieLabel, CookieShapedRestoreLabelRoundTrips) {
  // A restore label that is itself cookie-shaped ("PR" + 8 hex) must come
  // back intact: the parser consumes exactly one cookie layer.
  CookieEngine e(1);
  const std::string inner = "PRdeadbeef";
  auto label = e.make_cookie_label(Ipv4Address(9, 9, 9, 9), inner);
  ASSERT_TRUE(label.has_value());
  auto parsed = CookieEngine::parse_cookie_label(*label);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->restore_label, inner);
  // The restored label would parse as a cookie again (it is cookie-shaped),
  // but with the inner hex value — one layer at a time.
  auto inner_parsed = CookieEngine::parse_cookie_label(parsed->restore_label);
  ASSERT_TRUE(inner_parsed.has_value());
  EXPECT_EQ(inner_parsed->cookie_prefix, 0xdeadbeefu);
  EXPECT_TRUE(inner_parsed->restore_label.empty());
}

TEST(Rotation, EngineAcceptsPreviousGeneration) {
  CookieEngine e(11);
  Ipv4Address ip(10, 0, 1, 1);
  auto label = e.make_cookie_label(ip, "com");
  auto parsed = CookieEngine::parse_cookie_label(*label);
  e.rotate(12);
  EXPECT_TRUE(e.verify_prefix(ip, parsed->cookie_prefix));
  e.rotate(13);
  EXPECT_FALSE(e.verify_prefix(ip, parsed->cookie_prefix));
}

TEST(Rotation, CookieAddressSurvivesOneRotationButNotTwo) {
  // Regression: verify_cookie_address only recomputed under the current
  // key, so a weekly rotation dropped every legitimate LRS follow-up query
  // addressed to a pre-rotation cookie address as spoofed.
  CookieEngine e(11);
  Ipv4Address base(10, 7, 7, 0);
  const std::uint32_t r_y = 250;
  const int n = 100;
  std::vector<Ipv4Address> addrs;
  for (int i = 0; i < n; ++i) {
    addrs.push_back(e.make_cookie_address(
        Ipv4Address(0x0a000100u + static_cast<std::uint32_t>(i)), base, r_y));
  }

  e.rotate(12);
  int after_one = 0;
  for (int i = 0; i < n; ++i) {
    if (e.verify_cookie_address(
            Ipv4Address(0x0a000100u + static_cast<std::uint32_t>(i)),
            addrs[i], base, r_y)) {
      after_one++;
    }
  }
  EXPECT_EQ(after_one, n);  // the old code dropped all of these

  // Two rotations age the address out; only mod-R_y collisions with the
  // two live generations may still pass (~2/R_y per requester).
  e.rotate(13);
  int after_two = 0;
  for (int i = 0; i < n; ++i) {
    if (e.verify_cookie_address(
            Ipv4Address(0x0a000100u + static_cast<std::uint32_t>(i)),
            addrs[i], base, r_y)) {
      after_two++;
    }
  }
  EXPECT_LT(after_two, n / 5);
}

TEST(CookieAddress, DegenerateRyMintVerifySymmetry) {
  // Regression: mint clamps r_y == 0 to 1, and caps huge divisors so
  // base + 1 + y cannot wrap the 32-bit address space. The verify path
  // must clamp identically for every degenerate R_y, across rotation,
  // or each legitimate follow-up query under that config is dropped.
  CookieEngine e(31);
  Ipv4Address base(10, 7, 7, 0);
  const std::uint32_t max_u32 = 0xffffffffu;
  for (std::uint32_t r_y : {0u, 1u, 2u, 250u, max_u32}) {
    CookieEngine fresh(31);
    for (std::uint32_t i = 0; i < 16; ++i) {
      Ipv4Address requester(0x0a000200u + i);
      Ipv4Address c2 = fresh.make_cookie_address(requester, base, r_y);
      EXPECT_GT(c2.value(), base.value()) << "r_y=" << r_y;
      EXPECT_TRUE(fresh.verify_cookie_address(requester, c2, base, r_y))
          << "r_y=" << r_y << " i=" << i;
    }
    // Pre-rotation addresses still verify afterwards, same divisor math.
    Ipv4Address requester(10, 0, 3, 9);
    Ipv4Address c2 = fresh.make_cookie_address(requester, base, r_y);
    fresh.rotate(32);
    EXPECT_TRUE(fresh.verify_cookie_address(requester, c2, base, r_y))
        << "r_y=" << r_y;
  }
  // A subnet base near the top of the address space forces the cap even
  // for moderate R_y values.
  Ipv4Address high_base(0xfffffff0u);
  Ipv4Address requester(10, 0, 4, 4);
  Ipv4Address c2 = e.make_cookie_address(requester, high_base, 250);
  EXPECT_GT(c2.value(), high_base.value()) << "mint must not wrap";
  EXPECT_TRUE(e.verify_cookie_address(requester, c2, high_base, 250));
}

TEST(CookieAddress, RetiredAddressClassifiedStaleOnFailure) {
  CookieEngine e(47);
  Ipv4Address base(10, 7, 7, 0);
  Ipv4Address requester(10, 0, 5, 5);
  const std::uint32_t r_y = 250;
  Ipv4Address old_addr = e.make_cookie_address(requester, base, r_y);
  e.rotate(48);
  e.rotate(49);
  crypto::VerifyResult vr =
      e.verify_cookie_address_ex(requester, old_addr, base, r_y);
  // The offset could collide with one of the two live generations
  // (probability ~2/R_y); in the common case it fails and must be
  // classified stale, never accepted as current.
  if (!vr.ok) {
    EXPECT_TRUE(vr.stale);
  }
  // Out-of-range destinations are forgeries, not stale clients.
  crypto::VerifyResult out_of_range =
      e.verify_cookie_address_ex(requester, base, base, r_y);
  EXPECT_FALSE(out_of_range.ok);
  EXPECT_FALSE(out_of_range.stale);
}

TEST(VerifyJobs, BatchMatchesScalarVerifiersPerKind) {
  CookieEngine e(77);
  Ipv4Address base(10, 7, 7, 0);
  const std::uint32_t r_y = 250;

  std::vector<CookieEngine::VerifyJob> jobs;
  // kFull: one valid, one forged.
  Ipv4Address a(10, 0, 6, 1);
  crypto::Cookie good = e.mint(a);
  crypto::Cookie bad = good;
  bad[5] ^= 0xff;
  jobs.push_back({CookieEngine::VerifyJob::Kind::kFull, a, good, 0, {}});
  jobs.push_back({CookieEngine::VerifyJob::Kind::kFull, a, bad, 0, {}});
  // kPrefix: one valid, one forged.
  Ipv4Address b(10, 0, 6, 2);
  std::uint32_t prefix = crypto::cookie_prefix32(e.mint(b));
  jobs.push_back({CookieEngine::VerifyJob::Kind::kPrefix, b, {}, prefix, {}});
  jobs.push_back(
      {CookieEngine::VerifyJob::Kind::kPrefix, b, {}, prefix ^ 0x2, {}});
  // kAddress: one valid, one wrong offset.
  Ipv4Address c(10, 0, 6, 3);
  Ipv4Address c2 = e.make_cookie_address(c, base, r_y);
  Ipv4Address wrong(c2.value() == base.value() + 1 ? base.value() + 2
                                                   : base.value() + 1);
  jobs.push_back({CookieEngine::VerifyJob::Kind::kAddress, c, {}, 0, c2});
  jobs.push_back({CookieEngine::VerifyJob::Kind::kAddress, c, {}, 0, wrong});

  std::vector<crypto::VerifyResult> out(jobs.size());
  e.verify_jobs(jobs.data(), out.data(), jobs.size(), base, r_y);

  EXPECT_TRUE(out[0].ok);
  EXPECT_FALSE(out[1].ok);
  EXPECT_TRUE(out[2].ok);
  EXPECT_FALSE(out[3].ok);
  EXPECT_TRUE(out[4].ok);
  EXPECT_FALSE(out[5].ok);
  // And each agrees with its scalar counterpart, field for field.
  const crypto::VerifyResult scalar[] = {
      e.verify_ex(a, good),
      e.verify_ex(a, bad),
      e.verify_prefix_ex(b, prefix),
      e.verify_prefix_ex(b, prefix ^ 0x2),
      e.verify_cookie_address_ex(c, c2, base, r_y),
      e.verify_cookie_address_ex(c, wrong, base, r_y),
  };
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(out[i].ok, scalar[i].ok) << i;
    EXPECT_EQ(out[i].used_previous, scalar[i].used_previous) << i;
    EXPECT_EQ(out[i].stale, scalar[i].stale) << i;
  }
}

}  // namespace
}  // namespace dnsguard::guard
