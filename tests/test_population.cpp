// Aggregate client-population engine: sampler distributions match their
// configured parameters, the arrival stream is bit-for-bit reproducible
// from its seed, and sharding the stream by source hash reproduces the
// single-node run exactly (digest and counter sums).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "net/ipv4.h"
#include "sim/simulator.h"
#include "workload/population.h"

namespace dnsguard::workload {
namespace {

SimTime at(std::int64_t ms) { return SimTime{} + milliseconds(ms); }

TEST(InverseNormalCdf, MatchesKnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.8413), 1.0, 1e-3);
  // Symmetry about the median.
  EXPECT_NEAR(inverse_normal_cdf(0.1), -inverse_normal_cdf(0.9), 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.001), -inverse_normal_cdf(0.999), 1e-9);
}

TEST(ZipfSampler, ProbabilitiesAreNormalizedAndMonotone) {
  ZipfSampler z(1000, 1.0);
  EXPECT_EQ(z.universe(), 1000u);
  double sum = 0.0;
  for (std::uint32_t r = 0; r < z.universe(); ++r) {
    sum += z.probability(r);
    if (r > 0) EXPECT_LE(z.probability(r), z.probability(r - 1)) << r;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Zipf(1) head: P(0) = 1/H_1000 with H_1000 ~ 7.4855.
  EXPECT_NEAR(z.probability(0), 1.0 / 7.48547, 1e-4);
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchProbabilities) {
  ZipfSampler z(1000, 1.0);
  Rng rng(7);
  constexpr int kSamples = 200000;
  std::vector<int> hits(z.universe(), 0);
  for (int i = 0; i < kSamples; ++i) hits[z.sample(rng.uniform01())]++;
  for (std::uint32_t r : {0u, 1u, 2u, 10u}) {
    double expected = z.probability(r) * kSamples;
    EXPECT_NEAR(hits[r], expected, 0.1 * expected) << "rank " << r;
  }
  // The tail exists: ranks past the head still get sampled.
  int tail = 0;
  for (std::uint32_t r = 500; r < 1000; ++r) tail += hits[r];
  EXPECT_GT(tail, 0);
}

TEST(LognormalRateClasses, HeavyTailedAndNormalized) {
  LognormalRateClasses lr(32, 0.0, 1.6);
  ASSERT_EQ(lr.classes(), 32);
  for (int k = 1; k < lr.classes(); ++k) {
    EXPECT_GT(lr.rate(k), lr.rate(k - 1)) << "class " << k;
  }
  // Heavy tail: the mean sits well above the median exp(mu) = 1, near
  // the lognormal mean exp(sigma^2/2) ~ 3.6 (discretization truncates
  // the extreme tail, so allow a loose band).
  EXPECT_GT(lr.mean_rate(), 2.0);
  EXPECT_NEAR(lr.mean_rate(), std::exp(1.6 * 1.6 / 2.0),
              0.3 * std::exp(1.6 * 1.6 / 2.0));

  // sample_class draws senders proportionally to aggregate rate share:
  // with equal-population classes, class k's share is rate(k)/sum.
  double sum = 0.0;
  for (int k = 0; k < lr.classes(); ++k) sum += lr.rate(k);
  Rng rng(11);
  constexpr int kSamples = 100000;
  std::vector<int> hits(32, 0);
  for (int i = 0; i < kSamples; ++i) hits[lr.sample_class(rng.uniform01())]++;
  double top_share = lr.rate(31) / sum;
  EXPECT_NEAR(hits[31], top_share * kSamples, 0.1 * top_share * kSamples);
  // The slowest classes barely appear even though they are 1/32 of the
  // population — that is the heavy tail doing its job.
  EXPECT_LT(hits[0], kSamples / 320);
}

TEST(RttModel, SamplesFollowBucketWeights) {
  std::vector<RttModel::Bucket> buckets = {
      {0.6, milliseconds(10)}, {0.3, milliseconds(50)},
      {0.1, milliseconds(200)}};
  RttModel rtt(buckets);
  EXPECT_EQ(rtt.sample(0.0).ns, milliseconds(10).ns);
  EXPECT_EQ(rtt.sample(0.59).ns, milliseconds(10).ns);
  EXPECT_EQ(rtt.sample(0.65).ns, milliseconds(50).ns);
  EXPECT_EQ(rtt.sample(0.95).ns, milliseconds(200).ns);
  EXPECT_EQ(rtt.sample(0.999999).ns, milliseconds(200).ns);

  Rng rng(3);
  int slow = 0;
  for (int i = 0; i < 10000; ++i) {
    SimDuration d = rtt.sample(rng.uniform01());
    bool known = d.ns == milliseconds(10).ns || d.ns == milliseconds(50).ns ||
                 d.ns == milliseconds(200).ns;
    ASSERT_TRUE(known) << d.ns;
    if (d.ns == milliseconds(200).ns) slow++;
  }
  EXPECT_NEAR(slow, 1000, 150);
}

TEST(FlashCrowdEvent, EnvelopeRampsHoldsAndDecays) {
  FlashCrowdEvent e;
  e.start = at(1000);
  e.ramp = milliseconds(200);
  e.hold = milliseconds(400);
  e.decay = milliseconds(200);
  EXPECT_EQ(e.envelope(at(0)), 0.0);
  EXPECT_EQ(e.envelope(at(999)), 0.0);
  EXPECT_NEAR(e.envelope(at(1100)), 0.5, 1e-9);  // mid-ramp
  EXPECT_NEAR(e.envelope(at(1200)), 1.0, 1e-9);  // ramp complete
  EXPECT_NEAR(e.envelope(at(1400)), 1.0, 1e-9);  // holding
  EXPECT_NEAR(e.envelope(at(1700)), 0.5, 1e-9);  // mid-decay
  EXPECT_EQ(e.envelope(at(1801)), 0.0);          // over
}

PopulationConfig small_config() {
  PopulationConfig cfg;
  cfg.num_clients = 10000;
  cfg.base_rate = 5000.0;
  cfg.qname_universe = 1000;
  cfg.resolver_groups = 64;
  cfg.cache_ttl = milliseconds(500);
  cfg.seed = 42;
  return cfg;
}

TEST(PopulationEngine, RateAtFollowsEnvelopes) {
  PopulationConfig cfg = small_config();
  FlashCrowdEvent e;
  e.start = at(1000);
  e.ramp = milliseconds(200);
  e.hold = milliseconds(400);
  e.decay = milliseconds(200);
  e.peak_multiplier = 4.0;
  cfg.flash_events.push_back(e);
  PopulationEngine eng(cfg);

  EXPECT_NEAR(eng.rate_at(at(0)), 5000.0, 1e-6);      // flat diurnal
  EXPECT_NEAR(eng.rate_at(at(1400)), 25000.0, 1e-6);  // base * (1 + 4)
  EXPECT_NEAR(eng.rate_at(at(3000)), 5000.0, 1e-6);
  for (std::int64_t ms = 0; ms <= 3000; ms += 50) {
    EXPECT_LE(eng.rate_at(at(ms)), eng.max_rate() + 1e-6) << ms;
  }
}

TEST(PopulationEngine, SameSeedSameArrivalSequence) {
  PopulationConfig cfg = small_config();
  FlashCrowdEvent e;
  e.start = at(200);
  e.ramp = milliseconds(100);
  e.hold = milliseconds(300);
  e.decay = milliseconds(100);
  e.cohort_clients = 500;
  cfg.flash_events.push_back(e);

  PopulationEngine a(cfg);
  PopulationEngine b(cfg);
  for (int i = 0; i < 3000; ++i) {
    Arrival x = a.next();
    Arrival y = b.next();
    ASSERT_EQ(x.at.ns, y.at.ns) << i;
    ASSERT_EQ(x.client, y.client) << i;
    ASSERT_EQ(x.src.value(), y.src.value()) << i;
    ASSERT_EQ(x.qname_rank, y.qname_rank) << i;
    ASSERT_EQ(x.rtt.ns, y.rtt.ns) << i;
    ASSERT_EQ(x.flash, y.flash) << i;
    ASSERT_EQ(x.primed, y.primed) << i;
    ASSERT_EQ(x.cache_hit, y.cache_hit) << i;
  }
}

TEST(PopulationEngine, ArrivalsRespectConfiguredShape) {
  PopulationConfig cfg = small_config();
  FlashCrowdEvent e;
  e.start = at(200);
  e.ramp = milliseconds(100);
  e.hold = milliseconds(300);
  e.decay = milliseconds(100);
  e.cohort_clients = 500;
  e.hot_rank = 3;
  cfg.flash_events.push_back(e);
  PopulationEngine eng(cfg);

  SimTime prev{};
  std::uint64_t hits = 0, misses = 0, flash = 0, cohort = 0;
  std::uint64_t primed = 0, cold = 0;
  for (int i = 0; i < 5000; ++i) {
    Arrival a = eng.next();
    ASSERT_GE(a.at.ns, prev.ns) << i;  // time moves forward
    prev = a.at;
    ASSERT_LT(a.qname_rank, cfg.qname_universe);
    ASSERT_TRUE(a.src.in_subnet(cfg.prefix_base, cfg.prefix_len))
        << a.src.value();
    ASSERT_EQ(a.src.value(), eng.client_address(a.client).value());
    a.cache_hit ? hits++ : misses++;
    if (a.flash) {
      flash++;
      // Flash surges bypass the resolver-cache model (fresh names).
      ASSERT_FALSE(a.cache_hit);
      // Flash arrivals only occur inside the event's support.
      ASSERT_GE(a.at.ns, e.start.ns);
      ASSERT_LE(a.at.ns, (e.start + e.ramp + e.hold + e.decay).ns);
      if (a.client >= cfg.num_clients) cohort++;
    } else {
      ASSERT_LT(a.client, cfg.num_clients);
    }
    a.primed ? primed++ : cold++;
  }
  EXPECT_GT(hits, 100u);    // popular names get absorbed
  EXPECT_GT(misses, 100u);  // the tail still reaches the guard
  EXPECT_GT(flash, 200u);   // the surge materialized
  EXPECT_GT(cohort, 50u);   // with genuinely fresh sources
  EXPECT_GT(primed, cold);  // primed_fraction = 0.9 dominates
  EXPECT_GT(cold, 0u);
}

TEST(PopulationEngine, ShardAssignmentIsStableAndCovering) {
  PopulationEngine eng(small_config());
  std::vector<int> per_shard(4, 0);
  for (int i = 0; i < 4000; ++i) {
    Arrival a = eng.next();
    EXPECT_EQ(PopulationEngine::shard_of(a.src, 1), 0u);
    std::size_t s = PopulationEngine::shard_of(a.src, 4);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, PopulationEngine::shard_of(a.src, 4));  // stable
    per_shard[s]++;
  }
  for (int s = 0; s < 4; ++s) EXPECT_GT(per_shard[s], 400) << s;
}

// Runs `shard_count` population nodes against an unrouted target (no
// replies, so only first-send packets count) and folds their digests and
// counters together.
struct ShardRun {
  std::uint64_t digest = 0;
  std::uint64_t sent = 0;
  std::uint64_t offered = 0;
  std::uint64_t cache_hits = 0;
};

ShardRun run_shards(std::size_t shard_count) {
  sim::Simulator sim;
  ClientPopulationNode::Config cfg;
  cfg.population = small_config();
  cfg.target = {net::Ipv4Address{10, 9, 9, 9}, net::kDnsPort};
  cfg.shard_count = shard_count;
  std::vector<std::unique_ptr<ClientPopulationNode>> nodes;
  for (std::size_t i = 0; i < shard_count; ++i) {
    cfg.shard_index = i;
    nodes.push_back(std::make_unique<ClientPopulationNode>(
        sim, "pop" + std::to_string(i), cfg));
    nodes.back()->start();
  }
  sim.run_for(milliseconds(400));
  ShardRun out;
  for (auto& n : nodes) {
    out.digest += n->sent_digest();
    out.sent += n->population_stats().sent.value();
    out.offered += n->population_stats().offered.value();
    out.cache_hits += n->population_stats().cache_hits.value();
    n->stop();
  }
  return out;
}

TEST(ClientPopulationNode, DeterministicAcrossRerunsAndShardCounts) {
  ShardRun single = run_shards(1);
  EXPECT_GT(single.sent, 500u);
  EXPECT_GT(single.cache_hits, 50u);

  // Same seed, fresh simulator: bit-for-bit identical.
  ShardRun rerun = run_shards(1);
  EXPECT_EQ(single.digest, rerun.digest);
  EXPECT_EQ(single.sent, rerun.sent);
  EXPECT_EQ(single.offered, rerun.offered);

  // Split across 3 shards: each node replays the master sequence and
  // emits only its slice, so the merged run is exactly the single run.
  ShardRun sharded = run_shards(3);
  EXPECT_EQ(single.digest, sharded.digest);
  EXPECT_EQ(single.sent, sharded.sent);
  EXPECT_EQ(single.offered, sharded.offered);
  EXPECT_EQ(single.cache_hits, sharded.cache_hits);
}

}  // namespace
}  // namespace dnsguard::workload
