// JourneyTracker unit tests plus an end-to-end journey through the
// full stack: stub -> LRS -> guard -> ANS and back, with every hop
// contributing stage marks to one correlated journey.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "dns/name.h"
#include "guard/remote_guard.h"
#include "obs/journey.h"
#include "server/authoritative_node.h"
#include "server/resolver_node.h"
#include "server/stub_node.h"
#include "server/zone.h"
#include "sim/simulator.h"
#include "obs_test_support.h"

namespace dnsguard {
namespace {

using obs::JourneyKey;
using obs::JourneyTracker;

SimTime at(std::int64_t us) { return SimTime{} + microseconds(us); }

TEST(JourneyTracker, DisabledIsNoOp) {
  JourneyTracker jt;
  EXPECT_FALSE(jt.enabled());
  jt.mark({1, 2, 3}, "a", at(1));
  jt.end({1, 2, 3}, "b", at(2), true);
  EXPECT_EQ(jt.active_count(), 0u);
  EXPECT_EQ(jt.completed_count(), 0u);
  EXPECT_EQ(jt.stats().started, 0u);
}

TEST(JourneyTracker, MarkStartsAndEndCompletes) {
  JourneyTracker jt;
  jt.enable(16, 16);
  JourneyKey k{0x0a000101u, 42, 7};
  jt.mark(k, "stub.query", at(0));
  jt.mark(k, "guard.rx", at(100));
  EXPECT_EQ(jt.active_count(), 1u);
  const JourneyTracker::Journey* j = jt.find(k);
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->n_events, 2u);
  EXPECT_EQ(j->events[0].stage, "stub.query");

  jt.end(k, "stub.answered", at(400), /*ok=*/true);
  EXPECT_EQ(jt.active_count(), 0u);
  EXPECT_EQ(jt.completed_count(), 1u);
  auto done = jt.completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].ok);
  EXPECT_TRUE(done[0].ended);
  EXPECT_EQ(done[0].n_events, 3u);
  EXPECT_EQ(done[0].duration().ns, microseconds(400).ns);
  EXPECT_EQ(jt.stats().completed, 1u);
  EXPECT_EQ(jt.stats().failed, 0u);
}

TEST(JourneyTracker, AliasMergesKeys) {
  JourneyTracker jt;
  jt.enable(16, 16);
  JourneyKey client{0x0a000101u, 42, 7};
  JourneyKey upstream{0x0a000102u, 999, 8};
  jt.mark(client, "lrs.client_rx", at(0));
  jt.alias(client, upstream);
  jt.mark(upstream, "guard.rx", at(50));  // lands on the same journey
  EXPECT_EQ(jt.active_count(), 1u);
  const auto* j = jt.find(upstream);
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->n_events, 2u);
  EXPECT_EQ(j->n_keys, 2u);
  // Ending via the alias completes the single journey.
  jt.end(upstream, "lrs.respond", at(90), true);
  EXPECT_EQ(jt.completed_count(), 1u);
  EXPECT_EQ(jt.active_count(), 0u);
}

TEST(JourneyTracker, AliasUnknownExistingIsNoOp) {
  JourneyTracker jt;
  jt.enable(16, 16);
  jt.alias({1, 1, 1}, {2, 2, 2});
  EXPECT_EQ(jt.active_count(), 0u);
  jt.mark({2, 2, 2}, "x", at(0));
  EXPECT_EQ(jt.active_count(), 1u);  // fresh journey, not an alias
}

TEST(JourneyTracker, EndOnUnknownKeyMakesSingleEventJourney) {
  JourneyTracker jt;
  jt.enable(16, 16);
  jt.end({5, 5, 5}, "guard.drop", at(10), /*ok=*/false);
  EXPECT_EQ(jt.completed_count(), 1u);
  auto done = jt.completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_FALSE(done[0].ok);
  EXPECT_EQ(done[0].n_events, 1u);
  EXPECT_EQ(jt.stats().failed, 1u);
}

TEST(JourneyTracker, PoolFullEvictsOldestOpen) {
  JourneyTracker jt;
  jt.enable(4, 8);
  for (std::uint16_t i = 0; i < 12; ++i) {
    jt.mark({1, i, 1}, "a", at(i));
  }
  // Pool is 4 (rounded to a power of two); the rest forced evictions.
  EXPECT_LE(jt.active_count(), 4u);
  EXPECT_GE(jt.stats().evicted_open.value(), 8u);
  EXPECT_EQ(jt.stats().started, 12u);
}

TEST(JourneyTracker, EventListFullDropsMarks) {
  JourneyTracker jt;
  jt.enable(4, 4);
  JourneyKey k{9, 9, 9};
  for (int i = 0; i < 30; ++i) jt.mark(k, "s", at(i));
  const auto* j = jt.find(k);
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->n_events, JourneyTracker::kMaxEvents);
  EXPECT_EQ(jt.stats().marks_dropped.value(),
            30u - JourneyTracker::kMaxEvents);
  // `last` still advances so duration() covers dropped marks.
  EXPECT_EQ(j->last.ns, at(29).ns);
}

TEST(JourneyTracker, CompletedRingOverwritesOldest) {
  JourneyTracker jt;
  jt.enable(8, 4);
  for (std::uint16_t i = 0; i < 10; ++i) {
    JourneyKey k{1, i, 2};
    jt.mark(k, "a", at(i));
    jt.end(k, "b", at(i + 100), true);
  }
  EXPECT_EQ(jt.completed_count(), 4u);  // ring capacity
  auto done = jt.completed();
  ASSERT_EQ(done.size(), 4u);
  // Oldest first, and only the newest four survive.
  EXPECT_LT(done[0].seq, done[3].seq);
  EXPECT_EQ(jt.stats().completed, 10u);
}

TEST(JourneyTracker, ClearDropsEverythingButStaysEnabled) {
  JourneyTracker jt;
  jt.enable(8, 8);
  jt.mark({1, 1, 1}, "a", at(0));
  jt.end({1, 1, 1}, "b", at(1), true);
  jt.mark({2, 2, 2}, "a", at(2));
  jt.clear();
  EXPECT_TRUE(jt.enabled());
  EXPECT_EQ(jt.active_count(), 0u);
  EXPECT_EQ(jt.completed_count(), 0u);
  jt.mark({3, 3, 3}, "a", at(3));
  EXPECT_EQ(jt.active_count(), 1u);
}

TEST(JourneyTracker, ChromeJsonHasSlices) {
  JourneyTracker jt;
  jt.enable(8, 8);
  JourneyKey k{0x0a000101u, 7, 3};
  jt.mark(k, "stub.query", at(0));
  jt.mark(k, "guard.rx", at(200));
  jt.end(k, "stub.answered", at(500), true);
  std::string json = jt.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("stub.query"), std::string::npos);
  EXPECT_NE(json.find("guard.rx"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
}

TEST(DomainNameHash, CaseInsensitiveAndLabelSensitive) {
  auto a = dns::DomainName::parse("www.Foo.COM.");
  auto b = dns::DomainName::parse("www.foo.com.");
  auto c = dns::DomainName::parse("wwwfoo.com.");
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->hash32(), b->hash32());
  EXPECT_NE(b->hash32(), c->hash32());  // label structure must matter
}

// --- end-to-end: stub -> LRS -> guarded root hierarchy and back ---

constexpr net::Ipv4Address kRootIp(10, 1, 1, 254);
constexpr net::Ipv4Address kRootGuardIp(10, 1, 1, 253);
constexpr net::Ipv4Address kComIp(10, 0, 0, 2);
constexpr net::Ipv4Address kFooIp(10, 2, 2, 254);
constexpr net::Ipv4Address kLrsIp(10, 0, 0, 53);
constexpr net::Ipv4Address kStubIp(10, 0, 0, 7);

TEST(JourneyEndToEnd, StubQueryProducesOneCorrelatedJourney) {
  sim::Simulator sim;
  sim.set_default_latency(microseconds(200));
  sim.journeys().enable();
  testing_support::arm_failure_dump([&](const std::string& test) {
    sim.flight_recorder().dump(test, sim.now());
  });

  // Real root/com/foo hierarchy; the root sits behind an NS-name guard,
  // so the unmodified LRS completes the cookie dance purely by following
  // referrals (no local guard in the path).
  auto h = server::make_example_hierarchy(kRootIp, kComIp, kFooIp);
  server::AuthoritativeServerNode root(sim, "root", {.address = kRootIp});
  server::AuthoritativeServerNode com(sim, "com", {.address = kComIp});
  server::AuthoritativeServerNode foo(sim, "foo", {.address = kFooIp});
  root.add_zone(std::move(h.root));
  com.add_zone(std::move(h.com));
  foo.add_zone(std::move(h.foo_com));
  sim.add_host_route(kRootIp, &root);
  sim.add_host_route(kComIp, &com);
  sim.add_host_route(kFooIp, &foo);

  server::RecursiveResolverNode::Config rc;
  rc.address = kLrsIp;
  rc.root_hints = {kRootIp};
  rc.retry_timeout = milliseconds(100);
  server::RecursiveResolverNode lrs(sim, "lrs", rc);
  sim.add_host_route(kLrsIp, &lrs);

  sim.remove_routes_to(&root);
  guard::RemoteGuardNode::Config gc;
  gc.guard_address = kRootGuardIp;
  gc.ans_address = kRootIp;
  gc.protected_zone = *dns::DomainName::parse(".");
  gc.subnet_base = net::Ipv4Address(10, 1, 1, 0);
  gc.r_y = 250;
  gc.scheme = guard::Scheme::NsName;
  guard::RemoteGuardNode guard(sim, "root-guard", gc, &root);
  guard.install(24);

  server::StubResolverNode stub(
      sim, "stub", {.address = kStubIp, .lrs_address = kLrsIp});
  sim.add_host_route(kStubIp, &stub);

  bool answered = false;
  auto qname = dns::DomainName::parse("www.foo.com.");
  ASSERT_TRUE(qname);
  stub.lookup(*qname, dns::RrType::A,
              [&](const server::StubResolverNode::Result& r) {
                answered = r.ok;
              });
  sim.run_for(seconds(5));
  ASSERT_TRUE(answered);

  // The stub's journey completed and carries marks from several layers.
  auto done = sim.journeys().completed();
  ASSERT_GE(done.size(), 1u);
  // Find the stub journey (first key = stub's source).
  const JourneyTracker::Journey* stub_j = nullptr;
  for (const auto& j : done) {
    if (j.first_key.src == kStubIp.value()) stub_j = &j;
  }
  ASSERT_NE(stub_j, nullptr);
  EXPECT_TRUE(stub_j->ok);
  std::vector<std::string_view> stages;
  for (std::size_t i = 0; i < stub_j->n_events; ++i) {
    stages.push_back(stub_j->events[i].stage);
  }
  auto has = [&](std::string_view s) {
    return std::find(stages.begin(), stages.end(), s) != stages.end();
  };
  EXPECT_TRUE(has("stub.query")) << sim.journeys().to_chrome_json(true);
  EXPECT_TRUE(has("lrs.client_rx"));
  EXPECT_TRUE(has("lrs.iterative"));
  EXPECT_TRUE(has("stub.answered"));
  // The guard leg merged in via the LRS upstream alias.
  EXPECT_TRUE(has("guard.rx")) << sim.journeys().to_chrome_json(true);
  // Stage timestamps are monotone.
  for (std::size_t i = 1; i < stub_j->n_events; ++i) {
    EXPECT_LE(stub_j->events[i - 1].at.ns, stub_j->events[i].at.ns);
  }
}

}  // namespace
}  // namespace dnsguard
