// LocalGuardNode unit behaviour (modified-DNS scheme, LRS side).
//
// Uses a bare probe node as the "LRS" and a scripted peer as the "ANS
// side" so each message of Fig. 3 can be asserted individually.
#include <gtest/gtest.h>

#include <deque>

#include "guard/cookie_engine.h"
#include "guard/local_guard.h"
#include "sim/simulator.h"

namespace dnsguard::guard {
namespace {

using net::Ipv4Address;
using net::Packet;

constexpr Ipv4Address kLrsIp(10, 0, 1, 1);
constexpr Ipv4Address kAnsIp(10, 5, 5, 5);

/// Captures everything delivered to it.
class SinkNode : public sim::Node {
 public:
  SinkNode(sim::Simulator& s, std::string name)
      : sim::Node(s, std::move(name)) {}
  std::vector<Packet> received;

 protected:
  SimDuration process(const Packet& p) override {
    received.push_back(p);
    return SimDuration{};
  }
};

struct Bed {
  sim::Simulator sim;
  SinkNode lrs{sim, "lrs"};
  SinkNode ans{sim, "ans"};
  std::unique_ptr<LocalGuardNode> lg;

  explicit Bed(LocalGuardNode::Config cfg = {}) {
    cfg.lrs_address = kLrsIp;
    lg = std::make_unique<LocalGuardNode>(sim, "local-guard", cfg, &lrs);
    lg->install();
    sim.add_host_route(kAnsIp, &ans);
  }

  /// The LRS emits a query toward the ANS (passes through the guard via
  /// the LRS gateway).
  void lrs_sends_query(std::uint16_t id) {
    dns::Message q = dns::Message::query(
        id, *dns::DomainName::parse("www.foo.com"), dns::RrType::A, false);
    sim.send_packet(&lrs, Packet::make_udp({kLrsIp, net::kDnsPort},
                                           {kAnsIp, net::kDnsPort},
                                           q.encode()));
    sim.run_for(milliseconds(5));
  }

  /// The ANS side answers with `m` (addressed to the LRS).
  void ans_sends(const dns::Message& m) {
    sim.send_packet(&ans, Packet::make_udp({kAnsIp, net::kDnsPort},
                                           {kLrsIp, net::kDnsPort},
                                           m.encode()));
    sim.run_for(milliseconds(5));
  }

  static dns::Message decode(const Packet& p) {
    auto m = dns::Message::decode(BytesView(p.payload));
    EXPECT_TRUE(m.has_value());
    return m.value_or(dns::Message{});
  }
};

TEST(LocalGuard, FirstQueryHeldAndProbeSent) {
  Bed bed;
  bed.lrs_sends_query(100);
  // Exactly one packet reached the ANS: the zero-cookie probe (msg 2).
  ASSERT_EQ(bed.ans.received.size(), 1u);
  auto probe = Bed::decode(bed.ans.received[0]);
  auto cookie = CookieEngine::extract_txt_cookie(probe);
  ASSERT_TRUE(cookie.has_value());
  EXPECT_TRUE(CookieEngine::is_zero_cookie(*cookie));
  EXPECT_EQ(bed.lg->local_stats().queries_held, 1u);
}

TEST(LocalGuard, CookieReplyReleasesHeldQueriesWithCookie) {
  Bed bed;
  bed.lrs_sends_query(100);
  ASSERT_EQ(bed.ans.received.size(), 1u);
  auto probe = Bed::decode(bed.ans.received[0]);

  // The remote guard's msg 3: same id, cookie TXT, no answers.
  CookieEngine engine(9);
  dns::Message msg3 = dns::Message::response_to(probe);
  CookieEngine::strip_txt_cookie(msg3);
  CookieEngine::attach_txt_cookie(msg3, engine.mint(kLrsIp), 3600);
  bed.ans_sends(msg3);

  // The held query went out with the real cookie (msg 4).
  ASSERT_EQ(bed.ans.received.size(), 2u);
  auto msg4 = Bed::decode(bed.ans.received[1]);
  auto cookie = CookieEngine::extract_txt_cookie(msg4);
  ASSERT_TRUE(cookie.has_value());
  EXPECT_EQ(*cookie, engine.mint(kLrsIp));
  EXPECT_EQ(msg4.header.id, 100);
  // msg 3 itself was consumed, not delivered to the LRS.
  EXPECT_TRUE(bed.lrs.received.empty());
  EXPECT_TRUE(bed.lg->has_cookie_for(kAnsIp));
}

TEST(LocalGuard, SubsequentQueriesGetCookieImmediately) {
  Bed bed;
  bed.lrs_sends_query(100);
  auto probe = Bed::decode(bed.ans.received[0]);
  CookieEngine engine(9);
  dns::Message msg3 = dns::Message::response_to(probe);
  CookieEngine::strip_txt_cookie(msg3);
  CookieEngine::attach_txt_cookie(msg3, engine.mint(kLrsIp), 3600);
  bed.ans_sends(msg3);
  std::size_t before = bed.ans.received.size();

  bed.lrs_sends_query(101);
  ASSERT_EQ(bed.ans.received.size(), before + 1);
  auto direct = Bed::decode(bed.ans.received.back());
  EXPECT_TRUE(CookieEngine::extract_txt_cookie(direct).has_value());
  EXPECT_EQ(bed.lg->local_stats().cookie_requests, 1u);
}

TEST(LocalGuard, CookieExpiryTriggersNewExchange) {
  LocalGuardNode::Config cfg;
  Bed bed(cfg);
  bed.lrs_sends_query(100);
  auto probe = Bed::decode(bed.ans.received[0]);
  CookieEngine engine(9);
  dns::Message msg3 = dns::Message::response_to(probe);
  CookieEngine::strip_txt_cookie(msg3);
  CookieEngine::attach_txt_cookie(msg3, engine.mint(kLrsIp), /*ttl=*/1);
  bed.ans_sends(msg3);

  bed.sim.run_for(seconds(2));  // cookie TTL elapses
  bed.lrs_sends_query(101);
  EXPECT_EQ(bed.lg->local_stats().cookie_requests, 2u);
}

TEST(LocalGuard, UnguardedAnsAnsweredPlainlyAndRemembered) {
  Bed bed;
  bed.lrs_sends_query(100);
  auto probe = Bed::decode(bed.ans.received[0]);

  // An unguarded ANS answers the probe like a normal query (no cookie).
  dns::Message plain = dns::Message::response_to(probe);
  plain.answers.push_back(dns::ResourceRecord::a(
      *dns::DomainName::parse("www.foo.com"), Ipv4Address(192, 0, 2, 80),
      60));
  bed.ans_sends(plain);

  // Delivered straight to the LRS; the server is marked not-capable.
  ASSERT_EQ(bed.lrs.received.size(), 1u);
  EXPECT_EQ(Bed::decode(bed.lrs.received[0]).header.id, 100);

  // The next query flows through WITHOUT a probe or held state.
  bed.lrs_sends_query(101);
  ASSERT_EQ(bed.ans.received.size(), 2u);
  auto next = Bed::decode(bed.ans.received[1]);
  EXPECT_FALSE(CookieEngine::extract_txt_cookie(next).has_value());
  EXPECT_EQ(bed.lg->local_stats().cookie_requests, 1u);
}

TEST(LocalGuard, TimeoutReleasesHeldQueriesPlainly) {
  LocalGuardNode::Config cfg;
  cfg.cookie_request_timeout = milliseconds(50);
  Bed bed(cfg);
  bed.lrs_sends_query(100);
  EXPECT_EQ(bed.ans.received.size(), 1u);  // only the probe so far
  // Nobody ever answers; after the timeout the original goes out bare.
  bed.sim.run_for(milliseconds(100));
  ASSERT_EQ(bed.ans.received.size(), 2u);
  auto released = Bed::decode(bed.ans.received[1]);
  EXPECT_FALSE(CookieEngine::extract_txt_cookie(released).has_value());
  EXPECT_EQ(bed.lg->local_stats().released_without_cookie, 1u);
}

TEST(LocalGuard, AnswerWithRefreshedCookieIsStrippedAndCached) {
  Bed bed;
  // Prime a cookie.
  bed.lrs_sends_query(100);
  auto probe = Bed::decode(bed.ans.received[0]);
  CookieEngine engine(9);
  dns::Message msg3 = dns::Message::response_to(probe);
  CookieEngine::strip_txt_cookie(msg3);
  CookieEngine::attach_txt_cookie(msg3, engine.mint(kLrsIp), 3600);
  bed.ans_sends(msg3);
  bed.lrs.received.clear();

  // A real answer carrying a refreshed cookie comes back.
  dns::Message answer;
  answer.header.id = 100;
  answer.header.qr = true;
  answer.answers.push_back(dns::ResourceRecord::a(
      *dns::DomainName::parse("www.foo.com"), Ipv4Address(192, 0, 2, 80),
      60));
  engine.rotate(10);
  CookieEngine::attach_txt_cookie(answer, engine.mint(kLrsIp), 3600);
  bed.ans_sends(answer);

  ASSERT_EQ(bed.lrs.received.size(), 1u);
  auto delivered = Bed::decode(bed.lrs.received[0]);
  // The LRS never sees the cookie extension.
  EXPECT_FALSE(CookieEngine::extract_txt_cookie(delivered).has_value());
  EXPECT_EQ(delivered.answers.size(), 1u);
  EXPECT_TRUE(bed.lg->has_cookie_for(kAnsIp));
}

TEST(LocalGuard, HeldQueueBounded) {
  LocalGuardNode::Config cfg;
  cfg.max_held_per_ans = 4;
  Bed bed(cfg);
  for (std::uint16_t i = 0; i < 10; ++i) bed.lrs_sends_query(200 + i);
  EXPECT_EQ(bed.lg->local_stats().queries_held, 4u);
}

TEST(LocalGuard, ExpiredMapEntriesAreSwept) {
  // Regression: cookies_ and not_capable_until_ grew without bound over
  // long runs against many distinct ANSs.
  LocalGuardNode::Config cfg;
  cfg.sweep_every_packets = 8;
  cfg.not_capable_ttl = seconds(1);
  Bed bed(cfg);

  // Cache a short-TTL cookie from each of 50 distinct "remote guards" by
  // delivering cookie replies with distinct source addresses.
  CookieEngine engine(9);
  for (std::uint32_t i = 0; i < 50; ++i) {
    dns::Message msg3;
    msg3.header.id = static_cast<std::uint16_t>(i);
    msg3.header.qr = true;
    CookieEngine::attach_txt_cookie(msg3, engine.mint(kLrsIp), /*ttl=*/1);
    bed.sim.send_packet(&bed.ans,
                        Packet::make_udp({Ipv4Address(0x0a060000u + i),
                                          net::kDnsPort},
                                         {kLrsIp, net::kDnsPort},
                                         msg3.encode()));
  }
  // Mark another 50 ANSs not-capable (plain responses while held state
  // exists is the normal path; here we poke the map via a cookie-less
  // response after a probe, so just run queries against unguarded ANSs).
  bed.sim.run_for(milliseconds(5));
  EXPECT_EQ(bed.lg->cookie_cache_size(), 50u);

  // Everything expires; background traffic triggers the lazy sweep.
  bed.sim.run_for(seconds(3));
  for (std::uint16_t i = 0; i < 20; ++i) {
    dns::Message q = dns::Message::query(
        i, *dns::DomainName::parse("www.foo.com"), dns::RrType::A, true);
    bed.sim.send_packet(&bed.ans, Packet::make_udp({kAnsIp, 34000},
                                                   {kLrsIp, net::kDnsPort},
                                                   q.encode()));
  }
  bed.sim.run_for(milliseconds(5));
  EXPECT_EQ(bed.lg->cookie_cache_size(), 0u);
  EXPECT_EQ(bed.lg->not_capable_size(), 0u);
}

TEST(LocalGuard, NotCapableMapStaysBounded) {
  LocalGuardNode::Config cfg;
  cfg.sweep_every_packets = 4;
  cfg.not_capable_ttl = milliseconds(100);
  cfg.cookie_request_timeout = milliseconds(20);
  Bed bed(cfg);

  // Round after round of unguarded ANSs: each probe is answered plainly,
  // marking the server not-capable; entries must decay, not accumulate.
  std::size_t peak = 0;
  for (std::uint32_t round = 0; round < 8; ++round) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      Ipv4Address ans_ip(0x0a070000u + round * 10 + i);
      dns::Message q = dns::Message::query(
          static_cast<std::uint16_t>(round * 10 + i),
          *dns::DomainName::parse("www.foo.com"), dns::RrType::A, false);
      bed.sim.send_packet(&bed.lrs, Packet::make_udp({kLrsIp, net::kDnsPort},
                                                     {ans_ip, net::kDnsPort},
                                                     q.encode()));
      // The probe times out (nothing routes these addresses back), and a
      // plain response from the ANS marks it not-capable.
      bed.sim.run_for(milliseconds(5));
      dns::Message plain;
      plain.header.id = static_cast<std::uint16_t>(round * 10 + i);
      plain.header.qr = true;
      bed.sim.send_packet(&bed.ans, Packet::make_udp({ans_ip, net::kDnsPort},
                                                     {kLrsIp, net::kDnsPort},
                                                     plain.encode()));
      bed.sim.run_for(milliseconds(5));
    }
    peak = std::max(peak, bed.lg->not_capable_size());
    bed.sim.run_for(milliseconds(200));  // past not_capable_ttl
  }
  // 80 servers were marked in total; the sweep keeps only the live window.
  EXPECT_LE(peak, 20u);
  bed.sim.run_for(milliseconds(500));
  // One final packet burst to trigger the sweep on a quiet guard.
  for (std::uint16_t i = 0; i < 8; ++i) {
    dns::Message q = dns::Message::query(
        900 + i, *dns::DomainName::parse("www.foo.com"), dns::RrType::A,
        true);
    bed.sim.send_packet(&bed.ans, Packet::make_udp({kAnsIp, 34000},
                                                   {kLrsIp, net::kDnsPort},
                                                   q.encode()));
  }
  bed.sim.run_for(milliseconds(5));
  EXPECT_EQ(bed.lg->not_capable_size(), 0u);
}

TEST(LocalGuard, StubQueriesToLrsPassThrough) {
  Bed bed;
  // A stub's recursive query addressed TO the LRS must reach it.
  dns::Message q = dns::Message::query(
      55, *dns::DomainName::parse("www.foo.com"), dns::RrType::A, true);
  bed.sim.send_packet(&bed.ans, Packet::make_udp({kAnsIp, 34000},
                                                 {kLrsIp, net::kDnsPort},
                                                 q.encode()));
  bed.sim.run_for(milliseconds(5));
  ASSERT_EQ(bed.lrs.received.size(), 1u);
  EXPECT_EQ(Bed::decode(bed.lrs.received[0]).header.id, 55);
}

}  // namespace
}  // namespace dnsguard::guard
