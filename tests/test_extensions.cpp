// Protocol extensions layered on the base reproduction: EDNS0 payload
// negotiation (RFC 6891) and negative caching (RFC 2308).
#include <gtest/gtest.h>

#include "server/authoritative_node.h"
#include "server/resolver_node.h"
#include "server/zone.h"
#include "sim/simulator.h"

namespace dnsguard::server {
namespace {

using dns::DomainName;
using dns::RrType;
using net::Ipv4Address;

constexpr Ipv4Address kRootIp(10, 0, 0, 1);
constexpr Ipv4Address kLrsIp(10, 0, 1, 1);

struct Bed {
  sim::Simulator sim;
  std::unique_ptr<AuthoritativeServerNode> ans;
  std::unique_ptr<RecursiveResolverNode> lrs;

  explicit Bed(std::uint16_t edns_size = 0) {
    ans = std::make_unique<AuthoritativeServerNode>(
        sim, "ans", AuthoritativeServerNode::Config{.address = kRootIp});
    Zone zone(DomainName{});
    zone.add_soa();
    zone.add_a("small.example.", Ipv4Address(192, 0, 2, 1));
    // ~40 A records: > 512 B but < 4096 B encoded.
    for (int i = 0; i < 40; ++i) {
      zone.add_a("big.example.",
                 Ipv4Address(192, 0, 3, static_cast<std::uint8_t>(i)));
    }
    ans->add_zone(std::move(zone));

    RecursiveResolverNode::Config rc;
    rc.address = kLrsIp;
    rc.root_hints = {kRootIp};
    rc.retry_timeout = milliseconds(50);
    rc.edns_payload_size = edns_size;
    lrs = std::make_unique<RecursiveResolverNode>(sim, "lrs", rc);
    sim.add_host_route(kRootIp, ans.get());
    sim.add_host_route(kLrsIp, lrs.get());
  }

  RecursiveResolverNode::Result resolve(const char* name) {
    RecursiveResolverNode::Result out;
    bool done = false;
    lrs->resolve(*DomainName::parse(name), RrType::A,
                 [&](const RecursiveResolverNode::Result& r) {
                   out = r;
                   done = true;
                 });
    sim.run_for(seconds(5));
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(Edns, WithoutEdnsLargeAnswerFallsBackToTcp) {
  Bed bed(/*edns_size=*/0);
  auto r = bed.resolve("big.example");
  ASSERT_TRUE(r.ok);
  EXPECT_GE(r.answers.size(), 40u);
  EXPECT_EQ(bed.lrs->resolver_stats().tcp_fallbacks, 1u);
  EXPECT_EQ(bed.ans->ans_stats().truncated, 1u);
}

TEST(Edns, AdvertisedPayloadAvoidsTruncation) {
  Bed bed(/*edns_size=*/4096);
  auto r = bed.resolve("big.example");
  ASSERT_TRUE(r.ok);
  EXPECT_GE(r.answers.size(), 40u);
  // The whole answer fit in one UDP datagram: no TCP, no truncation.
  EXPECT_EQ(bed.lrs->resolver_stats().tcp_fallbacks, 0u);
  EXPECT_EQ(bed.ans->ans_stats().truncated, 0u);
  EXPECT_EQ(bed.ans->ans_stats().tcp_queries, 0u);
}

TEST(Edns, ServerClampsAbsurdAdvertisement) {
  // Direct engine-level check: a 64000-byte advertisement is clamped to
  // the server's maximum (4096 default).
  Bed bed;
  dns::Message q = dns::Message::query(1, *DomainName::parse("big.example"),
                                       RrType::A, false);
  q.additional.push_back(dns::ResourceRecord{
      DomainName{}, RrType::OPT, dns::RrClass::IN, 0, dns::OptRdata{64000}});
  dns::Message resp = bed.ans->answer(q, /*via_tcp=*/false);
  // Fits in 4096: answered, not truncated, with an OPT mirror.
  EXPECT_FALSE(resp.header.tc);
  bool has_opt = false;
  for (const auto& rr : resp.additional) {
    if (rr.type == RrType::OPT) has_opt = true;
  }
  EXPECT_TRUE(has_opt);
}

TEST(Edns, SmallAnswersUnaffected) {
  Bed bed(/*edns_size=*/4096);
  auto r = bed.resolve("small.example");
  ASSERT_TRUE(r.ok);
  ASSERT_GE(r.answers.size(), 1u);
}

TEST(NegativeCache, NxDomainCachedPerSoaMinimum) {
  Bed bed;
  (void)bed.resolve("missing.example");
  std::uint64_t q1 = bed.lrs->resolver_stats().iterative_queries;
  auto r = bed.resolve("missing.example");
  EXPECT_EQ(r.rcode, dns::Rcode::NxDomain);
  // Second lookup answered from the negative cache: no new queries.
  EXPECT_EQ(bed.lrs->resolver_stats().iterative_queries, q1);
  EXPECT_GE(bed.lrs->cache().negative_size(), 1u);
}

TEST(NegativeCache, ExpiresAfterSoaMinimum) {
  Bed bed;
  (void)bed.resolve("missing.example");
  std::uint64_t q1 = bed.lrs->resolver_stats().iterative_queries;
  // The example SOA minimum is 300 s; after 301 s the entry must expire.
  bed.sim.run_for(seconds(301));
  (void)bed.resolve("missing.example");
  EXPECT_GT(bed.lrs->resolver_stats().iterative_queries, q1);
}

TEST(NegativeCache, NoDataCachedSeparatelyPerType) {
  Bed bed;
  // small.example has an A record but no TXT: TXT lookups are NODATA.
  RecursiveResolverNode::Result out;
  bool done = false;
  bed.lrs->resolve(*DomainName::parse("small.example"), RrType::TXT,
                   [&](const RecursiveResolverNode::Result& r) {
                     out = r;
                     done = true;
                   });
  bed.sim.run_for(seconds(5));
  ASSERT_TRUE(done);
  EXPECT_EQ(out.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(out.answers.empty());
  std::uint64_t q1 = bed.lrs->resolver_stats().iterative_queries;

  // Repeat TXT: negative-cached. A lookup of type A must still work.
  done = false;
  bed.lrs->resolve(*DomainName::parse("small.example"), RrType::TXT,
                   [&](const RecursiveResolverNode::Result&) { done = true; });
  bed.sim.run_for(seconds(5));
  EXPECT_TRUE(done);
  EXPECT_EQ(bed.lrs->resolver_stats().iterative_queries, q1);

  auto r = bed.resolve("small.example");
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.answers.empty());
}

TEST(NegativeCache, EvictClearsNegativeEntries) {
  Bed bed;
  (void)bed.resolve("missing.example");
  bed.lrs->cache().evict(*DomainName::parse("missing.example"), RrType::A);
  EXPECT_EQ(bed.lrs->cache().negative_size(), 0u);
}

}  // namespace
}  // namespace dnsguard::server
