// The compile-time half of the profiler's zero-cost contract: this file
// builds with DNSGUARD_PROFILER_DISABLED (see tests/CMakeLists.txt), so
// its probe macros must compile out entirely — no Scope object, no load,
// no branch — while the rest of the profiler API stays usable for code
// that manages the profiler without probing.
#include <gtest/gtest.h>

#include "obs/profiler.h"

static_assert(DNSGUARD_PROF_COMPILED_IN == 0,
              "this translation unit must build without probes");

namespace dnsguard {
namespace {

using obs::prof::profiler;
using obs::prof::Report;
using obs::prof::Stage;

TEST(ProfilerDisabledTU, ProbeMacroCompilesToNothing) {
  profiler.enable();
  profiler.set_sampling(1, 1);
  profiler.reset();
  {
    // In an armed, recording profiler these would open spans; compiled
    // out, they must leave no trace at all.
    DNSGUARD_PROF_SCOPE(Stage::kGuardService);
    DNSGUARD_PROF_SCOPE(Stage::kGuardDecode);
  }
  const Report r = profiler.report();
  EXPECT_TRUE(r.edges.empty());
  EXPECT_EQ(r.mismatched_spans, 0u);
  profiler.disable();
}

TEST(ProfilerDisabledTU, ProbeMacroIsAValidStatementAnywhere) {
  // The no-op expansion must still parse as a statement in the positions
  // real probe sites use it: plain, in an if-body, before a return.
  if (true) DNSGUARD_PROF_SCOPE(Stage::kCookieHash);
  for (int i = 0; i < 2; ++i) DNSGUARD_PROF_SCOPE(Stage::kGuardRl1);
  DNSGUARD_PROF_SCOPE(Stage::kGuardRl2);
  SUCCEED();
}

TEST(ProfilerDisabledTU, ManagementApiRemainsAvailable) {
  // Enabling/reporting still works from a probe-free TU — a bench built
  // with probes disabled can still read reports produced elsewhere.
  profiler.enable();
  profiler.record(Stage::kRoot, Stage::kGuardService, 100);
  const Report r = profiler.report();
  ASSERT_EQ(r.edges.size(), 1u);
  EXPECT_EQ(r.edges[0].stage, Stage::kGuardService);
  profiler.reset();
  profiler.disable();
}

}  // namespace
}  // namespace dnsguard
