// TimeSeriesSampler unit tests and its Simulator integration (epoch-
// guarded boundary events, run_for pairing, flight-recorder sections).
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sim/simulator.h"

namespace dnsguard {
namespace {

using obs::Counter;
using obs::MetricsRegistry;
using obs::TimeSeriesSampler;

SimTime at(std::int64_t ms) { return SimTime{} + milliseconds(ms); }

TEST(TimeSeriesSampler, WindowsHoldDeltasNotTotals) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.requests");
  TimeSeriesSampler ts;
  ts.start(reg, at(0), milliseconds(100), 16);
  ASSERT_TRUE(ts.running());
  ASSERT_EQ(ts.series_names().size(), 1u);

  c += 5;
  ts.sample(at(100));
  c += 2;
  ts.sample(at(200));
  ts.sample(at(300));  // idle window

  auto ws = ts.windows();
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_EQ(ws[0].deltas[0], 5u);
  EXPECT_EQ(ws[1].deltas[0], 2u);
  EXPECT_EQ(ws[2].deltas[0], 0u);
  EXPECT_EQ(ws[0].start.ns, at(0).ns);
  EXPECT_EQ(ws[0].end.ns, at(100).ns);
  EXPECT_EQ(ws[2].end.ns, at(300).ns);
}

TEST(TimeSeriesSampler, SelectedSeriesOnlyAndUnresolvedSkipped) {
  MetricsRegistry reg;
  reg.counter("keep.me");
  reg.counter("ignore.me");
  TimeSeriesSampler ts;
  ts.add_counter("keep.me");
  ts.add_counter("no.such.counter");
  ts.start(reg, at(0), milliseconds(10), 4);
  ASSERT_EQ(ts.series_names().size(), 1u);
  EXPECT_EQ(ts.series_names()[0], "keep.me");
  EXPECT_EQ(ts.series_index("keep.me"), 0);
  EXPECT_EQ(ts.series_index("ignore.me"), -1);
}

TEST(TimeSeriesSampler, CounterResetClampsDelta) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  TimeSeriesSampler ts;
  ts.start(reg, at(0), milliseconds(10), 8);
  c += 100;
  ts.sample(at(10));
  reg.reset_values();  // counter drops to zero mid-run
  c += 3;
  ts.sample(at(20));
  auto ws = ts.windows();
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].deltas[0], 100u);
  EXPECT_EQ(ws[1].deltas[0], 3u);  // clamped to post-reset value
}

TEST(TimeSeriesSampler, RingBoundsRetention) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  TimeSeriesSampler ts;
  ts.start(reg, at(0), milliseconds(1), 4);
  for (int i = 1; i <= 10; ++i) {
    c += static_cast<std::uint64_t>(i);
    ts.sample(at(i));
  }
  EXPECT_EQ(ts.window_count(), 4u);
  auto ws = ts.windows();
  ASSERT_EQ(ws.size(), 4u);
  // Oldest first: windows 7..10 survive.
  EXPECT_EQ(ws[0].deltas[0], 7u);
  EXPECT_EQ(ws[3].deltas[0], 10u);
}

TEST(TimeSeriesSampler, OnWindowFires) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  TimeSeriesSampler ts;
  ts.start(reg, at(0), milliseconds(10), 8);
  int fired = 0;
  std::uint64_t last_delta = 0;
  ts.set_on_window([&](const TimeSeriesSampler::Window& w) {
    fired++;
    last_delta = w.deltas[0];
  });
  c += 9;
  ts.sample(at(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(last_delta, 9u);
}

TEST(TimeSeriesSampler, ToJsonShape) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.b");
  TimeSeriesSampler ts;
  ts.start(reg, at(0), milliseconds(500), 4);
  c += 7;
  ts.sample(at(500));
  std::string json = ts.to_json(2);
  EXPECT_NE(json.find("\"window_seconds\": 0.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.b\""), std::string::npos);
  EXPECT_NE(json.find("\"deltas\": [7]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"t_end_s\": 0.5"), std::string::npos) << json;
}

// --- Simulator integration ---

TEST(SimulatorTimeseries, RunForSamplesEveryBoundary) {
  sim::Simulator sim;
  Counter& c = sim.metrics().counter("test.ticks");
  sim.start_timeseries(milliseconds(100));
  // Some activity: bump the counter on a few scheduled events.
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_in(milliseconds(i * 90), [&c] { c += 1; });
  }
  sim.run_for(milliseconds(1000));
  sim.stop_timeseries();
  EXPECT_EQ(sim.timeseries().window_count(), 10u);
  std::uint64_t total = 0;
  int idx = sim.timeseries().series_index("test.ticks");
  ASSERT_GE(idx, 0);
  for (const auto& w : sim.timeseries().windows()) {
    total += w.deltas[static_cast<std::size_t>(idx)];
  }
  EXPECT_EQ(total, 5u);
}

TEST(SimulatorTimeseries, StopPreventsFurtherSampling) {
  sim::Simulator sim;
  sim.metrics().counter("x");
  sim.start_timeseries(milliseconds(10));
  sim.run_for(milliseconds(50));
  sim.stop_timeseries();
  std::size_t n = sim.timeseries().window_count();
  sim.run_for(milliseconds(50));
  EXPECT_EQ(sim.timeseries().window_count(), n);
}

TEST(SimulatorTimeseries, RestartUsesFreshEpoch) {
  sim::Simulator sim;
  sim.metrics().counter("x");
  sim.start_timeseries(milliseconds(10));
  sim.run_for(milliseconds(30));
  sim.stop_timeseries();
  sim.start_timeseries(milliseconds(10));
  sim.run_for(milliseconds(30));
  sim.stop_timeseries();
  // Second run sampled its own boundaries; no double-fire from the first
  // epoch's stale events.
  EXPECT_EQ(sim.timeseries().window_count(), 3u);
}

TEST(SimulatorFlightRecorder, RenderCarriesAllSections) {
  sim::Simulator sim;
  sim.metrics().counter("some.counter") += 3;
  sim.start_timeseries(milliseconds(10));
  sim.run_for(milliseconds(20));
  sim.stop_timeseries();
  std::string doc = sim.flight_recorder().render("unit", sim.now());
  EXPECT_NE(doc.find("\"label\": \"unit\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
  EXPECT_NE(doc.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(doc.find("\"trace_rings\""), std::string::npos);
  EXPECT_NE(doc.find("\"journeys\""), std::string::npos);
  EXPECT_NE(doc.find("some.counter"), std::string::npos);
}

}  // namespace
}  // namespace dnsguard
