// DNS message wire codec: headers, sections, RDATA types, referral
// classification, truncation and randomized round-trip properties.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dns/message.h"

namespace dnsguard::dns {
namespace {

Message round_trip(const Message& m) {
  auto decoded = Message::decode(BytesView(m.encode()));
  EXPECT_TRUE(decoded.has_value());
  return decoded.value_or(Message{});
}

TEST(Message, QueryRoundTrip) {
  Message q = Message::query(0x1234, *DomainName::parse("www.foo.com"),
                             RrType::A, true);
  Message d = round_trip(q);
  EXPECT_EQ(d.header.id, 0x1234);
  EXPECT_FALSE(d.header.qr);
  EXPECT_TRUE(d.header.rd);
  ASSERT_EQ(d.questions.size(), 1u);
  EXPECT_EQ(d.questions[0].qname.to_string(), "www.foo.com.");
  EXPECT_EQ(d.questions[0].qtype, RrType::A);
  EXPECT_EQ(d, q);
}

TEST(Message, HeaderFlagsRoundTrip) {
  Message m;
  m.header.id = 77;
  m.header.qr = true;
  m.header.aa = true;
  m.header.tc = true;
  m.header.rd = true;
  m.header.ra = true;
  m.header.rcode = Rcode::NxDomain;
  Message d = round_trip(m);
  EXPECT_EQ(d.header, m.header);
}

TEST(Message, ARecordRoundTrip) {
  Message m;
  m.header.qr = true;
  m.answers.push_back(ResourceRecord::a(*DomainName::parse("www.foo.com"),
                                        net::Ipv4Address(192, 0, 2, 80),
                                        3600));
  Message d = round_trip(m);
  ASSERT_EQ(d.answers.size(), 1u);
  EXPECT_EQ(std::get<ARdata>(d.answers[0].rdata).address,
            net::Ipv4Address(192, 0, 2, 80));
  EXPECT_EQ(d.answers[0].ttl, 3600u);
}

TEST(Message, NsAndSoaRoundTrip) {
  Message m;
  m.header.qr = true;
  m.authority.push_back(ResourceRecord::ns(*DomainName::parse("com"),
                                           *DomainName::parse("a.gtld.net"),
                                           172800));
  SoaRdata soa;
  soa.mname = *DomainName::parse("ns1.foo.com");
  soa.rname = *DomainName::parse("admin.foo.com");
  soa.serial = 2024070601;
  soa.refresh = 7200;
  soa.retry = 900;
  soa.expire = 1209600;
  soa.minimum = 300;
  m.authority.push_back(
      ResourceRecord::soa(*DomainName::parse("foo.com"), soa, 3600));
  Message d = round_trip(m);
  ASSERT_EQ(d.authority.size(), 2u);
  EXPECT_EQ(std::get<NsRdata>(d.authority[0].rdata).nsdname.to_string(),
            "a.gtld.net.");
  const auto& dsoa = std::get<SoaRdata>(d.authority[1].rdata);
  EXPECT_EQ(dsoa.serial, 2024070601u);
  EXPECT_EQ(dsoa.minimum, 300u);
}

TEST(Message, TxtBinaryCookieRoundTrip) {
  // The modified-DNS cookie: a 16-byte binary TXT payload at the root
  // owner (Fig. 3(b)).
  Bytes cookie(16);
  for (int i = 0; i < 16; ++i) cookie[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i * 17);
  Message m;
  m.additional.push_back(ResourceRecord::txt(
      DomainName{}, TxtRdata::single(BytesView(cookie)), 0));
  Message d = round_trip(m);
  ASSERT_EQ(d.additional.size(), 1u);
  const auto& txt = std::get<TxtRdata>(d.additional[0].rdata);
  ASSERT_EQ(txt.strings.size(), 1u);
  EXPECT_EQ(txt.strings[0], cookie);
}

TEST(Message, TxtMultipleStringsRoundTrip) {
  TxtRdata txt;
  txt.strings.push_back(Bytes{'a', 'b'});
  txt.strings.push_back(Bytes{});
  txt.strings.push_back(Bytes(255, 'x'));
  Message m;
  m.answers.push_back(
      ResourceRecord::txt(*DomainName::parse("t.example"), txt, 60));
  Message d = round_trip(m);
  EXPECT_EQ(std::get<TxtRdata>(d.answers[0].rdata).strings.size(), 3u);
  EXPECT_EQ(std::get<TxtRdata>(d.answers[0].rdata), txt);
}

TEST(Message, CnameRoundTrip) {
  Message m;
  m.answers.push_back(ResourceRecord::cname(*DomainName::parse("web.foo.com"),
                                            *DomainName::parse("www.foo.com"),
                                            120));
  Message d = round_trip(m);
  EXPECT_EQ(std::get<CnameRdata>(d.answers[0].rdata).target.to_string(),
            "www.foo.com.");
}

TEST(Message, UnknownTypePreservedAsRaw) {
  Message m;
  m.answers.push_back(ResourceRecord{*DomainName::parse("x.example"),
                                     static_cast<RrType>(99), RrClass::IN, 5,
                                     RawRdata{99, Bytes{1, 2, 3, 4}}});
  Message d = round_trip(m);
  const auto& raw = std::get<RawRdata>(d.answers[0].rdata);
  EXPECT_EQ(raw.data, (Bytes{1, 2, 3, 4}));
}

TEST(Message, ResponseToCopiesIdAndQuestion) {
  Message q = Message::query(42, *DomainName::parse("foo.com"), RrType::NS,
                             false);
  Message r = Message::response_to(q);
  EXPECT_TRUE(r.header.qr);
  EXPECT_EQ(r.header.id, 42);
  ASSERT_EQ(r.questions.size(), 1u);
  EXPECT_EQ(r.questions[0], q.questions[0]);
}

TEST(Message, ReferralClassification) {
  Message q = Message::query(1, *DomainName::parse("www.foo.com"), RrType::A,
                             false);
  Message r = Message::response_to(q);
  r.authority.push_back(ResourceRecord::ns(
      *DomainName::parse("com"), *DomainName::parse("a.gtld.net"), 3600));
  EXPECT_TRUE(r.is_referral());

  // Adding an answer makes it a non-referral.
  Message r2 = r;
  r2.answers.push_back(ResourceRecord::a(*DomainName::parse("www.foo.com"),
                                         net::Ipv4Address(1, 2, 3, 4), 60));
  EXPECT_FALSE(r2.is_referral());

  // SOA in authority (negative answer) is not a referral.
  Message r3 = Message::response_to(q);
  r3.authority.push_back(
      ResourceRecord::soa(*DomainName::parse("com"), SoaRdata{}, 60));
  EXPECT_FALSE(r3.is_referral());

  // Queries are never referrals.
  EXPECT_FALSE(q.is_referral());
}

TEST(Message, DecodeRejectsTrailingGarbage) {
  Message m = Message::query(9, *DomainName::parse("a.b"), RrType::A, false);
  Bytes wire = m.encode();
  wire.push_back(0);
  EXPECT_FALSE(Message::decode(BytesView(wire)).has_value());
}

TEST(Message, DecodeRejectsTruncatedHeader) {
  Bytes tiny{0, 1, 2};
  EXPECT_FALSE(Message::decode(BytesView(tiny)).has_value());
}

TEST(Message, DecodeRejectsCountMismatch) {
  Message m = Message::query(9, *DomainName::parse("a.b"), RrType::A, false);
  Bytes wire = m.encode();
  wire[5] = 3;  // claim 3 questions
  EXPECT_FALSE(Message::decode(BytesView(wire)).has_value());
}

TEST(Message, CompressionKeepsMessagesSmall) {
  // A referral with owner/NS names sharing suffixes must compress.
  Message m;
  m.header.qr = true;
  m.questions.push_back(
      Question{*DomainName::parse("www.foo.com"), RrType::A, RrClass::IN});
  m.authority.push_back(ResourceRecord::ns(*DomainName::parse("foo.com"),
                                           *DomainName::parse("ns1.foo.com"),
                                           3600));
  m.additional.push_back(ResourceRecord::a(*DomainName::parse("ns1.foo.com"),
                                           net::Ipv4Address(10, 0, 0, 3),
                                           3600));
  std::size_t compressed = m.encode().size();
  // Upper bound if nothing compressed: each foo.com suffix is 9 bytes.
  EXPECT_LT(compressed, 100u);
  EXPECT_EQ(round_trip(m), m);
}

// Randomized property: arbitrary well-formed messages survive the codec.
class MessageFuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageFuzzRoundTrip, Identity) {
  dnsguard::Rng rng(GetParam());
  const char* names[] = {"a.example", "b.c.example", "x.y.z.w", "deep.a.b.c",
                         "example", "www.foo.com", "mail.foo.com"};
  Message m;
  m.header.id = static_cast<std::uint16_t>(rng.next());
  m.header.qr = rng.chance(0.5);
  m.header.aa = rng.chance(0.5);
  m.header.tc = rng.chance(0.2);
  m.header.rd = rng.chance(0.5);
  m.header.rcode = rng.chance(0.2) ? Rcode::NxDomain : Rcode::NoError;
  m.questions.push_back(Question{*DomainName::parse(names[rng.bounded(7)]),
                                 RrType::A, RrClass::IN});
  std::uint64_t n_rr = rng.bounded(6);
  for (std::uint64_t i = 0; i < n_rr; ++i) {
    auto owner = *DomainName::parse(names[rng.bounded(7)]);
    std::uint32_t ttl = static_cast<std::uint32_t>(rng.bounded(100000));
    ResourceRecord rr;
    switch (rng.bounded(4)) {
      case 0:
        rr = ResourceRecord::a(owner,
                               net::Ipv4Address(static_cast<std::uint32_t>(
                                   rng.next())),
                               ttl);
        break;
      case 1:
        rr = ResourceRecord::ns(owner, *DomainName::parse(names[rng.bounded(7)]),
                                ttl);
        break;
      case 2:
        rr = ResourceRecord::cname(owner,
                                   *DomainName::parse(names[rng.bounded(7)]),
                                   ttl);
        break;
      default: {
        Bytes payload(rng.bounded(40));
        for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
        rr = ResourceRecord::txt(owner, TxtRdata::single(BytesView(payload)),
                                 ttl);
        break;
      }
    }
    switch (rng.bounded(3)) {
      case 0: m.answers.push_back(std::move(rr)); break;
      case 1: m.authority.push_back(std::move(rr)); break;
      default: m.additional.push_back(std::move(rr)); break;
    }
  }
  EXPECT_EQ(round_trip(m), m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzzRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 32));

// Malformed-input robustness: random byte strings never crash the decoder.
class MessageFuzzDecode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageFuzzDecode, NeverCrashes) {
  dnsguard::Rng rng(GetParam() * 977 + 1);
  Bytes junk(rng.bounded(200));
  for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
  (void)Message::decode(BytesView(junk));  // must not crash or hang
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzzDecode,
                         ::testing::Range<std::uint64_t>(0, 64));

}  // namespace
}  // namespace dnsguard::dns
