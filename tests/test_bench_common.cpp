// Bench harness helpers: the wall/CPU clock wrappers, quick-mode
// selection, and the ProfileCollector that builds the benches' "profile"
// JSON section. These run on the host clock by design (bench_common.h is
// sim-time-purity exempt), so assertions stick to algebraic properties —
// signs, monotonicity, emptiness — never absolute timings.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "bench/bench_common.h"

namespace dnsguard::bench {
namespace {

TEST(WallClockHelpers, EmptyWindowReportsZeroNotInfinity) {
  const WallClock::time_point t0 = wall_now();
  // A quick-mode window can complete zero operations; per-op cost must
  // degrade to 0, not inf/nan, or every JSON baseline comparison poisons.
  EXPECT_EQ(wall_ns_per_op(t0, 0), 0.0);
}

TEST(WallClockHelpers, PerOpCostIsPositiveAndScalesWithOps) {
  const WallClock::time_point t0 = wall_now();
  volatile double sink = 0.0;
  for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  const double per_1 = wall_ns_per_op(t0, 1);
  const double per_1000 = wall_ns_per_op(t0, 1000);
  EXPECT_GT(per_1, 0.0);
  EXPECT_GT(per_1000, 0.0);
  // Same window, 1000x the ops: per-op cost must be smaller (the two
  // wall_seconds_since calls make the second window slightly longer, so
  // only the three-orders-of-magnitude direction is assertable).
  EXPECT_LT(per_1000, per_1);
}

TEST(WallClockHelpers, ThreadCpuSecondsIsMonotonicNonNegative) {
  const double c0 = thread_cpu_seconds();
  ASSERT_GE(c0, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double c1 = thread_cpu_seconds();
  EXPECT_GE(c1, c0);
}

TEST(QuickMode, EnvVariableSelectsTheSmokeValue) {
  // quick_mode() re-reads the environment on every call, so the test can
  // flip it locally and restore whatever the harness had set.
  const char* saved = std::getenv("DNSGUARD_BENCH_QUICK");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::setenv("DNSGUARD_BENCH_QUICK", "1", 1);
  EXPECT_TRUE(quick_mode());
  EXPECT_EQ(quick(100, 7), 7);

  ::unsetenv("DNSGUARD_BENCH_QUICK");
  EXPECT_FALSE(quick_mode());
  EXPECT_EQ(quick(100, 7), 100);

  // An *empty* value means unset — CI exports the flag conditionally and
  // an empty expansion must not half-enable smoke mode.
  ::setenv("DNSGUARD_BENCH_QUICK", "", 1);
  EXPECT_FALSE(quick_mode());

  if (saved != nullptr) {
    ::setenv("DNSGUARD_BENCH_QUICK", saved_value.c_str(), 1);
  } else {
    ::unsetenv("DNSGUARD_BENCH_QUICK");
  }
}

TEST(ProfileCollectorTest, CaptureIsANoOpWhileProfilingIsDisabled) {
  obs::prof::profiler.disable();
  ProfileCollector collector;
  collector.capture("miss", 1e9);
  // Profiling is opt-in per bench: a disabled profiler yields no section,
  // so non-profiled benches' JSON stays byte-identical to before.
  EXPECT_TRUE(collector.empty());
}

TEST(ProfileCollectorTest, CapturedLabelsRenderAsJsonObjectKeys) {
  obs::prof::profiler.enable();
  obs::prof::profiler.set_sampling(1, 1);
  obs::prof::profiler.reset();
  obs::prof::profiler.record(obs::prof::Stage::kRoot,
                             obs::prof::Stage::kGuardService, 100);
  ProfileCollector collector;
  collector.capture("ns_name_hit", 1e6);
  obs::prof::profiler.reset();
  collector.capture("ns_name_miss", 2e6);
  obs::prof::profiler.disable();

  ASSERT_FALSE(collector.empty());
  const std::string json = collector.to_json();
  EXPECT_NE(json.find("\"ns_name_hit\""), std::string::npos);
  EXPECT_NE(json.find("\"ns_name_miss\""), std::string::npos);
  EXPECT_NE(json.find("\"guard.service\""), std::string::npos);
  EXPECT_NE(json.find("\"root_share\""), std::string::npos);
}

}  // namespace
}  // namespace dnsguard::bench
