// End-to-end recursive resolution over the simulated network: iterative
// descent through root/com/foo.com, caching, glueless NS resolution,
// CNAME chasing, server failover and DNS-over-TCP fallback on truncation.
#include <gtest/gtest.h>

#include "server/authoritative_node.h"
#include "server/resolver_node.h"
#include "server/stub_node.h"
#include "server/zone.h"
#include "sim/simulator.h"

namespace dnsguard::server {
namespace {

using dns::DomainName;
using dns::RrType;
using net::Ipv4Address;

constexpr Ipv4Address kRootIp(10, 0, 0, 1);
constexpr Ipv4Address kComIp(10, 0, 0, 2);
constexpr Ipv4Address kFooIp(10, 0, 0, 3);
constexpr Ipv4Address kLrsIp(10, 0, 1, 1);

struct Testbed {
  sim::Simulator sim;
  std::unique_ptr<AuthoritativeServerNode> root, com, foo;
  std::unique_ptr<RecursiveResolverNode> lrs;

  explicit Testbed(SimDuration retry = milliseconds(20)) {
    auto h = make_example_hierarchy(kRootIp, kComIp, kFooIp);
    root = std::make_unique<AuthoritativeServerNode>(
        sim, "root", AuthoritativeServerNode::Config{.address = kRootIp});
    com = std::make_unique<AuthoritativeServerNode>(
        sim, "com", AuthoritativeServerNode::Config{.address = kComIp});
    foo = std::make_unique<AuthoritativeServerNode>(
        sim, "foo", AuthoritativeServerNode::Config{.address = kFooIp});
    root->add_zone(std::move(h.root));
    com->add_zone(std::move(h.com));
    foo->add_zone(std::move(h.foo_com));

    RecursiveResolverNode::Config cfg;
    cfg.address = kLrsIp;
    cfg.root_hints = {kRootIp};
    cfg.retry_timeout = retry;
    lrs = std::make_unique<RecursiveResolverNode>(sim, "lrs", cfg);

    sim.add_host_route(kRootIp, root.get());
    sim.add_host_route(kComIp, com.get());
    sim.add_host_route(kFooIp, foo.get());
    sim.add_host_route(kLrsIp, lrs.get());
    sim.set_default_latency(microseconds(200));  // 0.4 ms RTT, §IV.A
  }

  RecursiveResolverNode::Result resolve(const char* name,
                                        RrType type = RrType::A) {
    RecursiveResolverNode::Result out;
    bool done = false;
    lrs->resolve(*DomainName::parse(name), type,
                 [&](const RecursiveResolverNode::Result& r) {
                   out = r;
                   done = true;
                 });
    sim.run_for(seconds(10));
    EXPECT_TRUE(done) << "resolution did not complete for " << name;
    return out;
  }
};

TEST(Resolver, FullIterativeDescent) {
  Testbed t;
  auto r = t.resolve("www.foo.com");
  ASSERT_TRUE(r.ok);
  bool found = false;
  for (const auto& rr : r.answers) {
    if (rr.type == RrType::A &&
        std::get<dns::ARdata>(rr.rdata).address == Ipv4Address(192, 0, 2, 80)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Three iterative queries: root -> com -> foo.com.
  EXPECT_EQ(t.lrs->resolver_stats().iterative_queries, 3u);
  EXPECT_EQ(t.lrs->resolver_stats().referrals_followed, 2u);
}

TEST(Resolver, SecondLookupServedFromCache) {
  Testbed t;
  (void)t.resolve("www.foo.com");
  std::uint64_t q1 = t.lrs->resolver_stats().iterative_queries;
  auto r = t.resolve("www.foo.com");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(t.lrs->resolver_stats().iterative_queries, q1)
      << "cache hit must not issue new iterative queries";
}

TEST(Resolver, SiblingNameReusesDelegations) {
  Testbed t;
  (void)t.resolve("www.foo.com");
  std::uint64_t q1 = t.lrs->resolver_stats().iterative_queries;
  auto r = t.resolve("mail.foo.com");
  EXPECT_TRUE(r.ok);
  // Only one more query: straight to the (cached) foo.com server.
  EXPECT_EQ(t.lrs->resolver_stats().iterative_queries, q1 + 1);
}

TEST(Resolver, LatencyIsThreeRttForColdLookup) {
  Testbed t;
  auto r = t.resolve("www.foo.com");
  ASSERT_TRUE(r.ok);
  // 3 exchanges x 0.4 ms RTT plus service times.
  EXPECT_GE(r.elapsed.millis(), 1.2);
  EXPECT_LE(r.elapsed.millis(), 2.0);
}

TEST(Resolver, CnameChasedAcrossResponses) {
  Testbed t;
  auto r = t.resolve("web.foo.com");
  ASSERT_TRUE(r.ok);
  bool saw_cname = false, saw_a = false;
  for (const auto& rr : r.answers) {
    if (rr.type == RrType::CNAME) saw_cname = true;
    if (rr.type == RrType::A) saw_a = true;
  }
  EXPECT_TRUE(saw_cname);
  EXPECT_TRUE(saw_a);
}

TEST(Resolver, NxDomainPropagates) {
  Testbed t;
  auto r = t.resolve("missing.foo.com");
  EXPECT_TRUE(r.ok);  // resolution completed...
  EXPECT_EQ(r.rcode, dns::Rcode::NxDomain);  // ...with NXDOMAIN
}

TEST(Resolver, FailsOverToSecondRootHint) {
  Testbed t;
  // First hint is a black hole; the resolver must retry and then move on.
  RecursiveResolverNode::Config cfg;
  cfg.address = Ipv4Address(10, 0, 1, 2);
  cfg.root_hints = {Ipv4Address(10, 9, 9, 9), kRootIp};
  cfg.retry_timeout = milliseconds(20);
  cfg.max_retries = 1;
  auto lrs2 = std::make_unique<RecursiveResolverNode>(t.sim, "lrs2", cfg);
  t.sim.add_host_route(cfg.address, lrs2.get());

  RecursiveResolverNode::Result out;
  bool done = false;
  lrs2->resolve(*DomainName::parse("www.foo.com"), RrType::A,
                [&](const RecursiveResolverNode::Result& r) {
                  out = r;
                  done = true;
                });
  t.sim.run_for(seconds(10));
  ASSERT_TRUE(done);
  EXPECT_TRUE(out.ok);
  EXPECT_GE(lrs2->resolver_stats().retransmissions, 1u);
}

TEST(Resolver, AllServersDeadGivesServfail) {
  Testbed t;
  RecursiveResolverNode::Config cfg;
  cfg.address = Ipv4Address(10, 0, 1, 3);
  cfg.root_hints = {Ipv4Address(10, 9, 9, 9)};
  cfg.retry_timeout = milliseconds(10);
  cfg.max_retries = 1;
  auto lrs2 = std::make_unique<RecursiveResolverNode>(t.sim, "lrs3", cfg);
  t.sim.add_host_route(cfg.address, lrs2.get());

  RecursiveResolverNode::Result out;
  bool done = false;
  lrs2->resolve(*DomainName::parse("www.foo.com"), RrType::A,
                [&](const RecursiveResolverNode::Result& r) {
                  out = r;
                  done = true;
                });
  t.sim.run_for(seconds(10));
  ASSERT_TRUE(done);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.rcode, dns::Rcode::ServFail);
}

TEST(Resolver, GluelessDelegationResolvedViaSubquery) {
  Testbed t;
  // com additionally delegates bar.com to ns.baz.com WITHOUT glue, and
  // baz.com (with glue) hosts ns.baz.com's address; bar.com lives on its
  // own server.
  Ipv4Address bar_ip(10, 0, 0, 4), baz_ip(10, 0, 0, 5);
  auto bar = std::make_unique<AuthoritativeServerNode>(
      t.sim, "bar", AuthoritativeServerNode::Config{.address = bar_ip});
  auto baz = std::make_unique<AuthoritativeServerNode>(
      t.sim, "baz", AuthoritativeServerNode::Config{.address = baz_ip});

  Zone barzone(*DomainName::parse("bar.com"));
  barzone.add_soa();
  barzone.add_a("www.bar.com.", Ipv4Address(192, 0, 2, 99));
  bar->add_zone(std::move(barzone));

  Zone bazzone(*DomainName::parse("baz.com"));
  bazzone.add_soa();
  bazzone.add_a("ns.baz.com.", bar_ip);  // ns.baz.com IS bar.com's server
  baz->add_zone(std::move(bazzone));

  // Extend the com zone served by t.com: glueless bar.com, glued baz.com.
  Zone extra(*DomainName::parse("com"));
  extra.add_ns("bar.com.", "ns.baz.com.");
  extra.add_ns("baz.com.", "ns1.baz.com.");
  extra.add_a("ns1.baz.com.", baz_ip);
  t.com->add_zone(std::move(extra));

  t.sim.add_host_route(bar_ip, bar.get());
  t.sim.add_host_route(baz_ip, baz.get());

  auto r = t.resolve("www.bar.com");
  ASSERT_TRUE(r.ok);
  bool found = false;
  for (const auto& rr : r.answers) {
    if (rr.type == RrType::A &&
        std::get<dns::ARdata>(rr.rdata).address == Ipv4Address(192, 0, 2, 99)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GE(t.lrs->resolver_stats().glue_subtasks, 1u);
}

TEST(Resolver, TruncationFallsBackToTcp) {
  Testbed t;
  // A name with enough A records that the UDP response exceeds 512 bytes.
  Zone big(*DomainName::parse("foo.com"));
  for (int i = 0; i < 40; ++i) {
    big.add_a("big.foo.com.", Ipv4Address(192, 0, 3, static_cast<std::uint8_t>(i)));
  }
  t.foo->add_zone(std::move(big));

  auto r = t.resolve("big.foo.com");
  ASSERT_TRUE(r.ok);
  EXPECT_GE(r.answers.size(), 40u);
  EXPECT_EQ(t.lrs->resolver_stats().tcp_fallbacks, 1u);
  EXPECT_GE(t.foo->ans_stats().tcp_queries, 1u);
  EXPECT_GE(t.foo->ans_stats().truncated, 1u);
}

TEST(Resolver, ServesNetworkClients) {
  Testbed t;
  Ipv4Address stub_ip(10, 0, 2, 1);
  auto stub = std::make_unique<StubResolverNode>(
      t.sim, "stub",
      StubResolverNode::Config{.address = stub_ip, .lrs_address = kLrsIp});
  t.sim.add_host_route(stub_ip, stub.get());

  StubResolverNode::Result out;
  bool done = false;
  stub->lookup(*DomainName::parse("www.foo.com"), RrType::A,
               [&](const StubResolverNode::Result& r) {
                 out = r;
                 done = true;
               });
  t.sim.run_for(seconds(10));
  ASSERT_TRUE(done);
  EXPECT_TRUE(out.ok);
  ASSERT_FALSE(out.answers.empty());
  EXPECT_EQ(t.lrs->resolver_stats().client_queries, 1u);
  EXPECT_EQ(t.lrs->resolver_stats().client_responses, 1u);
}

TEST(Resolver, StubTimesOutWhenLrsDead) {
  sim::Simulator sim;
  Ipv4Address stub_ip(10, 0, 2, 1);
  auto stub = std::make_unique<StubResolverNode>(
      sim, "stub",
      StubResolverNode::Config{.address = stub_ip,
                               .lrs_address = Ipv4Address(10, 66, 66, 66),
                               .timeout = milliseconds(50),
                               .max_retries = 1});
  sim.add_host_route(stub_ip, stub.get());
  StubResolverNode::Result out;
  bool done = false;
  stub->lookup(*DomainName::parse("x.example"), RrType::A,
               [&](const StubResolverNode::Result& r) {
                 out = r;
                 done = true;
               });
  sim.run_for(seconds(5));
  ASSERT_TRUE(done);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(stub->stub_stats().timeouts, 1u);
  EXPECT_EQ(stub->stub_stats().retries, 1u);
}

TEST(AnsSimulator, AnswersEverythingAtFixedCost) {
  sim::Simulator sim;
  AnsSimulatorNode ans(sim, "anssim",
                       AnsSimulatorNode::Config{.address = kRootIp});
  sim.add_host_route(kRootIp, &ans);

  RecursiveResolverNode::Config cfg;
  cfg.address = kLrsIp;
  cfg.root_hints = {kRootIp};
  auto lrs = std::make_unique<RecursiveResolverNode>(sim, "lrs", cfg);
  sim.add_host_route(kLrsIp, lrs.get());

  RecursiveResolverNode::Result out;
  bool done = false;
  lrs->resolve(*DomainName::parse("anything.example"), RrType::A,
               [&](const RecursiveResolverNode::Result& r) {
                 out = r;
                 done = true;
               });
  sim.run_for(seconds(5));
  ASSERT_TRUE(done);
  EXPECT_TRUE(out.ok);
  ASSERT_EQ(out.answers.size(), 1u);
  EXPECT_EQ(ans.ans_stats().udp_queries, 1u);
}

}  // namespace
}  // namespace dnsguard::server
