// BoundedTable unit suite: LRU order, TTL/idle reaping, capacity
// enforcement, eviction accounting, pointer stability, index integrity
// under churn (the properties every per-source table in the system now
// depends on).
#include "common/bounded_table.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"

namespace dnsguard::common {
namespace {

using Table = BoundedTable<std::uint32_t, std::string>;

SimTime at(std::int64_t ms) { return SimTime{} + milliseconds(ms); }

TEST(BoundedTable, InsertFindErase) {
  Table t({.capacity = 8});
  auto r = t.try_emplace(1, at(0), "one");
  ASSERT_NE(r.value, nullptr);
  EXPECT_TRUE(r.inserted);
  EXPECT_EQ(*r.value, "one");

  auto again = t.try_emplace(1, at(1), "uno");
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(*again.value, "one") << "existing entry must not be replaced";

  EXPECT_EQ(*t.find(1, at(2)), "one");
  EXPECT_EQ(t.find(2, at(2)), nullptr);
  EXPECT_EQ(t.size(), 1u);

  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.find(1, at(3)), nullptr);
  EXPECT_EQ(t.size(), 0u);
}

TEST(BoundedTable, CapacityEvictsLeastRecentlyUsed) {
  Table t({.capacity = 3});
  t.try_emplace(1, at(0), "a");
  t.try_emplace(2, at(1), "b");
  t.try_emplace(3, at(2), "c");
  ASSERT_NE(t.lru_key(), nullptr);
  EXPECT_EQ(*t.lru_key(), 1u);

  // Touching 1 makes 2 the LRU victim.
  EXPECT_NE(t.find(1, at(3)), nullptr);
  t.try_emplace(4, at(4), "d");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.find(2, at(5)), nullptr) << "LRU entry should have been evicted";
  EXPECT_NE(t.find(1, at(5)), nullptr);
  EXPECT_NE(t.find(3, at(5)), nullptr);
  EXPECT_NE(t.find(4, at(5)), nullptr);
  EXPECT_EQ(t.stats().evicted_capacity.value(), 1u);
}

TEST(BoundedTable, RefusalModeRejectsAtCap) {
  Table t({.capacity = 2, .evict_lru_when_full = false});
  EXPECT_TRUE(t.try_emplace(1, at(0), "a").inserted);
  EXPECT_TRUE(t.try_emplace(2, at(0), "b").inserted);
  auto r = t.try_emplace(3, at(0), "c");
  EXPECT_EQ(r.value, nullptr);
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.stats().insert_refused.value(), 1u);
  // Existing keys still resolve at cap.
  EXPECT_FALSE(t.try_emplace(1, at(1), "x").inserted);
}

TEST(BoundedTable, TtlExpiryOnContactAndReap) {
  Table t({.capacity = 8, .ttl = milliseconds(10)});
  t.try_emplace(1, at(0), "a");
  t.try_emplace(2, at(5), "b");

  EXPECT_NE(t.find(1, at(9)), nullptr);
  EXPECT_EQ(t.find(1, at(10)), nullptr) << "TTL deadline is inclusive";
  EXPECT_EQ(t.stats().expired_ttl.value(), 1u);

  // Entry 2 expires at 15ms; a full reap at 20ms clears it.
  EXPECT_EQ(t.reap(at(20)), 1u);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.stats().expired_ttl.value(), 2u);
}

TEST(BoundedTable, IdleTimeoutRunsFromLastTouch) {
  Table t({.capacity = 8, .idle_timeout = milliseconds(10)});
  t.try_emplace(1, at(0), "a");
  EXPECT_NE(t.find(1, at(8)), nullptr);   // touch resets the idle clock
  EXPECT_NE(t.find(1, at(17)), nullptr);  // 9ms idle: still alive
  EXPECT_EQ(t.find(1, at(27)), nullptr);  // 10ms idle: expired
  EXPECT_EQ(t.stats().expired_idle.value(), 1u);
}

TEST(BoundedTable, PerEntryExpiryOverride) {
  Table t({.capacity = 8});  // no table-wide TTL
  t.try_emplace(1, at(0), "a");
  EXPECT_TRUE(t.set_expiry(1, at(50)));
  EXPECT_FALSE(t.set_expiry(9, at(50)));
  EXPECT_NE(t.find(1, at(49)), nullptr);
  EXPECT_EQ(t.find(1, at(50)), nullptr);
  EXPECT_EQ(t.stats().expired_ttl.value(), 1u);
}

TEST(BoundedTable, PeekDoesNotTouchLru) {
  Table t({.capacity = 2});
  t.try_emplace(1, at(0), "a");
  t.try_emplace(2, at(1), "b");
  EXPECT_NE(t.peek(1, at(2)), nullptr);  // no LRU refresh
  t.try_emplace(3, at(3), "c");
  EXPECT_EQ(t.peek(1, at(4)), nullptr) << "peek must not have protected 1";
  EXPECT_NE(t.peek(2, at(4)), nullptr);
}

TEST(BoundedTable, EvictionCallbackReportsReasonNotOnErase) {
  struct Evt {
    std::uint32_t key;
    std::string value;
    EvictReason reason;
  };
  std::vector<Evt> events;
  Table t({.capacity = 2, .ttl = milliseconds(10)});
  t.set_evict_callback([&](const std::uint32_t& k, std::string& v,
                           EvictReason r) { events.push_back({k, v, r}); });

  t.try_emplace(1, at(0), "a");
  t.try_emplace(2, at(1), "b");
  t.try_emplace(3, at(2), "c");  // capacity-evicts 1
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].key, 1u);
  EXPECT_EQ(events[0].value, "a");
  EXPECT_EQ(events[0].reason, EvictReason::kCapacity);

  t.reap(at(20));  // TTL-evicts 2 and 3
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].reason, EvictReason::kTtl);
  EXPECT_EQ(events[2].reason, EvictReason::kTtl);

  t.try_emplace(4, at(21), "d");
  t.erase(4);  // voluntary: no callback
  t.try_emplace(5, at(22), "e");
  t.clear();   // voluntary: no callback
  EXPECT_EQ(events.size(), 3u);
}

TEST(BoundedTable, ValuePointersStableAcrossChurn) {
  Table t({.capacity = 64});
  auto* first = t.try_emplace(0, at(0), "zero").value;
  std::string* pinned = first;
  for (std::uint32_t k = 1; k < 64; ++k) t.try_emplace(k, at(k), "v");
  for (std::uint32_t k = 1; k < 64; k += 2) t.erase(k);
  for (std::uint32_t k = 100; k < 130; ++k) t.try_emplace(k, at(k), "w");
  EXPECT_EQ(pinned, t.find(0, at(200))) << "slot addresses must be stable";
  EXPECT_EQ(*pinned, "zero");
}

TEST(BoundedTable, IndexIntegrityUnderHeavyChurn) {
  // Dense small keys + a power-of-two-mask index is the worst case for
  // probe clustering and backward-shift deletion; mirror against a
  // std::unordered_map oracle.
  BoundedTable<std::uint16_t, std::uint32_t> t({.capacity = 512});
  std::unordered_map<std::uint16_t, std::uint32_t> oracle;
  std::uint64_t rng = 0x123456789abcdefULL;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 20000; ++i) {
    const auto key = static_cast<std::uint16_t>(next() % 700);
    if (next() % 3 == 0) {
      EXPECT_EQ(t.erase(key), oracle.erase(key) > 0);
    } else if (oracle.size() < 512 || oracle.count(key) != 0) {
      auto r = t.try_emplace(key, at(i), static_cast<std::uint32_t>(i));
      auto [it, inserted] = oracle.try_emplace(key,
                                               static_cast<std::uint32_t>(i));
      ASSERT_NE(r.value, nullptr);
      EXPECT_EQ(r.inserted, inserted);
      EXPECT_EQ(*r.value, it->second);
    }
    ASSERT_EQ(t.size(), oracle.size());
  }
  for (const auto& [k, v] : oracle) {
    auto* found = t.find(k, at(99999));
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, v);
  }
}

TEST(BoundedTable, IncrementalReapCoversTableAcrossCalls) {
  Table t({.capacity = 128, .ttl = milliseconds(1)});
  for (std::uint32_t k = 0; k < 100; ++k) t.try_emplace(k, at(0), "x");
  std::size_t total = 0;
  for (int i = 0; i < 10; ++i) total += t.reap(at(100), 10);
  EXPECT_EQ(total, 100u);
  EXPECT_TRUE(t.empty());
}

TEST(BoundedTable, EraseIfAndForEach) {
  Table t({.capacity = 16});
  for (std::uint32_t k = 0; k < 10; ++k) {
    t.try_emplace(k, at(0), k % 2 ? "odd" : "even");
  }
  EXPECT_EQ(t.erase_if([](const std::uint32_t&, const std::string& v) {
              return v == "odd";
            }),
            5u);
  std::unordered_set<std::uint32_t> seen;
  t.for_each([&](const std::uint32_t& k, std::string& v) {
    EXPECT_EQ(v, "even");
    seen.insert(k);
  });
  EXPECT_EQ(seen.size(), 5u);
}

TEST(BoundedTable, MetricsBindExportsOccupancyAndEvictions) {
  obs::MetricsRegistry registry;
  Table t({.capacity = 2});
  t.bind_metrics(registry, "test.table");
  t.try_emplace(1, at(0), "a");
  t.try_emplace(2, at(1), "b");
  t.try_emplace(3, at(2), "c");
  const auto* size = registry.find_gauge("test.table.size");
  ASSERT_NE(size, nullptr);
  EXPECT_EQ(size->value(), 2);
  EXPECT_EQ(size->max(), 2);
  const auto* evicted = registry.find_counter("test.table.evicted_capacity");
  ASSERT_NE(evicted, nullptr);
  EXPECT_EQ(evicted->value(), 1u);
  t.erase(2);
  EXPECT_EQ(size->value(), 1);
}

TEST(BoundedTable, ContainsSeesExpiredOccupancyPeekDoesNot) {
  Table t({.capacity = 4, .ttl = milliseconds(5)});
  t.try_emplace(1, at(0), "a");
  EXPECT_TRUE(t.contains(1));
  EXPECT_EQ(t.peek(1, at(10)), nullptr);
  EXPECT_TRUE(t.contains(1)) << "contains() reports slot occupancy";
  t.reap(at(10));
  EXPECT_FALSE(t.contains(1));
}

TEST(BoundedTable, ExpiredEntryIsReplacedNotReturned) {
  Table t({.capacity = 4, .ttl = milliseconds(5)});
  t.try_emplace(1, at(0), "stale");
  auto r = t.try_emplace(1, at(10), "fresh");
  ASSERT_NE(r.value, nullptr);
  EXPECT_TRUE(r.inserted) << "expired entry must be evicted, then re-created";
  EXPECT_EQ(*r.value, "fresh");
  EXPECT_EQ(t.stats().expired_ttl.value(), 1u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BoundedTable, TtlBoundaryExactDeadlineConsistentAcrossPaths) {
  // An entry whose deadline equals `now` is expired on every path at
  // once — find(), peek(), reap() and the gauges must agree, or the same
  // instant yields a hit on one path and an expiry on another.
  Table t({.capacity = 4, .ttl = milliseconds(100)});
  t.try_emplace(1, at(0), "a");
  EXPECT_NE(t.peek(1, at(99)), nullptr);
  EXPECT_EQ(t.peek(1, at(100)), nullptr) << "now == expires_at is expired";
  EXPECT_EQ(t.find(1, at(100)), nullptr);
  EXPECT_EQ(t.stats().expired_ttl.value(), 1u);

  t.try_emplace(2, at(0), "b");
  EXPECT_EQ(t.reap(at(100)), 1u) << "reap uses the same boundary as find";
  EXPECT_EQ(t.stats().expired_ttl.value(), 2u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(BoundedTable, FullTableOfExpiredEntriesChargesExpiryNotCapacity) {
  // Displacing an already-dead LRU tail at capacity is an expiry that a
  // sweep would have found — charging it to evicted_capacity makes a
  // table full of corpses read as live-entry thrashing.
  Table t({.capacity = 3, .ttl = milliseconds(10)});
  for (std::uint32_t k = 0; k < 3; ++k) t.try_emplace(k, at(0), "old");
  for (std::uint32_t k = 10; k < 13; ++k) {
    auto r = t.try_emplace(k, at(20), "live");
    EXPECT_TRUE(r.inserted);
  }
  EXPECT_EQ(t.stats().evicted_capacity.value(), 0u);
  EXPECT_EQ(t.stats().expired_ttl.value(), 3u);
  // A genuinely live tail displaced at capacity still counts as such.
  EXPECT_TRUE(t.try_emplace(20, at(21), "new").inserted);
  EXPECT_EQ(t.stats().evicted_capacity.value(), 1u);
  EXPECT_EQ(t.stats().expired_ttl.value(), 3u);
}

TEST(BoundedTable, ReapSurvivesCallbackErasingSiblingEntries) {
  // The eviction callback may erase *other* entries of the evicting
  // table (the guard's NAT-evict -> TCP-close -> NAT-erase_if chain);
  // the reap cursor must neither crash nor skip live slots over it.
  Table t({.capacity = 8, .ttl = milliseconds(10)});
  for (std::uint32_t k = 1; k <= 8; ++k) t.try_emplace(k, at(0), "v");
  t.set_evict_callback(
      [&t](const std::uint32_t& k, std::string&, EvictReason) {
        if (k == 1) t.erase(2);
      });
  EXPECT_EQ(t.reap(at(20)), 7u) << "key 2 left voluntarily, not reaped";
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.stats().expired_ttl.value(), 7u);
}

TEST(BoundedTable, ReapCoversEntriesInsertedByEvictionCallback) {
  // Insertions from the callback can grow the slot array mid-sweep; the
  // re-read bound must cover them instead of wrapping early (and fresh
  // entries must of course survive the sweep that created them).
  Table t({.capacity = 8, .ttl = milliseconds(10)});
  for (std::uint32_t k = 1; k <= 4; ++k) t.try_emplace(k, at(0), "old");
  bool seeded = false;
  t.set_evict_callback([&](const std::uint32_t&, std::string&, EvictReason) {
    if (!seeded) {
      seeded = true;
      t.try_emplace(100, at(20), "fresh");
      t.try_emplace(101, at(20), "fresh");
    }
  });
  EXPECT_EQ(t.reap(at(20)), 4u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_NE(t.peek(100, at(21)), nullptr);
  EXPECT_NE(t.peek(101, at(21)), nullptr);
}

}  // namespace
}  // namespace dnsguard::common
