// dns::Cursor: bounds-checked reads, RDATA windows, compression-pointer
// marks, plus randomized robustness — truncated wire inputs and
// adversarial pointer graphs must never read out of bounds (ASan-checked
// via the sanitizer build) and must either decode or cleanly poison.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "dns/cursor.h"
#include "dns/message.h"
#include "dns/name.h"
#include "net/ipv4.h"

namespace dnsguard::dns {
namespace {

Bytes bytes(std::initializer_list<int> vals) {
  Bytes out;
  for (int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

// --- scalar reads ----------------------------------------------------------

TEST(Cursor, BigEndianReads) {
  Bytes w = bytes({0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF});
  Cursor c{BytesView(w)};
  EXPECT_EQ(c.u8(), 0xABu);
  EXPECT_EQ(c.u16(), 0x1234u);
  EXPECT_EQ(c.u32(), 0xDEADBEEFu);
  EXPECT_TRUE(c.ok());
  EXPECT_TRUE(c.at_end());
}

TEST(Cursor, UnderflowPoisonsAndStaysPoisoned) {
  Bytes w = bytes({0x01});
  Cursor c{BytesView(w)};
  EXPECT_EQ(c.u16(), 0u);  // needs 2 bytes, only 1 present
  EXPECT_FALSE(c.ok());
  // Poison is sticky: the byte that *is* there no longer reads.
  EXPECT_EQ(c.u8(), 0u);
  EXPECT_FALSE(c.ok());
}

TEST(Cursor, RawAndCharsReadExactSpans) {
  Bytes w = bytes({'a', 'b', 'c', 'd'});
  Cursor c{BytesView(w)};
  BytesView head = c.raw(2);
  ASSERT_EQ(head.size(), 2u);
  EXPECT_EQ(head[0], 'a');
  EXPECT_EQ(c.chars(2), "cd");
  EXPECT_TRUE(c.ok());
  EXPECT_TRUE(c.at_end());
}

TEST(Cursor, SkipPastEndPoisons) {
  Bytes w = bytes({1, 2, 3});
  Cursor c{BytesView(w)};
  c.skip(2);
  EXPECT_TRUE(c.ok());
  c.skip(2);
  EXPECT_FALSE(c.ok());
}

// --- RDATA windows ---------------------------------------------------------

TEST(Cursor, WindowFencesReads) {
  Bytes w = bytes({0x11, 0x22, 0x33, 0x44});
  Cursor c{BytesView(w)};
  ASSERT_TRUE(c.push_window(2));
  EXPECT_EQ(c.u16(), 0x1122u);
  EXPECT_TRUE(c.at_limit());
  // A read past the window fails even though the message has more bytes.
  EXPECT_EQ(c.u8(), 0u);
  EXPECT_FALSE(c.ok());
}

TEST(Cursor, WindowLongerThanRemainingFails) {
  Bytes w = bytes({1, 2});
  Cursor c{BytesView(w)};
  EXPECT_FALSE(c.push_window(3));
  EXPECT_FALSE(c.ok());
}

TEST(Cursor, PopWindowRestoresMessageLimit) {
  Bytes w = bytes({1, 2, 3});
  Cursor c{BytesView(w)};
  ASSERT_TRUE(c.push_window(1));
  (void)c.u8();
  EXPECT_TRUE(c.at_limit());
  c.pop_window();
  EXPECT_FALSE(c.at_end());
  EXPECT_EQ(c.u16(), 0x0203u);
  EXPECT_TRUE(c.at_end());
}

// --- compression-pointer chasing -------------------------------------------

TEST(Cursor, JumpBackMustGoStrictlyBackwards) {
  Bytes w = bytes({1, 2, 3, 4});
  Cursor c{BytesView(w)};
  c.skip(2);
  EXPECT_FALSE(Cursor{BytesView(w)}.jump_back(0));  // pos 0: not backwards
  EXPECT_TRUE(c.jump_back(0));
  EXPECT_EQ(c.u8(), 1u);
}

TEST(Cursor, JumpForwardPoisons) {
  Bytes w = bytes({1, 2, 3, 4});
  Cursor c{BytesView(w)};
  c.skip(1);
  EXPECT_FALSE(c.jump_back(3));
  EXPECT_FALSE(c.ok());
}

TEST(Cursor, JumpEscapesWindowAndResumeRestoresIt) {
  Bytes w = bytes({0xAA, 0xBB, 0xCC, 0xDD, 0xEE});
  Cursor c{BytesView(w)};
  c.skip(3);
  ASSERT_TRUE(c.push_window(1));
  Cursor::Mark m = c.mark();
  // Jump back to the message head: reads there are legal even though the
  // window only covered one byte (pointers may target any earlier byte).
  ASSERT_TRUE(c.jump_back(0));
  EXPECT_EQ(c.u16(), 0xAABBu);
  EXPECT_TRUE(c.ok());
  c.resume(m);
  EXPECT_EQ(c.u8(), 0xDDu);
  EXPECT_TRUE(c.at_limit());
}

TEST(Cursor, ManualFailIsSticky) {
  Bytes w = bytes({1, 2});
  Cursor c{BytesView(w)};
  c.fail();
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.u8(), 0u);
}

// --- randomized robustness -------------------------------------------------

// Every truncation of a valid compressed name either decodes (only the
// full length can) or returns nullopt with the cursor poisoned or short —
// never an out-of-bounds read (ASan enforces that part).
TEST(CursorFuzz, TruncatedNamesNeverOverread) {
  ByteWriter w;
  NameCompressor comp;
  comp.write(w, *DomainName::parse("www.example.com"));
  comp.write(w, *DomainName::parse("mail.example.com"));  // pointer suffix
  Bytes wire(w.view().begin(), w.view().end());
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    BytesView head(wire.data(), cut);
    Cursor c{head};
    auto first = read_name(c);
    if (!first.has_value()) continue;
    (void)read_name(c);  // second name may also truncate; must not crash
  }
  // The untruncated wire decodes both names.
  Cursor c{BytesView(wire)};
  ASSERT_TRUE(read_name(c).has_value());
  auto second = read_name(c);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->to_string(), "mail.example.com.");
}

// Random label/pointer soup: bytes that look like length-prefixed labels
// and compression pointers wired to random targets. read_name must
// terminate (jump cap + strictly-backwards rule) and never overread.
TEST(CursorFuzz, RandomPointerGraphsTerminate) {
  Rng rng(0xC0FFEE);
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes wire;
    const std::size_t len = 2 + rng.bounded(60);
    while (wire.size() < len) {
      switch (rng.bounded(3)) {
        case 0: {  // plausible label
          std::size_t lab = 1 + rng.bounded(7);
          wire.push_back(static_cast<std::uint8_t>(lab));
          for (std::size_t i = 0; i < lab; ++i) {
            wire.push_back(static_cast<std::uint8_t>('a' + rng.bounded(26)));
          }
          break;
        }
        case 1: {  // pointer to a random (often invalid) target
          std::size_t target = rng.bounded(len);
          wire.push_back(static_cast<std::uint8_t>(0xC0 | (target >> 8)));
          wire.push_back(static_cast<std::uint8_t>(target & 0xFF));
          break;
        }
        default:  // raw garbage byte (may be a bogus length)
          wire.push_back(static_cast<std::uint8_t>(rng.next()));
      }
    }
    std::size_t start = rng.bounded(wire.size());
    Cursor c{BytesView(wire)};
    c.skip(start);
    auto name = read_name(c);
    if (name.has_value()) {
      EXPECT_TRUE(name->valid());
    }
  }
}

// Whole-message fuzz through Message::decode: random mutations of a valid
// response (bit flips, truncations, count inflation) decode or reject but
// never crash. Mirrors the spoofed-response hardening the guard needs.
TEST(CursorFuzz, MutatedMessagesNeverCrashDecode) {
  Message msg;
  msg.header.id = 0x1234;
  msg.header.qr = true;
  msg.header.aa = true;
  msg.header.rd = true;
  msg.header.ra = true;
  Question q;
  q.qname = *DomainName::parse("fuzz.example.com");
  q.qtype = RrType::A;
  msg.questions.push_back(q);
  msg.answers.push_back(
      ResourceRecord::a(q.qname, net::Ipv4Address(10, 0, 0, 1), 300));
  Bytes wire = msg.encode();

  Rng rng(0xF00D);
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes mut = wire;
    const std::size_t flips = 1 + rng.bounded(6);
    for (std::size_t i = 0; i < flips; ++i) {
      std::size_t at = rng.bounded(mut.size());
      mut[at] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
    }
    if (rng.chance(0.3)) mut.resize(rng.bounded(mut.size()) + 1);
    (void)Message::decode(BytesView(mut));  // verdict free; crash is the bug
  }
}

}  // namespace
}  // namespace dnsguard::dns
