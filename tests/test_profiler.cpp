// Wall-clock cost-attribution profiler: span stack discipline, lane
// merging, histogram bucketing, sampling scale-up, the observer-effect
// correction and control-based deflation — all driven through the public
// probe API with hand-fed tick values, so the arithmetic is exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "obs/profiler.h"

namespace dnsguard {
namespace {

using obs::prof::DispatchWindow;
using obs::prof::EdgeReport;
using obs::prof::kHistBuckets;
using obs::prof::kMaxDepth;
using obs::prof::kMaxLanes;
using obs::prof::kStageCount;
using obs::prof::LaneScope;
using obs::prof::profiler;
using obs::prof::Report;
using obs::prof::Stage;
using obs::prof::stage_name;

static_assert(DNSGUARD_PROF_COMPILED_IN == 1,
              "tests build with probes compiled in");

/// Every test runs against the process-global profiler, so the fixture
/// restores a known state: enabled, full sampling, probe-cost model
/// pinned to zero (set *after* enable(), which recalibrates a zero cost)
/// so reported totals equal the ticks fed in.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    profiler.enable();
    profiler.set_probe_cost(0.0, 0.0);
    profiler.set_sampling(1, 1);
    profiler.set_lane(0);
    profiler.set_context(Stage::kRoot);
    profiler.reset();
  }
  void TearDown() override {
    profiler.reset();
    profiler.set_sampling(1, 1);
    profiler.set_context(Stage::kRoot);
    profiler.disable();
  }

  /// Ticks attributed to (parent, stage), undoing the ns conversion.
  static double edge_ticks(const Report& r, Stage parent, Stage stage) {
    for (const EdgeReport& e : r.edges) {
      if (e.parent == parent && e.stage == stage) {
        return e.total_ns / r.ns_per_tick;
      }
    }
    return -1.0;  // edge absent
  }

  static const EdgeReport* find_edge(const Report& r, Stage parent,
                                     Stage stage) {
    for (const EdgeReport& e : r.edges) {
      if (e.parent == parent && e.stage == stage) return &e;
    }
    return nullptr;
  }
};

// --- registry ----------------------------------------------------------------

TEST(ProfilerRegistry, StageNamesAreUniqueAndNamed) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const char* name = stage_name(static_cast<Stage>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "unknown") << "stage " << i << " missing a name";
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_STREQ(stage_name(Stage::kCount), "unknown");
}

TEST(ProfilerRegistry, BucketOfLog2Edges) {
  using obs::prof::Profiler;
  EXPECT_EQ(Profiler::bucket_of(0), 0u);
  EXPECT_EQ(Profiler::bucket_of(1), 0u);
  EXPECT_EQ(Profiler::bucket_of(2), 1u);
  EXPECT_EQ(Profiler::bucket_of(3), 1u);
  EXPECT_EQ(Profiler::bucket_of(4), 2u);
  EXPECT_EQ(Profiler::bucket_of(7), 2u);
  EXPECT_EQ(Profiler::bucket_of(8), 3u);
  EXPECT_EQ(Profiler::bucket_of((1ull << 39) - 1), 38u);
  EXPECT_EQ(Profiler::bucket_of(1ull << 39), kHistBuckets - 1);
  // Values past the last bucket saturate instead of indexing out of range.
  EXPECT_EQ(Profiler::bucket_of(1ull << 45), kHistBuckets - 1);
  EXPECT_EQ(Profiler::bucket_of(~0ull), kHistBuckets - 1);
}

// --- span stack --------------------------------------------------------------

TEST_F(ProfilerTest, NestedSpansAttributeToEnclosingParent) {
  ASSERT_TRUE(profiler.span_begin(Stage::kGuardService));
  ASSERT_TRUE(profiler.span_begin(Stage::kGuardDecode));
  profiler.span_end(Stage::kGuardDecode, 100);
  profiler.span_end(Stage::kGuardService, 300);

  const Report r = profiler.report();
  EXPECT_DOUBLE_EQ(edge_ticks(r, Stage::kRoot, Stage::kGuardService), 300.0);
  EXPECT_DOUBLE_EQ(edge_ticks(r, Stage::kGuardService, Stage::kGuardDecode),
                   100.0);
  // The child's time is *inside* the parent's, so root-attributed time is
  // the parent's alone — the non-double-counting invariant root_total_ns
  // relies on.
  EXPECT_DOUBLE_EQ(r.root_total_ns() / r.ns_per_tick, 300.0);
  EXPECT_EQ(r.mismatched_spans, 0u);
  EXPECT_EQ(r.overflow_spans, 0u);
}

TEST_F(ProfilerTest, EmptyStackSpansParentUnderContext) {
  profiler.set_context(Stage::kSimDispatch);
  ASSERT_TRUE(profiler.span_begin(Stage::kCookieHash));
  profiler.span_end(Stage::kCookieHash, 42);
  const Report r = profiler.report();
  EXPECT_DOUBLE_EQ(edge_ticks(r, Stage::kSimDispatch, Stage::kCookieHash),
                   42.0);
}

TEST_F(ProfilerTest, MismatchedCloseIsCountedAndResetsTheLaneStack) {
  ASSERT_TRUE(profiler.span_begin(Stage::kGuardService));
  profiler.span_end(Stage::kGuardDecode, 50);  // does not match the top
  EXPECT_EQ(profiler.mismatched_spans(), 1u);

  // The stack was abandoned: the next span opens at depth 0 and parents
  // under the context, not under the stale kGuardService frame.
  ASSERT_TRUE(profiler.span_begin(Stage::kGuardDecode));
  profiler.span_end(Stage::kGuardDecode, 10);
  const Report r = profiler.report();
  EXPECT_DOUBLE_EQ(edge_ticks(r, Stage::kRoot, Stage::kGuardDecode), 10.0);
  EXPECT_LT(edge_ticks(r, Stage::kGuardService, Stage::kGuardDecode), 0.0);
  EXPECT_EQ(r.mismatched_spans, 1u);

  // Closing on an empty stack is also a mismatch, never a crash.
  profiler.span_end(Stage::kGuardService, 5);
  EXPECT_EQ(profiler.mismatched_spans(), 2u);
}

TEST_F(ProfilerTest, OverflowingSpansAreDroppedNotMisattributed) {
  for (std::size_t i = 0; i < kMaxDepth; ++i) {
    ASSERT_TRUE(profiler.span_begin(Stage::kGuardService));
  }
  EXPECT_FALSE(profiler.span_begin(Stage::kGuardDecode));
  EXPECT_EQ(profiler.overflow_spans(), 1u);
  for (std::size_t i = 0; i < kMaxDepth; ++i) {
    profiler.span_end(Stage::kGuardService, 1);
  }
  const Report r = profiler.report();
  EXPECT_EQ(r.overflow_spans, 1u);
  EXPECT_EQ(r.mismatched_spans, 0u);  // the unwind stayed matched
  const EdgeReport* nested =
      find_edge(r, Stage::kGuardService, Stage::kGuardService);
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->count, kMaxDepth - 1);
}

TEST_F(ProfilerTest, ScopeRecordsOnlyWhileRecording) {
  { DNSGUARD_PROF_SCOPE(Stage::kGuardMint); }
  Report r = profiler.report();
  const EdgeReport* e = find_edge(r, Stage::kRoot, Stage::kGuardMint);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 1u);

  // Outside a sampled block (recording off) a Scope must not even open a
  // span — that is the disarmed single-branch contract.
  profiler.set_recording(false);
  { DNSGUARD_PROF_SCOPE(Stage::kGuardMint); }
  profiler.set_recording(true);
  r = profiler.report();
  e = find_edge(r, Stage::kRoot, Stage::kGuardMint);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 1u);
  EXPECT_EQ(r.mismatched_spans, 0u);
}

TEST_F(ProfilerTest, DisabledProfilerForcesRecordingOff) {
  profiler.disable();
  EXPECT_FALSE(profiler.recording());
  profiler.set_recording(true);  // must not stick while disabled
  EXPECT_FALSE(profiler.recording());
  { DNSGUARD_PROF_SCOPE(Stage::kGuardVerify); }
  profiler.enable();
  const Report r = profiler.report();
  EXPECT_EQ(find_edge(r, Stage::kRoot, Stage::kGuardVerify), nullptr);
}

// --- lanes -------------------------------------------------------------------

TEST_F(ProfilerTest, LanesMergeAtReportTime) {
  profiler.record(Stage::kRoot, Stage::kGuardRl1, 100);
  profiler.set_lane(3);
  profiler.record(Stage::kRoot, Stage::kGuardRl1, 50);
  profiler.set_lane(0);

  const Report r = profiler.report();
  const EdgeReport* e = find_edge(r, Stage::kRoot, Stage::kGuardRl1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 2u);
  EXPECT_DOUBLE_EQ(e->total_ns / r.ns_per_tick, 150.0);
  EXPECT_DOUBLE_EQ(e->min_ns / r.ns_per_tick, 50.0);
  EXPECT_DOUBLE_EQ(e->max_ns / r.ns_per_tick, 100.0);
}

TEST_F(ProfilerTest, LaneStacksAreIndependent) {
  ASSERT_TRUE(profiler.span_begin(Stage::kGuardService));
  {
    LaneScope shard(5);
    // The shard lane's stack is empty, so its span parents under the
    // context even though lane 0 has kGuardService open.
    ASSERT_TRUE(profiler.span_begin(Stage::kGuardVerifyJobs));
    profiler.span_end(Stage::kGuardVerifyJobs, 20);
  }
  EXPECT_EQ(profiler.lane(), 0u);
  profiler.span_end(Stage::kGuardService, 80);

  const Report r = profiler.report();
  EXPECT_DOUBLE_EQ(edge_ticks(r, Stage::kRoot, Stage::kGuardVerifyJobs), 20.0);
  EXPECT_DOUBLE_EQ(edge_ticks(r, Stage::kRoot, Stage::kGuardService), 80.0);
  EXPECT_EQ(r.mismatched_spans, 0u);
}

TEST_F(ProfilerTest, OutOfRangeLaneClampsToZero) {
  profiler.set_lane(kMaxLanes);
  EXPECT_EQ(profiler.lane(), 0u);
  profiler.set_lane(kMaxLanes - 1);
  EXPECT_EQ(profiler.lane(), kMaxLanes - 1);
  profiler.set_lane(0);
}

// --- histogram ---------------------------------------------------------------

TEST_F(ProfilerTest, HistogramLandsSamplesInLog2Buckets) {
  profiler.record(Stage::kRoot, Stage::kGuardRl2, 0);    // bucket 0
  profiler.record(Stage::kRoot, Stage::kGuardRl2, 1);    // bucket 0
  profiler.record(Stage::kRoot, Stage::kGuardRl2, 2);    // bucket 1
  profiler.record(Stage::kRoot, Stage::kGuardRl2, 100);  // bucket 6
  const Report r = profiler.report();
  const EdgeReport* e = find_edge(r, Stage::kRoot, Stage::kGuardRl2);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->hist[0], 2u);
  EXPECT_EQ(e->hist[1], 1u);
  EXPECT_EQ(e->hist[6], 1u);
  std::uint64_t total = 0;
  for (std::uint64_t b : e->hist) total += b;
  EXPECT_EQ(total, e->count);
}

// --- sampling ----------------------------------------------------------------

TEST_F(ProfilerTest, SetSamplingClampsDegenerateValues) {
  profiler.set_sampling(0, 0);
  EXPECT_EQ(profiler.sample_stride(), 1u);
  EXPECT_EQ(profiler.sample_block(), 1u);
  profiler.set_sampling(4, 9);  // block cannot exceed the stride
  EXPECT_EQ(profiler.sample_stride(), 4u);
  EXPECT_EQ(profiler.sample_block(), 4u);
}

TEST_F(ProfilerTest, SampledReportScalesCountsTotalsAndHistograms) {
  profiler.set_sampling(10, 2);  // 1-in-5 duty: reports scale by 5
  for (int i = 0; i < 4; ++i) {
    profiler.record(Stage::kRoot, Stage::kGuardVerify, 100);
  }
  const Report r = profiler.report();
  EXPECT_EQ(r.sample_stride, 10u);
  EXPECT_EQ(r.sample_block, 2u);
  const EdgeReport* e = find_edge(r, Stage::kRoot, Stage::kGuardVerify);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 20u);
  EXPECT_DOUBLE_EQ(e->total_ns / r.ns_per_tick, 2000.0);
  EXPECT_EQ(e->hist[6], 20u);  // scaled with the counts
  // Extrema are observations, not rates — they stay raw.
  EXPECT_DOUBLE_EQ(e->min_ns / r.ns_per_tick, 100.0);
  EXPECT_DOUBLE_EQ(e->max_ns / r.ns_per_tick, 100.0);
}

TEST_F(ProfilerTest, DispatchWindowSamplesAndTimesControlBlocks) {
  profiler.set_sampling(4, 1);
  profiler.reset();
  {
    DispatchWindow window;
    EXPECT_EQ(profiler.context(), Stage::kSimDispatch);
    // Two full strides. Per stride: phase 0 is the sampled block (one
    // dispatch record), phases 2..3 are the control block, timed as one
    // slice covering both events.
    for (int i = 0; i < 8; ++i) {
      window.tick();
      if (i % 4 == 0) {
        EXPECT_FALSE(profiler.recording()) << "event " << i;
      }
    }
  }
  EXPECT_EQ(profiler.context(), Stage::kRoot);
  EXPECT_TRUE(profiler.recording());

  const Report r = profiler.report();
  const EdgeReport* e = find_edge(r, Stage::kRoot, Stage::kSimDispatch);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 8u);  // 2 raw records scaled by stride/block = 4
  EXPECT_EQ(r.control_count, 4u);
  EXPECT_GT(r.control_ns_per_op, 0.0);
}

// --- observer-effect correction ---------------------------------------------

TEST_F(ProfilerTest, ProbeCostCorrectionSubtractsDescendantProbes) {
  // One guard.service span (1000 ticks) containing two guard.decode spans
  // (100 ticks each). With probe_in = 5 and probe_total = 50:
  //   D(decode)  = 0 (no children)
  //   D(service) = 2 spans/span * (1 + 0) = 2
  //   service: 1000 - 1*(5 + 2*50) = 895
  //   decode:   200 - 2*(5 + 0*50) = 190
  profiler.set_probe_cost(5.0, 50.0);
  profiler.record(Stage::kRoot, Stage::kGuardService, 1000);
  profiler.record(Stage::kGuardService, Stage::kGuardDecode, 100);
  profiler.record(Stage::kGuardService, Stage::kGuardDecode, 100);

  const Report r = profiler.report();
  EXPECT_NEAR(edge_ticks(r, Stage::kRoot, Stage::kGuardService), 895.0, 1e-9);
  EXPECT_NEAR(edge_ticks(r, Stage::kGuardService, Stage::kGuardDecode), 190.0,
              1e-9);
}

TEST_F(ProfilerTest, ProbeCostCorrectionNeverGoesNegative) {
  profiler.set_probe_cost(1000.0, 1000.0);
  profiler.record(Stage::kRoot, Stage::kGuardMint, 10);
  const Report r = profiler.report();
  EXPECT_DOUBLE_EQ(edge_ticks(r, Stage::kRoot, Stage::kGuardMint), 0.0);
}

TEST_F(ProfilerTest, ProbeCostCorrectionSurvivesRecordedCycles) {
  // Hand-fed record() data can produce parent cycles real nesting cannot;
  // the descendant-count DFS must terminate, not recurse forever.
  profiler.set_probe_cost(1.0, 1.0);
  profiler.record(Stage::kGuardRl1, Stage::kGuardRl2, 10);
  profiler.record(Stage::kGuardRl2, Stage::kGuardRl1, 10);
  const Report r = profiler.report();
  EXPECT_EQ(r.edges.size(), 2u);
}

// --- control deflation -------------------------------------------------------

TEST_F(ProfilerTest, ControlSlicesDeflateOverAttributedEdges) {
  // Sampled dispatch slices claim 800 ticks/event; the control block says
  // disarmed events really cost 400 — so every edge halves, preserving
  // stage proportions while the total drops to the probe-free cost.
  for (int i = 0; i < 10; ++i) {
    profiler.record(Stage::kRoot, Stage::kSimDispatch, 800);
    profiler.record(Stage::kSimDispatch, Stage::kGuardService, 600);
  }
  profiler.record_control(4000, 10);

  const Report r = profiler.report();
  EXPECT_EQ(r.control_count, 10u);
  EXPECT_NEAR(r.control_ns_per_op / r.ns_per_tick, 400.0, 1e-9);
  EXPECT_NEAR(r.deflation, 0.5, 1e-9);
  EXPECT_NEAR(edge_ticks(r, Stage::kRoot, Stage::kSimDispatch), 4000.0, 1e-6);
  EXPECT_NEAR(edge_ticks(r, Stage::kSimDispatch, Stage::kGuardService),
              3000.0, 1e-6);
}

TEST_F(ProfilerTest, ControlNeverInflatesACheapProfile) {
  // Control more expensive than the sampled slices (e.g. a steal burst
  // hit the armed blocks instead): deflation clamps at 1 — attribution is
  // corrected downward only, never invented upward.
  for (int i = 0; i < 10; ++i) {
    profiler.record(Stage::kRoot, Stage::kSimDispatch, 400);
  }
  profiler.record_control(8000, 10);
  const Report r = profiler.report();
  EXPECT_DOUBLE_EQ(r.deflation, 1.0);
  EXPECT_NEAR(edge_ticks(r, Stage::kRoot, Stage::kSimDispatch), 4000.0, 1e-6);
}

TEST_F(ProfilerTest, ControlEstimatorWinsorizesStealBursts) {
  // Nine honest control blocks at 100 ticks/event plus one block that a
  // (simulated) hypervisor steal burst stretched to 10000/event. The
  // winsorized mean clamps the outlier at 3x the median:
  //   (9*100 + 300) / 10 = 120 ticks/event
  // (a plain mean would report 1090 and wreck the deflation anchor).
  for (int i = 0; i < 9; ++i) profiler.record_control(1000, 10);
  profiler.record_control(100000, 10);
  const Report r = profiler.report();
  EXPECT_NEAR(r.control_ns_per_op / r.ns_per_tick, 120.0, 1e-9);
}

// --- reporting ---------------------------------------------------------------

TEST_F(ProfilerTest, ResetClearsCellsStacksAndQualityCounters) {
  profiler.record(Stage::kRoot, Stage::kGuardService, 100);
  profiler.record_control(1000, 10);
  profiler.span_end(Stage::kGuardDecode, 5);  // mismatch on empty stack
  ASSERT_EQ(profiler.mismatched_spans(), 1u);

  profiler.reset();
  const Report r = profiler.report();
  EXPECT_TRUE(r.edges.empty());
  EXPECT_EQ(r.mismatched_spans, 0u);
  EXPECT_EQ(r.control_count, 0u);
  EXPECT_EQ(profiler.control_count(), 0u);
}

TEST_F(ProfilerTest, ReportJsonCarriesCoverageAndStageShares) {
  profiler.record(Stage::kRoot, Stage::kGuardService, 100);
  const std::string with_wall = profiler.report_json(1000.0);
  EXPECT_NE(with_wall.find("\"root_share\""), std::string::npos);
  EXPECT_NE(with_wall.find("\"share\""), std::string::npos);
  EXPECT_NE(with_wall.find("\"deflation\""), std::string::npos);
  EXPECT_NE(with_wall.find("\"stage\": \"guard.service\""),
            std::string::npos);
  EXPECT_NE(with_wall.find("\"hist_ns\""), std::string::npos);

  // Without a wall-time denominator there is no share to report.
  const std::string no_wall = profiler.report_json(0.0);
  EXPECT_EQ(no_wall.find("\"root_share\""), std::string::npos);
  EXPECT_NE(no_wall.find("\"stages\""), std::string::npos);
}

}  // namespace
}  // namespace dnsguard
