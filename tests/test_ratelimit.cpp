// Token buckets, rate estimation, heavy-hitter tracking and the guard's
// two rate limiters.
#include <gtest/gtest.h>

#include "ratelimit/limiters.h"
#include "ratelimit/token_bucket.h"
#include "ratelimit/topk.h"

namespace dnsguard::ratelimit {
namespace {

using net::Ipv4Address;

TEST(TokenBucket, StartsFullAndDrains) {
  TokenBucket tb(10.0, 5.0);
  SimTime t{};
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(tb.try_consume(t));
  EXPECT_FALSE(tb.try_consume(t));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb(10.0, 5.0);
  SimTime t{};
  while (tb.try_consume(t)) {
  }
  t = t + milliseconds(100);  // 1 token accrued
  EXPECT_TRUE(tb.try_consume(t));
  EXPECT_FALSE(tb.try_consume(t));
}

TEST(TokenBucket, NeverExceedsBurst) {
  TokenBucket tb(1000.0, 3.0);
  SimTime t = SimTime{} + seconds(100);  // long idle
  EXPECT_NEAR(tb.available(t), 3.0, 1e-9);
}

TEST(TokenBucket, LongRunRateBounded) {
  // Property: over any horizon, admitted <= rate*t + burst.
  TokenBucket tb(50.0, 10.0);
  SimTime t{};
  int admitted = 0;
  for (int ms = 0; ms < 2000; ++ms) {
    t = SimTime{} + milliseconds(ms);
    // Offer far more than the rate.
    for (int k = 0; k < 5; ++k) {
      if (tb.try_consume(t)) admitted++;
    }
  }
  EXPECT_LE(admitted, 50 * 2 + 10);
  EXPECT_GE(admitted, 50 * 2);  // and the full rate is actually usable
}

TEST(TokenBucket, FractionalCosts) {
  TokenBucket tb(1.0, 1.0);
  SimTime t{};
  EXPECT_TRUE(tb.try_consume(t, 0.5));
  EXPECT_TRUE(tb.try_consume(t, 0.5));
  EXPECT_FALSE(tb.try_consume(t, 0.1));
}

TEST(TokenBucket, SetRateSettlesElapsedWindowUnderOldRate) {
  // Regression: set_rate used to swap rate_ without refilling, so the
  // window since the last refill was retroactively re-priced under the
  // NEW rate. A mid-window rate cut confiscated already-earned tokens.
  TokenBucket tb(100.0, 50.0);
  SimTime t{};
  while (tb.try_consume(t)) {
  }
  // 100 ms at 100/s earns 10 tokens...
  t = t + milliseconds(100);
  tb.set_rate(1.0, t);  // ...which a cut to 1/s must not confiscate.
  EXPECT_NEAR(tb.available(t), 10.0, 1e-9);
  // And from here tokens accrue at the new rate.
  t = t + seconds(2);
  EXPECT_NEAR(tb.available(t), 12.0, 1e-9);
}

TEST(TokenBucket, SetRateDoesNotGrantUnearnedTokens) {
  // The mirror bug: raising the rate mid-window granted tokens the old
  // rate never accrued (elapsed * new_rate instead of elapsed * old_rate).
  TokenBucket tb(1.0, 100.0);
  SimTime t{};
  while (tb.try_consume(t)) {
  }
  t = t + seconds(10);  // 10 tokens at the old 1/s rate
  tb.set_rate(1000.0, t);
  EXPECT_NEAR(tb.available(t), 10.0, 1e-9);
}

TEST(TokenBucket, SetRateClampsSettledTokensToBurst) {
  TokenBucket tb(10.0, 5.0);
  SimTime t = SimTime{} + seconds(100);  // long idle: bucket full
  tb.set_rate(2.0, t);
  EXPECT_NEAR(tb.available(t), 5.0, 1e-9);
  EXPECT_NEAR(tb.rate(), 2.0, 1e-12);
}

TEST(RateEstimator, ConvergesToSteadyRate) {
  RateEstimator est(milliseconds(250));
  SimTime t{};
  // 1000 events/sec for 2 seconds.
  for (int i = 0; i < 2000; ++i) {
    t = SimTime{} + microseconds(i * 1000);
    est.record(t);
  }
  double r = est.rate(t);
  EXPECT_NEAR(r, 1000.0, 150.0);
}

TEST(RateEstimator, DecaysWhenIdle) {
  RateEstimator est(milliseconds(100));
  SimTime t{};
  for (int i = 0; i < 1000; ++i) {
    t = SimTime{} + microseconds(i * 100);
    est.record(t);
  }
  double busy = est.rate(t);
  double idle = est.rate(t + seconds(1));
  EXPECT_LT(idle, busy / 100.0);
}

TEST(RateEstimator, TracksRateIncrease) {
  RateEstimator est(milliseconds(100));
  SimTime t{};
  for (int i = 0; i < 100; ++i) {
    t = SimTime{} + milliseconds(i * 10);  // 100/sec
    est.record(t);
  }
  double low = est.rate(t);
  for (int i = 0; i < 2000; ++i) {
    t = t + microseconds(500);  // 2000/sec
    est.record(t);
  }
  double high = est.rate(t);
  EXPECT_GT(high, low * 5);
}

TEST(SpaceSaving, ExactBelowCapacity) {
  SpaceSaving<int> ss(8);
  for (int i = 0; i < 5; ++i) {
    for (int k = 0; k <= i; ++k) ss.record(i);
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ss.estimate(i), static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(ss.error(i), 0u);
  }
}

TEST(SpaceSaving, HeavyHitterAlwaysTracked) {
  SpaceSaving<int> ss(10);
  // One heavy key among a stream of distinct light keys.
  for (int i = 0; i < 3000; ++i) {
    ss.record(999);
    ss.record(10000 + i);  // all distinct, disjoint from 999
  }
  EXPECT_TRUE(ss.contains(999));
  // Space-Saving guarantee: estimate >= true count.
  EXPECT_GE(ss.estimate(999), 3000u);
  // And the overestimate is bounded by the recorded error.
  EXPECT_LE(ss.estimate(999) - ss.error(999), 3000u);
}

TEST(SpaceSaving, CapacityIsRespected) {
  SpaceSaving<int> ss(4);
  for (int i = 0; i < 100; ++i) ss.record(i);
  EXPECT_EQ(ss.size(), 4u);
}

TEST(SpaceSaving, TopIsSortedByCount) {
  SpaceSaving<int> ss(8);
  for (int i = 0; i < 10; ++i) ss.record(1);
  for (int i = 0; i < 5; ++i) ss.record(2);
  ss.record(3);
  auto top = ss.top();
  ASSERT_GE(top.size(), 3u);
  EXPECT_EQ(top[0].key, 1);
  EXPECT_EQ(top[1].key, 2);
}

TEST(CookieResponseLimiter, LightRequestersNeverThrottled) {
  CookieResponseLimiter rl1(CookieResponseLimiter::Config{
      .per_address_rate = 1.0, .per_address_burst = 1.0,
      .tracker_capacity = 64, .heavy_hitter_threshold = 100});
  SimTime t{};
  Ipv4Address lrs(10, 0, 1, 1);
  // A legitimate LRS asks for a cookie a few dozen times: always allowed.
  for (int i = 0; i < 99; ++i) {
    EXPECT_TRUE(rl1.allow(lrs, t + milliseconds(i)));
  }
  EXPECT_EQ(rl1.stats().throttled, 0u);
}

TEST(CookieResponseLimiter, HeavyRequesterThrottled) {
  CookieResponseLimiter rl1(CookieResponseLimiter::Config{
      .per_address_rate = 10.0, .per_address_burst = 5.0,
      .tracker_capacity = 64, .heavy_hitter_threshold = 8});
  SimTime t{};
  Ipv4Address victim(10, 0, 9, 9);
  int allowed = 0;
  // An attacker triggers 10K cookie responses toward one victim in 1 s.
  for (int i = 0; i < 10000; ++i) {
    if (rl1.allow(victim, t + microseconds(i * 100))) allowed++;
  }
  // Only threshold + burst + ~rate*1s should get through.
  EXPECT_LT(allowed, 40);
  EXPECT_GT(rl1.stats().throttled, 9000u);
}

TEST(CookieResponseLimiter, IndependentPerAddress) {
  CookieResponseLimiter rl1(CookieResponseLimiter::Config{
      .per_address_rate = 1.0, .per_address_burst = 1.0,
      .tracker_capacity = 64, .heavy_hitter_threshold = 4});
  SimTime t{};
  Ipv4Address a(1, 1, 1, 1), b(2, 2, 2, 2);
  for (int i = 0; i < 10; ++i) (void)rl1.allow(a, t);
  // Saturating `a` must not affect `b`'s first requests.
  EXPECT_TRUE(rl1.allow(b, t));
}

TEST(CookieResponseLimiter, SpoofedSprayKeepsBucketMapBounded) {
  // Regression: the per-address bucket map had no cap, so an attacker
  // spraying spoofed heavy-hitter sources grew it without bound — the
  // reflector defense itself became the memory-exhaustion target.
  CookieResponseLimiter rl1(CookieResponseLimiter::Config{
      .per_address_rate = 10.0, .per_address_burst = 5.0,
      .tracker_capacity = 256, .heavy_hitter_threshold = 1,
      .max_buckets = 64, .bucket_idle_timeout = seconds(10)});
  SimTime t{};
  for (std::uint32_t i = 0; i < 100000; ++i) {
    (void)rl1.allow(Ipv4Address(0x0a000000 + i), t + microseconds(i));
  }
  EXPECT_LE(rl1.tracked_buckets(), 64u);
  EXPECT_LE(rl1.table_stats().occupancy.max(), 64);
  EXPECT_GT(rl1.table_stats().evicted_capacity.value(), 0u);
}

TEST(CookieResponseLimiter, IdleBucketsAreReaped) {
  CookieResponseLimiter rl1(CookieResponseLimiter::Config{
      .per_address_rate = 10.0, .per_address_burst = 5.0,
      .tracker_capacity = 256, .heavy_hitter_threshold = 1,
      .max_buckets = 64, .bucket_idle_timeout = seconds(1)});
  SimTime t{};
  for (int i = 0; i < 10; ++i) {
    (void)rl1.allow(Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i)), t);
  }
  EXPECT_EQ(rl1.tracked_buckets(), 10u);
  // Two idle seconds later, fresh traffic's incremental reaping clears
  // the stale buckets.
  SimTime later = t + seconds(2);
  for (int i = 0; i < 32; ++i) {
    (void)rl1.allow(Ipv4Address(10, 9, 0, 1), later + milliseconds(i));
  }
  EXPECT_LE(rl1.tracked_buckets(), 2u);
  EXPECT_GE(rl1.table_stats().expired_idle.value(), 10u);
}

TEST(VerifiedRequestLimiter, CapsPerHostRate) {
  VerifiedRequestLimiter rl2(VerifiedRequestLimiter::Config{
      .per_host_rate = 100.0, .per_host_burst = 10.0, .max_hosts = 100});
  SimTime t{};
  Ipv4Address host(10, 0, 1, 1);
  int allowed = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rl2.allow(host, t + microseconds(i * 200))) allowed++;  // 5K/s offered
  }
  // ~100/s for 1 s + burst.
  EXPECT_LE(allowed, 115);
  EXPECT_GE(allowed, 100);
}

TEST(VerifiedRequestLimiter, TableBoundRefusesOverflowHosts) {
  VerifiedRequestLimiter rl2(VerifiedRequestLimiter::Config{
      .per_host_rate = 10.0, .per_host_burst = 5.0, .max_hosts = 4});
  SimTime t{};
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(rl2.allow(Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i)), t));
  }
  EXPECT_FALSE(rl2.allow(Ipv4Address(10, 0, 0, 200), t));
  EXPECT_EQ(rl2.tracked_hosts(), 4u);
}

TEST(VerifiedRequestLimiter, IdleHostsFreeSlotsForNewOnes) {
  // A full table of *departed* hosts must not lock out new clients
  // forever: idle entries are reaped and their slots recycled.
  VerifiedRequestLimiter rl2(VerifiedRequestLimiter::Config{
      .per_host_rate = 10.0, .per_host_burst = 5.0, .max_hosts = 4,
      .host_idle_timeout = seconds(1)});
  SimTime t{};
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        rl2.allow(Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i)), t));
  }
  EXPECT_FALSE(rl2.allow(Ipv4Address(10, 0, 0, 200), t));
  EXPECT_TRUE(rl2.allow(Ipv4Address(10, 0, 0, 200), t + seconds(2)));
  EXPECT_GE(rl2.table_stats().expired_idle.value(), 1u);
}

// Property: per-host isolation — N hosts each get their fair rate.
class Rl2Fairness : public ::testing::TestWithParam<int> {};

TEST_P(Rl2Fairness, EachHostGetsItsRate) {
  int hosts = GetParam();
  VerifiedRequestLimiter rl2(VerifiedRequestLimiter::Config{
      .per_host_rate = 50.0, .per_host_burst = 5.0, .max_hosts = 1000});
  std::vector<int> allowed(static_cast<std::size_t>(hosts), 0);
  for (int ms = 0; ms < 1000; ++ms) {
    SimTime t = SimTime{} + milliseconds(ms);
    for (int h = 0; h < hosts; ++h) {
      if (rl2.allow(Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(h)), t)) {
        allowed[static_cast<std::size_t>(h)]++;
      }
    }
  }
  for (int h = 0; h < hosts; ++h) {
    EXPECT_GE(allowed[static_cast<std::size_t>(h)], 50);
    EXPECT_LE(allowed[static_cast<std::size_t>(h)], 56);
  }
}

INSTANTIATE_TEST_SUITE_P(HostCounts, Rl2Fairness, ::testing::Values(1, 4, 16));

}  // namespace
}  // namespace dnsguard::ratelimit
