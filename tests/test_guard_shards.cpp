// Shard-per-core guard: determinism (same seed + same shard count =>
// byte-identical run), counter equivalence between the classic service
// path and the ring/batch path, counter equivalence across shard counts,
// and per-shard divided table caps under a million-source spoofed flood
// (DESIGN.md §13).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/attackers.h"
#include "guard/remote_guard.h"
#include "server/authoritative_node.h"
#include "sim/simulator.h"
#include "workload/lrs_driver.h"

namespace dnsguard {
namespace {

using guard::RemoteGuardNode;
using guard::Scheme;
using net::Ipv4Address;
using workload::DriveMode;
using workload::LrsSimulatorNode;

constexpr Ipv4Address kAnsIp(10, 1, 1, 254);

struct Bed {
  sim::Simulator sim;
  server::AnsSimulatorNode ans{sim, "ans", {.address = kAnsIp}};
  std::unique_ptr<RemoteGuardNode> guard;
  std::vector<std::unique_ptr<LrsSimulatorNode>> drivers;
  std::vector<std::unique_ptr<attack::SpoofedFloodNode>> floods;

  void make_guard(
      Scheme scheme,
      const std::function<void(RemoteGuardNode::Config&)>& tweak = {}) {
    RemoteGuardNode::Config gc;
    gc.guard_address = Ipv4Address(10, 1, 1, 253);
    gc.ans_address = kAnsIp;
    gc.protected_zone = dns::DomainName{};
    gc.subnet_base = Ipv4Address(10, 1, 1, 0);
    gc.scheme = scheme;
    // Generous limits: equivalence tests must not sit on a rate-limiter
    // edge, where the batch path's classify-at-burst-start timestamps
    // could legitimately flip a marginal allow/deny.
    gc.rl1.per_address_rate = 1e7;
    gc.rl1.per_address_burst = 1e6;
    gc.rl2.per_host_rate = 1e7;
    gc.rl2.per_host_burst = 1e6;
    if (tweak) tweak(gc);
    guard = std::make_unique<RemoteGuardNode>(sim, "guard", gc, &ans);
    guard->install();
  }

  LrsSimulatorNode* add_driver(DriveMode mode, int conc, Ipv4Address addr,
                               std::uint64_t seed = 7) {
    LrsSimulatorNode::Config dc;
    dc.address = addr;
    dc.target = {kAnsIp, net::kDnsPort};
    dc.mode = mode;
    dc.concurrency = conc;
    dc.seed = seed;
    drivers.push_back(std::make_unique<LrsSimulatorNode>(
        sim, "driver-" + addr.to_string(), dc));
    sim.add_host_route(addr, drivers.back().get());
    return drivers.back().get();
  }

  void add_flood(double rate, std::uint64_t seed,
                 attack::SpoofedFloodNode::SpoofConfig spoof = {}) {
    floods.push_back(std::make_unique<attack::SpoofedFloodNode>(
        sim, "flood",
        attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                                      .target = {kAnsIp, net::kDnsPort},
                                      .rate = rate,
                                      .seed = seed},
        spoof));
  }
};

using CounterMap = std::map<std::string, std::uint64_t>;

/// Every registered counter, optionally dropping names the caller knows
/// are legitimately partition-dependent (per-shard table metrics).
CounterMap counter_values(
    const Bed& bed,
    const std::function<bool(const std::string&)>& skip = {}) {
  CounterMap out;
  for (const std::string& name : bed.sim.metrics().counter_names()) {
    if (skip && skip(name)) continue;
    const obs::Counter* c = bed.sim.metrics().find_counter(name);
    if (c != nullptr) out[name] = c->value();
  }
  return out;
}

/// Table metrics move between "guard.rl1.*"-style names (1 shard) and
/// "guard.shard<k>.rl1.*" names (N shards), and their per-name values
/// split across shards; everything else must be partition-invariant.
bool is_partitioned_metric(const std::string& name) {
  static const char* kPrefixes[] = {
      "guard.shard",         "guard.rl1.",  "guard.rl2.",
      "guard.pending.",      "guard.nat.",  "guard.conn_buckets.",
  };
  for (const char* p : kPrefixes) {
    if (name.rfind(p, 0) == 0) return true;
  }
  return false;
}

/// The ring path dispatches one lane-service event per burst instead of
/// one per packet, so the scheduler's own event tally legitimately
/// differs between service paths; every packet-level counter must not.
bool is_service_path_dependent(const std::string& name) {
  return name == "sim.events_dispatched" || is_partitioned_metric(name);
}

struct RunOutcome {
  CounterMap all_counters;        // every registered counter
  CounterMap invariant_counters;  // minus partition-dependent names
  std::uint64_t traffic_hash = 0;
  std::uint64_t completed = 0;
  std::uint64_t spoofs_dropped = 0;
};

RunOutcome run_workload(std::size_t num_shards, bool force_shard_service,
                        std::uint64_t seed) {
  Bed bed;
  bed.make_guard(Scheme::ModifiedDns, [&](RemoteGuardNode::Config& c) {
    c.num_shards = num_shards;
    c.force_shard_service = force_shard_service;
  });
  auto* d =
      bed.add_driver(DriveMode::ModifiedHit, 8, Ipv4Address(10, 0, 1, 1), seed);
  // Spoofed sources spread across a /16 so every shard sees flood
  // traffic; random TXT cookies exercise the batched verify path.
  bed.add_flood(20000, seed + 1,
                {.spoof_base = Ipv4Address(10, 200, 0, 0),
                 .spoof_range = 1u << 16,
                 .random_txt_cookie = true});
  std::uint64_t hash = 0;
  bed.sim.set_tap([&hash](SimTime t, const sim::Node*, const sim::Node*,
                          const net::Packet& p) {
    hash = hash * 0x9e3779b97f4a7c15ULL +
           (static_cast<std::uint64_t>(p.src_ip.value()) << 16) +
           p.payload.size() + static_cast<std::uint64_t>(t.ns & 0xffff);
  });
  d->start();
  bed.floods[0]->start();
  bed.sim.run_for(milliseconds(300));
  bed.floods[0]->stop();
  d->stop();
  bed.sim.run_for(milliseconds(50));
  return RunOutcome{counter_values(bed),
                    counter_values(bed, is_service_path_dependent), hash,
                    d->driver_stats().completed,
                    bed.guard->guard_stats().spoofs_dropped};
}

void expect_counter_maps_equal(const CounterMap& a, const CounterMap& b,
                               const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (const auto& [name, value] : a) {
    auto it = b.find(name);
    ASSERT_NE(it, b.end()) << label << ": missing " << name;
    EXPECT_EQ(value, it->second) << label << ": " << name;
  }
}

TEST(ShardDeterminism, SameSeedSameShardCountIsByteIdentical) {
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    RunOutcome a = run_workload(n, /*force_shard_service=*/n == 1, 42);
    RunOutcome b = run_workload(n, /*force_shard_service=*/n == 1, 42);
    EXPECT_EQ(a.traffic_hash, b.traffic_hash) << n << " shards";
    EXPECT_EQ(a.completed, b.completed) << n << " shards";
    expect_counter_maps_equal(a.all_counters, b.all_counters,
                              std::to_string(n) + " shards rerun");
  }
}

TEST(ShardEquivalence, ForceShardServiceMatchesClassicCounters) {
  // One shard, ring/batch service path vs the classic rx-queue path:
  // same metric names, and (away from limiter edges) the same value for
  // every counter in the registry — batching only re-times work, it must
  // not reclassify any packet.
  RunOutcome classic = run_workload(1, false, 42);
  RunOutcome batched = run_workload(1, true, 42);
  EXPECT_GT(classic.completed, 100u);
  EXPECT_GT(classic.spoofs_dropped, 1000u);
  EXPECT_EQ(classic.completed, batched.completed);
  // Same shard count on both sides, so even the (legacy-named) table
  // metrics must agree; only the scheduler's event tally may differ.
  CounterMap a = classic.all_counters;
  CounterMap b = batched.all_counters;
  a.erase("sim.events_dispatched");
  b.erase("sim.events_dispatched");
  expect_counter_maps_equal(a, b, "classic vs batched");
}

TEST(ShardEquivalence, CounterTotalsInvariantAcrossShardCounts) {
  // Partitioning the tables must not change any externally observable
  // tally: same verdicts, same drops, same forwards for 1, 2, 8 shards.
  RunOutcome one = run_workload(1, false, 42);
  RunOutcome two = run_workload(2, false, 42);
  RunOutcome eight = run_workload(8, false, 42);
  EXPECT_GT(one.completed, 100u);
  EXPECT_EQ(one.completed, two.completed);
  EXPECT_EQ(one.completed, eight.completed);
  EXPECT_EQ(one.spoofs_dropped, two.spoofs_dropped);
  EXPECT_EQ(one.spoofs_dropped, eight.spoofs_dropped);
  expect_counter_maps_equal(one.invariant_counters, two.invariant_counters,
                            "1 vs 2 shards");
  expect_counter_maps_equal(one.invariant_counters, eight.invariant_counters,
                            "1 vs 8 shards");
}

// --- per-shard divided caps under a spoofed flood ---------------------------

std::int64_t gauge_high_water(const Bed& bed, const std::string& name) {
  const obs::Gauge* g = bed.sim.metrics().find_gauge(name);
  EXPECT_NE(g, nullptr) << "missing gauge " << name;
  return g != nullptr ? g->max() : std::numeric_limits<std::int64_t>::max();
}

std::uint64_t counter_value(const Bed& bed, const std::string& name) {
  const obs::Counter* c = bed.sim.metrics().find_counter(name);
  EXPECT_NE(c, nullptr) << "missing counter " << name;
  return c != nullptr ? c->value() : 0;
}

TEST(StateExhaustion, MillionSourceFloodRespectsPerShardDividedCaps) {
  constexpr std::size_t kShards = 8;
  constexpr std::int64_t kCap = 512;
  // ceil(512 / 8): each shard owns an eighth of every table budget.
  constexpr std::int64_t kPerShardCap = (kCap + kShards - 1) / kShards;

  Bed bed;
  bed.make_guard(Scheme::ModifiedDns, [&](RemoteGuardNode::Config& c) {
    c.num_shards = kShards;
    c.rl1.heavy_hitter_threshold = 1;  // every source lands an RL1 bucket
    c.rl1.max_buckets = kCap;
    c.rl2.max_hosts = kCap;
    c.pending_table_capacity = kCap;
    c.nat_table_capacity = kCap;
    c.conn_bucket_capacity = kCap;
  });
  auto* d =
      bed.add_driver(DriveMode::ModifiedHit, 4, Ipv4Address(10, 0, 1, 1), 7);
  // Cookie-less spoofed queries from 2^20 distinct sources: each one
  // takes the mint path and presses on its shard's RL1 bucket table.
  bed.add_flood(1e5, 99,
                {.spoof_base = Ipv4Address(10, 200, 0, 0),
                 .spoof_range = 1u << 20,
                 .random_txt_cookie = false});
  d->start();
  bed.floods[0]->start();
  bed.sim.run_for(seconds(1));
  bed.floods[0]->stop();
  d->stop();
  bed.sim.run_for(milliseconds(100));

  std::uint64_t rl1_evictions = 0;
  std::int64_t rl1_high_water_total = 0;
  for (std::size_t k = 0; k < kShards; ++k) {
    const std::string p = "guard.shard" + std::to_string(k);
    for (const std::string& g :
         {p + ".rl1.table.size", p + ".rl2.table.size", p + ".pending.size",
          p + ".nat.size", p + ".conn_buckets.size"}) {
      EXPECT_LE(gauge_high_water(bed, g), kPerShardCap) << g;
    }
    rl1_evictions += counter_value(bed, p + ".rl1.table.evicted_capacity");
    rl1_high_water_total += gauge_high_water(bed, p + ".rl1.table.size");
  }
  // The flood really pressed on every shard's cap: ~100k distinct
  // sources hit 8 tables of 64 entries, recycling slots constantly, and
  // each shard filled to its own cap (no shard got the whole budget).
  EXPECT_GT(rl1_evictions, 10000u);
  EXPECT_EQ(rl1_high_water_total, kShards * kPerShardCap);
  // Legitimate clients are still served through the bounded shards.
  EXPECT_GT(d->driver_stats().completed, 100u);
}

}  // namespace
}  // namespace dnsguard
