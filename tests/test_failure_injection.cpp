// Failure injection: random in-flight packet loss exercises every
// recovery path — resolver retransmission, stub retries, driver
// timeouts, and TCP stall handling — while conservation still holds.
#include <gtest/gtest.h>

#include "attack/attackers.h"
#include "guard/remote_guard.h"
#include "server/authoritative_node.h"
#include "server/resolver_node.h"
#include "server/zone.h"
#include "sim/simulator.h"
#include "workload/lrs_driver.h"

namespace dnsguard {
namespace {

using net::Ipv4Address;

constexpr Ipv4Address kRootIp(10, 0, 0, 1);
constexpr Ipv4Address kComIp(10, 0, 0, 2);
constexpr Ipv4Address kFooIp(10, 0, 0, 3);
constexpr Ipv4Address kLrsIp(10, 0, 1, 1);

struct Bed {
  sim::Simulator sim;
  std::unique_ptr<server::AuthoritativeServerNode> root, com, foo;
  std::unique_ptr<server::RecursiveResolverNode> lrs;

  Bed() {
    auto h = server::make_example_hierarchy(kRootIp, kComIp, kFooIp);
    root = std::make_unique<server::AuthoritativeServerNode>(
        sim, "root", server::AuthoritativeServerNode::Config{.address = kRootIp});
    com = std::make_unique<server::AuthoritativeServerNode>(
        sim, "com", server::AuthoritativeServerNode::Config{.address = kComIp});
    foo = std::make_unique<server::AuthoritativeServerNode>(
        sim, "foo", server::AuthoritativeServerNode::Config{.address = kFooIp});
    root->add_zone(std::move(h.root));
    com->add_zone(std::move(h.com));
    foo->add_zone(std::move(h.foo_com));
    server::RecursiveResolverNode::Config rc;
    rc.address = kLrsIp;
    rc.root_hints = {kRootIp};
    rc.retry_timeout = milliseconds(30);
    rc.max_retries = 6;
    lrs = std::make_unique<server::RecursiveResolverNode>(sim, "lrs", rc);
    sim.add_host_route(kRootIp, root.get());
    sim.add_host_route(kComIp, com.get());
    sim.add_host_route(kFooIp, foo.get());
    sim.add_host_route(kLrsIp, lrs.get());
  }
};

// Parameterized over loss rates: resolution must survive via retries.
class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, ResolverRecoversThroughRetransmission) {
  Bed bed;
  bed.sim.set_loss_rate(GetParam(), /*seed=*/GetParam() * 1000 + 7);
  int ok = 0, done = 0;
  const int kLookups = 20;
  for (int i = 0; i < kLookups; ++i) {
    // Distinct names so every lookup exercises the wire, not the cache.
    std::string name = "h" + std::to_string(i) + ".foo.com";
    auto qname = dns::DomainName::parse(name);
    // Names are not in the zone: NXDOMAIN is still a *successful*
    // resolution for this purpose (the full path was walked).
    bed.lrs->resolve(*qname, dns::RrType::A,
                     [&](const server::RecursiveResolverNode::Result& r) {
                       done++;
                       if (r.ok) ok++;
                     });
    bed.sim.run_for(seconds(3));
  }
  EXPECT_EQ(done, kLookups);
  // At 20% loss a 3-packet chain fails ~half the time per attempt, but 6
  // retries per server make end-to-end failure vanishingly rare.
  EXPECT_GE(ok, kLookups - 1);
  if (GetParam() > 0) {
    EXPECT_GT(bed.lrs->resolver_stats().retransmissions, 0u);
    EXPECT_GT(bed.sim.stats().packets_dropped_loss, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0.0, 0.05, 0.2));

TEST(LossInjection, ConservationIncludesLossDrops) {
  Bed bed;
  bed.sim.set_loss_rate(0.1);
  for (int i = 0; i < 30; ++i) {
    // Distinct names: every lookup hits the wire (~3 exchanges each).
    std::string name = "c" + std::to_string(i) + ".foo.com";
    bed.lrs->resolve(*dns::DomainName::parse(name), dns::RrType::A,
                     [](const auto&) {});
    bed.sim.run_for(seconds(1));
  }
  const auto& s = bed.sim.stats();
  EXPECT_EQ(s.packets_sent,
            s.packets_delivered + s.packets_dropped_no_route +
                s.packets_dropped_queue_full + s.packets_dropped_loss);
  EXPECT_GT(s.packets_dropped_loss, 0u);
}

TEST(LossInjection, LossRateRoughlyHonored) {
  sim::Simulator sim;
  sim.set_loss_rate(0.25);
  attack::VictimNode sink(sim, "sink", Ipv4Address(10, 5, 5, 5));
  sim.add_host_route(Ipv4Address(10, 5, 5, 5), &sink);
  attack::ZombieFloodNode sender(
      sim, "sender",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 1, 1, 1),
                                    .target = {Ipv4Address(10, 5, 5, 5), 53},
                                    .rate = 10000});
  sender.start();
  sim.run_for(seconds(1));
  sender.stop();
  sim.run_for(milliseconds(10));
  double loss = static_cast<double>(sim.stats().packets_dropped_loss) /
                static_cast<double>(sim.stats().packets_sent);
  EXPECT_NEAR(loss, 0.25, 0.02);
}

TEST(LossInjection, GuardedDanceSurvivesLoss) {
  // The full NS-name dance through the guard under 10% loss: the driver's
  // own timeout machinery recovers; legitimate service continues.
  sim::Simulator sim;
  sim.set_loss_rate(0.1);
  server::AnsSimulatorNode ans(sim, "ans",
                               {.address = Ipv4Address(10, 1, 1, 254)});
  guard::RemoteGuardNode::Config gc;
  gc.guard_address = Ipv4Address(10, 1, 1, 253);
  gc.ans_address = Ipv4Address(10, 1, 1, 254);
  gc.protected_zone = dns::DomainName{};
  gc.subnet_base = Ipv4Address(10, 1, 1, 0);
  gc.scheme = guard::Scheme::NsName;
  gc.rl1.per_address_rate = 1e7;
  gc.rl1.per_address_burst = 1e6;
  gc.rl2.per_host_rate = 1e7;
  gc.rl2.per_host_burst = 1e6;
  guard::RemoteGuardNode guard(sim, "guard", gc, &ans);
  guard.install();

  workload::LrsSimulatorNode::Config dc;
  dc.address = Ipv4Address(10, 0, 1, 1);
  dc.target = {Ipv4Address(10, 1, 1, 254), net::kDnsPort};
  dc.mode = workload::DriveMode::NsNameMiss;
  dc.concurrency = 4;
  dc.timeout = milliseconds(10);
  workload::LrsSimulatorNode driver(sim, "driver", dc);
  sim.add_host_route(dc.address, &driver);

  driver.start();
  sim.run_for(seconds(1));
  driver.stop();
  // Loss makes every ~3rd dance stall for the 10 ms timeout, so
  // throughput is far below the lossless ~4.7K/s — but service continues.
  EXPECT_GT(driver.driver_stats().completed, 250u);
  EXPECT_GT(driver.driver_stats().timeouts, 100u);  // loss was felt...
  EXPECT_EQ(guard.guard_stats().spoofs_dropped, 0u);  // ...but harmless
}

}  // namespace
}  // namespace dnsguard
