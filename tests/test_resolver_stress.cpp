// Resolver stress: many concurrent resolutions, mixed hit/miss/negative
// outcomes, loss, and stub fan-in — the LRS must complete everything and
// leak nothing.
#include <gtest/gtest.h>

#include "server/authoritative_node.h"
#include "server/resolver_node.h"
#include "server/stub_node.h"
#include "server/zone.h"
#include "sim/simulator.h"

namespace dnsguard::server {
namespace {

using dns::DomainName;
using dns::RrType;
using net::Ipv4Address;

constexpr Ipv4Address kRootIp(10, 0, 0, 1);
constexpr Ipv4Address kComIp(10, 0, 0, 2);
constexpr Ipv4Address kFooIp(10, 0, 0, 3);
constexpr Ipv4Address kLrsIp(10, 0, 1, 1);

struct Bed {
  sim::Simulator sim;
  std::unique_ptr<AuthoritativeServerNode> root, com, foo;
  std::unique_ptr<RecursiveResolverNode> lrs;

  Bed() {
    auto h = make_example_hierarchy(kRootIp, kComIp, kFooIp);
    root = std::make_unique<AuthoritativeServerNode>(
        sim, "root", AuthoritativeServerNode::Config{.address = kRootIp});
    com = std::make_unique<AuthoritativeServerNode>(
        sim, "com", AuthoritativeServerNode::Config{.address = kComIp});
    foo = std::make_unique<AuthoritativeServerNode>(
        sim, "foo", AuthoritativeServerNode::Config{.address = kFooIp});
    root->add_zone(std::move(h.root));
    com->add_zone(std::move(h.com));
    foo->add_zone(std::move(h.foo_com));
    // A wide zone with many real names.
    Zone wide(*DomainName::parse("foo.com"));
    for (int i = 0; i < 100; ++i) {
      wide.add_a("host" + std::to_string(i) + ".foo.com.",
                 Ipv4Address(192, 0, 2, static_cast<std::uint8_t>(i)));
    }
    foo->add_zone(std::move(wide));

    RecursiveResolverNode::Config rc;
    rc.address = kLrsIp;
    rc.root_hints = {kRootIp};
    rc.retry_timeout = milliseconds(50);
    rc.max_retries = 5;
    lrs = std::make_unique<RecursiveResolverNode>(sim, "lrs", rc);
    sim.add_host_route(kRootIp, root.get());
    sim.add_host_route(kComIp, com.get());
    sim.add_host_route(kFooIp, foo.get());
    sim.add_host_route(kLrsIp, lrs.get());
  }
};

TEST(ResolverStress, TwoHundredConcurrentMixedLookups) {
  Bed bed;
  int done = 0, positive = 0, negative = 0;
  // Fire 200 resolutions at once: 100 existing hosts, 60 missing names,
  // 40 duplicates of the same name.
  auto cb = [&](const RecursiveResolverNode::Result& r) {
    done++;
    if (r.rcode == dns::Rcode::NoError && !r.answers.empty()) positive++;
    if (r.rcode == dns::Rcode::NxDomain) negative++;
  };
  for (int i = 0; i < 100; ++i) {
    bed.lrs->resolve(*DomainName::parse("host" + std::to_string(i) +
                                        ".foo.com"),
                     RrType::A, cb);
  }
  for (int i = 0; i < 60; ++i) {
    bed.lrs->resolve(*DomainName::parse("gone" + std::to_string(i) +
                                        ".foo.com"),
                     RrType::A, cb);
  }
  for (int i = 0; i < 40; ++i) {
    bed.lrs->resolve(*DomainName::parse("www.foo.com"), RrType::A, cb);
  }
  bed.sim.run_for(seconds(30));
  EXPECT_EQ(done, 200);
  EXPECT_EQ(positive, 140);  // 100 hosts + 40 www duplicates
  EXPECT_EQ(negative, 60);
  EXPECT_EQ(bed.lrs->inflight_tasks(), 0u) << "task leak";
}

TEST(ResolverStress, ConcurrentLookupsUnderLoss) {
  Bed bed;
  bed.sim.set_loss_rate(0.1, 77);
  int done = 0, ok = 0;
  for (int i = 0; i < 50; ++i) {
    bed.lrs->resolve(*DomainName::parse("host" + std::to_string(i) +
                                        ".foo.com"),
                     RrType::A, [&](const RecursiveResolverNode::Result& r) {
                       done++;
                       if (r.ok) ok++;
                     });
  }
  bed.sim.run_for(seconds(60));
  EXPECT_EQ(done, 50);
  EXPECT_GE(ok, 48);  // retransmission absorbs the loss
  EXPECT_EQ(bed.lrs->inflight_tasks(), 0u);
}

TEST(ResolverStress, StubFanInThroughOneLrs) {
  Bed bed;
  std::vector<std::unique_ptr<StubResolverNode>> stubs;
  int answered = 0;
  for (int i = 0; i < 20; ++i) {
    Ipv4Address addr(10, 0, 3, static_cast<std::uint8_t>(i + 1));
    stubs.push_back(std::make_unique<StubResolverNode>(
        bed.sim, "stub" + std::to_string(i),
        StubResolverNode::Config{.address = addr, .lrs_address = kLrsIp}));
    bed.sim.add_host_route(addr, stubs.back().get());
  }
  for (int i = 0; i < 20; ++i) {
    stubs[static_cast<std::size_t>(i)]->lookup(
        *DomainName::parse("host" + std::to_string(i) + ".foo.com"),
        RrType::A, [&](const StubResolverNode::Result& r) {
          if (r.ok) answered++;
        });
  }
  bed.sim.run_for(seconds(10));
  EXPECT_EQ(answered, 20);
  EXPECT_EQ(bed.lrs->resolver_stats().client_responses, 20u);
}

TEST(ResolverStress, CacheConvergesToOneQueryPerName) {
  Bed bed;
  // Warm up the delegation chain.
  bool done = false;
  bed.lrs->resolve(*DomainName::parse("host0.foo.com"), RrType::A,
                   [&](const auto&) { done = true; });
  bed.sim.run_for(seconds(5));
  ASSERT_TRUE(done);
  std::uint64_t q0 = bed.lrs->resolver_stats().iterative_queries;

  // 50 fresh names: exactly one iterative query each (straight to foo).
  int completions = 0;
  for (int i = 1; i <= 50; ++i) {
    bed.lrs->resolve(*DomainName::parse("host" + std::to_string(i) +
                                        ".foo.com"),
                     RrType::A, [&](const auto&) { completions++; });
  }
  bed.sim.run_for(seconds(5));
  EXPECT_EQ(completions, 50);
  EXPECT_EQ(bed.lrs->resolver_stats().iterative_queries, q0 + 50);
}

}  // namespace
}  // namespace dnsguard::server
