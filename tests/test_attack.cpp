// Attack-generator module: rates, spoofing ranges, payload shapes.
#include <gtest/gtest.h>

#include <set>

#include "attack/attackers.h"
#include "guard/cookie_engine.h"
#include "sim/simulator.h"

namespace dnsguard::attack {
namespace {

using net::Ipv4Address;
using net::Packet;

class CollectorNode : public sim::Node {
 public:
  CollectorNode(sim::Simulator& s) : sim::Node(s, "collector", 1 << 20) {}
  std::vector<Packet> packets;

 protected:
  SimDuration process(const Packet& p) override {
    packets.push_back(p);
    return SimDuration{};
  }
};

constexpr Ipv4Address kTarget(10, 1, 1, 254);

struct Bed {
  sim::Simulator sim;
  CollectorNode collector{sim};
  Bed() { sim.add_host_route(kTarget, &collector); }
};

TEST(SpoofedFlood, HoldsConfiguredRate) {
  Bed bed;
  SpoofedFloodNode flood(bed.sim, "flood",
                         FloodNodeBase::Config{
                             .own_address = Ipv4Address(10, 9, 9, 9),
                             .target = {kTarget, net::kDnsPort},
                             .rate = 5000});
  flood.start();
  bed.sim.run_for(seconds(2));
  flood.stop();
  bed.sim.run_for(milliseconds(10));  // drain in-flight packets
  EXPECT_NEAR(static_cast<double>(flood.flood_stats().sent), 10000.0, 10.0);
  EXPECT_EQ(bed.collector.packets.size(), flood.flood_stats().sent);
}

TEST(SpoofedFlood, StopActuallyStops) {
  Bed bed;
  SpoofedFloodNode flood(bed.sim, "flood",
                         FloodNodeBase::Config{
                             .own_address = Ipv4Address(10, 9, 9, 9),
                             .target = {kTarget, net::kDnsPort},
                             .rate = 1000});
  flood.start();
  bed.sim.run_for(milliseconds(100));
  flood.stop();
  std::uint64_t at_stop = flood.flood_stats().sent;
  bed.sim.run_for(seconds(1));
  EXPECT_EQ(flood.flood_stats().sent, at_stop);
}

TEST(SpoofedFlood, SourcesSpreadAcrossRange) {
  Bed bed;
  SpoofedFloodNode flood(
      bed.sim, "flood",
      FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                            .target = {kTarget, net::kDnsPort},
                            .rate = 100000},
      SpoofedFloodNode::SpoofConfig{.spoof_base = Ipv4Address(10, 200, 0, 0),
                                    .spoof_range = 256});
  flood.start();
  bed.sim.run_for(milliseconds(100));
  flood.stop();
  std::set<std::uint32_t> sources;
  for (const auto& p : bed.collector.packets) {
    EXPECT_TRUE(p.src_ip.in_subnet(Ipv4Address(10, 200, 0, 0), 24));
    sources.insert(p.src_ip.value());
  }
  // ~10K packets over a 256-address pool: nearly all addresses used.
  EXPECT_GT(sources.size(), 200u);
}

TEST(SpoofedFlood, FixedVictimModeUsesOneSource) {
  Bed bed;
  SpoofedFloodNode flood(
      bed.sim, "flood",
      FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                            .target = {kTarget, net::kDnsPort},
                            .rate = 10000},
      SpoofedFloodNode::SpoofConfig{.spoof_base = Ipv4Address(10, 99, 0, 7),
                                    .spoof_range = 1});
  flood.start();
  bed.sim.run_for(milliseconds(50));
  flood.stop();
  for (const auto& p : bed.collector.packets) {
    EXPECT_EQ(p.src_ip, Ipv4Address(10, 99, 0, 7));
  }
}

TEST(SpoofedFlood, PacketsAreWellFormedQueries) {
  Bed bed;
  SpoofedFloodNode flood(bed.sim, "flood",
                         FloodNodeBase::Config{
                             .own_address = Ipv4Address(10, 9, 9, 9),
                             .target = {kTarget, net::kDnsPort},
                             .rate = 1000,
                             .qname_base = "evil.example."});
  flood.start();
  bed.sim.run_for(milliseconds(20));
  flood.stop();
  ASSERT_FALSE(bed.collector.packets.empty());
  for (const auto& p : bed.collector.packets) {
    auto m = dns::Message::decode(BytesView(p.payload));
    ASSERT_TRUE(m.has_value());
    EXPECT_FALSE(m->header.qr);
    ASSERT_NE(m->question(), nullptr);
    EXPECT_EQ(m->question()->qname.to_string(), "evil.example.");
  }
}

TEST(SpoofedFlood, RandomTxtCookieOptionAttaches) {
  Bed bed;
  SpoofedFloodNode flood(
      bed.sim, "flood",
      FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                            .target = {kTarget, net::kDnsPort},
                            .rate = 1000},
      SpoofedFloodNode::SpoofConfig{.random_txt_cookie = true});
  flood.start();
  bed.sim.run_for(milliseconds(20));
  flood.stop();
  ASSERT_FALSE(bed.collector.packets.empty());
  std::set<crypto::Cookie> cookies;
  for (const auto& p : bed.collector.packets) {
    auto m = dns::Message::decode(BytesView(p.payload));
    auto c = guard::CookieEngine::extract_txt_cookie(*m);
    ASSERT_TRUE(c.has_value());
    EXPECT_FALSE(guard::CookieEngine::is_zero_cookie(*c));
    cookies.insert(*c);
  }
  EXPECT_GT(cookies.size(), bed.collector.packets.size() / 2);  // random
}

TEST(CookieGuess, NsNameLabelsLookValid) {
  Bed bed;
  CookieGuessNode guess(
      bed.sim, "guess",
      FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                            .target = {kTarget, net::kDnsPort},
                            .rate = 1000},
      CookieGuessNode::GuessConfig{.mode = CookieGuessNode::Mode::NsNameLabel,
                                   .victim = Ipv4Address(10, 99, 0, 1),
                                   .zone = dns::DomainName{}});
  guess.start();
  bed.sim.run_for(milliseconds(20));
  guess.stop();
  ASSERT_FALSE(bed.collector.packets.empty());
  for (const auto& p : bed.collector.packets) {
    auto m = dns::Message::decode(BytesView(p.payload));
    ASSERT_TRUE(m.has_value());
    // Each guess must structurally parse as a cookie label (otherwise the
    // guard would reject it before even computing MD5).
    auto parsed = guard::CookieEngine::parse_cookie_label(
        m->question()->qname.first_label());
    EXPECT_TRUE(parsed.has_value());
    EXPECT_EQ(p.src_ip, Ipv4Address(10, 99, 0, 1));
  }
}

TEST(CookieGuess, SubnetModeCoversRange) {
  Bed bed;
  bed.sim.add_route(Ipv4Address(10, 1, 1, 0), 24, &bed.collector);
  CookieGuessNode guess(
      bed.sim, "guess",
      FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                            .target = {kTarget, net::kDnsPort},
                            .rate = 100000},
      CookieGuessNode::GuessConfig{
          .mode = CookieGuessNode::Mode::SubnetAddress,
          .victim = Ipv4Address(10, 99, 0, 1),
          .subnet_base = Ipv4Address(10, 1, 1, 0),
          .r_y = 100});
  guess.start();
  bed.sim.run_for(milliseconds(100));
  guess.stop();
  std::set<std::uint32_t> dsts;
  for (const auto& p : bed.collector.packets) dsts.insert(p.dst_ip.value());
  EXPECT_GT(dsts.size(), 90u);  // nearly all of the 100 offsets probed
}

TEST(ZombieFlood, UsesRealSource) {
  Bed bed;
  ZombieFloodNode zombie(bed.sim, "zombie",
                         FloodNodeBase::Config{
                             .own_address = Ipv4Address(10, 7, 7, 7),
                             .target = {kTarget, net::kDnsPort},
                             .rate = 1000});
  zombie.start();
  bed.sim.run_for(milliseconds(20));
  zombie.stop();
  for (const auto& p : bed.collector.packets) {
    EXPECT_EQ(p.src_ip, Ipv4Address(10, 7, 7, 7));
  }
}

TEST(Victim, CountsBytesAndPackets) {
  sim::Simulator sim;
  VictimNode victim(sim, "victim", Ipv4Address(10, 99, 0, 1));
  sim.add_host_route(Ipv4Address(10, 99, 0, 1), &victim);
  CollectorNode sender(sim);
  Packet p = Packet::make_udp({Ipv4Address(1, 1, 1, 1), 53},
                              {Ipv4Address(10, 99, 0, 1), 53}, Bytes(72, 0));
  sim.send_packet(&sender, p);
  sim.send_packet(&sender, p);
  sim.run_all();
  EXPECT_EQ(victim.packets_received(), 2u);
  EXPECT_EQ(victim.bytes_received(), 2 * (20 + 8 + 72));
}

TEST(FloodRestart, StartAfterStopResumesCleanly) {
  Bed bed;
  SpoofedFloodNode flood(bed.sim, "flood",
                         FloodNodeBase::Config{
                             .own_address = Ipv4Address(10, 9, 9, 9),
                             .target = {kTarget, net::kDnsPort},
                             .rate = 1000});
  flood.start();
  bed.sim.run_for(milliseconds(100));
  flood.stop();
  bed.sim.run_for(milliseconds(100));
  flood.start();
  bed.sim.run_for(milliseconds(100));
  flood.stop();
  bed.sim.run_for(seconds(1));
  // ~100 + ~100 packets; no double-rate overlap from stale timers.
  EXPECT_NEAR(static_cast<double>(flood.flood_stats().sent), 200.0, 6.0);
}

}  // namespace
}  // namespace dnsguard::attack
