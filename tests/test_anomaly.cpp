// Online attack detection: AnomalyDetector state machine, AttackMonitor
// wired onto a live sampler, FlightRecorder dumps, and the end-to-end
// acceptance scenario — a spoofed flood starting mid-run must be flagged
// within two sampling windows, and an attack-free control run must raise
// zero alerts.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "attack/attackers.h"
#include "guard/remote_guard.h"
#include "obs/anomaly.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "server/authoritative_node.h"
#include "sim/simulator.h"
#include "obs_test_support.h"
#include "workload/lrs_driver.h"

namespace dnsguard {
namespace {

using obs::AnomalyConfig;
using obs::AnomalyDetector;
using obs::AttackMonitor;
using obs::FlightRecorder;
using Signal = obs::AnomalyDetector::Signal;

TEST(AnomalyDetector, QuietSeriesNeverFires) {
  AnomalyDetector det;
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(det.update(10.0), Signal::kNone) << "window " << i;
  }
  EXPECT_FALSE(det.in_anomaly());
  EXPECT_NEAR(det.mean(), 10.0, 1e-9);
}

TEST(AnomalyDetector, WarmupSuppressesEarlySpikes) {
  AnomalyConfig cfg;
  cfg.warmup_windows = 3;
  AnomalyDetector det(cfg);
  // A spike inside warmup must not fire — there is no baseline yet.
  EXPECT_EQ(det.update(1e6), Signal::kNone);
  EXPECT_EQ(det.update(1e6), Signal::kNone);
  EXPECT_FALSE(det.in_anomaly());
}

TEST(AnomalyDetector, OnsetOnStepJumpAfterBaseline) {
  AnomalyDetector det;
  for (int i = 0; i < 10; ++i) det.update(100.0);
  // First flood window: well past mean + k*dev.
  EXPECT_EQ(det.update(50000.0), Signal::kOnset);
  EXPECT_TRUE(det.in_anomaly());
  // Staying hot raises no further transition.
  EXPECT_EQ(det.update(50000.0), Signal::kNone);
  EXPECT_TRUE(det.in_anomaly());
}

TEST(AnomalyDetector, BaselineFrozenDuringAnomaly) {
  AnomalyDetector det;
  for (int i = 0; i < 10; ++i) det.update(100.0);
  double mean_before = det.mean();
  det.update(50000.0);
  ASSERT_TRUE(det.in_anomaly());
  for (int i = 0; i < 50; ++i) det.update(50000.0);
  // A sustained flood must not be absorbed into "normal".
  EXPECT_NEAR(det.mean(), mean_before, 1e-9);
}

TEST(AnomalyDetector, OffsetNeedsConsecutiveQuietWindows) {
  AnomalyConfig cfg;
  cfg.offset_consecutive = 2;
  AnomalyDetector det(cfg);
  for (int i = 0; i < 10; ++i) det.update(100.0);
  ASSERT_EQ(det.update(50000.0), Signal::kOnset);
  // One quiet window is not enough (hysteresis)...
  EXPECT_EQ(det.update(100.0), Signal::kNone);
  EXPECT_TRUE(det.in_anomaly());
  // ...and a relapse resets the quiet streak.
  EXPECT_EQ(det.update(50000.0), Signal::kNone);
  EXPECT_EQ(det.update(100.0), Signal::kNone);
  // Second consecutive quiet window clears.
  EXPECT_EQ(det.update(100.0), Signal::kOffset);
  EXPECT_FALSE(det.in_anomaly());
}

TEST(AnomalyDetector, OnsetConsecutiveRequiresStreak) {
  AnomalyConfig cfg;
  cfg.onset_consecutive = 2;
  AnomalyDetector det(cfg);
  for (int i = 0; i < 10; ++i) det.update(100.0);
  // A single noisy window must not raise an alert...
  EXPECT_EQ(det.update(50000.0), Signal::kNone);
  EXPECT_FALSE(det.in_anomaly());
  EXPECT_EQ(det.update(100.0), Signal::kNone);
  // ...but two consecutive hot windows do.
  EXPECT_EQ(det.update(50000.0), Signal::kNone);
  EXPECT_EQ(det.update(50000.0), Signal::kOnset);
  EXPECT_TRUE(det.in_anomaly());
}

TEST(AnomalyDetector, ResetForgetsEverything) {
  AnomalyDetector det;
  for (int i = 0; i < 10; ++i) det.update(100.0);
  det.update(50000.0);
  ASSERT_TRUE(det.in_anomaly());
  det.reset();
  EXPECT_FALSE(det.in_anomaly());
  EXPECT_EQ(det.windows_seen(), 0);
  // Back in warmup: an immediate spike stays silent.
  EXPECT_EQ(det.update(1e6), Signal::kNone);
}

SimTime at(std::int64_t ms) { return SimTime{} + milliseconds(ms); }

TEST(AttackMonitor, RaisesGaugeAndRecordsEventsFromSampler) {
  obs::MetricsRegistry reg;
  obs::Counter& drops = reg.counter("guard.spoofs_dropped");
  obs::TimeSeriesSampler ts;
  ts.start(reg, at(0), milliseconds(100), 64);

  AttackMonitor mon;
  mon.watch("guard.spoofs_dropped");
  mon.watch("no.such.series");  // silently dropped at bind
  mon.bind(ts, reg);
  EXPECT_EQ(mon.watched(), 1u);

  const obs::Gauge* g = reg.find_gauge("anomaly.under_attack");
  ASSERT_NE(g, nullptr);

  int onset_hooks = 0;
  mon.set_on_onset([&](const AttackMonitor::Event& e) {
    onset_hooks++;
    EXPECT_TRUE(e.onset);
    EXPECT_EQ(e.series, "guard.spoofs_dropped");
  });

  // Quiet baseline, then a flood, then quiet again.
  std::int64_t t = 0;
  for (int i = 0; i < 10; ++i) {
    drops += 2;
    ts.sample(at(t += 100));
  }
  EXPECT_FALSE(mon.under_attack());
  for (int i = 0; i < 5; ++i) {
    drops += 5000;
    ts.sample(at(t += 100));
  }
  EXPECT_TRUE(mon.under_attack());
  EXPECT_EQ(g->value(), 1);
  for (int i = 0; i < 5; ++i) {
    drops += 2;
    ts.sample(at(t += 100));
  }
  EXPECT_FALSE(mon.under_attack());
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(g->max(), 1);

  ASSERT_EQ(mon.events().size(), 2u);
  EXPECT_TRUE(mon.events()[0].onset);
  EXPECT_FALSE(mon.events()[1].onset);
  EXPECT_EQ(onset_hooks, 1);
  std::string json = mon.events_json(2);
  EXPECT_NE(json.find("guard.spoofs_dropped"), std::string::npos) << json;
  EXPECT_NE(json.find("\"onset\": true"), std::string::npos) << json;
}

TEST(FlightRecorder, DumpWritesSequencedFiles) {
  FlightRecorder rec;
  rec.set_output_dir(::testing::TempDir());
  rec.add_section("metrics", [] { return std::string("{\"a\": 1}"); });
  std::string path = rec.dump("unit", at(1500));
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(rec.dumps_written(), 1u);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << path;
  char buf[256] = {};
  std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string doc(buf, n);
  EXPECT_NE(doc.find("\"label\": \"unit\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"sim_time_s\": 1.5"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"metrics\": {\"a\": 1}"), std::string::npos) << doc;
  // A second dump gets a fresh sequence number, never overwriting.
  std::string path2 = rec.dump("unit", at(2000));
  EXPECT_NE(path2, path);
  EXPECT_EQ(rec.dumps_written(), 2u);
}

// --- end-to-end: detector flags a mid-run spoofed flood ---

using guard::RemoteGuardNode;
using guard::Scheme;
using net::Ipv4Address;
using workload::DriveMode;
using workload::LrsSimulatorNode;

constexpr Ipv4Address kAnsIp(10, 1, 1, 254);
constexpr Ipv4Address kGuardIp(10, 1, 1, 253);

struct DetectionBed {
  sim::Simulator sim;
  server::AnsSimulatorNode ans{sim, "ans", {.address = kAnsIp}};
  std::unique_ptr<RemoteGuardNode> guard;
  std::unique_ptr<LrsSimulatorNode> driver;
  AttackMonitor monitor;

  DetectionBed() {
    RemoteGuardNode::Config gc;
    gc.guard_address = kGuardIp;
    gc.ans_address = kAnsIp;
    gc.protected_zone = dns::DomainName{};
    gc.subnet_base = Ipv4Address(10, 1, 1, 0);
    gc.scheme = Scheme::ModifiedDns;
    // Generous limiter rates: this scenario studies detection, not
    // throttling, so the only drops should be bad-cookie ones.
    gc.rl1.per_address_rate = 1e7;
    gc.rl1.per_address_burst = 1e6;
    gc.rl2.per_host_rate = 1e7;
    gc.rl2.per_host_burst = 1e6;
    guard = std::make_unique<RemoteGuardNode>(sim, "guard", gc, &ans);
    guard->install();

    LrsSimulatorNode::Config dc;
    dc.address = Ipv4Address(10, 0, 1, 1);
    dc.target = {kAnsIp, net::kDnsPort};
    dc.mode = DriveMode::ModifiedHit;
    dc.concurrency = 8;
    driver = std::make_unique<LrsSimulatorNode>(sim, "driver", dc);
    sim.add_host_route(dc.address, driver.get());
  }

  /// Runs legitimate traffic for 1.5 s with 100 ms sampling windows; if
  /// `flood_rate` > 0, a spoofed flood starts at t = 500 ms. Returns the
  /// flood start time.
  SimTime run(double flood_rate) {
    std::unique_ptr<attack::SpoofedFloodNode> flood;
    if (flood_rate > 0) {
      flood = std::make_unique<attack::SpoofedFloodNode>(
          sim, "flood",
          attack::FloodNodeBase::Config{
              .own_address = Ipv4Address(10, 9, 9, 9),
              .target = {kAnsIp, net::kDnsPort},
              .rate = flood_rate},
          attack::SpoofedFloodNode::SpoofConfig{.random_txt_cookie = true});
    }
    driver->start();
    sim.start_timeseries(milliseconds(100));
    monitor.watch("guard.spoofs_dropped");
    monitor.watch("guard.drop.bad_cookie");
    monitor.bind(sim.timeseries(), sim.metrics());
    SimTime flood_start = sim.now() + milliseconds(500);
    if (flood) {
      sim.schedule_in(milliseconds(500), [&flood] { flood->start(); });
    }
    sim.run_for(milliseconds(1500));
    if (flood) flood->stop();
    driver->stop();
    sim.stop_timeseries();
    return flood_start;
  }
};

TEST(AttackDetectionEndToEnd, OnsetWithinTwoWindowsOfFloodStart) {
  DetectionBed bed;
  testing_support::arm_failure_dump([&](const std::string& test) {
    bed.sim.flight_recorder().dump(test, bed.sim.now());
  });
  SimTime flood_start = bed.run(/*flood_rate=*/30000);

  ASSERT_FALSE(bed.monitor.events().empty()) << bed.monitor.events_json();
  const AttackMonitor::Event& first = bed.monitor.events().front();
  EXPECT_TRUE(first.onset);
  // Acceptance criterion: detection within 2 sampling windows of onset.
  EXPECT_LE(first.at.ns, (flood_start + milliseconds(200)).ns)
      << bed.monitor.events_json();
  EXPECT_GT(bed.guard->guard_stats().spoofs_dropped, 10000u);
  // Legitimate traffic kept flowing throughout.
  EXPECT_GT(bed.driver->driver_stats().completed, 1000u);

  // Satellite: during the attack every traced drop carries a reason —
  // a kDrop entry tagged kNone means a drop site forgot its taxonomy.
  std::size_t drops_traced = 0;
  for (const auto& [name, ring] : bed.sim.trace_rings()) {
    for (const obs::TraceEntry& e : ring->entries()) {
      if (e.event != obs::TraceEvent::kDrop) continue;
      drops_traced++;
      EXPECT_NE(e.reason, obs::DropReason::kNone)
          << name << ": " << e.to_string();
    }
  }
  EXPECT_GT(drops_traced, 0u);  // the flood must have left drop traces

  // Counter-level half of the audit: every "*.drop.<reason>" counter the
  // registry exports must carry a real taxonomy suffix. A ".drop.none"
  // cell existing at all means a DropCounters::bind() started exporting
  // the filler reason; a suffix outside the enum means a site invented an
  // ad-hoc name instead of extending obs::DropReason.
  std::size_t drop_counters_seen = 0;
  for (const std::string& name : bed.sim.metrics().counter_names()) {
    const std::size_t pos = name.rfind(".drop.");
    if (pos == std::string::npos) continue;
    drop_counters_seen++;
    const std::string suffix = name.substr(pos + 6);
    EXPECT_NE(suffix, "none") << name;
    bool known = false;
    for (std::size_t r = 1; r < obs::kDropReasonCount; ++r) {
      if (suffix == obs::drop_reason_name(static_cast<obs::DropReason>(r))) {
        known = true;
        break;
      }
    }
    EXPECT_TRUE(known) << name << " uses a suffix outside the DropReason enum";
  }
  EXPECT_GT(drop_counters_seen, 0u);
}

TEST(AttackDetectionEndToEnd, AttackFreeControlRaisesNoAlerts) {
  DetectionBed bed;
  bed.run(/*flood_rate=*/0);
  EXPECT_TRUE(bed.monitor.events().empty()) << bed.monitor.events_json();
  EXPECT_FALSE(bed.monitor.under_attack());
  const obs::Gauge* g = bed.sim.metrics().find_gauge("anomaly.under_attack");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->max(), 0);
}

// --- Flash-crowd discrimination -------------------------------------------
//
// Shared scaffolding: a registry with guard-shaped counters, a sampler
// over all of them, and a monitor watching offered load with the
// discriminator wired to the drop-taxonomy and first-contact series.
struct DiscriminationBed {
  obs::MetricsRegistry reg;
  obs::Counter& requests = reg.counter("guard.requests_seen");
  obs::Counter& drops = reg.counter("guard.spoofs_dropped");
  obs::Counter& inserts = reg.counter("guard.rl2.table.inserts");
  obs::TimeSeriesSampler ts;
  AttackMonitor mon;
  std::int64_t t = 0;

  DiscriminationBed() {
    ts.start(reg, at(0), milliseconds(100), 64);
    mon.watch("guard.requests_seen");
    obs::DiscriminatorConfig disc;
    disc.malicious_series = {"guard.spoofs_dropped"};
    disc.load_series = {"guard.requests_seen"};
    disc.source_series = {"guard.rl2.table.inserts"};
    disc.attack_mix_threshold = 0.5;
    mon.set_discriminator(disc);
    mon.bind(ts, reg);
    // Steady baseline past warmup: 1000 requests/window, no drops.
    for (int i = 0; i < 6; ++i) window(1000, 0, 10);
  }

  void window(std::uint64_t load, std::uint64_t malicious,
              std::uint64_t fresh_sources) {
    requests += load;
    drops += malicious;
    inserts += fresh_sources;
    ts.sample(at(t += 100));
  }
};

TEST(AttackMonitor, FlashCrowdSurgeRaisesNoAttackOnset) {
  DiscriminationBed bed;
  // A 5x legitimate surge: lots of new sources, none of them dropped.
  for (int i = 0; i < 3; ++i) bed.window(5000, 0, 800);

  EXPECT_EQ(bed.mon.onsets(AttackMonitor::Kind::kAttack), 0u)
      << bed.mon.events_json();
  EXPECT_EQ(bed.mon.onsets(AttackMonitor::Kind::kFlashCrowd), 1u)
      << bed.mon.events_json();
  EXPECT_FALSE(bed.mon.under_attack());
  EXPECT_TRUE(bed.mon.in_flash_crowd());

  const AttackMonitor::Event& e = bed.mon.events().front();
  EXPECT_TRUE(e.onset);
  EXPECT_EQ(e.kind, AttackMonitor::Kind::kFlashCrowd);
  EXPECT_NEAR(e.malicious_mix, 0.0, 1e-9);
  EXPECT_NEAR(e.source_growth, 800.0, 1e-9);

  // The dedicated gauge tracks the flash, not the attack alarm.
  const obs::Gauge* flash = bed.reg.find_gauge("anomaly.flash_crowd");
  ASSERT_NE(flash, nullptr);
  EXPECT_EQ(flash->value(), 1);
  const obs::Gauge* attack = bed.reg.find_gauge("anomaly.under_attack");
  ASSERT_NE(attack, nullptr);
  EXPECT_EQ(attack->max(), 0);

  // Surge subsides: the offset event carries its onset's classification.
  for (int i = 0; i < 3; ++i) bed.window(1000, 0, 10);
  EXPECT_FALSE(bed.mon.in_flash_crowd());
  ASSERT_EQ(bed.mon.events().size(), 2u);
  EXPECT_FALSE(bed.mon.events()[1].onset);
  EXPECT_EQ(bed.mon.events()[1].kind, AttackMonitor::Kind::kFlashCrowd);
  EXPECT_NE(bed.mon.events_json().find("\"kind\": \"flash_crowd\""),
            std::string::npos)
      << bed.mon.events_json();
}

TEST(AttackMonitor, EqualRateSpoofedFloodClassifiesAsAttack) {
  DiscriminationBed bed;
  // Same 5x aggregate surge, but the guard rejects most of it: the
  // drop-taxonomy mix (3600/5000 = 0.72) exceeds the 0.5 threshold.
  for (int i = 0; i < 3; ++i) bed.window(5000, 3600, 800);

  EXPECT_EQ(bed.mon.onsets(AttackMonitor::Kind::kAttack), 1u)
      << bed.mon.events_json();
  EXPECT_EQ(bed.mon.onsets(AttackMonitor::Kind::kFlashCrowd), 0u)
      << bed.mon.events_json();
  EXPECT_TRUE(bed.mon.under_attack());
  EXPECT_FALSE(bed.mon.in_flash_crowd());

  const AttackMonitor::Event& e = bed.mon.events().front();
  EXPECT_EQ(e.kind, AttackMonitor::Kind::kAttack);
  EXPECT_NEAR(e.malicious_mix, 0.72, 1e-9);

  const obs::Gauge* attack = bed.reg.find_gauge("anomaly.under_attack");
  ASSERT_NE(attack, nullptr);
  EXPECT_EQ(attack->value(), 1);
}

TEST(AttackMonitor, WithoutDiscriminatorEveryOnsetIsAttack) {
  // Legacy binary alarm: no discriminator configured, so even a clean
  // surge (nothing dropped) classifies as an attack.
  obs::MetricsRegistry reg;
  obs::Counter& requests = reg.counter("guard.requests_seen");
  obs::TimeSeriesSampler ts;
  ts.start(reg, at(0), milliseconds(100), 64);
  AttackMonitor mon;
  mon.watch("guard.requests_seen");
  mon.bind(ts, reg);

  std::int64_t t = 0;
  for (int i = 0; i < 6; ++i) {
    requests += 1000;
    ts.sample(at(t += 100));
  }
  for (int i = 0; i < 3; ++i) {
    requests += 5000;
    ts.sample(at(t += 100));
  }
  EXPECT_EQ(mon.onsets(AttackMonitor::Kind::kAttack), 1u)
      << mon.events_json();
  EXPECT_TRUE(mon.under_attack());
  EXPECT_FALSE(mon.in_flash_crowd());
  EXPECT_EQ(reg.find_gauge("anomaly.flash_crowd"), nullptr);
}

}  // namespace
}  // namespace dnsguard
