// Discrete-event simulator: ordering, routing, latency, CPU model,
// queue overflow, gateways, and packet conservation.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <utility>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace dnsguard::sim {
namespace {

using net::Ipv4Address;
using net::Packet;
using net::SocketAddr;

/// Test node: fixed per-packet cost, records arrival times, optional echo.
class ProbeNode : public Node {
 public:
  ProbeNode(Simulator& sim, std::string name, SimDuration cost,
            std::size_t queue_cap = 4096)
      : Node(sim, std::move(name), queue_cap), cost_(cost) {}

  std::vector<SimTime> arrivals;
  bool echo = false;

 protected:
  SimDuration process(const Packet& p) override {
    arrivals.push_back(now());
    if (echo) {
      send(Packet::make_udp(p.dst(), p.src(), p.payload));
    }
    return cost_;
  }

 private:
  SimDuration cost_;
};

Packet make_pkt(Ipv4Address from, Ipv4Address to, std::size_t n = 10) {
  return Packet::make_udp({from, 1000}, {to, 53}, Bytes(n, 0));
}

TEST(EventQueue, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(milliseconds(3), [&] { order.push_back(3); });
  sim.schedule_in(milliseconds(1), [&] { order.push_back(1); });
  sim.schedule_in(milliseconds(2), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_in(milliseconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EmptyQueueIsGuarded) {
  // Regression: next_time()/pop() used to call heap_.top() on an empty
  // priority_queue (UB). Now they return well-defined sentinels.
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kNoEventTime);
  SimTime at{-1};
  EventFn fn = q.pop(at);
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_EQ(at, kNoEventTime);
  // The queue is still usable afterwards.
  q.schedule(SimTime{5}, [] {});
  EXPECT_EQ(q.next_time(), SimTime{5});
}

TEST(EventQueue, RandomizedOrderIsDeterministicTimeThenSeq) {
  // Drain order must be exactly (time, insertion sequence) — the
  // determinism contract the 4-ary heap has to preserve, including many
  // same-instant ties.
  EventQueue q;
  Rng rng(0xfeedULL);
  std::vector<std::pair<std::int64_t, int>> expected;  // (time, insert idx)
  for (int i = 0; i < 2000; ++i) {
    auto t = static_cast<std::int64_t>(rng.next() % 64);  // dense ties
    expected.emplace_back(t, i);
    q.schedule(SimTime{t}, [] {});
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (const auto& [t, idx] : expected) {
    SimTime at;
    EventFn fn = q.pop(at);
    ASSERT_TRUE(static_cast<bool>(fn));
    ASSERT_EQ(at.ns, t);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameInstantFifoAcrossNestedScheduling) {
  // Events scheduled *while running* at the current instant still fire
  // after previously scheduled same-instant events.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(milliseconds(1), [&] {
    order.push_back(0);
    sim.schedule_in(SimDuration{}, [&] { order.push_back(2); });
  });
  sim.schedule_in(milliseconds(1), [&] { order.push_back(1); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, OversizedCapturesFireCorrectly) {
  // Captures too big for the inline buffer take the slab path; ordering
  // and payload integrity must be unaffected.
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 16; ++i) {
    std::array<std::uint64_t, 40> big{};  // 320 bytes, beyond inline
    big[0] = static_cast<std::uint64_t>(i);
    q.schedule(SimTime{i % 4}, [big, &fired] {
      fired.push_back(static_cast<int>(big[0]));
    });
  }
  SimTime at;
  while (!q.empty()) q.pop(at)();
  ASSERT_EQ(fired.size(), 16u);
  // Within each instant, FIFO by insertion: i%4==0 first (0,4,8,12), etc.
  EXPECT_EQ(fired[0], 0);
  EXPECT_EQ(fired[1], 4);
  EXPECT_EQ(fired[15], 15);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(milliseconds(1), [&] { fired++; });
  sim.schedule_in(milliseconds(10), [&] { fired++; });
  sim.run_until(SimTime{} + milliseconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns, milliseconds(5).ns);
  sim.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Routing, LongestPrefixWins) {
  Simulator sim;
  ProbeNode subnet_owner(sim, "subnet", SimDuration{});
  ProbeNode host_owner(sim, "host", SimDuration{});
  ProbeNode sender(sim, "sender", SimDuration{});
  sim.add_route(Ipv4Address(10, 0, 0, 0), 24, &subnet_owner);
  sim.add_host_route(Ipv4Address(10, 0, 0, 7), &host_owner);

  sim.send_packet(&sender, make_pkt(Ipv4Address(1, 1, 1, 1),
                                    Ipv4Address(10, 0, 0, 7)));
  sim.send_packet(&sender, make_pkt(Ipv4Address(1, 1, 1, 1),
                                    Ipv4Address(10, 0, 0, 8)));
  sim.run_all();
  EXPECT_EQ(host_owner.arrivals.size(), 1u);
  EXPECT_EQ(subnet_owner.arrivals.size(), 1u);
}

TEST(Routing, NoRouteCountsDrop) {
  Simulator sim;
  ProbeNode sender(sim, "sender", SimDuration{});
  sim.send_packet(&sender, make_pkt(Ipv4Address(1, 1, 1, 1),
                                    Ipv4Address(9, 9, 9, 9)));
  sim.run_all();
  EXPECT_EQ(sim.stats().packets_dropped_no_route, 1u);
  EXPECT_EQ(sim.stats().packets_delivered, 0u);
}

TEST(Latency, PerPairOverridesDefault) {
  Simulator sim;
  sim.set_default_latency(microseconds(200));
  ProbeNode a(sim, "a", SimDuration{});
  ProbeNode b(sim, "b", SimDuration{});
  sim.add_host_route(Ipv4Address(10, 0, 0, 1), &a);
  sim.add_host_route(Ipv4Address(10, 0, 0, 2), &b);
  sim.set_latency(&a, &b, milliseconds(5));

  sim.send_packet(&a, make_pkt(Ipv4Address(10, 0, 0, 1),
                               Ipv4Address(10, 0, 0, 2)));
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].ns, milliseconds(5).ns);
}

TEST(CpuModel, ServiceTimesSerialize) {
  // Two packets arriving together at a 1 ms/packet server: the second is
  // serviced 1 ms after the first.
  Simulator sim;
  ProbeNode server(sim, "server", milliseconds(1));
  server.echo = true;
  ProbeNode client(sim, "client", SimDuration{});
  sim.add_host_route(Ipv4Address(10, 0, 0, 1), &server);
  sim.add_host_route(Ipv4Address(10, 0, 0, 9), &client);
  sim.set_default_latency(SimDuration{});  // isolate service time

  sim.send_packet(&client, make_pkt(Ipv4Address(10, 0, 0, 9),
                                    Ipv4Address(10, 0, 0, 1)));
  sim.send_packet(&client, make_pkt(Ipv4Address(10, 0, 0, 9),
                                    Ipv4Address(10, 0, 0, 1)));
  sim.run_all();
  // Echo responses leave at end-of-service: t=1ms and t=2ms.
  ASSERT_EQ(client.arrivals.size(), 2u);
  EXPECT_EQ(client.arrivals[0].ns, milliseconds(1).ns);
  EXPECT_EQ(client.arrivals[1].ns, milliseconds(2).ns);
  EXPECT_EQ(server.stats().busy.ns, milliseconds(2).ns);
}

TEST(CpuModel, UtilizationMatchesLoad) {
  // 100 req/s at 1 ms each => 10% utilization.
  Simulator sim;
  ProbeNode server(sim, "server", milliseconds(1));
  ProbeNode client(sim, "client", SimDuration{});
  sim.add_host_route(Ipv4Address(10, 0, 0, 1), &server);

  for (int i = 0; i < 100; ++i) {
    sim.schedule_in(milliseconds(10 * i), [&] {
      sim.send_packet(&client, make_pkt(Ipv4Address(10, 0, 0, 9),
                                        Ipv4Address(10, 0, 0, 1)));
    });
  }
  sim.run_until(SimTime{} + seconds(1));
  EXPECT_NEAR(server.utilization(seconds(1)), 0.1, 0.01);
}

TEST(CpuModel, SaturationDropsAtFullQueue) {
  // A server with 1 ms service and a 4-packet queue hit with 100 packets
  // at once: 4 queued + 1 in service progression; most are dropped.
  Simulator sim;
  ProbeNode server(sim, "server", milliseconds(1), /*queue_cap=*/4);
  ProbeNode client(sim, "client", SimDuration{});
  sim.add_host_route(Ipv4Address(10, 0, 0, 1), &server);

  for (int i = 0; i < 100; ++i) {
    sim.send_packet(&client, make_pkt(Ipv4Address(10, 0, 0, 9),
                                      Ipv4Address(10, 0, 0, 1)));
  }
  sim.run_all();
  EXPECT_GT(server.stats().dropped_queue_full, 90u);
  EXPECT_EQ(server.stats().rx + server.stats().dropped_queue_full, 100u);
}

TEST(Conservation, SentEqualsDeliveredPlusDropped) {
  Simulator sim;
  ProbeNode server(sim, "server", microseconds(100), /*queue_cap=*/8);
  ProbeNode client(sim, "client", SimDuration{});
  sim.add_host_route(Ipv4Address(10, 0, 0, 1), &server);

  for (int i = 0; i < 500; ++i) {
    sim.schedule_in(microseconds(i * 7), [&] {
      sim.send_packet(&client, make_pkt(Ipv4Address(10, 0, 0, 9),
                                        Ipv4Address(10, 0, 0, 1)));
    });
    sim.schedule_in(microseconds(i * 11), [&] {
      sim.send_packet(&client, make_pkt(Ipv4Address(10, 0, 0, 9),
                                        Ipv4Address(7, 7, 7, 7)));  // no route
    });
  }
  sim.run_all();
  const auto& s = sim.stats();
  EXPECT_EQ(s.packets_sent, s.packets_delivered +
                                s.packets_dropped_no_route +
                                s.packets_dropped_queue_full);
  EXPECT_EQ(s.packets_sent, 1000u);
}

TEST(Gateway, RedirectsAllTraffic) {
  Simulator sim;
  ProbeNode ans(sim, "ans", SimDuration{});
  ProbeNode guard(sim, "guard", SimDuration{});
  ProbeNode lrs(sim, "lrs", SimDuration{});
  sim.add_host_route(Ipv4Address(10, 0, 0, 100), &lrs);
  sim.set_gateway(&ans, &guard);

  // ANS "responds" toward the LRS; the packet must land on the guard.
  sim.send_packet(&ans, make_pkt(Ipv4Address(10, 0, 0, 1),
                                 Ipv4Address(10, 0, 0, 100)));
  sim.run_all();
  EXPECT_EQ(guard.arrivals.size(), 1u);
  EXPECT_EQ(lrs.arrivals.size(), 0u);

  sim.clear_gateway(&ans);
  sim.send_packet(&ans, make_pkt(Ipv4Address(10, 0, 0, 1),
                                 Ipv4Address(10, 0, 0, 100)));
  sim.run_all();
  EXPECT_EQ(lrs.arrivals.size(), 1u);
}

TEST(Gateway, SendDirectBypassesRouting) {
  Simulator sim;
  ProbeNode a(sim, "a", SimDuration{});
  ProbeNode b(sim, "b", SimDuration{});
  // No routes at all: direct delivery must still work.
  sim.send_direct(&a, &b, make_pkt(Ipv4Address(1, 1, 1, 1),
                                   Ipv4Address(2, 2, 2, 2)));
  sim.run_all();
  EXPECT_EQ(b.arrivals.size(), 1u);
}

TEST(NodeIds, AssignedMonotonicallyAndNeverReused) {
  Simulator sim;
  ProbeNode a(sim, "a", SimDuration{});
  ProbeNode b(sim, "b", SimDuration{});
  EXPECT_NE(a.sim_id(), 0u);
  EXPECT_LT(a.sim_id(), b.sim_id());
  std::uint64_t old_id;
  {
    ProbeNode c(sim, "c", SimDuration{});
    old_id = c.sim_id();
  }
  ProbeNode d(sim, "d", SimDuration{});
  EXPECT_GT(d.sim_id(), old_id);  // ids from destroyed nodes are retired
}

TEST(NodeIds, DestroyedNodeConfigCannotAliasNewNode) {
  // Regression: gateway/latency config used to be keyed by Node pointer
  // value, so a new node allocated at a dead node's address inherited its
  // config (and made reruns depend on heap layout). Ids are never reused,
  // so a successor node — whatever its address — sees clean config.
  Simulator sim;
  sim.set_default_latency(microseconds(200));
  ProbeNode b(sim, "b", SimDuration{});
  ProbeNode guard(sim, "guard", SimDuration{});
  sim.add_host_route(Ipv4Address(10, 0, 0, 2), &b);

  auto doomed = std::make_unique<ProbeNode>(sim, "doomed", SimDuration{});
  sim.set_latency(doomed.get(), &b, milliseconds(50));
  sim.set_gateway(doomed.get(), &guard);
  doomed.reset();

  // Same size/type so the allocator is likely to hand back the same slot;
  // the assertion must hold either way.
  auto successor = std::make_unique<ProbeNode>(sim, "successor", SimDuration{});
  EXPECT_EQ(sim.latency_between(successor.get(), &b).ns,
            microseconds(200).ns);
  sim.send_packet(successor.get(), make_pkt(Ipv4Address(10, 0, 0, 9),
                                            Ipv4Address(10, 0, 0, 2)));
  sim.run_all();
  EXPECT_EQ(guard.arrivals.size(), 0u);  // not diverted to the old gateway
  EXPECT_EQ(b.arrivals.size(), 1u);
}

TEST(RemoveRoutes, StopsDelivery) {
  Simulator sim;
  ProbeNode a(sim, "a", SimDuration{});
  ProbeNode sender(sim, "s", SimDuration{});
  sim.add_host_route(Ipv4Address(10, 0, 0, 1), &a);
  sim.remove_routes_to(&a);
  sim.send_packet(&sender, make_pkt(Ipv4Address(9, 9, 9, 9),
                                    Ipv4Address(10, 0, 0, 1)));
  sim.run_all();
  EXPECT_EQ(a.arrivals.size(), 0u);
  EXPECT_EQ(sim.stats().packets_dropped_no_route, 1u);
}

}  // namespace
}  // namespace dnsguard::sim
