// Attack analysis (§III.G) — each attack the paper analyzes, reproduced
// against the guard, plus operational scenarios: automatic key rotation
// under live traffic, TCP-proxy connection-lifetime enforcement, and a
// network-wide packet-conservation property via the simulator tap.
#include <gtest/gtest.h>

#include "attack/attackers.h"
#include "guard/remote_guard.h"
#include "server/authoritative_node.h"
#include "sim/simulator.h"
#include "workload/lrs_driver.h"

namespace dnsguard {
namespace {

using guard::RemoteGuardNode;
using guard::Scheme;
using net::Ipv4Address;
using workload::DriveMode;
using workload::LrsSimulatorNode;

constexpr Ipv4Address kAnsIp(10, 1, 1, 254);
constexpr Ipv4Address kGuardIp(10, 1, 1, 253);

struct Bed {
  sim::Simulator sim;
  server::AnsSimulatorNode ans{sim, "ans", {.address = kAnsIp}};
  std::unique_ptr<RemoteGuardNode> guard;
  std::unique_ptr<LrsSimulatorNode> driver;

  void make_guard(Scheme scheme,
                  std::function<void(RemoteGuardNode::Config&)> tweak = {}) {
    RemoteGuardNode::Config gc;
    gc.guard_address = kGuardIp;
    gc.ans_address = kAnsIp;
    gc.protected_zone = dns::DomainName{};
    gc.subnet_base = Ipv4Address(10, 1, 1, 0);
    gc.scheme = scheme;
    gc.rl1.per_address_rate = 1e7;
    gc.rl1.per_address_burst = 1e6;
    gc.rl2.per_host_rate = 1e7;
    gc.rl2.per_host_burst = 1e6;
    gc.proxy_conn_rate = 1e7;
    gc.proxy_conn_burst = 1e6;
    if (tweak) tweak(gc);
    guard = std::make_unique<RemoteGuardNode>(sim, "guard", gc, &ans);
    guard->install();
  }

  LrsSimulatorNode* make_driver(DriveMode mode, int concurrency = 1) {
    LrsSimulatorNode::Config dc;
    dc.address = Ipv4Address(10, 0, 1, 1);
    dc.target = {kAnsIp, net::kDnsPort};
    dc.mode = mode;
    dc.concurrency = concurrency;
    driver = std::make_unique<LrsSimulatorNode>(sim, "driver", dc);
    sim.add_host_route(dc.address, driver.get());
    return driver.get();
  }
};

// §III.E: "If a DNS guard wants to change its key periodically..." —
// rotation under live traffic must not drop a single legitimate request.
TEST(KeyRotation, AutomaticRotationIsSeamlessForHolders) {
  Bed bed;
  bed.make_guard(Scheme::ModifiedDns, [](RemoteGuardNode::Config& gc) {
    gc.key_rotation_interval = milliseconds(50);
  });
  auto* d = bed.make_driver(DriveMode::ModifiedHit, 2);
  d->start();
  bed.sim.run_for(milliseconds(240));  // spans ~4 rotations
  d->stop();
  EXPECT_GE(bed.guard->guard_stats().key_rotations, 4u);
  // The driver reuses the cookie it got at priming. One rotation keeps
  // it valid (generation-bit check); after the *second* rotation the
  // guard rejects it, the worker times out once, re-primes, and service
  // continues — a brief blip per double-rotation, not an outage.
  EXPECT_GT(d->driver_stats().completed, 300u);
  EXPECT_LT(d->driver_stats().timeouts, 12u);
}

TEST(KeyRotation, StaleCookiesRejectedAfterTwoGenerations) {
  Bed bed;
  bed.make_guard(Scheme::ModifiedDns);
  auto* d = bed.make_driver(DriveMode::ModifiedHit, 1);
  d->start();
  // Mid-run, rotate the key twice: the worker's cached cookie is now two
  // generations stale, so its next presentation must be rejected (one
  // drop), after which the worker times out, re-primes and resumes.
  bed.sim.schedule_in(milliseconds(20), [&] {
    EXPECT_EQ(bed.guard->guard_stats().spoofs_dropped, 0u);
    bed.guard->cookie_engine().rotate(111);
    bed.guard->cookie_engine().rotate(222);
  });
  bed.sim.run_for(milliseconds(120));
  d->stop();
  EXPECT_GT(bed.guard->guard_stats().spoofs_dropped, 0u);
  EXPECT_GT(d->driver_stats().completed, 10u);
}

// §III.G: "One can also obtain a host's cookie ... by sniffing the
// network". A stolen cookie passes the checker — but Rate-Limiter2
// throttles the damage to the victim host's nominal rate.
TEST(StolenCookie, RateLimitedPerSourceAddress) {
  Bed bed;
  bed.make_guard(Scheme::ModifiedDns, [](RemoteGuardNode::Config& gc) {
    gc.rl2 = ratelimit::VerifiedRequestLimiter::Config{
        .per_host_rate = 100.0, .per_host_burst = 20.0, .max_hosts = 1024};
  });
  // The attacker sniffed the victim's cookie and blasts 20K req/s with
  // the victim's source address and the CORRECT cookie.
  crypto::Cookie stolen =
      bed.guard->cookie_engine().mint(Ipv4Address(10, 99, 0, 1));
  class SnifferFlood : public attack::FloodNodeBase {
   public:
    SnifferFlood(sim::Simulator& s, Config c, crypto::Cookie cookie)
        : FloodNodeBase(s, "sniffer", std::move(c)), cookie_(cookie) {}

   protected:
    net::Packet next_packet() override {
      dns::Message q = dns::Message::query(
          static_cast<std::uint16_t>(rng_.next()),
          *dns::DomainName::parse("www.foo.com"), dns::RrType::A, false);
      guard::CookieEngine::attach_txt_cookie(q, cookie_, 0);
      return net::Packet::make_udp({net::Ipv4Address(10, 99, 0, 1), 33000},
                                   config_.target, q.encode());
    }

   private:
    crypto::Cookie cookie_;
  };
  SnifferFlood flood(bed.sim,
                     attack::FloodNodeBase::Config{
                         .own_address = Ipv4Address(10, 9, 9, 9),
                         .target = {kAnsIp, net::kDnsPort},
                         .rate = 20000},
                     stolen);
  flood.start();
  bed.sim.run_for(seconds(1));
  flood.stop();
  // All cookies verified (they are genuine!), but RL2 caps the flood.
  EXPECT_EQ(bed.guard->guard_stats().spoofs_dropped, 0u);
  EXPECT_LT(bed.guard->guard_stats().forwarded_to_ans, 150u);
  EXPECT_GT(bed.guard->guard_stats().rl2_throttled, 19000u);
}

// §III.C: connections living longer than 5x RTT are removed by the proxy.
TEST(ProxyLifetime, LongLivedConnectionsReaped) {
  Bed bed;
  bed.make_guard(Scheme::TcpRedirect, [](RemoteGuardNode::Config& gc) {
    gc.proxy_lifetime_rtt_multiple = 5.0;
    gc.estimated_rtt = microseconds(400);
  });
  // Open a TCP connection by hand and never use it.
  tcp::TcpStack client(
      [&](net::Packet p) {
        bed.sim.send_packet(nullptr, std::move(p));
      },
      [&] { return bed.sim.now(); }, tcp::TcpStack::Callbacks{},
      tcp::TcpStack::Options{});
  // Route the client address so SYN-ACKs come back to it... use a relay
  // node for delivery.
  class Relay : public sim::Node {
   public:
    Relay(sim::Simulator& s, tcp::TcpStack* stack)
        : sim::Node(s, "relay"), stack_(stack) {}

   protected:
    SimDuration process(const net::Packet& p) override {
      stack_->handle_packet(p);
      return SimDuration{};
    }

   private:
    tcp::TcpStack* stack_;
  } relay(bed.sim, &client);
  bed.sim.add_host_route(Ipv4Address(10, 0, 1, 7), &relay);

  client.connect({Ipv4Address(10, 0, 1, 7), 4000}, {kAnsIp, net::kDnsPort});
  bed.sim.run_for(milliseconds(1));
  EXPECT_EQ(bed.guard->proxy_connections(), 1u);
  // 5 x 0.4 ms = 2 ms lifetime; after 10 ms it must be gone.
  bed.sim.run_for(milliseconds(10));
  EXPECT_EQ(bed.guard->proxy_connections(), 0u);
}

// Simulator-wide conservation property, observed through the tap: every
// packet accepted into the network is delivered or accounted as dropped,
// under a chaotic mix of legitimate traffic and floods.
TEST(Conservation, TapSeesExactlyAcceptedPackets) {
  Bed bed;
  bed.make_guard(Scheme::NsName);
  auto* d = bed.make_driver(DriveMode::NsNameMiss, 4);
  attack::SpoofedFloodNode flood(bed.sim, "flood",
                                 attack::FloodNodeBase::Config{
                                     .own_address = Ipv4Address(10, 9, 9, 9),
                                     .target = {kAnsIp, net::kDnsPort},
                                     .rate = 20000});
  std::uint64_t tapped = 0;
  bed.sim.set_tap([&](SimTime, const sim::Node*, const sim::Node*,
                      const net::Packet&) { tapped++; });
  d->start();
  flood.start();
  bed.sim.run_for(milliseconds(200));
  flood.stop();
  d->stop();
  bed.sim.run_for(seconds(1));  // drain
  const auto& s = bed.sim.stats();
  // The tap fires for routed packets (not no-route drops).
  EXPECT_EQ(tapped, s.packets_sent - s.packets_dropped_no_route);
  EXPECT_EQ(s.packets_sent,
            s.packets_delivered + s.packets_dropped_no_route +
                s.packets_dropped_queue_full);
}

// §III.G: "an attacker can distribute his attack requests randomly in the
// cookie range" — the guard's *only* false negatives. Everything else is
// zero false negative AND zero false positive over a long adversarial mix.
TEST(FalseRates, MixedTrafficLongRun) {
  Bed bed;
  bed.make_guard(Scheme::ModifiedDns);
  auto* d = bed.make_driver(DriveMode::ModifiedHit, 8);
  attack::SpoofedFloodNode flood(
      bed.sim, "flood",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                                    .target = {kAnsIp, net::kDnsPort},
                                    .rate = 30000},
      attack::SpoofedFloodNode::SpoofConfig{.random_txt_cookie = true});
  d->start();
  flood.start();
  bed.sim.run_for(seconds(1));
  flood.stop();
  d->stop();
  bed.sim.run_for(milliseconds(50));

  // False positives: zero — every legitimate exchange completed.
  EXPECT_EQ(d->driver_stats().timeouts, 0u);
  EXPECT_GT(d->driver_stats().completed, 1000u);
  // False negatives: zero at 2^128 range — the ANS saw only the
  // legitimate traffic (completed + 8 primings + up to 8 in flight).
  EXPECT_LE(bed.ans.ans_stats().udp_queries,
            d->driver_stats().completed + 17);
  // Every attack packet was checked and dropped.
  EXPECT_GT(bed.guard->guard_stats().spoofs_dropped, 29000u);
}

}  // namespace
}  // namespace dnsguard
