// DNS wire-format edge cases beyond the basic round-trips: chained
// compression pointers, compression-offset limits, OPT records, maximal
// messages, and adversarial structures.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dns/message.h"

namespace dnsguard::dns {
namespace {

TEST(CompressionEdge, PointerToPointerChainDecodes) {
  // Hand-craft: name A = "foo.com" at offset 0; name B = pointer to A;
  // name C = "www" + pointer to B's target. Decoders must follow chains.
  ByteWriter w;
  // offset 0: foo.com
  w.u8(3);
  w.raw(std::string_view("foo"));
  w.u8(3);
  w.raw(std::string_view("com"));
  w.u8(0);
  std::size_t b_at = w.size();  // offset 9: pointer -> 0
  w.u16(0xc000);
  std::size_t c_at = w.size();  // offset 11: www + pointer -> 9... a
  w.u8(3);                      // pointer target must be < current pos:
  w.raw(std::string_view("www"));
  w.u16(0xc000 | static_cast<std::uint16_t>(b_at));

  Cursor r(w.view());
  r.skip(c_at);
  auto name = read_name(r);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->to_string(), "www.foo.com.");
}

TEST(CompressionEdge, MaxJumpBudgetEnforced) {
  // A long chain of backward pointers: p0 = name, p1 -> p0, p2 -> p1 ...
  // More than 32 jumps must be rejected (loop-protection budget).
  ByteWriter w;
  w.u8(1);
  w.raw(std::string_view("x"));
  w.u8(0);  // offset 0: "x."
  std::vector<std::size_t> offsets{0};
  for (int i = 0; i < 40; ++i) {
    offsets.push_back(w.size());
    w.u16(static_cast<std::uint16_t>(0xc000 | offsets[static_cast<std::size_t>(i)]));
  }
  Cursor r(w.view());
  r.skip(offsets.back());
  EXPECT_FALSE(read_name(r).has_value());
}

TEST(CompressionEdge, CompressorSkipsUnreachableOffsets) {
  // Names written beyond offset 0x3fff cannot be pointer targets; the
  // compressor must fall back to literal labels (and decode must work).
  ByteWriter w;
  NameCompressor c;
  Bytes padding(0x4000, 0);
  w.raw(BytesView(padding));
  auto name = *DomainName::parse("deep.example.com");
  c.write(w, name);   // at offset 0x4000: recorded but unreachable
  std::size_t second_at = w.size();
  c.write(w, name);   // must NOT emit a pointer to 0x4000
  Cursor r(w.view());
  r.skip(second_at);
  auto decoded = read_name(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, name);
}

TEST(CompressionEdge, CaseInsensitiveSuffixSharing) {
  // "WWW.FOO.COM" then "mail.foo.com": the compressor's canonical keys
  // are case-insensitive, so the suffix is shared.
  ByteWriter w;
  NameCompressor c;
  c.write(w, *DomainName::parse("WWW.FOO.COM"));
  std::size_t first = w.size();
  c.write(w, *DomainName::parse("mail.foo.com"));
  EXPECT_EQ(w.size() - first, 5u + 2u);  // "mail" + pointer
}

TEST(OptEdge, OptRecordRoundTripsWithPayloadSize) {
  Message m;
  m.additional.push_back(ResourceRecord{DomainName{}, RrType::OPT,
                                        RrClass::IN, 0, OptRdata{4096}});
  auto d = Message::decode(BytesView(m.encode()));
  ASSERT_TRUE(d.has_value());
  ASSERT_EQ(d->additional.size(), 1u);
  EXPECT_EQ(d->additional[0].type, RrType::OPT);
  EXPECT_EQ(std::get<OptRdata>(d->additional[0].rdata).udp_payload_size,
            4096);
}

TEST(MessageEdge, MaximalLabelAndNameSurvive) {
  std::string label63(63, 'a');
  // 63+63+63+61 + dots = 255 wire bytes exactly (4 length bytes + 250
  // label bytes + root).
  std::string name = label63 + "." + label63 + "." + label63 + "." +
                     std::string(59, 'b');
  auto qname = DomainName::parse(name);
  ASSERT_TRUE(qname.has_value());
  Message q = Message::query(1, *qname, RrType::A, false);
  auto d = Message::decode(BytesView(q.encode()));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->questions[0].qname, *qname);
}

TEST(MessageEdge, ManyRecordsRoundTrip) {
  Message m;
  m.header.qr = true;
  for (int i = 0; i < 200; ++i) {
    m.answers.push_back(ResourceRecord::a(
        *DomainName::parse("n" + std::to_string(i) + ".example"),
        net::Ipv4Address(static_cast<std::uint32_t>(i)), 60));
  }
  auto d = Message::decode(BytesView(m.encode()));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->answers.size(), 200u);
  EXPECT_EQ(*d, m);
}

TEST(MessageEdge, EmptyTxtStringAllowed) {
  Message m;
  TxtRdata txt;
  txt.strings.push_back(Bytes{});
  m.answers.push_back(ResourceRecord::txt(*DomainName::parse("e.x"),
                                          std::move(txt), 1));
  auto d = Message::decode(BytesView(m.encode()));
  ASSERT_TRUE(d.has_value());
  ASSERT_EQ(std::get<TxtRdata>(d->answers[0].rdata).strings.size(), 1u);
  EXPECT_TRUE(std::get<TxtRdata>(d->answers[0].rdata).strings[0].empty());
}

TEST(MessageEdge, RdlengthLyingShortRejected) {
  // An A record whose RDLENGTH claims 3 bytes.
  Message m;
  m.answers.push_back(ResourceRecord::a(*DomainName::parse("a.b"),
                                        net::Ipv4Address(1, 2, 3, 4), 1));
  Bytes wire = m.encode();
  // Locate the RDLENGTH (last 6 bytes are rdlength+rdata for the A rec).
  wire[wire.size() - 5] = 3;  // low byte of RDLENGTH 4 -> 3
  EXPECT_FALSE(Message::decode(BytesView(wire)).has_value());
}

TEST(MessageEdge, NsRdataWithTrailingJunkRejected) {
  // NS RDATA must be exactly one name; append junk inside RDLENGTH.
  Message m;
  m.authority.push_back(ResourceRecord::ns(*DomainName::parse("com"),
                                           *DomainName::parse("ns.com"), 1));
  Bytes wire = m.encode();
  // Easier: craft a raw record type NS with oversized RDATA.
  Message m2;
  m2.authority.push_back(ResourceRecord{
      *DomainName::parse("com"), RrType::NS, RrClass::IN, 1,
      RawRdata{static_cast<std::uint16_t>(RrType::NS), Bytes{0, 0xff}}});
  // RawRdata with type NS encodes junk bytes as NS RDATA.
  EXPECT_FALSE(Message::decode(BytesView(m2.encode())).has_value());
}

TEST(MessageEdge, QueryWithZeroQuestionsDecodes) {
  Message m;  // e.g. some keepalive-style packets
  auto d = Message::decode(BytesView(m.encode()));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->question(), nullptr);
}

// Property: decode(encode(m)) == m for messages stuffed with every RDATA
// type at once.
class KitchenSink : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KitchenSink, FullMessageRoundTrip) {
  dnsguard::Rng rng(GetParam());
  Message m;
  m.header.id = static_cast<std::uint16_t>(rng.next());
  m.header.qr = true;
  m.header.aa = true;
  m.questions.push_back(Question{*DomainName::parse("www.foo.com"),
                                 RrType::A, RrClass::IN});
  m.answers.push_back(ResourceRecord::a(*DomainName::parse("www.foo.com"),
                                        net::Ipv4Address(1, 2, 3, 4), 60));
  m.answers.push_back(ResourceRecord::cname(
      *DomainName::parse("alias.foo.com"), *DomainName::parse("www.foo.com"),
      60));
  SoaRdata soa;
  soa.mname = *DomainName::parse("ns1.foo.com");
  soa.rname = *DomainName::parse("admin.foo.com");
  soa.serial = static_cast<std::uint32_t>(rng.next());
  m.authority.push_back(ResourceRecord::soa(*DomainName::parse("foo.com"),
                                            std::move(soa), 300));
  m.authority.push_back(ResourceRecord::ns(*DomainName::parse("foo.com"),
                                           *DomainName::parse("ns1.foo.com"),
                                           300));
  Bytes cookie(16);
  for (auto& b : cookie) b = static_cast<std::uint8_t>(rng.next());
  m.additional.push_back(ResourceRecord::txt(
      DomainName{}, TxtRdata::single(BytesView(cookie)), 0));
  m.additional.push_back(ResourceRecord{DomainName{}, RrType::OPT,
                                        RrClass::IN, 0, OptRdata{1232}});
  auto d = Message::decode(BytesView(m.encode()));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KitchenSink,
                         ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace dnsguard::dns
