// Unit tests for the byte codec, hex and RNG foundations.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/hex.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/time.h"

namespace dnsguard {
namespace {

TEST(ByteWriter, WritesBigEndian) {
  ByteWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789abcde);
  ASSERT_EQ(w.size(), 7u);
  const Bytes& b = w.bytes();
  EXPECT_EQ(b[0], 0x12);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0x56);
  EXPECT_EQ(b[3], 0x78);
  EXPECT_EQ(b[4], 0x9a);
  EXPECT_EQ(b[5], 0xbc);
  EXPECT_EQ(b[6], 0xde);
}

TEST(ByteWriter, PatchU16Overwrites) {
  ByteWriter w;
  w.u16(0);
  w.u32(0xdeadbeef);
  w.patch_u16(0, 0xcafe);
  EXPECT_EQ(w.bytes()[0], 0xca);
  EXPECT_EQ(w.bytes()[1], 0xfe);
}

TEST(ByteWriter, PatchBeyondEndIsIgnored) {
  ByteWriter w;
  w.u8(1);
  w.patch_u16(0, 0xffff);  // would need 2 bytes, only 1 present
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.bytes()[0], 1);
}

TEST(ByteReader, RoundTripsWriter) {
  ByteWriter w;
  w.u8(7);
  w.u16(1024);
  w.u32(123456789);
  w.raw(std::string_view("abc"));
  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 1024);
  EXPECT_EQ(r.u32(), 123456789u);
  BytesView s = r.raw(3);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(s[0], 'a');
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, UnderflowSetsError) {
  Bytes data{1, 2};
  ByteReader r{BytesView(data)};
  r.u32();
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, SeekBeyondEndFails) {
  Bytes data{1, 2, 3};
  ByteReader r{BytesView(data)};
  r.seek(4);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, SeekSupportsRandomAccess) {
  Bytes data{10, 20, 30, 40};
  ByteReader r{BytesView(data)};
  r.skip(3);
  r.seek(1);
  EXPECT_EQ(r.u8(), 20);
  EXPECT_TRUE(r.ok());
}

TEST(Hex, EncodesLowercase) {
  Bytes data{0x00, 0xff, 0xa1, 0x0b};
  EXPECT_EQ(hex_encode(BytesView(data)), "00ffa10b");
}

TEST(Hex, DecodeRoundTrips) {
  auto out = hex_decode("00ffa10b");
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, (Bytes{0x00, 0xff, 0xa1, 0x0b}));
}

TEST(Hex, DecodeAcceptsUppercase) {
  auto out = hex_decode("DEADBEEF");
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, DecodeRejectsOddLength) {
  EXPECT_FALSE(hex_decode("abc").has_value());
}

TEST(Hex, DecodeRejectsNonHex) {
  EXPECT_FALSE(hex_decode("zz").has_value());
  EXPECT_FALSE(is_hex("PRa1"));
  EXPECT_TRUE(is_hex("a1b2c3d4"));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) same++;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(5);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) seen[rng.bounded(10)]++;
  for (int count : seen) EXPECT_GT(count, 800);  // roughly uniform
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(SimTimeArithmetic, Works) {
  SimTime t{1000};
  SimDuration d = milliseconds(2);
  EXPECT_EQ((t + d).ns, 1000 + 2000000);
  EXPECT_EQ((t + d - t).ns, d.ns);
  EXPECT_EQ(milliseconds(1).millis(), 1.0);
  EXPECT_EQ(seconds(1).seconds(), 1.0);
  EXPECT_EQ((microseconds(3) * 4).ns, 12000);
}

TEST(FormatDuration, ChoosesUnits) {
  EXPECT_EQ(format_duration(nanoseconds(5)), "5ns");
  EXPECT_EQ(format_duration(microseconds(5)), "5.000us");
  EXPECT_EQ(format_duration(milliseconds(5)), "5.000ms");
  EXPECT_EQ(format_duration(seconds(5)), "5.000s");
}

TEST(RunningStats, MeanMinMax) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
}

TEST(Percentiles, ExactQuantiles) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_NEAR(p.median(), 50.5, 1e-9);
  EXPECT_NEAR(p.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(p.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(p.percentile(90), 90.1, 1e-9);
  EXPECT_NEAR(p.mean(), 50.5, 1e-9);
}

TEST(Percentiles, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.percentile(50), 0.0);
}

}  // namespace
}  // namespace dnsguard
