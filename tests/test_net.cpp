// IPv4 addressing, header wire formats and full packet round-trips.
#include <gtest/gtest.h>

#include "net/headers.h"
#include "net/ipv4.h"
#include "net/packet.h"

namespace dnsguard::net {
namespace {

TEST(Ipv4Address, FormatAndParse) {
  Ipv4Address a(192, 168, 1, 42);
  EXPECT_EQ(a.to_string(), "192.168.1.42");
  auto parsed = Ipv4Address::parse("192.168.1.42");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, a);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 ").has_value());
}

TEST(Ipv4Address, SubnetMembership) {
  Ipv4Address base(10, 1, 2, 0);
  EXPECT_TRUE(Ipv4Address(10, 1, 2, 200).in_subnet(base, 24));
  EXPECT_FALSE(Ipv4Address(10, 1, 3, 1).in_subnet(base, 24));
  EXPECT_TRUE(Ipv4Address(10, 1, 3, 1).in_subnet(base, 16));
  EXPECT_TRUE(Ipv4Address(93, 4, 5, 6).in_subnet(base, 0));
  EXPECT_TRUE(base.in_subnet(base, 32));
  EXPECT_FALSE(Ipv4Address(10, 1, 2, 1).in_subnet(base, 32));
}

TEST(InternetChecksum, KnownVector) {
  // Classic example from RFC 1071 discussions.
  Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  std::uint16_t sum = internet_checksum(BytesView(data));
  // Verify the defining property instead of a magic constant: appending
  // the checksum makes the total sum come out as zero-complement.
  Bytes with_sum = data;
  with_sum.push_back(static_cast<std::uint8_t>(sum >> 8));
  with_sum.push_back(static_cast<std::uint8_t>(sum));
  EXPECT_EQ(internet_checksum(BytesView(with_sum)), 0);
}

TEST(InternetChecksum, OddLength) {
  Bytes data{0xab, 0xcd, 0xef};
  std::uint16_t sum = internet_checksum(BytesView(data));
  Bytes padded = data;
  padded.push_back(0);  // pad to even, then append checksum
  (void)padded;
  EXPECT_NE(sum, 0);
}

TEST(Ipv4Header, EncodeDecodeRoundTrip) {
  Ipv4Header h;
  h.src = Ipv4Address(10, 0, 0, 1);
  h.dst = Ipv4Address(10, 0, 0, 2);
  h.proto = IpProto::Udp;
  h.ttl = 61;
  ByteWriter w;
  h.encode(w, 100);
  ByteReader r(w.view());
  auto d = Ipv4Header::decode(r);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src, h.src);
  EXPECT_EQ(d->dst, h.dst);
  EXPECT_EQ(d->ttl, 61);
  EXPECT_EQ(d->total_length, kIpv4HeaderSize + 100);
}

TEST(Ipv4Header, CorruptedChecksumRejected) {
  Ipv4Header h;
  h.src = Ipv4Address(1, 2, 3, 4);
  h.dst = Ipv4Address(5, 6, 7, 8);
  ByteWriter w;
  h.encode(w, 0);
  Bytes bytes = std::move(w).take();
  bytes[8] ^= 0xff;  // flip TTL without fixing the checksum
  ByteReader r{BytesView(bytes)};
  EXPECT_FALSE(Ipv4Header::decode(r).has_value());
}

TEST(TcpFlags, ByteRoundTrip) {
  TcpFlags f{.fin = true, .syn = false, .rst = true, .psh = false,
             .ack = true};
  EXPECT_EQ(TcpFlags::from_byte(f.to_byte()), f);
}

TEST(Packet, UdpWireRoundTrip) {
  Bytes payload{1, 2, 3, 4, 5};
  Packet p = Packet::make_udp({Ipv4Address(10, 0, 0, 1), 1234},
                              {Ipv4Address(10, 0, 0, 2), 53}, payload);
  Bytes wire = p.to_wire();
  EXPECT_EQ(wire.size(), p.wire_size());
  auto q = Packet::from_wire(BytesView(wire));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->src().to_string(), "10.0.0.1:1234");
  EXPECT_EQ(q->dst().to_string(), "10.0.0.2:53");
  EXPECT_EQ(q->payload, payload);
}

TEST(Packet, TcpWireRoundTrip) {
  Bytes payload{9, 8, 7};
  Packet p = Packet::make_tcp({Ipv4Address(10, 0, 0, 1), 40000},
                              {Ipv4Address(10, 0, 0, 2), 53},
                              TcpFlags{.psh = true, .ack = true}, 1000, 2000,
                              payload);
  auto q = Packet::from_wire(BytesView(p.to_wire()));
  ASSERT_TRUE(q.has_value());
  ASSERT_TRUE(q->is_tcp());
  EXPECT_EQ(q->tcp().seq, 1000u);
  EXPECT_EQ(q->tcp().ack, 2000u);
  EXPECT_TRUE(q->tcp().flags.psh);
  EXPECT_TRUE(q->tcp().flags.ack);
  EXPECT_EQ(q->payload, payload);
}

TEST(Packet, TruncatedWireRejected) {
  Packet p = Packet::make_udp({Ipv4Address(1, 1, 1, 1), 1},
                              {Ipv4Address(2, 2, 2, 2), 2}, Bytes{1, 2, 3});
  Bytes wire = p.to_wire();
  wire.pop_back();
  EXPECT_FALSE(Packet::from_wire(BytesView(wire)).has_value());
}

TEST(Packet, WireSizeAccountsHeaders) {
  Packet u = Packet::make_udp({Ipv4Address(1, 1, 1, 1), 1},
                              {Ipv4Address(2, 2, 2, 2), 2}, Bytes(30, 0));
  EXPECT_EQ(u.wire_size(), 20u + 8u + 30u);
  Packet t = Packet::make_tcp({Ipv4Address(1, 1, 1, 1), 1},
                              {Ipv4Address(2, 2, 2, 2), 2}, TcpFlags{}, 0, 0,
                              Bytes(30, 0));
  EXPECT_EQ(t.wire_size(), 20u + 20u + 30u);
}

// Property: UDP packets of many payload sizes survive the wire.
class PacketSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PacketSizeSweep, RoundTrips) {
  Bytes payload(GetParam(), 0xab);
  Packet p = Packet::make_udp({Ipv4Address(10, 9, 8, 7), 5353},
                              {Ipv4Address(7, 8, 9, 10), 53}, payload);
  auto q = Packet::from_wire(BytesView(p.to_wire()));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->payload.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PacketSizeSweep,
                         ::testing::Values(0u, 1u, 12u, 128u, 512u, 1400u));

}  // namespace
}  // namespace dnsguard::net
