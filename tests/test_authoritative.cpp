// AuthoritativeServerNode (BIND-like) and AnsSimulatorNode specifics:
// cost-model capacity, TTL override, UDP truncation, TCP service,
// connection reaping, malformed input.
#include <gtest/gtest.h>

#include "server/authoritative_node.h"
#include "server/zone.h"
#include "sim/simulator.h"
#include "workload/lrs_driver.h"

namespace dnsguard::server {
namespace {

using net::Ipv4Address;
using net::Packet;

constexpr Ipv4Address kAnsIp(10, 0, 0, 1);

class ProbeNode : public sim::Node {
 public:
  explicit ProbeNode(sim::Simulator& s) : sim::Node(s, "probe") {}
  std::vector<Packet> received;

 protected:
  SimDuration process(const Packet& p) override {
    received.push_back(p);
    return SimDuration{};
  }
};

struct Bed {
  sim::Simulator sim;
  std::unique_ptr<AuthoritativeServerNode> ans;
  ProbeNode probe{sim};

  explicit Bed(AuthoritativeServerNode::Config cfg = {.address = kAnsIp}) {
    cfg.address = kAnsIp;
    ans = std::make_unique<AuthoritativeServerNode>(sim, "ans", cfg);
    auto h = make_example_hierarchy(kAnsIp, Ipv4Address(10, 0, 0, 2),
                                    Ipv4Address(10, 0, 0, 3));
    ans->add_zone(std::move(h.root));
    sim.add_host_route(kAnsIp, ans.get());
    sim.add_host_route(Ipv4Address(10, 0, 9, 9), &probe);
  }

  dns::Message ask(const dns::Message& q) {
    probe.received.clear();
    sim.send_packet(&probe,
                    Packet::make_udp({Ipv4Address(10, 0, 9, 9), 40000},
                                     {kAnsIp, net::kDnsPort}, q.encode()));
    sim.run_for(milliseconds(10));
    if (probe.received.empty()) return dns::Message{};
    return dns::Message::decode(BytesView(probe.received[0].payload))
        .value_or(dns::Message{});
  }
};

TEST(BindNode, AnswersOverUdp) {
  Bed bed;
  auto resp = bed.ask(dns::Message::query(
      7, *dns::DomainName::parse("a.root-servers.net"), dns::RrType::A,
      false));
  EXPECT_TRUE(resp.header.qr);
  ASSERT_EQ(resp.answers.size(), 1u);
  EXPECT_EQ(bed.ans->ans_stats().udp_queries, 1u);
}

TEST(BindNode, TtlOverrideRewritesEverySection) {
  AuthoritativeServerNode::Config cfg{.address = kAnsIp};
  cfg.ttl_override = 0;
  Bed bed(cfg);
  auto resp = bed.ask(dns::Message::query(
      7, *dns::DomainName::parse("www.foo.com"), dns::RrType::A, false));
  // The root zone refers to com: NS in authority, glue in additional.
  ASSERT_FALSE(resp.authority.empty());
  for (const auto& rr : resp.authority) EXPECT_EQ(rr.ttl, 0u);
  for (const auto& rr : resp.additional) EXPECT_EQ(rr.ttl, 0u);
}

TEST(BindNode, OversizeUdpResponseTruncated) {
  Bed bed;
  Zone big(dns::DomainName{});
  for (int i = 0; i < 40; ++i) {
    big.add_a("big.example.", Ipv4Address(192, 0, 3, static_cast<std::uint8_t>(i)));
  }
  bed.ans->add_zone(std::move(big));
  auto resp = bed.ask(dns::Message::query(
      9, *dns::DomainName::parse("big.example"), dns::RrType::A, false));
  EXPECT_TRUE(resp.header.tc);
  EXPECT_TRUE(resp.answers.empty());
  EXPECT_EQ(bed.ans->ans_stats().truncated, 1u);
  // The TC response itself must fit comfortably in a UDP message.
  EXPECT_LT(resp.encode().size(), 100u);
}

TEST(BindNode, ServesDnsOverTcp) {
  Bed bed;
  // Use the driver's TCP mode as a ready-made DNS-over-TCP client.
  workload::LrsSimulatorNode::Config dc;
  dc.address = Ipv4Address(10, 0, 9, 8);
  dc.target = {kAnsIp, net::kDnsPort};
  dc.mode = workload::DriveMode::TcpDirect;
  dc.concurrency = 1;
  dc.timeout = milliseconds(100);
  dc.qname = "a.root-servers.net.";
  workload::LrsSimulatorNode client(bed.sim, "tcp-client", dc);
  bed.sim.add_host_route(dc.address, &client);

  client.start();
  bed.sim.run_for(milliseconds(50));
  client.stop();
  EXPECT_GT(client.driver_stats().completed, 5u);
  EXPECT_GT(bed.ans->ans_stats().tcp_queries, 5u);
}

TEST(BindNode, UdpCapacityMatchesCalibration) {
  // Offered 20K req/s against the 14K req/s cost model: utilization
  // saturates and completions cap out around capacity.
  Bed bed;
  workload::LrsSimulatorNode::Config dc;
  dc.address = Ipv4Address(10, 0, 9, 8);
  dc.target = {kAnsIp, net::kDnsPort};
  dc.mode = workload::DriveMode::PlainUdp;
  dc.concurrency = 64;
  dc.timeout = milliseconds(50);
  dc.qname = "a.root-servers.net.";
  workload::LrsSimulatorNode client(bed.sim, "client", dc);
  bed.sim.add_host_route(dc.address, &client);

  client.start();
  bed.sim.run_for(milliseconds(500));
  client.reset_driver_stats();
  bed.ans->reset_stats();
  bed.sim.run_for(seconds(1));
  client.stop();
  double tput = static_cast<double>(client.driver_stats().completed);
  EXPECT_NEAR(tput, 14000.0, 700.0);
  EXPECT_GT(bed.ans->utilization(seconds(1)), 0.97);
}

TEST(BindNode, MalformedPacketsCountedNotCrashing) {
  Bed bed;
  bed.sim.send_packet(&bed.probe,
                      Packet::make_udp({Ipv4Address(10, 0, 9, 9), 40000},
                                       {kAnsIp, net::kDnsPort},
                                       Bytes{1, 2, 3}));
  // A response (qr=1) sent at the server must be ignored as a query.
  dns::Message bogus;
  bogus.header.qr = true;
  bogus.questions.push_back(dns::Question{
      *dns::DomainName::parse("x.example"), dns::RrType::A,
      dns::RrClass::IN});
  bed.sim.send_packet(&bed.probe,
                      Packet::make_udp({Ipv4Address(10, 0, 9, 9), 40000},
                                       {kAnsIp, net::kDnsPort},
                                       bogus.encode()));
  bed.sim.run_for(milliseconds(10));
  EXPECT_EQ(bed.ans->ans_stats().malformed, 2u);
  EXPECT_EQ(bed.ans->ans_stats().responses, 0u);
}

TEST(BindNode, WrongPortIgnored) {
  Bed bed;
  dns::Message q = dns::Message::query(
      1, *dns::DomainName::parse("a.root-servers.net"), dns::RrType::A,
      false);
  bed.sim.send_packet(&bed.probe,
                      Packet::make_udp({Ipv4Address(10, 0, 9, 9), 40000},
                                       {kAnsIp, 5353}, q.encode()));
  bed.sim.run_for(milliseconds(10));
  EXPECT_EQ(bed.ans->ans_stats().udp_queries, 0u);
}

TEST(AnsSim, CapacityMatchesCalibration) {
  sim::Simulator sim;
  AnsSimulatorNode ans(sim, "anssim", {.address = kAnsIp});
  sim.add_host_route(kAnsIp, &ans);
  workload::LrsSimulatorNode::Config dc;
  dc.address = Ipv4Address(10, 0, 9, 8);
  dc.target = {kAnsIp, net::kDnsPort};
  dc.mode = workload::DriveMode::PlainUdp;
  dc.concurrency = 256;
  workload::LrsSimulatorNode client(sim, "client", dc);
  sim.add_host_route(dc.address, &client);

  client.start();
  sim.run_for(milliseconds(500));
  client.reset_driver_stats();
  sim.run_for(seconds(1));
  client.stop();
  EXPECT_NEAR(static_cast<double>(client.driver_stats().completed), 110000.0,
              3000.0);
}

TEST(AnsSim, EchoesQuestionWithConfiguredAnswer) {
  sim::Simulator sim;
  AnsSimulatorNode ans(sim, "anssim",
                       {.address = kAnsIp,
                        .answer_address = Ipv4Address(203, 0, 113, 7),
                        .answer_ttl = 42});
  sim.add_host_route(kAnsIp, &ans);
  ProbeNode probe(sim);
  sim.add_host_route(Ipv4Address(10, 0, 9, 9), &probe);
  dns::Message q = dns::Message::query(
      5, *dns::DomainName::parse("anything.example"), dns::RrType::A, false);
  sim.send_packet(&probe, Packet::make_udp({Ipv4Address(10, 0, 9, 9), 40000},
                                           {kAnsIp, net::kDnsPort},
                                           q.encode()));
  sim.run_for(milliseconds(10));
  ASSERT_EQ(probe.received.size(), 1u);
  auto resp = dns::Message::decode(BytesView(probe.received[0].payload));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->header.id, 5);
  ASSERT_EQ(resp->answers.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(resp->answers[0].rdata).address,
            Ipv4Address(203, 0, 113, 7));
  EXPECT_EQ(resp->answers[0].ttl, 42u);
}

}  // namespace
}  // namespace dnsguard::server
