// Zone database and authoritative answer engine.
#include <gtest/gtest.h>

#include "server/zone.h"

namespace dnsguard::server {
namespace {

using dns::DomainName;
using dns::Message;
using dns::RrType;

Message query(const char* name, RrType type = RrType::A) {
  return Message::query(7, *DomainName::parse(name), type, false);
}

AuthoritativeEngine engine_with_hierarchy_zone(const char* which) {
  auto h = make_example_hierarchy(net::Ipv4Address(10, 0, 0, 1),
                                  net::Ipv4Address(10, 0, 0, 2),
                                  net::Ipv4Address(10, 0, 0, 3));
  AuthoritativeEngine e;
  if (std::string(which) == "root") e.add_zone(std::move(h.root));
  if (std::string(which) == "com") e.add_zone(std::move(h.com));
  if (std::string(which) == "foo") e.add_zone(std::move(h.foo_com));
  return e;
}

TEST(Zone, RejectsOutOfZoneNonGlue) {
  Zone z(*DomainName::parse("foo.com"));
  EXPECT_FALSE(z.add(dns::ResourceRecord::ns(*DomainName::parse("bar.org"),
                                             *DomainName::parse("ns.bar.org"),
                                             60)));
  // Out-of-zone A records are accepted as glue.
  EXPECT_TRUE(z.add(dns::ResourceRecord::a(*DomainName::parse("ns.bar.org"),
                                           net::Ipv4Address(1, 1, 1, 1), 60)));
}

TEST(Zone, DelegationDetection) {
  auto h = make_example_hierarchy(net::Ipv4Address(10, 0, 0, 1),
                                  net::Ipv4Address(10, 0, 0, 2),
                                  net::Ipv4Address(10, 0, 0, 3));
  auto cut = h.com.delegation_for(*DomainName::parse("www.foo.com"));
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(cut->to_string(), "foo.com.");
  // The apex NS set is not a delegation.
  EXPECT_FALSE(h.com.delegation_for(*DomainName::parse("com")).has_value());
}

TEST(Engine, RootGivesReferralForCom) {
  auto e = engine_with_hierarchy_zone("root");
  Answer a = e.answer(query("www.foo.com"));
  EXPECT_EQ(a.kind, AnswerKind::Referral);
  EXPECT_TRUE(a.message.is_referral());
  ASSERT_FALSE(a.message.authority.empty());
  EXPECT_EQ(a.message.authority[0].name.to_string(), "com.");
  // Glue A for the delegated server must ride in additional (§III.B
  // "standard DNS delegation practice").
  ASSERT_FALSE(a.message.additional.empty());
  EXPECT_EQ(std::get<dns::ARdata>(a.message.additional[0].rdata).address,
            net::Ipv4Address(10, 0, 0, 2));
}

TEST(Engine, ComGivesReferralForFoo) {
  auto e = engine_with_hierarchy_zone("com");
  Answer a = e.answer(query("www.foo.com"));
  EXPECT_EQ(a.kind, AnswerKind::Referral);
  EXPECT_EQ(a.message.authority[0].name.to_string(), "foo.com.");
}

TEST(Engine, LeafGivesAuthoritativeAnswer) {
  auto e = engine_with_hierarchy_zone("foo");
  Answer a = e.answer(query("www.foo.com"));
  EXPECT_EQ(a.kind, AnswerKind::Authoritative);
  EXPECT_TRUE(a.message.header.aa);
  ASSERT_EQ(a.message.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(a.message.answers[0].rdata).address,
            net::Ipv4Address(192, 0, 2, 80));
}

TEST(Engine, CnameChasedInZone) {
  auto e = engine_with_hierarchy_zone("foo");
  Answer a = e.answer(query("web.foo.com"));
  EXPECT_EQ(a.kind, AnswerKind::Authoritative);
  ASSERT_EQ(a.message.answers.size(), 2u);
  EXPECT_EQ(a.message.answers[0].type, RrType::CNAME);
  EXPECT_EQ(a.message.answers[1].type, RrType::A);
}

TEST(Engine, NxDomainCarriesSoa) {
  auto e = engine_with_hierarchy_zone("foo");
  Answer a = e.answer(query("nosuch.foo.com"));
  EXPECT_EQ(a.kind, AnswerKind::NxDomain);
  EXPECT_EQ(a.message.header.rcode, dns::Rcode::NxDomain);
  ASSERT_FALSE(a.message.authority.empty());
  EXPECT_EQ(a.message.authority[0].type, RrType::SOA);
}

TEST(Engine, NoDataForWrongType) {
  auto e = engine_with_hierarchy_zone("foo");
  Answer a = e.answer(query("www.foo.com", RrType::TXT));
  EXPECT_EQ(a.kind, AnswerKind::NoData);
  EXPECT_EQ(a.message.header.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(a.message.answers.empty());
}

TEST(Engine, RefusesOutOfZone) {
  auto e = engine_with_hierarchy_zone("foo");
  Answer a = e.answer(query("www.bar.org"));
  EXPECT_EQ(a.kind, AnswerKind::Refused);
  EXPECT_EQ(a.message.header.rcode, dns::Rcode::Refused);
}

TEST(Engine, DeepestZoneWins) {
  auto h = make_example_hierarchy(net::Ipv4Address(10, 0, 0, 1),
                                  net::Ipv4Address(10, 0, 0, 2),
                                  net::Ipv4Address(10, 0, 0, 3));
  AuthoritativeEngine e;
  e.add_zone(std::move(h.com));
  e.add_zone(std::move(h.foo_com));
  // Serving both zones, the query must be answered from foo.com (deepest),
  // not referred by com.
  Answer a = e.answer(query("www.foo.com"));
  EXPECT_EQ(a.kind, AnswerKind::Authoritative);
}

TEST(Engine, MissingQuestionIsFormErr) {
  auto e = engine_with_hierarchy_zone("root");
  Message m;  // no question at all
  Answer a = e.answer(m);
  EXPECT_EQ(a.message.header.rcode, dns::Rcode::FormErr);
}

TEST(Engine, NsQueryAtApexAnswered) {
  auto e = engine_with_hierarchy_zone("foo");
  Answer a = e.answer(query("foo.com", RrType::NS));
  EXPECT_EQ(a.kind, AnswerKind::Authoritative);
  ASSERT_EQ(a.message.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::NsRdata>(a.message.answers[0].rdata)
                .nsdname.to_string(),
            "ns1.foo.com.");
}

}  // namespace
}  // namespace dnsguard::server
