// TTL-honoring resource record cache.
#include <gtest/gtest.h>

#include <cstdio>

#include "server/cache.h"

namespace dnsguard::server {
namespace {

using dns::DomainName;
using dns::ResourceRecord;
using dns::RrType;

ResourceRecord a_record(const char* name, std::uint32_t ttl,
                        std::uint8_t last_octet = 1) {
  return ResourceRecord::a(*DomainName::parse(name),
                           net::Ipv4Address(10, 0, 0, last_octet), ttl);
}

TEST(RrCache, PutGetRoundTrip) {
  RrCache cache;
  cache.put(a_record("www.foo.com", 60), SimTime{});
  auto hit = cache.get(*DomainName::parse("www.foo.com"), RrType::A,
                       SimTime{} + seconds(30));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size(), 1u);
}

TEST(RrCache, ExpiresAfterTtl) {
  RrCache cache;
  cache.put(a_record("www.foo.com", 60), SimTime{});
  EXPECT_FALSE(cache.get(*DomainName::parse("www.foo.com"), RrType::A,
                         SimTime{} + seconds(61))
                   .has_value());
}

TEST(RrCache, TtlZeroNeverCached) {
  // Fig. 5's testbed sets response TTL to 0 "to disable DNS caching";
  // RFC semantics: such records are transaction-scoped only.
  RrCache cache;
  cache.put(a_record("www.foo.com", 0), SimTime{});
  EXPECT_FALSE(cache.get(*DomainName::parse("www.foo.com"), RrType::A,
                         SimTime{})
                   .has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RrCache, CaseInsensitiveKeys) {
  RrCache cache;
  cache.put(a_record("WWW.Foo.COM", 60), SimTime{});
  EXPECT_TRUE(cache.get(*DomainName::parse("www.foo.com"), RrType::A,
                        SimTime{} + seconds(1))
                  .has_value());
}

TEST(RrCache, TypeSeparation) {
  RrCache cache;
  cache.put(a_record("foo.com", 60), SimTime{});
  EXPECT_FALSE(cache.get(*DomainName::parse("foo.com"), RrType::NS,
                         SimTime{} + seconds(1))
                   .has_value());
}

TEST(RrCache, MergesDistinctRecordsSameKey) {
  RrCache cache;
  cache.put(a_record("foo.com", 60, 1), SimTime{});
  cache.put(a_record("foo.com", 60, 2), SimTime{});
  auto hit = cache.get(*DomainName::parse("foo.com"), RrType::A,
                       SimTime{} + seconds(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size(), 2u);
}

TEST(RrCache, DuplicateRecordNotDoubled) {
  RrCache cache;
  cache.put(a_record("foo.com", 60, 1), SimTime{});
  cache.put(a_record("foo.com", 60, 1), SimTime{});
  EXPECT_EQ(cache.get(*DomainName::parse("foo.com"), RrType::A,
                      SimTime{} + seconds(1))
                ->size(),
            1u);
}

TEST(RrCache, MergeKeepsEarliestExpiry) {
  RrCache cache;
  cache.put(a_record("foo.com", 100, 1), SimTime{});
  cache.put(a_record("foo.com", 10, 2), SimTime{});
  // After 11s the merged set must be gone (no record outlives its TTL).
  EXPECT_FALSE(cache.get(*DomainName::parse("foo.com"), RrType::A,
                         SimTime{} + seconds(11))
                   .has_value());
}

TEST(RrCache, ExpiredEntryReplacedNotMerged) {
  RrCache cache;
  cache.put(a_record("foo.com", 10, 1), SimTime{});
  cache.put(a_record("foo.com", 60, 2), SimTime{} + seconds(20));
  auto hit = cache.get(*DomainName::parse("foo.com"), RrType::A,
                       SimTime{} + seconds(21));
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>((*hit)[0].rdata).address,
            net::Ipv4Address(10, 0, 0, 2));
}

TEST(RrCache, EvictRemovesEntry) {
  RrCache cache;
  cache.put(a_record("foo.com", 60), SimTime{});
  cache.evict(*DomainName::parse("foo.com"), RrType::A);
  EXPECT_FALSE(cache.get(*DomainName::parse("foo.com"), RrType::A,
                         SimTime{} + seconds(1))
                   .has_value());
}

TEST(RrCache, BoundedUnderRandomSubdomainFlood) {
  // §V state-exhaustion vector: a random-subdomain query flood must recycle
  // LRU cache slots, not grow the resolver heap without bound.
  RrCache cache(RrCache::Config{.capacity = 256, .negative_capacity = 64});
  SimTime now{};
  for (int i = 0; i < 4096; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "h%d.flood.example.com", i);
    cache.put(a_record(name, 300, static_cast<std::uint8_t>(i & 0x7f)), now);
    now = now + milliseconds(1);
  }
  EXPECT_LE(cache.size(), 256u);
  // LRU keeps the tail of the flood: the newest key must still be resident.
  EXPECT_TRUE(cache.get(*DomainName::parse("h4095.flood.example.com"),
                        RrType::A, now)
                  .has_value());
  // ... and the head must have been evicted to make room.
  EXPECT_FALSE(cache.get(*DomainName::parse("h0.flood.example.com"),
                         RrType::A, now)
                   .has_value());
}

TEST(RrCache, NegativeCacheBoundedUnderFlood) {
  RrCache cache(RrCache::Config{.capacity = 64, .negative_capacity = 32});
  SimTime now{};
  for (int i = 0; i < 512; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "nx%d.flood.example.com", i);
    cache.put_negative(*DomainName::parse(name), RrType::A,
                       dns::Rcode::NxDomain, 300, now);
    now = now + milliseconds(1);
  }
  EXPECT_LE(cache.negative_size(), 32u);
  EXPECT_TRUE(cache.get_negative(*DomainName::parse("nx511.flood.example.com"),
                                 RrType::A, now)
                  .has_value());
}

TEST(RrCache, StatsCountHitsAndMisses) {
  RrCache cache;
  cache.put(a_record("foo.com", 60), SimTime{});
  (void)cache.get(*DomainName::parse("foo.com"), RrType::A,
                  SimTime{} + seconds(1));
  (void)cache.get(*DomainName::parse("bar.com"), RrType::A,
                  SimTime{} + seconds(1));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

}  // namespace
}  // namespace dnsguard::server
