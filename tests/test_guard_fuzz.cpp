// Adversarial robustness: the guard (and the nodes behind it) must
// survive arbitrary garbage — random UDP payloads, random TCP segments,
// half-valid DNS messages — without crashing, leaking state, or letting
// anything unverified through to the ANS.
#include <gtest/gtest.h>

#include "attack/attackers.h"
#include "common/rng.h"
#include "guard/remote_guard.h"
#include "server/authoritative_node.h"
#include "sim/simulator.h"
#include "workload/lrs_driver.h"

namespace dnsguard {
namespace {

using guard::RemoteGuardNode;
using guard::Scheme;
using net::Ipv4Address;
using net::Packet;

constexpr Ipv4Address kAnsIp(10, 1, 1, 254);

struct Bed {
  sim::Simulator sim;
  server::AnsSimulatorNode ans{sim, "ans", {.address = kAnsIp}};
  std::unique_ptr<RemoteGuardNode> guard;

  explicit Bed(Scheme scheme, std::uint32_t r_y = 250) {
    RemoteGuardNode::Config gc;
    gc.guard_address = Ipv4Address(10, 1, 1, 253);
    gc.ans_address = kAnsIp;
    gc.protected_zone = dns::DomainName{};
    gc.subnet_base = Ipv4Address(10, 1, 1, 0);
    gc.r_y = r_y;
    gc.scheme = scheme;
    gc.rl1.per_address_rate = 1e7;
    gc.rl1.per_address_burst = 1e6;
    gc.rl2.per_host_rate = 1e7;
    gc.rl2.per_host_burst = 1e6;
    guard = std::make_unique<RemoteGuardNode>(sim, "guard", gc, &ans);
    guard->install();
  }
};

/// Injects raw packets from a synthetic origin.
class InjectorNode : public sim::Node {
 public:
  explicit InjectorNode(sim::Simulator& s) : sim::Node(s, "injector") {}
  void inject(Packet p) { sim().send_packet(this, std::move(p)); }

 protected:
  SimDuration process(const Packet&) override { return {}; }
};

Packet random_udp_garbage(Rng& rng) {
  Bytes payload(rng.bounded(120));
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  Ipv4Address src(static_cast<std::uint32_t>(rng.next()));
  return Packet::make_udp({src, static_cast<std::uint16_t>(rng.next())},
                          {kAnsIp, net::kDnsPort}, std::move(payload));
}

Packet random_tcp_garbage(Rng& rng) {
  Bytes payload(rng.bounded(40));
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  net::TcpFlags flags = net::TcpFlags::from_byte(
      static_cast<std::uint8_t>(rng.next()));
  Ipv4Address src(static_cast<std::uint32_t>(rng.next()));
  return Packet::make_tcp({src, static_cast<std::uint16_t>(rng.next())},
                          {kAnsIp, net::kDnsPort}, flags,
                          static_cast<std::uint32_t>(rng.next()),
                          static_cast<std::uint32_t>(rng.next()),
                          std::move(payload));
}

/// A structurally valid DNS query with randomly mutated bytes.
Packet mutated_dns_query(Rng& rng) {
  dns::Message q = dns::Message::query(
      static_cast<std::uint16_t>(rng.next()),
      *dns::DomainName::parse("www.foo.com"), dns::RrType::A, false);
  Bytes wire = q.encode();
  std::uint64_t flips = 1 + rng.bounded(6);
  for (std::uint64_t i = 0; i < flips; ++i) {
    wire[rng.bounded(wire.size())] ^= static_cast<std::uint8_t>(rng.next());
  }
  Ipv4Address src(static_cast<std::uint32_t>(rng.next()));
  Packet p = Packet::make_udp({src, 33000}, {kAnsIp, net::kDnsPort}, {});
  p.payload = std::move(wire);
  return p;
}

class GuardFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GuardFuzz, SurvivesGarbageOnEveryScheme) {
  for (Scheme scheme : {Scheme::NsName, Scheme::FabricatedNsIp,
                        Scheme::TcpRedirect, Scheme::ModifiedDns}) {
    Bed bed(scheme);
    InjectorNode injector(bed.sim);
    Rng rng(GetParam() * 1337 + static_cast<std::uint64_t>(scheme));
    for (int i = 0; i < 400; ++i) {
      switch (rng.bounded(3)) {
        case 0: injector.inject(random_udp_garbage(rng)); break;
        case 1: injector.inject(random_tcp_garbage(rng)); break;
        default: injector.inject(mutated_dns_query(rng)); break;
      }
      if (i % 50 == 0) bed.sim.run_for(milliseconds(1));
    }
    bed.sim.run_for(milliseconds(100));
    // No crash is the main assertion; also: nothing unverified reached
    // the ANS. (Mutated queries can at most earn a cookie response.)
    EXPECT_EQ(bed.guard->guard_stats().forwarded_to_ans, 0u)
        << guard::scheme_name(scheme);
    // Proxy state stays bounded even under TCP garbage.
    EXPECT_LT(bed.guard->proxy_connections(), 10u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuardFuzz,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(GuardFuzz, LegitServiceSurvivesInterleavedGarbage) {
  Bed bed(Scheme::ModifiedDns);
  // A legitimate driver races 50K garbage packets.
  workload::LrsSimulatorNode::Config dc;
  dc.address = Ipv4Address(10, 0, 1, 1);
  dc.target = {kAnsIp, net::kDnsPort};
  dc.mode = workload::DriveMode::ModifiedHit;
  dc.concurrency = 2;
  workload::LrsSimulatorNode driver(bed.sim, "driver", dc);
  bed.sim.add_host_route(dc.address, &driver);

  InjectorNode injector(bed.sim);
  Rng rng(99);
  driver.start();
  for (int burst = 0; burst < 100; ++burst) {
    for (int i = 0; i < 50; ++i) injector.inject(random_udp_garbage(rng));
    bed.sim.run_for(milliseconds(2));
  }
  driver.stop();
  EXPECT_GT(driver.driver_stats().completed, 300u);
  EXPECT_EQ(driver.driver_stats().timeouts, 0u);
}

TEST(GuardFuzz, FabricatedIpSchemeSurvivesZeroRy) {
  // Regression: with r_y == 0 the mint path clamped its divisor to 1 but
  // the verify path did not, so every minted address (base + 1) failed
  // verification and legitimate clients were treated as spoofers forever.
  Bed bed(Scheme::FabricatedNsIp, /*r_y=*/0);

  // Mint and verify must agree at the engine level.
  const Ipv4Address requester(10, 0, 2, 1);
  const Ipv4Address base(10, 1, 1, 0);
  Ipv4Address cookie2 =
      bed.guard->cookie_engine().make_cookie_address(requester, base, 0);
  EXPECT_EQ(cookie2, Ipv4Address(10, 1, 1, 1));
  EXPECT_TRUE(bed.guard->cookie_engine()
                  .verify_cookie_address_ex(requester, cookie2, base, 0)
                  .ok);

  // And end to end: a legitimate driver completes the full Fig. 2(b)
  // exchange with zero verification drops, garbage notwithstanding.
  workload::LrsSimulatorNode::Config dc;
  dc.address = requester;
  dc.target = {kAnsIp, net::kDnsPort};
  dc.mode = workload::DriveMode::FabricatedMiss;
  dc.concurrency = 2;
  workload::LrsSimulatorNode driver(bed.sim, "driver", dc);
  bed.sim.add_host_route(dc.address, &driver);

  InjectorNode injector(bed.sim);
  Rng rng(7);
  driver.start();
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 20; ++i) injector.inject(random_udp_garbage(rng));
    bed.sim.run_for(milliseconds(2));
  }
  driver.stop();
  EXPECT_GT(driver.driver_stats().completed, 20u);
  EXPECT_EQ(driver.driver_stats().timeouts, 0u);
}

TEST(GuardFuzz, SpoofedResponsesTowardAnsIgnored) {
  // Attackers may fire *responses* (qr=1) at the server address hoping to
  // confuse the rewrite machinery; they must be dropped as malformed.
  Bed bed(Scheme::NsName);
  InjectorNode injector(bed.sim);
  dns::Message fake;
  fake.header.qr = true;
  fake.header.id = 1234;
  fake.questions.push_back(dns::Question{
      *dns::DomainName::parse("com"), dns::RrType::A, dns::RrClass::IN});
  fake.answers.push_back(dns::ResourceRecord::a(
      *dns::DomainName::parse("com"), Ipv4Address(6, 6, 6, 6), 60));
  injector.inject(Packet::make_udp({Ipv4Address(10, 66, 0, 1), 53},
                                   {kAnsIp, net::kDnsPort}, fake.encode()));
  bed.sim.run_for(milliseconds(10));
  EXPECT_EQ(bed.guard->guard_stats().malformed, 1u);
  EXPECT_EQ(bed.guard->guard_stats().forwarded_to_ans, 0u);
}

}  // namespace
}  // namespace dnsguard
