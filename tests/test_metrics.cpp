// Observability layer: metric cells, the registry, the drop-reason
// taxonomy and the per-node trace ring — unit behaviour plus the
// end-to-end wiring through a spoofed-flood guard scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "attack/attackers.h"
#include "guard/remote_guard.h"
#include "obs/drop_reason.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/authoritative_node.h"
#include "sim/simulator.h"
#include "workload/lrs_driver.h"

namespace dnsguard {
namespace {

using guard::RemoteGuardNode;
using guard::Scheme;
using net::Ipv4Address;
using obs::Counter;
using obs::DropCounters;
using obs::DropReason;
using obs::Gauge;
using obs::LatencyHistogram;
using obs::MetricsRegistry;
using obs::TraceEvent;
using obs::TraceRing;
using server::AnsSimulatorNode;
using workload::DriveMode;
using workload::LrsSimulatorNode;

// --- cells -------------------------------------------------------------------

TEST(CounterCell, BehavesLikeUint64Tally) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  ++c;
  c++;
  c += 5;
  c.inc(3);
  EXPECT_EQ(c.value(), 10u);
  std::uint64_t as_int = c;  // implicit conversion, like a plain tally
  EXPECT_EQ(as_int, 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterCell, StructResetZeroesAttachedCellInPlace) {
  // `stats_ = Stats{}` is the established reset idiom; the registry holds
  // the field's address, so the value must reset without the cell moving.
  struct Stats {
    Counter hits;
  };
  Stats stats;
  MetricsRegistry registry;
  registry.attach_counter("t.hits", stats.hits);
  stats.hits += 7;
  EXPECT_EQ(registry.find_counter("t.hits")->value(), 7u);
  stats = Stats{};
  EXPECT_EQ(registry.find_counter("t.hits")->value(), 0u);
  stats.hits += 3;
  EXPECT_EQ(registry.find_counter("t.hits")->value(), 3u);
}

TEST(GaugeCell, TracksHighWaterMark) {
  Gauge g;
  g.set(5);
  g.set(12);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 12);
  g.add(-3);
  EXPECT_EQ(g.value(), 0);
  g.reset();  // clears the high-water mark, keeps the level
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
}

TEST(GaugeCell, ResetKeepsNonZeroLevelAsNewMark) {
  Gauge g;
  g.set(12);
  g.set(5);
  ASSERT_EQ(g.max(), 12);
  g.reset();
  // The mark collapses to the current level, not to zero — a live queue
  // of depth 5 is still depth 5 after the measurement window restarts.
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(g.max(), 5);
  g.set(9);
  EXPECT_EQ(g.max(), 9);
}

TEST(Histogram, EmptyPercentilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(h.percentile(p), 0.0) << "p" << p;
  }
  EXPECT_EQ(h.mean_ns(), 0.0);
}

TEST(Histogram, SingleSamplePinsEveryPercentile) {
  LatencyHistogram h;
  h.observe_ns(7000);
  for (double p : {1.0, 50.0, 99.0}) {
    EXPECT_NEAR(h.percentile(p), 7000.0, 7000.0 * 0.19) << "p" << p;
  }
  EXPECT_EQ(h.mean_ns(), 7000.0);
}

TEST(Histogram, AllSamplesInHighestBucketStayBounded) {
  // Absurd values land in the final reachable bucket; percentiles must
  // stay inside that bucket's bounds rather than running off the array.
  LatencyHistogram h;
  const std::uint64_t huge = (1ull << 62) + 123;
  for (int i = 0; i < 1000; ++i) {
    h.observe_ns(static_cast<std::int64_t>(huge));
  }
  EXPECT_EQ(h.count(), 1000u);
  std::size_t idx = LatencyHistogram::bucket_index(huge);
  ASSERT_LT(idx, LatencyHistogram::kBuckets);
  double p50 = h.percentile(50.0);
  EXPECT_GE(p50, static_cast<double>(LatencyHistogram::bucket_lower(idx)));
  EXPECT_LE(p50, static_cast<double>(LatencyHistogram::bucket_upper(idx)));
}

TEST(Histogram, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
  }
}

TEST(Histogram, BucketIndexIsMonotonicAndBounded) {
  std::size_t prev = 0;
  for (std::uint64_t v = 1; v < (1ull << 40); v = v * 2 + 1) {
    std::size_t idx = LatencyHistogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    EXPECT_LT(idx, LatencyHistogram::kBuckets);
    prev = idx;
  }
}

TEST(Histogram, PercentilesTrackExactQuantiles) {
  // Uniform 1..100us in ns: exact p-th percentile is p * 1000 ns. The
  // log-spaced buckets guarantee <= ~19% relative bucket width; with
  // interpolation the estimate should sit well inside that.
  LatencyHistogram h;
  for (int us = 1; us <= 100; ++us) {
    h.observe_ns(us * 1000);
  }
  EXPECT_EQ(h.count(), 100u);
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    double exact = p * 1000.0;
    double est = h.percentile(p);
    EXPECT_NEAR(est, exact, exact * 0.19)
        << "p" << p << " estimate " << est << " vs exact " << exact;
  }
  EXPECT_NEAR(h.mean_ns(), 50500.0, 1.0);
}

TEST(Histogram, ObserveDurationAndReset) {
  LatencyHistogram h;
  h.observe(microseconds(3));
  h.observe_ns(-5);  // clamps to zero, still counted
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum_ns(), 3000u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
}

// --- registry ----------------------------------------------------------------

TEST(Registry, OwnedCellsAreIdempotentByName) {
  MetricsRegistry r;
  Counter& a = r.counter("x.count");
  Counter& b = r.counter("x.count");
  EXPECT_EQ(&a, &b);
  a += 2;
  EXPECT_EQ(r.find_counter("x.count")->value(), 2u);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Registry, AttachCollisionGetsSuffix) {
  MetricsRegistry r;
  Counter first, second;
  EXPECT_EQ(r.attach_counter("g.rx", first), "g.rx");
  std::string renamed = r.attach_counter("g.rx", second);
  EXPECT_NE(renamed, "g.rx");
  EXPECT_EQ(renamed.rfind("g.rx", 0), 0u);  // keeps the requested prefix
  first += 1;
  second += 10;
  EXPECT_EQ(r.find_counter("g.rx")->value(), 1u);
  EXPECT_EQ(r.find_counter(renamed)->value(), 10u);
}

TEST(Registry, FindRejectsWrongKind) {
  MetricsRegistry r;
  r.counter("a");
  r.gauge("b");
  EXPECT_EQ(r.find_gauge("a"), nullptr);
  EXPECT_EQ(r.find_counter("b"), nullptr);
  EXPECT_EQ(r.find_counter("missing"), nullptr);
}

TEST(Registry, SnapshotLayout) {
  MetricsRegistry r;
  r.counter("c") += 4;
  r.gauge("g").set(7);
  LatencyHistogram& h = r.histogram("h");
  h.observe_ns(1000);
  MetricsRegistry::Snapshot snap = r.snapshot();
  auto value_of = [&](const std::string& name) -> double {
    for (const auto& [k, v] : snap) {
      if (k == name) return v;
    }
    ADD_FAILURE() << "missing snapshot key " << name;
    return -1;
  };
  EXPECT_EQ(value_of("c"), 4.0);
  EXPECT_EQ(value_of("g"), 7.0);
  EXPECT_EQ(value_of("g.max"), 7.0);
  EXPECT_EQ(value_of("h.count"), 1.0);
  EXPECT_GT(value_of("h.p50"), 0.0);
  EXPECT_GT(value_of("h.p99"), 0.0);
}

TEST(Registry, ResetValuesZeroesEverything) {
  MetricsRegistry r;
  Counter attached;
  r.attach_counter("a", attached);
  attached += 9;
  r.counter("b") += 2;
  r.histogram("h").observe_ns(5);
  r.reset_values();
  EXPECT_EQ(attached.value(), 0u);
  EXPECT_EQ(r.find_counter("b")->value(), 0u);
  EXPECT_EQ(r.find_histogram("h")->count(), 0u);
}

TEST(Registry, DetachPrefixRemovesSubtree) {
  MetricsRegistry r;
  Counter a, b, keep;
  r.attach_counter("node1.rx", a);
  r.attach_counter("node1.tx", b);
  r.attach_counter("node2.rx", keep);
  r.detach_prefix("node1.");
  EXPECT_EQ(r.find_counter("node1.rx"), nullptr);
  EXPECT_EQ(r.find_counter("node1.tx"), nullptr);
  ASSERT_NE(r.find_counter("node2.rx"), nullptr);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Registry, ToJsonContainsNamesAndValues) {
  MetricsRegistry r;
  r.counter("guard.spoofs_dropped") += 12;
  std::string json = r.to_json();
  EXPECT_NE(json.find("\"guard.spoofs_dropped\""), std::string::npos);
  EXPECT_NE(json.find("12"), std::string::npos);
}

// --- drop reasons ------------------------------------------------------------

TEST(DropReasons, CountsAndTotals) {
  DropCounters d;
  d.count(DropReason::kBadCookie, 3);
  d.count(DropReason::kRateLimited1);
  EXPECT_EQ(d.value(DropReason::kBadCookie), 3u);
  EXPECT_EQ(d.value(DropReason::kStaleKey), 0u);
  EXPECT_EQ(d.total(), 4u);
  d.count(DropReason::kNone);  // filler, never part of the total
  EXPECT_EQ(d.total(), 4u);
  d.reset();
  EXPECT_EQ(d.total(), 0u);
}

TEST(DropReasons, BindExportsFullTaxonomy) {
  DropCounters d;
  MetricsRegistry r;
  d.bind(r, "guard");
  d.count(DropReason::kBadCookie, 2);
  const Counter* c = r.find_counter("guard.drop.bad_cookie");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 2u);
  // Every real reason has a cell; kNone does not.
  for (std::size_t i = 1; i < obs::kDropReasonCount; ++i) {
    auto name = std::string("guard.drop.") +
                std::string(obs::drop_reason_name(
                    static_cast<DropReason>(i)));
    EXPECT_NE(r.find_counter(name), nullptr) << name;
  }
  EXPECT_EQ(r.find_counter("guard.drop.none"), nullptr);
}

// --- trace ring --------------------------------------------------------------

TEST(Trace, RingWrapsKeepingNewestOldestFirst) {
  TraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (std::uint16_t i = 0; i < 20; ++i) {
    ring.record(SimTime{i}, TraceEvent::kRx, /*src=*/i, /*dst=*/99, i);
  }
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.recorded(), 20u);
  std::vector<obs::TraceEntry> entries = ring.entries();
  ASSERT_EQ(entries.size(), 8u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].info, 12 + i);  // events 12..19 retained, in order
  }
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
}

TEST(Trace, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(6);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(Trace, DumpIsHumanReadable) {
  TraceRing ring(4);
  ring.record(SimTime{1500}, TraceEvent::kDrop,
              Ipv4Address(10, 9, 9, 9).value(),
              Ipv4Address(10, 1, 1, 254).value(), 7,
              DropReason::kBadCookie);
  std::string dump = ring.dump("guard");
  EXPECT_NE(dump.find("guard"), std::string::npos);
  EXPECT_NE(dump.find("drop"), std::string::npos);
  EXPECT_NE(dump.find("bad_cookie"), std::string::npos);
}

// --- end to end: spoofed flood through the guard -----------------------------

constexpr Ipv4Address kAnsIp(10, 1, 1, 254);
constexpr Ipv4Address kGuardIp(10, 1, 1, 253);
constexpr Ipv4Address kSubnetBase(10, 1, 1, 0);
constexpr Ipv4Address kLrsIp(10, 0, 1, 1);

struct GuardBed {
  sim::Simulator sim;
  std::unique_ptr<AnsSimulatorNode> ans;
  std::unique_ptr<RemoteGuardNode> guard;
  std::unique_ptr<LrsSimulatorNode> driver;

  explicit GuardBed(Scheme scheme, DriveMode mode) {
    ans = std::make_unique<AnsSimulatorNode>(
        sim, "ans", AnsSimulatorNode::Config{.address = kAnsIp});
    RemoteGuardNode::Config gc;
    gc.guard_address = kGuardIp;
    gc.ans_address = kAnsIp;
    gc.protected_zone = dns::DomainName{};
    gc.subnet_base = kSubnetBase;
    gc.r_y = 250;
    gc.scheme = scheme;
    gc.rl1.per_address_rate = 1e6;
    gc.rl1.per_address_burst = 1e5;
    gc.rl2.per_host_rate = 1e6;
    gc.rl2.per_host_burst = 1e5;
    guard = std::make_unique<RemoteGuardNode>(sim, "guard", gc, ans.get());
    guard->install(/*subnet_prefix_len=*/24);

    LrsSimulatorNode::Config dc;
    dc.address = kLrsIp;
    dc.target = {kAnsIp, net::kDnsPort};
    dc.mode = mode;
    dc.concurrency = 1;
    driver = std::make_unique<LrsSimulatorNode>(sim, "driver", dc);
    sim.add_host_route(kLrsIp, driver.get());
    sim.set_default_latency(microseconds(200));
  }

  void run(SimDuration d) {
    driver->start();
    sim.run_for(d);
    driver->stop();
  }
};

TEST(MetricsScenario, SpoofedGuessesChargedToBadCookie) {
  GuardBed bed(Scheme::NsName, DriveMode::NsNameMiss);
  attack::CookieGuessNode guesser(
      bed.sim, "guesser",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 8),
                                    .target = {kAnsIp, net::kDnsPort},
                                    .rate = 10000},
      attack::CookieGuessNode::GuessConfig{
          .mode = attack::CookieGuessNode::Mode::NsNameLabel,
          .victim = Ipv4Address(10, 99, 0, 1),
          .zone = dns::DomainName{}});
  guesser.start();
  bed.run(milliseconds(100));
  guesser.stop();

  // A guessed prefix carries a random generation bit, but before the
  // first key rotation there is no previous generation at all: every
  // guess — whatever its bit — is a forgery and must be charged to
  // bad_cookie. (Charging the previous-bit half to stale_key was a
  // misclassification: stale_key implies a once-valid cookie.)
  const MetricsRegistry& reg = bed.sim.metrics();
  const Counter* bad = reg.find_counter("guard.drop.bad_cookie");
  const Counter* stale = reg.find_counter("guard.drop.stale_key");
  ASSERT_NE(bad, nullptr) << reg.to_json();
  ASSERT_NE(stale, nullptr);
  EXPECT_GT(bad->value(), 900u) << bed.guard->trace_ring().dump("guard");
  EXPECT_EQ(stale->value(), 0u);
  EXPECT_EQ(bad->value(),
            bed.guard->drop_counters().value(DropReason::kBadCookie));
  EXPECT_EQ(bed.guard->guard_stats().spoofs_dropped.value(),
            bad->value() + stale->value());
  // Per-scheme attribution: the drops happened under the NS-name scheme,
  // while the legitimate driver's dances verified under it.
  EXPECT_GT(bed.guard->scheme_counters(Scheme::NsName).dropped.value(), 900u);
  EXPECT_GT(bed.guard->scheme_counters(Scheme::NsName).verified.value(), 10u);

  // The guard's trace ring retains drop events with the reason attached.
  std::vector<obs::TraceEntry> entries = bed.guard->trace_ring().entries();
  EXPECT_TRUE(std::any_of(entries.begin(), entries.end(), [](const auto& e) {
    return e.event == TraceEvent::kDrop &&
           e.reason == DropReason::kBadCookie;
  })) << bed.guard->trace_ring().dump("guard");
}

TEST(MetricsScenario, EverySubsystemRegistersMetrics) {
  GuardBed bed(Scheme::NsName, DriveMode::NsNameMiss);
  bed.run(milliseconds(20));
  const MetricsRegistry& reg = bed.sim.metrics();
  // One representative name per subsystem proves the wiring end to end.
  for (const char* name : {
           "sim.events_dispatched",         // simulator scheduler
           "sim.net.packets_delivered",     // simulated network
           "guard.requests_seen",           // remote guard
           "guard.scheme.ns_name.minted",   // per-scheme attribution
           "guard.drop.bad_cookie",         // drop taxonomy
           "guard.rl1.allowed",             // rate limiters
           "guard.tcp.syns_received",       // kernel TCP proxy
           "server.ans_sim.udp_queries",    // protected server
       }) {
    EXPECT_NE(reg.find_counter(name), nullptr) << name;
  }
  EXPECT_NE(reg.find_gauge("sim.queue_depth"), nullptr);
  // And the registry view agrees with the subsystem's own stats.
  EXPECT_EQ(reg.find_counter("guard.requests_seen")->value(),
            bed.guard->guard_stats().requests_seen.value());
  EXPECT_GT(reg.find_counter("sim.events_dispatched")->value(), 0u);
}

TEST(MetricsScenario, KeyRotationCountsPreviousGenerationVerifies) {
  // Hit-mode LRS caches the fabricated referral, so after a rotation it
  // keeps presenting the pre-rotation cookie label — which must verify
  // under the previous key and be booked as such (§III.E).
  GuardBed bed(Scheme::NsName, DriveMode::NsNameHit);
  bed.driver->start();
  bed.sim.run_for(milliseconds(50));
  EXPECT_GT(bed.guard->guard_stats().verified_curr_gen.value(), 10u);
  EXPECT_EQ(bed.guard->guard_stats().verified_prev_gen.value(), 0u);

  // Rotate mid-run: the still-running workers keep presenting their
  // cached pre-rotation cookie labels.
  bed.guard->cookie_engine().rotate(0xfeedf00d);
  bed.sim.run_for(milliseconds(50));
  bed.driver->stop();
  EXPECT_GT(bed.guard->guard_stats().verified_prev_gen.value(), 10u);
  EXPECT_EQ(bed.sim.metrics().find_counter("guard.verified_prev_gen")->value(),
            bed.guard->guard_stats().verified_prev_gen.value());
  // No legitimate request was dropped by the rotation.
  EXPECT_EQ(bed.guard->guard_stats().spoofs_dropped.value(), 0u);
  EXPECT_EQ(bed.driver->driver_stats().timeouts, 0u);
}

TEST(CookieGeneration, EngineVerifiesAcrossOneRotationOnly) {
  guard::CookieEngine engine(0x1111);
  const Ipv4Address requester(10, 0, 1, 1);
  crypto::Cookie cookie = engine.mint(requester);

  crypto::VerifyResult vr = engine.verify_ex(requester, cookie);
  EXPECT_TRUE(vr.ok);
  EXPECT_FALSE(vr.used_previous);

  engine.rotate(0x2222);
  vr = engine.verify_ex(requester, cookie);
  EXPECT_TRUE(vr.ok);
  EXPECT_TRUE(vr.used_previous);

  engine.rotate(0x3333);
  vr = engine.verify_ex(requester, cookie);
  EXPECT_FALSE(vr.ok);  // two rotations old: gone for good
}

}  // namespace
}  // namespace dnsguard
