// Mini-TCP: handshake, data transfer, teardown, SYN cookies, framing.
//
// Two TcpStacks are wired back-to-back through an in-memory "wire" that
// delivers packets synchronously (loopback) or through a queue the test
// drains manually (to model loss).
#include <gtest/gtest.h>

#include <deque>

#include "tcp/tcp_stack.h"

namespace dnsguard::tcp {
namespace {

using net::Ipv4Address;
using net::Packet;
using net::SocketAddr;

struct Harness {
  SimTime clock{};
  std::deque<Packet> wire_to_server;
  std::deque<Packet> wire_to_client;
  std::unique_ptr<TcpStack> client;
  std::unique_ptr<TcpStack> server;

  std::vector<ConnId> client_established, server_established;
  std::vector<std::pair<ConnId, Bytes>> client_data, server_data;
  std::vector<ConnId> client_closed, server_closed;

  explicit Harness(bool syn_cookies = false) {
    client = std::make_unique<TcpStack>(
        [this](Packet p) { wire_to_server.push_back(std::move(p)); },
        [this] { return clock; },
        TcpStack::Callbacks{
            [this](ConnId c) { client_established.push_back(c); },
            [this](ConnId c, BytesView d) {
              client_data.emplace_back(c, Bytes(d.begin(), d.end()));
            },
            [this](ConnId c) { client_closed.push_back(c); }},
        TcpStack::Options{});
    server = std::make_unique<TcpStack>(
        [this](Packet p) { wire_to_client.push_back(std::move(p)); },
        [this] { return clock; },
        TcpStack::Callbacks{
            [this](ConnId c) { server_established.push_back(c); },
            [this](ConnId c, BytesView d) {
              server_data.emplace_back(c, Bytes(d.begin(), d.end()));
            },
            [this](ConnId c) { server_closed.push_back(c); }},
        TcpStack::Options{.syn_cookies = syn_cookies});
    server->listen(53);
  }

  /// Delivers queued packets until both directions are quiet.
  void pump(int max_rounds = 64) {
    for (int i = 0; i < max_rounds; ++i) {
      if (wire_to_server.empty() && wire_to_client.empty()) return;
      while (!wire_to_server.empty()) {
        Packet p = std::move(wire_to_server.front());
        wire_to_server.pop_front();
        server->handle_packet(p);
      }
      while (!wire_to_client.empty()) {
        Packet p = std::move(wire_to_client.front());
        wire_to_client.pop_front();
        client->handle_packet(p);
      }
    }
  }

  static SocketAddr client_addr() { return {Ipv4Address(10, 0, 0, 2), 4000}; }
  static SocketAddr server_addr() { return {Ipv4Address(10, 0, 0, 1), 53}; }
};

TEST(TcpHandshake, EstablishesBothSides) {
  Harness h;
  ConnId c = h.client->connect(Harness::client_addr(), Harness::server_addr());
  h.pump();
  ASSERT_EQ(h.client_established.size(), 1u);
  EXPECT_EQ(h.client_established[0], c);
  ASSERT_EQ(h.server_established.size(), 1u);
  EXPECT_EQ(h.client->connection_count(), 1u);
  EXPECT_EQ(h.server->connection_count(), 1u);
}

TEST(TcpHandshake, SynToClosedPortGetsRst) {
  Harness h;
  ConnId c = h.client->connect(Harness::client_addr(),
                               {Ipv4Address(10, 0, 0, 1), 99});
  h.pump();
  EXPECT_EQ(h.client_established.size(), 0u);
  EXPECT_EQ(h.client_closed.size(), 1u);
  EXPECT_EQ(h.client_closed[0], c);
  EXPECT_EQ(h.client->connection_count(), 0u);
}

TEST(TcpDropAccounting, StraySegmentsCharged) {
  // Every discarded segment must land on a DropReason: segments matching no
  // listener or connection are charged to kStraySegment (and RST'd away).
  Harness h;
  obs::DropCounters drops;
  h.server->set_drop_counters(&drops);

  // SYN to a non-listening port.
  h.client->connect(Harness::client_addr(), {Ipv4Address(10, 0, 0, 1), 99});
  h.pump();
  EXPECT_EQ(drops.value(obs::DropReason::kStraySegment), 1u);

  // Data segment for a connection the server has already torn down.
  ConnId c = h.client->connect(Harness::client_addr(), Harness::server_addr());
  h.pump();
  ASSERT_EQ(h.server_established.size(), 1u);
  h.server->abort(h.server_established[0]);
  h.wire_to_client.clear();  // drop the RST so the client still believes
                             // the connection is up
  EXPECT_TRUE(h.client->send_data(c, BytesView(Bytes{'h', 'i'})));
  h.pump();
  EXPECT_EQ(drops.value(obs::DropReason::kStraySegment), 2u);
  EXPECT_TRUE(h.server_data.empty());
}

TEST(TcpData, RoundTripBothDirections) {
  Harness h;
  ConnId c = h.client->connect(Harness::client_addr(), Harness::server_addr());
  h.pump();
  Bytes req{'h', 'i'};
  EXPECT_TRUE(h.client->send_data(c, BytesView(req)));
  h.pump();
  ASSERT_EQ(h.server_data.size(), 1u);
  EXPECT_EQ(h.server_data[0].second, req);

  ConnId sc = h.server_established[0];
  Bytes resp{'y', 'o', '!'};
  EXPECT_TRUE(h.server->send_data(sc, BytesView(resp)));
  h.pump();
  ASSERT_EQ(h.client_data.size(), 1u);
  EXPECT_EQ(h.client_data[0].second, resp);
}

TEST(TcpData, SendOnUnestablishedFails) {
  Harness h;
  ConnId c = h.client->connect(Harness::client_addr(), Harness::server_addr());
  // No pump: still SYN_SENT.
  EXPECT_FALSE(h.client->send_data(c, BytesView(Bytes{1})));
}

TEST(TcpData, SequenceNumbersAdvanceWithData) {
  Harness h;
  ConnId c = h.client->connect(Harness::client_addr(), Harness::server_addr());
  h.pump();
  h.client->send_data(c, BytesView(Bytes(10, 'a')));
  h.pump();
  h.client->send_data(c, BytesView(Bytes(5, 'b')));
  h.pump();
  ASSERT_EQ(h.server_data.size(), 2u);
  EXPECT_EQ(h.server_data[0].second.size(), 10u);
  EXPECT_EQ(h.server_data[1].second.size(), 5u);
}

TEST(TcpData, DuplicateSegmentIgnored) {
  Harness h;
  ConnId c = h.client->connect(Harness::client_addr(), Harness::server_addr());
  h.pump();
  h.client->send_data(c, BytesView(Bytes{1, 2, 3}));
  ASSERT_FALSE(h.wire_to_server.empty());
  Packet dup = h.wire_to_server.front();  // copy the data segment
  h.pump();
  EXPECT_EQ(h.server_data.size(), 1u);
  h.server->handle_packet(dup);  // replay
  h.pump();
  EXPECT_EQ(h.server_data.size(), 1u);  // not delivered twice
}

TEST(TcpClose, GracefulFinBothSides) {
  Harness h;
  ConnId c = h.client->connect(Harness::client_addr(), Harness::server_addr());
  h.pump();
  ConnId sc = h.server_established[0];
  h.client->close(c);
  h.pump();
  // Server saw FIN, is in CLOSE_WAIT; now server closes too.
  h.server->close(sc);
  h.pump();
  EXPECT_EQ(h.client->connection_count(), 0u);
  EXPECT_EQ(h.server->connection_count(), 0u);
  EXPECT_EQ(h.client_closed.size(), 1u);
  EXPECT_EQ(h.server_closed.size(), 1u);
}

TEST(TcpClose, AbortSendsRst) {
  Harness h;
  ConnId c = h.client->connect(Harness::client_addr(), Harness::server_addr());
  h.pump();
  h.client->abort(c);
  h.pump();
  EXPECT_EQ(h.client->connection_count(), 0u);
  EXPECT_EQ(h.server->connection_count(), 0u);  // RST tore the peer down
  EXPECT_GE(h.server_closed.size(), 1u);
}

TEST(TcpReap, IdleConnectionsRemoved) {
  Harness h;
  h.client->connect(Harness::client_addr(), Harness::server_addr());
  h.pump();
  h.clock = h.clock + seconds(10);
  EXPECT_EQ(h.server->reap(seconds(5), SimDuration{}), 1u);
  EXPECT_EQ(h.server->connection_count(), 0u);
}

TEST(TcpReap, LifetimeLimitEnforced) {
  // §III.C: connections alive longer than 5x RTT are removed.
  Harness h;
  ConnId c = h.client->connect(Harness::client_addr(), Harness::server_addr());
  h.pump();
  h.clock = h.clock + milliseconds(3);
  h.client->send_data(c, BytesView(Bytes{1}));  // keep it non-idle
  h.pump();
  EXPECT_EQ(h.server->reap(SimDuration{}, milliseconds(2)), 1u);
}

TEST(SynCookies, StatelessUntilAckArrives) {
  Harness h(/*syn_cookies=*/true);
  h.client->connect(Harness::client_addr(), Harness::server_addr());
  // Deliver only the SYN.
  ASSERT_EQ(h.wire_to_server.size(), 1u);
  h.server->handle_packet(h.wire_to_server.front());
  h.wire_to_server.pop_front();
  // Server must keep NO state after SYN (that's the whole point).
  EXPECT_EQ(h.server->connection_count(), 0u);
  EXPECT_EQ(h.server->stats().syn_cookies_sent, 1u);
  // Complete the handshake.
  h.pump();
  EXPECT_EQ(h.server->connection_count(), 1u);
  EXPECT_EQ(h.server->stats().syn_cookies_accepted, 1u);
  ASSERT_EQ(h.server_established.size(), 1u);
}

TEST(SynCookies, DataFlowsAfterCookieHandshake) {
  Harness h(/*syn_cookies=*/true);
  ConnId c = h.client->connect(Harness::client_addr(), Harness::server_addr());
  h.pump();
  h.client->send_data(c, BytesView(Bytes{'q'}));
  h.pump();
  ASSERT_EQ(h.server_data.size(), 1u);
  EXPECT_EQ(h.server_data[0].second, (Bytes{'q'}));
}

TEST(SynCookies, ForgedAckRejected) {
  Harness h(/*syn_cookies=*/true);
  // An attacker skips the SYN and fires a bare ACK with a made-up ack
  // number (blind spoofing): must be rejected with a RST, no state.
  Packet forged = Packet::make_tcp({Ipv4Address(6, 6, 6, 6), 1234},
                                   Harness::server_addr(),
                                   net::TcpFlags{.ack = true},
                                   /*seq=*/1000, /*ack=*/0xdeadbeef);
  h.server->handle_packet(forged);
  EXPECT_EQ(h.server->connection_count(), 0u);
  EXPECT_EQ(h.server->stats().syn_cookies_rejected, 1u);
  EXPECT_GE(h.server->stats().resets_sent, 1u);
}

TEST(SynCookies, StaleCookieRejected) {
  Harness h(/*syn_cookies=*/true);
  h.client->connect(Harness::client_addr(), Harness::server_addr());
  // SYN reaches server; SYN-ACK reaches client; client emits final ACK.
  h.server->handle_packet(h.wire_to_server.front());
  h.wire_to_server.pop_front();
  h.client->handle_packet(h.wire_to_client.front());
  h.wire_to_client.pop_front();
  ASSERT_FALSE(h.wire_to_server.empty());
  // Let far more than two cookie time slots pass before the ACK lands.
  h.clock = h.clock + seconds(60);
  h.server->handle_packet(h.wire_to_server.front());
  h.wire_to_server.pop_front();
  EXPECT_EQ(h.server->connection_count(), 0u);
  EXPECT_EQ(h.server->stats().syn_cookies_rejected, 1u);
}

TEST(SynCookieGenerator, ValidatesOwnCookies) {
  SynCookieGenerator gen(1234);
  SocketAddr c{Ipv4Address(10, 0, 0, 2), 4000};
  SocketAddr s{Ipv4Address(10, 0, 0, 1), 53};
  SimTime t{1000000};
  std::uint32_t isn = gen.make(c, s, 555, t);
  EXPECT_TRUE(gen.validate(c, s, 555, isn, t));
  EXPECT_TRUE(gen.validate(c, s, 555, isn, t + seconds(7)));
  EXPECT_FALSE(gen.validate(c, s, 556, isn, t));        // wrong client ISN
  EXPECT_FALSE(gen.validate(c, s, 555, isn ^ 1, t));    // corrupted cookie
  SocketAddr other{Ipv4Address(10, 0, 0, 3), 4000};
  EXPECT_FALSE(gen.validate(other, s, 555, isn, t));    // wrong client
}

TEST(StreamFramer, FrameAndReassemble) {
  Bytes msg{'a', 'b', 'c', 'd'};
  Bytes framed = StreamFramer::frame(BytesView(msg));
  ASSERT_EQ(framed.size(), 6u);
  EXPECT_EQ(framed[0], 0);
  EXPECT_EQ(framed[1], 4);
  StreamFramer f;
  auto out = f.push(BytesView(framed));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], msg);
}

TEST(StreamFramer, HandlesSplitDelivery) {
  Bytes msg(300, 'x');
  Bytes framed = StreamFramer::frame(BytesView(msg));
  StreamFramer f;
  // Deliver one byte at a time.
  std::vector<Bytes> all;
  for (std::uint8_t b : framed) {
    Bytes one{b};
    for (auto& m : f.push(BytesView(one))) all.push_back(std::move(m));
  }
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], msg);
  EXPECT_EQ(f.buffered(), 0u);
}

TEST(StreamFramer, HandlesBackToBackMessages) {
  Bytes a{'1'}, b{'2', '2'};
  Bytes stream = StreamFramer::frame(BytesView(a));
  Bytes fb = StreamFramer::frame(BytesView(b));
  stream.insert(stream.end(), fb.begin(), fb.end());
  StreamFramer f;
  auto out = f.push(BytesView(stream));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], a);
  EXPECT_EQ(out[1], b);
}

}  // namespace
}  // namespace dnsguard::tcp
