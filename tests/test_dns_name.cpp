// Domain name parsing, limits, relations and wire codec incl. compression.
#include <gtest/gtest.h>

#include "dns/name.h"

namespace dnsguard::dns {
namespace {

TEST(DomainName, ParseBasics) {
  auto n = DomainName::parse("www.foo.com");
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->label_count(), 3u);
  EXPECT_EQ(n->to_string(), "www.foo.com.");
  EXPECT_EQ(n->first_label(), "www");
}

TEST(DomainName, TrailingDotOptional) {
  EXPECT_EQ(DomainName::parse("foo.com")->to_string(),
            DomainName::parse("foo.com.")->to_string());
}

TEST(DomainName, RootName) {
  auto root = DomainName::parse(".");
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->to_string(), ".");
  EXPECT_EQ(root->wire_length(), 1u);
}

TEST(DomainName, RejectsEmptyAndBadLabels) {
  EXPECT_FALSE(DomainName::parse("").has_value());
  EXPECT_FALSE(DomainName::parse("..").has_value());
  EXPECT_FALSE(DomainName::parse("a..b").has_value());
  EXPECT_FALSE(DomainName::parse(std::string(64, 'x') + ".com").has_value());
  EXPECT_TRUE(DomainName::parse(std::string(63, 'x') + ".com").has_value());
}

TEST(DomainName, RejectsOversizeName) {
  // 5 labels of 63 bytes = 320 wire bytes > 255.
  std::string big;
  for (int i = 0; i < 5; ++i) big += std::string(63, 'a') + ".";
  EXPECT_FALSE(DomainName::parse(big).has_value());
}

TEST(DomainName, CaseInsensitiveEquality) {
  EXPECT_EQ(*DomainName::parse("WWW.Foo.COM"), *DomainName::parse("www.foo.com"));
}

TEST(DomainName, SubdomainRelation) {
  auto www = *DomainName::parse("www.foo.com");
  auto foo = *DomainName::parse("foo.com");
  auto com = *DomainName::parse("com");
  auto bar = *DomainName::parse("bar.com");
  EXPECT_TRUE(www.is_subdomain_of(foo));
  EXPECT_TRUE(www.is_subdomain_of(com));
  EXPECT_TRUE(www.is_subdomain_of(DomainName{}));  // root
  EXPECT_TRUE(www.is_subdomain_of(www));
  EXPECT_FALSE(www.is_subdomain_of(bar));
  EXPECT_FALSE(foo.is_subdomain_of(www));
}

TEST(DomainName, ParentAndSuffix) {
  auto www = *DomainName::parse("www.foo.com");
  EXPECT_EQ(www.parent().to_string(), "foo.com.");
  EXPECT_EQ(www.suffix(1).to_string(), "com.");
  EXPECT_EQ(www.suffix(2).to_string(), "foo.com.");
  EXPECT_EQ(www.suffix(5).to_string(), "www.foo.com.");
  EXPECT_TRUE(DomainName{}.parent().is_root());
}

TEST(DomainName, WithPrefixLabel) {
  auto com = *DomainName::parse("com");
  auto prefixed = com.with_prefix_label("PRa1b2c3d4foo");
  ASSERT_TRUE(prefixed.has_value());
  EXPECT_EQ(prefixed->to_string(), "PRa1b2c3d4foo.com.");
  EXPECT_FALSE(com.with_prefix_label("").has_value());
  EXPECT_FALSE(com.with_prefix_label(std::string(64, 'x')).has_value());
}

TEST(NameWire, UncompressedRoundTrip) {
  auto n = *DomainName::parse("a.bc.def.example");
  ByteWriter w;
  write_name_uncompressed(w, n);
  EXPECT_EQ(w.size(), n.wire_length());
  Cursor r(w.view());
  auto d = read_name(r);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, n);
  EXPECT_TRUE(r.at_end());
}

TEST(NameWire, CompressionReusesSuffix) {
  auto a = *DomainName::parse("www.foo.com");
  auto b = *DomainName::parse("mail.foo.com");
  ByteWriter w;
  NameCompressor compressor;
  compressor.write(w, a);
  std::size_t first = w.size();
  compressor.write(w, b);
  // Second name should be "mail" label (5 bytes) + 2-byte pointer.
  EXPECT_EQ(w.size() - first, 5u + 2u);

  Cursor r(w.view());
  auto da = read_name(r);
  auto db = read_name(r);
  ASSERT_TRUE(da.has_value());
  ASSERT_TRUE(db.has_value());
  EXPECT_EQ(*da, a);
  EXPECT_EQ(*db, b);
}

TEST(NameWire, IdenticalNameBecomesPurePointer) {
  auto a = *DomainName::parse("www.foo.com");
  ByteWriter w;
  NameCompressor compressor;
  compressor.write(w, a);
  std::size_t first = w.size();
  compressor.write(w, a);
  EXPECT_EQ(w.size() - first, 2u);  // a single pointer
}

TEST(NameWire, PointerLoopRejected) {
  // A name whose pointer points at itself.
  Bytes evil{0xc0, 0x00};
  Cursor r{BytesView(evil)};
  EXPECT_FALSE(read_name(r).has_value());
}

TEST(NameWire, ForwardPointerRejected) {
  // Pointer to offset beyond itself (forward reference).
  Bytes evil{0xc0, 0x05, 0, 0, 0, 3, 'a', 'b', 'c', 0};
  Cursor r{BytesView(evil)};
  EXPECT_FALSE(read_name(r).has_value());
}

TEST(NameWire, ReservedLabelTypesRejected) {
  Bytes evil{0x80, 'x', 0};  // 10-prefixed label type is reserved
  Cursor r{BytesView(evil)};
  EXPECT_FALSE(read_name(r).has_value());
}

TEST(NameWire, TruncatedNameRejected) {
  Bytes evil{5, 'a', 'b'};  // label promises 5 bytes, only 2 present
  Cursor r{BytesView(evil)};
  EXPECT_FALSE(read_name(r).has_value());
}

TEST(NameWire, OversizeAssembledNameRejected) {
  // Chain of labels totalling more than 255 bytes via direct encoding.
  ByteWriter w;
  for (int i = 0; i < 6; ++i) {
    w.u8(50);
    for (int j = 0; j < 50; ++j) w.u8('a');
  }
  w.u8(0);
  Cursor r(w.view());
  EXPECT_FALSE(read_name(r).has_value());
}

// Property: parse -> wire -> parse is identity for many realistic names.
class NameRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(NameRoundTrip, Identity) {
  auto n = DomainName::parse(GetParam());
  ASSERT_TRUE(n.has_value());
  ByteWriter w;
  NameCompressor c;
  c.write(w, *n);
  Cursor r(w.view());
  auto d = read_name(r);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, *n);
  EXPECT_EQ(d->to_string(), n->to_string());
}

INSTANTIATE_TEST_SUITE_P(
    Names, NameRoundTrip,
    ::testing::Values(".", "com", "foo.com", "www.foo.com",
                      "a.b.c.d.e.f.g.h.i.j", "xn--bcher-kva.example",
                      "PRa1b2c3d4com", "PRdeadbeefwww.foo.com",
                      "a.root-servers.net", "_sip._tcp.example.org"));

}  // namespace
}  // namespace dnsguard::dns
