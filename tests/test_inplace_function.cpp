// InplaceFunction (small-buffer callable), SlabPool and BufferPool — the
// allocation machinery under the event scheduler and packet hot path.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/inplace_function.h"
#include "common/pool.h"

namespace dnsguard {
namespace {

TEST(InplaceFunction, DefaultIsNull) {
  InplaceFunction<int()> f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InplaceFunction, InvokesInlineCallable) {
  int x = 0;
  InplaceFunction<void()> f([&x] { x = 42; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(x, 42);
}

TEST(InplaceFunction, PassesArgumentsAndReturns) {
  InplaceFunction<int(int, int)> f([](int a, int b) { return a * 10 + b; });
  EXPECT_EQ(f(3, 4), 34);
}

TEST(InplaceFunction, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  InplaceFunction<void()> a([counter] { (*counter)++; });
  EXPECT_EQ(counter.use_count(), 2);
  InplaceFunction<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(counter.use_count(), 2);  // moved, not copied
  b();
  EXPECT_EQ(*counter, 1);
}

TEST(InplaceFunction, DestroysCapturedState) {
  auto counter = std::make_shared<int>(0);
  {
    InplaceFunction<void()> f([counter] { (*counter)++; });
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InplaceFunction, MoveOnlyCaptureWorks) {
  auto p = std::make_unique<int>(7);
  InplaceFunction<int()> f([p = std::move(p)] { return *p; });
  EXPECT_EQ(f(), 7);
}

TEST(InplaceFunction, OversizedCaptureFallsBackToSlab) {
  // A capture far larger than the inline buffer must still work (it moves
  // to a slab block behind the scenes).
  std::array<std::uint64_t, 64> big{};  // 512 bytes > inline capacity
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i;
  InplaceFunction<std::uint64_t()> f([big] {
    std::uint64_t sum = 0;
    for (auto v : big) sum += v;
    return sum;
  });
  EXPECT_EQ(f(), 64u * 63u / 2);

  // Moving an oversized function transfers the slab pointer, not the bytes.
  InplaceFunction<std::uint64_t()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_EQ(g(), 64u * 63u / 2);
}

TEST(InplaceFunction, ReassignmentReleasesOldCallable) {
  auto a = std::make_shared<int>(0);
  auto b = std::make_shared<int>(0);
  InplaceFunction<void()> f([a] { (*a)++; });
  f = InplaceFunction<void()>([b] { (*b)++; });
  EXPECT_EQ(a.use_count(), 1);  // old capture destroyed
  f();
  EXPECT_EQ(*b, 1);
}

TEST(SlabPool, RecyclesBlocks) {
  SlabPool pool(64, /*blocks_per_chunk=*/4);
  void* a = pool.allocate();
  void* b = pool.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.chunks_allocated(), 1u);
  pool.deallocate(a);
  void* c = pool.allocate();
  EXPECT_EQ(c, a);  // LIFO freelist reuses the block just returned
  pool.deallocate(b);
  pool.deallocate(c);
  EXPECT_EQ(pool.live_blocks(), 0u);
}

TEST(SlabPool, GrowsByChunks) {
  SlabPool pool(32, /*blocks_per_chunk=*/2);
  std::vector<void*> blocks;
  for (int i = 0; i < 5; ++i) blocks.push_back(pool.allocate());
  EXPECT_EQ(pool.chunks_allocated(), 3u);
  EXPECT_EQ(pool.live_blocks(), 5u);
  for (void* p : blocks) pool.deallocate(p);
}

TEST(BufferPool, AcquireReleaseReusesCapacity) {
  BufferPool pool;
  Bytes b = pool.acquire(256);
  EXPECT_GE(b.capacity(), 256u);
  b.assign(100, 0xab);
  const auto* data_before = b.data();
  pool.release(std::move(b));
  EXPECT_EQ(pool.pooled(), 1u);

  Bytes c = pool.acquire(64);
  EXPECT_TRUE(c.empty());  // cleared on reuse
  EXPECT_EQ(c.data(), data_before);  // same allocation came back
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPool, IgnoresEmptyBuffers) {
  BufferPool pool;
  pool.release(Bytes{});
  EXPECT_EQ(pool.pooled(), 0u);
}

}  // namespace
}  // namespace dnsguard
