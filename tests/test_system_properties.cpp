// System-level properties: determinism (bit-identical reruns), multi-LRS
// fairness through the guard, the Table I profile metadata checked
// against live behaviour, and bounded per-source state under spoofed
// floods (DESIGN.md §10).
#include <gtest/gtest.h>

#include <functional>
#include <limits>

#include "attack/attackers.h"
#include "guard/comparison.h"
#include "guard/remote_guard.h"
#include "server/authoritative_node.h"
#include "sim/simulator.h"
#include "workload/lrs_driver.h"

namespace dnsguard {
namespace {

using guard::RemoteGuardNode;
using guard::Scheme;
using net::Ipv4Address;
using workload::DriveMode;
using workload::LrsSimulatorNode;

constexpr Ipv4Address kAnsIp(10, 1, 1, 254);

struct Bed {
  sim::Simulator sim;
  server::AnsSimulatorNode ans{sim, "ans", {.address = kAnsIp}};
  std::unique_ptr<RemoteGuardNode> guard;
  std::vector<std::unique_ptr<LrsSimulatorNode>> drivers;
  std::vector<std::unique_ptr<attack::SpoofedFloodNode>> floods;

  void make_guard(
      Scheme scheme,
      const std::function<void(RemoteGuardNode::Config&)>& tweak = {}) {
    RemoteGuardNode::Config gc;
    gc.guard_address = Ipv4Address(10, 1, 1, 253);
    gc.ans_address = kAnsIp;
    gc.protected_zone = dns::DomainName{};
    gc.subnet_base = Ipv4Address(10, 1, 1, 0);
    gc.scheme = scheme;
    gc.rl1.per_address_rate = 1e7;
    gc.rl1.per_address_burst = 1e6;
    gc.rl2.per_host_rate = 1e7;
    gc.rl2.per_host_burst = 1e6;
    if (tweak) tweak(gc);
    guard = std::make_unique<RemoteGuardNode>(sim, "guard", gc, &ans);
    guard->install();
  }

  LrsSimulatorNode* add_driver(DriveMode mode, int conc, Ipv4Address addr,
                               std::uint64_t seed = 7) {
    LrsSimulatorNode::Config dc;
    dc.address = addr;
    dc.target = {kAnsIp, net::kDnsPort};
    dc.mode = mode;
    dc.concurrency = conc;
    dc.seed = seed;
    drivers.push_back(std::make_unique<LrsSimulatorNode>(
        sim, "driver-" + addr.to_string(), dc));
    sim.add_host_route(addr, drivers.back().get());
    return drivers.back().get();
  }

  void add_flood(double rate, std::uint64_t seed,
                 attack::SpoofedFloodNode::SpoofConfig spoof = {}) {
    floods.push_back(std::make_unique<attack::SpoofedFloodNode>(
        sim, "flood",
        attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                                      .target = {kAnsIp, net::kDnsPort},
                                      .rate = rate,
                                      .seed = seed},
        spoof));
  }
};

struct RunResult {
  std::uint64_t completed = 0;
  std::uint64_t spoofs_dropped = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t traffic_hash = 0;  // order+content sensitive
  SimDuration guard_busy{};
};

RunResult run_mixed_workload(std::uint64_t seed) {
  Bed bed;
  bed.make_guard(Scheme::ModifiedDns);
  auto* d = bed.add_driver(DriveMode::ModifiedHit, 8,
                           Ipv4Address(10, 0, 1, 1), seed);
  bed.add_flood(20000, seed + 1);
  std::uint64_t hash = 0;
  bed.sim.set_tap([&hash](SimTime t, const sim::Node*, const sim::Node*,
                          const net::Packet& p) {
    hash = hash * 0x9e3779b97f4a7c15ULL +
           (static_cast<std::uint64_t>(p.src_ip.value()) << 16) +
           p.payload.size() + static_cast<std::uint64_t>(t.ns & 0xffff);
  });
  d->start();
  bed.floods[0]->start();
  bed.sim.run_for(milliseconds(300));
  bed.floods[0]->stop();
  d->stop();
  bed.sim.run_for(milliseconds(50));
  return RunResult{d->driver_stats().completed,
                   bed.guard->guard_stats().spoofs_dropped,
                   bed.sim.stats().packets_sent, hash,
                   bed.guard->stats().busy};
}

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  RunResult a = run_mixed_workload(42);
  RunResult b = run_mixed_workload(42);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.spoofs_dropped, b.spoofs_dropped);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.traffic_hash, b.traffic_hash);
  EXPECT_EQ(a.guard_busy.ns, b.guard_busy.ns);
}

TEST(Determinism, DifferentSeedsDiffer) {
  RunResult a = run_mixed_workload(42);
  RunResult b = run_mixed_workload(43);
  // Same workload shape (rates are deterministic, so packet counts can
  // coincide), but the spoofed addresses and ids — hence the traffic
  // hash — must differ.
  EXPECT_NE(a.traffic_hash, b.traffic_hash);
}

TEST(MultiLrs, ManySourcesEachGetTheirOwnCookie) {
  Bed bed;
  bed.make_guard(Scheme::ModifiedDns);
  const int kLrsCount = 12;
  for (int i = 0; i < kLrsCount; ++i) {
    bed.add_driver(DriveMode::ModifiedHit, 1,
                   Ipv4Address(10, 0, 2, static_cast<std::uint8_t>(i + 1)),
                   100 + static_cast<std::uint64_t>(i));
  }
  for (auto& d : bed.drivers) d->start();
  bed.sim.run_for(milliseconds(200));
  for (auto& d : bed.drivers) d->stop();

  // One mint per source, zero drops, everyone served.
  EXPECT_EQ(bed.guard->guard_stats().cookies_minted,
            static_cast<std::uint64_t>(kLrsCount));
  EXPECT_EQ(bed.guard->guard_stats().spoofs_dropped, 0u);
  for (auto& d : bed.drivers) {
    EXPECT_GT(d->driver_stats().completed, 50u);
    EXPECT_EQ(d->driver_stats().timeouts, 0u);
  }
}

TEST(MultiLrs, CookiesAreNotTransferableBetweenSources) {
  // A cookie minted for source A, replayed from source B, is a spoof.
  Bed bed;
  bed.make_guard(Scheme::ModifiedDns);
  crypto::Cookie a_cookie =
      bed.guard->cookie_engine().mint(Ipv4Address(10, 0, 2, 1));

  class Replayer : public sim::Node {
   public:
    Replayer(sim::Simulator& s, crypto::Cookie c)
        : sim::Node(s, "replayer"), cookie_(c) {}
    void fire() {
      dns::Message q = dns::Message::query(
          1, *dns::DomainName::parse("www.foo.com"), dns::RrType::A, false);
      guard::CookieEngine::attach_txt_cookie(q, cookie_, 0);
      send(net::Packet::make_udp({Ipv4Address(10, 0, 2, 2), 33000},
                                 {kAnsIp, net::kDnsPort}, q.encode()));
    }

   protected:
    SimDuration process(const net::Packet&) override { return {}; }

   private:
    crypto::Cookie cookie_;
  } replayer(bed.sim, a_cookie);

  replayer.fire();
  bed.sim.run_for(milliseconds(5));
  EXPECT_EQ(bed.guard->guard_stats().spoofs_dropped, 1u);
  EXPECT_EQ(bed.guard->guard_stats().forwarded_to_ans, 0u);
}

// Table I metadata vs live behaviour: packet counts per request measured
// through the network tap must match the profile table's claims.
struct ProfileCase {
  Scheme scheme;
  DriveMode miss_mode;
  DriveMode hit_mode;
};

class ProfilePacketCounts : public ::testing::TestWithParam<ProfileCase> {};

TEST_P(ProfilePacketCounts, MatchComparisonTable) {
  auto param = GetParam();
  auto profiles = guard::scheme_profiles();
  const guard::SchemeProfile* profile = nullptr;
  for (const auto& p : profiles) {
    if (p.scheme == param.scheme) profile = &p;
  }
  ASSERT_NE(profile, nullptr);

  for (bool hit : {false, true}) {
    Bed bed;
    bed.make_guard(param.scheme);
    auto* d = bed.add_driver(hit ? param.hit_mode : param.miss_mode, 1,
                             Ipv4Address(10, 0, 1, 1));
    // Count packets touching the guard node per completed request.
    std::uint64_t guard_packets = 0;
    bed.sim.set_tap([&](SimTime, const sim::Node* from, const sim::Node* to,
                        const net::Packet&) {
      if (from == bed.guard.get() || to == bed.guard.get()) guard_packets++;
    });
    d->start();
    bed.sim.run_for(milliseconds(400));
    d->stop();
    bed.sim.run_for(milliseconds(10));

    std::uint64_t completed = d->driver_stats().completed;
    ASSERT_GT(completed, 50u);
    double per_request = static_cast<double>(guard_packets) /
                         static_cast<double>(completed);
    int expected = hit ? profile->packets_hit : profile->packets_miss;
    EXPECT_NEAR(per_request, expected, 0.35)
        << guard::scheme_name(param.scheme) << (hit ? " hit" : " miss");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ProfilePacketCounts,
    ::testing::Values(
        ProfileCase{Scheme::NsName, DriveMode::NsNameMiss,
                    DriveMode::NsNameHit},
        ProfileCase{Scheme::FabricatedNsIp, DriveMode::FabricatedMiss,
                    DriveMode::FabricatedHit},
        ProfileCase{Scheme::ModifiedDns, DriveMode::ModifiedMiss,
                    DriveMode::ModifiedHit}));

// --- bounded per-source state under a spoofed-source flood ------------------
//
// The guard keeps per-source state in six places (RL1/RL2 buckets, the
// pending-action, NAT and connection-rate tables, the TCP proxy's
// connection table). A flood that draws its spoofed sources from a ~1M
// address space (2^20) used to grow the RL1 bucket map one entry per
// distinct source; now every table is a BoundedTable, so occupancy must
// never exceed the configured cap — asserted below via the registry
// gauges' high-water marks — while legitimate clients are served as well
// as by a guard with effectively unbounded tables.

std::int64_t gauge_high_water(const Bed& bed, const std::string& name) {
  const obs::Gauge* g = bed.sim.metrics().find_gauge(name);
  EXPECT_NE(g, nullptr) << "missing gauge " << name;
  return g != nullptr ? g->max() : std::numeric_limits<std::int64_t>::max();
}

struct FloodOutcome {
  double legit_success = 0.0;
  std::uint64_t legit_completed = 0;
};

FloodOutcome run_spoofed_flood(
    const std::function<void(RemoteGuardNode::Config&)>& tweak,
    const std::function<void(const Bed&)>& inspect = {}) {
  Bed bed;
  bed.make_guard(Scheme::ModifiedDns, tweak);
  auto* d = bed.add_driver(DriveMode::ModifiedHit, 4,
                           Ipv4Address(10, 0, 1, 1), 7);
  // Cookie-less spoofed queries: each one takes the mint path, so each
  // distinct source presses on the RL1 bucket table.
  bed.add_flood(1e5, 99,
                {.spoof_base = Ipv4Address(10, 200, 0, 0),
                 .spoof_range = 1u << 20,
                 .random_txt_cookie = false});
  d->start();
  bed.floods[0]->start();
  bed.sim.run_for(seconds(1));
  bed.floods[0]->stop();
  d->stop();
  bed.sim.run_for(milliseconds(100));
  if (inspect) inspect(bed);
  const auto& ds = d->driver_stats();
  const double denom =
      static_cast<double>(ds.completed) + static_cast<double>(ds.timeouts);
  return {denom > 0 ? static_cast<double>(ds.completed) / denom : 0.0,
          ds.completed};
}

TEST(StateExhaustion, MillionSourceFloodKeepsEveryTableBounded) {
  constexpr std::int64_t kCap = 512;
  auto track_everyone = [](RemoteGuardNode::Config& c) {
    c.rl1.heavy_hitter_threshold = 1;  // every source lands an RL1 bucket
  };

  FloodOutcome bounded = run_spoofed_flood(
      [&](RemoteGuardNode::Config& c) {
        track_everyone(c);
        c.rl1.max_buckets = kCap;
        c.rl2.max_hosts = kCap;
        c.pending_table_capacity = kCap;
        c.nat_table_capacity = kCap;
        c.conn_bucket_capacity = kCap;
        c.proxy_max_connections = kCap;
      },
      [&](const Bed& bed) {
        for (const char* g :
             {"guard.rl1.table.size", "guard.rl2.table.size",
              "guard.pending.size", "guard.nat.size",
              "guard.conn_buckets.size", "guard.tcp.table.size"}) {
          EXPECT_LE(gauge_high_water(bed, g), kCap) << g;
        }
        // The flood really pressed on the cap: ~100k distinct sources hit
        // a 512-entry table, so slots were recycled tens of thousands of
        // times.
        const auto& rl1 = bed.guard->rl1().table_stats();
        EXPECT_GT(rl1.evicted_capacity.value(), 10000u);
        EXPECT_LE(bed.guard->rl1().tracked_buckets(),
                  static_cast<std::size_t>(kCap));
      });

  FloodOutcome unbounded = run_spoofed_flood([&](RemoteGuardNode::Config& c) {
    track_everyone(c);
    c.rl1.max_buckets = 1 << 22;  // effectively unbounded control
  });

  // Bounding state must not cost legitimate clients anything: success
  // within one percentage point of the unbounded control.
  EXPECT_GT(bounded.legit_completed, 100u);
  EXPECT_NEAR(bounded.legit_success, unbounded.legit_success, 0.01);
}

}  // namespace
}  // namespace dnsguard
