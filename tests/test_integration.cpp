// Whole-stack integration: stub resolver -> unmodified recursive resolver
// -> DNS guard -> real authoritative hierarchy (Fig. 1 + Fig. 4).
//
// These tests substantiate the paper's central transparency claim: a
// standard LRS, knowing nothing about cookies, transparently completes
// the NS-name dance (Fig. 2(a)), the fabricated NS+IP dance (Fig. 2(b))
// and the TCP redirect (§III.C), while spoofed floods die at the guard.
// The modified-DNS scheme (Fig. 3) additionally uses the local guard.
#include <gtest/gtest.h>

#include "attack/attackers.h"
#include "guard/local_guard.h"
#include "guard/remote_guard.h"
#include "server/authoritative_node.h"
#include "server/resolver_node.h"
#include "server/zone.h"
#include "sim/simulator.h"

namespace dnsguard {
namespace {

using guard::LocalGuardNode;
using guard::RemoteGuardNode;
using guard::Scheme;
using net::Ipv4Address;
using server::AuthoritativeServerNode;
using server::RecursiveResolverNode;

constexpr Ipv4Address kRootIp(10, 1, 1, 254);   // inside the guard subnet
constexpr Ipv4Address kComIp(10, 0, 0, 2);
constexpr Ipv4Address kFooIp(10, 2, 2, 254);    // inside foo guard subnet
constexpr Ipv4Address kLrsIp(10, 0, 1, 1);
constexpr Ipv4Address kRootGuardIp(10, 1, 1, 253);
constexpr Ipv4Address kFooGuardIp(10, 2, 2, 253);

struct FullStack {
  sim::Simulator sim;
  std::unique_ptr<AuthoritativeServerNode> root, com, foo;
  std::unique_ptr<RecursiveResolverNode> lrs;
  std::unique_ptr<RemoteGuardNode> root_guard, foo_guard;
  std::unique_ptr<LocalGuardNode> local_guard;

  FullStack() {
    auto h = server::make_example_hierarchy(kRootIp, kComIp, kFooIp);
    root = std::make_unique<AuthoritativeServerNode>(
        sim, "root", AuthoritativeServerNode::Config{.address = kRootIp});
    com = std::make_unique<AuthoritativeServerNode>(
        sim, "com", AuthoritativeServerNode::Config{.address = kComIp});
    foo = std::make_unique<AuthoritativeServerNode>(
        sim, "foo", AuthoritativeServerNode::Config{.address = kFooIp});
    root->add_zone(std::move(h.root));
    com->add_zone(std::move(h.com));
    foo->add_zone(std::move(h.foo_com));

    RecursiveResolverNode::Config cfg;
    cfg.address = kLrsIp;
    cfg.root_hints = {kRootIp};
    cfg.retry_timeout = milliseconds(100);
    lrs = std::make_unique<RecursiveResolverNode>(sim, "lrs", cfg);

    sim.add_host_route(kRootIp, root.get());
    sim.add_host_route(kComIp, com.get());
    sim.add_host_route(kFooIp, foo.get());
    sim.add_host_route(kLrsIp, lrs.get());
    sim.set_default_latency(microseconds(200));
  }

  RemoteGuardNode::Config guard_config(Scheme scheme, Ipv4Address guard_ip,
                                       Ipv4Address ans_ip,
                                       const char* zone,
                                       Ipv4Address subnet_base) {
    RemoteGuardNode::Config gc;
    gc.guard_address = guard_ip;
    gc.ans_address = ans_ip;
    gc.protected_zone = *dns::DomainName::parse(zone);
    gc.subnet_base = subnet_base;
    gc.r_y = 250;
    gc.scheme = scheme;
    gc.rl1.per_address_rate = 1e6;
    gc.rl1.per_address_burst = 1e5;
    gc.rl2.per_host_rate = 1e6;
    gc.rl2.per_host_burst = 1e5;
    return gc;
  }

  void guard_root(Scheme scheme) {
    sim.remove_routes_to(root.get());
    root_guard = std::make_unique<RemoteGuardNode>(
        sim, "root-guard",
        guard_config(scheme, kRootGuardIp, kRootIp, ".",
                     Ipv4Address(10, 1, 1, 0)),
        root.get());
    root_guard->install(24);
  }

  void guard_foo(Scheme scheme) {
    sim.remove_routes_to(foo.get());
    foo_guard = std::make_unique<RemoteGuardNode>(
        sim, "foo-guard",
        guard_config(scheme, kFooGuardIp, kFooIp, "foo.com.",
                     Ipv4Address(10, 2, 2, 0)),
        foo.get());
    foo_guard->install(24);
  }

  void add_local_guard() {
    local_guard = std::make_unique<LocalGuardNode>(
        sim, "local-guard",
        LocalGuardNode::Config{.lrs_address = kLrsIp,
                               .cookie_request_timeout = milliseconds(100)},
        lrs.get());
    sim.remove_routes_to(lrs.get());
    local_guard->install();
  }

  RecursiveResolverNode::Result resolve(const char* name) {
    RecursiveResolverNode::Result out;
    bool done = false;
    lrs->resolve(*dns::DomainName::parse(name), dns::RrType::A,
                 [&](const RecursiveResolverNode::Result& r) {
                   out = r;
                   done = true;
                 });
    sim.run_for(seconds(20));
    EXPECT_TRUE(done) << "resolution incomplete for " << name;
    return out;
  }

  static bool has_address(const RecursiveResolverNode::Result& r,
                          Ipv4Address expect) {
    for (const auto& rr : r.answers) {
      if (rr.type == dns::RrType::A &&
          std::get<dns::ARdata>(rr.rdata).address == expect) {
        return true;
      }
    }
    return false;
  }
};

TEST(FullStackNsName, UnmodifiedResolverCompletesCookieDance) {
  FullStack fs;
  fs.guard_root(Scheme::NsName);
  auto r = fs.resolve("www.foo.com");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(FullStack::has_address(r, Ipv4Address(192, 0, 2, 80)));
  // The resolver performed the cookie dance: one glue subtask for the
  // fabricated NS name.
  EXPECT_GE(fs.lrs->resolver_stats().glue_subtasks, 1u);
  EXPECT_GE(fs.root_guard->guard_stats().fabricated_referrals, 1u);
  EXPECT_GE(fs.root_guard->guard_stats().cookie_checks, 1u);
  EXPECT_EQ(fs.root_guard->guard_stats().spoofs_dropped, 0u);
  // The root ANS saw exactly one (rewritten) query.
  EXPECT_EQ(fs.root->ans_stats().udp_queries, 1u);
}

TEST(FullStackNsName, CachedCookieSkipsFabrication) {
  FullStack fs;
  fs.guard_root(Scheme::NsName);
  (void)fs.resolve("www.foo.com");
  std::uint64_t fabricated =
      fs.root_guard->guard_stats().fabricated_referrals;
  std::uint64_t root_queries = fs.root->ans_stats().udp_queries;
  // A sibling name under the same TLD: the com delegation (fabricated NS
  // + its address) is cached, so neither the guard nor the root is asked
  // anything new.
  auto r = fs.resolve("mail.foo.com");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(FullStack::has_address(r, Ipv4Address(192, 0, 2, 25)));
  EXPECT_EQ(fs.root_guard->guard_stats().fabricated_referrals, fabricated);
  EXPECT_EQ(fs.root->ans_stats().udp_queries, root_queries);
}

TEST(FullStackNsName, ExpiredGlueRefreshedWithOneExchange) {
  // §III.B.1: when the fabricated NS record is cached but the server
  // address expired, the LRS re-queries using the cookie name directly —
  // messages 1 and 2 are skipped.
  FullStack fs;
  fs.guard_root(Scheme::NsName);
  (void)fs.resolve("www.foo.com");
  std::uint64_t fabricated =
      fs.root_guard->guard_stats().fabricated_referrals;
  std::uint64_t checks = fs.root_guard->guard_stats().cookie_checks;

  // Expire the fabricated name's address and the deeper caches so the
  // next lookup must go through the root again.
  auto ns_set = fs.lrs->cache().get(*dns::DomainName::parse("com."),
                                    dns::RrType::NS, fs.sim.now());
  ASSERT_TRUE(ns_set.has_value());
  const auto& fabricated_name =
      std::get<dns::NsRdata>(ns_set->front().rdata).nsdname;
  fs.lrs->cache().evict(fabricated_name, dns::RrType::A);
  fs.lrs->cache().evict(*dns::DomainName::parse("foo.com."),
                        dns::RrType::NS);
  fs.lrs->cache().evict(*dns::DomainName::parse("www.foo.com."),
                        dns::RrType::A);

  auto r = fs.resolve("www.foo.com");
  ASSERT_TRUE(r.ok);
  // No new fabricated referral; exactly one more cookie check (the direct
  // cookie-name query).
  EXPECT_EQ(fs.root_guard->guard_stats().fabricated_referrals, fabricated);
  EXPECT_EQ(fs.root_guard->guard_stats().cookie_checks, checks + 1);
}

TEST(FullStackNsName, ResolutionSurvivesHeavyFlood) {
  FullStack fs;
  fs.guard_root(Scheme::NsName);
  attack::SpoofedFloodNode attacker(
      fs.sim, "attacker",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                                    .target = {kRootIp, net::kDnsPort},
                                    .rate = 50000,
                                    .qname_base = "victim.test."});
  attacker.start();
  fs.sim.run_for(milliseconds(50));  // flood already in full swing
  auto r = fs.resolve("www.foo.com");
  attacker.stop();
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(FullStack::has_address(r, Ipv4Address(192, 0, 2, 80)));
  // The flood never reached the protected root server.
  EXPECT_EQ(fs.root->ans_stats().udp_queries, 1u);
  EXPECT_GT(fs.root_guard->guard_stats().requests_seen, 2000u);
}

TEST(FullStackFabricated, UnmodifiedResolverCompletesTwoCookieDance) {
  FullStack fs;
  fs.guard_foo(Scheme::FabricatedNsIp);
  auto r = fs.resolve("www.foo.com");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(FullStack::has_address(r, Ipv4Address(192, 0, 2, 80)));
  // Both cookies were exercised: the NS-name check (msg 3) and the
  // destination-address check (msg 7).
  EXPECT_GE(fs.foo_guard->guard_stats().cookie_checks, 2u);
  EXPECT_GE(fs.foo_guard->guard_stats().cookie_replies, 1u);
  EXPECT_EQ(fs.foo_guard->guard_stats().spoofs_dropped, 0u);
  EXPECT_EQ(fs.foo->ans_stats().udp_queries, 1u);
}

TEST(FullStackFabricated, SecondLookupUsesCookieAddressDirectly) {
  FullStack fs;
  fs.guard_foo(Scheme::FabricatedNsIp);
  (void)fs.resolve("www.foo.com");
  std::uint64_t referrals = fs.foo_guard->guard_stats().fabricated_referrals;
  // The same name again (cache evicted so a query must happen, but the
  // fabricated delegation + COOKIE2 address are still cached): 1 RTT to
  // the cookie address, no new fabrication.
  fs.lrs->cache().evict(*dns::DomainName::parse("www.foo.com."),
                        dns::RrType::A);
  auto r = fs.resolve("www.foo.com");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(fs.foo_guard->guard_stats().fabricated_referrals, referrals);
  EXPECT_EQ(fs.foo->ans_stats().udp_queries, 2u);
}

TEST(FullStackTcp, TruncationRedirectsResolverToProxy) {
  FullStack fs;
  fs.guard_foo(Scheme::TcpRedirect);
  auto r = fs.resolve("www.foo.com");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(FullStack::has_address(r, Ipv4Address(192, 0, 2, 80)));
  EXPECT_EQ(fs.lrs->resolver_stats().tcp_fallbacks, 1u);
  EXPECT_GE(fs.foo_guard->guard_stats().tc_redirects, 1u);
  EXPECT_EQ(fs.foo_guard->guard_stats().proxy_queries, 1u);
  // The ANS was spared the TCP processing: it saw a UDP query.
  EXPECT_EQ(fs.foo->ans_stats().udp_queries, 1u);
  EXPECT_EQ(fs.foo->ans_stats().tcp_queries, 0u);
}

TEST(FullStackModified, LocalGuardAddsCookiesTransparently) {
  FullStack fs;
  fs.guard_foo(Scheme::ModifiedDns);
  fs.add_local_guard();
  auto r = fs.resolve("www.foo.com");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(FullStack::has_address(r, Ipv4Address(192, 0, 2, 80)));
  // The local guard probed each of the three ANSs once; only the guarded
  // foo server answered with a cookie.
  EXPECT_EQ(fs.local_guard->local_stats().cookie_requests, 3u);
  EXPECT_EQ(fs.local_guard->local_stats().cookies_cached, 1u);
  EXPECT_GE(fs.local_guard->local_stats().queries_with_cookie, 1u);
  EXPECT_GE(fs.foo_guard->guard_stats().cookie_checks, 1u);
  EXPECT_EQ(fs.foo_guard->guard_stats().spoofs_dropped, 0u);
  EXPECT_TRUE(fs.local_guard->has_cookie_for(kFooIp));
}

TEST(FullStackModified, UnguardedServersStillServed) {
  // Incremental deployment (§V): with a local guard installed, queries to
  // unguarded ANSs (root, com here) must still resolve.
  FullStack fs;
  fs.guard_foo(Scheme::ModifiedDns);
  fs.add_local_guard();
  auto r = fs.resolve("www.foo.com");
  ASSERT_TRUE(r.ok);
  // root and com answered plainly; the local guard marked them
  // not-cookie-capable after their first response.
  EXPECT_GE(fs.local_guard->local_stats().responses_delivered, 2u);
  EXPECT_EQ(fs.root->ans_stats().udp_queries, 1u);
  EXPECT_EQ(fs.com->ans_stats().udp_queries, 1u);
}

TEST(FullStackModified, CachedCookieReused) {
  FullStack fs;
  fs.guard_foo(Scheme::ModifiedDns);
  fs.add_local_guard();
  (void)fs.resolve("www.foo.com");
  auto before = fs.local_guard->local_stats().cookie_requests;
  auto r = fs.resolve("mail.foo.com");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(FullStack::has_address(r, Ipv4Address(192, 0, 2, 25)));
  // Table I: one cookie per ANS — no second cookie request.
  EXPECT_EQ(fs.local_guard->local_stats().cookie_requests, before);
}

TEST(FullStackModified, FloodDroppedLegitServed) {
  FullStack fs;
  fs.guard_foo(Scheme::ModifiedDns);
  fs.add_local_guard();
  attack::SpoofedFloodNode attacker(
      fs.sim, "attacker",
      attack::FloodNodeBase::Config{.own_address = Ipv4Address(10, 9, 9, 9),
                                    .target = {kFooIp, net::kDnsPort},
                                    .rate = 50000,
                                    .qname_base = "www.foo.com."});
  attacker.start();
  fs.sim.run_for(milliseconds(50));
  auto r = fs.resolve("www.foo.com");
  attacker.stop();
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(FullStack::has_address(r, Ipv4Address(192, 0, 2, 80)));
  // Spoofed requests carry no cookie: under the ModifiedDns scheme they
  // fall back to the NS-name dance they never complete, so the protected
  // server only saw the one legitimate query.
  EXPECT_EQ(fs.foo->ans_stats().udp_queries, 1u);
}

TEST(FullStackGuardRemoval, UninstallRestoresDirectPath) {
  FullStack fs;
  fs.guard_root(Scheme::NsName);
  (void)fs.resolve("www.foo.com");
  EXPECT_GT(fs.root_guard->guard_stats().requests_seen, 0u);

  fs.root_guard->uninstall();
  fs.lrs->cache().clear();
  std::uint64_t seen = fs.root_guard->guard_stats().requests_seen;
  auto r = fs.resolve("www.foo.com");
  ASSERT_TRUE(r.ok);
  // The guard saw nothing new.
  EXPECT_EQ(fs.root_guard->guard_stats().requests_seen, seen);
}

}  // namespace
}  // namespace dnsguard
