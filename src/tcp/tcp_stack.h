// A miniature TCP implementation sufficient for DNS-over-TCP.
//
// Scope (deliberate): three-way handshake with optional SYN cookies,
// in-order reliable data transfer of small segments, FIN/RST teardown,
// idle reaping. Links in the simulator never reorder and only drop at
// saturated receive queues, so there is no retransmission machinery —
// a stalled connection is reclaimed by the owner's idle/duration policy,
// matching the DNS guard's "connection older than 5×RTT is removed" rule
// (§III.C).
//
// The stack is transport only: it owns no sockets and charges no CPU. The
// owning simulation Node feeds packets in via handle_packet() and provides
// a send function; CPU costs are charged by the node's cost model.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bounded_table.h"
#include "common/bytes.h"
#include "common/time.h"
#include "net/packet.h"
#include "obs/drop_reason.h"
#include "obs/metrics.h"
#include "tcp/syn_cookie.h"

namespace dnsguard::tcp {

using ConnId = std::uint64_t;

enum class TcpState : std::uint8_t {
  SynSent,
  SynReceived,
  Established,
  FinWait,    // we sent FIN, waiting for peer's ACK/FIN
  CloseWait,  // peer sent FIN, we have not closed yet
  LastAck,    // peer finned, we sent our FIN
  Closed,
};

[[nodiscard]] std::string tcp_state_name(TcpState s);

/// The stats fields are obs::Counter cells: they read and increment like
/// plain uint64s, and bind_metrics() publishes them in a MetricsRegistry
/// without copying.
struct TcpStackStats {
  obs::Counter syns_received;
  obs::Counter syn_cookies_sent;
  obs::Counter syn_cookies_accepted;
  obs::Counter syn_cookies_rejected;
  obs::Counter connections_established;
  obs::Counter connections_closed;
  obs::Counter connections_aborted;
  obs::Counter connections_reaped;
  obs::Counter connections_evicted;
  obs::Counter resets_sent;
  obs::Counter segments_in;
  obs::Counter segments_out;
};

class TcpStack {
 public:
  struct Callbacks {
    /// Connection fully established (either role).
    std::function<void(ConnId)> on_established;
    /// In-order stream data arrived.
    std::function<void(ConnId, BytesView)> on_data;
    /// Connection gone (normal close or abort).
    std::function<void(ConnId)> on_closed;
  };

  struct Options {
    /// Serve incoming SYNs statelessly with SYN cookies.
    bool syn_cookies = false;
    std::uint64_t syn_cookie_secret = 0x5ce7a11db01dfaceULL;
    /// Hard cap on tracked connections. At the cap the least-recently
    /// active connection (in practice an embryonic or abandoned one) is
    /// reset to make room — the moral equivalent of an OS dropping from a
    /// full accept backlog.
    std::size_t max_connections = 65536;
  };

  using SendFn = std::function<void(net::Packet)>;
  using ClockFn = std::function<SimTime()>;

  TcpStack(SendFn send, ClockFn clock, Callbacks callbacks, Options options);

  /// Accepts connections to this local port.
  void listen(std::uint16_t port);

  /// Initiates a client connection; returns the connection handle.
  ConnId connect(net::SocketAddr local, net::SocketAddr remote);

  /// Queues stream data on an established connection (sent immediately as
  /// one PSH segment; DNS messages always fit one segment here).
  bool send_data(ConnId id, BytesView data);

  /// Graceful close (FIN).
  void close(ConnId id);
  /// Abortive close (RST to peer, state dropped).
  void abort(ConnId id);

  /// Feeds one TCP packet addressed to this stack. Returns false if the
  /// packet did not belong to any connection or listener (caller may then
  /// RST or ignore).
  bool handle_packet(const net::Packet& packet);

  /// Drops every connection idle longer than `max_idle` or alive longer
  /// than `max_lifetime` (zero duration disables the respective check).
  /// Returns how many were reaped.
  std::size_t reap(SimDuration max_idle, SimDuration max_lifetime);

  [[nodiscard]] std::size_t connection_count() const { return conns_.size(); }
  [[nodiscard]] const TcpStackStats& stats() const { return stats_; }

  /// Publishes every stats cell under "<prefix>.<field>" (e.g.
  /// "guard.tcp.syn_cookies_rejected").
  void bind_metrics(obs::MetricsRegistry& registry, std::string_view prefix);

  /// Optional drop-reason sink: rejected SYN-cookie ACKs count as
  /// kSynCookieFail, reaped monitored connections as kProxyTimeout.
  void set_drop_counters(obs::DropCounters* drops) { drops_ = drops; }

  /// Optional journey hook, fired at connection milestones ("tcp.syn",
  /// "tcp.established", "tcp.closed") with the CLIENT side's address —
  /// the remote peer for accepted connections, the local endpoint for
  /// ones we initiated — so the owner can mark the client's query
  /// journey. Stage strings are literals.
  using JourneyFn =
      std::function<void(net::SocketAddr client, std::string_view stage)>;
  void set_journey_fn(JourneyFn fn) { journey_ = std::move(fn); }

  struct ConnectionInfo {
    ConnId id;
    net::SocketAddr local;
    net::SocketAddr remote;
    TcpState state;
    SimTime opened_at;
    SimTime last_activity;
  };
  [[nodiscard]] std::vector<ConnectionInfo> connections() const;
  [[nodiscard]] std::optional<ConnectionInfo> connection(ConnId id) const;
  [[nodiscard]] std::optional<net::SocketAddr> remote_of(ConnId id) const;

 private:
  struct Connection {
    ConnId id;
    net::SocketAddr local;
    net::SocketAddr remote;
    TcpState state = TcpState::Closed;
    std::uint32_t snd_nxt = 0;  // next sequence number we will send
    std::uint32_t rcv_nxt = 0;  // next sequence number we expect
    SimTime opened_at;
    SimTime last_activity;
    bool client_role = false;  // we initiated via connect()
  };

  // Key: (local, remote) — enough because IPs are unique per node here.
  struct ConnKey {
    net::SocketAddr local;
    net::SocketAddr remote;
    bool operator==(const ConnKey&) const = default;
  };
  struct ConnKeyHash {
    std::size_t operator()(const ConnKey& k) const {
      std::size_t h1 = std::hash<net::SocketAddr>{}(k.local);
      std::size_t h2 = std::hash<net::SocketAddr>{}(k.remote);
      return h1 ^ (h2 * 0x9e3779b97f4a7c15ULL);
    }
  };

  Connection* find(const ConnKey& key);
  Connection& create(net::SocketAddr local, net::SocketAddr remote,
                     TcpState state);
  void destroy(Connection& c, bool deliver_closed);
  void emit(net::SocketAddr from, net::SocketAddr to, net::TcpFlags flags,
            std::uint32_t seq, std::uint32_t ack, Bytes payload = {});
  void send_rst(const net::Packet& to_packet);
  std::uint32_t next_isn();

  SendFn send_;
  ClockFn clock_;
  Callbacks callbacks_;
  Options options_;
  SynCookieGenerator syn_cookies_;

  common::BoundedTable<ConnKey, Connection, ConnKeyHash> conns_;
  // DNSGUARD_LINT_ALLOW(bounded): 1:1 companion index of the bounded
  // conns_ table above — every insert/erase is paired, so its size is
  // capped by Options::max_connections transitively
  std::unordered_map<ConnId, ConnKey> by_id_;
  std::vector<std::uint16_t> listen_ports_;
  ConnId next_id_ = 1;
  std::uint32_t isn_counter_ = 0x1000;
  TcpStackStats stats_;
  obs::DropCounters* drops_ = nullptr;
  JourneyFn journey_;
};

/// DNS-over-TCP framing (RFC 1035 §4.2.2): each message is preceded by a
/// 2-byte big-endian length. StreamFramer buffers stream bytes and yields
/// complete DNS message payloads.
class StreamFramer {
 public:
  /// Appends stream data; returns any complete messages now available.
  std::vector<Bytes> push(BytesView data);

  [[nodiscard]] static Bytes frame(BytesView message);

  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }

 private:
  Bytes buf_;
};

}  // namespace dnsguard::tcp
