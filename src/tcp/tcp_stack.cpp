#include "tcp/tcp_stack.h"

#include <algorithm>

#include "common/log.h"

namespace dnsguard::tcp {

std::string tcp_state_name(TcpState s) {
  switch (s) {
    case TcpState::SynSent: return "SYN_SENT";
    case TcpState::SynReceived: return "SYN_RCVD";
    case TcpState::Established: return "ESTABLISHED";
    case TcpState::FinWait: return "FIN_WAIT";
    case TcpState::CloseWait: return "CLOSE_WAIT";
    case TcpState::LastAck: return "LAST_ACK";
    case TcpState::Closed: return "CLOSED";
  }
  return "?";
}

TcpStack::TcpStack(SendFn send, ClockFn clock, Callbacks callbacks,
                   Options options)
    : send_(std::move(send)),
      clock_(std::move(clock)),
      callbacks_(std::move(callbacks)),
      options_(options),
      syn_cookies_(options.syn_cookie_secret),
      conns_({.capacity = options.max_connections}) {
  conns_.set_evict_callback([this](const ConnKey&, Connection& c,
                                   common::EvictReason) {
    // Connection table full: reset the least-recently active victim so
    // its peer learns immediately, and tell the owner it is gone.
    stats_.resets_sent++;
    emit(c.local, c.remote, net::TcpFlags{.rst = true}, c.snd_nxt,
         c.rcv_nxt);
    stats_.connections_evicted++;
    by_id_.erase(c.id);
    if (drops_ != nullptr) drops_->count(obs::DropReason::kStateTableFull);
    if (callbacks_.on_closed) callbacks_.on_closed(c.id);
  });
}

void TcpStack::listen(std::uint16_t port) { listen_ports_.push_back(port); }

void TcpStack::bind_metrics(obs::MetricsRegistry& registry,
                            std::string_view prefix) {
  std::string p(prefix);
  registry.attach_counter(p + ".syns_received", stats_.syns_received);
  registry.attach_counter(p + ".syn_cookies_sent", stats_.syn_cookies_sent);
  registry.attach_counter(p + ".syn_cookies_accepted",
                          stats_.syn_cookies_accepted);
  registry.attach_counter(p + ".syn_cookies_rejected",
                          stats_.syn_cookies_rejected);
  registry.attach_counter(p + ".connections_established",
                          stats_.connections_established);
  registry.attach_counter(p + ".connections_closed",
                          stats_.connections_closed);
  registry.attach_counter(p + ".connections_aborted",
                          stats_.connections_aborted);
  registry.attach_counter(p + ".connections_reaped",
                          stats_.connections_reaped);
  registry.attach_counter(p + ".connections_evicted",
                          stats_.connections_evicted);
  registry.attach_counter(p + ".resets_sent", stats_.resets_sent);
  registry.attach_counter(p + ".segments_in", stats_.segments_in);
  registry.attach_counter(p + ".segments_out", stats_.segments_out);
  conns_.bind_metrics(registry, p + ".table");
}

std::uint32_t TcpStack::next_isn() {
  isn_counter_ += 64013;  // arbitrary odd stride: distinct, non-sequential
  return isn_counter_;
}

TcpStack::Connection* TcpStack::find(const ConnKey& key) {
  return conns_.find(key, clock_());
}

TcpStack::Connection& TcpStack::create(net::SocketAddr local,
                                       net::SocketAddr remote,
                                       TcpState state) {
  ConnKey key{local, remote};
  if (Connection* stale = find(key)) {
    // A fresh handshake on a 4-tuple we already track supersedes the old
    // connection. Tear it down properly — overwriting in place used to
    // leave the old id dangling in by_id_ forever.
    stats_.connections_aborted++;
    destroy(*stale, /*deliver_closed=*/true);
  }
  auto r = conns_.try_emplace(key, clock_());
  Connection& c = *r.value;  // LRU-evict mode: the insert always lands
  c.id = next_id_++;
  c.local = local;
  c.remote = remote;
  c.state = state;
  c.opened_at = clock_();
  c.last_activity = c.opened_at;
  by_id_[c.id] = key;
  return c;
}

void TcpStack::destroy(Connection& c, bool deliver_closed) {
  ConnId id = c.id;
  const net::SocketAddr client = c.client_role ? c.local : c.remote;
  by_id_.erase(id);
  conns_.erase(ConnKey{c.local, c.remote});  // invalidates c
  if (journey_) journey_(client, "tcp.closed");
  if (deliver_closed && callbacks_.on_closed) callbacks_.on_closed(id);
}

void TcpStack::emit(net::SocketAddr from, net::SocketAddr to,
                    net::TcpFlags flags, std::uint32_t seq, std::uint32_t ack,
                    Bytes payload) {
  stats_.segments_out++;
  send_(net::Packet::make_tcp(from, to, flags, seq, ack, std::move(payload)));
}

void TcpStack::send_rst(const net::Packet& to_packet) {
  stats_.resets_sent++;
  const auto& h = to_packet.tcp();
  emit(to_packet.dst(), to_packet.src(), net::TcpFlags{.rst = true},
       h.ack, h.seq + 1);
}

ConnId TcpStack::connect(net::SocketAddr local, net::SocketAddr remote) {
  Connection& c = create(local, remote, TcpState::SynSent);
  c.client_role = true;
  if (journey_) journey_(local, "tcp.syn");
  c.snd_nxt = next_isn();
  emit(local, remote, net::TcpFlags{.syn = true}, c.snd_nxt, 0);
  c.snd_nxt += 1;  // SYN consumes one sequence number
  return c.id;
}

bool TcpStack::send_data(ConnId id, BytesView data) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  Connection* c = find(it->second);
  if (c == nullptr || c->state != TcpState::Established) return false;
  emit(c->local, c->remote, net::TcpFlags{.psh = true, .ack = true},
       c->snd_nxt, c->rcv_nxt, Bytes(data.begin(), data.end()));
  c->snd_nxt += static_cast<std::uint32_t>(data.size());
  c->last_activity = clock_();
  return true;
}

void TcpStack::close(ConnId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  Connection* c = find(it->second);
  if (c == nullptr) return;
  if (c->state == TcpState::Established) {
    emit(c->local, c->remote, net::TcpFlags{.fin = true, .ack = true},
         c->snd_nxt, c->rcv_nxt);
    c->snd_nxt += 1;
    c->state = TcpState::FinWait;
  } else if (c->state == TcpState::CloseWait) {
    emit(c->local, c->remote, net::TcpFlags{.fin = true, .ack = true},
         c->snd_nxt, c->rcv_nxt);
    c->snd_nxt += 1;
    c->state = TcpState::LastAck;
  }
}

void TcpStack::abort(ConnId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  Connection* c = find(it->second);
  if (c == nullptr) return;
  stats_.resets_sent++;
  emit(c->local, c->remote, net::TcpFlags{.rst = true}, c->snd_nxt,
       c->rcv_nxt);
  stats_.connections_aborted++;
  destroy(*c, /*deliver_closed=*/true);
}

bool TcpStack::handle_packet(const net::Packet& packet) {
  if (!packet.is_tcp()) return false;
  stats_.segments_in++;
  const net::TcpHeader& h = packet.tcp();
  ConnKey key{packet.dst(), packet.src()};
  Connection* c = find(key);
  SimTime now = clock_();

  // --- no existing connection state ---------------------------------------
  if (c == nullptr) {
    bool listening = std::find(listen_ports_.begin(), listen_ports_.end(),
                               h.dst_port) != listen_ports_.end();
    if (h.flags.syn && !h.flags.ack) {
      if (!listening) {
        if (drops_ != nullptr) drops_->count(obs::DropReason::kStraySegment);
        send_rst(packet);
        return false;
      }
      stats_.syns_received++;
      if (journey_) journey_(packet.src(), "tcp.syn");
      if (options_.syn_cookies) {
        // Stateless: encode the cookie in our ISN, keep no state.
        std::uint32_t isn =
            syn_cookies_.make(packet.src(), packet.dst(), h.seq, now);
        stats_.syn_cookies_sent++;
        emit(packet.dst(), packet.src(),
             net::TcpFlags{.syn = true, .ack = true}, isn, h.seq + 1);
        return true;
      }
      Connection& nc = create(packet.dst(), packet.src(),
                              TcpState::SynReceived);
      nc.rcv_nxt = h.seq + 1;
      nc.snd_nxt = next_isn();
      emit(nc.local, nc.remote, net::TcpFlags{.syn = true, .ack = true},
           nc.snd_nxt, nc.rcv_nxt);
      nc.snd_nxt += 1;
      return true;
    }
    if (h.flags.ack && !h.flags.syn && !h.flags.rst && options_.syn_cookies &&
        listening) {
      // Possibly the third packet of a cookie handshake: ack-1 must be a
      // valid cookie for (src, dst, client_isn = seq-1).
      std::uint32_t acked_isn = h.ack - 1;
      if (syn_cookies_.validate(packet.src(), packet.dst(), h.seq - 1,
                                acked_isn, now)) {
        stats_.syn_cookies_accepted++;
        Connection& nc =
            create(packet.dst(), packet.src(), TcpState::Established);
        nc.rcv_nxt = h.seq;
        nc.snd_nxt = h.ack;
        stats_.connections_established++;
        if (journey_) journey_(nc.remote, "tcp.established");
        if (callbacks_.on_established) callbacks_.on_established(nc.id);
        // The ACK may carry data already (common for eager clients).
        if (!packet.payload.empty()) {
          Connection* cc = find(ConnKey{packet.dst(), packet.src()});
          if (cc != nullptr && h.seq == cc->rcv_nxt) {
            cc->rcv_nxt += static_cast<std::uint32_t>(packet.payload.size());
            cc->last_activity = now;
            emit(cc->local, cc->remote, net::TcpFlags{.ack = true},
                 cc->snd_nxt, cc->rcv_nxt);
            if (callbacks_.on_data) {
              callbacks_.on_data(cc->id, BytesView(packet.payload));
            }
          }
        }
        return true;
      }
      stats_.syn_cookies_rejected++;
      if (drops_ != nullptr) drops_->count(obs::DropReason::kSynCookieFail);
      send_rst(packet);
      return false;
    }
    if (drops_ != nullptr) drops_->count(obs::DropReason::kStraySegment);
    if (!h.flags.rst) send_rst(packet);
    return false;
  }

  // --- existing connection --------------------------------------------------
  c->last_activity = now;

  if (h.flags.rst) {
    stats_.connections_aborted++;
    destroy(*c, /*deliver_closed=*/true);
    return true;
  }

  switch (c->state) {
    case TcpState::SynSent: {
      if (h.flags.syn && h.flags.ack && h.ack == c->snd_nxt) {
        c->rcv_nxt = h.seq + 1;
        c->state = TcpState::Established;
        emit(c->local, c->remote, net::TcpFlags{.ack = true}, c->snd_nxt,
             c->rcv_nxt);
        stats_.connections_established++;
        if (journey_) journey_(c->local, "tcp.established");
        if (callbacks_.on_established) callbacks_.on_established(c->id);
        return true;
      }
      return true;  // stray segment during handshake: ignore
    }
    case TcpState::SynReceived: {
      if (h.flags.ack && h.ack == c->snd_nxt) {
        c->state = TcpState::Established;
        stats_.connections_established++;
        if (journey_) journey_(c->remote, "tcp.established");
        if (callbacks_.on_established) callbacks_.on_established(c->id);
        // fall through into data handling below for piggybacked payloads
      } else {
        return true;
      }
      [[fallthrough]];
    }
    case TcpState::Established:
    case TcpState::FinWait:
    case TcpState::CloseWait: {
      ConnId id = c->id;
      if (!packet.payload.empty()) {
        if (h.seq == c->rcv_nxt) {
          c->rcv_nxt += static_cast<std::uint32_t>(packet.payload.size());
          emit(c->local, c->remote, net::TcpFlags{.ack = true}, c->snd_nxt,
               c->rcv_nxt);
          if (callbacks_.on_data) {
            callbacks_.on_data(id, BytesView(packet.payload));
          }
          // Callbacks may have closed/aborted the connection.
          c = find(key);
          if (c == nullptr) return true;
        } else {
          // Out-of-order/duplicate: re-ACK what we expect.
          emit(c->local, c->remote, net::TcpFlags{.ack = true}, c->snd_nxt,
               c->rcv_nxt);
          return true;
        }
      }
      if (h.flags.fin) {
        c->rcv_nxt += 1;
        emit(c->local, c->remote, net::TcpFlags{.ack = true}, c->snd_nxt,
             c->rcv_nxt);
        if (c->state == TcpState::FinWait) {
          // Both directions closed.
          stats_.connections_closed++;
          destroy(*c, /*deliver_closed=*/true);
        } else {
          c->state = TcpState::CloseWait;
        }
      }
      return true;
    }
    case TcpState::LastAck: {
      if (h.flags.ack && h.ack == c->snd_nxt) {
        stats_.connections_closed++;
        destroy(*c, /*deliver_closed=*/true);
      }
      return true;
    }
    case TcpState::Closed:
      return true;
  }
  return true;
}

std::size_t TcpStack::reap(SimDuration max_idle, SimDuration max_lifetime) {
  SimTime now = clock_();
  std::vector<ConnId> victims;
  conns_.for_each([&](const ConnKey&, const Connection& c) {
    bool idle_out = max_idle.ns > 0 && (now - c.last_activity) > max_idle;
    bool life_out = max_lifetime.ns > 0 && (now - c.opened_at) > max_lifetime;
    if (idle_out || life_out) victims.push_back(c.id);
  });
  for (ConnId id : victims) abort(id);
  stats_.connections_reaped += victims.size();
  if (drops_ != nullptr && !victims.empty()) {
    drops_->count(obs::DropReason::kProxyTimeout, victims.size());
  }
  return victims.size();
}

std::vector<TcpStack::ConnectionInfo> TcpStack::connections() const {
  std::vector<ConnectionInfo> out;
  out.reserve(conns_.size());
  conns_.for_each([&](const ConnKey&, const Connection& c) {
    out.push_back(ConnectionInfo{c.id, c.local, c.remote, c.state,
                                 c.opened_at, c.last_activity});
  });
  return out;
}

std::optional<TcpStack::ConnectionInfo> TcpStack::connection(
    ConnId id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  const Connection* c = conns_.peek(it->second, clock_());
  if (c == nullptr) return std::nullopt;
  return ConnectionInfo{c->id, c->local, c->remote, c->state, c->opened_at,
                        c->last_activity};
}

std::optional<net::SocketAddr> TcpStack::remote_of(ConnId id) const {
  auto info = connection(id);
  if (!info) return std::nullopt;
  return info->remote;
}

std::vector<Bytes> StreamFramer::push(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  std::vector<Bytes> out;
  std::size_t pos = 0;
  while (buf_.size() - pos >= 2) {
    std::size_t len = static_cast<std::size_t>(buf_[pos]) << 8 | buf_[pos + 1];
    if (buf_.size() - pos - 2 < len) break;
    out.emplace_back(buf_.begin() + static_cast<std::ptrdiff_t>(pos + 2),
                     buf_.begin() + static_cast<std::ptrdiff_t>(pos + 2 + len));
    pos += 2 + len;
  }
  if (pos > 0) buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
  return out;
}

Bytes StreamFramer::frame(BytesView message) {
  Bytes out;
  out.reserve(message.size() + 2);
  out.push_back(static_cast<std::uint8_t>(message.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(message.size()));
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

}  // namespace dnsguard::tcp
