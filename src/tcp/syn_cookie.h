// SYN cookies (Bernstein), the stateless defense the paper's TCP proxy
// enables against SYN floods (§III.C).
//
// The server encodes a keyed hash of the connection 4-tuple and a coarse
// time counter into the initial sequence number of its SYN-ACK and keeps
// NO state. When the third handshake packet (the client's ACK) arrives,
// the server recomputes the hash and accepts the connection only if
// ack-1 matches — proving the client really owns its source address,
// which is exactly the cookie property the DNS guard wants.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "net/ipv4.h"

namespace dnsguard::tcp {

class SynCookieGenerator {
 public:
  /// `secret` keys the hash; `slot_length` is the coarse time-counter
  /// granularity (RFC-classic: 64 s; we default to 8 s so tests can
  /// exercise expiry quickly).
  explicit SynCookieGenerator(std::uint64_t secret,
                              SimDuration slot_length = seconds(8))
      : secret_(secret), slot_length_(slot_length) {}

  /// ISN to place in the SYN-ACK for a SYN from `client` to `server`
  /// carrying client ISN `client_isn`.
  [[nodiscard]] std::uint32_t make(net::SocketAddr client,
                                   net::SocketAddr server,
                                   std::uint32_t client_isn,
                                   SimTime now) const;

  /// Validates the ACK of the third handshake packet. `acked_isn` is
  /// ack - 1 as received. Accepts the current and previous time slot.
  [[nodiscard]] bool validate(net::SocketAddr client, net::SocketAddr server,
                              std::uint32_t client_isn,
                              std::uint32_t acked_isn, SimTime now) const;

 private:
  [[nodiscard]] std::uint32_t hash(net::SocketAddr client,
                                   net::SocketAddr server,
                                   std::uint32_t client_isn,
                                   std::uint64_t slot) const;

  std::uint64_t secret_;
  SimDuration slot_length_;
};

}  // namespace dnsguard::tcp
