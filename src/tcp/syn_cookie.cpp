#include "tcp/syn_cookie.h"

namespace dnsguard::tcp {
namespace {

// 3-bit slot counter in the top bits, 29-bit hash below. Mirrors the
// classic layout (counter + hash) without the MSS index, which the
// simulator does not need.
constexpr std::uint32_t kSlotBits = 3;
constexpr std::uint32_t kHashMask = (1u << (32 - kSlotBits)) - 1;

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::uint32_t SynCookieGenerator::hash(net::SocketAddr client,
                                       net::SocketAddr server,
                                       std::uint32_t client_isn,
                                       std::uint64_t slot) const {
  std::uint64_t h = secret_;
  h = mix(h ^ (static_cast<std::uint64_t>(client.ip.value()) << 16 |
               client.port));
  h = mix(h ^ (static_cast<std::uint64_t>(server.ip.value()) << 16 |
               server.port));
  h = mix(h ^ client_isn);
  h = mix(h ^ slot);
  return static_cast<std::uint32_t>(h) & kHashMask;
}

std::uint32_t SynCookieGenerator::make(net::SocketAddr client,
                                       net::SocketAddr server,
                                       std::uint32_t client_isn,
                                       SimTime now) const {
  std::uint64_t slot =
      static_cast<std::uint64_t>(now.ns / slot_length_.ns);
  std::uint32_t slot_bits = static_cast<std::uint32_t>(slot & ((1u << kSlotBits) - 1));
  return (slot_bits << (32 - kSlotBits)) |
         hash(client, server, client_isn, slot);
}

bool SynCookieGenerator::validate(net::SocketAddr client,
                                  net::SocketAddr server,
                                  std::uint32_t client_isn,
                                  std::uint32_t acked_isn, SimTime now) const {
  std::uint64_t current_slot =
      static_cast<std::uint64_t>(now.ns / slot_length_.ns);
  std::uint32_t slot_bits = acked_isn >> (32 - kSlotBits);
  std::uint32_t presented_hash = acked_isn & kHashMask;

  // The cookie's slot counter must correspond to the current or previous
  // slot (handshake RTT may straddle a boundary).
  for (std::uint64_t candidate : {current_slot, current_slot - 1}) {
    if (static_cast<std::uint32_t>(candidate & ((1u << kSlotBits) - 1)) !=
        slot_bits) {
      continue;
    }
    if (hash(client, server, client_isn, candidate) == presented_hash) {
      return true;
    }
  }
  return false;
}

}  // namespace dnsguard::tcp
