// ClientPopulationNode — an aggregate client-population engine that
// models millions of LRS clients without one sim::Node per client.
//
// The scalability trick is hybrid fidelity: client behavior is kept as
// *fluid* closed-form distributions at the edge (who queries, what, how
// often), and concrete packets are materialized only at the guard
// boundary. One node therefore stands in for the whole Internet-facing
// client population:
//
//   - qname popularity is Zipf-distributed (ZipfSampler) and feeds a
//     shared resolver-cache model, so only cache *misses* reach the
//     guard — popular names are absorbed exactly as RrCaches absorb them;
//   - per-client query rates are heavy-tailed (LognormalRateClasses:
//     the population is stratified into rate classes discretizing a
//     lognormal, and each materialized query picks its sender with
//     probability proportional to that client's rate);
//   - client RTTs follow an empirical bucket distribution (RttModel) —
//     cold clients pay their sampled RTT before the cookie-bearing
//     retry, so acquisition latency spreads realistically;
//   - aggregate load follows a diurnal curve plus scripted flash-crowd
//     events, realized as a non-homogeneous Poisson process (thinning),
//     so a "flash crowd" is a surge of *legitimate* queries from a
//     partly fresh source population concentrated on hot names.
//
// Everything is drawn from one explicitly seeded common::Rng, so a
// scenario is bit-for-bit reproducible in sim time, and the arrival
// stream can be partitioned across shards by source hash without
// changing its contents (PopulationEngine generates the master sequence;
// a node emits only its shard's slice).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bounded_table.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/time.h"
#include "guard/cookie_engine.h"
#include "net/ipv4.h"
#include "obs/metrics.h"
#include "sim/node.h"

namespace dnsguard::workload {

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |error| < 1.2e-9) — quantile machinery for the lognormal rate classes.
[[nodiscard]] double inverse_normal_cdf(double p);

/// Zipf(s) popularity over ranks [0, universe): P(rank r) ∝ 1/(r+1)^s.
/// Sampling is inverse-CDF via binary search on a precomputed table.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t universe, double exponent);

  /// Maps a uniform u in [0,1) to a rank.
  [[nodiscard]] std::uint32_t sample(double u) const;
  [[nodiscard]] double probability(std::uint32_t rank) const;
  [[nodiscard]] std::uint32_t universe() const {
    return static_cast<std::uint32_t>(cdf_.size());
  }

 private:
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

/// Heavy-tailed per-client rates: the population is split into K equal-
/// population classes whose per-client rates discretize a lognormal
/// (median exp(mu), shape sigma). A query's *sender class* is sampled
/// proportionally to class aggregate rate — fast senders appear as often
/// as their rate share dictates, without per-client state.
class LognormalRateClasses {
 public:
  LognormalRateClasses(int classes, double mu, double sigma);

  /// Maps a uniform u to the class of the next query's sender.
  [[nodiscard]] int sample_class(double u) const;
  /// Per-client queries/sec of class k (relative scale; the engine
  /// normalizes aggregate load to Config::base_rate).
  [[nodiscard]] double rate(int k) const { return rates_[k]; }
  [[nodiscard]] int classes() const { return static_cast<int>(rates_.size()); }
  /// Mean per-client rate across the population (relative scale).
  [[nodiscard]] double mean_rate() const { return mean_; }

 private:
  std::vector<double> rates_;
  std::vector<double> cdf_;  // class share of aggregate traffic
  double mean_ = 0.0;
};

/// Empirical RTT distribution as weighted buckets.
class RttModel {
 public:
  struct Bucket {
    double weight;
    SimDuration rtt;
  };

  explicit RttModel(std::vector<Bucket> buckets);
  /// The default Internet mix: regional to intercontinental.
  RttModel() : RttModel(default_buckets()) {}

  [[nodiscard]] SimDuration sample(double u) const;
  [[nodiscard]] static std::vector<Bucket> default_buckets();

 private:
  std::vector<Bucket> buckets_;
  std::vector<double> cdf_;
};

/// A scripted flash-crowd: a surge of legitimate traffic that ramps up,
/// holds, and decays, sourced partly from clients never seen before and
/// concentrated on a hot qname — the classic event a DNS defense must
/// NOT classify as an attack.
struct FlashCrowdEvent {
  SimTime start{};
  SimDuration ramp = seconds(1);
  SimDuration hold = seconds(2);
  SimDuration decay = seconds(1);
  /// Peak extra load, as a multiple of Config::base_rate.
  double peak_multiplier = 4.0;
  /// Fraction of flash queries from a fresh cohort of sources that the
  /// steady-state population never uses (source-population growth).
  double new_source_fraction = 0.7;
  /// Size of that fresh cohort (distinct new client ids).
  std::uint64_t cohort_clients = 100000;
  /// Flash queries concentrate on this popularity rank...
  std::uint32_t hot_rank = 0;
  /// ...with this probability (the rest draw from the normal Zipf).
  double hot_fraction = 0.8;

  /// Envelope in [0,1] at time t (0 outside the event).
  [[nodiscard]] double envelope(SimTime t) const;
};

/// One materialized client query at the guard boundary.
struct Arrival {
  SimTime at{};                // edge arrival time
  std::uint64_t client = 0;    // population client id (cohort-offset)
  net::Ipv4Address src;        // client source address
  std::uint32_t qname_rank = 0;
  SimDuration rtt{};           // the client's sampled RTT
  bool flash = false;          // belongs to a flash-crowd surge
  bool primed = false;         // already holds a valid cookie
  bool cache_hit = false;      // absorbed by the resolver cache model
};

struct PopulationConfig {
  /// Modeled population size (client ids [0, num_clients)).
  std::uint64_t num_clients = 1000000;
  /// Clients map into this prefix (id -> mixed hash -> base + offset).
  net::Ipv4Address prefix_base{100, 0, 0, 0};
  int prefix_len = 8;

  /// Aggregate steady-state query rate at the diurnal mean (queries/sec
  /// *offered by clients*; the cache model absorbs its share).
  double base_rate = 20000.0;

  // --- popularity & caching ---
  std::uint32_t qname_universe = 100000;
  double zipf_exponent = 1.0;
  /// Shared resolver caches: clients aggregate into this many cache
  /// groups (group = hash(client) % resolver_groups); a (group, rank)
  /// pair stays cached for cache_ttl after the miss that filled it.
  std::uint32_t resolver_groups = 1024;
  SimDuration cache_ttl = seconds(60);
  /// Bounded tracking of (group, rank) cache lines; cold pairs beyond
  /// the capacity simply miss (they would have expired anyway).
  std::size_t cache_capacity = 1 << 18;

  // --- per-client rates ---
  int rate_classes = 32;
  /// Lognormal shape of per-client rates (sigma ~1.5-2 is heavy-tailed;
  /// mu only sets the relative scale and is normalized away).
  double rate_sigma = 1.6;

  // --- RTT ---
  std::vector<RttModel::Bucket> rtt_buckets = RttModel::default_buckets();

  // --- load envelope ---
  /// Diurnal multiplier 1 + amplitude * sin(2*pi*(t + phase)/period).
  SimDuration diurnal_period{};  // zero = flat load
  double diurnal_amplitude = 0.3;
  SimDuration diurnal_phase{};
  std::vector<FlashCrowdEvent> flash_events;

  // --- cookie behavior (modified-DNS scheme) ---
  /// Fraction of steady-state clients that already hold a valid cookie
  /// (the paper's cache-hit steady state). Cold clients request one and
  /// retry after their RTT. Flash-cohort clients are always cold.
  double primed_fraction = 0.9;
  /// Key seed matching the guard's, so primed clients mint cookies that
  /// verify (models "acquired earlier" without replaying the dance).
  std::uint64_t cookie_key_seed = 0x1337c00c1e5eedULL;

  std::uint64_t seed = 2006;
};

/// Deterministic arrival-stream generator (no sim::Node machinery): the
/// non-homogeneous Poisson thinning loop plus all per-arrival sampling.
/// Tests drive it directly; ClientPopulationNode wraps it.
class PopulationEngine {
 public:
  explicit PopulationEngine(PopulationConfig config);

  /// The next materialized arrival strictly after the previous one.
  [[nodiscard]] Arrival next();

  /// Aggregate offered rate at `t` (diurnal + flash envelopes applied).
  [[nodiscard]] double rate_at(SimTime t) const;
  /// The thinning bound: max over all envelopes.
  [[nodiscard]] double max_rate() const { return max_rate_; }

  [[nodiscard]] const PopulationConfig& config() const { return config_; }
  [[nodiscard]] const ZipfSampler& zipf() const { return zipf_; }
  [[nodiscard]] const LognormalRateClasses& rate_model() const {
    return rates_;
  }

  /// The client id's source address (pure function: id -> IP).
  [[nodiscard]] net::Ipv4Address client_address(std::uint64_t client) const;
  /// Stable shard assignment of an arrival (by source address hash);
  /// partitioning the stream by this and merging reproduces it exactly.
  [[nodiscard]] static std::size_t shard_of(net::Ipv4Address src,
                                            std::size_t shards);

 private:
  [[nodiscard]] double flash_rate_at(SimTime t, const FlashCrowdEvent& e) const;
  [[nodiscard]] std::uint64_t sample_client(bool flash_new_cohort,
                                            std::uint64_t cohort_base,
                                            std::uint64_t cohort_size);

  PopulationConfig config_;
  ZipfSampler zipf_;
  LognormalRateClasses rates_;
  RttModel rtt_;
  Rng rng_;
  SimTime cursor_{};
  double max_rate_ = 0.0;
  std::uint32_t prefix_span_ = 0;
  common::BoundedTable<std::uint64_t, SimTime> cache_;
};

/// Counter cells; attached to the registry as "population.*".
struct PopulationStats {
  obs::Counter offered;       // client-side arrivals, incl. cache hits
  obs::Counter cache_hits;    // absorbed by the resolver cache model
  obs::Counter sent;          // packets materialized toward the guard
  obs::Counter flash_sent;    // of which flash-crowd surge queries
  obs::Counter acquisitions;  // cookie replies answered with a retry
  obs::Counter completed;     // DNS answers received (goodput)
  obs::Counter unexpected;    // responses that fit no category

  void bind(obs::MetricsRegistry& registry, std::string_view prefix) {
    std::string p(prefix);
    registry.attach_counter(p + ".offered", offered);
    registry.attach_counter(p + ".cache_hits", cache_hits);
    registry.attach_counter(p + ".sent", sent);
    registry.attach_counter(p + ".flash_sent", flash_sent);
    registry.attach_counter(p + ".acquisitions", acquisitions);
    registry.attach_counter(p + ".completed", completed);
    registry.attach_counter(p + ".unexpected", unexpected);
  }
};

/// The population as a single simulator node: owns the engine, opens the
/// client prefix route, materializes packets at the boundary, and speaks
/// just enough of the modified-DNS dance for cold clients (cookie reply
/// -> RTT-delayed retry with the granted cookie).
class ClientPopulationNode : public sim::Node {
 public:
  struct Config {
    PopulationConfig population;
    net::SocketAddr target;  // the protected ANS's public address
    std::string qname_suffix = "pop.example.";
    /// Emit only arrivals whose source hashes to this shard — running
    /// shard_count nodes with indices 0..N-1 reproduces the single-node
    /// stream exactly (determinism across shard counts).
    std::size_t shard_count = 1;
    std::size_t shard_index = 0;
  };

  ClientPopulationNode(sim::Simulator& sim, std::string name, Config config);

  /// Opens the client prefix route and starts materializing arrivals.
  void start();
  void stop();

  [[nodiscard]] const PopulationStats& population_stats() const {
    return stats_;
  }
  [[nodiscard]] PopulationEngine& engine() { return engine_; }
  /// Order-insensitive digest of every packet sent (determinism tests).
  [[nodiscard]] std::uint64_t sent_digest() const { return digest_; }

 protected:
  SimDuration process(const net::Packet& packet) override;

 private:
  void pump();
  void emit_arrival(const Arrival& a);
  [[nodiscard]] dns::DomainName qname_for(std::uint32_t rank) const;

  Config config_;
  PopulationEngine engine_;
  guard::CookieEngine minter_;
  PopulationStats stats_;
  std::uint64_t digest_ = 0;
  std::uint64_t epoch_ = 0;  // invalidates scheduled pumps on stop
  bool running_ = false;
};

}  // namespace dnsguard::workload
