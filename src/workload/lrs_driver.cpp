#include "workload/lrs_driver.h"

#include "guard/cookie_engine.h"

namespace dnsguard::workload {

std::string drive_mode_name(DriveMode m) {
  switch (m) {
    case DriveMode::PlainUdp: return "plain-udp";
    case DriveMode::NsNameMiss: return "ns-name/miss";
    case DriveMode::NsNameHit: return "ns-name/hit";
    case DriveMode::FabricatedMiss: return "fabricated-ns-ip/miss";
    case DriveMode::FabricatedHit: return "fabricated-ns-ip/hit";
    case DriveMode::ModifiedMiss: return "modified-dns/miss";
    case DriveMode::ModifiedHit: return "modified-dns/hit";
    case DriveMode::TcpDirect: return "tcp/direct";
    case DriveMode::TcpWithRedirect: return "tcp/redirect";
  }
  return "?";
}

LrsSimulatorNode::LrsSimulatorNode(sim::Simulator& sim, std::string name,
                                   Config config)
    : sim::Node(sim, std::move(name), /*rx_queue_capacity=*/16384),
      config_(std::move(config)),
      rng_(config_.seed) {
  set_profile_stage(obs::prof::Stage::kDriverService);
  qname_ = dns::DomainName::parse(config_.qname).value_or(dns::DomainName{});
  zone_ = dns::DomainName::parse(config_.zone).value_or(dns::DomainName{});
  tcp_ = std::make_unique<tcp::TcpStack>(
      [this](net::Packet p) { send(std::move(p)); },
      [this] { return now(); },
      tcp::TcpStack::Callbacks{
          .on_established =
              [this](tcp::ConnId id) {
                auto it = conn_to_worker_.find(id);
                if (it == conn_to_worker_.end()) return;
                Worker& w = workers_[static_cast<std::size_t>(it->second)];
                if (!w.tcp_query.empty()) {
                  tcp_->send_data(id, BytesView(w.tcp_query));
                }
              },
          .on_data = [this](tcp::ConnId id,
                            BytesView data) { on_tcp_data(id, data); },
          .on_closed =
              [this](tcp::ConnId id) {
                framers_.erase(id);
                conn_to_worker_.erase(id);
              },
      },
      tcp::TcpStack::Options{});
  stats_.bind(this->sim().metrics(), "driver");
  // TCP handshake milestones ride under our client-side endpoint; the
  // worker's journey aliases that key in start_tcp().
  tcp_->set_journey_fn([this](net::SocketAddr client, std::string_view stage) {
    this->sim().journeys().mark({client.ip.value(), client.port, 0}, stage,
                                now());
  });
}

void LrsSimulatorNode::journey_touch(Worker& worker, std::uint16_t qid,
                                     std::uint32_t qhash) {
  obs::JourneyTracker& jt = sim().journeys();
  if (!jt.enabled()) return;
  obs::JourneyKey key{config_.address.value(), qid, qhash};
  if (!worker.jkey_open) {
    worker.jkey = key;
    worker.jkey_open = true;
    jt.mark(key, "drv.send", now());
  } else {
    jt.alias(worker.jkey, key);
    jt.mark(worker.jkey, "drv.exchange", now());
  }
}

void LrsSimulatorNode::journey_end(Worker& worker, std::string_view stage,
                                   bool ok) {
  if (!worker.jkey_open) return;
  worker.jkey_open = false;
  if (!sim().journeys().enabled()) return;
  sim().journeys().end(worker.jkey, stage, now(), ok);
}

void LrsSimulatorNode::start() {
  if (running_) return;
  running_ = true;
  workers_.assign(static_cast<std::size_t>(config_.concurrency), Worker{});
  // Stagger worker start-up (~10 us apart) so thousands of workers don't
  // fire one synchronized burst that overflows queues before steady state
  // — the paper's simulator likewise "first starts up the specified
  // number of TCP connections".
  for (int w = 0; w < config_.concurrency; ++w) {
    schedule_in(microseconds(10 * w), [this, w] {
      if (running_) begin_request(w);
    });
  }
}

void LrsSimulatorNode::stop() {
  running_ = false;
  qid_to_worker_.clear();
}

dns::Message LrsSimulatorNode::make_query(std::uint16_t id,
                                          const dns::DomainName& name,
                                          dns::RrType type) const {
  return dns::Message::query(id, name, type, /*recursion_desired=*/false);
}

void LrsSimulatorNode::begin_request(int w) {
  if (!running_) return;
  Worker& worker = workers_[static_cast<std::size_t>(w)];
  worker.request_started = now();

  switch (config_.mode) {
    case DriveMode::PlainUdp: {
      worker.stage = 0;
      send_exchange(w, make_query(0, qname_), config_.target);
      return;
    }
    case DriveMode::NsNameMiss:
    case DriveMode::FabricatedMiss: {
      worker.stage = 0;
      send_exchange(w, make_query(0, qname_), config_.target);
      return;
    }
    case DriveMode::NsNameHit: {
      if (!worker.primed) {
        worker.stage = 0;
        send_exchange(w, make_query(0, qname_), config_.target);
      } else {
        worker.stage = 1;
        send_exchange(w, make_query(0, worker.fabricated_name),
                      config_.target);
      }
      return;
    }
    case DriveMode::FabricatedHit: {
      if (!worker.primed) {
        worker.stage = 0;
        send_exchange(w, make_query(0, qname_), config_.target);
      } else {
        worker.stage = 2;
        send_exchange(w, make_query(0, qname_),
                      {worker.cookie2_address, net::kDnsPort});
      }
      return;
    }
    case DriveMode::ModifiedMiss:
    case DriveMode::ModifiedHit: {
      if (config_.mode == DriveMode::ModifiedHit && worker.primed) {
        worker.stage = 1;
        dns::Message q = make_query(0, qname_);
        guard::CookieEngine::attach_txt_cookie(q, worker.cookie, 0);
        send_exchange(w, std::move(q), config_.target);
      } else {
        worker.stage = 0;
        dns::Message q = make_query(0, qname_);
        guard::CookieEngine::attach_txt_cookie(q, crypto::Cookie{}, 0);
        send_exchange(w, std::move(q), config_.target);
      }
      return;
    }
    case DriveMode::TcpDirect: {
      worker.stage = 1;
      start_tcp(w);
      arm_timeout(w);
      return;
    }
    case DriveMode::TcpWithRedirect: {
      worker.stage = 0;
      send_exchange(w, make_query(0, qname_), config_.target);
      return;
    }
  }
}

void LrsSimulatorNode::send_exchange(int w, dns::Message query,
                                     net::SocketAddr to) {
  Worker& worker = workers_[static_cast<std::size_t>(w)];
  // Allocate a fresh query id not in flight.
  std::uint16_t qid;
  do {
    qid = next_qid_++;
  } while (qid == 0 || qid_to_worker_.count(qid) > 0);
  // Forget the previous exchange's id, if any.
  if (worker.pending_qid != 0) qid_to_worker_.erase(worker.pending_qid);
  worker.pending_qid = qid;
  qid_to_worker_[qid] = w;
  query.header.id = qid;
  journey_touch(worker, qid,
                query.question() != nullptr ? query.question()->qname.hash32()
                                            : 0);

  stats_.exchanges_sent++;
  send(net::Packet::make_udp({config_.address, 32000}, to,
                             query.encode_pooled()));
  arm_timeout(w);
}

void LrsSimulatorNode::arm_timeout(int w) {
  Worker& worker = workers_[static_cast<std::size_t>(w)];
  std::uint64_t gen = ++worker.timer_generation;
  schedule_in(config_.timeout, [this, w, gen] { on_timeout(w, gen); });
}

void LrsSimulatorNode::on_timeout(int w, std::uint64_t generation) {
  if (!running_) return;
  Worker& worker = workers_[static_cast<std::size_t>(w)];
  if (worker.timer_generation != generation) return;
  stats_.timeouts++;
  journey_end(worker, "drv.timeout", /*ok=*/false);
  if (worker.pending_qid != 0) {
    qid_to_worker_.erase(worker.pending_qid);
    worker.pending_qid = 0;
  }
  if (worker.conn != 0) {
    tcp_->abort(worker.conn);
    worker.conn = 0;
  }
  // A timed-out exchange may mean the learned cookie state went stale
  // (e.g. the guard rotated keys twice): re-learn from scratch.
  worker.primed = false;
  // §IV.D: "sends in the next request if it receives a response or the
  // timer expires."
  if (config_.think_time.ns > 0) {
    schedule_in(config_.think_time, [this, w] {
      if (running_) begin_request(w);
    });
  } else {
    begin_request(w);
  }
}

void LrsSimulatorNode::complete(int w) {
  Worker& worker = workers_[static_cast<std::size_t>(w)];
  worker.timer_generation++;  // disarm
  if (worker.pending_qid != 0) {
    qid_to_worker_.erase(worker.pending_qid);
    worker.pending_qid = 0;
  }
  bool was_priming = false;
  if ((config_.mode == DriveMode::NsNameHit ||
       config_.mode == DriveMode::FabricatedHit ||
       config_.mode == DriveMode::ModifiedHit) &&
      !worker.primed) {
    worker.primed = true;
    was_priming = true;  // priming exchange: not counted as steady state
  }
  journey_end(worker, "drv.complete", /*ok=*/true);
  if (!was_priming) {
    stats_.completed++;
    latencies_.add((now() - worker.request_started).millis());
  }
  if (config_.think_time.ns > 0 && !was_priming) {
    schedule_in(config_.think_time, [this, w] {
      if (running_) begin_request(w);
    });
  } else {
    begin_request(w);
  }
}

void LrsSimulatorNode::restart(int w) {
  // A response that does not fit the expected dance (e.g. the guard just
  // switched between pass-through and active): back off briefly instead
  // of busy-looping at wire speed.
  stats_.unexpected++;
  journey_end(workers_[static_cast<std::size_t>(w)], "drv.restart",
              /*ok=*/false);
  SimDuration backoff = config_.think_time.ns > 0 ? config_.think_time
                                                  : milliseconds(1);
  schedule_in(backoff, [this, w] {
    if (running_) begin_request(w);
  });
}

void LrsSimulatorNode::advance(int w, const dns::Message& response,
                               net::Ipv4Address from_ip) {
  (void)from_ip;
  Worker& worker = workers_[static_cast<std::size_t>(w)];

  switch (config_.mode) {
    case DriveMode::PlainUdp:
      complete(w);
      return;

    case DriveMode::NsNameMiss:
    case DriveMode::NsNameHit: {
      if (worker.stage == 0) {
        // Expect the fabricated referral (msg 2). A direct full answer
        // means no guard is active (pass-through below the activation
        // threshold): the request is simply served.
        if (!response.is_referral()) {
          if (!response.answers.empty()) {
            complete(w);
            return;
          }
          restart(w);
          return;
        }
        const auto& ns =
            std::get<dns::NsRdata>(response.authority.front().rdata);
        worker.fabricated_name = ns.nsdname;
        worker.stage = 1;
        send_exchange(w, make_query(0, worker.fabricated_name),
                      config_.target);
        return;
      }
      // Stage 1: expect the A answer (msg 6).
      if (response.answers.empty()) {
        worker.primed = false;  // cookie may have rotated; re-learn
        restart(w);
        return;
      }
      complete(w);
      return;
    }

    case DriveMode::FabricatedMiss:
    case DriveMode::FabricatedHit: {
      if (worker.stage == 0) {
        if (!response.is_referral()) {
          if (!response.answers.empty()) {
            complete(w);  // served directly by a pass-through guard
            return;
          }
          restart(w);
          return;
        }
        const auto& ns =
            std::get<dns::NsRdata>(response.authority.front().rdata);
        worker.fabricated_name = ns.nsdname;
        worker.stage = 1;
        send_exchange(w, make_query(0, worker.fabricated_name),
                      config_.target);
        return;
      }
      if (worker.stage == 1) {
        // msg 6: COOKIE2 address.
        const dns::ARdata* a = nullptr;
        for (const auto& rr : response.answers) {
          if (rr.type == dns::RrType::A) {
            a = &std::get<dns::ARdata>(rr.rdata);
            break;
          }
        }
        if (a == nullptr) {
          worker.primed = false;
          restart(w);
          return;
        }
        worker.cookie2_address = a->address;
        worker.stage = 2;
        send_exchange(w, make_query(0, qname_),
                      {worker.cookie2_address, net::kDnsPort});
        return;
      }
      // Stage 2: the real answer (msg 10).
      if (response.answers.empty()) {
        worker.primed = false;
        restart(w);
        return;
      }
      complete(w);
      return;
    }

    case DriveMode::ModifiedMiss:
    case DriveMode::ModifiedHit: {
      if (worker.stage == 0) {
        // msg 3: the cookie reply.
        auto cookie = guard::CookieEngine::extract_txt_cookie(response);
        if (!cookie || guard::CookieEngine::is_zero_cookie(*cookie)) {
          restart(w);
          return;
        }
        worker.cookie = *cookie;
        worker.stage = 1;
        dns::Message q = make_query(0, qname_);
        guard::CookieEngine::attach_txt_cookie(q, worker.cookie, 0);
        send_exchange(w, std::move(q), config_.target);
        return;
      }
      // Stage 1: the real answer.
      if (response.answers.empty() &&
          response.header.rcode != dns::Rcode::NoError) {
        worker.primed = false;
        restart(w);
        return;
      }
      complete(w);
      return;
    }

    case DriveMode::TcpWithRedirect: {
      if (worker.stage == 0) {
        if (!response.header.tc) {
          // No redirect: the server (or a pass-through guard) answered
          // directly over UDP — the request is served.
          complete(w);
          return;
        }
        worker.stage = 1;
        start_tcp(w);
        return;
      }
      complete(w);
      return;
    }

    case DriveMode::TcpDirect:
      complete(w);
      return;
  }
}

void LrsSimulatorNode::start_tcp(int w) {
  Worker& worker = workers_[static_cast<std::size_t>(w)];
  std::uint16_t port = next_port_++;
  if (next_port_ < 30000) next_port_ = 30000;

  std::uint16_t qid;
  do {
    qid = next_qid_++;
  } while (qid == 0 || qid_to_worker_.count(qid) > 0);
  if (worker.pending_qid != 0) qid_to_worker_.erase(worker.pending_qid);
  worker.pending_qid = qid;
  qid_to_worker_[qid] = w;

  dns::Message q = make_query(qid, qname_);
  worker.tcp_query = tcp::StreamFramer::frame(q.encode());
  stats_.exchanges_sent++;
  journey_touch(worker, qid, qname_.hash32());
  if (worker.jkey_open && sim().journeys().enabled()) {
    // Fold the TCP stack's per-connection marks into this journey.
    sim().journeys().alias(worker.jkey,
                           {config_.address.value(), port, 0});
  }
  worker.conn = tcp_->connect({config_.address, port}, config_.target);
  conn_to_worker_[worker.conn] = w;
}

void LrsSimulatorNode::on_tcp_data(tcp::ConnId conn, BytesView data) {
  auto it = conn_to_worker_.find(conn);
  if (it == conn_to_worker_.end()) return;
  int w = it->second;
  auto& framer = framers_[conn];
  for (Bytes& msg : framer.push(data)) {
    auto m = dns::Message::decode(BytesView(msg));
    if (!m || !m->header.qr) continue;
    Worker& worker = workers_[static_cast<std::size_t>(w)];
    tcp_->close(conn);
    worker.conn = 0;
    advance(w, *m, net::Ipv4Address{});
    return;
  }
}

SimDuration LrsSimulatorNode::process(const net::Packet& packet) {
  if (packet.is_tcp()) {
    tcp_->handle_packet(packet);
    return config_.per_packet_cost;
  }
  auto m = dns::Message::decode(BytesView(packet.payload));
  if (!m || !m->header.qr) return config_.per_packet_cost;
  auto it = qid_to_worker_.find(m->header.id);
  if (it == qid_to_worker_.end()) {
    stats_.unexpected++;
    return config_.per_packet_cost;
  }
  int w = it->second;
  Worker& worker = workers_[static_cast<std::size_t>(w)];
  if (worker.pending_qid != m->header.id) {
    stats_.unexpected++;
    return config_.per_packet_cost;
  }
  // This exchange is resolved; disarm its timer.
  worker.timer_generation++;
  qid_to_worker_.erase(it);
  worker.pending_qid = 0;
  advance(w, *m, packet.src_ip);
  return config_.per_packet_cost;
}

}  // namespace dnsguard::workload
