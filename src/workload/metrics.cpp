#include "workload/metrics.h"

#include <cmath>

namespace dnsguard::workload {

TablePrinter::TablePrinter(std::vector<std::string> headers, int width)
    : headers_(std::move(headers)), width_(width) {}

void TablePrinter::print_header() const {
  for (const auto& h : headers_) {
    std::printf("%-*s", width_, h.c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    for (int j = 0; j < width_ - 2; ++j) std::printf("-");
    std::printf("  ");
  }
  std::printf("\n");
}

void TablePrinter::print_row(const std::vector<std::string>& cells) const {
  for (const auto& c : cells) {
    std::printf("%-*s", width_, c.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string TablePrinter::num(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string TablePrinter::kilo(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*fK", decimals, v / 1000.0);
  return buf;
}

std::string TablePrinter::percent(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, v * 100.0);
  return buf;
}

void RateDriver::start() {
  if (running_) return;
  running_ = true;
  ++epoch_;
  tick();
}

void RateDriver::tick() {
  if (!running_ || rate_ <= 0) return;
  fired_++;
  fn_();
  std::uint64_t epoch = epoch_;
  sim_.schedule_in(seconds_f(1.0 / rate_), [this, epoch] {
    if (epoch == epoch_) tick();
  });
}

}  // namespace dnsguard::workload
