#include "workload/population.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "dns/message.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace dnsguard::workload {

namespace {

/// splitmix64 finalizer: the pure mixing function behind every id -> value
/// mapping in the population (address, resolver group, primedness, DNS
/// id). Purity keeps the arrival stream identical across shard splits.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Maps a mixed 64-bit value to a uniform double in [0,1).
double mix_uniform01(std::uint64_t x) {
  return static_cast<double>(mix64(x) >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kAddressSalt = 0xadd7e555a17ULL;
constexpr std::uint64_t kGroupSalt = 0x97097e501e50ULL;
constexpr std::uint64_t kPrimedSalt = 0xc0'01'c0'0cULL;

}  // namespace

double inverse_normal_cdf(double p) {
  // Acklam's rational approximation (|relative error| < 1.2e-9).
  static constexpr double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                  -2.759285104469687e+02, 1.383577518672690e+02,
                                  -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                  -1.556989798598866e+02, 6.680131188771972e+01,
                                  -1.328068155288572e+01};
  static constexpr double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                  -2.400758277161838e+00, -2.549732539343734e+00,
                                  4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                                  2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  double q = p - 0.5;
  double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

// --- ZipfSampler ------------------------------------------------------------

ZipfSampler::ZipfSampler(std::uint32_t universe, double exponent) {
  if (universe == 0) universe = 1;
  cdf_.resize(universe);
  double total = 0.0;
  for (std::uint32_t r = 0; r < universe; ++r) {
    total += std::pow(static_cast<double>(r) + 1.0, -exponent);
    cdf_[r] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;
}

std::uint32_t ZipfSampler::sample(double u) const {
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::uint32_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

// --- LognormalRateClasses ---------------------------------------------------

LognormalRateClasses::LognormalRateClasses(int classes, double mu,
                                           double sigma) {
  if (classes < 1) classes = 1;
  rates_.resize(static_cast<std::size_t>(classes));
  cdf_.resize(static_cast<std::size_t>(classes));
  // Class k holds the clients between the k/K and (k+1)/K lognormal
  // quantiles; its per-client rate is the class-midpoint quantile. Equal
  // class populations make a class's share of aggregate traffic simply
  // proportional to its per-client rate.
  double total = 0.0;
  for (int k = 0; k < classes; ++k) {
    double q = (static_cast<double>(k) + 0.5) / static_cast<double>(classes);
    rates_[static_cast<std::size_t>(k)] =
        std::exp(mu + sigma * inverse_normal_cdf(q));
    total += rates_[static_cast<std::size_t>(k)];
  }
  mean_ = total / static_cast<double>(classes);
  double acc = 0.0;
  for (int k = 0; k < classes; ++k) {
    acc += rates_[static_cast<std::size_t>(k)] / total;
    cdf_[static_cast<std::size_t>(k)] = acc;
  }
  cdf_.back() = 1.0;
}

int LognormalRateClasses::sample_class(double u) const {
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int>(it - cdf_.begin());
}

// --- RttModel ---------------------------------------------------------------

RttModel::RttModel(std::vector<Bucket> buckets) : buckets_(std::move(buckets)) {
  if (buckets_.empty()) buckets_.push_back({1.0, milliseconds(40)});
  cdf_.resize(buckets_.size());
  double total = 0.0;
  for (const auto& b : buckets_) total += b.weight;
  double acc = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    acc += buckets_[i].weight / total;
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;
}

SimDuration RttModel::sample(double u) const {
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return buckets_[static_cast<std::size_t>(it - cdf_.begin())].rtt;
}

std::vector<RttModel::Bucket> RttModel::default_buckets() {
  // A coarse empirical Internet mix: same-metro, regional, continental,
  // transoceanic, and badly-connected tails.
  return {{0.15, milliseconds(5)},
          {0.35, milliseconds(25)},
          {0.30, milliseconds(60)},
          {0.15, milliseconds(120)},
          {0.05, milliseconds(250)}};
}

// --- FlashCrowdEvent --------------------------------------------------------

double FlashCrowdEvent::envelope(SimTime t) const {
  if (t.ns < start.ns) return 0.0;
  std::int64_t dt = t.ns - start.ns;
  if (dt < ramp.ns) {
    return ramp.ns > 0 ? static_cast<double>(dt) / static_cast<double>(ramp.ns)
                       : 1.0;
  }
  dt -= ramp.ns;
  if (dt < hold.ns) return 1.0;
  dt -= hold.ns;
  if (dt < decay.ns) {
    return 1.0 - static_cast<double>(dt) / static_cast<double>(decay.ns);
  }
  return 0.0;
}

// --- PopulationEngine -------------------------------------------------------

PopulationEngine::PopulationEngine(PopulationConfig config)
    : config_(std::move(config)),
      zipf_(config_.qname_universe, config_.zipf_exponent),
      rates_(config_.rate_classes, 0.0, config_.rate_sigma),
      rtt_(config_.rtt_buckets),
      rng_(config_.seed),
      cache_(common::BoundedTable<std::uint64_t, SimTime>::Config{
          .capacity = config_.cache_capacity,
          .ttl = config_.cache_ttl,
          .idle_timeout = SimDuration{},
          .evict_lru_when_full = true}) {
  if (config_.num_clients == 0) config_.num_clients = 1;
  if (config_.resolver_groups == 0) config_.resolver_groups = 1;
  // Thinning bound: diurnal peak plus every flash event at full blast.
  max_rate_ = config_.base_rate * (1.0 + std::abs(config_.diurnal_amplitude));
  for (const auto& e : config_.flash_events) {
    max_rate_ += config_.base_rate * e.peak_multiplier;
  }
  if (max_rate_ <= 0.0) max_rate_ = 1.0;
  if (config_.prefix_len <= 0) {
    prefix_span_ = 0xffffffffu;
  } else if (config_.prefix_len >= 32) {
    prefix_span_ = 1;
  } else {
    prefix_span_ = 1u << (32 - config_.prefix_len);
  }
}

double PopulationEngine::flash_rate_at(SimTime t,
                                       const FlashCrowdEvent& e) const {
  return config_.base_rate * e.peak_multiplier * e.envelope(t);
}

double PopulationEngine::rate_at(SimTime t) const {
  double diurnal = 1.0;
  if (config_.diurnal_period.ns > 0) {
    double phase = static_cast<double>(t.ns + config_.diurnal_phase.ns) /
                   static_cast<double>(config_.diurnal_period.ns);
    diurnal += config_.diurnal_amplitude *
               std::sin(2.0 * 3.14159265358979323846 * phase);
  }
  double r = config_.base_rate * diurnal;
  for (const auto& e : config_.flash_events) r += flash_rate_at(t, e);
  return std::max(r, 0.0);
}

net::Ipv4Address PopulationEngine::client_address(std::uint64_t client) const {
  std::uint32_t offset = static_cast<std::uint32_t>(
      mix64(client ^ kAddressSalt) % prefix_span_);
  std::uint32_t mask =
      prefix_span_ == 0xffffffffu ? 0u : ~(prefix_span_ - 1u);
  return net::Ipv4Address((config_.prefix_base.value() & mask) | offset);
}

std::size_t PopulationEngine::shard_of(net::Ipv4Address src,
                                       std::size_t shards) {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(mix64(src.value()) % shards);
}

std::uint64_t PopulationEngine::sample_client(bool flash_new_cohort,
                                              std::uint64_t cohort_base,
                                              std::uint64_t cohort_size) {
  if (flash_new_cohort) {
    if (cohort_size == 0) cohort_size = 1;
    return cohort_base + rng_.bounded(cohort_size);
  }
  int k = rates_.sample_class(rng_.uniform01());
  std::uint64_t per_class = std::max<std::uint64_t>(
      config_.num_clients / static_cast<std::uint64_t>(rates_.classes()), 1);
  std::uint64_t id = static_cast<std::uint64_t>(k) * per_class +
                     rng_.bounded(per_class);
  return std::min(id, config_.num_clients - 1);
}

Arrival PopulationEngine::next() {
  for (;;) {
    // Non-homogeneous Poisson by thinning: candidate points at the
    // constant bound rate, each kept with probability rate(t)/bound.
    cursor_ = cursor_ + seconds_f(rng_.exponential(1.0 / max_rate_));
    double lambda = rate_at(cursor_);
    if (rng_.uniform01() * max_rate_ > lambda) continue;

    Arrival a;
    a.at = cursor_;

    // Attribute the arrival: flash surge vs steady-state background,
    // proportionally to their rate contributions at this instant.
    double flash_total = 0.0;
    for (const auto& e : config_.flash_events) {
      flash_total += flash_rate_at(cursor_, e);
    }
    const FlashCrowdEvent* event = nullptr;
    std::uint64_t cohort_base = config_.num_clients;
    if (flash_total > 0.0 && rng_.uniform01() * lambda < flash_total) {
      a.flash = true;
      double pick = rng_.uniform01() * flash_total;
      double acc = 0.0;
      std::uint64_t base = config_.num_clients;
      for (const auto& e : config_.flash_events) {
        acc += flash_rate_at(cursor_, e);
        if (pick < acc || &e == &config_.flash_events.back()) {
          event = &e;
          cohort_base = base;
          break;
        }
        base += e.cohort_clients;
      }
    }

    if (event != nullptr) {
      bool fresh = rng_.chance(event->new_source_fraction);
      a.client = sample_client(fresh, cohort_base, event->cohort_clients);
      a.qname_rank = rng_.chance(event->hot_fraction)
                         ? event->hot_rank
                         : zipf_.sample(rng_.uniform01());
      // Flash queries bypass the resolver-cache model: the surge exists
      // precisely because the hot name is fresh/low-TTL (a breaking-news
      // domain), so resolver caches do not absorb its growth.
      a.cache_hit = false;
      a.primed =
          !fresh && mix_uniform01(a.client ^ kPrimedSalt) <
                        config_.primed_fraction;
    } else {
      a.client = sample_client(false, 0, 0);
      a.qname_rank = zipf_.sample(rng_.uniform01());
      std::uint64_t group =
          mix64(a.client ^ kGroupSalt) % config_.resolver_groups;
      std::uint64_t key = (group << 32) | a.qname_rank;
      if (cache_.find(key, cursor_) != nullptr) {
        a.cache_hit = true;
      } else {
        a.cache_hit = false;
        (void)cache_.try_emplace(key, cursor_, cursor_);
      }
      a.primed = mix_uniform01(a.client ^ kPrimedSalt) <
                 config_.primed_fraction;
    }

    a.src = client_address(a.client);
    a.rtt = rtt_.sample(rng_.uniform01());
    return a;
  }
}

// --- ClientPopulationNode ---------------------------------------------------

ClientPopulationNode::ClientPopulationNode(sim::Simulator& sim,
                                           std::string name, Config config)
    : sim::Node(sim, std::move(name)),
      config_(std::move(config)),
      engine_(config_.population),
      minter_(config_.population.cookie_key_seed) {
  set_profile_stage(obs::prof::Stage::kDriverService);
  sim.add_route(config_.population.prefix_base, config_.population.prefix_len,
                this);
  stats_.bind(sim.metrics(), config_.shard_count > 1
                                 ? "population.shard" +
                                       std::to_string(config_.shard_index)
                                 : "population");
}

void ClientPopulationNode::start() {
  if (running_) return;
  running_ = true;
  ++epoch_;
  pump();
}

void ClientPopulationNode::stop() {
  running_ = false;
  ++epoch_;
}

void ClientPopulationNode::pump() {
  // One arrival in flight at a time: generate, schedule at its edge time,
  // emit, repeat. The engine produces the *master* sequence; emit_arrival
  // filters to this node's shard, so N shard nodes driven by identical
  // configs partition one stream without coordinating.
  Arrival a = engine_.next();
  SimDuration delay = a.at - now();
  if (delay.ns < 0) delay = SimDuration{0};
  std::uint64_t epoch = epoch_;
  schedule_in(delay, [this, epoch, a] {
    if (epoch != epoch_ || !running_) return;
    emit_arrival(a);
    pump();
  });
}

dns::DomainName ClientPopulationNode::qname_for(std::uint32_t rank) const {
  std::string text = "q" + std::to_string(rank) + "." + config_.qname_suffix;
  return dns::DomainName::parse(text).value_or(dns::DomainName{});
}

void ClientPopulationNode::emit_arrival(const Arrival& a) {
  if (config_.shard_count > 1 &&
      PopulationEngine::shard_of(a.src, config_.shard_count) !=
          config_.shard_index) {
    return;
  }
  stats_.offered++;
  if (a.cache_hit) {
    stats_.cache_hits++;
    return;
  }

  std::uint16_t id = static_cast<std::uint16_t>(
      mix64(a.client ^ (static_cast<std::uint64_t>(a.qname_rank) << 20) ^
            static_cast<std::uint64_t>(a.at.ns)));
  dns::Message q =
      dns::Message::query(id, qname_for(a.qname_rank), dns::RrType::A, false);
  if (a.primed) {
    guard::CookieEngine::attach_txt_cookie(q, minter_.mint(a.src), 0);
  } else {
    // Cold client: request a cookie (zero cookie), retry on the reply.
    guard::CookieEngine::attach_txt_cookie(q, crypto::Cookie{}, 0);
  }
  std::uint16_t port =
      static_cast<std::uint16_t>(32768 + (mix64(a.client) & 0x3fff));
  net::Packet pkt = net::Packet::make_udp({a.src, port}, config_.target,
                                          q.encode_pooled());
  digest_ += mix64((static_cast<std::uint64_t>(a.src.value()) << 16) ^ id ^
                   mix64(static_cast<std::uint64_t>(a.at.ns)));
  stats_.sent++;
  if (a.flash) stats_.flash_sent++;
  send(std::move(pkt));
}

SimDuration ClientPopulationNode::process(const net::Packet& packet) {
  auto response = dns::Message::decode(packet.payload);
  if (!response || !response->header.qr) {
    stats_.unexpected++;
    return SimDuration{0};
  }

  auto cookie = guard::CookieEngine::extract_txt_cookie(*response);
  bool cookie_reply = cookie.has_value() &&
                      !guard::CookieEngine::is_zero_cookie(*cookie) &&
                      response->answers.empty();
  if (cookie_reply) {
    // msg 3 of the modified-DNS dance: echo the granted cookie after the
    // client's RTT. Stateless: the RTT re-derives from (addr, id), and the
    // question rides in the reply, so millions of cold clients need no
    // per-query bookkeeping here.
    stats_.acquisitions++;
    const dns::Question* qst = response->question();
    if (qst == nullptr) {
      stats_.unexpected++;
      return SimDuration{0};
    }
    RttModel rtts(config_.population.rtt_buckets);
    SimDuration rtt = rtts.sample(mix_uniform01(
        (static_cast<std::uint64_t>(packet.dst_ip.value()) << 16) ^
        response->header.id));
    dns::DomainName qname = qst->qname;
    net::Ipv4Address src = packet.dst_ip;
    std::uint16_t port = packet.dst_port();
    std::uint16_t id = static_cast<std::uint16_t>(response->header.id + 1);
    crypto::Cookie granted = *cookie;
    std::uint64_t epoch = epoch_;
    schedule_in(rtt, [this, epoch, qname, src, port, id, granted] {
      if (epoch != epoch_ || !running_) return;
      dns::Message retry = dns::Message::query(id, qname, dns::RrType::A,
                                               false);
      guard::CookieEngine::attach_txt_cookie(retry, granted, 0);
      digest_ += mix64((static_cast<std::uint64_t>(src.value()) << 16) ^ id);
      stats_.sent++;
      send(net::Packet::make_udp({src, port}, config_.target,
                                 retry.encode_pooled()));
    });
    return SimDuration{0};
  }

  // Anything else the ANS answered (including NXDOMAIN) is a completed
  // query — the population's goodput signal.
  stats_.completed++;
  return SimDuration{0};
}

}  // namespace dnsguard::workload
