// Experiment metrics & reporting helpers shared by the bench binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace dnsguard::workload {

/// Fixed-width text table, used by every bench to print paper-style rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int width = 14);

  void print_header() const;
  void print_row(const std::vector<std::string>& cells) const;

  [[nodiscard]] static std::string num(double v, int decimals = 1);
  [[nodiscard]] static std::string kilo(double v, int decimals = 1);
  [[nodiscard]] static std::string percent(double v, int decimals = 1);

 private:
  std::vector<std::string> headers_;
  int width_;
};

/// An open-loop driver: invokes `fn` at a fixed rate until stopped.
/// Used for the Fig. 5 legitimate LRSs ("constant rate of 1K requests/sec").
class RateDriver {
 public:
  RateDriver(sim::Simulator& sim, double rate_per_sec,
             std::function<void()> fn)
      : sim_(sim), rate_(rate_per_sec), fn_(std::move(fn)) {}

  void start();
  void stop() { running_ = false; }
  void set_rate(double r) { rate_ = r; }
  [[nodiscard]] std::uint64_t fired() const { return fired_; }

 private:
  void tick();

  sim::Simulator& sim_;
  double rate_;
  std::function<void()> fn_;
  bool running_ = false;
  std::uint64_t fired_ = 0;
  std::uint64_t epoch_ = 0;
};

/// Counts events within a measurement window; throughput = count/window.
/// The tally is an obs::Counter cell so a bench can publish it in the
/// simulator's registry (attach()) and have it appear in BENCH_*.json.
class ThroughputMeter {
 public:
  void record(std::uint64_t n = 1) { count_ += n; }
  void reset() { count_.reset(); }
  [[nodiscard]] std::uint64_t count() const { return count_.value(); }
  [[nodiscard]] double per_second(SimDuration window) const {
    return window.ns > 0
               ? static_cast<double>(count_.value()) / window.seconds()
               : 0.0;
  }

  /// Registers the window tally under `name`.
  void attach(obs::MetricsRegistry& registry, std::string_view name) {
    registry.attach_counter(name, count_);
  }

 private:
  obs::Counter count_;
};

}  // namespace dnsguard::workload
