// LrsSimulatorNode — the paper's "LRS simulator" (§IV.D): a closed-loop
// load generator that speaks each spoof-detection scheme's packet dance
// directly, holding a configurable number of outstanding requests and
// waiting at most 10 ms per response.
//
// Cache-miss modes replay the full cookie acquisition per request (the
// guard's worst case); cache-hit modes acquire the cookie once and then
// reuse it, which is the paper's steady state. TCP modes drive the
// guard's kernel TCP proxy (Fig. 7).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "crypto/cookie_hash.h"
#include "dns/message.h"
#include "obs/journey.h"
#include "obs/metrics.h"
#include "sim/node.h"
#include "tcp/tcp_stack.h"

namespace dnsguard::workload {

enum class DriveMode {
  PlainUdp,        // unguarded baseline / disabled-guard traffic
  NsNameMiss,      // Fig. 2(a) msgs 1,2,3,6 per request
  NsNameHit,       // msgs 3,6 per request (fabricated NS cached)
  FabricatedMiss,  // Fig. 2(b) msgs 1,2,3,6,7,10 per request
  FabricatedHit,   // msgs 7,10 per request (COOKIE2 cached)
  ModifiedMiss,    // Fig. 3 msgs 2,3,4,7 per request
  ModifiedHit,     // msgs 4,7 per request (cookie cached)
  TcpDirect,       // TCP handshake + query per request
  TcpWithRedirect, // UDP truncation redirect first, then TCP
};

[[nodiscard]] std::string drive_mode_name(DriveMode m);

/// Counter cells; attached to the simulator's registry as "driver.*" so
/// the time-series sampler can window goodput and timeout rates.
struct DriverStats {
  obs::Counter completed;
  obs::Counter exchanges_sent;
  obs::Counter timeouts;
  obs::Counter unexpected;

  void bind(obs::MetricsRegistry& registry, std::string_view prefix) {
    std::string p(prefix);
    registry.attach_counter(p + ".completed", completed);
    registry.attach_counter(p + ".exchanges_sent", exchanges_sent);
    registry.attach_counter(p + ".timeouts", timeouts);
    registry.attach_counter(p + ".unexpected", unexpected);
  }
};

class LrsSimulatorNode : public sim::Node {
 public:
  struct Config {
    net::Ipv4Address address;
    net::SocketAddr target;  // protected ANS's public address
    DriveMode mode = DriveMode::PlainUdp;
    /// Number of concurrently outstanding requests (Fig. 7(a) sweeps this).
    int concurrency = 1;
    /// Response wait per exchange (§IV.D: 10 ms).
    SimDuration timeout = milliseconds(10);
    /// Pause between finishing one request and starting the next. Zero =
    /// fully closed loop (§IV.D). Nonzero models a paced requester: with
    /// W workers the healthy offered rate is W/(latency+think), and a
    /// timeout stalls a worker for the full `timeout` — reproducing the
    /// BIND-LRS congestion-backoff collapse of Fig. 5.
    SimDuration think_time{};
    /// The repeatedly-resolved name (§IV.D: "the same domain name").
    std::string qname = "www.foo.com.";
    /// Protected zone (NS-name modes need it to shape cookie queries).
    std::string zone = ".";
    /// Per-packet CPU cost of the driver machine (0 = never a bottleneck).
    SimDuration per_packet_cost{};
    std::uint64_t seed = 7;
  };

  LrsSimulatorNode(sim::Simulator& sim, std::string name, Config config);

  /// Starts the closed loop (all workers fire their first exchange).
  void start();
  void stop();

  [[nodiscard]] const DriverStats& driver_stats() const { return stats_; }
  void reset_driver_stats() { stats_ = DriverStats{}; }
  /// Mean per-request latency since the last reset (completed requests).
  [[nodiscard]] Percentiles& latencies() { return latencies_; }

 protected:
  SimDuration process(const net::Packet& packet) override;

 private:
  // Per-worker protocol state machine.
  struct Worker {
    int stage = 0;
    std::uint16_t pending_qid = 0;
    std::uint64_t timer_generation = 0;
    SimTime request_started{};
    // learned state
    dns::DomainName fabricated_name;
    net::Ipv4Address cookie2_address;
    crypto::Cookie cookie{};
    bool primed = false;
    tcp::ConnId conn = 0;
    Bytes tcp_query;  // framed query awaiting ESTABLISHED
    // Open journey for the in-flight request (first exchange's key).
    obs::JourneyKey jkey{};
    bool jkey_open = false;
  };

  void begin_request(int w);
  void advance(int w, const dns::Message& response,
               net::Ipv4Address from_ip);
  void send_exchange(int w, dns::Message query, net::SocketAddr to);
  void arm_timeout(int w);
  void on_timeout(int w, std::uint64_t generation);
  void complete(int w);
  void restart(int w);
  void start_tcp(int w);
  void on_tcp_data(tcp::ConnId conn, BytesView data);

  dns::Message make_query(std::uint16_t id, const dns::DomainName& name,
                          dns::RrType type = dns::RrType::A) const;

  /// Opens the worker's journey on the first exchange of a request and
  /// aliases every follow-up exchange's key onto it; `stage` must be a
  /// string literal.
  void journey_touch(Worker& worker, std::uint16_t qid, std::uint32_t qhash);
  void journey_end(Worker& worker, std::string_view stage, bool ok);

  Config config_;
  dns::DomainName qname_;
  dns::DomainName zone_;
  Rng rng_;
  std::vector<Worker> workers_;
  std::unordered_map<std::uint16_t, int> qid_to_worker_;
  std::unordered_map<tcp::ConnId, int> conn_to_worker_;
  std::unordered_map<tcp::ConnId, tcp::StreamFramer> framers_;
  std::unique_ptr<tcp::TcpStack> tcp_;
  DriverStats stats_;
  Percentiles latencies_;
  std::uint16_t next_qid_ = 1;
  std::uint16_t next_port_ = 30000;
  bool running_ = false;
};

}  // namespace dnsguard::workload
