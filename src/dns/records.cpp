#include "dns/records.h"

#include <cstdio>

namespace dnsguard::dns {

std::string rr_type_name(RrType t) {
  switch (t) {
    case RrType::A: return "A";
    case RrType::NS: return "NS";
    case RrType::CNAME: return "CNAME";
    case RrType::SOA: return "SOA";
    case RrType::TXT: return "TXT";
    case RrType::AAAA: return "AAAA";
    case RrType::OPT: return "OPT";
  }
  return "TYPE" + std::to_string(static_cast<unsigned>(t));
}

ResourceRecord ResourceRecord::a(DomainName name, net::Ipv4Address addr,
                                 std::uint32_t ttl) {
  return ResourceRecord{std::move(name), RrType::A, RrClass::IN, ttl,
                        ARdata{addr}};
}

ResourceRecord ResourceRecord::ns(DomainName name, DomainName nsdname,
                                  std::uint32_t ttl) {
  return ResourceRecord{std::move(name), RrType::NS, RrClass::IN, ttl,
                        NsRdata{std::move(nsdname)}};
}

ResourceRecord ResourceRecord::cname(DomainName name, DomainName target,
                                     std::uint32_t ttl) {
  return ResourceRecord{std::move(name), RrType::CNAME, RrClass::IN, ttl,
                        CnameRdata{std::move(target)}};
}

ResourceRecord ResourceRecord::soa(DomainName name, SoaRdata soa,
                                   std::uint32_t ttl) {
  return ResourceRecord{std::move(name), RrType::SOA, RrClass::IN, ttl,
                        std::move(soa)};
}

ResourceRecord ResourceRecord::txt(DomainName name, TxtRdata txt,
                                   std::uint32_t ttl) {
  return ResourceRecord{std::move(name), RrType::TXT, RrClass::IN, ttl,
                        std::move(txt)};
}

void ResourceRecord::encode(ByteWriter& w, NameCompressor& compressor) const {
  compressor.write(w, name);
  w.u16(static_cast<std::uint16_t>(type));
  if (type == RrType::OPT) {
    // For OPT, CLASS carries the requester's UDP payload size (RFC 6891).
    w.u16(std::get<OptRdata>(rdata).udp_payload_size);
  } else {
    w.u16(static_cast<std::uint16_t>(rclass));
  }
  w.u32(ttl);
  std::size_t rdlength_at = w.size();
  w.u16(0);  // RDLENGTH placeholder
  std::size_t rdata_start = w.size();

  std::visit(
      [&w](const auto& rd) {
        using T = std::decay_t<decltype(rd)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          w.u32(rd.address.value());
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          write_name_uncompressed(w, rd.nsdname);
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          write_name_uncompressed(w, rd.target);
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          write_name_uncompressed(w, rd.mname);
          write_name_uncompressed(w, rd.rname);
          w.u32(rd.serial);
          w.u32(rd.refresh);
          w.u32(rd.retry);
          w.u32(rd.expire);
          w.u32(rd.minimum);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const auto& s : rd.strings) {
            w.u8(static_cast<std::uint8_t>(s.size()));
            w.raw(BytesView(s));
          }
        } else if constexpr (std::is_same_v<T, OptRdata>) {
          // No options carried.
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          w.raw(BytesView(rd.data));
        }
      },
      rdata);

  w.patch_u16(rdlength_at, static_cast<std::uint16_t>(w.size() - rdata_start));
}

std::optional<ResourceRecord> ResourceRecord::decode(Cursor& c) {
  ResourceRecord rr;
  auto name = read_name(c);
  if (!name) return std::nullopt;
  rr.name = std::move(*name);
  std::uint16_t type = c.u16();
  std::uint16_t rclass = c.u16();
  rr.ttl = c.u32();
  std::uint16_t rdlength = c.u16();
  if (!c.ok() || !c.push_window(rdlength)) return std::nullopt;

  rr.type = static_cast<RrType>(type);
  rr.rclass = static_cast<RrClass>(rclass);

  switch (rr.type) {
    case RrType::A: {
      if (rdlength != 4) return std::nullopt;
      rr.rdata = ARdata{net::Ipv4Address(c.u32())};
      break;
    }
    case RrType::NS: {
      auto n = read_name(c);
      if (!n || !c.at_limit()) return std::nullopt;
      rr.rdata = NsRdata{std::move(*n)};
      break;
    }
    case RrType::CNAME: {
      auto n = read_name(c);
      if (!n || !c.at_limit()) return std::nullopt;
      rr.rdata = CnameRdata{std::move(*n)};
      break;
    }
    case RrType::SOA: {
      SoaRdata soa;
      auto mname = read_name(c);
      auto rname = read_name(c);
      if (!mname || !rname) return std::nullopt;
      soa.mname = std::move(*mname);
      soa.rname = std::move(*rname);
      soa.serial = c.u32();
      soa.refresh = c.u32();
      soa.retry = c.u32();
      soa.expire = c.u32();
      soa.minimum = c.u32();
      if (!c.ok() || !c.at_limit()) return std::nullopt;
      rr.rdata = std::move(soa);
      break;
    }
    case RrType::TXT: {
      TxtRdata txt;
      while (!c.at_limit()) {
        std::uint8_t len = c.u8();
        BytesView s = c.raw(len);
        if (!c.ok()) return std::nullopt;
        txt.strings.emplace_back(s.begin(), s.end());
      }
      rr.rdata = std::move(txt);
      break;
    }
    case RrType::OPT: {
      // CLASS field holds the UDP payload size.
      rr.rclass = RrClass::IN;
      rr.rdata = OptRdata{rclass};
      c.skip(rdlength);
      if (!c.ok()) return std::nullopt;
      break;
    }
    default: {
      BytesView raw = c.raw(rdlength);
      if (!c.ok()) return std::nullopt;
      rr.rdata = RawRdata{type, Bytes(raw.begin(), raw.end())};
      break;
    }
  }

  if (!c.at_limit()) return std::nullopt;
  c.pop_window();
  return rr;
}

std::string ResourceRecord::to_string() const {
  std::string out = name.to_string() + " " + std::to_string(ttl) + " IN " +
                    rr_type_name(type) + " ";
  std::visit(
      [&out](const auto& rd) {
        using T = std::decay_t<decltype(rd)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          out += rd.address.to_string();
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          out += rd.nsdname.to_string();
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          out += rd.target.to_string();
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          out += rd.mname.to_string() + " " + rd.rname.to_string() + " " +
                 std::to_string(rd.serial);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          out += "(" + std::to_string(rd.strings.size()) + " strings)";
        } else if constexpr (std::is_same_v<T, OptRdata>) {
          out += "udp=" + std::to_string(rd.udp_payload_size);
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          out += "\\# " + std::to_string(rd.data.size());
        }
      },
      rdata);
  return out;
}

}  // namespace dnsguard::dns
