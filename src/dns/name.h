// RFC 1035 domain names.
//
// A DomainName is a sequence of labels ("www", "foo", "com"); the root is
// the empty sequence. Wire encoding supports message compression (pointer
// labels), which the decoder follows with loop protection. RFC 1035 limits
// matter to the paper: the DNS-based scheme embeds an 10-char cookie prefix
// plus the original first label in one label, so the 63-byte label limit
// bounds the cookie encoding budget (§III.B.1, issue four).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "dns/cursor.h"

namespace dnsguard::dns {

inline constexpr std::size_t kMaxLabelLength = 63;
inline constexpr std::size_t kMaxNameLength = 255;

class DomainName {
 public:
  DomainName() = default;  // the root name "."
  explicit DomainName(std::vector<std::string> labels)
      : labels_(std::move(labels)) {}

  /// Parses "www.foo.com" or "www.foo.com." (trailing dot optional; "." is
  /// the root). Rejects empty labels, oversize labels and oversize names.
  [[nodiscard]] static std::optional<DomainName> parse(std::string_view text);

  [[nodiscard]] const std::vector<std::string>& labels() const {
    return labels_;
  }
  [[nodiscard]] bool is_root() const { return labels_.empty(); }
  [[nodiscard]] std::size_t label_count() const { return labels_.size(); }

  /// Presentation form with trailing dot ("www.foo.com.", root is ".").
  [[nodiscard]] std::string to_string() const;

  /// Wire length: 1 length byte per label + label bytes + terminating 0.
  [[nodiscard]] std::size_t wire_length() const;

  /// True if every label/name length constraint holds.
  [[nodiscard]] bool valid() const;

  /// Case-insensitive equality (RFC 1035 §2.3.3).
  [[nodiscard]] bool equals(const DomainName& other) const;

  /// True iff `this` is `ancestor` or lies underneath it
  /// ("www.foo.com" is_subdomain_of "com" and "foo.com" and itself).
  [[nodiscard]] bool is_subdomain_of(const DomainName& ancestor) const;

  /// Strips the leftmost label ("www.foo.com" -> "foo.com"); root -> root.
  [[nodiscard]] DomainName parent() const;

  /// Prepends a label ("foo.com".with_prefix_label("www") -> "www.foo.com").
  /// Returns nullopt if the result would violate length limits.
  [[nodiscard]] std::optional<DomainName> with_prefix_label(
      std::string_view label) const;

  /// The leftmost label, or "" for the root.
  [[nodiscard]] std::string_view first_label() const;

  /// Keeps only the rightmost `n` labels ("www.foo.com".suffix(2) ->
  /// "foo.com").
  [[nodiscard]] DomainName suffix(std::size_t n) const;

  /// Case-insensitive 32-bit FNV-1a hash of the label sequence. Equal names
  /// (RFC 1035 case folding) hash equal; allocation-free. Used to key
  /// observability journeys by qname.
  [[nodiscard]] std::uint32_t hash32() const;

  bool operator==(const DomainName& other) const { return equals(other); }

 private:
  std::vector<std::string> labels_;
};

/// Tracks names already emitted in a message so later occurrences can be
/// encoded as compression pointers (RFC 1035 §4.1.4).
class NameCompressor {
 public:
  /// Writes `name` at the current writer position, emitting a pointer to an
  /// earlier occurrence of the longest possible suffix.
  void write(ByteWriter& w, const DomainName& name);

 private:
  // Maps canonical (lowercased) suffix text -> wire offset.
  std::unordered_map<std::string, std::size_t> offsets_;
};

/// Writes `name` without compression (used inside RDATA where some
/// implementations choke on pointers, and by the guard's fabricated names).
void write_name_uncompressed(ByteWriter& w, const DomainName& name);

/// Decodes a (possibly compressed) name starting at the cursor's position.
/// Follows pointers with cycle protection; the cursor ends up positioned
/// just past the name's in-place bytes. Returns nullopt on malformation.
[[nodiscard]] std::optional<DomainName> read_name(Cursor& c);

/// Case-insensitive label comparison helper.
[[nodiscard]] bool label_equal_ci(std::string_view a, std::string_view b);

}  // namespace dnsguard::dns
