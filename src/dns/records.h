// DNS resource records (RFC 1035 §3.2) with typed RDATA.
//
// The types implemented are the ones the paper's machinery touches:
//   A     — addresses, including the fabricated "COOKIE2" address of the
//           DNS-based scheme's non-referral variant
//   NS    — referral name-server names, including fabricated cookie names
//   CNAME — alias chains an authoritative server may serve
//   SOA   — zone apex / negative answers
//   TXT   — the modified-DNS scheme carries its 16-byte cookie in a TXT
//           record in the additional section (Fig. 3(b))
//   OPT   — EDNS0 presence detection (for message-size negotiation)
// plus a raw fallback so unknown types round-trip unharmed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "dns/name.h"
#include "net/ipv4.h"

namespace dnsguard::dns {

enum class RrType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  TXT = 16,
  AAAA = 28,
  OPT = 41,
};

enum class RrClass : std::uint16_t {
  IN = 1,
  ANY = 255,
};

[[nodiscard]] std::string rr_type_name(RrType t);

struct ARdata {
  net::Ipv4Address address;
  bool operator==(const ARdata&) const = default;
};

struct NsRdata {
  DomainName nsdname;
  bool operator==(const NsRdata&) const = default;
};

struct CnameRdata {
  DomainName target;
  bool operator==(const CnameRdata&) const = default;
};

struct SoaRdata {
  DomainName mname;
  DomainName rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;
  bool operator==(const SoaRdata&) const = default;
};

/// TXT carries one or more <character-string>s, each ≤ 255 bytes.
struct TxtRdata {
  std::vector<Bytes> strings;

  /// Single binary string convenience (the cookie payload).
  [[nodiscard]] static TxtRdata single(BytesView data) {
    TxtRdata t;
    t.strings.emplace_back(data.begin(), data.end());
    return t;
  }
  bool operator==(const TxtRdata&) const = default;
};

struct OptRdata {
  std::uint16_t udp_payload_size = 512;  // carried in the CLASS field
  bool operator==(const OptRdata&) const = default;
};

struct RawRdata {
  std::uint16_t type = 0;
  Bytes data;
  bool operator==(const RawRdata&) const = default;
};

using Rdata = std::variant<ARdata, NsRdata, CnameRdata, SoaRdata, TxtRdata,
                           OptRdata, RawRdata>;

struct ResourceRecord {
  DomainName name;
  RrType type = RrType::A;
  RrClass rclass = RrClass::IN;
  std::uint32_t ttl = 0;
  Rdata rdata;

  [[nodiscard]] static ResourceRecord a(DomainName name,
                                        net::Ipv4Address addr,
                                        std::uint32_t ttl);
  [[nodiscard]] static ResourceRecord ns(DomainName name, DomainName nsdname,
                                         std::uint32_t ttl);
  [[nodiscard]] static ResourceRecord cname(DomainName name, DomainName target,
                                            std::uint32_t ttl);
  [[nodiscard]] static ResourceRecord soa(DomainName name, SoaRdata soa,
                                          std::uint32_t ttl);
  [[nodiscard]] static ResourceRecord txt(DomainName name, TxtRdata txt,
                                          std::uint32_t ttl);

  /// Serializes including RDLENGTH backpatching. Owner names go through
  /// the compressor; names inside RDATA are written uncompressed so RDATA
  /// lengths are context-independent.
  void encode(ByteWriter& w, NameCompressor& compressor) const;
  [[nodiscard]] static std::optional<ResourceRecord> decode(Cursor& c);

  [[nodiscard]] std::string to_string() const;
  bool operator==(const ResourceRecord&) const = default;
};

}  // namespace dnsguard::dns
