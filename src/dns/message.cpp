#include "dns/message.h"

#include "common/pool.h"

namespace dnsguard::dns {

void Question::encode(ByteWriter& w, NameCompressor& compressor) const {
  compressor.write(w, qname);
  w.u16(static_cast<std::uint16_t>(qtype));
  w.u16(static_cast<std::uint16_t>(qclass));
}

std::optional<Question> Question::decode(Cursor& c) {
  Question q;
  auto name = read_name(c);
  if (!name) return std::nullopt;
  q.qname = std::move(*name);
  q.qtype = static_cast<RrType>(c.u16());
  q.qclass = static_cast<RrClass>(c.u16());
  if (!c.ok()) return std::nullopt;
  return q;
}

std::string Question::to_string() const {
  return qname.to_string() + " IN " + rr_type_name(qtype);
}

Bytes Message::encode() const {
  Bytes out;
  out.reserve(kMaxUdpPayload);
  encode_to(out);
  return out;
}

Bytes Message::encode_pooled() const {
  Bytes out = BufferPool::local().acquire(kMaxUdpPayload);
  encode_to(out);
  return out;
}

void Message::encode_to(Bytes& out) const {
  ByteWriter w(std::move(out));
  NameCompressor compressor;

  w.u16(header.id);
  std::uint16_t flags = 0;
  if (header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(header.opcode) & 0xf) << 11);
  if (header.aa) flags |= 0x0400;
  if (header.tc) flags |= 0x0200;
  if (header.rd) flags |= 0x0100;
  if (header.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(header.rcode) & 0xf;
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authority.size()));
  w.u16(static_cast<std::uint16_t>(additional.size()));

  for (const auto& q : questions) q.encode(w, compressor);
  for (const auto& rr : answers) rr.encode(w, compressor);
  for (const auto& rr : authority) rr.encode(w, compressor);
  for (const auto& rr : additional) rr.encode(w, compressor);
  out = std::move(w).take();
}

std::optional<Message> Message::decode(BytesView wire) {
  Cursor c(wire);
  Message m;
  m.header.id = c.u16();
  std::uint16_t flags = c.u16();
  std::uint16_t qdcount = c.u16();
  std::uint16_t ancount = c.u16();
  std::uint16_t nscount = c.u16();
  std::uint16_t arcount = c.u16();
  if (!c.ok()) return std::nullopt;

  m.header.qr = (flags & 0x8000) != 0;
  m.header.opcode = static_cast<Opcode>((flags >> 11) & 0xf);
  m.header.aa = (flags & 0x0400) != 0;
  m.header.tc = (flags & 0x0200) != 0;
  m.header.rd = (flags & 0x0100) != 0;
  m.header.ra = (flags & 0x0080) != 0;
  m.header.rcode = static_cast<Rcode>(flags & 0xf);

  for (std::uint16_t i = 0; i < qdcount; ++i) {
    auto q = Question::decode(c);
    if (!q) return std::nullopt;
    m.questions.push_back(std::move(*q));
  }
  auto read_section = [&c](std::uint16_t count,
                           std::vector<ResourceRecord>& out) {
    for (std::uint16_t i = 0; i < count; ++i) {
      auto rr = ResourceRecord::decode(c);
      if (!rr) return false;
      out.push_back(std::move(*rr));
    }
    return true;
  };
  if (!read_section(ancount, m.answers)) return std::nullopt;
  if (!read_section(nscount, m.authority)) return std::nullopt;
  if (!read_section(arcount, m.additional)) return std::nullopt;
  if (!c.at_end()) return std::nullopt;  // trailing garbage
  return m;
}

Message Message::query(std::uint16_t id, DomainName qname, RrType qtype,
                       bool recursion_desired) {
  Message m;
  m.header.id = id;
  m.header.rd = recursion_desired;
  m.questions.push_back(Question{std::move(qname), qtype, RrClass::IN});
  return m;
}

Message Message::response_to(const Message& request) {
  Message m;
  m.header.id = request.header.id;
  m.header.qr = true;
  m.header.opcode = request.header.opcode;
  m.header.rd = request.header.rd;
  m.questions = request.questions;
  return m;
}

bool Message::is_referral() const {
  if (!header.qr || !answers.empty() || authority.empty()) return false;
  for (const auto& rr : authority) {
    if (rr.type != RrType::NS) return false;
  }
  return true;
}

std::string Message::to_string() const {
  std::string out = header.qr ? "response" : "query";
  out += " id=" + std::to_string(header.id);
  if (header.aa) out += " aa";
  if (header.tc) out += " tc";
  if (header.rcode != Rcode::NoError) {
    out += " rcode=" + std::to_string(static_cast<unsigned>(header.rcode));
  }
  for (const auto& q : questions) out += " Q{" + q.to_string() + "}";
  for (const auto& rr : answers) out += " AN{" + rr.to_string() + "}";
  for (const auto& rr : authority) out += " NS{" + rr.to_string() + "}";
  for (const auto& rr : additional) out += " AR{" + rr.to_string() + "}";
  return out;
}

}  // namespace dnsguard::dns
