// The DNS message (RFC 1035 §4): header, question, answer, authority,
// additional sections, with full wire codec.
//
// The paper's evaluation is sensitive to message *sizes* (truncation at
// 512 bytes triggers the TCP-based scheme; amplification ratios compare
// response to request bytes), so encode() is byte-exact RFC 1035 format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "dns/name.h"
#include "dns/records.h"

namespace dnsguard::dns {

/// Conventional maximum UDP DNS payload without EDNS0 (RFC 1035 §2.3.4).
inline constexpr std::size_t kMaxUdpPayload = 512;

enum class Opcode : std::uint8_t { Query = 0, IQuery = 1, Status = 2 };

enum class Rcode : std::uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NxDomain = 3,
  NotImp = 4,
  Refused = 5,
};

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  Opcode opcode = Opcode::Query;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated — drives the TCP-based scheme
  bool rd = false;  // recursion desired
  bool ra = false;  // recursion available
  Rcode rcode = Rcode::NoError;

  bool operator==(const Header&) const = default;
};

struct Question {
  DomainName qname;
  RrType qtype = RrType::A;
  RrClass qclass = RrClass::IN;

  void encode(ByteWriter& w, NameCompressor& compressor) const;
  [[nodiscard]] static std::optional<Question> decode(Cursor& c);
  [[nodiscard]] std::string to_string() const;
  bool operator==(const Question&) const = default;
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authority;
  std::vector<ResourceRecord> additional;

  [[nodiscard]] Bytes encode() const;
  /// Serializes into `out`, clearing it first but reusing its capacity —
  /// the allocation-free path for hot-loop re-serialization.
  void encode_to(Bytes& out) const;
  /// Serializes into a buffer drawn from the thread-local BufferPool;
  /// consumed packets return their payloads there (sim::Node), closing the
  /// recycle loop for guard/server fast paths.
  [[nodiscard]] Bytes encode_pooled() const;
  [[nodiscard]] static std::optional<Message> decode(BytesView wire);

  /// Builds a standard query (one question, RD set for stub->LRS usage).
  [[nodiscard]] static Message query(std::uint16_t id, DomainName qname,
                                     RrType qtype, bool recursion_desired);

  /// Starts a response to `request`: copies id/opcode/question, sets QR.
  [[nodiscard]] static Message response_to(const Message& request);

  [[nodiscard]] const Question* question() const {
    return questions.empty() ? nullptr : &questions.front();
  }

  /// True iff the answer section is empty and authority carries NS records
  /// for a zone below the server's apex — i.e. a referral (§III.B).
  [[nodiscard]] bool is_referral() const;

  [[nodiscard]] std::string to_string() const;
  bool operator==(const Message&) const = default;
};

}  // namespace dnsguard::dns
