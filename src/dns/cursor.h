// dns::Cursor: the bounds-checked decode cursor for attacker-controlled
// wire bytes.
//
// Every DNS parse path (message.cpp, name.cpp, records.cpp) walks the
// incoming datagram through this type instead of doing raw offset
// arithmetic on a ByteReader. The contract the decode-bounds lint rule
// enforces is that *all* positional reasoning lives here:
//
//   - reads (u8/u16/u32/raw/chars/skip) saturate against a limit and
//     poison the cursor instead of reading out of bounds;
//   - RDATA framing uses push_window(rdlength)/at_limit()/pop_window()
//     instead of computing `rdata_end = pos + rdlength` by hand;
//   - compression-pointer chasing uses mark()/jump_back()/resume(), with
//     the strictly-backwards check built into jump_back() so a decoder
//     cannot forget it.
//
// Positions are absolute offsets into the whole message (compression
// pointers are message-absolute, RFC 1035 §4.1.4). A window only fences
// the *end*: jump_back() deliberately escapes the current window — a
// pointer inside RDATA may target any earlier byte of the message — and
// resume() re-establishes it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace dnsguard::dns {

class Cursor {
 public:
  explicit Cursor(BytesView wire) : data_(wire), limit_(wire.size()) {}

  /// A saved (position, window-limit) pair; see mark()/resume().
  struct Mark {
    std::size_t pos = 0;
    std::size_t limit = 0;
  };

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[pos_++];
  }

  std::uint16_t u16() {
    if (!take(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(data_[pos_]) << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 24 |
                      static_cast<std::uint32_t>(data_[pos_ + 1]) << 16 |
                      static_cast<std::uint32_t>(data_[pos_ + 2]) << 8 |
                      static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  /// Reads `n` bytes; returns an empty view and poisons the cursor on
  /// underflow.
  BytesView raw(std::size_t n) {
    if (!take(n)) return {};
    BytesView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Reads `n` bytes as text. The one sanctioned byte->char conversion in
  /// the decode path (label bytes are opaque octets, RFC 1035 §2.3.3).
  std::string_view chars(std::size_t n) {
    BytesView v = raw(n);
    // DNSGUARD_LINT_ALLOW(decode): the single sanctioned cast from wire
    // octets to text; every other parse site must call chars() instead.
    return {reinterpret_cast<const char*>(v.data()), v.size()};
  }

  void skip(std::size_t n) {
    if (!take(n)) return;
    pos_ += n;
  }

  // --- RDATA windows ---------------------------------------------------

  /// Fences the next `len` bytes as a sub-window (RDATA framing). Fails
  /// (and poisons the cursor) if `len` overruns the current limit.
  /// Windows do not nest; pop_window() restores the whole-message limit.
  [[nodiscard]] bool push_window(std::size_t len) {
    if (len > limit_ - pos_) {
      ok_ = false;
      return false;
    }
    limit_ = pos_ + len;
    return true;
  }

  /// True when the cursor sits exactly at the current window's end — the
  /// "consumed the whole RDATA" check.
  [[nodiscard]] bool at_limit() const { return pos_ == limit_; }

  void pop_window() { limit_ = data_.size(); }

  /// True when every byte of the message has been consumed (trailing
  /// garbage check).
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

  // --- compression-pointer chasing -------------------------------------

  [[nodiscard]] Mark mark() const { return {pos_, limit_}; }

  /// Follows a compression pointer. Enforces the strictly-backwards rule
  /// (RFC 1035 loop prevention): fails unless `target` precedes the
  /// current position. Escapes any active window — post-jump reads are
  /// bounded by the message end until resume().
  [[nodiscard]] bool jump_back(std::size_t target) {
    if (target >= pos_) {
      ok_ = false;
      return false;
    }
    pos_ = target;
    limit_ = data_.size();
    return true;
  }

  /// Restores a position/window saved before pointer chasing.
  void resume(Mark m) {
    pos_ = m.pos;
    limit_ = m.limit;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  /// Manually poison the cursor (parse-level validation failure).
  void fail() { ok_ = false; }

 private:
  /// Bounds check for an `n`-byte read against the active limit.
  [[nodiscard]] bool take(std::size_t n) {
    if (!ok_ || n > limit_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  BytesView data_;
  std::size_t pos_ = 0;
  std::size_t limit_ = 0;
  bool ok_ = true;
};

}  // namespace dnsguard::dns
