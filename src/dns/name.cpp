#include "dns/name.h"

#include <algorithm>
#include <cctype>

namespace dnsguard::dns {
namespace {

char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

/// Canonical (lowercase, dot-joined) text of the suffix starting at label
/// index `from` — the key for the compression table.
std::string canonical_suffix(const std::vector<std::string>& labels,
                             std::size_t from) {
  std::string out;
  for (std::size_t i = from; i < labels.size(); ++i) {
    for (char c : labels[i]) out.push_back(lower(c));
    out.push_back('.');
  }
  return out;
}

}  // namespace

bool label_equal_ci(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

std::optional<DomainName> DomainName::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text == ".") return DomainName{};
  if (text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return std::nullopt;

  std::vector<std::string> labels;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t dot = text.find('.', start);
    std::string_view label = (dot == std::string_view::npos)
                                 ? text.substr(start)
                                 : text.substr(start, dot - start);
    if (label.empty() || label.size() > kMaxLabelLength) return std::nullopt;
    labels.emplace_back(label);
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  DomainName name(std::move(labels));
  if (!name.valid()) return std::nullopt;
  return name;
}

std::string DomainName::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& l : labels_) {
    out += l;
    out += '.';
  }
  return out;
}

std::size_t DomainName::wire_length() const {
  std::size_t n = 1;  // terminating zero byte
  for (const auto& l : labels_) n += 1 + l.size();
  return n;
}

bool DomainName::valid() const {
  for (const auto& l : labels_) {
    if (l.empty() || l.size() > kMaxLabelLength) return false;
  }
  return wire_length() <= kMaxNameLength;
}

bool DomainName::equals(const DomainName& other) const {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (!label_equal_ci(labels_[i], other.labels_[i])) return false;
  }
  return true;
}

bool DomainName::is_subdomain_of(const DomainName& ancestor) const {
  if (ancestor.labels_.size() > labels_.size()) return false;
  std::size_t offset = labels_.size() - ancestor.labels_.size();
  for (std::size_t i = 0; i < ancestor.labels_.size(); ++i) {
    if (!label_equal_ci(labels_[offset + i], ancestor.labels_[i])) {
      return false;
    }
  }
  return true;
}

DomainName DomainName::parent() const {
  if (labels_.empty()) return {};
  return DomainName(std::vector<std::string>(labels_.begin() + 1,
                                             labels_.end()));
}

std::optional<DomainName> DomainName::with_prefix_label(
    std::string_view label) const {
  if (label.empty() || label.size() > kMaxLabelLength) return std::nullopt;
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  DomainName out(std::move(labels));
  if (!out.valid()) return std::nullopt;
  return out;
}

std::string_view DomainName::first_label() const {
  if (labels_.empty()) return {};
  return labels_.front();
}

std::uint32_t DomainName::hash32() const {
  // FNV-1a over lowercased label bytes, with a length byte between labels
  // so ("ab","c") and ("a","bc") hash differently.
  std::uint32_t h = 2166136261u;
  for (const auto& l : labels_) {
    h ^= static_cast<std::uint8_t>(l.size());
    h *= 16777619u;
    for (char c : l) {
      h ^= static_cast<std::uint8_t>(lower(c));
      h *= 16777619u;
    }
  }
  return h;
}

DomainName DomainName::suffix(std::size_t n) const {
  if (n >= labels_.size()) return *this;
  return DomainName(
      std::vector<std::string>(labels_.end() - static_cast<std::ptrdiff_t>(n),
                               labels_.end()));
}

void NameCompressor::write(ByteWriter& w, const DomainName& name) {
  const auto& labels = name.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::string key = canonical_suffix(labels, i);
    auto it = offsets_.find(key);
    if (it != offsets_.end() && it->second <= 0x3fff) {
      // Emit a 2-byte pointer to the earlier occurrence.
      w.u16(static_cast<std::uint16_t>(0xc000 | it->second));
      return;
    }
    // Remember this suffix's offset (only representable offsets).
    if (w.size() <= 0x3fff) offsets_.emplace(std::move(key), w.size());
    w.u8(static_cast<std::uint8_t>(labels[i].size()));
    w.raw(labels[i]);
  }
  w.u8(0);
}

void write_name_uncompressed(ByteWriter& w, const DomainName& name) {
  for (const auto& l : name.labels()) {
    w.u8(static_cast<std::uint8_t>(l.size()));
    w.raw(l);
  }
  w.u8(0);
}

std::optional<DomainName> read_name(Cursor& c) {
  std::vector<std::string> labels;
  std::size_t total_len = 1;
  bool jumped = false;
  Cursor::Mark resume_at;
  int jumps = 0;

  for (;;) {
    std::uint8_t len = c.u8();
    if (!c.ok()) return std::nullopt;
    if ((len & 0xc0) == 0xc0) {
      // Compression pointer: 14-bit offset into the message.
      std::uint8_t low = c.u8();
      if (!c.ok()) return std::nullopt;
      std::size_t target = static_cast<std::size_t>(len & 0x3f) << 8 | low;
      if (!jumped) {
        resume_at = c.mark();
        jumped = true;
      }
      // jump_back() enforces the strictly-backwards rule; combined with
      // the jump cap this prevents loops.
      if (++jumps > 32 || !c.jump_back(target)) return std::nullopt;
      continue;
    }
    if ((len & 0xc0) != 0) return std::nullopt;  // reserved label types
    if (len == 0) break;
    if (len > kMaxLabelLength) return std::nullopt;
    std::string_view raw = c.chars(len);
    if (!c.ok()) return std::nullopt;
    total_len += 1 + len;
    if (total_len > kMaxNameLength) return std::nullopt;
    labels.emplace_back(raw);
  }

  if (jumped) c.resume(resume_at);
  return DomainName(std::move(labels));
}

}  // namespace dnsguard::dns
