// Attack traffic generators (§I attack strategies, §III.G attack analysis).
//
//   SpoofedFloodNode     — the headline threat: UDP DNS requests at a
//                          configurable rate with spoofed source addresses.
//   CookieGuessNode      — spoofed requests carrying *guessed* cookies
//                          (random NS-name labels, random subnet addresses
//                          or random TXT cookies); measures the 1/R_y
//                          penetration bound of §III.G.
//   ZombieFloodNode      — non-spoofed flood from the attacker's real
//                          address (what Rate-Limiter2 must contain).
//   VictimNode           — a third-party machine counting reflected bytes
//                          (amplification accounting, §III.G).
#pragma once

#include <functional>
#include <string>

#include "common/rng.h"
#include "dns/message.h"
#include "sim/node.h"

namespace dnsguard::attack {

struct FloodStats {
  std::uint64_t sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t response_bytes = 0;
};

/// Base class: emits `rate` UDP DNS queries/sec while running.
class FloodNodeBase : public sim::Node {
 public:
  struct Config {
    net::Ipv4Address own_address;      // where the attacker really sits
    net::SocketAddr target;            // the guarded ANS
    double rate = 1000.0;              // requests/sec
    std::uint64_t seed = 42;
    std::string qname_base = "www.foo.com.";
  };

  FloodNodeBase(sim::Simulator& sim, std::string name, Config config);

  void start();
  void stop() { running_ = false; }
  void set_rate(double rate) { config_.rate = rate; }
  [[nodiscard]] const FloodStats& flood_stats() const { return stats_; }
  void reset_flood_stats() { stats_ = FloodStats{}; }

 protected:
  /// Builds the next attack packet (subclass-specific spoofing/cookies).
  virtual net::Packet next_packet() = 0;

  SimDuration process(const net::Packet& packet) override;

  Config config_;
  Rng rng_;
  FloodStats stats_;

 private:
  void tick();
  bool running_ = false;
  std::uint64_t epoch_ = 0;  // invalidates pending ticks on restart
};

/// Spoofed-source flood: source addresses drawn uniformly from a prefix.
class SpoofedFloodNode : public FloodNodeBase {
 public:
  struct SpoofConfig {
    net::Ipv4Address spoof_base{10, 200, 0, 0};
    std::uint32_t spoof_range = 1 << 16;
    /// Attach a random (invalid) modified-DNS TXT cookie to each request —
    /// the Fig. 6 attacker: "spoofs requests and does not have the right
    /// cookie". The guard then spends exactly one MD5 check per packet.
    bool random_txt_cookie = false;
  };

  SpoofedFloodNode(sim::Simulator& sim, std::string name, Config config,
                   SpoofConfig spoof)
      : FloodNodeBase(sim, std::move(name), std::move(config)),
        spoof_(spoof) {}
  SpoofedFloodNode(sim::Simulator& sim, std::string name, Config config)
      : SpoofedFloodNode(sim, std::move(name), std::move(config),
                         SpoofConfig{}) {}

 protected:
  net::Packet next_packet() override;

 private:
  SpoofConfig spoof_;
};

/// "Whac-A-Mole" spoofer: a spoofed flood that *hops* its source prefix
/// on a schedule (the evasion pattern the root-DDoS defense literature
/// names after the arcade game — block one prefix and the attack pops up
/// from another). Each hop churns the guard's per-source tables with a
/// fresh source population, stressing LRU bounds and making source-growth
/// a signal the anomaly discriminator must not confuse with a flash
/// crowd: hopped sources never verify, so the malicious mix stays high.
class PrefixHopFloodNode : public FloodNodeBase {
 public:
  struct HopConfig {
    /// First spoofed prefix; hop i uses base + i * prefix_span.
    net::Ipv4Address prefix_base{10, 200, 0, 0};
    /// Addresses drawn per prefix (the per-hop source population).
    std::uint32_t prefix_span = 1 << 12;
    /// Hop cycle length before wrapping back to the first prefix.
    std::uint32_t num_prefixes = 64;
    SimDuration hop_interval = seconds(1);
    /// Attach random (never-verifying) TXT cookies, as SpoofedFloodNode.
    bool random_txt_cookie = true;
  };

  PrefixHopFloodNode(sim::Simulator& sim, std::string name, Config config,
                     HopConfig hop)
      : FloodNodeBase(sim, std::move(name), std::move(config)), hop_(hop) {}

  /// The prefix index in use at time `t` (deterministic hop schedule).
  [[nodiscard]] std::uint32_t hop_index(SimTime t) const {
    if (hop_.hop_interval.ns <= 0 || hop_.num_prefixes == 0) return 0;
    return static_cast<std::uint32_t>(
        (t.ns / hop_.hop_interval.ns) %
        static_cast<std::int64_t>(hop_.num_prefixes));
  }

 protected:
  net::Packet next_packet() override;

 private:
  HopConfig hop_;
};

/// Cookie-guessing attacker (§III.G "guess the value of a cookie").
class CookieGuessNode : public FloodNodeBase {
 public:
  enum class Mode {
    NsNameLabel,   // random "PR" + 8 hex chars labels
    SubnetAddress, // random destination y in the guard's subnet
    TxtCookie,     // random 16-byte TXT cookies
  };
  struct GuessConfig {
    Mode mode = Mode::SubnetAddress;
    net::Ipv4Address victim{10, 99, 0, 1};  // spoofed source
    net::Ipv4Address subnet_base;           // for SubnetAddress mode
    std::uint32_t r_y = 250;
    dns::DomainName zone;                   // protected zone (NsName mode)
  };

  CookieGuessNode(sim::Simulator& sim, std::string name, Config config,
                  GuessConfig guess)
      : FloodNodeBase(sim, std::move(name), std::move(config)),
        guess_(std::move(guess)) {}

 protected:
  net::Packet next_packet() override;

 private:
  GuessConfig guess_;
};

/// Non-spoofed flood from the attacker's own address.
class ZombieFloodNode : public FloodNodeBase {
 public:
  using FloodNodeBase::FloodNodeBase;

 protected:
  net::Packet next_packet() override;
};

/// A bystander machine that just counts what lands on it — the
/// amplification victim.
class VictimNode : public sim::Node {
 public:
  VictimNode(sim::Simulator& sim, std::string name, net::Ipv4Address address)
      : sim::Node(sim, std::move(name)), address_(address) {}

  [[nodiscard]] std::uint64_t packets_received() const { return packets_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_; }
  [[nodiscard]] net::Ipv4Address address() const { return address_; }

 protected:
  SimDuration process(const net::Packet& packet) override {
    packets_++;
    bytes_ += packet.wire_size();
    return SimDuration{0};
  }

 private:
  net::Ipv4Address address_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace dnsguard::attack
