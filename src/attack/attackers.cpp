#include "attack/attackers.h"

#include "common/hex.h"
#include "crypto/cookie_hash.h"
#include "guard/cookie_engine.h"

namespace dnsguard::attack {

FloodNodeBase::FloodNodeBase(sim::Simulator& sim, std::string name,
                             Config config)
    : sim::Node(sim, std::move(name)),
      config_(std::move(config)),
      rng_(config_.seed) {
  set_profile_stage(obs::prof::Stage::kAttackService);
}

void FloodNodeBase::start() {
  if (running_) return;
  running_ = true;
  ++epoch_;
  tick();
}

void FloodNodeBase::tick() {
  if (!running_ || config_.rate <= 0) return;
  stats_.sent++;
  send(next_packet());
  // Deterministic inter-departure time; attackers blast at constant rate.
  SimDuration gap = seconds_f(1.0 / config_.rate);
  std::uint64_t epoch = epoch_;
  schedule_in(gap, [this, epoch] {
    if (epoch == epoch_) tick();
  });
}

SimDuration FloodNodeBase::process(const net::Packet& packet) {
  // Responses reaching the attacker's own address (e.g. for zombie mode).
  stats_.responses_received++;
  stats_.response_bytes += packet.wire_size();
  return SimDuration{0};
}

net::Packet SpoofedFloodNode::next_packet() {
  net::Ipv4Address src(
      spoof_.spoof_base.value() +
      static_cast<std::uint32_t>(rng_.bounded(spoof_.spoof_range)));
  dns::Message q = dns::Message::query(
      static_cast<std::uint16_t>(rng_.next()),
      dns::DomainName::parse(config_.qname_base).value_or(dns::DomainName{}),
      dns::RrType::A, false);
  if (spoof_.random_txt_cookie) {
    crypto::Cookie c;
    for (auto& b : c) b = static_cast<std::uint8_t>(rng_.next());
    guard::CookieEngine::attach_txt_cookie(q, c, 0);
  }
  return net::Packet::make_udp({src, 33000}, config_.target,
                               q.encode_pooled());
}

net::Packet PrefixHopFloodNode::next_packet() {
  const std::uint32_t hop = hop_index(now());
  net::Ipv4Address src(
      hop_.prefix_base.value() + hop * hop_.prefix_span +
      static_cast<std::uint32_t>(
          rng_.bounded(hop_.prefix_span == 0 ? 1 : hop_.prefix_span)));
  dns::Message q = dns::Message::query(
      static_cast<std::uint16_t>(rng_.next()),
      dns::DomainName::parse(config_.qname_base).value_or(dns::DomainName{}),
      dns::RrType::A, false);
  if (hop_.random_txt_cookie) {
    crypto::Cookie c;
    for (auto& b : c) b = static_cast<std::uint8_t>(rng_.next());
    guard::CookieEngine::attach_txt_cookie(q, c, 0);
  }
  return net::Packet::make_udp({src, 33000}, config_.target,
                               q.encode_pooled());
}

net::Packet CookieGuessNode::next_packet() {
  std::uint16_t id = static_cast<std::uint16_t>(rng_.next());
  switch (guess_.mode) {
    case Mode::SubnetAddress: {
      // Spray queries across the guard's subnet: 1/R_y of them hit the
      // victim's real cookie address (§III.G worst-case false negative).
      std::uint32_t y =
          static_cast<std::uint32_t>(rng_.bounded(guess_.r_y));
      net::Ipv4Address dst(guess_.subnet_base.value() + 1 + y);
      dns::Message q = dns::Message::query(
          id,
          dns::DomainName::parse(config_.qname_base)
              .value_or(dns::DomainName{}),
          dns::RrType::A, false);
      return net::Packet::make_udp({guess_.victim, 33000},
                                   {dst, net::kDnsPort}, q.encode_pooled());
    }
    case Mode::NsNameLabel: {
      // Random hex cookie label under the protected zone.
      std::uint8_t raw[4];
      std::uint32_t r = static_cast<std::uint32_t>(rng_.next());
      raw[0] = static_cast<std::uint8_t>(r >> 24);
      raw[1] = static_cast<std::uint8_t>(r >> 16);
      raw[2] = static_cast<std::uint8_t>(r >> 8);
      raw[3] = static_cast<std::uint8_t>(r);
      std::string label = std::string(guard::kCookieLabelPrefix) +
                          hex_encode(BytesView(raw, 4)) + "com";
      auto qname = guess_.zone.with_prefix_label(label);
      dns::Message q = dns::Message::query(
          id, qname.value_or(dns::DomainName{}), dns::RrType::A, false);
      return net::Packet::make_udp({guess_.victim, 33000}, config_.target,
                                   q.encode_pooled());
    }
    case Mode::TxtCookie: {
      dns::Message q = dns::Message::query(
          id,
          dns::DomainName::parse(config_.qname_base)
              .value_or(dns::DomainName{}),
          dns::RrType::A, false);
      crypto::Cookie c;
      for (auto& b : c) b = static_cast<std::uint8_t>(rng_.next());
      guard::CookieEngine::attach_txt_cookie(q, c, 0);
      return net::Packet::make_udp({guess_.victim, 33000}, config_.target,
                                   q.encode_pooled());
    }
  }
  // Unreachable; keep the compiler satisfied.
  return net::Packet::make_udp({guess_.victim, 33000}, config_.target, {});
}

net::Packet ZombieFloodNode::next_packet() {
  dns::Message q = dns::Message::query(
      static_cast<std::uint16_t>(rng_.next()),
      dns::DomainName::parse(config_.qname_base).value_or(dns::DomainName{}),
      dns::RrType::A, false);
  return net::Packet::make_udp({config_.own_address, 33000}, config_.target,
                               q.encode_pooled());
}

}  // namespace dnsguard::attack
