// LocalGuardNode — the LRS-side firewall module of the modified-DNS
// scheme (§III.D, Fig. 3).
//
// Deployed "in front of" an unmodified LRS: the simulator routes the
// LRS's address through this node in both directions. For each protected
// ANS the local guard caches one cookie (Table I: "1 cookie per ANS").
//
//   - Outbound query, cookie cached  -> attach TXT cookie, forward (msg 4).
//   - Outbound query, no cookie      -> hold the query, send a copy with an
//     all-zero cookie (msg 2) to request one; on the cookie reply (msg 3)
//     release all held queries with the real cookie attached.
//   - Cookie reply never arrives (no remote guard / RL1 drop): after a
//     timeout the held queries are released without cookies, so an
//     unprotected ANS keeps working — incremental deployability.
//   - Inbound responses: strip/cache any cookie TXT, deliver to the LRS.
#pragma once

#include <deque>

#include "common/bounded_table.h"
#include "dns/message.h"
#include "guard/cookie_engine.h"
#include "obs/metrics.h"
#include "sim/node.h"

namespace dnsguard::guard {

/// Counter cells; attached to the simulator's registry as "local_guard.*".
struct LocalGuardStats {
  obs::Counter queries_with_cookie;
  obs::Counter queries_held;
  obs::Counter cookie_requests;
  obs::Counter cookies_cached;
  obs::Counter released_without_cookie;
  obs::Counter responses_delivered;

  void bind(obs::MetricsRegistry& registry, std::string_view prefix) {
    std::string p(prefix);
    registry.attach_counter(p + ".queries_with_cookie", queries_with_cookie);
    registry.attach_counter(p + ".queries_held", queries_held);
    registry.attach_counter(p + ".cookie_requests", cookie_requests);
    registry.attach_counter(p + ".cookies_cached", cookies_cached);
    registry.attach_counter(p + ".released_without_cookie",
                            released_without_cookie);
    registry.attach_counter(p + ".responses_delivered", responses_delivered);
  }
};

class LocalGuardNode : public sim::Node {
 public:
  struct Config {
    net::Ipv4Address lrs_address;
    /// How long to wait for a cookie reply before releasing held queries
    /// without cookies.
    SimDuration cookie_request_timeout = milliseconds(500);
    /// Per-packet CPU cost of the module.
    SimDuration packet_cost = nanoseconds(700);
    std::size_t max_held_per_ans = 1024;
    /// How long to remember that an ANS answered without a cookie (i.e.
    /// has no remote guard) before probing again. Incremental deployment:
    /// unguarded ANSs are served plainly with no per-query delay.
    SimDuration not_capable_ttl = seconds(60);
    /// Full-sweep cadence: every N processed packets all expired cookie
    /// and not-capable entries are reaped (on top of the per-packet
    /// incremental reaping), so long runs against many ANSs keep the maps
    /// bounded by the live working set.
    std::uint32_t sweep_every_packets = 1024;
    /// Hard caps on the per-ANS maps ("1 cookie per ANS", Table I — but
    /// the ANS address is remote-influenced, so the maps are bounded).
    std::size_t max_cookie_cache = 4096;
    std::size_t max_not_capable = 4096;
    /// Distinct ANSs with held queries; the LRU bucket's queries are
    /// flushed cookie-less when the cap is hit.
    std::size_t max_held_anses = 1024;
  };

  LocalGuardNode(sim::Simulator& sim, std::string name, Config config,
                 sim::Node* lrs);

  /// Takes over routing for the LRS address and sets the LRS gateway.
  void install();

  [[nodiscard]] const LocalGuardStats& local_stats() const { return stats_; }
  [[nodiscard]] bool has_cookie_for(net::Ipv4Address ans) const;
  /// Drops a cached cookie (tests: simulate expiry).
  void forget_cookie(net::Ipv4Address ans) { cookies_.erase(ans); }
  /// Current map sizes (tests assert long runs stay bounded).
  [[nodiscard]] std::size_t cookie_cache_size() const {
    return cookies_.size();
  }
  [[nodiscard]] std::size_t not_capable_size() const {
    return not_capable_until_.size();
  }

 protected:
  SimDuration process(const net::Packet& packet) override;

 private:
  struct HeldBucket {
    std::deque<net::Packet> queries;
    std::uint64_t generation = 0;
    bool request_outstanding = false;
  };

  void handle_outbound(const net::Packet& packet, dns::Message query);
  void handle_inbound(const net::Packet& packet, dns::Message response);
  void release_held(net::Ipv4Address ans, const crypto::Cookie* cookie);
  void flush_bucket(HeldBucket bucket, const crypto::Cookie* cookie);
  void on_cookie_timeout(net::Ipv4Address ans, std::uint64_t generation);

  Config config_;
  sim::Node* lrs_;
  common::BoundedTable<net::Ipv4Address, crypto::Cookie> cookies_;
  common::BoundedTable<net::Ipv4Address, SimTime> not_capable_until_;
  common::BoundedTable<net::Ipv4Address, HeldBucket> held_;
  LocalGuardStats stats_;
  SimDuration cost_{};
  std::uint32_t sweep_counter_ = 0;
};

}  // namespace dnsguard::guard
