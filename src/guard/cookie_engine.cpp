#include "guard/cookie_engine.h"

#include "common/hex.h"

namespace dnsguard::guard {

std::optional<std::string> CookieEngine::make_cookie_label(
    net::Ipv4Address requester, std::string_view restore_label) const {
  crypto::Cookie c = mint(requester);
  std::uint32_t prefix = crypto::cookie_prefix32(c);
  std::uint8_t be[4] = {
      static_cast<std::uint8_t>(prefix >> 24),
      static_cast<std::uint8_t>(prefix >> 16),
      static_cast<std::uint8_t>(prefix >> 8),
      static_cast<std::uint8_t>(prefix)};
  std::string label(kCookieLabelPrefix);
  label += hex_encode(BytesView(be, 4));
  label += restore_label;
  if (label.size() > dns::kMaxLabelLength) return std::nullopt;
  return label;
}

std::optional<CookieEngine::ParsedLabel> CookieEngine::parse_cookie_label(
    std::string_view label) {
  if (label.size() < kCookieLabelPrefix.size() + kCookieHexChars) {
    return std::nullopt;
  }
  if (label.substr(0, kCookieLabelPrefix.size()) != kCookieLabelPrefix) {
    return std::nullopt;
  }
  std::string_view hex =
      label.substr(kCookieLabelPrefix.size(), kCookieHexChars);
  if (!is_hex(hex)) return std::nullopt;
  auto bytes = hex_decode(hex);
  if (!bytes || bytes->size() != 4) return std::nullopt;
  std::uint32_t prefix = (static_cast<std::uint32_t>((*bytes)[0]) << 24) |
                         (static_cast<std::uint32_t>((*bytes)[1]) << 16) |
                         (static_cast<std::uint32_t>((*bytes)[2]) << 8) |
                         static_cast<std::uint32_t>((*bytes)[3]);
  ParsedLabel out;
  out.cookie_prefix = prefix;
  out.restore_label =
      std::string(label.substr(kCookieLabelPrefix.size() + kCookieHexChars));
  return out;
}

// Mint and verify must agree on the divisor: a config with r_y == 0 still
// mints addresses in (base, base + 1] (divisor clamped to 1), so the
// verify path has to clamp identically or every legitimate follow-up
// query under that config is rejected as a spoof.
static constexpr std::uint32_t sanitized_r_y(std::uint32_t r_y) {
  return r_y == 0 ? 1 : r_y;
}

net::Ipv4Address CookieEngine::make_cookie_address(
    net::Ipv4Address requester, net::Ipv4Address subnet_base,
    std::uint32_t r_y) const {
  crypto::Cookie c = mint(requester);
  std::uint32_t y = crypto::cookie_prefix32(c) % sanitized_r_y(r_y);
  return net::Ipv4Address(subnet_base.value() + 1 + y);
}

crypto::VerifyResult CookieEngine::verify_cookie_address_ex(
    net::Ipv4Address requester, net::Ipv4Address dst,
    net::Ipv4Address subnet_base, std::uint32_t r_y) const {
  const std::uint32_t divisor = sanitized_r_y(r_y);
  if (dst.value() <= subnet_base.value()) return {false, false};
  std::uint32_t offset = dst.value() - subnet_base.value() - 1;
  if (offset >= divisor) return {false, false};
  // Both current and previous key generation must be checked, mirroring
  // verify_prefix semantics: recompute under the generation the requester
  // might hold. The IP encoding carries no generation bit (mod R_y folds
  // it away), so try both; otherwise a weekly rotation would silently
  // drop every legitimate follow-up query holding a pre-rotation address.
  crypto::Cookie current = mint(requester);
  if (crypto::cookie_prefix32(current) % divisor == offset) {
    return {true, false};
  }
  if (auto prev = keys_.mint_previous(requester.value())) {
    if (crypto::cookie_prefix32(*prev) % divisor == offset) {
      return {true, true};
    }
  }
  return {false, false};
}

std::optional<crypto::Cookie> CookieEngine::extract_txt_cookie(
    const dns::Message& m) {
  for (const auto& rr : m.additional) {
    if (rr.type != dns::RrType::TXT || !rr.name.is_root()) continue;
    const auto* txt = std::get_if<dns::TxtRdata>(&rr.rdata);
    if (txt == nullptr || txt->strings.empty()) continue;
    const Bytes& payload = txt->strings.front();
    if (payload.size() != crypto::kCookieSize) continue;
    crypto::Cookie c{};
    std::copy(payload.begin(), payload.end(), c.begin());
    return c;
  }
  return std::nullopt;
}

void CookieEngine::attach_txt_cookie(dns::Message& m,
                                     const crypto::Cookie& cookie,
                                     std::uint32_t ttl) {
  m.additional.push_back(dns::ResourceRecord::txt(
      dns::DomainName{}, dns::TxtRdata::single(BytesView(cookie)), ttl));
  // TTL 0 records still need to reach the peer; the wire TTL field is what
  // the local guard reads for cache lifetime.
  m.additional.back().ttl = ttl;
}

void CookieEngine::strip_txt_cookie(dns::Message& m) {
  std::erase_if(m.additional, [](const dns::ResourceRecord& rr) {
    if (rr.type != dns::RrType::TXT || !rr.name.is_root()) return false;
    const auto* txt = std::get_if<dns::TxtRdata>(&rr.rdata);
    return txt != nullptr && !txt->strings.empty() &&
           txt->strings.front().size() == crypto::kCookieSize;
  });
}

bool CookieEngine::is_zero_cookie(const crypto::Cookie& c) {
  for (auto b : c) {
    if (b != 0) return false;
  }
  return true;
}

}  // namespace dnsguard::guard
