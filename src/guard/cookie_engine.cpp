#include "guard/cookie_engine.h"

#include "common/hex.h"

namespace dnsguard::guard {

std::optional<std::string> CookieEngine::make_cookie_label(
    net::Ipv4Address requester, std::string_view restore_label) const {
  DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardMint);
  crypto::Cookie c = mint(requester);
  std::uint32_t prefix = crypto::cookie_prefix32(c);
  std::uint8_t be[4] = {
      static_cast<std::uint8_t>(prefix >> 24),
      static_cast<std::uint8_t>(prefix >> 16),
      static_cast<std::uint8_t>(prefix >> 8),
      static_cast<std::uint8_t>(prefix)};
  std::string label(kCookieLabelPrefix);
  label += hex_encode(BytesView(be, 4));
  label += restore_label;
  if (label.size() > dns::kMaxLabelLength) return std::nullopt;
  return label;
}

std::optional<CookieEngine::ParsedLabel> CookieEngine::parse_cookie_label(
    std::string_view label) {
  if (label.size() < kCookieLabelPrefix.size() + kCookieHexChars) {
    return std::nullopt;
  }
  if (label.substr(0, kCookieLabelPrefix.size()) != kCookieLabelPrefix) {
    return std::nullopt;
  }
  std::string_view hex =
      label.substr(kCookieLabelPrefix.size(), kCookieHexChars);
  if (!is_hex(hex)) return std::nullopt;
  auto bytes = hex_decode(hex);
  if (!bytes || bytes->size() != 4) return std::nullopt;
  std::uint32_t prefix = (static_cast<std::uint32_t>((*bytes)[0]) << 24) |
                         (static_cast<std::uint32_t>((*bytes)[1]) << 16) |
                         (static_cast<std::uint32_t>((*bytes)[2]) << 8) |
                         static_cast<std::uint32_t>((*bytes)[3]);
  ParsedLabel out;
  out.cookie_prefix = prefix;
  out.restore_label =
      std::string(label.substr(kCookieLabelPrefix.size() + kCookieHexChars));
  return out;
}

// Mint and verify must agree on the divisor: a config with r_y == 0 still
// mints addresses in (base, base + 1] (divisor clamped to 1), so the
// verify path has to clamp identically or every legitimate follow-up
// query under that config is rejected as a spoof. The upper clamp closes
// the symmetric bug for huge R_y: cookie addresses live in
// (base, base + divisor], and with r_y near 2^32 the mint side used to
// wrap the 32-bit address space and produce addresses the verifier's
// range check (correctly) rejects — every legitimate follow-up query
// under such a config was dropped as a spoof. Capping the divisor so
// base + divisor cannot wrap keeps both sides in agreement for any r_y.
static constexpr std::uint32_t sanitized_r_y(std::uint32_t r_y,
                                             std::uint32_t subnet_base) {
  const std::uint32_t max_div = 0xffffffffU - subnet_base;
  std::uint32_t d = r_y == 0 ? 1 : r_y;
  if (max_div > 0 && d > max_div) d = max_div;
  return d == 0 ? 1 : d;
}

net::Ipv4Address CookieEngine::make_cookie_address(
    net::Ipv4Address requester, net::Ipv4Address subnet_base,
    std::uint32_t r_y) const {
  DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardMint);
  crypto::Cookie c = mint(requester);
  std::uint32_t y =
      crypto::cookie_prefix32(c) % sanitized_r_y(r_y, subnet_base.value());
  return net::Ipv4Address(subnet_base.value() + 1 + y);
}

crypto::VerifyResult CookieEngine::verify_cookie_address_ex(
    net::Ipv4Address requester, net::Ipv4Address dst,
    net::Ipv4Address subnet_base, std::uint32_t r_y) const {
  DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardVerify);
  const std::uint32_t divisor = sanitized_r_y(r_y, subnet_base.value());
  if (dst.value() <= subnet_base.value()) return {false, false, false};
  std::uint32_t offset = dst.value() - subnet_base.value() - 1;
  if (offset >= divisor) return {false, false, false};
  // Both current and previous key generation must be checked, mirroring
  // verify_prefix semantics: recompute under the generation the requester
  // might hold. The IP encoding carries no generation bit (mod R_y folds
  // it away), so try both; otherwise a weekly rotation would silently
  // drop every legitimate follow-up query holding a pre-rotation address.
  crypto::Cookie current = mint(requester);
  if (crypto::cookie_prefix32(current) % divisor == offset) {
    return {true, false, false};
  }
  if (auto prev = keys_.mint_previous(requester.value())) {
    if (crypto::cookie_prefix32(*prev) % divisor == offset) {
      return {true, true, false};
    }
  }
  // Failure classification: an address that matches the *retired* key
  // (two rotations back) belongs to a real client whose cookie aged out,
  // not to a guesser — charge it to kStaleKey, not kBadCookie. The mod-R_y
  // fold makes this a probabilistic signal (a guess lands on the retired
  // offset with probability 1/R_y), which is exactly the 1/R_y confusion
  // bound the encoding already concedes (§III.G).
  if (auto retired = keys_.mint_retired(requester.value())) {
    if (crypto::cookie_prefix32(*retired) % divisor == offset) {
      return {false, false, true};
    }
  }
  return {false, false, false};
}

void CookieEngine::verify_jobs(const VerifyJob* jobs,
                               crypto::VerifyResult* out, std::size_t n,
                               net::Ipv4Address subnet_base,
                               std::uint32_t r_y) const {
  DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardVerifyJobs);
  // One call verifies a whole shard batch. Grouping the checks keeps the
  // pre-keyed MD5 midstates and the key schedule hot across items; each
  // item still costs exactly the per-kind verification it would cost
  // individually (the virtual-time cost model is charged by the caller).
  for (std::size_t i = 0; i < n; ++i) {
    const VerifyJob& j = jobs[i];
    switch (j.kind) {
      case VerifyJob::Kind::kFull:
        out[i] = keys_.verify_ex(j.requester.value(), j.cookie);
        break;
      case VerifyJob::Kind::kPrefix:
        out[i] = keys_.verify_prefix32_ex(j.requester.value(), j.prefix);
        break;
      case VerifyJob::Kind::kAddress:
        out[i] = verify_cookie_address_ex(j.requester, j.dst, subnet_base,
                                          r_y);
        break;
    }
  }
}

std::optional<crypto::Cookie> CookieEngine::extract_txt_cookie(
    const dns::Message& m) {
  for (const auto& rr : m.additional) {
    if (rr.type != dns::RrType::TXT || !rr.name.is_root()) continue;
    const auto* txt = std::get_if<dns::TxtRdata>(&rr.rdata);
    if (txt == nullptr || txt->strings.empty()) continue;
    const Bytes& payload = txt->strings.front();
    if (payload.size() != crypto::kCookieSize) continue;
    crypto::Cookie c{};
    std::copy(payload.begin(), payload.end(), c.begin());
    return c;
  }
  return std::nullopt;
}

void CookieEngine::attach_txt_cookie(dns::Message& m,
                                     const crypto::Cookie& cookie,
                                     std::uint32_t ttl) {
  m.additional.push_back(dns::ResourceRecord::txt(
      dns::DomainName{}, dns::TxtRdata::single(BytesView(cookie)), ttl));
  // TTL 0 records still need to reach the peer; the wire TTL field is what
  // the local guard reads for cache lifetime.
  m.additional.back().ttl = ttl;
}

void CookieEngine::strip_txt_cookie(dns::Message& m) {
  std::erase_if(m.additional, [](const dns::ResourceRecord& rr) {
    if (rr.type != dns::RrType::TXT || !rr.name.is_root()) return false;
    const auto* txt = std::get_if<dns::TxtRdata>(&rr.rdata);
    return txt != nullptr && !txt->strings.empty() &&
           txt->strings.front().size() == crypto::kCookieSize;
  });
}

bool CookieEngine::is_zero_cookie(const crypto::Cookie& c) {
  for (auto b : c) {
    if (b != 0) return false;
  }
  return true;
}

}  // namespace dnsguard::guard
