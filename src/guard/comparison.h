// Scheme metadata backing Table I ("Comparison among spoof detection
// schemes"). Values that are protocol facts (packet counts, RTTs, cookie
// ranges, amplification bounds) are encoded here and cross-checked by the
// table1 bench against behaviour measured in the simulator.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "guard/remote_guard.h"

namespace dnsguard::guard {

struct SchemeProfile {
  Scheme scheme;
  std::string_view column;           // Table I column heading
  int worst_latency_rtt;             // first access
  int best_latency_rtt;              // cookie cached
  std::string_view cookie_storage;   // at the LRS
  double cookie_range_log2;          // log2 of guessing space
  int amplification_bytes;           // max response-minus-request bytes
  std::string_view deployment;       // where modules must be added
  /// Packets transiting the guard per request (cache miss / hit) — the
  /// quantities behind Table III's throughput ratios.
  int packets_miss;
  int packets_hit;
  int cookie_ops_miss;
  int cookie_ops_hit;
};

/// r_y_log2: log2 of the deployed subnet's usable range (Table I lists
/// "2^32 and R_y ≤ 2^24" for the fabricated variant's two cookies).
[[nodiscard]] constexpr std::array<SchemeProfile, 4> scheme_profiles(
    double r_y_log2 = 8.0) {
  return {{
      {Scheme::NsName, "DNS-based: NS name", 2, 1, "1 cookie per NS record",
       32.0, 24, "ANS side only", 6, 4, 2, 1},
      {Scheme::FabricatedNsIp, "DNS-based: fabricated NS name and IP", 3, 1,
       "2 cookies per non-referral record", r_y_log2, 24, "ANS side only", 8,
       4, 3, 1},
      {Scheme::TcpRedirect, "TCP-based", 3, 3, "0", 29.0, 0, "ANS side only",
       12, 12, 0, 0},
      {Scheme::ModifiedDns, "Modified DNS", 2, 1, "1 cookie per ANS", 128.0,
       0, "LRS side and ANS side", 6, 4, 2, 1},
  }};
}

}  // namespace dnsguard::guard
