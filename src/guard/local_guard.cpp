#include "guard/local_guard.h"

namespace dnsguard::guard {
namespace {

obs::JourneyKey jkey_of(std::uint32_t lrs_ip, const dns::Message& m) {
  return {lrs_ip, m.header.id,
          m.question() != nullptr ? m.question()->qname.hash32() : 0};
}

}  // namespace

LocalGuardNode::LocalGuardNode(sim::Simulator& sim, std::string name,
                               Config config, sim::Node* lrs)
    : sim::Node(sim, std::move(name)),
      config_(config),
      lrs_(lrs),
      cookies_({.capacity = config_.max_cookie_cache}),
      not_capable_until_({.capacity = config_.max_not_capable}),
      held_({.capacity = config_.max_held_anses}) {
  set_profile_stage(obs::prof::Stage::kGuardService);
  stats_.bind(this->sim().metrics(), "local_guard");
  cookies_.bind_metrics(this->sim().metrics(), "local_guard.cookies");
  not_capable_until_.bind_metrics(this->sim().metrics(),
                                  "local_guard.not_capable");
  held_.bind_metrics(this->sim().metrics(), "local_guard.held");
  // If the held-bucket table has to evict (too many distinct ANSs probed
  // at once), the victim's queries must still reach their ANS — release
  // them cookie-less rather than drop them.
  held_.set_evict_callback([this](const net::Ipv4Address&, HeldBucket& bucket,
                                  common::EvictReason) {
    flush_bucket(std::move(bucket), nullptr);
  });
}

void LocalGuardNode::install() {
  sim().add_host_route(config_.lrs_address, this);
  sim().set_gateway(lrs_, this);
}

bool LocalGuardNode::has_cookie_for(net::Ipv4Address ans) const {
  return cookies_.peek(ans, sim().now()) != nullptr;
}

SimDuration LocalGuardNode::process(const net::Packet& packet) {
  cost_ = config_.packet_cost;
  // Amortized reaping: a few index slots per packet, plus a periodic full
  // sweep so expired entries do not linger through quiet spells.
  cookies_.reap(now(), 16);
  not_capable_until_.reap(now(), 16);
  if (config_.sweep_every_packets > 0 &&
      ++sweep_counter_ >= config_.sweep_every_packets) {
    sweep_counter_ = 0;
    cookies_.reap(now());
    not_capable_until_.reap(now());
  }
  if (!packet.is_udp()) {
    // TCP traffic (truncation fallback) passes through transparently.
    if (packet.src_ip == config_.lrs_address) {
      send(packet);
    } else {
      send_direct(lrs_, packet);
    }
    return cost_ + config_.packet_cost;
  }

  auto m = dns::Message::decode(BytesView(packet.payload));
  if (!m) {
    // Undecodable: forward unchanged in whichever direction it flows.
    if (packet.src_ip == config_.lrs_address) {
      send(packet);
    } else {
      send_direct(lrs_, packet);
    }
    return cost_ + config_.packet_cost;
  }

  if (packet.src_ip == config_.lrs_address && !m->header.qr) {
    handle_outbound(packet, std::move(*m));
  } else {
    handle_inbound(packet, std::move(*m));
  }
  return cost_;
}

void LocalGuardNode::handle_outbound(const net::Packet& packet,
                                     dns::Message query) {
  net::Ipv4Address ans = packet.dst_ip;

  obs::JourneyTracker& jt = sim().journeys();

  if (const crypto::Cookie* cached = cookies_.find(ans, now())) {
    // msg 4: attach the cached cookie.
    CookieEngine::strip_txt_cookie(query);  // defensive: never double-add
    CookieEngine::attach_txt_cookie(query, *cached, 0);
    stats_.queries_with_cookie++;
    if (jt.enabled()) {
      jt.mark(jkey_of(packet.src_ip.value(), query), "lguard.attach", now());
    }
    net::Packet out = packet;
    query.encode_to(out.payload);
    cost_ = cost_ + config_.packet_cost;
    send(std::move(out));
    return;
  }

  // A recently-probed ANS without a remote guard is served plainly.
  if (not_capable_until_.find(ans, now()) != nullptr) {
    cost_ = cost_ + config_.packet_cost;
    send(packet);
    return;
  }

  // Hold the original and (at most once per window) request a cookie.
  HeldBucket& bucket = *held_.try_emplace(ans, now()).value;
  if (bucket.queries.size() < config_.max_held_per_ans) {
    bucket.queries.push_back(packet);
    stats_.queries_held++;
    if (jt.enabled()) {
      jt.mark(jkey_of(packet.src_ip.value(), query), "lguard.hold", now());
    }
  }
  if (!bucket.request_outstanding) {
    bucket.request_outstanding = true;
    std::uint64_t gen = ++bucket.generation;
    // msg 2: same query with an all-zero cookie — same size as msg 4, so
    // the exchange amplifies nothing.
    dns::Message req = query;
    CookieEngine::strip_txt_cookie(req);
    CookieEngine::attach_txt_cookie(req, crypto::Cookie{}, 0);
    stats_.cookie_requests++;
    if (jt.enabled()) {
      jt.mark(jkey_of(packet.src_ip.value(), req), "lguard.cookie_req",
              now());
    }
    net::Packet out = packet;
    req.encode_to(out.payload);
    cost_ = cost_ + config_.packet_cost;
    send(std::move(out));
    schedule_in(config_.cookie_request_timeout,
                [this, ans, gen] { on_cookie_timeout(ans, gen); });
  }
}

void LocalGuardNode::handle_inbound(const net::Packet& packet,
                                    dns::Message response) {
  if (!response.header.qr) {
    // A query addressed to the LRS (stub client traffic): pass through.
    cost_ = cost_ + config_.packet_cost;
    send_direct(lrs_, packet);
    return;
  }

  auto cookie = CookieEngine::extract_txt_cookie(response);
  if (cookie && !CookieEngine::is_zero_cookie(*cookie)) {
    // Cache by the responding server's address; TTL rides in the TXT TTL.
    std::uint32_t ttl = 0;
    for (const auto& rr : response.additional) {
      if (rr.type == dns::RrType::TXT && rr.name.is_root()) ttl = rr.ttl;
    }
    if (ttl == 0) ttl = 60;
    auto r = cookies_.try_emplace(packet.src_ip, now(), *cookie);
    const crypto::Cookie* cached = nullptr;
    if (r.value != nullptr) {
      if (!r.inserted) *r.value = *cookie;
      cookies_.set_expiry(packet.src_ip, now() + seconds(ttl));
      cached = r.value;
    }
    stats_.cookies_cached++;

    if (response.answers.empty() && response.authority.empty()) {
      // msg 3: pure cookie reply — consume it and release held queries.
      release_held(packet.src_ip, cached);
      return;
    }
    // A real answer carrying a refreshed cookie: strip and deliver; any
    // queries still held for this ANS can go out with the fresh cookie.
    release_held(packet.src_ip, cached);
    CookieEngine::strip_txt_cookie(response);
    net::Packet out = packet;
    response.encode_to(out.payload);
    stats_.responses_delivered++;
    if (sim().journeys().enabled()) {
      sim().journeys().mark(jkey_of(packet.dst_ip.value(), response),
                            "lguard.deliver", now());
    }
    cost_ = cost_ + config_.packet_cost;
    send_direct(lrs_, std::move(out));
    return;
  }

  // A cookie-less response. If we were waiting on a cookie from this
  // server, it has no remote guard: this response answers the probe query
  // itself (msg 2 was the original query + zero cookie, same id), so
  // deliver it, release anything else held plainly, and remember the
  // server is not cookie-capable.
  if (HeldBucket* bucket = held_.find(packet.src_ip, now())) {
    SimTime until = now() + config_.not_capable_ttl;
    auto r = not_capable_until_.try_emplace(packet.src_ip, now(), until);
    if (r.value != nullptr) {
      if (!r.inserted) *r.value = until;
      not_capable_until_.set_expiry(packet.src_ip, until);
    }
    // Drop the probe's duplicate from the held set: the LRS is getting
    // its answer right now.
    std::erase_if(bucket->queries, [&response](const net::Packet& p) {
      auto m = dns::Message::decode(BytesView(p.payload));
      return m && m->header.id == response.header.id;
    });
    release_held(packet.src_ip, nullptr);
  }

  stats_.responses_delivered++;
  if (sim().journeys().enabled()) {
    sim().journeys().mark(jkey_of(packet.dst_ip.value(), response),
                          "lguard.deliver", now());
  }
  cost_ = cost_ + config_.packet_cost;
  send_direct(lrs_, packet);
}

void LocalGuardNode::release_held(net::Ipv4Address ans,
                                  const crypto::Cookie* cookie) {
  HeldBucket* found = held_.find(ans, now());
  if (found == nullptr) return;
  HeldBucket bucket = std::move(*found);
  held_.erase(ans);
  flush_bucket(std::move(bucket), cookie);
}

void LocalGuardNode::flush_bucket(HeldBucket bucket,
                                  const crypto::Cookie* cookie) {
  for (net::Packet& p : bucket.queries) {
    auto m = dns::Message::decode(BytesView(p.payload));
    if (!m) continue;
    if (cookie != nullptr) {
      CookieEngine::attach_txt_cookie(*m, *cookie, 0);
      stats_.queries_with_cookie++;
    } else {
      stats_.released_without_cookie++;
    }
    if (sim().journeys().enabled()) {
      sim().journeys().mark(jkey_of(p.src_ip.value(), *m),
                            cookie != nullptr ? "lguard.release"
                                              : "lguard.release_plain",
                            now());
    }
    m->encode_to(p.payload);
    cost_ = cost_ + config_.packet_cost;
    send(std::move(p));
  }
}

void LocalGuardNode::on_cookie_timeout(net::Ipv4Address ans,
                                       std::uint64_t generation) {
  HeldBucket* found = held_.find(ans, now());
  if (found == nullptr || found->generation != generation) return;
  // No cookie reply: the ANS is probably unguarded. Release the held
  // queries unmodified so service continues.
  found->request_outstanding = false;
  release_held(ans, nullptr);
}

}  // namespace dnsguard::guard
