#include "guard/local_guard.h"

namespace dnsguard::guard {

LocalGuardNode::LocalGuardNode(sim::Simulator& sim, std::string name,
                               Config config, sim::Node* lrs)
    : sim::Node(sim, std::move(name)), config_(config), lrs_(lrs) {
  stats_.bind(this->sim().metrics(), "local_guard");
}

void LocalGuardNode::install() {
  sim().add_host_route(config_.lrs_address, this);
  sim().set_gateway(lrs_, this);
}

bool LocalGuardNode::has_cookie_for(net::Ipv4Address ans) const {
  auto it = cookies_.find(ans);
  return it != cookies_.end() && it->second.expires > sim().now();
}

void LocalGuardNode::sweep_expired() {
  SimTime t = now();
  std::erase_if(cookies_,
                [t](const auto& kv) { return kv.second.expires <= t; });
  std::erase_if(not_capable_until_,
                [t](const auto& kv) { return kv.second <= t; });
}

SimDuration LocalGuardNode::process(const net::Packet& packet) {
  cost_ = config_.packet_cost;
  if (config_.sweep_every_packets > 0 &&
      ++sweep_counter_ >= config_.sweep_every_packets) {
    sweep_counter_ = 0;
    sweep_expired();
  }
  if (!packet.is_udp()) {
    // TCP traffic (truncation fallback) passes through transparently.
    if (packet.src_ip == config_.lrs_address) {
      send(packet);
    } else {
      send_direct(lrs_, packet);
    }
    return cost_ + config_.packet_cost;
  }

  auto m = dns::Message::decode(BytesView(packet.payload));
  if (!m) {
    // Undecodable: forward unchanged in whichever direction it flows.
    if (packet.src_ip == config_.lrs_address) {
      send(packet);
    } else {
      send_direct(lrs_, packet);
    }
    return cost_ + config_.packet_cost;
  }

  if (packet.src_ip == config_.lrs_address && !m->header.qr) {
    handle_outbound(packet, std::move(*m));
  } else {
    handle_inbound(packet, std::move(*m));
  }
  return cost_;
}

void LocalGuardNode::handle_outbound(const net::Packet& packet,
                                     dns::Message query) {
  net::Ipv4Address ans = packet.dst_ip;

  auto cit = cookies_.find(ans);
  if (cit != cookies_.end() && cit->second.expires > now()) {
    // msg 4: attach the cached cookie.
    CookieEngine::strip_txt_cookie(query);  // defensive: never double-add
    CookieEngine::attach_txt_cookie(query, cit->second.cookie, 0);
    stats_.queries_with_cookie++;
    net::Packet out = packet;
    query.encode_to(out.payload);
    cost_ = cost_ + config_.packet_cost;
    send(std::move(out));
    return;
  }

  // A recently-probed ANS without a remote guard is served plainly.
  auto nc = not_capable_until_.find(ans);
  if (nc != not_capable_until_.end()) {
    if (nc->second > now()) {
      cost_ = cost_ + config_.packet_cost;
      send(packet);
      return;
    }
    not_capable_until_.erase(nc);
  }

  // Hold the original and (at most once per window) request a cookie.
  HeldBucket& bucket = held_[ans];
  if (bucket.queries.size() < config_.max_held_per_ans) {
    bucket.queries.push_back(packet);
    stats_.queries_held++;
  }
  if (!bucket.request_outstanding) {
    bucket.request_outstanding = true;
    std::uint64_t gen = ++bucket.generation;
    // msg 2: same query with an all-zero cookie — same size as msg 4, so
    // the exchange amplifies nothing.
    dns::Message req = query;
    CookieEngine::strip_txt_cookie(req);
    CookieEngine::attach_txt_cookie(req, crypto::Cookie{}, 0);
    stats_.cookie_requests++;
    net::Packet out = packet;
    req.encode_to(out.payload);
    cost_ = cost_ + config_.packet_cost;
    send(std::move(out));
    schedule_in(config_.cookie_request_timeout,
                [this, ans, gen] { on_cookie_timeout(ans, gen); });
  }
}

void LocalGuardNode::handle_inbound(const net::Packet& packet,
                                    dns::Message response) {
  if (!response.header.qr) {
    // A query addressed to the LRS (stub client traffic): pass through.
    cost_ = cost_ + config_.packet_cost;
    send_direct(lrs_, packet);
    return;
  }

  auto cookie = CookieEngine::extract_txt_cookie(response);
  if (cookie && !CookieEngine::is_zero_cookie(*cookie)) {
    // Cache by the responding server's address; TTL rides in the TXT TTL.
    std::uint32_t ttl = 0;
    for (const auto& rr : response.additional) {
      if (rr.type == dns::RrType::TXT && rr.name.is_root()) ttl = rr.ttl;
    }
    if (ttl == 0) ttl = 60;
    cookies_[packet.src_ip] =
        CachedCookie{*cookie, now() + seconds(ttl)};
    stats_.cookies_cached++;

    if (response.answers.empty() && response.authority.empty()) {
      // msg 3: pure cookie reply — consume it and release held queries.
      release_held(packet.src_ip, &cookies_[packet.src_ip].cookie);
      return;
    }
    // A real answer carrying a refreshed cookie: strip and deliver; any
    // queries still held for this ANS can go out with the fresh cookie.
    release_held(packet.src_ip, &cookies_[packet.src_ip].cookie);
    CookieEngine::strip_txt_cookie(response);
    net::Packet out = packet;
    response.encode_to(out.payload);
    stats_.responses_delivered++;
    cost_ = cost_ + config_.packet_cost;
    send_direct(lrs_, std::move(out));
    return;
  }

  // A cookie-less response. If we were waiting on a cookie from this
  // server, it has no remote guard: this response answers the probe query
  // itself (msg 2 was the original query + zero cookie, same id), so
  // deliver it, release anything else held plainly, and remember the
  // server is not cookie-capable.
  if (held_.count(packet.src_ip) > 0) {
    not_capable_until_[packet.src_ip] = now() + config_.not_capable_ttl;
    // Drop the probe's duplicate from the held set: the LRS is getting
    // its answer right now.
    auto& bucket = held_[packet.src_ip];
    std::erase_if(bucket.queries, [&response](const net::Packet& p) {
      auto m = dns::Message::decode(BytesView(p.payload));
      return m && m->header.id == response.header.id;
    });
    release_held(packet.src_ip, nullptr);
  }

  stats_.responses_delivered++;
  cost_ = cost_ + config_.packet_cost;
  send_direct(lrs_, packet);
}

void LocalGuardNode::release_held(net::Ipv4Address ans,
                                  const crypto::Cookie* cookie) {
  auto it = held_.find(ans);
  if (it == held_.end()) return;
  HeldBucket bucket = std::move(it->second);
  held_.erase(it);
  for (net::Packet& p : bucket.queries) {
    auto m = dns::Message::decode(BytesView(p.payload));
    if (!m) continue;
    if (cookie != nullptr) {
      CookieEngine::attach_txt_cookie(*m, *cookie, 0);
      stats_.queries_with_cookie++;
    } else {
      stats_.released_without_cookie++;
    }
    m->encode_to(p.payload);
    cost_ = cost_ + config_.packet_cost;
    send(std::move(p));
  }
}

void LocalGuardNode::on_cookie_timeout(net::Ipv4Address ans,
                                       std::uint64_t generation) {
  auto it = held_.find(ans);
  if (it == held_.end() || it->second.generation != generation) return;
  // No cookie reply: the ANS is probably unguarded. Release the held
  // queries unmodified so service continues.
  it->second.request_outstanding = false;
  release_held(ans, nullptr);
}

}  // namespace dnsguard::guard
