// RemoteGuardNode — the DNS guard deployed in front of an authoritative
// name server (the paper's core contribution, §III, Fig. 4).
//
// The guard is a router-mode firewall: the simulator routes the ANS's
// public address (and, for the fabricated-IP variant, its whole subnet)
// to this node, and the ANS's gateway points back at it, so every packet
// in both directions transits — and is charged to — the guard's CPU.
//
// Pipeline (Fig. 4):
//
//     UDP req ──> cookie checker ──valid──> Rate-Limiter2 ──> ANS
//                     │ all-zero/absent
//                     ▼
//              cookie generator (scheme-specific response)
//                     │
//                     ▼
//              Rate-Limiter1 ──> requester   (reflector protection)
//
//     TCP req ──> TCP proxy (SYN cookies, conn monitor, token buckets)
//                     │ framed DNS query
//                     ▼
//              Rate-Limiter2 ──> ANS (as UDP; response converted back)
//
// Spoof detection activates only above a request-rate threshold (§IV.C);
// below it the guard is a plain forwarder.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bounded_table.h"
#include "dns/message.h"
#include "guard/cookie_engine.h"
#include "obs/drop_reason.h"
#include "obs/journey.h"
#include "obs/metrics.h"
#include "ratelimit/limiters.h"
#include "ratelimit/token_bucket.h"
#include "sim/node.h"
#include "tcp/tcp_stack.h"

namespace dnsguard::guard {

enum class Scheme : std::uint8_t {
  PassThrough,     // no spoof detection (baseline / disabled)
  NsName,          // §III.B.1 — cookie in fabricated NS name (referrals)
  FabricatedNsIp,  // §III.B.2 — cookie in NS name + fabricated IP
  TcpRedirect,     // §III.C — truncation redirect + kernel TCP proxy
  ModifiedDns,     // §III.D — explicit TXT cookie extension
};

[[nodiscard]] std::string scheme_name(Scheme s);
/// Snake-case metric token ("ns_name", "tcp_redirect", ...).
[[nodiscard]] std::string_view scheme_token(Scheme s);
inline constexpr std::size_t kSchemeCount = 5;

/// Counter cells; attached to the simulator's registry under "guard.*".
struct GuardStats {
  obs::Counter requests_seen;
  obs::Counter forwarded_inactive;
  obs::Counter cookies_minted;
  obs::Counter cookie_checks;
  obs::Counter spoofs_dropped;
  obs::Counter verified_curr_gen;  // cookie verified against current key
  obs::Counter verified_prev_gen;  // cookie verified against previous key
  obs::Counter rl1_throttled;
  obs::Counter rl2_throttled;
  obs::Counter forwarded_to_ans;
  obs::Counter responses_relayed;
  obs::Counter fabricated_referrals;
  obs::Counter cookie_replies;   // modified-DNS msg3 + fabricated-IP msg6
  obs::Counter tc_redirects;
  obs::Counter proxy_queries;
  obs::Counter proxy_conn_throttled;
  obs::Counter malformed;
  obs::Counter key_rotations;

  void bind(obs::MetricsRegistry& registry, std::string_view prefix);
};

class RemoteGuardNode : public sim::Node {
 public:
  struct CostModel {
    /// Per packet received or emitted (header processing, routing).
    SimDuration packet = nanoseconds(900);
    /// Per cookie computation/verification (one MD5, §III.E).
    SimDuration cookie = nanoseconds(1200);
    /// Per DNS message synthesized or rewritten.
    SimDuration transform = nanoseconds(760);
    /// Extra bookkeeping when a spoofed request is dropped.
    SimDuration drop = nanoseconds(120);
    /// Per TCP segment handled by the kernel proxy.
    SimDuration proxy_segment = nanoseconds(2500);
    /// Per proxied TCP connection accepted.
    SimDuration proxy_connection = microseconds(8);
    /// Connection-table management: extra cost per segment per open
    /// connection (drives the Fig. 7(a) concurrency falloff).
    SimDuration proxy_table_per_conn = nanoseconds(2);
  };

  struct Config {
    net::Ipv4Address guard_address;  // NAT source for proxied UDP queries
    net::Ipv4Address ans_address;    // the protected server's public IP
    /// Zone the protected ANS serves (root for a root guard); needed by
    /// the NS-name scheme to restore the next-level question.
    dns::DomainName protected_zone;
    /// Base of the guard-intercepted subnet; fabricated cookie addresses
    /// live in (base, base + r_y].
    net::Ipv4Address subnet_base;
    std::uint32_t r_y = 250;

    Scheme scheme = Scheme::NsName;
    /// Per-requester overrides (the Fig. 5 testbed serves one LRS with
    /// UDP cookies and redirects another to TCP).
    // DNSGUARD_LINT_ALLOW(bounded): operator configuration written once at
    // guard construction, never grown from packet input
    std::unordered_map<net::Ipv4Address, Scheme> per_source_scheme;

    std::uint64_t key_seed = 0x1337c00c1e5eedULL;
    /// Automatic key rotation period (§III.E suggests weekly; cookies of
    /// the previous generation remain valid for one period, selected by
    /// the cookie's generation bit). Zero disables automatic rotation.
    SimDuration key_rotation_interval{};

    /// Requests/sec above which spoof detection engages; 0 = always on.
    double activation_threshold_rps = 0.0;

    std::uint32_t fabricated_ns_ttl = 604800;  // 1 week (§III.B.1)
    std::uint32_t cookie_ttl = 604800;

    CostModel costs;

    ratelimit::CookieResponseLimiter::Config rl1;
    ratelimit::VerifiedRequestLimiter::Config rl2;

    /// Per-client TCP connection-rate token bucket (§III.C).
    double proxy_conn_rate = 200.0;
    double proxy_conn_burst = 100.0;
    /// Remove TCP connections living longer than this multiple of RTT
    /// (§III.C: 5×RTT). 0 disables lifetime reaping.
    double proxy_lifetime_rtt_multiple = 0.0;
    SimDuration estimated_rtt = microseconds(400);

    /// Response-rewrite state lifetime.
    SimDuration pending_ttl = seconds(5);

    /// Per-source state caps. Every table below is bounded + reaping so a
    /// spoofed-source flood cannot exhaust guard memory (the guard must
    /// never itself become the DoS target it protects against).
    std::size_t pending_table_capacity = 16384;
    /// NAT entries for proxied queries; reaped when the ANS reply never
    /// arrives, LRU-recycled (connection closed) at capacity.
    std::size_t nat_table_capacity = 16384;
    SimDuration nat_ttl = seconds(5);
    /// Ports probed before giving up when NAT source ports collide.
    int nat_port_probe_limit = 32;
    /// Per-client TCP connection-rate buckets; idle ones are recycled.
    std::size_t conn_bucket_capacity = 16384;
    SimDuration conn_bucket_idle = seconds(30);
    /// Monitored proxy TCP connections; the least-recently active one is
    /// reset at the cap (§III.C's connection-removal policy).
    std::size_t proxy_max_connections = 16384;

    /// Receive-queue depth. Sized like a kernel backlog: thousands of
    /// concurrent proxied TCP connections keep one segment each in
    /// flight, and dropping those (our mini-TCP has no retransmission)
    /// would stall connections rather than just delay them.
    std::size_t rx_queue_capacity = 65536;

    /// Shard-per-core model: all per-source state (RL1/RL2 buckets,
    /// pending rewrites, NAT entries, connection buckets) is partitioned
    /// by source hash into this many independent shards, each fed by its
    /// own SPSC ring and drained in bursts with batched cookie
    /// verification. 1 (the default) keeps the classic sequential guard
    /// bit-for-bit. Table capacities above are totals; each shard gets
    /// its share (rounded up).
    std::size_t num_shards = 1;
    /// Max packets a shard drains per service burst (clamped to 64).
    std::size_t shard_batch_max = 32;
    /// Run the ring/batch service path even with num_shards == 1 (tests:
    /// equivalence of the batched path with the sequential discipline).
    bool force_shard_service = false;
  };

  /// `ans` is the protected server node. The constructor does not touch
  /// routing; call install() to take over the ANS's addresses.
  RemoteGuardNode(sim::Simulator& sim, std::string name, Config config,
                  sim::Node* ans);

  /// Installs routes: ANS address (and subnet for the fabricated-IP
  /// variant) + guard address -> this node; ANS gateway -> this node.
  void install(int subnet_prefix_len = 24);
  /// Reverts to direct routing (protection fully removed).
  void uninstall();

  [[nodiscard]] const GuardStats& guard_stats() const { return stats_; }
  void reset_guard_stats() { stats_ = GuardStats{}; }
  /// Per-reason drop tallies ("guard.drop.bad_cookie", ...).
  [[nodiscard]] const obs::DropCounters& drop_counters() const {
    return drops_;
  }
  /// Per-scheme mint/verify/drop tallies.
  struct SchemeCounters {
    obs::Counter minted;
    obs::Counter verified;
    obs::Counter dropped;
  };
  [[nodiscard]] const SchemeCounters& scheme_counters(Scheme s) const {
    return scheme_counters_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] CookieEngine& cookie_engine() { return engine_; }
  [[nodiscard]] bool protection_active() const;
  [[nodiscard]] std::size_t proxy_connections() const {
    return tcp_ ? tcp_->connection_count() : 0;
  }
  /// Shard-0 limiter views (the whole guard when num_shards == 1).
  [[nodiscard]] const ratelimit::CookieResponseLimiter& rl1() const {
    return shards_[0]->rl1;
  }
  [[nodiscard]] const ratelimit::VerifiedRequestLimiter& rl2() const {
    return shards_[0]->rl2;
  }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// NAT-table introspection (tests: collision probing, TTL reaping).
  /// Entries are summed across shards.
  [[nodiscard]] std::size_t nat_entries() const {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->nat.size();
    return total;
  }
  [[nodiscard]] const common::BoundedTableStats& nat_table_stats() const {
    return shards_[0]->nat.stats();
  }
  /// Tests: pin shard 0's next NAT source-port candidate to force
  /// collisions (single-shard guards only).
  void set_next_nat_port(std::uint16_t port) {
    shards_[0]->next_nat_port = port;
  }

 protected:
  SimDuration process(const net::Packet& packet) override;
  [[nodiscard]] std::size_t shard_of(const net::Packet& packet) const override;
  void on_batch_begin(std::size_t lane, const net::Packet* batch,
                      std::size_t n) override;

 private:
  // Response-rewrite actions awaiting the ANS's reply.
  struct PendingAction {
    enum class Kind {
      RestoreNsName,   // msg5 -> msg6 of Fig. 2(a)
      RelaySourceIp,   // msg9 -> msg10 of Fig. 2(b): reply from COOKIE2
    } kind;
    dns::DomainName fabricated_qname;
    dns::RrType original_qtype = dns::RrType::A;
    net::Ipv4Address reply_src;
  };
  struct PendingKey {
    std::uint16_t qid;
    std::uint32_t requester;
    bool operator==(const PendingKey&) const = default;
  };
  struct PendingKeyHash {
    std::size_t operator()(const PendingKey& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.requester) << 16) | k.qid);
    }
  };

  // --- packet paths ---
  void handle_request(const net::Packet& packet, const dns::Message& query);
  void handle_ans_response(const net::Packet& packet);
  void handle_proxy_nat_response(const net::Packet& packet);

  // --- scheme handlers (charge their own costs via charge()) ---
  void do_modified_dns(const net::Packet& packet, const dns::Message& query,
                       const crypto::Cookie& cookie);
  void do_ns_name(const net::Packet& packet, const dns::Message& query);
  void do_fabricated_ns_ip(const net::Packet& packet,
                           const dns::Message& query, bool to_subnet);
  void do_tcp_redirect(const net::Packet& packet, const dns::Message& query);

  Scheme effective_scheme(net::Ipv4Address src) const;

  void forward_to_ans(const net::Packet& original, dns::Message query);
  void reply(const net::Packet& to, dns::Message response,
             std::optional<net::Ipv4Address> src_override = std::nullopt);
  void drop_spoof(const net::Packet& packet, Scheme scheme,
                  obs::DropReason reason);
  /// Rate-limiter / proxy / malformed drops (not cookie failures).
  void drop_other(const net::Packet& packet, obs::DropReason reason);
  /// Books a successful cookie verification (per scheme + per generation).
  void note_verified(Scheme scheme, bool used_previous);
  SchemeCounters& scheme_cells(Scheme s) {
    return scheme_counters_[static_cast<std::size_t>(s)];
  }
  void charge(SimDuration d) { cost_ = cost_ + d; }
  void emit(net::Packet p);
  void emit_direct(sim::Node* to, net::Packet p);

  // --- query journeys ---
  // The key of the request currently being processed; set on classify
  // (only when tracking is enabled), cleared per packet. jmark()/jend()
  // are no-ops without it, so the disabled-tracker cost is one branch.
  void jmark(std::string_view stage);
  void jend(std::string_view stage, bool ok);

  // --- TCP proxy ---
  void proxy_on_data(tcp::ConnId conn, BytesView data);
  void proxy_reap_loop();
  void rotation_loop();

  struct NatEntry {
    tcp::ConnId conn;
    std::uint16_t query_id;
  };

  /// One shard owns every piece of per-source state for its slice of the
  /// address space: RL1/RL2 buckets, pending rewrites, NAT entries (with a
  /// disjoint source-port range) and connection-rate buckets. Shards never
  /// touch each other's tables, so on real hardware each could run on its
  /// own core without locks; in the simulator they share one thread and
  /// stay deterministic.
  struct Shard {
    ratelimit::CookieResponseLimiter rl1;
    ratelimit::VerifiedRequestLimiter rl2;
    common::BoundedTable<PendingKey, PendingAction, PendingKeyHash> pending;
    common::BoundedTable<std::uint16_t, NatEntry> nat;  // by guard src port
    common::BoundedTable<net::Ipv4Address, ratelimit::TokenBucket>
        conn_buckets;
    /// NAT source ports allocated from [port_base, port_limit); the full
    /// shard-disjoint ranges partition [20000, 60000).
    std::uint16_t nat_port_base = 20000;
    std::uint16_t nat_port_limit = 0;  // 0 => legacy full-range wrap
    std::uint16_t next_nat_port = 20000;
  };

  [[nodiscard]] static ratelimit::CookieResponseLimiter::Config divide_rl1(
      ratelimit::CookieResponseLimiter::Config cfg, std::size_t n);
  [[nodiscard]] static ratelimit::VerifiedRequestLimiter::Config divide_rl2(
      ratelimit::VerifiedRequestLimiter::Config cfg, std::size_t n);

  /// The shard owning `ip`'s per-source state (multiply-shift hash).
  [[nodiscard]] std::size_t shard_of_ip(net::Ipv4Address ip) const;

  /// Batch scratch: per-packet decoded query + precomputed cookie verdict
  /// for the burst the current lane is processing.
  static constexpr std::size_t kMaxShardBatch = 64;
  struct BatchSlot {
    std::optional<dns::Message> msg;
    bool has_verdict = false;
    crypto::VerifyResult verdict{};
  };
  /// Consumes the precomputed verdict for the packet being processed, if
  /// the batch pre-pass produced one.
  [[nodiscard]] std::optional<crypto::VerifyResult> take_batch_verdict();

  Config config_;
  sim::Node* ans_;
  CookieEngine engine_;
  ratelimit::RateEstimator request_rate_;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Shard owning the packet currently in process(); set at the top of
  /// process() (in classic mode this is always shard 0).
  Shard* cur_shard_ = nullptr;
  std::size_t nat_ports_per_shard_ = 0;

  std::array<BatchSlot, kMaxShardBatch> batch_slots_;
  std::array<CookieEngine::VerifyJob, kMaxShardBatch> batch_jobs_;
  std::array<std::uint8_t, kMaxShardBatch> batch_job_pos_{};
  std::array<crypto::VerifyResult, kMaxShardBatch> batch_results_;
  /// Verdict precompute + amortized rate recording require protection to
  /// be unconditionally active (activation_threshold_rps <= 0); otherwise
  /// the pre-pass only decodes and prefetches.
  bool batch_fastpath_ = false;

  std::unique_ptr<tcp::TcpStack> tcp_;
  /// Per-connection DNS framing buffers. Connections are attacker-opened,
  /// so this table is capped at proxy_max_connections like the TCP stack's
  /// own connection table it shadows.
  // DNSGUARD_LINT_ALLOW(shardsafe): deliberately shared across shards —
  // the TCP stack itself is one shared instance and connections are keyed
  // by ConnId, not by the per-source address hash that defines shards.
  common::BoundedTable<tcp::ConnId, tcp::StreamFramer> framers_;

  GuardStats stats_;
  std::array<SchemeCounters, kSchemeCount> scheme_counters_;
  obs::DropCounters drops_;
  SimDuration cost_{};
  bool installed_ = false;
  obs::JourneyKey cur_jkey_{};
  bool cur_jkey_valid_ = false;
};

}  // namespace dnsguard::guard
