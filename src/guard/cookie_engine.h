// CookieEngine: the guard's cookie mint/verify logic plus the paper's
// three cookie *encodings* (§III.E):
//
//   1. NS-name encoding — "PR" prefix + 8 hex chars of the first 4 cookie
//      bytes, prepended to a restore label inside ONE DNS label
//      ("PRa1b2c3d4com"), so the cookie survives an unmodified LRS's
//      referral chasing. Cookie range 2^32.
//   2. Fabricated-IP encoding — y = first4(c) mod R_y selects an address
//      in the guard's intercepted subnet; the *destination address* of the
//      LRS's follow-up query is the cookie. Range R_y (≤ 2^8 for a /24).
//   3. Explicit TXT encoding — the full 16-byte cookie rides in a TXT
//      record in the additional section (modified-DNS scheme). Range 2^128.
//
// Key rotation rides on the first cookie bit (see crypto/cookie_hash.h).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "crypto/cookie_hash.h"
#include "dns/message.h"
#include "dns/name.h"
#include "net/ipv4.h"

namespace dnsguard::guard {

/// The 2-character prefix marking cookie labels ("PR" in the paper's
/// example "PRa1b2c3d4").
inline constexpr std::string_view kCookieLabelPrefix = "PR";
/// 8 hex characters encode the first 4 cookie bytes.
inline constexpr std::size_t kCookieHexChars = 8;

class CookieEngine {
 public:
  explicit CookieEngine(std::uint64_t key_seed) : keys_(key_seed) {}

  /// Full 16-byte cookie for a requester address.
  [[nodiscard]] crypto::Cookie mint(net::Ipv4Address requester) const {
    DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardMint);
    return keys_.mint(requester.value());
  }

  [[nodiscard]] bool verify(net::Ipv4Address requester,
                            const crypto::Cookie& presented) const {
    return keys_.verify(requester.value(), presented);
  }

  /// Generation-aware verification (observability: verify counts per key
  /// generation; failures that match the *retired* generation classify as
  /// stale — see crypto::VerifyResult).
  [[nodiscard]] crypto::VerifyResult verify_ex(
      net::Ipv4Address requester, const crypto::Cookie& presented) const {
    DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardVerify);
    return keys_.verify_ex(requester.value(), presented);
  }

  /// Rotates to a new key generation (paper: weekly).
  void rotate(std::uint64_t new_seed) { keys_.rotate(new_seed); }
  [[nodiscard]] std::uint32_t generation() const {
    return keys_.generation();
  }

  // --- NS-name encoding ----------------------------------------------------

  /// Builds the cookie label: "PR" + hex8(first4(c)) + `restore_label`.
  /// Fails (nullopt) if the result would exceed the 63-byte label limit.
  [[nodiscard]] std::optional<std::string> make_cookie_label(
      net::Ipv4Address requester, std::string_view restore_label) const;

  struct ParsedLabel {
    std::uint32_t cookie_prefix;  // the 4 encoded cookie bytes
    std::string restore_label;    // original label to restore
  };
  /// Parses a label of the above shape; nullopt if it isn't one.
  [[nodiscard]] static std::optional<ParsedLabel> parse_cookie_label(
      std::string_view label);

  /// Verifies the 4-byte prefix from an NS-name cookie label.
  [[nodiscard]] bool verify_prefix(net::Ipv4Address requester,
                                   std::uint32_t presented_prefix) const {
    return keys_.verify_prefix32(requester.value(), presented_prefix);
  }
  [[nodiscard]] crypto::VerifyResult verify_prefix_ex(
      net::Ipv4Address requester, std::uint32_t presented_prefix) const {
    DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardVerify);
    return keys_.verify_prefix32_ex(requester.value(), presented_prefix);
  }

  // --- fabricated-IP encoding ----------------------------------------------

  /// The cookie address for `requester` inside `subnet_base`+[1, r_y]:
  /// y = first4(c) mod r_y, address = base + 1 + y.
  [[nodiscard]] net::Ipv4Address make_cookie_address(
      net::Ipv4Address requester, net::Ipv4Address subnet_base,
      std::uint32_t r_y) const;

  /// Verifies that `dst` (the queried address) is the right cookie address
  /// for `requester`.
  [[nodiscard]] bool verify_cookie_address(net::Ipv4Address requester,
                                           net::Ipv4Address dst,
                                           net::Ipv4Address subnet_base,
                                           std::uint32_t r_y) const {
    return verify_cookie_address_ex(requester, dst, subnet_base, r_y).ok;
  }
  /// The IP encoding folds the generation bit away (mod R_y), so the
  /// verifier tries both keys; `used_previous` reports a match under the
  /// pre-rotation key. On failure, `stale` reports a match under the
  /// *retired* key (two rotations back): a real-but-outdated client, to
  /// be charged as kStaleKey rather than kBadCookie.
  [[nodiscard]] crypto::VerifyResult verify_cookie_address_ex(
      net::Ipv4Address requester, net::Ipv4Address dst,
      net::Ipv4Address subnet_base, std::uint32_t r_y) const;

  // --- batched verification (shard hot path) -------------------------------

  /// One cookie check of any encoding, tagged by kind. The shard batch
  /// pre-pass collects one job per cookie-bearing packet and verifies the
  /// whole burst in a single verify_jobs() call.
  struct VerifyJob {
    enum class Kind : std::uint8_t { kFull, kPrefix, kAddress } kind =
        Kind::kFull;
    net::Ipv4Address requester;
    crypto::Cookie cookie{};      // kFull: the presented 16-byte cookie
    std::uint32_t prefix = 0;     // kPrefix: presented 4-byte prefix
    net::Ipv4Address dst;         // kAddress: the queried cookie address
  };

  /// Verifies `n` jobs in one call, writing one VerifyResult per job.
  /// Equivalent to the per-item verifiers; `subnet_base`/`r_y` apply to
  /// kAddress jobs.
  void verify_jobs(const VerifyJob* jobs, crypto::VerifyResult* out,
                   std::size_t n, net::Ipv4Address subnet_base,
                   std::uint32_t r_y) const;

  // --- TXT encoding (modified-DNS scheme) ----------------------------------

  /// Finds a cookie TXT record in the additional section; returns its
  /// 16-byte payload (which may be all-zero = "requesting a cookie").
  [[nodiscard]] static std::optional<crypto::Cookie> extract_txt_cookie(
      const dns::Message& m);

  /// Appends a cookie TXT record (root owner, given TTL) to `m`'s
  /// additional section.
  static void attach_txt_cookie(dns::Message& m, const crypto::Cookie& cookie,
                                std::uint32_t ttl);

  /// Removes cookie TXT records from the additional section (the ANS never
  /// sees the extension, §III.D msg 5).
  static void strip_txt_cookie(dns::Message& m);

  [[nodiscard]] static bool is_zero_cookie(const crypto::Cookie& c);

 private:
  crypto::RotatingKeys keys_;
};

}  // namespace dnsguard::guard
