#include "guard/remote_guard.h"

#include "common/log.h"

namespace dnsguard::guard {

std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::PassThrough: return "pass-through";
    case Scheme::NsName: return "dns-based/ns-name";
    case Scheme::FabricatedNsIp: return "dns-based/fabricated-ns-ip";
    case Scheme::TcpRedirect: return "tcp-based";
    case Scheme::ModifiedDns: return "modified-dns";
  }
  return "?";
}

std::string_view scheme_token(Scheme s) {
  switch (s) {
    case Scheme::PassThrough: return "pass_through";
    case Scheme::NsName: return "ns_name";
    case Scheme::FabricatedNsIp: return "fabricated_ns_ip";
    case Scheme::TcpRedirect: return "tcp_redirect";
    case Scheme::ModifiedDns: return "modified_dns";
  }
  return "unknown";
}

void GuardStats::bind(obs::MetricsRegistry& registry,
                      std::string_view prefix) {
  std::string p(prefix);
  registry.attach_counter(p + ".requests_seen", requests_seen);
  registry.attach_counter(p + ".forwarded_inactive", forwarded_inactive);
  registry.attach_counter(p + ".cookies_minted", cookies_minted);
  registry.attach_counter(p + ".cookie_checks", cookie_checks);
  registry.attach_counter(p + ".spoofs_dropped", spoofs_dropped);
  registry.attach_counter(p + ".verified_curr_gen", verified_curr_gen);
  registry.attach_counter(p + ".verified_prev_gen", verified_prev_gen);
  registry.attach_counter(p + ".rl1_throttled", rl1_throttled);
  registry.attach_counter(p + ".rl2_throttled", rl2_throttled);
  registry.attach_counter(p + ".forwarded_to_ans", forwarded_to_ans);
  registry.attach_counter(p + ".responses_relayed", responses_relayed);
  registry.attach_counter(p + ".fabricated_referrals", fabricated_referrals);
  registry.attach_counter(p + ".cookie_replies", cookie_replies);
  registry.attach_counter(p + ".tc_redirects", tc_redirects);
  registry.attach_counter(p + ".proxy_queries", proxy_queries);
  registry.attach_counter(p + ".proxy_conn_throttled", proxy_conn_throttled);
  registry.attach_counter(p + ".malformed", malformed);
  registry.attach_counter(p + ".key_rotations", key_rotations);
}

namespace {

/// Ceiling division for splitting total table capacities across shards.
std::size_t ceil_div(std::size_t total, std::size_t n) {
  std::size_t per = (total + n - 1) / n;
  return per == 0 ? 1 : per;
}

// NAT source ports live in [20000, 60000); with N shards each gets a
// disjoint span so a response's destination port identifies its shard.
constexpr std::uint16_t kNatPortBase = 20000;
constexpr std::uint32_t kNatPortSpan = 40000;

}  // namespace

ratelimit::CookieResponseLimiter::Config RemoteGuardNode::divide_rl1(
    ratelimit::CookieResponseLimiter::Config cfg, std::size_t n) {
  cfg.max_buckets = ceil_div(cfg.max_buckets, n);
  cfg.tracker_capacity = ceil_div(cfg.tracker_capacity, n);
  return cfg;
}

ratelimit::VerifiedRequestLimiter::Config RemoteGuardNode::divide_rl2(
    ratelimit::VerifiedRequestLimiter::Config cfg, std::size_t n) {
  cfg.max_hosts = ceil_div(cfg.max_hosts, n);
  return cfg;
}

RemoteGuardNode::RemoteGuardNode(sim::Simulator& sim, std::string name,
                                 Config config, sim::Node* ans)
    : sim::Node(sim, std::move(name), config.rx_queue_capacity),
      config_(std::move(config)),
      ans_(ans),
      engine_(config_.key_seed),
      framers_({.capacity = config_.proxy_max_connections,
                .evict_lru_when_full = true}) {
  set_profile_stage(obs::prof::Stage::kGuardService);
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (config_.shard_batch_max == 0) config_.shard_batch_max = 1;
  if (config_.shard_batch_max > kMaxShardBatch) {
    config_.shard_batch_max = kMaxShardBatch;
  }
  const std::size_t n = config_.num_shards;
  batch_fastpath_ = config_.activation_threshold_rps <= 0;

  const std::uint32_t ports_per_shard = kNatPortSpan / static_cast<std::uint32_t>(n);
  nat_ports_per_shard_ = ports_per_shard;
  shards_.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    auto sh = std::make_unique<Shard>(Shard{
        ratelimit::CookieResponseLimiter(divide_rl1(config_.rl1, n)),
        ratelimit::VerifiedRequestLimiter(divide_rl2(config_.rl2, n)),
        common::BoundedTable<PendingKey, PendingAction, PendingKeyHash>(
            {.capacity = ceil_div(config_.pending_table_capacity, n),
             .ttl = config_.pending_ttl}),
        common::BoundedTable<std::uint16_t, NatEntry>(
            {.capacity = ceil_div(config_.nat_table_capacity, n),
             .ttl = config_.nat_ttl}),
        common::BoundedTable<net::Ipv4Address, ratelimit::TokenBucket>(
            {.capacity = ceil_div(config_.conn_bucket_capacity, n),
             .idle_timeout = config_.conn_bucket_idle}),
        /*nat_port_base=*/
        static_cast<std::uint16_t>(kNatPortBase + k * ports_per_shard),
        /*nat_port_limit=*/
        n == 1 ? std::uint16_t{0}
               : static_cast<std::uint16_t>(kNatPortBase +
                                            (k + 1) * ports_per_shard),
        /*next_nat_port=*/
        static_cast<std::uint16_t>(kNatPortBase + k * ports_per_shard)});
    shards_.push_back(std::move(sh));
  }
  cur_shard_ = shards_[0].get();

  if (n > 1 || config_.force_shard_service) {
    enable_sharded_service(n,
                           std::max<std::size_t>(
                               config_.rx_queue_capacity / n, std::size_t{16}),
                           config_.shard_batch_max);
  }

  tcp_ = std::make_unique<tcp::TcpStack>(
      [this](net::Packet p) { emit(std::move(p)); },
      [this] { return now(); },
      tcp::TcpStack::Callbacks{
          .on_established = {},
          .on_data = [this](tcp::ConnId id,
                            BytesView data) { proxy_on_data(id, data); },
          .on_closed =
              [this](tcp::ConnId id) {
                framers_.erase(id);
                // A connection's NAT entries live in the shard of its
                // client address; close can fire from timer context where
                // cur_shard_ is stale, so sweep every shard.
                for (auto& sh : shards_) {
                  sh->nat.erase_if(
                      [id](const std::uint16_t&, const NatEntry& e) {
                        return e.conn == id;
                      });
                }
              },
      },
      tcp::TcpStack::Options{.syn_cookies = true,
                             .syn_cookie_secret = config_.key_seed ^
                                                  0xabcdef0123456789ULL,
                             .max_connections =
                                 config_.proxy_max_connections});
  tcp_->listen(net::kDnsPort);

  // A NAT entry leaving involuntarily means its ANS reply is never coming
  // (TTL) or its port was recycled under pressure (capacity): close the
  // proxied connection rather than leave the client hanging.
  for (auto& sh : shards_) {
    sh->nat.set_evict_callback([this](const std::uint16_t&, NatEntry& e,
                                      common::EvictReason reason) {
      drops_.count(reason == common::EvictReason::kCapacity
                       ? obs::DropReason::kStateTableFull
                       : obs::DropReason::kProxyTimeout);
      tcp_->close(e.conn);
    });
  }

  obs::MetricsRegistry& registry = this->sim().metrics();
  stats_.bind(registry, "guard");
  drops_.bind(registry, "guard");
  tcp_->bind_metrics(registry, "guard.tcp");
  tcp_->set_drop_counters(&drops_);
  tcp_->set_journey_fn([this](net::SocketAddr client, std::string_view stage) {
    this->sim().journeys().mark({client.ip.value(), client.port, 0}, stage,
                                now());
  });
  if (n == 1) {
    // Single shard keeps the historical metric names so existing tests,
    // baselines and dashboards are untouched.
    shards_[0]->rl1.bind_metrics(registry, "guard.rl1");
    shards_[0]->rl2.bind_metrics(registry, "guard.rl2");
    shards_[0]->pending.bind_metrics(registry, "guard.pending");
    shards_[0]->nat.bind_metrics(registry, "guard.nat");
    shards_[0]->conn_buckets.bind_metrics(registry, "guard.conn_buckets");
  } else {
    for (std::size_t k = 0; k < n; ++k) {
      const std::string p = "guard.shard" + std::to_string(k);
      shards_[k]->rl1.bind_metrics(registry, p + ".rl1");
      shards_[k]->rl2.bind_metrics(registry, p + ".rl2");
      shards_[k]->pending.bind_metrics(registry, p + ".pending");
      shards_[k]->nat.bind_metrics(registry, p + ".nat");
      shards_[k]->conn_buckets.bind_metrics(registry, p + ".conn_buckets");
    }
  }
  for (std::size_t i = 0; i < kSchemeCount; ++i) {
    std::string p =
        "guard.scheme." + std::string(scheme_token(static_cast<Scheme>(i)));
    registry.attach_counter(p + ".minted", scheme_counters_[i].minted);
    registry.attach_counter(p + ".verified", scheme_counters_[i].verified);
    registry.attach_counter(p + ".dropped", scheme_counters_[i].dropped);
  }

  if (config_.proxy_lifetime_rtt_multiple > 0) {
    schedule_in(config_.estimated_rtt, [this] { proxy_reap_loop(); });
  }
  if (config_.key_rotation_interval.ns > 0) {
    schedule_in(config_.key_rotation_interval, [this] { rotation_loop(); });
  }
}

void RemoteGuardNode::rotation_loop() {
  // Derive the next generation's seed deterministically from the base
  // seed and the generation counter; a deployment would draw randomness.
  std::uint64_t next_seed =
      config_.key_seed ^ (0x9e3779b97f4a7c15ULL * (engine_.generation() + 1));
  engine_.rotate(next_seed);
  stats_.key_rotations++;
  schedule_in(config_.key_rotation_interval, [this] { rotation_loop(); });
}

void RemoteGuardNode::proxy_reap_loop() {
  SimDuration max_life = SimDuration{static_cast<std::int64_t>(
      config_.estimated_rtt.ns * config_.proxy_lifetime_rtt_multiple)};
  tcp_->reap(SimDuration{0}, max_life);
  schedule_in(config_.estimated_rtt, [this] { proxy_reap_loop(); });
}

void RemoteGuardNode::install(int subnet_prefix_len) {
  sim().add_host_route(config_.ans_address, this);
  sim().add_host_route(config_.guard_address, this);
  if (config_.scheme == Scheme::FabricatedNsIp ||
      config_.per_source_scheme.size() > 0) {
    sim().add_route(config_.subnet_base, subnet_prefix_len, this);
  }
  sim().set_gateway(ans_, this);
  installed_ = true;
}

void RemoteGuardNode::uninstall() {
  sim().remove_routes_to(this);
  sim().add_host_route(config_.ans_address, ans_);
  sim().clear_gateway(ans_);
  installed_ = false;
}

bool RemoteGuardNode::protection_active() const {
  if (config_.activation_threshold_rps <= 0) return true;
  return request_rate_.rate(sim().now()) > config_.activation_threshold_rps;
}

Scheme RemoteGuardNode::effective_scheme(net::Ipv4Address src) const {
  auto it = config_.per_source_scheme.find(src);
  if (it != config_.per_source_scheme.end()) return it->second;
  return config_.scheme;
}

void RemoteGuardNode::emit(net::Packet p) {
  charge(config_.costs.packet);
  send(std::move(p));
}

void RemoteGuardNode::emit_direct(sim::Node* to, net::Packet p) {
  charge(config_.costs.packet);
  send_direct(to, std::move(p));
}

void RemoteGuardNode::jmark(std::string_view stage) {
  if (cur_jkey_valid_) sim().journeys().mark(cur_jkey_, stage, now());
}

void RemoteGuardNode::jend(std::string_view stage, bool ok) {
  if (cur_jkey_valid_) sim().journeys().end(cur_jkey_, stage, now(), ok);
}

void RemoteGuardNode::drop_spoof(const net::Packet& packet, Scheme scheme,
                                 obs::DropReason reason) {
  stats_.spoofs_dropped++;
  scheme_cells(scheme).dropped++;
  drops_.count(reason);
  trace(obs::TraceEvent::kDrop, packet, reason);
  jend("guard.drop", /*ok=*/false);
  charge(config_.costs.drop);
}

void RemoteGuardNode::drop_other(const net::Packet& packet,
                                 obs::DropReason reason) {
  drops_.count(reason);
  trace(obs::TraceEvent::kDrop, packet, reason);
  jend("guard.drop", /*ok=*/false);
}

void RemoteGuardNode::note_verified(Scheme scheme, bool used_previous) {
  if (used_previous) {
    stats_.verified_prev_gen++;
  } else {
    stats_.verified_curr_gen++;
  }
  scheme_cells(scheme).verified++;
  jmark("guard.verify");
}

void RemoteGuardNode::reply(const net::Packet& to, dns::Message response,
                            std::optional<net::Ipv4Address> src_override) {
  charge(config_.costs.transform);
  trace(obs::TraceEvent::kRewrite, to);
  net::Ipv4Address src = src_override.value_or(to.dst_ip);
  emit(net::Packet::make_udp({src, net::kDnsPort}, to.src(),
                             response.encode_pooled()));
}

void RemoteGuardNode::forward_to_ans(const net::Packet& original,
                                     dns::Message query) {
  stats_.forwarded_to_ans++;
  if (cur_jkey_valid_ && query.question() != nullptr) {
    // The question may have been restored/rewritten: teach the journey the
    // key the ANS response will come back under.
    sim().journeys().alias(
        cur_jkey_, {original.src_ip.value(), query.header.id,
                    query.question()->qname.hash32()});
    jmark("guard.fwd_ans");
  }
  net::Packet p = net::Packet::make_udp(
      original.src(), {config_.ans_address, net::kDnsPort},
      query.encode_pooled());
  emit_direct(ans_, std::move(p));
}

std::size_t RemoteGuardNode::shard_of_ip(net::Ipv4Address ip) const {
  // Multiply-shift: spread the (often sequential) source space over the
  // shards without modulo bias.
  const std::uint32_t h = ip.value() * 0x9e3779b9u;
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(h) * shards_.size()) >> 32);
}

std::size_t RemoteGuardNode::shard_of(const net::Packet& packet) const {
  if (shards_.size() == 1) return 0;
  if (packet.is_udp() && packet.src_ip == config_.ans_address) {
    if (packet.dst_ip == config_.guard_address) {
      // Proxied-query reply: the NAT destination port identifies the
      // shard that allocated it (the client's shard).
      const std::uint32_t port = packet.udp().dst_port;
      if (port >= kNatPortBase && nat_ports_per_shard_ > 0) {
        const std::size_t k = (port - kNatPortBase) / nat_ports_per_shard_;
        return k < shards_.size() ? k : 0;
      }
      return 0;
    }
    // Plain ANS response: owned by the requester's shard.
    return shard_of_ip(packet.dst_ip);
  }
  return shard_of_ip(packet.src_ip);
}

std::optional<crypto::VerifyResult> RemoteGuardNode::take_batch_verdict() {
  if (!in_batch()) return std::nullopt;
  BatchSlot& slot = batch_slots_[batch_index()];
  if (!slot.has_verdict) return std::nullopt;
  slot.has_verdict = false;  // one verdict per packet
  return slot.verdict;
}

void RemoteGuardNode::on_batch_begin(std::size_t lane,
                                     const net::Packet* batch,
                                     std::size_t n) {
  DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardBatchPrepass);
  if (n > kMaxShardBatch) n = kMaxShardBatch;  // batch_max is clamped; belt
  // One trace entry covers the whole burst (the per-packet classify
  // trace is amortized away on the sharded hot path).
  mutable_trace_ring().record(now(), obs::TraceEvent::kBatch, 0, 0,
                              static_cast<std::uint16_t>(n));
  Shard& sh = *shards_[lane];
  const auto& zone = config_.protected_zone;
  std::size_t jobs = 0;
  std::uint64_t requests = 0;

  for (std::size_t k = 0; k < n; ++k) {
    BatchSlot& slot = batch_slots_[k];
    slot.msg.reset();
    slot.has_verdict = false;
    const net::Packet& p = batch[k];
    if (!p.is_udp() || p.src_ip == config_.ans_address) continue;
    std::optional<dns::Message> m;
    {
      DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardDecode);
      m = dns::Message::decode(BytesView(p.payload));
    }
    if (!m || m->header.qr || m->question() == nullptr) continue;
    ++requests;
    {
      // Pull the limiter buckets this request will touch toward the cache
      // while the rest of the burst decodes.
      DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardPrefetch);
      sh.rl1.prefetch(p.src_ip);
      sh.rl2.prefetch(p.src_ip);
    }

    // Collect cookie-verification work, mirroring handle_request's
    // dispatch exactly: a TXT cookie wins regardless of scheme, then the
    // per-scheme classification. Only meaningful when protection is
    // unconditionally active — otherwise sub-threshold requests bypass
    // verification and the precompute would diverge.
    if (batch_fastpath_) {
      const dns::Question& q = *m->question();
      if (auto cookie = CookieEngine::extract_txt_cookie(*m)) {
        if (!CookieEngine::is_zero_cookie(*cookie)) {
          batch_jobs_[jobs] = CookieEngine::VerifyJob{
              CookieEngine::VerifyJob::Kind::kFull, p.src_ip, *cookie, 0, {}};
          batch_job_pos_[jobs++] = static_cast<std::uint8_t>(k);
        }
      } else {
        switch (effective_scheme(p.src_ip)) {
          case Scheme::ModifiedDns:  // falls back to NS-name classification
          case Scheme::NsName:
            if (q.qname.label_count() == zone.label_count() + 1 &&
                q.qname.is_subdomain_of(zone)) {
              if (auto parsed =
                      CookieEngine::parse_cookie_label(q.qname.first_label())) {
                batch_jobs_[jobs] = CookieEngine::VerifyJob{
                    CookieEngine::VerifyJob::Kind::kPrefix, p.src_ip, {},
                    parsed->cookie_prefix, {}};
                batch_job_pos_[jobs++] = static_cast<std::uint8_t>(k);
              }
            }
            break;
          case Scheme::FabricatedNsIp:
            if (!(p.dst_ip == config_.ans_address)) {
              batch_jobs_[jobs] = CookieEngine::VerifyJob{
                  CookieEngine::VerifyJob::Kind::kAddress, p.src_ip, {}, 0,
                  p.dst_ip};
              batch_job_pos_[jobs++] = static_cast<std::uint8_t>(k);
            } else if (q.qname.label_count() >= 1) {
              if (auto parsed =
                      CookieEngine::parse_cookie_label(q.qname.first_label())) {
                batch_jobs_[jobs] = CookieEngine::VerifyJob{
                    CookieEngine::VerifyJob::Kind::kPrefix, p.src_ip, {},
                    parsed->cookie_prefix, {}};
                batch_job_pos_[jobs++] = static_cast<std::uint8_t>(k);
              }
            }
            break;
          case Scheme::PassThrough:
          case Scheme::TcpRedirect:
            break;
        }
      }
    }
    slot.msg = std::move(*m);
  }

  if (jobs > 0) {
    engine_.verify_jobs(batch_jobs_.data(), batch_results_.data(), jobs,
                        config_.subnet_base, config_.r_y);
    for (std::size_t j = 0; j < jobs; ++j) {
      BatchSlot& slot = batch_slots_[batch_job_pos_[j]];
      slot.verdict = batch_results_[j];
      slot.has_verdict = true;
    }
  }
  // Amortize the request-rate estimator: one bulk record per burst
  // instead of one call per packet (only valid when the threshold logic
  // never reads mid-burst rates, i.e. protection is always on).
  if (batch_fastpath_ && requests > 0) request_rate_.record(now(), requests);
}

SimDuration RemoteGuardNode::process(const net::Packet& packet) {
  cost_ = config_.costs.packet;  // ingress processing
  cur_jkey_valid_ = false;
  cur_shard_ = shards_[shard_of(packet)].get();

  if (packet.is_tcp()) {
    // TCP path: either the proxy itself, or (pass-through schemes) raw
    // forwarding to the ANS.
    DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardTcpProxy);
    charge(config_.costs.proxy_segment);
    charge(SimDuration{static_cast<std::int64_t>(
        config_.costs.proxy_table_per_conn.ns *
        static_cast<std::int64_t>(tcp_->connection_count()))});
    if (packet.tcp().flags.syn && !packet.tcp().flags.ack) {
      charge(config_.costs.proxy_connection);
      // Per-client connection-rate throttle (§III.C). The bucket table is
      // bounded: idle clients are reaped incrementally and the LRU client
      // is recycled at capacity, so a SYN flood from spoofed sources
      // cannot grow it without limit.
      cur_shard_->conn_buckets.reap(now(), 8);
      auto bucket = cur_shard_->conn_buckets.try_emplace(
          packet.src_ip, now(),
          ratelimit::TokenBucket(config_.proxy_conn_rate,
                                 config_.proxy_conn_burst));
      if (!bucket.value->try_consume(now())) {
        stats_.proxy_conn_throttled++;
        drop_other(packet, obs::DropReason::kProxyConnThrottled);
        return cost_;
      }
    }
    tcp_->handle_packet(packet);
    return cost_;
  }

  if (!packet.is_udp()) {
    // Neither TCP nor UDP: nothing the guard can interpret. Used to be a
    // silent discard — every drop must carry a reason.
    drop_other(packet, obs::DropReason::kMalformed);
    return cost_;
  }

  // Responses coming back from the protected ANS (via its gateway).
  if (packet.src_ip == config_.ans_address) {
    if (packet.dst_ip == config_.guard_address) {
      handle_proxy_nat_response(packet);
    } else {
      handle_ans_response(packet);
    }
    return cost_;
  }

  // On the sharded path the batch pre-pass already decoded this packet;
  // reuse its message instead of decoding twice.
  if (in_batch() && batch_slots_[batch_index()].msg.has_value()) {
    handle_request(packet, *batch_slots_[batch_index()].msg);
    return cost_;
  }

  std::optional<dns::Message> m;
  {
    DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardDecode);
    m = dns::Message::decode(BytesView(packet.payload));
  }
  if (!m || m->header.qr || m->question() == nullptr) {
    stats_.malformed++;
    drop_other(packet, obs::DropReason::kMalformed);
    charge(config_.costs.drop);
    return cost_;
  }

  handle_request(packet, *m);
  return cost_;
}

void RemoteGuardNode::handle_request(const net::Packet& packet,
                                     const dns::Message& query) {
  stats_.requests_seen++;
  // In a shard burst the classify trace and the rate-estimator update are
  // amortized: one kBatch trace entry and one bulk record() per burst
  // (mathematically identical — same sim instant, summed count).
  if (!in_batch()) trace(obs::TraceEvent::kClassify, packet);
  if (sim().journeys().enabled()) {
    cur_jkey_ = {packet.src_ip.value(), query.header.id,
                 query.question()->qname.hash32()};
    cur_jkey_valid_ = true;
    jmark("guard.rx");
  }
  if (!(in_batch() && batch_fastpath_)) request_rate_.record(now());

  bool to_subnet = !(packet.dst_ip == config_.ans_address);

  if (!protection_active()) {
    // Below the activation threshold every request goes straight through
    // (§IV.C) — queries to fabricated subnet addresses have no meaning
    // in this mode and are redirected to the real server.
    stats_.forwarded_inactive++;
    forward_to_ans(packet, query);
    return;
  }

  // Fig. 4: the cookie checker handles all incoming UDP requests; a
  // request carrying the modified-DNS TXT cookie takes that path no
  // matter which scheme is configured for cookie-incapable requesters.
  if (auto cookie = CookieEngine::extract_txt_cookie(query)) {
    do_modified_dns(packet, query, *cookie);
    return;
  }

  switch (effective_scheme(packet.src_ip)) {
    case Scheme::PassThrough:
      forward_to_ans(packet, query);
      return;
    case Scheme::ModifiedDns:
      // Cookie-incapable requester under a modified-DNS-only guard: fall
      // back to the transparent NS-name scheme (Fig. 4).
      [[fallthrough]];
    case Scheme::NsName:
      do_ns_name(packet, query);
      return;
    case Scheme::FabricatedNsIp:
      do_fabricated_ns_ip(packet, query, to_subnet);
      return;
    case Scheme::TcpRedirect:
      do_tcp_redirect(packet, query);
      return;
  }
}

// --- modified-DNS scheme (§III.D) -------------------------------------------

void RemoteGuardNode::do_modified_dns(const net::Packet& packet,
                                      const dns::Message& query,
                                      const crypto::Cookie& cookie) {
  if (CookieEngine::is_zero_cookie(cookie)) {
    // msg 2: a cookie request. Reply msg 3 (same size; no amplification),
    // through Rate-Limiter1.
    if (!cur_shard_->rl1.allow(packet.src_ip, now())) {
      stats_.rl1_throttled++;
      drop_other(packet, obs::DropReason::kRateLimited1);
      return;
    }
    charge(config_.costs.cookie);
    stats_.cookies_minted++;
    scheme_cells(Scheme::ModifiedDns).minted++;
    jmark("guard.mint");
    dns::Message resp = dns::Message::response_to(query);
    CookieEngine::attach_txt_cookie(resp, engine_.mint(packet.src_ip),
                                    config_.cookie_ttl);
    stats_.cookie_replies++;
    reply(packet, std::move(resp));
    return;
  }

  charge(config_.costs.cookie);
  stats_.cookie_checks++;
  crypto::VerifyResult vr;
  if (auto pre = take_batch_verdict()) {
    vr = *pre;  // verified in bulk by the batch pre-pass
  } else {
    vr = engine_.verify_ex(packet.src_ip, cookie);
  }
  if (!vr.ok) {
    // `stale` (not `used_previous`) picks the reason: only a failure that
    // matches a retired key generation is a stale-cookie retry; anything
    // else is a forgery.
    drop_spoof(packet, Scheme::ModifiedDns,
               vr.stale ? obs::DropReason::kStaleKey
                        : obs::DropReason::kBadCookie);
    return;
  }
  note_verified(Scheme::ModifiedDns, vr.used_previous);
  if (!cur_shard_->rl2.allow(packet.src_ip, now())) {
    stats_.rl2_throttled++;
    drop_other(packet, obs::DropReason::kRateLimited2);
    return;
  }
  // msg 5: strip the extension; the ANS never sees cookies.
  dns::Message stripped = query;
  CookieEngine::strip_txt_cookie(stripped);
  charge(config_.costs.transform);
  trace(obs::TraceEvent::kRewrite, packet);
  forward_to_ans(packet, std::move(stripped));
}

// --- DNS-based scheme, NS-name variant (§III.B.1, Fig. 2(a)) ----------------

void RemoteGuardNode::do_ns_name(const net::Packet& packet,
                                 const dns::Message& query) {
  const dns::Question& q = *query.question();
  const auto& zone = config_.protected_zone;

  // Is this a cookie query (msg 3): [cookie-label] directly under the
  // protected zone?
  if (q.qname.label_count() == zone.label_count() + 1 &&
      q.qname.is_subdomain_of(zone)) {
    if (auto parsed = CookieEngine::parse_cookie_label(q.qname.first_label())) {
      charge(config_.costs.cookie);
      stats_.cookie_checks++;
      crypto::VerifyResult vr;
      if (auto pre = take_batch_verdict()) {
        vr = *pre;
      } else {
        vr = engine_.verify_prefix_ex(packet.src_ip, parsed->cookie_prefix);
      }
      if (!vr.ok) {
        drop_spoof(packet, Scheme::NsName,
                   vr.stale ? obs::DropReason::kStaleKey
                            : obs::DropReason::kBadCookie);
        return;
      }
      note_verified(Scheme::NsName, vr.used_previous);
      if (!cur_shard_->rl2.allow(packet.src_ip, now())) {
        stats_.rl2_throttled++;
        drop_other(packet, obs::DropReason::kRateLimited2);
        return;
      }
      // msg 4: restore the next-level question. "PRxxxxxxxxcom" under the
      // root zone asks the root server about "com.".
      auto restored = zone.with_prefix_label(parsed->restore_label);
      if (!restored) {
        drop_spoof(packet, Scheme::NsName, obs::DropReason::kLabelOverflow);
        return;
      }
      charge(config_.costs.transform);
      trace(obs::TraceEvent::kRewrite, packet);
      PendingAction action;
      action.kind = PendingAction::Kind::RestoreNsName;
      action.fabricated_qname = q.qname;
      action.original_qtype = q.qtype;
      const PendingKey pkey{query.header.id, packet.src_ip.value()};
      // retransmission: refresh, don't duplicate
      cur_shard_->pending.erase(pkey);
      cur_shard_->pending.try_emplace(pkey, now(), std::move(action));

      dns::Message rewritten = query;
      rewritten.questions.front().qname = *restored;
      forward_to_ans(packet, std::move(rewritten));
      return;
    }
  }

  // msg 1 -> msg 2: fabricate a referral whose NS name embeds the cookie.
  if (q.qname.label_count() <= zone.label_count()) {
    // Query for the zone apex itself: nothing to refer to; use the TCP
    // fallback so the request can still be served spoof-checked.
    do_tcp_redirect(packet, query);
    return;
  }
  dns::DomainName next_level = q.qname.suffix(zone.label_count() + 1);
  std::string next_label(next_level.first_label());

  if (!cur_shard_->rl1.allow(packet.src_ip, now())) {
    stats_.rl1_throttled++;
    drop_other(packet, obs::DropReason::kRateLimited1);
    return;
  }
  charge(config_.costs.cookie);
  stats_.cookies_minted++;
  scheme_cells(Scheme::NsName).minted++;
  jmark("guard.mint");
  auto label = engine_.make_cookie_label(packet.src_ip, next_label);
  if (!label) {  // label overflow: oversized original label; fall back
    do_tcp_redirect(packet, query);
    return;
  }
  auto fabricated = zone.with_prefix_label(*label);
  if (!fabricated) {
    do_tcp_redirect(packet, query);
    return;
  }

  dns::Message resp = dns::Message::response_to(query);
  resp.authority.push_back(dns::ResourceRecord::ns(
      next_level, *fabricated, config_.fabricated_ns_ttl));
  stats_.fabricated_referrals++;
  reply(packet, std::move(resp));
}

// --- DNS-based scheme, fabricated NS+IP variant (§III.B.2, Fig. 2(b)) -------

void RemoteGuardNode::do_fabricated_ns_ip(const net::Packet& packet,
                                          const dns::Message& query,
                                          bool to_subnet) {
  const dns::Question& q = *query.question();

  if (to_subnet) {
    // msg 7: the destination address is the cookie (COOKIE2).
    charge(config_.costs.cookie);
    stats_.cookie_checks++;
    crypto::VerifyResult vr;
    if (auto pre = take_batch_verdict()) {
      vr = *pre;
    } else {
      vr = engine_.verify_cookie_address_ex(packet.src_ip, packet.dst_ip,
                                            config_.subnet_base, config_.r_y);
    }
    if (!vr.ok) {
      // This path used to charge every failure as kBadCookie, hiding
      // stale-generation retries from the drop breakdown.
      drop_spoof(packet, Scheme::FabricatedNsIp,
                 vr.stale ? obs::DropReason::kStaleKey
                          : obs::DropReason::kBadCookie);
      return;
    }
    note_verified(Scheme::FabricatedNsIp, vr.used_previous);
    if (!cur_shard_->rl2.allow(packet.src_ip, now())) {
      stats_.rl2_throttled++;
      drop_other(packet, obs::DropReason::kRateLimited2);
      return;
    }
    PendingAction action;
    action.kind = PendingAction::Kind::RelaySourceIp;
    action.reply_src = packet.dst_ip;
    const PendingKey pkey{query.header.id, packet.src_ip.value()};
    cur_shard_->pending.erase(pkey);
    cur_shard_->pending.try_emplace(pkey, now(), std::move(action));
    forward_to_ans(packet, query);  // msg 8: unchanged question
    return;
  }

  // msg 3: query for the fabricated NS name?
  if (q.qname.label_count() >= 1) {
    if (auto parsed = CookieEngine::parse_cookie_label(q.qname.first_label())) {
      charge(config_.costs.cookie);
      stats_.cookie_checks++;
      crypto::VerifyResult vr;
      if (auto pre = take_batch_verdict()) {
        vr = *pre;
      } else {
        vr = engine_.verify_prefix_ex(packet.src_ip, parsed->cookie_prefix);
      }
      if (!vr.ok) {
        drop_spoof(packet, Scheme::FabricatedNsIp,
                   vr.stale ? obs::DropReason::kStaleKey
                            : obs::DropReason::kBadCookie);
        return;
      }
      note_verified(Scheme::FabricatedNsIp, vr.used_previous);
      if (!cur_shard_->rl2.allow(packet.src_ip, now())) {
        stats_.rl2_throttled++;
        drop_other(packet, obs::DropReason::kRateLimited2);
        return;
      }
      // msg 6: answer with the second cookie as the fabricated server's
      // address. One more cookie computation (COOKIE2).
      charge(config_.costs.cookie);
      jmark("guard.mint");
      net::Ipv4Address cookie2 = engine_.make_cookie_address(
          packet.src_ip, config_.subnet_base, config_.r_y);
      dns::Message resp = dns::Message::response_to(query);
      resp.header.aa = true;
      resp.answers.push_back(
          dns::ResourceRecord::a(q.qname, cookie2, config_.cookie_ttl));
      stats_.cookie_replies++;
      reply(packet, std::move(resp));
      return;
    }
  }

  // msg 1 -> msg 2: fabricate an ANS for the queried name itself.
  if (!cur_shard_->rl1.allow(packet.src_ip, now())) {
    stats_.rl1_throttled++;
    drop_other(packet, obs::DropReason::kRateLimited1);
    return;
  }
  if (q.qname.is_root()) {
    do_tcp_redirect(packet, query);
    return;
  }
  charge(config_.costs.cookie);
  stats_.cookies_minted++;
  scheme_cells(Scheme::FabricatedNsIp).minted++;
  jmark("guard.mint");
  auto label = engine_.make_cookie_label(packet.src_ip,
                                         std::string(q.qname.first_label()));
  if (!label) {
    do_tcp_redirect(packet, query);
    return;
  }
  auto fabricated = q.qname.parent().with_prefix_label(*label);
  if (!fabricated) {
    do_tcp_redirect(packet, query);
    return;
  }
  dns::Message resp = dns::Message::response_to(query);
  resp.authority.push_back(dns::ResourceRecord::ns(
      q.qname, *fabricated, config_.fabricated_ns_ttl));
  stats_.fabricated_referrals++;
  reply(packet, std::move(resp));
}

// --- TCP-based scheme (§III.C) ----------------------------------------------

void RemoteGuardNode::do_tcp_redirect(const net::Packet& packet,
                                      const dns::Message& query) {
  if (!cur_shard_->rl1.allow(packet.src_ip, now())) {
    stats_.rl1_throttled++;
    drop_other(packet, obs::DropReason::kRateLimited1);
    return;
  }
  dns::Message resp = dns::Message::response_to(query);
  resp.header.tc = true;  // same size as the request: no amplification
  stats_.tc_redirects++;
  jmark("guard.tc_redirect");
  reply(packet, std::move(resp));
}

void RemoteGuardNode::proxy_on_data(tcp::ConnId conn, BytesView data) {
  auto ins = framers_.try_emplace(conn, now());
  if (ins.value == nullptr) {
    // Refused insert (only possible if eviction were disabled): reset the
    // connection instead of carrying unframeable stream state.
    drops_.count(obs::DropReason::kStateTableFull);
    tcp_->abort(conn);
    return;
  }
  for (Bytes& msg : ins.value->push(data)) {
    auto query = dns::Message::decode(BytesView(msg));
    if (!query || query->header.qr || query->question() == nullptr) {
      stats_.malformed++;
      drops_.count(obs::DropReason::kMalformed);
      continue;
    }
    auto remote = tcp_->remote_of(conn);
    if (!remote) continue;
    if (sim().journeys().enabled() && query->question() != nullptr) {
      // Merge the TCP-handshake journey (keyed by the client endpoint)
      // with the DNS query it carried.
      cur_jkey_ = {remote->ip.value(), query->header.id,
                   query->question()->qname.hash32()};
      cur_jkey_valid_ = true;
      sim().journeys().alias({remote->ip.value(), remote->port, 0},
                             cur_jkey_);
      jmark("guard.proxy_query");
    }
    // TCP handshake completion already proved the source address; still
    // apply Rate-Limiter2 like any verified requester.
    if (!cur_shard_->rl2.allow(remote->ip, now())) {
      stats_.rl2_throttled++;
      drops_.count(obs::DropReason::kRateLimited2);
      continue;
    }
    stats_.proxy_queries++;
    DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardNat);
    // Convert to UDP toward the ANS, NATed to the guard's own address.
    // Source-port allocation probes past ports with a live NAT entry: a
    // collision used to overwrite the old entry, orphaning its in-flight
    // ANS query and leaking the client connection. Expired entries are
    // reaped incrementally on the same path. Candidates stay inside the
    // shard's disjoint port range so the ANS reply routes back here.
    Shard& sh = *cur_shard_;
    sh.nat.reap(now(), 16);
    std::optional<std::uint16_t> port;
    for (int probe = 0; probe < config_.nat_port_probe_limit; ++probe) {
      const std::uint16_t candidate = sh.next_nat_port++;
      if (sh.nat_port_limit == 0) {
        // Single shard: the historical full-range wrap (uint16 overflow
        // lands below the base and resets to it).
        if (sh.next_nat_port < sh.nat_port_base) {
          sh.next_nat_port = sh.nat_port_base;
        }
      } else if (sh.next_nat_port < sh.nat_port_base ||
                 sh.next_nat_port >= sh.nat_port_limit) {
        sh.next_nat_port = sh.nat_port_base;
      }
      auto r = sh.nat.try_emplace(candidate, now(),
                                  NatEntry{conn, query->header.id});
      if (r.inserted) {
        port = candidate;
        break;
      }
      if (r.value == nullptr) break;  // table refused the insert
    }
    if (!port) {
      drops_.count(obs::DropReason::kStateTableFull);
      continue;
    }
    charge(config_.costs.transform);
    stats_.forwarded_to_ans++;
    emit_direct(ans_, net::Packet::make_udp(
                          {config_.guard_address, *port},
                          {config_.ans_address, net::kDnsPort},
                          query->encode_pooled()));
  }
}

void RemoteGuardNode::handle_proxy_nat_response(const net::Packet& packet) {
  DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardNat);
  const std::uint16_t port = packet.udp().dst_port;
  NatEntry* found = cur_shard_->nat.find(port, now());
  if (found == nullptr) {
    // No NAT entry: the proxied connection is gone (reaped / recycled) or
    // the response is a stray. Used to be a silent discard.
    drop_other(packet, obs::DropReason::kUnmatchedResponse);
    return;
  }
  NatEntry entry = *found;
  if (sim().journeys().enabled()) {
    if (auto remote = tcp_->remote_of(entry.conn)) {
      sim().journeys().mark({remote->ip.value(), remote->port, 0},
                            "guard.proxy_relay", now());
    }
  }
  cur_shard_->nat.erase(port);
  charge(config_.costs.transform);
  stats_.responses_relayed++;
  tcp_->send_data(entry.conn,
                  BytesView(tcp::StreamFramer::frame(BytesView(packet.payload))));
  // DNS-over-TCP here is one query per connection; closing after the
  // response keeps the proxy's connection table small (§III.C's concern).
  tcp_->close(entry.conn);
}

void RemoteGuardNode::handle_ans_response(const net::Packet& packet) {
  // Amortized reaping of expired rewrite state.
  cur_shard_->pending.reap(now(), 16);

  auto m = dns::Message::decode(BytesView(packet.payload));
  if (!m || !m->header.qr) {
    // Not a DNS response we can interpret; pass through untouched.
    emit(packet);
    return;
  }

  if (sim().journeys().enabled() && m->question() != nullptr) {
    cur_jkey_ = {packet.dst_ip.value(), m->header.id,
                 m->question()->qname.hash32()};
    cur_jkey_valid_ = true;
    jmark("guard.relay");
  }

  const PendingKey pkey{m->header.id, packet.dst_ip.value()};
  PendingAction* found = cur_shard_->pending.find(pkey, now());
  if (found == nullptr) {
    stats_.responses_relayed++;
    emit(packet);
    return;
  }
  PendingAction action = std::move(*found);
  cur_shard_->pending.erase(pkey);

  switch (action.kind) {
    case PendingAction::Kind::RestoreNsName: {
      // msg 5 -> msg 6: return the next-level servers' addresses as the
      // fabricated name's A records (Fig. 2(a)).
      std::vector<dns::ResourceRecord> addresses;
      for (const auto* section : {&m->answers, &m->additional}) {
        for (const auto& rr : *section) {
          if (rr.type == dns::RrType::A) {
            addresses.push_back(dns::ResourceRecord::a(
                action.fabricated_qname,
                std::get<dns::ARdata>(rr.rdata).address, rr.ttl));
          }
        }
      }
      dns::Message resp;
      resp.header.id = m->header.id;
      resp.header.qr = true;
      resp.header.aa = true;
      resp.questions.push_back(dns::Question{action.fabricated_qname,
                                             action.original_qtype,
                                             dns::RrClass::IN});
      if (addresses.empty()) {
        resp.header.rcode = dns::Rcode::ServFail;
      } else {
        resp.answers = std::move(addresses);
      }
      charge(config_.costs.transform);
      trace(obs::TraceEvent::kRewrite, packet);
      stats_.responses_relayed++;
      emit(net::Packet::make_udp({config_.ans_address, net::kDnsPort},
                                 packet.dst(), resp.encode_pooled()));
      return;
    }
    case PendingAction::Kind::RelaySourceIp: {
      // msg 9 -> msg 10: the LRS asked COOKIE2, so the answer must come
      // from COOKIE2 (Fig. 2(b)).
      charge(config_.costs.transform);
      trace(obs::TraceEvent::kRewrite, packet);
      stats_.responses_relayed++;
      net::Packet out = packet;
      out.src_ip = action.reply_src;
      emit(std::move(out));
      return;
    }
  }
}

}  // namespace dnsguard::guard
