#include "guard/remote_guard.h"

#include "common/log.h"

namespace dnsguard::guard {

std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::PassThrough: return "pass-through";
    case Scheme::NsName: return "dns-based/ns-name";
    case Scheme::FabricatedNsIp: return "dns-based/fabricated-ns-ip";
    case Scheme::TcpRedirect: return "tcp-based";
    case Scheme::ModifiedDns: return "modified-dns";
  }
  return "?";
}

std::string_view scheme_token(Scheme s) {
  switch (s) {
    case Scheme::PassThrough: return "pass_through";
    case Scheme::NsName: return "ns_name";
    case Scheme::FabricatedNsIp: return "fabricated_ns_ip";
    case Scheme::TcpRedirect: return "tcp_redirect";
    case Scheme::ModifiedDns: return "modified_dns";
  }
  return "unknown";
}

void GuardStats::bind(obs::MetricsRegistry& registry,
                      std::string_view prefix) {
  std::string p(prefix);
  registry.attach_counter(p + ".requests_seen", requests_seen);
  registry.attach_counter(p + ".forwarded_inactive", forwarded_inactive);
  registry.attach_counter(p + ".cookies_minted", cookies_minted);
  registry.attach_counter(p + ".cookie_checks", cookie_checks);
  registry.attach_counter(p + ".spoofs_dropped", spoofs_dropped);
  registry.attach_counter(p + ".verified_curr_gen", verified_curr_gen);
  registry.attach_counter(p + ".verified_prev_gen", verified_prev_gen);
  registry.attach_counter(p + ".rl1_throttled", rl1_throttled);
  registry.attach_counter(p + ".rl2_throttled", rl2_throttled);
  registry.attach_counter(p + ".forwarded_to_ans", forwarded_to_ans);
  registry.attach_counter(p + ".responses_relayed", responses_relayed);
  registry.attach_counter(p + ".fabricated_referrals", fabricated_referrals);
  registry.attach_counter(p + ".cookie_replies", cookie_replies);
  registry.attach_counter(p + ".tc_redirects", tc_redirects);
  registry.attach_counter(p + ".proxy_queries", proxy_queries);
  registry.attach_counter(p + ".proxy_conn_throttled", proxy_conn_throttled);
  registry.attach_counter(p + ".malformed", malformed);
  registry.attach_counter(p + ".key_rotations", key_rotations);
}

RemoteGuardNode::RemoteGuardNode(sim::Simulator& sim, std::string name,
                                 Config config, sim::Node* ans)
    : sim::Node(sim, std::move(name), config.rx_queue_capacity),
      config_(std::move(config)),
      ans_(ans),
      engine_(config_.key_seed),
      rl1_(config_.rl1),
      rl2_(config_.rl2),
      pending_({.capacity = config_.pending_table_capacity,
                .ttl = config_.pending_ttl}),
      framers_({.capacity = config_.proxy_max_connections,
                .evict_lru_when_full = true}),
      nat_({.capacity = config_.nat_table_capacity, .ttl = config_.nat_ttl}),
      conn_buckets_({.capacity = config_.conn_bucket_capacity,
                     .idle_timeout = config_.conn_bucket_idle}) {
  tcp_ = std::make_unique<tcp::TcpStack>(
      [this](net::Packet p) { emit(std::move(p)); },
      [this] { return now(); },
      tcp::TcpStack::Callbacks{
          .on_established = {},
          .on_data = [this](tcp::ConnId id,
                            BytesView data) { proxy_on_data(id, data); },
          .on_closed =
              [this](tcp::ConnId id) {
                framers_.erase(id);
                nat_.erase_if([id](const std::uint16_t&, const NatEntry& e) {
                  return e.conn == id;
                });
              },
      },
      tcp::TcpStack::Options{.syn_cookies = true,
                             .syn_cookie_secret = config_.key_seed ^
                                                  0xabcdef0123456789ULL,
                             .max_connections =
                                 config_.proxy_max_connections});
  tcp_->listen(net::kDnsPort);

  // A NAT entry leaving involuntarily means its ANS reply is never coming
  // (TTL) or its port was recycled under pressure (capacity): close the
  // proxied connection rather than leave the client hanging.
  nat_.set_evict_callback([this](const std::uint16_t&, NatEntry& e,
                                 common::EvictReason reason) {
    drops_.count(reason == common::EvictReason::kCapacity
                     ? obs::DropReason::kStateTableFull
                     : obs::DropReason::kProxyTimeout);
    tcp_->close(e.conn);
  });

  obs::MetricsRegistry& registry = this->sim().metrics();
  stats_.bind(registry, "guard");
  drops_.bind(registry, "guard");
  rl1_.bind_metrics(registry, "guard.rl1");
  rl2_.bind_metrics(registry, "guard.rl2");
  tcp_->bind_metrics(registry, "guard.tcp");
  tcp_->set_drop_counters(&drops_);
  tcp_->set_journey_fn([this](net::SocketAddr client, std::string_view stage) {
    this->sim().journeys().mark({client.ip.value(), client.port, 0}, stage,
                                now());
  });
  pending_.bind_metrics(registry, "guard.pending");
  nat_.bind_metrics(registry, "guard.nat");
  conn_buckets_.bind_metrics(registry, "guard.conn_buckets");
  for (std::size_t i = 0; i < kSchemeCount; ++i) {
    std::string p =
        "guard.scheme." + std::string(scheme_token(static_cast<Scheme>(i)));
    registry.attach_counter(p + ".minted", scheme_counters_[i].minted);
    registry.attach_counter(p + ".verified", scheme_counters_[i].verified);
    registry.attach_counter(p + ".dropped", scheme_counters_[i].dropped);
  }

  if (config_.proxy_lifetime_rtt_multiple > 0) {
    schedule_in(config_.estimated_rtt, [this] { proxy_reap_loop(); });
  }
  if (config_.key_rotation_interval.ns > 0) {
    schedule_in(config_.key_rotation_interval, [this] { rotation_loop(); });
  }
}

void RemoteGuardNode::rotation_loop() {
  // Derive the next generation's seed deterministically from the base
  // seed and the generation counter; a deployment would draw randomness.
  std::uint64_t next_seed =
      config_.key_seed ^ (0x9e3779b97f4a7c15ULL * (engine_.generation() + 1));
  engine_.rotate(next_seed);
  stats_.key_rotations++;
  schedule_in(config_.key_rotation_interval, [this] { rotation_loop(); });
}

void RemoteGuardNode::proxy_reap_loop() {
  SimDuration max_life = SimDuration{static_cast<std::int64_t>(
      config_.estimated_rtt.ns * config_.proxy_lifetime_rtt_multiple)};
  tcp_->reap(SimDuration{0}, max_life);
  schedule_in(config_.estimated_rtt, [this] { proxy_reap_loop(); });
}

void RemoteGuardNode::install(int subnet_prefix_len) {
  sim().add_host_route(config_.ans_address, this);
  sim().add_host_route(config_.guard_address, this);
  if (config_.scheme == Scheme::FabricatedNsIp ||
      config_.per_source_scheme.size() > 0) {
    sim().add_route(config_.subnet_base, subnet_prefix_len, this);
  }
  sim().set_gateway(ans_, this);
  installed_ = true;
}

void RemoteGuardNode::uninstall() {
  sim().remove_routes_to(this);
  sim().add_host_route(config_.ans_address, ans_);
  sim().clear_gateway(ans_);
  installed_ = false;
}

bool RemoteGuardNode::protection_active() const {
  if (config_.activation_threshold_rps <= 0) return true;
  return request_rate_.rate(sim().now()) > config_.activation_threshold_rps;
}

Scheme RemoteGuardNode::effective_scheme(net::Ipv4Address src) const {
  auto it = config_.per_source_scheme.find(src);
  if (it != config_.per_source_scheme.end()) return it->second;
  return config_.scheme;
}

void RemoteGuardNode::emit(net::Packet p) {
  charge(config_.costs.packet);
  send(std::move(p));
}

void RemoteGuardNode::emit_direct(sim::Node* to, net::Packet p) {
  charge(config_.costs.packet);
  send_direct(to, std::move(p));
}

void RemoteGuardNode::jmark(std::string_view stage) {
  if (cur_jkey_valid_) sim().journeys().mark(cur_jkey_, stage, now());
}

void RemoteGuardNode::jend(std::string_view stage, bool ok) {
  if (cur_jkey_valid_) sim().journeys().end(cur_jkey_, stage, now(), ok);
}

void RemoteGuardNode::drop_spoof(const net::Packet& packet, Scheme scheme,
                                 obs::DropReason reason) {
  stats_.spoofs_dropped++;
  scheme_cells(scheme).dropped++;
  drops_.count(reason);
  trace(obs::TraceEvent::kDrop, packet, reason);
  jend("guard.drop", /*ok=*/false);
  charge(config_.costs.drop);
}

void RemoteGuardNode::drop_other(const net::Packet& packet,
                                 obs::DropReason reason) {
  drops_.count(reason);
  trace(obs::TraceEvent::kDrop, packet, reason);
  jend("guard.drop", /*ok=*/false);
}

void RemoteGuardNode::note_verified(Scheme scheme, bool used_previous) {
  if (used_previous) {
    stats_.verified_prev_gen++;
  } else {
    stats_.verified_curr_gen++;
  }
  scheme_cells(scheme).verified++;
  jmark("guard.verify");
}

void RemoteGuardNode::reply(const net::Packet& to, dns::Message response,
                            std::optional<net::Ipv4Address> src_override) {
  charge(config_.costs.transform);
  trace(obs::TraceEvent::kRewrite, to);
  net::Ipv4Address src = src_override.value_or(to.dst_ip);
  emit(net::Packet::make_udp({src, net::kDnsPort}, to.src(),
                             response.encode_pooled()));
}

void RemoteGuardNode::forward_to_ans(const net::Packet& original,
                                     dns::Message query) {
  stats_.forwarded_to_ans++;
  if (cur_jkey_valid_ && query.question() != nullptr) {
    // The question may have been restored/rewritten: teach the journey the
    // key the ANS response will come back under.
    sim().journeys().alias(
        cur_jkey_, {original.src_ip.value(), query.header.id,
                    query.question()->qname.hash32()});
    jmark("guard.fwd_ans");
  }
  net::Packet p = net::Packet::make_udp(
      original.src(), {config_.ans_address, net::kDnsPort},
      query.encode_pooled());
  emit_direct(ans_, std::move(p));
}

SimDuration RemoteGuardNode::process(const net::Packet& packet) {
  cost_ = config_.costs.packet;  // ingress processing
  cur_jkey_valid_ = false;

  if (packet.is_tcp()) {
    // TCP path: either the proxy itself, or (pass-through schemes) raw
    // forwarding to the ANS.
    charge(config_.costs.proxy_segment);
    charge(SimDuration{static_cast<std::int64_t>(
        config_.costs.proxy_table_per_conn.ns *
        static_cast<std::int64_t>(tcp_->connection_count()))});
    if (packet.tcp().flags.syn && !packet.tcp().flags.ack) {
      charge(config_.costs.proxy_connection);
      // Per-client connection-rate throttle (§III.C). The bucket table is
      // bounded: idle clients are reaped incrementally and the LRU client
      // is recycled at capacity, so a SYN flood from spoofed sources
      // cannot grow it without limit.
      conn_buckets_.reap(now(), 8);
      auto bucket = conn_buckets_.try_emplace(
          packet.src_ip, now(),
          ratelimit::TokenBucket(config_.proxy_conn_rate,
                                 config_.proxy_conn_burst));
      if (!bucket.value->try_consume(now())) {
        stats_.proxy_conn_throttled++;
        drop_other(packet, obs::DropReason::kProxyConnThrottled);
        return cost_;
      }
    }
    tcp_->handle_packet(packet);
    return cost_;
  }

  if (!packet.is_udp()) {
    // Neither TCP nor UDP: nothing the guard can interpret. Used to be a
    // silent discard — every drop must carry a reason.
    drop_other(packet, obs::DropReason::kMalformed);
    return cost_;
  }

  // Responses coming back from the protected ANS (via its gateway).
  if (packet.src_ip == config_.ans_address) {
    if (packet.dst_ip == config_.guard_address) {
      handle_proxy_nat_response(packet);
    } else {
      handle_ans_response(packet);
    }
    return cost_;
  }

  auto m = dns::Message::decode(BytesView(packet.payload));
  if (!m || m->header.qr || m->question() == nullptr) {
    stats_.malformed++;
    drop_other(packet, obs::DropReason::kMalformed);
    charge(config_.costs.drop);
    return cost_;
  }

  handle_request(packet, *m);
  return cost_;
}

void RemoteGuardNode::handle_request(const net::Packet& packet,
                                     const dns::Message& query) {
  stats_.requests_seen++;
  trace(obs::TraceEvent::kClassify, packet);
  if (sim().journeys().enabled()) {
    cur_jkey_ = {packet.src_ip.value(), query.header.id,
                 query.question()->qname.hash32()};
    cur_jkey_valid_ = true;
    jmark("guard.rx");
  }
  request_rate_.record(now());

  bool to_subnet = !(packet.dst_ip == config_.ans_address);

  if (!protection_active()) {
    // Below the activation threshold every request goes straight through
    // (§IV.C) — queries to fabricated subnet addresses have no meaning
    // in this mode and are redirected to the real server.
    stats_.forwarded_inactive++;
    forward_to_ans(packet, query);
    return;
  }

  // Fig. 4: the cookie checker handles all incoming UDP requests; a
  // request carrying the modified-DNS TXT cookie takes that path no
  // matter which scheme is configured for cookie-incapable requesters.
  if (auto cookie = CookieEngine::extract_txt_cookie(query)) {
    do_modified_dns(packet, query, *cookie);
    return;
  }

  switch (effective_scheme(packet.src_ip)) {
    case Scheme::PassThrough:
      forward_to_ans(packet, query);
      return;
    case Scheme::ModifiedDns:
      // Cookie-incapable requester under a modified-DNS-only guard: fall
      // back to the transparent NS-name scheme (Fig. 4).
      [[fallthrough]];
    case Scheme::NsName:
      do_ns_name(packet, query);
      return;
    case Scheme::FabricatedNsIp:
      do_fabricated_ns_ip(packet, query, to_subnet);
      return;
    case Scheme::TcpRedirect:
      do_tcp_redirect(packet, query);
      return;
  }
}

// --- modified-DNS scheme (§III.D) -------------------------------------------

void RemoteGuardNode::do_modified_dns(const net::Packet& packet,
                                      const dns::Message& query,
                                      const crypto::Cookie& cookie) {
  if (CookieEngine::is_zero_cookie(cookie)) {
    // msg 2: a cookie request. Reply msg 3 (same size; no amplification),
    // through Rate-Limiter1.
    if (!rl1_.allow(packet.src_ip, now())) {
      stats_.rl1_throttled++;
      drop_other(packet, obs::DropReason::kRateLimited1);
      return;
    }
    charge(config_.costs.cookie);
    stats_.cookies_minted++;
    scheme_cells(Scheme::ModifiedDns).minted++;
    jmark("guard.mint");
    dns::Message resp = dns::Message::response_to(query);
    CookieEngine::attach_txt_cookie(resp, engine_.mint(packet.src_ip),
                                    config_.cookie_ttl);
    stats_.cookie_replies++;
    reply(packet, std::move(resp));
    return;
  }

  charge(config_.costs.cookie);
  stats_.cookie_checks++;
  crypto::VerifyResult vr = engine_.verify_ex(packet.src_ip, cookie);
  if (!vr.ok) {
    drop_spoof(packet, Scheme::ModifiedDns,
               vr.used_previous ? obs::DropReason::kStaleKey
                                : obs::DropReason::kBadCookie);
    return;
  }
  note_verified(Scheme::ModifiedDns, vr.used_previous);
  if (!rl2_.allow(packet.src_ip, now())) {
    stats_.rl2_throttled++;
    drop_other(packet, obs::DropReason::kRateLimited2);
    return;
  }
  // msg 5: strip the extension; the ANS never sees cookies.
  dns::Message stripped = query;
  CookieEngine::strip_txt_cookie(stripped);
  charge(config_.costs.transform);
  trace(obs::TraceEvent::kRewrite, packet);
  forward_to_ans(packet, std::move(stripped));
}

// --- DNS-based scheme, NS-name variant (§III.B.1, Fig. 2(a)) ----------------

void RemoteGuardNode::do_ns_name(const net::Packet& packet,
                                 const dns::Message& query) {
  const dns::Question& q = *query.question();
  const auto& zone = config_.protected_zone;

  // Is this a cookie query (msg 3): [cookie-label] directly under the
  // protected zone?
  if (q.qname.label_count() == zone.label_count() + 1 &&
      q.qname.is_subdomain_of(zone)) {
    if (auto parsed = CookieEngine::parse_cookie_label(q.qname.first_label())) {
      charge(config_.costs.cookie);
      stats_.cookie_checks++;
      crypto::VerifyResult vr =
          engine_.verify_prefix_ex(packet.src_ip, parsed->cookie_prefix);
      if (!vr.ok) {
        drop_spoof(packet, Scheme::NsName,
                   vr.used_previous ? obs::DropReason::kStaleKey
                                    : obs::DropReason::kBadCookie);
        return;
      }
      note_verified(Scheme::NsName, vr.used_previous);
      if (!rl2_.allow(packet.src_ip, now())) {
        stats_.rl2_throttled++;
        drop_other(packet, obs::DropReason::kRateLimited2);
        return;
      }
      // msg 4: restore the next-level question. "PRxxxxxxxxcom" under the
      // root zone asks the root server about "com.".
      auto restored = zone.with_prefix_label(parsed->restore_label);
      if (!restored) {
        drop_spoof(packet, Scheme::NsName, obs::DropReason::kLabelOverflow);
        return;
      }
      charge(config_.costs.transform);
      trace(obs::TraceEvent::kRewrite, packet);
      PendingAction action;
      action.kind = PendingAction::Kind::RestoreNsName;
      action.fabricated_qname = q.qname;
      action.original_qtype = q.qtype;
      const PendingKey pkey{query.header.id, packet.src_ip.value()};
      pending_.erase(pkey);  // retransmission: refresh, don't duplicate
      pending_.try_emplace(pkey, now(), std::move(action));

      dns::Message rewritten = query;
      rewritten.questions.front().qname = *restored;
      forward_to_ans(packet, std::move(rewritten));
      return;
    }
  }

  // msg 1 -> msg 2: fabricate a referral whose NS name embeds the cookie.
  if (q.qname.label_count() <= zone.label_count()) {
    // Query for the zone apex itself: nothing to refer to; use the TCP
    // fallback so the request can still be served spoof-checked.
    do_tcp_redirect(packet, query);
    return;
  }
  dns::DomainName next_level = q.qname.suffix(zone.label_count() + 1);
  std::string next_label(next_level.first_label());

  if (!rl1_.allow(packet.src_ip, now())) {
    stats_.rl1_throttled++;
    drop_other(packet, obs::DropReason::kRateLimited1);
    return;
  }
  charge(config_.costs.cookie);
  stats_.cookies_minted++;
  scheme_cells(Scheme::NsName).minted++;
  jmark("guard.mint");
  auto label = engine_.make_cookie_label(packet.src_ip, next_label);
  if (!label) {  // label overflow: oversized original label; fall back
    do_tcp_redirect(packet, query);
    return;
  }
  auto fabricated = zone.with_prefix_label(*label);
  if (!fabricated) {
    do_tcp_redirect(packet, query);
    return;
  }

  dns::Message resp = dns::Message::response_to(query);
  resp.authority.push_back(dns::ResourceRecord::ns(
      next_level, *fabricated, config_.fabricated_ns_ttl));
  stats_.fabricated_referrals++;
  reply(packet, std::move(resp));
}

// --- DNS-based scheme, fabricated NS+IP variant (§III.B.2, Fig. 2(b)) -------

void RemoteGuardNode::do_fabricated_ns_ip(const net::Packet& packet,
                                          const dns::Message& query,
                                          bool to_subnet) {
  const dns::Question& q = *query.question();

  if (to_subnet) {
    // msg 7: the destination address is the cookie (COOKIE2).
    charge(config_.costs.cookie);
    stats_.cookie_checks++;
    crypto::VerifyResult vr = engine_.verify_cookie_address_ex(
        packet.src_ip, packet.dst_ip, config_.subnet_base, config_.r_y);
    if (!vr.ok) {
      drop_spoof(packet, Scheme::FabricatedNsIp, obs::DropReason::kBadCookie);
      return;
    }
    note_verified(Scheme::FabricatedNsIp, vr.used_previous);
    if (!rl2_.allow(packet.src_ip, now())) {
      stats_.rl2_throttled++;
      drop_other(packet, obs::DropReason::kRateLimited2);
      return;
    }
    PendingAction action;
    action.kind = PendingAction::Kind::RelaySourceIp;
    action.reply_src = packet.dst_ip;
    const PendingKey pkey{query.header.id, packet.src_ip.value()};
    pending_.erase(pkey);
    pending_.try_emplace(pkey, now(), std::move(action));
    forward_to_ans(packet, query);  // msg 8: unchanged question
    return;
  }

  // msg 3: query for the fabricated NS name?
  if (q.qname.label_count() >= 1) {
    if (auto parsed = CookieEngine::parse_cookie_label(q.qname.first_label())) {
      charge(config_.costs.cookie);
      stats_.cookie_checks++;
      crypto::VerifyResult vr =
          engine_.verify_prefix_ex(packet.src_ip, parsed->cookie_prefix);
      if (!vr.ok) {
        drop_spoof(packet, Scheme::FabricatedNsIp,
                   vr.used_previous ? obs::DropReason::kStaleKey
                                    : obs::DropReason::kBadCookie);
        return;
      }
      note_verified(Scheme::FabricatedNsIp, vr.used_previous);
      if (!rl2_.allow(packet.src_ip, now())) {
        stats_.rl2_throttled++;
        drop_other(packet, obs::DropReason::kRateLimited2);
        return;
      }
      // msg 6: answer with the second cookie as the fabricated server's
      // address. One more cookie computation (COOKIE2).
      charge(config_.costs.cookie);
      jmark("guard.mint");
      net::Ipv4Address cookie2 = engine_.make_cookie_address(
          packet.src_ip, config_.subnet_base, config_.r_y);
      dns::Message resp = dns::Message::response_to(query);
      resp.header.aa = true;
      resp.answers.push_back(
          dns::ResourceRecord::a(q.qname, cookie2, config_.cookie_ttl));
      stats_.cookie_replies++;
      reply(packet, std::move(resp));
      return;
    }
  }

  // msg 1 -> msg 2: fabricate an ANS for the queried name itself.
  if (!rl1_.allow(packet.src_ip, now())) {
    stats_.rl1_throttled++;
    drop_other(packet, obs::DropReason::kRateLimited1);
    return;
  }
  if (q.qname.is_root()) {
    do_tcp_redirect(packet, query);
    return;
  }
  charge(config_.costs.cookie);
  stats_.cookies_minted++;
  scheme_cells(Scheme::FabricatedNsIp).minted++;
  jmark("guard.mint");
  auto label = engine_.make_cookie_label(packet.src_ip,
                                         std::string(q.qname.first_label()));
  if (!label) {
    do_tcp_redirect(packet, query);
    return;
  }
  auto fabricated = q.qname.parent().with_prefix_label(*label);
  if (!fabricated) {
    do_tcp_redirect(packet, query);
    return;
  }
  dns::Message resp = dns::Message::response_to(query);
  resp.authority.push_back(dns::ResourceRecord::ns(
      q.qname, *fabricated, config_.fabricated_ns_ttl));
  stats_.fabricated_referrals++;
  reply(packet, std::move(resp));
}

// --- TCP-based scheme (§III.C) ----------------------------------------------

void RemoteGuardNode::do_tcp_redirect(const net::Packet& packet,
                                      const dns::Message& query) {
  if (!rl1_.allow(packet.src_ip, now())) {
    stats_.rl1_throttled++;
    drop_other(packet, obs::DropReason::kRateLimited1);
    return;
  }
  dns::Message resp = dns::Message::response_to(query);
  resp.header.tc = true;  // same size as the request: no amplification
  stats_.tc_redirects++;
  jmark("guard.tc_redirect");
  reply(packet, std::move(resp));
}

void RemoteGuardNode::proxy_on_data(tcp::ConnId conn, BytesView data) {
  auto ins = framers_.try_emplace(conn, now());
  if (ins.value == nullptr) {
    // Refused insert (only possible if eviction were disabled): reset the
    // connection instead of carrying unframeable stream state.
    drops_.count(obs::DropReason::kStateTableFull);
    tcp_->abort(conn);
    return;
  }
  for (Bytes& msg : ins.value->push(data)) {
    auto query = dns::Message::decode(BytesView(msg));
    if (!query || query->header.qr || query->question() == nullptr) {
      stats_.malformed++;
      drops_.count(obs::DropReason::kMalformed);
      continue;
    }
    auto remote = tcp_->remote_of(conn);
    if (!remote) continue;
    if (sim().journeys().enabled() && query->question() != nullptr) {
      // Merge the TCP-handshake journey (keyed by the client endpoint)
      // with the DNS query it carried.
      cur_jkey_ = {remote->ip.value(), query->header.id,
                   query->question()->qname.hash32()};
      cur_jkey_valid_ = true;
      sim().journeys().alias({remote->ip.value(), remote->port, 0},
                             cur_jkey_);
      jmark("guard.proxy_query");
    }
    // TCP handshake completion already proved the source address; still
    // apply Rate-Limiter2 like any verified requester.
    if (!rl2_.allow(remote->ip, now())) {
      stats_.rl2_throttled++;
      drops_.count(obs::DropReason::kRateLimited2);
      continue;
    }
    stats_.proxy_queries++;
    // Convert to UDP toward the ANS, NATed to the guard's own address.
    // Source-port allocation probes past ports with a live NAT entry: a
    // collision used to overwrite the old entry, orphaning its in-flight
    // ANS query and leaking the client connection. Expired entries are
    // reaped incrementally on the same path.
    nat_.reap(now(), 16);
    std::optional<std::uint16_t> port;
    for (int probe = 0; probe < config_.nat_port_probe_limit; ++probe) {
      const std::uint16_t candidate = next_nat_port_++;
      if (next_nat_port_ < 20000) next_nat_port_ = 20000;
      auto r = nat_.try_emplace(candidate, now(),
                                NatEntry{conn, query->header.id});
      if (r.inserted) {
        port = candidate;
        break;
      }
      if (r.value == nullptr) break;  // table refused the insert
    }
    if (!port) {
      drops_.count(obs::DropReason::kStateTableFull);
      continue;
    }
    charge(config_.costs.transform);
    stats_.forwarded_to_ans++;
    emit_direct(ans_, net::Packet::make_udp(
                          {config_.guard_address, *port},
                          {config_.ans_address, net::kDnsPort},
                          query->encode_pooled()));
  }
}

void RemoteGuardNode::handle_proxy_nat_response(const net::Packet& packet) {
  const std::uint16_t port = packet.udp().dst_port;
  NatEntry* found = nat_.find(port, now());
  if (found == nullptr) {
    // No NAT entry: the proxied connection is gone (reaped / recycled) or
    // the response is a stray. Used to be a silent discard.
    drop_other(packet, obs::DropReason::kUnmatchedResponse);
    return;
  }
  NatEntry entry = *found;
  if (sim().journeys().enabled()) {
    if (auto remote = tcp_->remote_of(entry.conn)) {
      sim().journeys().mark({remote->ip.value(), remote->port, 0},
                            "guard.proxy_relay", now());
    }
  }
  nat_.erase(port);
  charge(config_.costs.transform);
  stats_.responses_relayed++;
  tcp_->send_data(entry.conn,
                  BytesView(tcp::StreamFramer::frame(BytesView(packet.payload))));
  // DNS-over-TCP here is one query per connection; closing after the
  // response keeps the proxy's connection table small (§III.C's concern).
  tcp_->close(entry.conn);
}

void RemoteGuardNode::handle_ans_response(const net::Packet& packet) {
  // Amortized reaping of expired rewrite state.
  pending_.reap(now(), 16);

  auto m = dns::Message::decode(BytesView(packet.payload));
  if (!m || !m->header.qr) {
    // Not a DNS response we can interpret; pass through untouched.
    emit(packet);
    return;
  }

  if (sim().journeys().enabled() && m->question() != nullptr) {
    cur_jkey_ = {packet.dst_ip.value(), m->header.id,
                 m->question()->qname.hash32()};
    cur_jkey_valid_ = true;
    jmark("guard.relay");
  }

  const PendingKey pkey{m->header.id, packet.dst_ip.value()};
  PendingAction* found = pending_.find(pkey, now());
  if (found == nullptr) {
    stats_.responses_relayed++;
    emit(packet);
    return;
  }
  PendingAction action = std::move(*found);
  pending_.erase(pkey);

  switch (action.kind) {
    case PendingAction::Kind::RestoreNsName: {
      // msg 5 -> msg 6: return the next-level servers' addresses as the
      // fabricated name's A records (Fig. 2(a)).
      std::vector<dns::ResourceRecord> addresses;
      for (const auto* section : {&m->answers, &m->additional}) {
        for (const auto& rr : *section) {
          if (rr.type == dns::RrType::A) {
            addresses.push_back(dns::ResourceRecord::a(
                action.fabricated_qname,
                std::get<dns::ARdata>(rr.rdata).address, rr.ttl));
          }
        }
      }
      dns::Message resp;
      resp.header.id = m->header.id;
      resp.header.qr = true;
      resp.header.aa = true;
      resp.questions.push_back(dns::Question{action.fabricated_qname,
                                             action.original_qtype,
                                             dns::RrClass::IN});
      if (addresses.empty()) {
        resp.header.rcode = dns::Rcode::ServFail;
      } else {
        resp.answers = std::move(addresses);
      }
      charge(config_.costs.transform);
      trace(obs::TraceEvent::kRewrite, packet);
      stats_.responses_relayed++;
      emit(net::Packet::make_udp({config_.ans_address, net::kDnsPort},
                                 packet.dst(), resp.encode_pooled()));
      return;
    }
    case PendingAction::Kind::RelaySourceIp: {
      // msg 9 -> msg 10: the LRS asked COOKIE2, so the answer must come
      // from COOKIE2 (Fig. 2(b)).
      charge(config_.costs.transform);
      trace(obs::TraceEvent::kRewrite, packet);
      stats_.responses_relayed++;
      net::Packet out = packet;
      out.src_ip = action.reply_src;
      emit(std::move(out));
      return;
    }
  }
}

}  // namespace dnsguard::guard
