#include "sim/simulator.h"

#include <algorithm>

#include "sim/node.h"

namespace dnsguard::sim {
namespace {

std::uint64_t pair_key(const Node* a, const Node* b) {
  // Unordered pair of registration ids. Ids are assigned monotonically at
  // add_node() and stay well below 2^32, so packing (lo, hi) is
  // collision-free — and, unlike the pointer-derived key this replaces,
  // identical across reruns whatever the allocator does. A null node
  // (tests inject packets from outside the node graph) maps to the
  // reserved id 0, below every real registration.
  std::uint64_t ia = a ? a->sim_id() : 0;
  std::uint64_t ib = b ? b->sim_id() : 0;
  if (ia > ib) std::swap(ia, ib);
  return (ia << 32) | ib;
}

}  // namespace

Simulator::Simulator() {
  metrics_.attach_counter("sim.events_dispatched", events_dispatched_);
  metrics_.attach_gauge("sim.queue_depth", queue_depth_);
  metrics_.attach_counter("sim.net.packets_sent", stats_.packets_sent);
  metrics_.attach_counter("sim.net.packets_delivered",
                          stats_.packets_delivered);
  metrics_.attach_counter("sim.net.packets_dropped_no_route",
                          stats_.packets_dropped_no_route);
  metrics_.attach_counter("sim.net.packets_dropped_queue_full",
                          stats_.packets_dropped_queue_full);
  metrics_.attach_counter("sim.net.packets_dropped_loss",
                          stats_.packets_dropped_loss);
  metrics_.attach_counter("sim.net.bytes_sent", stats_.bytes_sent);
}

void Simulator::run_until(SimTime until) {
  // One inter-tick slice per event charges dispatch cost (heap pop, the
  // event body, queue bookkeeping) to sim.dispatch; node-level spans
  // opened inside the event nest under it via the pinned context.
  obs::prof::DispatchWindow prof_window;
  while (!queue_.empty() && queue_.next_time() <= until) {
    queue_.run_next(now_);
    ++events_dispatched_;
    queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    prof_window.tick();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  obs::prof::DispatchWindow prof_window;
  while (queue_.run_next(now_)) {
    ++events_dispatched_;
    queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    prof_window.tick();
  }
}

void Simulator::add_node(Node* node) {
  node->sim_id_ = next_node_id_++;
  nodes_.push_back(node);
}

void Simulator::remove_node(Node* node) {
  nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), node),
               nodes_.end());
  // Drop config referencing the departing node so a later node can never
  // observe it (as from-node, by id) or route through a dangling pointer
  // (as gateway, by value).
  gateways_.erase(node->sim_id_);
  std::erase_if(gateways_,
                [node](const auto& kv) { return kv.second == node; });
}

void Simulator::add_route(net::Ipv4Address prefix, int prefix_len,
                          Node* node) {
  routes_.push_back(Route{prefix.value(), prefix_len, node});
  std::stable_sort(routes_.begin(), routes_.end(),
                   [](const Route& a, const Route& b) {
                     return a.prefix_len > b.prefix_len;
                   });
}

void Simulator::remove_routes_to(Node* node) {
  std::erase_if(routes_, [node](const Route& r) { return r.node == node; });
}

Node* Simulator::route_lookup(net::Ipv4Address dst) const {
  for (const Route& r : routes_) {  // sorted longest-prefix first
    if (dst.in_subnet(net::Ipv4Address(r.prefix), r.prefix_len)) {
      return r.node;
    }
  }
  return nullptr;
}

void Simulator::set_latency(Node* a, Node* b, SimDuration one_way) {
  latency_[pair_key(a, b)] = one_way;
}

SimDuration Simulator::latency_between(const Node* a, const Node* b) const {
  auto it = latency_.find(pair_key(a, b));
  return it == latency_.end() ? default_latency_ : it->second;
}

void Simulator::set_gateway(Node* from, Node* gateway) {
  gateways_[from->sim_id()] = gateway;
}

void Simulator::clear_gateway(Node* from) {
  gateways_.erase(from->sim_id());
}

void Simulator::send_packet(Node* from, net::Packet packet) {
  stats_.packets_sent++;
  stats_.bytes_sent += packet.wire_size();
  if (from != nullptr) {
    auto gw = gateways_.find(from->sim_id());
    if (gw != gateways_.end()) {
      deliver_later(from, gw->second, std::move(packet));
      return;
    }
  }
  Node* to = route_lookup(packet.dst_ip);
  if (to == nullptr) {
    stats_.packets_dropped_no_route++;
    DG_LOG_TRACE("sim", "no route for %s", packet.dst_ip.to_string().c_str());
    return;
  }
  deliver_later(from, to, std::move(packet));
}

void Simulator::send_direct(Node* from, Node* to, net::Packet packet) {
  stats_.packets_sent++;
  stats_.bytes_sent += packet.wire_size();
  deliver_later(from, to, std::move(packet));
}

void Simulator::set_loss_rate(double p, std::uint64_t loss_seed) {
  loss_rate_ = p;
  loss_rng_.reseed(loss_seed);
}

void Simulator::start_timeseries(SimDuration window, std::size_t capacity) {
  timeseries_.start(metrics_, now_, window, capacity);
  schedule_sampler_tick(++timeseries_epoch_);
}

void Simulator::stop_timeseries() {
  timeseries_.stop();
  ++timeseries_epoch_;  // any already-scheduled tick becomes a no-op
}

void Simulator::schedule_sampler_tick(std::uint64_t epoch) {
  schedule_at(timeseries_.next_boundary(), [this, epoch] {
    if (epoch != timeseries_epoch_ || !timeseries_.running()) return;
    timeseries_.sample(now_);
    schedule_sampler_tick(epoch);
  });
}

std::vector<std::pair<std::string, const obs::TraceRing*>>
Simulator::trace_rings() const {
  std::vector<std::pair<std::string, const obs::TraceRing*>> out;
  out.reserve(nodes_.size());
  for (const Node* n : nodes_) {
    out.emplace_back(n->name(), &n->trace_ring());
  }
  return out;
}

namespace {

// Minimal string escape for embedding trace lines in JSON.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

obs::FlightRecorder& Simulator::flight_recorder() {
  if (!flightrec_wired_) {
    flightrec_wired_ = true;
    flightrec_.add_section("metrics", [this] { return metrics_.to_json(2); });
    flightrec_.add_section("timeseries",
                           [this] { return timeseries_.to_json(2); });
    flightrec_.add_section("trace_rings", [this] {
      std::string out = "{";
      bool first_node = true;
      for (const auto& [name, ring] : trace_rings()) {
        out += first_node ? "\n" : ",\n";
        first_node = false;
        out += "    \"" + json_escape(name) + "\": [";
        bool first_entry = true;
        for (const obs::TraceEntry& e : ring->entries()) {
          out += first_entry ? "\n" : ",\n";
          first_entry = false;
          out += "      \"" + json_escape(e.to_string()) + "\"";
        }
        out += first_entry ? "]" : "\n    ]";
      }
      out += first_node ? "}" : "\n  }";
      return out;
    });
    flightrec_.add_section("journeys", [this] {
      return journeys_.to_chrome_json(/*include_open=*/true);
    });
    // Wall-clock cost attribution (process-global: probes fire in layers
    // with no Simulator handle). A post-mortem of a wedged or slow run
    // then shows where host time went, next to what the sim state was.
    flightrec_.add_section("profile", [] {
      return obs::prof::profiler.report_json(/*measured_wall_ns=*/0.0, 2);
    });
  }
  return flightrec_;
}

void Simulator::deliver_later(Node* from, Node* to, net::Packet packet) {
  if (tap_) tap_(now_, from, to, packet);
  if (loss_rate_ > 0 && loss_rng_.chance(loss_rate_)) {
    stats_.packets_dropped_loss++;
    return;
  }
  SimDuration delay = latency_between(from, to);
  schedule_in(delay, [to, p = std::move(packet)]() mutable {
    to->deliver(std::move(p));
  });
}

}  // namespace dnsguard::sim
