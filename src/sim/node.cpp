#include "sim/node.h"

namespace dnsguard::sim {

void Node::trace(obs::TraceEvent event, const net::Packet& packet,
                 obs::DropReason reason) {
  std::uint16_t info = 0;
  if (packet.payload.size() >= 2) {
    info = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(packet.payload[0]) << 8) |
        packet.payload[1]);
  }
  trace_.record(now(), event, packet.src_ip.value(), packet.dst_ip.value(),
                info, reason);
}

void Node::enable_sharded_service(std::size_t lanes,
                                  std::size_t ring_capacity,
                                  std::size_t batch_max) {
  if (lanes == 0) lanes = 1;
  if (batch_max == 0) batch_max = 1;
  lanes_.clear();
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    lanes_.push_back(ShardLane{
        common::SpscRing<net::Packet>(ring_capacity), SimTime{},
        SimDuration{}, false});
  }
  batch_max_ = batch_max;
  batch_.resize(batch_max);
}

void Node::deliver_sharded(net::Packet packet) {
  const std::size_t lane_idx = shard_of(packet);
  ShardLane& lane = lanes_[lane_idx < lanes_.size() ? lane_idx : 0];
  if (lane.ring.full()) {
    stats_.dropped_queue_full++;
    sim_.mutable_stats().packets_dropped_queue_full++;
    trace(obs::TraceEvent::kQueueDrop, packet, obs::DropReason::kQueueFull);
    return;
  }
  stats_.rx++;
  sim_.mutable_stats().packets_delivered++;
  trace(obs::TraceEvent::kRx, packet);
  (void)lane.ring.try_push(std::move(packet));  // full() checked above
  maybe_schedule_lane(lane_idx < lanes_.size() ? lane_idx : 0);
}

void Node::maybe_schedule_lane(std::size_t lane_idx) {
  ShardLane& lane = lanes_[lane_idx];
  if (lane.scheduled || lane.ring.empty()) return;
  lane.scheduled = true;
  SimTime start = std::max(now(), lane.busy_until);
  sim_.schedule_at(start, [this, lane_idx] { serve_lane(lane_idx); });
}

void Node::serve_lane(std::size_t lane_idx) {
  ShardLane& lane = lanes_[lane_idx];
  lane.scheduled = false;
  std::size_t n = 0;
  while (n < batch_max_ && lane.ring.try_pop(batch_[n])) ++n;
  if (n == 0) return;

  // Attribute this burst's spans (batch pre-pass, per-packet process) to
  // this lane's profiler cells; merged again only at report time.
  obs::prof::LaneScope prof_lane(lane_idx);
  in_batch_ = true;
  on_batch_begin(lane_idx, batch_.data(), n);

  // The burst is classified at one sim instant, but each packet's service
  // cost advances the lane clock and its emissions leave at its own
  // completion time — the same release discipline as the sequential path.
  SimTime t = std::max(now(), lane.busy_until);
  for (std::size_t k = 0; k < n; ++k) {
    batch_index_ = k;
    in_process_ = true;
    SimDuration cost;
    {
      DNSGUARD_PROF_SCOPE(prof_stage_);
      cost = process(batch_[k]);
    }
    in_process_ = false;
    batch_[k].release_payload();
    if (cost.ns < 0) cost.ns = 0;
    stats_.busy = stats_.busy + cost;
    lane.busy = lane.busy + cost;
    t = t + cost;
    if (!outbox_.empty()) flush_outbox_at(t);
  }
  lane.busy_until = t;
  on_batch_end(lane_idx, n);
  in_batch_ = false;

  maybe_schedule_lane(lane_idx);
}

void Node::flush_outbox_at(SimTime at) {
  auto sends = std::move(outbox_);
  outbox_.clear();
  sim_.schedule_at(at, [this, sends = std::move(sends)]() mutable {
    DNSGUARD_PROF_SCOPE(obs::prof::Stage::kOutboxFlush);
    for (auto& s : sends) {
      stats_.tx++;
      trace(obs::TraceEvent::kTx, s.packet);
      if (s.direct_to != nullptr) {
        sim_.send_direct(this, s.direct_to, std::move(s.packet));
      } else {
        sim_.send_packet(this, std::move(s.packet));
      }
    }
  });
}

void Node::deliver(net::Packet packet) {
  if (!lanes_.empty()) {
    deliver_sharded(std::move(packet));
    return;
  }
  if (rx_queue_.size() >= rx_capacity_) {
    stats_.dropped_queue_full++;
    sim_.mutable_stats().packets_dropped_queue_full++;
    trace(obs::TraceEvent::kQueueDrop, packet, obs::DropReason::kQueueFull);
    return;
  }
  stats_.rx++;
  sim_.mutable_stats().packets_delivered++;
  trace(obs::TraceEvent::kRx, packet);
  // DNSGUARD_LINT_ALLOW(alloc): deque push moves the packet (payloads are
  // pooled); the queue is capped at rx_capacity_ so its chunk storage
  // reaches steady state after warmup
  rx_queue_.push_back(std::move(packet));
  maybe_schedule_service();
}

void Node::maybe_schedule_service() {
  if (service_scheduled_ || rx_queue_.empty()) return;
  service_scheduled_ = true;
  SimTime start = std::max(now(), busy_until_);
  sim_.schedule_at(start, [this] { service_one(); });
}

void Node::service_one() {
  service_scheduled_ = false;
  if (rx_queue_.empty()) return;
  net::Packet packet = std::move(rx_queue_.front());
  rx_queue_.pop_front();

  in_process_ = true;
  SimDuration cost;
  {
    DNSGUARD_PROF_SCOPE(prof_stage_);
    cost = process(packet);
  }
  in_process_ = false;
  // The packet is consumed: recycle its payload buffer for the encode
  // paths (handlers that keep the packet copy it, payload included).
  packet.release_payload();
  if (cost.ns < 0) cost.ns = 0;

  stats_.busy = stats_.busy + cost;
  busy_until_ = now() + cost;

  // Packets emitted during process() leave when the service time elapses.
  if (!outbox_.empty()) flush_outbox_at(busy_until_);

  maybe_schedule_service();
}

void Node::send(net::Packet packet) {
  if (in_process_) {
    outbox_.push_back(PendingSend{nullptr, std::move(packet)});
  } else {
    // Sends from timer callbacks leave immediately (the timer already
    // accounted for any think-time).
    stats_.tx++;
    trace(obs::TraceEvent::kTx, packet);
    sim_.send_packet(this, std::move(packet));
  }
}

void Node::send_direct(Node* to, net::Packet packet) {
  if (in_process_) {
    outbox_.push_back(PendingSend{to, std::move(packet)});
  } else {
    stats_.tx++;
    trace(obs::TraceEvent::kTx, packet);
    sim_.send_direct(this, to, std::move(packet));
  }
}

}  // namespace dnsguard::sim
