// Discrete-event engine: a time-ordered queue of callbacks.
//
// Ties are broken by insertion sequence so the simulation is fully
// deterministic: two events scheduled for the same instant always fire in
// the order they were scheduled.
//
// Implementation: the ordering lives in a 4-ary heap of 16-byte
// (time, seq|slot) keys laid out in one vector, while each event's
// callback sits in a slot pool of small-buffer-optimized InplaceFunctions.
// Slots are allocated in fixed 256-entry chunks whose addresses never
// change, so schedule() constructs the callable directly in its final
// resting place and run_next() invokes it right there — the capture is
// written once and never copied again. Sift operations shuffle
// trivially-copyable keys only. Scheduling costs zero heap allocations in
// steady state: the key vector and chunk pool never shrink, freed slots
// are recycled LIFO (so the hottest slot is reused first), inline captures
// live in the slot itself, and the rare oversized capture draws from a
// slab freelist (common/pool.h). The 4-ary shape halves the tree depth of
// a binary heap, which matters when the simulator is draining ~10^7 events
// per second.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/inplace_function.h"
#include "common/time.h"

namespace dnsguard::sim {

// 120-byte inline capacity + 8-byte vtable pointer, over-aligned to 64:
// sizeof(EventFn) == 128 and every slot covers exactly two cache lines
// (both prefetched before invocation).
using EventFn = InplaceFunction<void(), 120, 64>;
static_assert(sizeof(EventFn) == 128 && alignof(EventFn) == 64);

/// Sentinel returned by next_time() on an empty queue: later than any
/// schedulable instant, so `next_time() <= until` loops terminate naturally.
inline constexpr SimTime kNoEventTime{std::numeric_limits<std::int64_t>::max()};

class EventQueue {
 public:
  EventQueue() { heap_.resize(kRoot); }  // indices 0..2 are padding

  /// Schedules `fn` (any callable, built in place in its slot) to run at
  /// absolute time `at`. Events in the past are clamped to "now" by the
  /// Simulator before reaching here.
  template <typename F>
  void schedule(SimTime at, F&& fn) {
    const std::uint32_t s = acquire_slot();
    slot(s) = std::forward<F>(fn);
    // DNSGUARD_LINT_ALLOW(alloc): heap vector reaches steady-state
    // capacity after warmup and push_back then never reallocates; slots
    // recycle through the free list (DESIGN.md section 7)
    heap_.push_back(make_key(at, (next_seq_++ << kSlotBits) | s));
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] bool empty() const { return heap_.size() == kRoot; }
  [[nodiscard]] std::size_t size() const { return heap_.size() - kRoot; }

  /// Earliest scheduled instant, or kNoEventTime if the queue is empty
  /// (the old implementation hit UB via heap_.top() here).
  [[nodiscard]] SimTime next_time() const {
    return empty() ? kNoEventTime : key_time(heap_[kRoot]);
  }

  /// Pops the earliest event, stores its instant in `at_out`, and invokes
  /// its callback in place — no move out of the slot. Returns false (and
  /// leaves `at_out` untouched) on an empty queue. The callback may
  /// schedule further events (chunked slots never move), but must not
  /// re-enter run_next()/pop(). This is the Simulator's drain primitive;
  /// `at_out` is typically the simulator clock, updated before the event
  /// body runs.
  bool run_next(SimTime& at_out) {
    if (empty()) return false;
    const std::uint32_t s = pop_key(at_out);
    EventFn& fn = slot(s);
    fn();
    fn.reset();
    free_.push_back(s);
    return true;
  }

  /// Removes and returns the earliest event's callback without running it.
  /// On an empty queue returns a null callback (check with `if (fn)`)
  /// instead of corrupting the heap.
  EventFn pop(SimTime& at_out) {
    if (empty()) {
      at_out = kNoEventTime;
      return EventFn{};
    }
    const std::uint32_t s = pop_key(at_out);
    EventFn fn = std::move(slot(s));  // leaves the slot null
    free_.push_back(s);
    return fn;
  }

  /// Pre-grows the key vector and slot freelist (benchmarks; optional).
  void reserve(std::size_t n) {
    heap_.reserve(n + kRoot);
    free_.reserve(n);
  }

 private:
  // 16-byte heap key: `hi` is the event time with the sign bit flipped
  // (so signed time order matches unsigned order) and `lo` is
  // seq<<24 | slot. Comparing (hi, lo) lexicographically orders by
  // (time, seq) — no two events share a seq, so the slot bits never
  // decide. The two-word branchy compare beats a single 128-bit compare
  // here: times almost always differ, so the first branch predicts nearly
  // perfectly and the lo word is rarely even loaded. 24 slot bits bound
  // pending events at 16.7M (≈2 GB of slots — far beyond any simulation
  // here); 40 seq bits wrap after 10^12 events, and a wrap could only
  // reorder same-instant events scheduled astride it.
  struct Key {
    std::uint64_t hi;  // sign-flipped at_ns
    std::uint64_t lo;  // seq_slot
  };
  static Key make_key(SimTime at, std::uint64_t seq_slot) {
    return Key{static_cast<std::uint64_t>(at.ns) ^ (1ull << 63), seq_slot};
  }
  static SimTime key_time(Key k) {
    return SimTime{static_cast<std::int64_t>(k.hi ^ (1ull << 63))};
  }
  static std::uint32_t key_slot(Key k) {
    return static_cast<std::uint32_t>(k.lo & kSlotMask);
  }
  static bool before(const Key& a, const Key& b) {
    if (a.hi != b.hi) return a.hi < b.hi;
    return a.lo < b.lo;
  }
  static_assert(sizeof(Key) == 16);

  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  // The root lives at physical index 3 so every 4-key sibling group starts
  // at an index ≡ 0 (mod 4): with 16-byte keys and the heap vector's
  // 64-byte-aligned storage, one sibling group == one cache line, and a
  // sift touches one line per level. children(p) = 4p-8 .. 4p-5;
  // parent(c) = (c+8)/4.
  static constexpr std::size_t kRoot = 3;

  static void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p);
    __builtin_prefetch(static_cast<const char*>(p) + 64);
#else
    (void)p;
#endif
  }

  [[nodiscard]] EventFn& slot(std::uint32_t s) {
    return chunks_[s >> kChunkShift][s & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot() {
    if (!free_.empty()) {
      const std::uint32_t s = free_.back();
      free_.pop_back();
      return s;
    }
    if ((slot_count_ >> kChunkShift) == chunks_.size()) {
      chunks_.push_back(std::make_unique<EventFn[]>(kChunkSize));
    }
    return slot_count_++;
  }

  /// Removes the heap root, returning its slot index via the return value
  /// and its instant via `at_out`. Caller guarantees non-empty.
  std::uint32_t pop_key(SimTime& at_out) {
    const Key top = heap_[kRoot];
    at_out = key_time(top);
    const std::uint32_t s = key_slot(top);
    // The slot was written a full window ago and is usually cache-cold by
    // now; start the fetch so it overlaps the sift below.
    prefetch(&slot(s));
    heap_[kRoot] = heap_.back();
    heap_.pop_back();
    if (!empty()) sift_down(kRoot);
    return s;
  }

  void sift_up(std::size_t i) {
    if (i == kRoot) return;
    const Key k = heap_[i];
    while (i > kRoot) {
      const std::size_t parent = (i + 8) >> 2;
      if (!before(k, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = k;
  }

  // Bottom-up variant: the reseated key comes from the heap's last slot,
  // so it almost always belongs near the leaves. Sinking the hole all the
  // way down first (3 compares/level) and then floating the key back up
  // (rarely more than one level) beats the textbook loop's 4 compares per
  // level.
  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    const Key k = heap_[i];
    std::size_t hole = i;
    while (true) {
      const std::size_t first = 4 * hole - 8;
      std::size_t best;
      if (first + 4 <= n) {
        // Full sibling group (the common case): a 2+1 tournament. The two
        // first-round compares are independent, so they overlap instead of
        // forming the serial loop's three-deep dependency chain.
        const std::size_t a =
            first + (before(heap_[first + 1], heap_[first]) ? 1 : 0);
        const std::size_t b =
            first + 2 + (before(heap_[first + 3], heap_[first + 2]) ? 1 : 0);
        best = before(heap_[b], heap_[a]) ? b : a;
      } else if (first < n) {
        best = first;
        for (std::size_t c = first + 1; c < n; ++c) {
          if (before(heap_[c], heap_[best])) best = c;
        }
      } else {
        break;
      }
      heap_[hole] = heap_[best];
      hole = best;
    }
    while (hole > i) {
      const std::size_t parent = (hole + 8) >> 2;
      if (!before(k, heap_[parent])) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = k;
  }

  // 4-ary min-heap of keys; root at kRoot, cache-line-aligned groups.
  std::vector<Key, CacheAlignedAlloc<Key>> heap_;
  std::vector<std::unique_ptr<EventFn[]>> chunks_;  // stable slot storage
  std::vector<std::uint32_t> free_;  // recycled slot indices, LIFO
  std::uint32_t slot_count_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dnsguard::sim
