// Discrete-event engine: a time-ordered queue of callbacks.
//
// Ties are broken by insertion sequence so the simulation is fully
// deterministic: two events scheduled for the same instant always fire in
// the order they were scheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.h"

namespace dnsguard::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` to run at absolute time `at`. Events in the past are
  /// clamped to "now" by the Simulator before reaching here.
  void schedule(SimTime at, EventFn fn);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] SimTime next_time() const { return heap_.top().at; }

  /// Removes and returns the earliest event's callback, advancing nothing
  /// itself — the Simulator owns the clock.
  EventFn pop(SimTime& at_out);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    // Shared rather than unique so Entry stays copyable for the heap.
    std::shared_ptr<EventFn> fn;

    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dnsguard::sim
