// Node: a simulated machine with one CPU and a bounded receive queue.
//
// The CPU cost model is the heart of the reproduction: every throughput
// and CPU-utilization curve in the paper's evaluation (Figs. 5-7) emerges
// from nodes whose packet handlers charge calibrated service times.
//
// Service discipline: packets wait in a FIFO receive queue; the CPU serves
// one packet at a time; a handler returns the CPU cost it consumed, and any
// packets it emitted leave the node when that service time completes. When
// the receive queue is full, arrivals are dropped — which is what pushes a
// saturated BIND server's goodput off a cliff in Fig. 5.
//
// Shard-per-core mode (enable_sharded_service): the node models N
// independent cores, each fed by a fixed-capacity SPSC ring. deliver()
// routes arrivals by the subclass's shard_of(); each lane drains its ring
// in bursts of up to batch_max packets, with its own busy clock.
// Determinism rules: the simulator is single-threaded, lane service
// events tie-break in schedule order (EventQueue FIFO at equal
// timestamps), a burst is processed at one sim instant, and every
// packet's emissions are released at that packet's own completion time on
// its lane — so a 1-lane node below saturation behaves exactly like the
// sequential discipline, and N-lane runs are bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/spsc_ring.h"
#include "common/time.h"
#include "net/packet.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace dnsguard::sim {

/// Per-node counters. `busy` accumulates CPU service time; utilization over
/// a measurement window is busy_delta / window.
struct NodeStats {
  obs::Counter rx;
  obs::Counter tx;
  obs::Counter dropped_queue_full;
  SimDuration busy{};
};

class Node {
 public:
  explicit Node(Simulator& sim, std::string name,
                std::size_t rx_queue_capacity = 4096)
      : sim_(sim), name_(std::move(name)), rx_capacity_(rx_queue_capacity) {
    sim_.add_node(this);
  }
  virtual ~Node() { sim_.remove_node(this); }
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Stable registration id assigned by Simulator::add_node (monotonic,
  /// never reused). All simulator-side per-node config (gateways, latency
  /// pairs) keys on this instead of the node's address, so reruns are
  /// independent of heap layout.
  [[nodiscard]] std::uint64_t sim_id() const { return sim_id_; }
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const Simulator& sim() const { return sim_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = NodeStats{};
    for (auto& lane : lanes_) lane.busy = SimDuration{};
  }

  /// CPU utilization between `reset_stats()` (or construction) and now,
  /// given the elapsed window length.
  [[nodiscard]] double utilization(SimDuration window) const {
    if (window.ns <= 0) return 0.0;
    return static_cast<double>(stats_.busy.ns) /
           static_cast<double>(window.ns);
  }

  /// Entry point used by the Simulator: enqueue an arriving packet.
  void deliver(net::Packet packet);

  [[nodiscard]] std::size_t rx_queue_depth() const {
    if (!lanes_.empty()) {
      std::size_t total = 0;
      for (const auto& lane : lanes_) total += lane.ring.size();
      return total;
    }
    return rx_queue_.size();
  }

  /// Number of shard lanes (0 when the node runs the classic sequential
  /// discipline).
  [[nodiscard]] std::size_t shard_lane_count() const { return lanes_.size(); }
  /// CPU time accumulated by one lane since the last reset_stats().
  [[nodiscard]] SimDuration shard_busy(std::size_t lane) const {
    return lanes_[lane].busy;
  }

  /// The node's packet-lifecycle trace ring (rx -> classify -> rewrite /
  /// drop -> tx). Bounded, always on, dumpable on test failure:
  ///   EXPECT_EQ(...) << node.trace_ring().dump(node.name());
  [[nodiscard]] const obs::TraceRing& trace_ring() const { return trace_; }
  obs::TraceRing& mutable_trace_ring() { return trace_; }

 protected:
  /// Handles one packet. Implementations do their protocol work, emit
  /// packets via `send()` / `send_direct()`, and return the CPU time the
  /// work cost. Emitted packets leave the node when that time has elapsed.
  virtual SimDuration process(const net::Packet& packet) = 0;

  // --- shard-per-core service (opt-in) -------------------------------------

  /// Switches this node to N shard lanes, each a `ring_capacity` SPSC ring
  /// drained in bursts of up to `batch_max` packets. Call once, from the
  /// subclass constructor, before any packet is delivered.
  void enable_sharded_service(std::size_t lanes, std::size_t ring_capacity,
                              std::size_t batch_max);

  /// Maps an arriving packet to a lane index in [0, shard_lane_count()).
  /// Must be a pure function of the packet (determinism).
  [[nodiscard]] virtual std::size_t shard_of(const net::Packet&) const {
    return 0;
  }

  /// Batch hooks: a lane's burst of `n` packets is announced before the
  /// per-packet process() calls and closed after them. Subclasses use
  /// them to prefetch state, pre-verify cookies in bulk and amortize
  /// metric updates; the default is a no-op.
  virtual void on_batch_begin(std::size_t lane, const net::Packet* batch,
                              std::size_t n) {
    (void)lane;
    (void)batch;
    (void)n;
  }
  virtual void on_batch_end(std::size_t lane, std::size_t n) {
    (void)lane;
    (void)n;
  }

  /// True while a shard burst is being processed; batch_index() is the
  /// current packet's position within it (matches the `batch` array the
  /// hooks saw).
  [[nodiscard]] bool in_batch() const { return in_batch_; }
  [[nodiscard]] std::size_t batch_index() const { return batch_index_; }

  /// Emits a packet into the routed network (released at service end).
  void send(net::Packet packet);
  /// Emits a packet on a private wire to a specific peer.
  void send_direct(Node* to, net::Packet packet);

  /// Schedules a timer callback (timers model OS timers: no CPU charge).
  template <typename F>
  void schedule_in(SimDuration delay, F&& fn) {
    sim_.schedule_in(delay, std::forward<F>(fn));
  }

  [[nodiscard]] SimTime now() const { return sim_.now(); }

  /// Records a lifecycle event for `packet` in the trace ring. `info` is
  /// the DNS id when the payload carries one (first two payload bytes).
  void trace(obs::TraceEvent event, const net::Packet& packet,
             obs::DropReason reason = obs::DropReason::kNone);

  /// Tags this node's process() spans in the wall-clock profiler (e.g.
  /// kGuardService). Call from the subclass constructor; the default
  /// lumps the node under the generic node.service stage.
  void set_profile_stage(obs::prof::Stage stage) { prof_stage_ = stage; }

 private:
  friend class Simulator;  // assigns sim_id_ at registration

  struct PendingSend {
    Node* direct_to;  // nullptr => routed send
    net::Packet packet;
  };

  struct ShardLane {
    common::SpscRing<net::Packet> ring;
    SimTime busy_until{};
    SimDuration busy{};
    bool scheduled = false;
  };

  void maybe_schedule_service();
  void service_one();
  void deliver_sharded(net::Packet packet);
  void maybe_schedule_lane(std::size_t lane);
  void serve_lane(std::size_t lane);
  void flush_outbox_at(SimTime at);

  Simulator& sim_;
  std::uint64_t sim_id_ = 0;
  std::string name_;
  std::size_t rx_capacity_;
  std::deque<net::Packet> rx_queue_;
  std::vector<PendingSend> outbox_;
  SimTime busy_until_{};
  bool service_scheduled_ = false;
  bool in_process_ = false;
  std::vector<ShardLane> lanes_;       // empty => classic discipline
  std::vector<net::Packet> batch_;     // burst scratch, sized batch_max
  std::size_t batch_max_ = 0;
  std::size_t batch_index_ = 0;
  bool in_batch_ = false;
  obs::prof::Stage prof_stage_ = obs::prof::Stage::kNodeService;
  NodeStats stats_;
  obs::TraceRing trace_{128};
};

}  // namespace dnsguard::sim
