// Node: a simulated machine with one CPU and a bounded receive queue.
//
// The CPU cost model is the heart of the reproduction: every throughput
// and CPU-utilization curve in the paper's evaluation (Figs. 5-7) emerges
// from nodes whose packet handlers charge calibrated service times.
//
// Service discipline: packets wait in a FIFO receive queue; the CPU serves
// one packet at a time; a handler returns the CPU cost it consumed, and any
// packets it emitted leave the node when that service time completes. When
// the receive queue is full, arrivals are dropped — which is what pushes a
// saturated BIND server's goodput off a cliff in Fig. 5.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "common/time.h"
#include "net/packet.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace dnsguard::sim {

/// Per-node counters. `busy` accumulates CPU service time; utilization over
/// a measurement window is busy_delta / window.
struct NodeStats {
  obs::Counter rx;
  obs::Counter tx;
  obs::Counter dropped_queue_full;
  SimDuration busy{};
};

class Node {
 public:
  explicit Node(Simulator& sim, std::string name,
                std::size_t rx_queue_capacity = 4096)
      : sim_(sim), name_(std::move(name)), rx_capacity_(rx_queue_capacity) {
    sim_.add_node(this);
  }
  virtual ~Node() { sim_.remove_node(this); }
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const Simulator& sim() const { return sim_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NodeStats{}; }

  /// CPU utilization between `reset_stats()` (or construction) and now,
  /// given the elapsed window length.
  [[nodiscard]] double utilization(SimDuration window) const {
    if (window.ns <= 0) return 0.0;
    return static_cast<double>(stats_.busy.ns) /
           static_cast<double>(window.ns);
  }

  /// Entry point used by the Simulator: enqueue an arriving packet.
  void deliver(net::Packet packet);

  [[nodiscard]] std::size_t rx_queue_depth() const { return rx_queue_.size(); }

  /// The node's packet-lifecycle trace ring (rx -> classify -> rewrite /
  /// drop -> tx). Bounded, always on, dumpable on test failure:
  ///   EXPECT_EQ(...) << node.trace_ring().dump(node.name());
  [[nodiscard]] const obs::TraceRing& trace_ring() const { return trace_; }
  obs::TraceRing& mutable_trace_ring() { return trace_; }

 protected:
  /// Handles one packet. Implementations do their protocol work, emit
  /// packets via `send()` / `send_direct()`, and return the CPU time the
  /// work cost. Emitted packets leave the node when that time has elapsed.
  virtual SimDuration process(const net::Packet& packet) = 0;

  /// Emits a packet into the routed network (released at service end).
  void send(net::Packet packet);
  /// Emits a packet on a private wire to a specific peer.
  void send_direct(Node* to, net::Packet packet);

  /// Schedules a timer callback (timers model OS timers: no CPU charge).
  template <typename F>
  void schedule_in(SimDuration delay, F&& fn) {
    sim_.schedule_in(delay, std::forward<F>(fn));
  }

  [[nodiscard]] SimTime now() const { return sim_.now(); }

  /// Records a lifecycle event for `packet` in the trace ring. `info` is
  /// the DNS id when the payload carries one (first two payload bytes).
  void trace(obs::TraceEvent event, const net::Packet& packet,
             obs::DropReason reason = obs::DropReason::kNone);

 private:
  struct PendingSend {
    Node* direct_to;  // nullptr => routed send
    net::Packet packet;
  };

  void maybe_schedule_service();
  void service_one();

  Simulator& sim_;
  std::string name_;
  std::size_t rx_capacity_;
  std::deque<net::Packet> rx_queue_;
  std::vector<PendingSend> outbox_;
  SimTime busy_until_{};
  bool service_scheduled_ = false;
  bool in_process_ = false;
  NodeStats stats_;
  obs::TraceRing trace_{128};
};

}  // namespace dnsguard::sim
