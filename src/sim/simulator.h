// The Simulator: virtual clock + event queue + network routing.
//
// Topology model (matching the paper's testbed, §IV.A): nodes own IPv4
// addresses or whole subnets, and the network delivers each packet to the
// owner of the longest matching prefix. That prefix rule is exactly how the
// remote DNS guard "intercepts all traffic to 1.2.3.0/24" in front of the
// ANS — the guard registers the subnet, the ANS registers nothing publicly,
// and the guard forwards to the ANS over a private node-to-node link.
//
// Propagation delay is configured per node pair (one-way), with a global
// default; CPU/queueing delay lives in Node (node.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "common/time.h"
#include "net/packet.h"
#include "obs/anomaly.h"
#include "obs/journey.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace dnsguard::sim {

class Node;

/// Global packet-conservation counters (also used by property tests:
/// sent == delivered + dropped at all times once the queue drains). The
/// cells are obs::Counter so the simulator's registry exports them
/// without a copy; they still read and increment like plain uint64s.
struct NetworkStats {
  obs::Counter packets_sent;
  obs::Counter packets_delivered;
  obs::Counter packets_dropped_no_route;
  obs::Counter packets_dropped_queue_full;
  obs::Counter packets_dropped_loss;  // injected in-flight loss
  obs::Counter bytes_sent;
};

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` after `delay` (clamped to now for non-negative flow).
  /// Templated so the callable is constructed directly in its event slot
  /// (EventQueue::schedule) instead of transiting an EventFn temporary.
  template <typename F>
  void schedule_in(SimDuration delay, F&& fn) {
    if (delay.ns < 0) delay.ns = 0;
    queue_.schedule(now_ + delay, std::forward<F>(fn));
  }
  template <typename F>
  void schedule_at(SimTime at, F&& fn) {
    if (at < now_) at = now_;
    queue_.schedule(at, std::forward<F>(fn));
  }

  /// Number of scheduled-but-not-yet-fired events (observability; also
  /// how the scheduler benchmark picks a representative standing window).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Runs until the queue is empty or `until` is reached.
  void run_until(SimTime until);
  void run_for(SimDuration d) { run_until(now_ + d); }
  /// Runs until the event queue drains completely.
  void run_all();

  // --- topology -----------------------------------------------------------

  /// Registers a node; the simulator does not own it. Node's constructor
  /// and destructor call these, so `trace_rings()` always reflects the
  /// live set and never dangles.
  void add_node(Node* node);
  void remove_node(Node* node);

  /// Routes every packet destined to `prefix`/`prefix_len` to `node`.
  /// Longest prefix wins; a /32 route is a plain host address.
  void add_route(net::Ipv4Address prefix, int prefix_len, Node* node);
  void add_host_route(net::Ipv4Address addr, Node* node) {
    add_route(addr, 32, node);
  }
  /// Removes all routes pointing at `node` (used when a guard is switched
  /// from router mode back to pass-through).
  void remove_routes_to(Node* node);

  /// Routes ALL packets originating at `from` through `gateway` instead of
  /// prefix routing — how a protected ANS sits behind the DNS guard in
  /// router mode: its responses transit (and are charged to) the guard.
  void set_gateway(Node* from, Node* gateway);
  void clear_gateway(Node* from);

  /// Sets the one-way propagation delay between two nodes (symmetric).
  void set_latency(Node* a, Node* b, SimDuration one_way);
  void set_default_latency(SimDuration one_way) { default_latency_ = one_way; }
  [[nodiscard]] SimDuration latency_between(const Node* a, const Node* b) const;

  /// Failure injection: each accepted packet is independently dropped in
  /// flight with this probability (deterministic given `loss_seed`).
  /// Exercises the recovery machinery — resolver retransmission, driver
  /// timeouts, TCP stalls and reaping.
  void set_loss_rate(double p, std::uint64_t loss_seed = 0x10551055ULL);

  // --- traffic ------------------------------------------------------------

  /// Injects a packet from `from` into the network at the current time;
  /// it arrives at the routed destination after the propagation delay.
  void send_packet(Node* from, net::Packet packet);

  /// Delivers directly to a specific node (private guard<->ANS wire),
  /// bypassing prefix routing but still paying propagation delay.
  void send_direct(Node* from, Node* to, net::Packet packet);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  NetworkStats& mutable_stats() { return stats_; }

  /// The simulation-wide metric directory. Every node attaches its stats
  /// cells here at construction; benches snapshot it into BENCH_*.json.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

  // --- observability ------------------------------------------------------

  /// The shared query-journey tracker (journey.h). Disabled by default —
  /// node wiring costs one branch per mark; call journeys().enable() to
  /// start recording.
  [[nodiscard]] obs::JourneyTracker& journeys() { return journeys_; }
  [[nodiscard]] const obs::JourneyTracker& journeys() const {
    return journeys_;
  }

  /// Starts the periodic counter sampler: a window closes every `window`
  /// of sim time from now on. The boundary event reads counters and
  /// charges no node CPU, so virtual-time results are unchanged — but it
  /// keeps the event queue non-empty: pair with run_until()/run_for(), or
  /// call stop_timeseries() before run_all(). Restarting supersedes any
  /// previous schedule.
  void start_timeseries(SimDuration window = seconds(1),
                        std::size_t capacity = 1024);
  void stop_timeseries();
  [[nodiscard]] obs::TimeSeriesSampler& timeseries() { return timeseries_; }
  [[nodiscard]] const obs::TimeSeriesSampler& timeseries() const {
    return timeseries_;
  }

  /// Name + trace ring of every registered node (flight recorder, tests).
  [[nodiscard]] std::vector<std::pair<std::string, const obs::TraceRing*>>
  trace_rings() const;

  /// The post-mortem dumper, lazily wired with "metrics", "timeseries",
  /// "trace_rings" and "journeys" sections over this simulator's state.
  /// flight_recorder().dump("label", now()) writes one JSON file.
  [[nodiscard]] obs::FlightRecorder& flight_recorder();

  /// Observation tap: invoked for every packet accepted into the network
  /// (after routing/gateway resolution, before propagation delay). Used
  /// by tests and the walkthrough example; keep it cheap or unset.
  using TapFn =
      std::function<void(SimTime, const Node* from, const Node* to,
                         const net::Packet&)>;
  void set_tap(TapFn tap) { tap_ = std::move(tap); }
  void clear_tap() { tap_ = nullptr; }

  /// Finds the owner node for an address (nullptr if unrouted).
  [[nodiscard]] Node* route_lookup(net::Ipv4Address dst) const;

 private:
  struct Route {
    std::uint32_t prefix;
    int prefix_len;
    Node* node;
  };

  void deliver_later(Node* from, Node* to, net::Packet packet);
  void schedule_sampler_tick(std::uint64_t epoch);

  SimTime now_{};
  EventQueue queue_;
  obs::MetricsRegistry metrics_;
  obs::Counter events_dispatched_;
  obs::Gauge queue_depth_;
  std::vector<Node*> nodes_;
  std::vector<Route> routes_;  // kept sorted by descending prefix_len
  // Gateway/latency config is keyed by registration id (Node::sim_id),
  // never by pointer value: ids are monotonic and never reused, so a
  // rerun assigns identical keys regardless of heap layout, and a new
  // node can never alias config left behind by a destroyed one.
  std::uint64_t next_node_id_ = 1;
  std::unordered_map<std::uint64_t, Node*> gateways_;
  std::unordered_map<std::uint64_t, SimDuration> latency_;
  SimDuration default_latency_ = microseconds(200);  // 0.4 ms RTT default
  NetworkStats stats_;
  TapFn tap_;
  double loss_rate_ = 0.0;
  Rng loss_rng_;
  obs::JourneyTracker journeys_;
  obs::TimeSeriesSampler timeseries_;
  std::uint64_t timeseries_epoch_ = 0;  // orphans superseded tick events
  obs::FlightRecorder flightrec_;
  bool flightrec_wired_ = false;
};

}  // namespace dnsguard::sim
