#include "sim/event_queue.h"

namespace dnsguard::sim {

void EventQueue::schedule(SimTime at, EventFn fn) {
  heap_.push(Entry{at, next_seq_++, std::make_shared<EventFn>(std::move(fn))});
}

EventFn EventQueue::pop(SimTime& at_out) {
  Entry e = heap_.top();
  heap_.pop();
  at_out = e.at;
  return std::move(*e.fn);
}

}  // namespace dnsguard::sim
