// MD5 message digest (RFC 1321), implemented from scratch.
//
// The paper computes each requester's cookie as c = MD5(key || source_ip)
// with a 76-byte secret key, and argues the cookie checker must be fast
// enough to sustain attack-rate traffic. This is a straightforward,
// allocation-free implementation; `bench/ablation_cookie_cost` measures its
// throughput.
//
// MD5 is used here exactly as the paper uses it — as a keyed one-way
// function for cookie generation, not for collision-resistant signing.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace dnsguard::crypto {

using Md5Digest = std::array<std::uint8_t, 16>;

/// Incremental MD5 context: init → update* → finish.
class Md5 {
 public:
  Md5() { reset(); }

  void reset();
  void update(BytesView data);
  void update(std::string_view data);
  /// Finalizes and returns the digest. The context must be reset() before
  /// further use.
  [[nodiscard]] Md5Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Md5Digest hash(BytesView data);
  [[nodiscard]] static Md5Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[4]{};
  std::uint64_t length_ = 0;  // total message length in bytes
  std::uint8_t buffer_[64]{};
  std::size_t buffered_ = 0;
};

}  // namespace dnsguard::crypto
