#include "crypto/md5.h"

#include <cstring>

namespace dnsguard::crypto {
namespace {

// Per-round shift amounts (RFC 1321 §3.4).
constexpr std::uint32_t kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * |sin(i + 1)|) (RFC 1321 §3.4).
constexpr std::uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

std::uint32_t rotl(std::uint32_t x, std::uint32_t c) {
  return (x << c) | (x >> (32 - c));
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

void Md5::reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
  length_ = 0;
  buffered_ = 0;
}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = load_le32(block + i * 4);

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];

  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(BytesView data) {
  length_ += data.size();
  std::size_t off = 0;

  if (buffered_ > 0) {
    std::size_t need = 64 - buffered_;
    std::size_t take = std::min(need, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    off = take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }

  while (off + 64 <= data.size()) {
    process_block(data.data() + off);
    off += 64;
  }

  if (off < data.size()) {
    std::memcpy(buffer_, data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

void Md5::update(std::string_view data) {
  update(BytesView(reinterpret_cast<const std::uint8_t*>(data.data()),
                   data.size()));
}

Md5Digest Md5::finish() {
  // Append 0x80, pad with zeros to 56 mod 64, then the 64-bit bit length
  // little-endian.
  std::uint64_t bit_length = length_ * 8;
  std::uint8_t pad[72];
  std::size_t pad_len = (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  store_le32(pad + pad_len, static_cast<std::uint32_t>(bit_length));
  store_le32(pad + pad_len + 4, static_cast<std::uint32_t>(bit_length >> 32));
  update(BytesView(pad, pad_len + 8));

  Md5Digest digest;
  for (int i = 0; i < 4; ++i) store_le32(digest.data() + i * 4, state_[i]);
  return digest;
}

Md5Digest Md5::hash(BytesView data) {
  Md5 ctx;
  ctx.update(data);
  return ctx.finish();
}

Md5Digest Md5::hash(std::string_view data) {
  Md5 ctx;
  ctx.update(data);
  return ctx.finish();
}

}  // namespace dnsguard::crypto
