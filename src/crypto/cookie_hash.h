// The paper's cookie construction (§III.E):
//
//   c = MD5(key || source_ip)
//
// where `key` is a 76-byte per-guard secret and source_ip the 4-byte
// requester address, giving an 80-byte MD5 input and a 16-byte cookie.
// Key distribution is unnecessary: only the guard verifies cookies.
//
// Key rotation (§III.E last paragraph) overloads the first cookie *bit*
// as a generation indicator: cookies minted under generation g carry bit
// g % 2, and the guard accepts the previous generation's key for cookies
// whose bit doesn't match the current one, so rotation never invalidates
// cookies younger than one rotation interval and each check still costs
// exactly one MD5.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "crypto/md5.h"

namespace dnsguard::crypto {

inline constexpr std::size_t kCookieKeySize = 76;
inline constexpr std::size_t kCookieSize = 16;

using CookieKey = std::array<std::uint8_t, kCookieKeySize>;
using Cookie = std::array<std::uint8_t, kCookieSize>;

/// Derives a fresh 76-byte key from a 64-bit seed (deterministic, for
/// reproducible experiments; a deployment would read /dev/urandom).
[[nodiscard]] CookieKey derive_key(std::uint64_t seed);

/// c = MD5(key || ipv4_be). `ip` is the requester address in host order.
[[nodiscard]] Cookie compute_cookie(const CookieKey& key, std::uint32_t ip);

/// Constant-time equality over full 16-byte cookies.
[[nodiscard]] bool cookie_equal(const Cookie& a, const Cookie& b);

/// Constant-time equality over the first `n` bytes (truncated encodings,
/// e.g. the 4-byte NS-name cookie).
[[nodiscard]] bool cookie_prefix_equal(const Cookie& a, const Cookie& b,
                                       std::size_t n);

/// First 4 cookie bytes as a big-endian integer — the value the DNS-based
/// scheme encodes in NS names and, modulo R_y, in fabricated IPs.
[[nodiscard]] std::uint32_t cookie_prefix32(const Cookie& c);

/// Outcome of a generation-aware verification: `ok` is the accept/reject
/// decision; `used_previous` says the presented generation bit selected
/// the previous key — on success, the requester holds a pre-rotation
/// cookie; on failure, the likeliest story is a cookie minted two or more
/// rotations ago (a *stale key*) rather than a random guess.
struct VerifyResult {
  bool ok = false;
  bool used_previous = false;
};

/// Rotating key schedule: holds the current and previous generation keys.
class RotatingKeys {
 public:
  explicit RotatingKeys(std::uint64_t seed);

  /// Advances to the next generation (called once per rotation interval,
  /// e.g. weekly in the paper).
  void rotate(std::uint64_t new_seed);

  /// Mints a cookie for `ip` under the current key, with the first bit
  /// overwritten by the current generation parity.
  [[nodiscard]] Cookie mint(std::uint32_t ip) const;

  /// Mints under the *previous* generation's key, or nullopt at generation
  /// 0 (no previous exists). Needed by encodings whose transformation
  /// folds away the generation bit — the fabricated-IP scheme reduces the
  /// cookie mod R_y, so its verifier must recompute under both keys.
  [[nodiscard]] std::optional<Cookie> mint_previous(std::uint32_t ip) const;

  /// Verifies a presented cookie: the embedded generation bit selects
  /// current vs previous key; exactly one MD5 is computed.
  [[nodiscard]] bool verify(std::uint32_t ip, const Cookie& presented) const {
    return verify_ex(ip, presented).ok;
  }
  /// As verify(), but also reports which key generation was selected —
  /// the observability layer counts verifications per generation.
  [[nodiscard]] VerifyResult verify_ex(std::uint32_t ip,
                                       const Cookie& presented) const;

  /// Verifies only the first 4 bytes (for NS-name / IP encodings, which
  /// truncate the cookie). The generation bit is part of those 4 bytes.
  [[nodiscard]] bool verify_prefix32(std::uint32_t ip,
                                     std::uint32_t presented_prefix) const {
    return verify_prefix32_ex(ip, presented_prefix).ok;
  }
  [[nodiscard]] VerifyResult verify_prefix32_ex(
      std::uint32_t ip, std::uint32_t presented_prefix) const;

  [[nodiscard]] std::uint32_t generation() const { return generation_; }

 private:
  [[nodiscard]] Cookie mint_with(const CookieKey& key, std::uint32_t ip,
                                 std::uint32_t generation) const;

  CookieKey current_;
  CookieKey previous_;
  std::uint32_t generation_ = 0;
};

}  // namespace dnsguard::crypto
