// The paper's cookie construction (§III.E):
//
//   c = MD5(key || source_ip)
//
// where `key` is a 76-byte per-guard secret and source_ip the 4-byte
// requester address, giving an 80-byte MD5 input and a 16-byte cookie.
// Key distribution is unnecessary: only the guard verifies cookies.
//
// Key rotation (§III.E last paragraph) overloads the first cookie *bit*
// as a generation indicator: cookies minted under generation g carry bit
// g % 2, and the guard accepts the previous generation's key for cookies
// whose bit doesn't match the current one, so rotation never invalidates
// cookies younger than one rotation interval and each check still costs
// exactly one MD5.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "crypto/md5.h"
#include "obs/profiler.h"

namespace dnsguard::crypto {

inline constexpr std::size_t kCookieKeySize = 76;
inline constexpr std::size_t kCookieSize = 16;

using CookieKey = std::array<std::uint8_t, kCookieKeySize>;
using Cookie = std::array<std::uint8_t, kCookieSize>;

/// Derives a fresh 76-byte key from a 64-bit seed (deterministic, for
/// reproducible experiments; a deployment would read /dev/urandom).
[[nodiscard]] CookieKey derive_key(std::uint64_t seed);

/// c = MD5(key || ipv4_be). `ip` is the requester address in host order.
[[nodiscard]] Cookie compute_cookie(const CookieKey& key, std::uint32_t ip);

/// Pre-keyed cookie hasher: absorbs the 76-byte key once and caches the
/// MD5 midstate (the first 64 key bytes fill exactly one compression
/// block). Each compute() then copies the small context, appends the
/// 4-byte address and finalizes — one block process per cookie instead of
/// two, which roughly halves the verifier's wall cost and is what makes
/// batched verification in the shard hot path worthwhile.
class CookieHasher {
 public:
  CookieHasher() = default;
  explicit CookieHasher(const CookieKey& key) {
    base_.update(BytesView(key.data(), key.size()));
  }

  /// c = MD5(key || ipv4_be), identical to compute_cookie(key, ip).
  [[nodiscard]] Cookie compute(std::uint32_t ip) const {
    DNSGUARD_PROF_SCOPE(obs::prof::Stage::kCookieHash);
    Md5 ctx = base_;  // midstate copy: key already absorbed
    const std::uint8_t ip_be[4] = {static_cast<std::uint8_t>(ip >> 24),
                                   static_cast<std::uint8_t>(ip >> 16),
                                   static_cast<std::uint8_t>(ip >> 8),
                                   static_cast<std::uint8_t>(ip)};
    ctx.update(BytesView(ip_be, 4));
    return ctx.finish();
  }

 private:
  Md5 base_;
};

/// Constant-time equality over full 16-byte cookies.
[[nodiscard]] bool cookie_equal(const Cookie& a, const Cookie& b);

/// Constant-time equality over the first `n` bytes (truncated encodings,
/// e.g. the 4-byte NS-name cookie).
[[nodiscard]] bool cookie_prefix_equal(const Cookie& a, const Cookie& b,
                                       std::size_t n);

/// First 4 cookie bytes as a big-endian integer — the value the DNS-based
/// scheme encodes in NS names and, modulo R_y, in fabricated IPs.
[[nodiscard]] std::uint32_t cookie_prefix32(const Cookie& c);

/// Outcome of a generation-aware verification: `ok` is the accept/reject
/// decision; `used_previous` says the check resolved against the previous
/// key generation — on success, the requester holds a pre-rotation cookie.
/// `stale` is a classification hint on *failures*: the cookie matches a
/// retired generation (minted two rotations ago), so the requester is a
/// real-but-outdated client, not a random guesser. It never makes a
/// failure acceptable; it only picks the drop reason.
struct VerifyResult {
  bool ok = false;
  bool used_previous = false;
  bool stale = false;
};

/// Rotating key schedule: holds the current and previous generation keys.
class RotatingKeys {
 public:
  explicit RotatingKeys(std::uint64_t seed);

  /// Advances to the next generation (called once per rotation interval,
  /// e.g. weekly in the paper).
  void rotate(std::uint64_t new_seed);

  /// Mints a cookie for `ip` under the current key, with the first bit
  /// overwritten by the current generation parity.
  [[nodiscard]] Cookie mint(std::uint32_t ip) const;

  /// Mints under the *previous* generation's key, or nullopt at generation
  /// 0 (no previous exists). Needed by encodings whose transformation
  /// folds away the generation bit — the fabricated-IP scheme reduces the
  /// cookie mod R_y, so its verifier must recompute under both keys.
  [[nodiscard]] std::optional<Cookie> mint_previous(std::uint32_t ip) const;

  /// Mints under the *retired* key (two generations back), or nullopt
  /// before the second rotation. Never accepted — retained purely so
  /// verifiers can classify a failure as "stale key" (a real client whose
  /// cookie aged out) instead of "bad cookie" (a guess); the drop-reason
  /// split is what the operator dashboards alarm on.
  [[nodiscard]] std::optional<Cookie> mint_retired(std::uint32_t ip) const;

  /// Verifies a presented cookie: the embedded generation bit selects
  /// current vs previous key; exactly one MD5 is computed.
  [[nodiscard]] bool verify(std::uint32_t ip, const Cookie& presented) const {
    return verify_ex(ip, presented).ok;
  }
  /// As verify(), but also reports which key generation was selected —
  /// the observability layer counts verifications per generation.
  [[nodiscard]] VerifyResult verify_ex(std::uint32_t ip,
                                       const Cookie& presented) const;

  /// Verifies only the first 4 bytes (for NS-name / IP encodings, which
  /// truncate the cookie). The generation bit is part of those 4 bytes.
  [[nodiscard]] bool verify_prefix32(std::uint32_t ip,
                                     std::uint32_t presented_prefix) const {
    return verify_prefix32_ex(ip, presented_prefix).ok;
  }
  [[nodiscard]] VerifyResult verify_prefix32_ex(
      std::uint32_t ip, std::uint32_t presented_prefix) const;

  /// Batched prefix verification for the shard hot path: verifies n
  /// (ip, presented_prefix) pairs in one call. Equivalent to calling
  /// verify_prefix32_ex per item; the batch form keeps the pre-keyed MD5
  /// midstates hot in cache across items.
  void verify_prefix32_batch(const std::uint32_t* ips,
                             const std::uint32_t* presented_prefixes,
                             VerifyResult* out, std::size_t n) const;

  [[nodiscard]] std::uint32_t generation() const { return generation_; }

 private:
  [[nodiscard]] Cookie mint_with(const CookieHasher& hasher, std::uint32_t ip,
                                 std::uint32_t generation) const;

  CookieKey current_;
  CookieKey previous_;
  CookieKey retired_;  // two generations back: classification only
  CookieHasher current_hasher_;
  CookieHasher previous_hasher_;
  CookieHasher retired_hasher_;
  std::uint32_t generation_ = 0;
};

}  // namespace dnsguard::crypto
