#include "crypto/cookie_hash.h"

#include "common/rng.h"

namespace dnsguard::crypto {

CookieKey derive_key(std::uint64_t seed) {
  Rng rng(seed);
  CookieKey key{};
  for (std::size_t i = 0; i < key.size(); i += 8) {
    std::uint64_t v = rng.next();
    for (std::size_t j = 0; j < 8 && i + j < key.size(); ++j) {
      key[i + j] = static_cast<std::uint8_t>(v >> (8 * j));
    }
  }
  return key;
}

Cookie compute_cookie(const CookieKey& key, std::uint32_t ip) {
  Md5 ctx;
  ctx.update(BytesView(key.data(), key.size()));
  std::uint8_t ip_be[4] = {
      static_cast<std::uint8_t>(ip >> 24), static_cast<std::uint8_t>(ip >> 16),
      static_cast<std::uint8_t>(ip >> 8), static_cast<std::uint8_t>(ip)};
  ctx.update(BytesView(ip_be, 4));
  return ctx.finish();
}

bool cookie_equal(const Cookie& a, const Cookie& b) {
  return cookie_prefix_equal(a, b, kCookieSize);
}

bool cookie_prefix_equal(const Cookie& a, const Cookie& b, std::size_t n) {
  unsigned diff = 0;
  for (std::size_t i = 0; i < n && i < kCookieSize; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

std::uint32_t cookie_prefix32(const Cookie& c) {
  return (static_cast<std::uint32_t>(c[0]) << 24) |
         (static_cast<std::uint32_t>(c[1]) << 16) |
         (static_cast<std::uint32_t>(c[2]) << 8) |
         static_cast<std::uint32_t>(c[3]);
}

RotatingKeys::RotatingKeys(std::uint64_t seed)
    : current_(derive_key(seed)),
      previous_(current_),
      retired_(current_),
      current_hasher_(current_),
      previous_hasher_(current_hasher_),
      retired_hasher_(current_hasher_) {}

void RotatingKeys::rotate(std::uint64_t new_seed) {
  retired_ = previous_;
  retired_hasher_ = previous_hasher_;
  previous_ = current_;
  previous_hasher_ = current_hasher_;
  current_ = derive_key(new_seed);
  current_hasher_ = CookieHasher(current_);
  ++generation_;
}

Cookie RotatingKeys::mint_with(const CookieHasher& hasher, std::uint32_t ip,
                               std::uint32_t generation) const {
  Cookie c = hasher.compute(ip);
  // Overwrite the first bit with the generation parity (§III.E).
  c[0] = static_cast<std::uint8_t>((c[0] & 0x7f) | ((generation & 1) << 7));
  return c;
}

Cookie RotatingKeys::mint(std::uint32_t ip) const {
  return mint_with(current_hasher_, ip, generation_);
}

std::optional<Cookie> RotatingKeys::mint_previous(std::uint32_t ip) const {
  if (generation_ == 0) return std::nullopt;
  return mint_with(previous_hasher_, ip, generation_ - 1);
}

std::optional<Cookie> RotatingKeys::mint_retired(std::uint32_t ip) const {
  if (generation_ < 2) return std::nullopt;
  return mint_with(retired_hasher_, ip, generation_ - 2);
}

VerifyResult RotatingKeys::verify_ex(std::uint32_t ip,
                                     const Cookie& presented) const {
  std::uint32_t presented_gen = presented[0] >> 7;
  bool is_current = presented_gen == (generation_ & 1);
  // At generation 0 no previous generation exists: a cookie whose bit
  // selects it cannot be a pre-rotation survivor — it is simply invalid.
  // (This used to report used_previous=true, so the guard charged the
  // drop to "stale key" when no rotation had ever happened.)
  if (!is_current && generation_ == 0) return {false, false, false};
  const CookieHasher& hasher =
      is_current ? current_hasher_ : previous_hasher_;
  std::uint32_t gen = is_current ? generation_ : generation_ - 1;
  Cookie expected = mint_with(hasher, ip, gen);
  if (cookie_equal(expected, presented)) return {true, !is_current, false};
  // Failure classification: a cookie minted two generations ago carries
  // the *current* parity (the bit alternates), so it fails the current-key
  // check — but an exact match under the retired key proves it was once
  // genuine. Costs a second MD5 only on failures, and only once a retired
  // generation exists at all.
  bool stale = false;
  if (is_current) {
    if (auto retired = mint_retired(ip)) {
      stale = cookie_equal(*retired, presented);
    }
  }
  return {false, !is_current, stale};
}

VerifyResult RotatingKeys::verify_prefix32_ex(
    std::uint32_t ip, std::uint32_t presented_prefix) const {
  std::uint32_t presented_gen = presented_prefix >> 31;
  bool is_current = presented_gen == (generation_ & 1);
  if (!is_current && generation_ == 0) return {false, false, false};
  const CookieHasher& hasher =
      is_current ? current_hasher_ : previous_hasher_;
  std::uint32_t gen = is_current ? generation_ : generation_ - 1;
  Cookie expected = mint_with(hasher, ip, gen);
  // Constant-time compare of the 4-byte prefix.
  std::uint32_t exp = cookie_prefix32(expected);
  if ((exp ^ presented_prefix) == 0) return {true, !is_current, false};
  bool stale = false;
  if (is_current) {
    if (auto retired = mint_retired(ip)) {
      stale = cookie_prefix32(*retired) == presented_prefix;
    }
  }
  return {false, !is_current, stale};
}

void RotatingKeys::verify_prefix32_batch(const std::uint32_t* ips,
                                         const std::uint32_t* presented_prefixes,
                                         VerifyResult* out,
                                         std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = verify_prefix32_ex(ips[i], presented_prefixes[i]);
  }
}

}  // namespace dnsguard::crypto
