#include "crypto/cookie_hash.h"

#include "common/rng.h"

namespace dnsguard::crypto {

CookieKey derive_key(std::uint64_t seed) {
  Rng rng(seed);
  CookieKey key{};
  for (std::size_t i = 0; i < key.size(); i += 8) {
    std::uint64_t v = rng.next();
    for (std::size_t j = 0; j < 8 && i + j < key.size(); ++j) {
      key[i + j] = static_cast<std::uint8_t>(v >> (8 * j));
    }
  }
  return key;
}

Cookie compute_cookie(const CookieKey& key, std::uint32_t ip) {
  Md5 ctx;
  ctx.update(BytesView(key.data(), key.size()));
  std::uint8_t ip_be[4] = {
      static_cast<std::uint8_t>(ip >> 24), static_cast<std::uint8_t>(ip >> 16),
      static_cast<std::uint8_t>(ip >> 8), static_cast<std::uint8_t>(ip)};
  ctx.update(BytesView(ip_be, 4));
  return ctx.finish();
}

bool cookie_equal(const Cookie& a, const Cookie& b) {
  return cookie_prefix_equal(a, b, kCookieSize);
}

bool cookie_prefix_equal(const Cookie& a, const Cookie& b, std::size_t n) {
  unsigned diff = 0;
  for (std::size_t i = 0; i < n && i < kCookieSize; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

std::uint32_t cookie_prefix32(const Cookie& c) {
  return (static_cast<std::uint32_t>(c[0]) << 24) |
         (static_cast<std::uint32_t>(c[1]) << 16) |
         (static_cast<std::uint32_t>(c[2]) << 8) |
         static_cast<std::uint32_t>(c[3]);
}

RotatingKeys::RotatingKeys(std::uint64_t seed)
    : current_(derive_key(seed)), previous_(current_) {}

void RotatingKeys::rotate(std::uint64_t new_seed) {
  previous_ = current_;
  current_ = derive_key(new_seed);
  ++generation_;
}

Cookie RotatingKeys::mint_with(const CookieKey& key, std::uint32_t ip,
                               std::uint32_t generation) const {
  Cookie c = compute_cookie(key, ip);
  // Overwrite the first bit with the generation parity (§III.E).
  c[0] = static_cast<std::uint8_t>((c[0] & 0x7f) | ((generation & 1) << 7));
  return c;
}

Cookie RotatingKeys::mint(std::uint32_t ip) const {
  return mint_with(current_, ip, generation_);
}

std::optional<Cookie> RotatingKeys::mint_previous(std::uint32_t ip) const {
  if (generation_ == 0) return std::nullopt;
  return mint_with(previous_, ip, generation_ - 1);
}

VerifyResult RotatingKeys::verify_ex(std::uint32_t ip,
                                     const Cookie& presented) const {
  std::uint32_t presented_gen = presented[0] >> 7;
  bool is_current = presented_gen == (generation_ & 1);
  // generation_ == 0 has no valid previous generation.
  if (!is_current && generation_ == 0) return {false, true};
  const CookieKey& key = is_current ? current_ : previous_;
  std::uint32_t gen = is_current ? generation_ : generation_ - 1;
  Cookie expected = mint_with(key, ip, gen);
  return {cookie_equal(expected, presented), !is_current};
}

VerifyResult RotatingKeys::verify_prefix32_ex(
    std::uint32_t ip, std::uint32_t presented_prefix) const {
  std::uint32_t presented_gen = presented_prefix >> 31;
  bool is_current = presented_gen == (generation_ & 1);
  if (!is_current && generation_ == 0) return {false, true};
  const CookieKey& key = is_current ? current_ : previous_;
  std::uint32_t gen = is_current ? generation_ : generation_ - 1;
  Cookie expected = mint_with(key, ip, gen);
  // Constant-time compare of the 4-byte prefix.
  std::uint32_t exp = cookie_prefix32(expected);
  return {(exp ^ presented_prefix) == 0, !is_current};
}

}  // namespace dnsguard::crypto
