// InplaceFunction: a move-only std::function replacement whose callable
// lives inside the object itself (small-buffer optimization), so storing
// and invoking one costs no heap allocation on the hot path.
//
// The discrete-event scheduler stores millions of short-lived callbacks per
// simulated second; std::function heap-allocates for any capture larger
// than ~2 pointers, which dominated the event-loop profile. Nearly every
// event in this codebase captures at most a node pointer plus a Packet, so
// the default capacity is sized for that. Captures that do not fit fall
// back to a slab freelist (common/pool.h) rather than the general heap, so
// even the cold path is allocation-free in steady state.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/pool.h"

namespace dnsguard {

/// Default inline capacity: fits a lambda capturing [Node*, net::Packet]
/// (the packet-delivery event, by far the most common).
inline constexpr std::size_t kInplaceFunctionCapacity = 96;

/// `Align` sets the storage (and object) alignment; callables with
/// stricter alignment go out-of-line. The event queue over-aligns its
/// EventFn slots to 64 so each one covers exactly two cache lines.
template <typename Signature, std::size_t Capacity = kInplaceFunctionCapacity,
          std::size_t Align = alignof(std::max_align_t)>
class InplaceFunction;  // undefined; only the R(Args...) partial spec exists

template <typename R, typename... Args, std::size_t Capacity,
          std::size_t Align>
class InplaceFunction<R(Args...), Capacity, Align> {
 public:
  InplaceFunction() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    construct<D>(std::forward<F>(f));
  }

  InplaceFunction(InplaceFunction&& other) noexcept {
    steal(std::move(other));
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(std::move(other));
    }
    return *this;
  }

  /// Assigning a callable constructs it directly in this object's storage
  /// — the event queue uses this to build callbacks in their final slot
  /// without an intermediate InplaceFunction and its relocate.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction& operator=(F&& f) {
    reset();
    construct<D>(std::forward<F>(f));
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  R operator()(Args... args) {
    return vtable_->invoke(target(), std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (vtable_ == nullptr) return;
    if (!vtable_->trivial) vtable_->destroy(target());
    if (vtable_->slabbed) {
      slab_free(heap_ptr(), vtable_->size, vtable_->align);
    }
    vtable_ = nullptr;
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    // Move-constructs the callable from `src` into raw storage `dst`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    std::size_t size;
    std::size_t align;
    bool slabbed;  // callable lives in a slab block, not inline
    bool trivial;  // trivially copyable: memcpy to move, nothing to destroy
  };

  template <typename D, bool Slabbed>
  static constexpr VTable kVTableFor{
      [](void* obj, Args&&... args) -> R {
        return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* obj) { static_cast<D*>(obj)->~D(); },
      sizeof(D),
      alignof(D),
      Slabbed,
      std::is_trivially_copyable_v<D>,
  };

  template <typename D, typename F>
  void construct(F&& f) {
    static_assert(std::is_nothrow_move_constructible_v<D> ||
                      sizeof(D) > Capacity,
                  "inline callables must be nothrow-move-constructible "
                  "(the event heap relocates entries while sifting)");
    if constexpr (sizeof(D) <= Capacity && alignof(D) <= Align) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &kVTableFor<D, false>;
    } else {
      void* block = slab_alloc(sizeof(D), alignof(D));
      ::new (block) D(std::forward<F>(f));
      ::new (static_cast<void*>(storage_)) void*(block);
      vtable_ = &kVTableFor<D, true>;
    }
  }

  void steal(InplaceFunction&& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ == nullptr) return;
    if (vtable_->slabbed) {
      // Just take ownership of the slab pointer; the callable stays put.
      ::new (static_cast<void*>(storage_)) void*(other.heap_ptr());
    } else if (vtable_->trivial) {
      std::memcpy(storage_, other.storage_, vtable_->size);
    } else {
      vtable_->relocate(storage_, other.storage_);
    }
    other.vtable_ = nullptr;
  }

  [[nodiscard]] void* heap_ptr() const {
    void* p;
    std::memcpy(&p, storage_, sizeof(p));
    return p;
  }

  [[nodiscard]] void* target() {
    return vtable_->slabbed ? heap_ptr() : static_cast<void*>(storage_);
  }

  alignas(Align) std::byte storage_[Capacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace dnsguard
