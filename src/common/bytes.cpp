#include "common/bytes.h"

namespace dnsguard {

void ByteWriter::patch_u16(std::size_t at, std::uint16_t v) {
  if (at + 2 > buf_.size()) return;
  buf_[at] = static_cast<std::uint8_t>(v >> 8);
  buf_[at + 1] = static_cast<std::uint8_t>(v);
}

std::uint8_t ByteReader::u8() {
  if (pos_ + 1 > data_.size()) {
    ok_ = false;
    return 0;
  }
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  if (pos_ + 2 > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  if (pos_ + 4 > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

BytesView ByteReader::raw(std::size_t n) {
  if (pos_ + n > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return {};
  }
  BytesView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void ByteReader::seek(std::size_t pos) {
  if (pos > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return;
  }
  pos_ = pos;
}

void ByteReader::skip(std::size_t n) {
  if (pos_ + n > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return;
  }
  pos_ += n;
}

}  // namespace dnsguard
