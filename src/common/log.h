// Minimal leveled logger.
//
// The simulator is single-threaded, so the logger is deliberately simple:
// a global level and printf-style formatting to stderr. Benchmarks run at
// Level::Warn so log I/O never pollutes timing.
#pragma once

#include <cstdarg>
#include <string_view>

namespace dnsguard {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// Sets the global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// printf-style logging. `tag` identifies the subsystem ("guard", "sim"...).
void log_at(LogLevel level, std::string_view tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

#define DG_LOG_TRACE(tag, ...) \
  ::dnsguard::log_at(::dnsguard::LogLevel::Trace, tag, __VA_ARGS__)
#define DG_LOG_DEBUG(tag, ...) \
  ::dnsguard::log_at(::dnsguard::LogLevel::Debug, tag, __VA_ARGS__)
#define DG_LOG_INFO(tag, ...) \
  ::dnsguard::log_at(::dnsguard::LogLevel::Info, tag, __VA_ARGS__)
#define DG_LOG_WARN(tag, ...) \
  ::dnsguard::log_at(::dnsguard::LogLevel::Warn, tag, __VA_ARGS__)
#define DG_LOG_ERROR(tag, ...) \
  ::dnsguard::log_at(::dnsguard::LogLevel::Error, tag, __VA_ARGS__)

}  // namespace dnsguard
