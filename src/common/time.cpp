#include "common/time.h"

#include <cstdio>

namespace dnsguard {

std::string format_duration(SimDuration d) {
  char buf[64];
  if (d.ns >= 1000000000) {
    std::snprintf(buf, sizeof buf, "%.3fs", d.seconds());
  } else if (d.ns >= 1000000) {
    std::snprintf(buf, sizeof buf, "%.3fms", d.millis());
  } else if (d.ns >= 1000) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(d.ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(d.ns));
  }
  return buf;
}

}  // namespace dnsguard
