#include "common/hex.h"

#include <cctype>

namespace dnsguard {
namespace {

constexpr char kDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string hex_encode(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

std::optional<Bytes> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

bool is_hex(std::string_view s) {
  for (char c : s) {
    if (nibble(c) < 0) return false;
  }
  return true;
}

}  // namespace dnsguard
