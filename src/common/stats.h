// Small online-statistics helpers shared by the workload/metrics layers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnsguard {

/// Online mean/min/max/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Keeps every sample; answers exact percentile queries. Intended for
/// latency distributions whose sample counts are modest (≤ millions).
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  /// p in [0, 100]. Returns 0 when empty.
  [[nodiscard]] double percentile(double p);
  [[nodiscard]] double median() { return percentile(50.0); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;

 private:
  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace dnsguard
