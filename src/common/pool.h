// Allocation pools for the simulator's hot paths.
//
// Two pools live here:
//
//  - SlabPool / slab_alloc / slab_free: a freelist of fixed-size blocks for
//    InplaceFunction captures too large for inline storage. Blocks are
//    carved from chunk arrays and never returned to the OS until process
//    exit, so steady-state oversized captures cost a pointer pop/push.
//
//  - BufferPool: recycles `Bytes` payload buffers. A packet's payload is
//    allocated when a DNS message is serialized and freed when the packet
//    is consumed at its destination node; routing them through the pool
//    turns that into capacity reuse. Node::service_one() returns consumed
//    payloads and the guard/DNS encode paths draw from it.
//
// Everything here is single-threaded by design (the discrete-event
// simulator owns one thread); pools are thread_local so independent
// simulators in test processes never contend or cross-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"

namespace dnsguard {

/// Fixed-size block freelist. `block_size` is rounded up to the chunk
/// element size at construction; blocks are max_align_t-aligned.
class SlabPool {
 public:
  explicit SlabPool(std::size_t block_size, std::size_t blocks_per_chunk = 64)
      : block_size_(round_up(block_size)),
        blocks_per_chunk_(blocks_per_chunk) {}

  [[nodiscard]] void* allocate() {
    if (free_head_ == nullptr) grow();
    FreeNode* node = free_head_;
    free_head_ = node->next;
    live_++;
    return node;
  }

  void deallocate(void* p) {
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_head_;
    free_head_ = node;
    live_--;
  }

  [[nodiscard]] std::size_t block_size() const { return block_size_; }
  [[nodiscard]] std::size_t live_blocks() const { return live_; }
  [[nodiscard]] std::size_t chunks_allocated() const {
    return chunks_.size();
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static std::size_t round_up(std::size_t n) {
    const std::size_t a = alignof(std::max_align_t);
    if (n < sizeof(FreeNode)) n = sizeof(FreeNode);
    return (n + a - 1) / a * a;
  }

  void grow() {
    chunks_.push_back(std::make_unique<std::byte[]>(
        block_size_ * blocks_per_chunk_));
    std::byte* base = chunks_.back().get();
    for (std::size_t i = blocks_per_chunk_; i-- > 0;) {
      deallocate(base + i * block_size_);
      live_++;  // deallocate() decrements; these were never live
    }
  }

  std::size_t block_size_;
  std::size_t blocks_per_chunk_;
  FreeNode* free_head_ = nullptr;
  std::size_t live_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
};

/// Minimal std::vector allocator handing out cache-line-aligned storage.
/// The event queue's key heap uses it so each 4-key sibling group occupies
/// exactly one 64-byte line.
template <typename T>
struct CacheAlignedAlloc {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  CacheAlignedAlloc() = default;
  template <typename U>
  CacheAlignedAlloc(const CacheAlignedAlloc<U>&) {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), kAlign);
  }
  template <typename U>
  bool operator==(const CacheAlignedAlloc<U>&) const {
    return true;
  }
};

/// Slab block size for oversized InplaceFunction captures. Anything larger
/// still (rare: a capture holding a whole vector of packets) falls through
/// to operator new.
inline constexpr std::size_t kOversizedCaptureSlabBytes = 256;

namespace detail {
inline SlabPool& oversized_capture_pool() {
  thread_local SlabPool pool(kOversizedCaptureSlabBytes);
  return pool;
}
}  // namespace detail

/// Allocates a block for an out-of-line callable of `size`/`align` bytes.
[[nodiscard]] inline void* slab_alloc(std::size_t size, std::size_t align) {
  if (size <= kOversizedCaptureSlabBytes &&
      align <= alignof(std::max_align_t)) {
    return detail::oversized_capture_pool().allocate();
  }
  return ::operator new(size, std::align_val_t(align));
}

/// Frees a block from slab_alloc. Callers must pass the same size/align
/// they allocated with so the pool-vs-heap decision matches (InplaceFunction
/// records them per-type in its vtable).
inline void slab_free(void* p, std::size_t size, std::size_t align) {
  if (size <= kOversizedCaptureSlabBytes &&
      align <= alignof(std::max_align_t)) {
    detail::oversized_capture_pool().deallocate(p);
    return;
  }
  ::operator delete(p, std::align_val_t(align));
}

/// Recycles Bytes buffers: acquire() pops a warmed buffer (cleared, capacity
/// intact), release() pushes one back. The pool is bounded so a burst never
/// pins unbounded memory.
class BufferPool {
 public:
  static constexpr std::size_t kMaxPooled = 1024;
  static constexpr std::size_t kDefaultReserve = 512;

  /// A cleared buffer with at least `reserve_hint` capacity.
  [[nodiscard]] Bytes acquire(std::size_t reserve_hint = kDefaultReserve) {
    if (!free_.empty()) {
      Bytes b = std::move(free_.back());
      free_.pop_back();
      b.clear();
      if (b.capacity() < reserve_hint) b.reserve(reserve_hint);
      hits_++;
      return b;
    }
    misses_++;
    Bytes b;
    b.reserve(reserve_hint);
    return b;
  }

  /// Returns a buffer to the pool. Tiny or empty buffers are not worth
  /// keeping; past the cap the buffer just frees normally.
  void release(Bytes&& b) {
    if (b.capacity() == 0 || free_.size() >= kMaxPooled) return;
    // DNSGUARD_LINT_ALLOW(alloc): free-list push reuses capacity after
    // warmup (bounded by kMaxPooled); this is the recycling that keeps
    // the rest of the hot path allocation-free
    free_.push_back(std::move(b));
  }

  [[nodiscard]] std::size_t pooled() const { return free_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  /// The per-thread pool shared by packet encode paths and node sinks.
  static BufferPool& local() {
    thread_local BufferPool pool;
    return pool;
  }

 private:
  std::vector<Bytes> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dnsguard
