// Simulated-time types.
//
// The discrete-event simulator advances a virtual clock; all latencies,
// TTLs, token-bucket refills and timeout timers are expressed in SimTime.
// We use integer nanoseconds rather than doubles so event ordering is exact
// and runs are reproducible.
#pragma once

#include <cstdint>
#include <string>

namespace dnsguard {

/// A point in simulated time, in nanoseconds since simulation start.
struct SimTime {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const SimTime&) const = default;
};

/// A span of simulated time, in nanoseconds.
struct SimDuration {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const SimDuration&) const = default;

  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns) / 1e9;
  }
  [[nodiscard]] constexpr double millis() const {
    return static_cast<double>(ns) / 1e6;
  }
};

constexpr SimDuration nanoseconds(std::int64_t n) { return {n}; }
constexpr SimDuration microseconds(std::int64_t us) { return {us * 1000}; }
constexpr SimDuration milliseconds(std::int64_t ms) { return {ms * 1000000}; }
constexpr SimDuration milliseconds_f(double ms) {
  return {static_cast<std::int64_t>(ms * 1e6)};
}
constexpr SimDuration seconds(std::int64_t s) { return {s * 1000000000}; }
constexpr SimDuration seconds_f(double s) {
  return {static_cast<std::int64_t>(s * 1e9)};
}

constexpr SimTime operator+(SimTime t, SimDuration d) { return {t.ns + d.ns}; }
constexpr SimTime operator-(SimTime t, SimDuration d) { return {t.ns - d.ns}; }
constexpr SimDuration operator-(SimTime a, SimTime b) { return {a.ns - b.ns}; }
constexpr SimDuration operator+(SimDuration a, SimDuration b) {
  return {a.ns + b.ns};
}
constexpr SimDuration operator-(SimDuration a, SimDuration b) {
  return {a.ns - b.ns};
}
constexpr SimDuration operator*(SimDuration d, std::int64_t k) {
  return {d.ns * k};
}
constexpr SimDuration operator*(std::int64_t k, SimDuration d) {
  return {d.ns * k};
}

/// Renders a time as "12.345ms" / "1.2s" for logs and reports.
std::string format_duration(SimDuration d);

}  // namespace dnsguard
