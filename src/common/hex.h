// Lowercase-hex encoding/decoding.
//
// The DNS-based scheme encodes the first 4 cookie bytes as 8 hex characters
// inside a fabricated NS label ("PRa1b2c3d4"), so hex round-tripping is part
// of the protocol, not just debugging output.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace dnsguard {

/// Encodes bytes as lowercase hex ("0..9a..f"), 2 chars per byte.
[[nodiscard]] std::string hex_encode(BytesView data);

/// Decodes lowercase/uppercase hex. Returns nullopt on odd length or any
/// non-hex character.
[[nodiscard]] std::optional<Bytes> hex_decode(std::string_view hex);

/// True iff every character of `s` is a hex digit.
[[nodiscard]] bool is_hex(std::string_view s);

}  // namespace dnsguard
