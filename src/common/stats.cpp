#include "common/stats.h"

#include <cmath>
#include <numeric>

namespace dnsguard {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentiles::percentile(double p) {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double Percentiles::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

}  // namespace dnsguard
