// Byte-buffer reader/writer with network (big-endian) byte order.
//
// These are the primitives every wire codec in the project (IPv4/UDP/TCP
// headers, DNS messages) is built on. ByteWriter appends to an internal
// vector; ByteReader walks a non-owning span and reports truncation via
// error flags instead of exceptions so codecs can reject malformed packets
// cheaply on the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dnsguard {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Appends integers (big-endian) and raw bytes to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }
  /// Adopts an existing buffer (cleared, capacity kept) so codecs can
  /// re-serialize into recycled storage without reallocating.
  explicit ByteWriter(Bytes&& reuse) : buf_(std::move(reuse)) { buf_.clear(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void raw(BytesView bytes) { buf_.insert(buf_.end(), bytes.begin(), bytes.end()); }
  void raw(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Overwrite a previously written 16-bit field (e.g. length/checksum
  /// backpatching). `at` must point at an already-written offset.
  void patch_u16(std::size_t at, std::uint16_t v);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] BytesView view() const { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] const Bytes& bytes() const { return buf_; }

 private:
  Bytes buf_;
};

/// Walks a read-only byte span. On underflow, sets an error flag and
/// returns zeroes; callers check `ok()` once at the end of a parse.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  /// Reads `n` bytes; returns an empty view and flags error on underflow.
  BytesView raw(std::size_t n);

  /// Absolute-offset random access (needed for DNS name decompression).
  [[nodiscard]] BytesView whole() const { return data_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  void seek(std::size_t pos);
  void skip(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool ok() const { return ok_; }
  /// Manually poison the reader (parse-level validation failure).
  void fail() { ok_ = false; }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace dnsguard
