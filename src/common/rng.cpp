#include "common/rng.h"

#include <cmath>

namespace dnsguard {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::bounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method, 64-bit variant.
  std::uint64_t x = next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace dnsguard
