// Fixed-capacity single-producer/single-consumer ring.
//
// The shard-per-core guard feeds each shard through one of these: the
// delivery path pushes arriving packets, the shard's service loop pops
// them in bursts. Capacity is rounded up to a power of two so push/pop are
// a masked index increment; the buffer is allocated once at construction
// and steady state never touches the allocator (same discipline as
// EventQueue's slot pool).
//
// In the single-threaded simulator the SPSC contract is trivially met (one
// producer call site, one consumer call site, never interleaved); the
// monotonic head/tail counter layout is the same one a lock-free multi-core
// build would use, so the data path is shaped for that future without
// carrying atomics the simulator doesn't need.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace dnsguard::common {

template <typename T>
class SpscRing {
 public:
  /// `min_capacity` is rounded up to a power of two (at least 2).
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }
  SpscRing() : SpscRing(2) {}

  SpscRing(SpscRing&&) = default;
  SpscRing& operator=(SpscRing&&) = default;
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(head_ - tail_);
  }
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] bool full() const { return size() == capacity(); }

  /// Producer side: false (value untouched) when the ring is full.
  [[nodiscard]] bool try_push(T&& v) {
    if (full()) return false;
    buf_[static_cast<std::size_t>(head_) & mask_] = std::move(v);
    ++head_;
    return true;
  }

  /// Consumer side: false (out untouched) when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    if (empty()) return false;
    out = std::move(buf_[static_cast<std::size_t>(tail_) & mask_]);
    ++tail_;
    return true;
  }

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;
  std::uint64_t head_ = 0;  // producer position (monotonic)
  std::uint64_t tail_ = 0;  // consumer position (monotonic)
};

}  // namespace dnsguard::common
