// Deterministic pseudo-random number generator (xoshiro256**).
//
// Every stochastic component in the simulator (attack source-address
// choice, jitter, workload arrival processes) draws from an explicitly
// seeded Rng so experiments are reproducible run-to-run — a requirement
// for regenerating the paper's tables bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace dnsguard {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain algorithm),
/// deterministically seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + bounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform01() < p; }

  /// Exponential variate with the given mean (inter-arrival times of
  /// Poisson traffic).
  double exponential(double mean);

 private:
  std::uint64_t s_[4]{};
};

}  // namespace dnsguard
