#include "common/log.h"

#include <cstdio>

namespace dnsguard {
namespace {

LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_at(LogLevel level, std::string_view tag, const char* fmt, ...) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %.*s: ", level_name(level),
               static_cast<int>(tag.size()), tag.data());
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace dnsguard
