// BoundedTable: the one per-source state container every subsystem shares.
//
// The guard exists to stop spoofed floods, yet any unbounded map keyed by
// a remote-controlled value (source address, port, query id) turns the
// defense itself into the DoS target: an attacker spraying spoofed sources
// inflates the map until the guard swaps or dies. BoundedTable closes that
// class in one place by combining
//
//   - a hard capacity cap (allocation happens up front / in chunks, and
//     steady state never touches the allocator),
//   - LRU eviction at the cap (or refusal, for tables whose entries
//     represent verified work that must not be displaced),
//   - TTL and idle-timeout reaping, incremental via a wrapping cursor so
//     the cost is spread over packet events instead of spiking, and
//   - per-reason eviction accounting wired into obs::MetricsRegistry
//     (occupancy gauge + eviction/expiry counters), so "this table is
//     under state-exhaustion pressure" is an exported signal, not a
//     heap profile.
//
// Layout: an open-addressing, linear-probe index of u32 slot references
// over slots stored in a std::deque (chunked, addresses stable — Value*
// handed out by find()/try_emplace() stay valid until that entry itself is
// erased or evicted). The LRU list is intrusive: u32 prev/next indices in
// the slots, no nodes, no allocation. Values live in std::optional so
// Value needs no default constructor (TokenBucket has none) and free
// slots hold no live Value.
//
// Reentrancy rule: the eviction callback runs after the entry has been
// fully unlinked (it receives the moved-out key and value), so it may
// touch *other* tables, send packets, and even erase() or insert *other*
// entries of the evicting table itself (slot storage is stable and the
// evicted entry is already off the index/LRU when the callback runs —
// the guard's NAT-evict -> TCP-close -> NAT-erase_if chain relies on
// this). The one thing it must not do is clear() the evicting table.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"

namespace dnsguard::common {

/// Why an entry left the table involuntarily. Plain erase()/clear() are
/// voluntary and carry no reason.
enum class EvictReason : std::uint8_t {
  kCapacity,  // displaced by a new entry while the table was full
  kTtl,       // absolute lifetime (or per-entry deadline) passed
  kIdle,      // not touched for longer than the idle timeout
};

[[nodiscard]] constexpr std::string_view evict_reason_name(EvictReason r) {
  switch (r) {
    case EvictReason::kCapacity: return "capacity";
    case EvictReason::kTtl: return "ttl";
    case EvictReason::kIdle: return "idle";
  }
  return "?";
}

/// Counter/gauge cells for one table; bind() attaches them under
/// "<prefix>.size", "<prefix>.evicted_capacity", ... so every bounded
/// table in the system exports the same shape.
struct BoundedTableStats {
  obs::Counter inserts;
  obs::Counter hits;
  obs::Counter misses;
  obs::Counter evicted_capacity;
  obs::Counter expired_ttl;
  obs::Counter expired_idle;
  obs::Counter insert_refused;
  obs::Gauge occupancy;  // current size; .max is the high-water mark

  void bind(obs::MetricsRegistry& registry, std::string_view prefix) {
    std::string p(prefix);
    registry.attach_gauge(p + ".size", occupancy);
    registry.attach_counter(p + ".inserts", inserts);
    registry.attach_counter(p + ".hits", hits);
    registry.attach_counter(p + ".misses", misses);
    registry.attach_counter(p + ".evicted_capacity", evicted_capacity);
    registry.attach_counter(p + ".expired_ttl", expired_ttl);
    registry.attach_counter(p + ".expired_idle", expired_idle);
    registry.attach_counter(p + ".insert_refused", insert_refused);
  }

  void reset() {
    inserts.reset();
    hits.reset();
    misses.reset();
    evicted_capacity.reset();
    expired_ttl.reset();
    expired_idle.reset();
    insert_refused.reset();
    occupancy.reset();
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class BoundedTable {
 public:
  struct Config {
    std::size_t capacity = 1024;
    /// Absolute entry lifetime from insertion; zero = no TTL. Individual
    /// entries can override their deadline via set_expiry().
    SimDuration ttl{};
    /// Evict entries untouched for this long; zero = no idle reaping.
    SimDuration idle_timeout{};
    /// Full table + new key: evict the LRU entry (true) or refuse the
    /// insert (false — for tables of verified work, where §III.G's "refuse
    /// new hosts rather than evict active ones" applies).
    bool evict_lru_when_full = true;
  };

  struct InsertResult {
    Value* value = nullptr;  // null only when the insert was refused
    bool inserted = false;   // false: key already present (or refused)
  };

  /// Runs on capacity eviction and TTL/idle expiry (not on erase/clear).
  using EvictCallback = std::function<void(const Key&, Value&, EvictReason)>;

  explicit BoundedTable(Config config) : config_(config) {
    if (config_.capacity == 0) config_.capacity = 1;
    std::size_t buckets = 8;
    while (buckets < config_.capacity * 2) buckets <<= 1;
    index_.assign(buckets, 0);
    mask_ = buckets - 1;
  }
  BoundedTable() : BoundedTable(Config{}) {}

  BoundedTable(const BoundedTable&) = delete;
  BoundedTable& operator=(const BoundedTable&) = delete;
  BoundedTable(BoundedTable&&) = default;
  BoundedTable& operator=(BoundedTable&&) = default;

  void set_evict_callback(EvictCallback cb) { on_evict_ = std::move(cb); }

  /// Looks up `key`, refreshing its LRU position and last-use time. A
  /// TTL/idle-expired entry is evicted on contact and reported as a miss.
  [[nodiscard]] Value* find(const Key& key, SimTime now) {
    const std::size_t b = find_bucket(key);
    if (b == kNoBucket) {
      ++stats_.misses;
      return nullptr;
    }
    const std::uint32_t si = index_[b] - 1;
    if (expired(slots_[si], now)) {
      remove_bucket(b, expire_reason(slots_[si], now));
      ++stats_.misses;
      return nullptr;
    }
    Slot& s = slots_[si];
    s.last_use = now;
    lru_move_front(si);
    ++stats_.hits;
    return &*s.value;
  }

  /// Read-only lookup: no LRU touch, no lazy eviction, no stats.
  [[nodiscard]] const Value* peek(const Key& key, SimTime now) const {
    const std::size_t b = find_bucket(key);
    if (b == kNoBucket) return nullptr;
    const Slot& s = slots_[index_[b] - 1];
    return expired(s, now) ? nullptr : &*s.value;
  }

  /// True if the key occupies a slot, expired or not (query-id reuse
  /// checks care about occupancy, not liveness).
  [[nodiscard]] bool contains(const Key& key) const {
    return find_bucket(key) != kNoBucket;
  }

  /// Inserts Value{args...} under `key` if absent. An existing live entry
  /// is returned with inserted=false (and touched); an expired one is
  /// evicted first. At capacity: LRU-evict if configured, else refuse
  /// (null value).
  template <typename... Args>
  InsertResult try_emplace(const Key& key, SimTime now, Args&&... args) {
    const std::size_t b = find_bucket(key);
    if (b != kNoBucket) {
      const std::uint32_t si = index_[b] - 1;
      if (!expired(slots_[si], now)) {
        Slot& s = slots_[si];
        s.last_use = now;
        lru_move_front(si);
        ++stats_.hits;
        return {&*s.value, false};
      }
      remove_bucket(b, expire_reason(slots_[si], now));
    }
    if (size_ >= config_.capacity) {
      if (!config_.evict_lru_when_full || lru_tail_ == kNil) {
        ++stats_.insert_refused;
        return {nullptr, false};
      }
      // Charge the eviction honestly: if the LRU entry is already past
      // its TTL/idle deadline, this is an expiry that a find() or reap()
      // would have reported as kTtl/kIdle — not capacity pressure. The
      // contact path and the cursor sweep must agree, or the
      // evicted_capacity gauge reads "table thrashing" when the table is
      // merely full of expired entries.
      const Slot& tail = slots_[lru_tail_];
      remove_slot(lru_tail_, expired(tail, now) ? expire_reason(tail, now)
                                                : EvictReason::kCapacity);
    }
    const std::uint32_t si = alloc_slot();
    Slot& s = slots_[si];
    s.key = key;
    s.value.emplace(std::forward<Args>(args)...);
    s.inserted_at = now;
    s.last_use = now;
    s.expires_at =
        config_.ttl.ns > 0 ? now + config_.ttl : SimTime{kNoExpiryNs};
    lru_push_front(si);
    index_insert(si);
    ++size_;
    ++stats_.inserts;
    stats_.occupancy.set(static_cast<std::int64_t>(size_));
    return {&*s.value, true};
  }

  /// Overrides the entry's absolute deadline (per-entry TTL, e.g. a cookie
  /// cache honoring the TXT record's own TTL). False if the key is absent.
  bool set_expiry(const Key& key, SimTime expires_at) {
    const std::size_t b = find_bucket(key);
    if (b == kNoBucket) return false;
    slots_[index_[b] - 1].expires_at = expires_at;
    return true;
  }

  /// Voluntary removal: no eviction callback, no reason counter.
  bool erase(const Key& key) {
    const std::size_t b = find_bucket(key);
    if (b == kNoBucket) return false;
    remove_bucket(b, std::nullopt);
    return true;
  }

  /// Removes every entry matching pred(key, value); returns the count.
  /// Voluntary (no callback) — the caller already knows.
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    std::size_t erased = 0;
    for (std::uint32_t si = 0; si < slots_.size(); ++si) {
      if (slots_[si].value && pred(std::as_const(slots_[si].key),
                                   *slots_[si].value)) {
        remove_slot(si, std::nullopt);
        ++erased;
      }
    }
    return erased;
  }

  /// Evicts expired entries, scanning at most `max_scan` slots from a
  /// wrapping cursor — call with a small budget from packet handlers for
  /// amortized O(1) reaping, or with the default to sweep everything.
  /// The slot count is re-read every step instead of cached: an eviction
  /// callback may insert entries (growing the slot array — the sweep then
  /// covers them instead of wrapping early past live slots) and a table
  /// whose storage shrinks mid-sweep terminates instead of walking off
  /// the end.
  std::size_t reap(SimTime now,
                   std::size_t max_scan = std::numeric_limits<
                       std::size_t>::max()) {
    std::size_t reaped = 0;
    for (std::size_t i = 0; i < max_scan; ++i) {
      const std::size_t n = slots_.size();
      if (n == 0 || i >= n) break;
      if (cursor_ >= n) cursor_ = 0;
      Slot& s = slots_[cursor_];
      if (s.value && expired(s, now)) {
        remove_slot(cursor_, expire_reason(s, now));
        ++reaped;
      }
      ++cursor_;
    }
    return reaped;
  }

  /// Issues a hardware prefetch for `key`'s home bucket and, when the
  /// bucket is occupied, its slot. The shard batch pre-pass calls this for
  /// every source address in a burst so the limiter-bucket lookups that
  /// follow hit warm lines. No LRU motion, no stats, no side effects.
  void prefetch(const Key& key) const {
#if defined(__GNUC__) || defined(__clang__)
    const std::size_t b = bucket_of(key);
    __builtin_prefetch(&index_[b]);
    const std::uint32_t ref = index_[b];
    if (ref != 0 && ref - 1 < slots_.size()) {
      __builtin_prefetch(&slots_[ref - 1]);
    }
#else
    (void)key;
#endif
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& s : slots_) {
      if (s.value) fn(std::as_const(s.key), *s.value);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& s : slots_) {
      if (s.value) fn(s.key, *s.value);
    }
  }

  /// The least-recently-used key, or nullptr when empty (tests).
  [[nodiscard]] const Key* lru_key() const {
    return lru_tail_ == kNil ? nullptr : &slots_[lru_tail_].key;
  }

  void clear() {
    slots_.clear();
    free_.clear();
    index_.assign(index_.size(), 0);
    lru_head_ = lru_tail_ = kNil;
    size_ = 0;
    cursor_ = 0;
    stats_.occupancy.set(0);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return config_.capacity; }
  [[nodiscard]] bool full() const { return size_ >= config_.capacity; }
  [[nodiscard]] const Config& config() const { return config_; }

  [[nodiscard]] const BoundedTableStats& stats() const { return stats_; }
  [[nodiscard]] BoundedTableStats& stats() { return stats_; }
  void bind_metrics(obs::MetricsRegistry& registry, std::string_view prefix) {
    stats_.bind(registry, prefix);
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffU;
  static constexpr std::size_t kNoBucket =
      std::numeric_limits<std::size_t>::max();
  static constexpr std::int64_t kNoExpiryNs =
      std::numeric_limits<std::int64_t>::max();

  struct Slot {
    Key key{};
    std::optional<Value> value;  // disengaged == free slot
    SimTime inserted_at{};
    SimTime last_use{};
    SimTime expires_at{kNoExpiryNs};
    std::uint32_t lru_prev = kNil;
    std::uint32_t lru_next = kNil;
  };

  // Small keys (ports, query ids) hash to themselves under std::hash;
  // a Fibonacci multiply spreads them across the high bits before the
  // power-of-two mask.
  [[nodiscard]] std::size_t bucket_of(const Key& key) const {
    const std::uint64_t h =
        static_cast<std::uint64_t>(Hash{}(key)) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> 32) & mask_;
  }

  [[nodiscard]] std::size_t find_bucket(const Key& key) const {
    std::size_t b = bucket_of(key);
    while (index_[b] != 0) {
      if (slots_[index_[b] - 1].key == key) return b;
      b = (b + 1) & mask_;
    }
    return kNoBucket;
  }

  void index_insert(std::uint32_t si) {
    std::size_t b = bucket_of(slots_[si].key);
    while (index_[b] != 0) b = (b + 1) & mask_;
    index_[b] = si + 1;
  }

  // Backward-shift deletion keeps every remaining entry reachable from
  // its home bucket without tombstones.
  void index_erase_at(std::size_t b) {
    index_[b] = 0;
    std::size_t hole = b;
    std::size_t j = b;
    while (true) {
      j = (j + 1) & mask_;
      if (index_[j] == 0) break;
      const std::size_t home = bucket_of(slots_[index_[j] - 1].key);
      const bool home_in_hole_j = hole < j ? (home > hole && home <= j)
                                           : (home > hole || home <= j);
      if (!home_in_hole_j) {
        index_[hole] = index_[j];
        index_[j] = 0;
        hole = j;
      }
    }
  }

  [[nodiscard]] bool expired(const Slot& s, SimTime now) const {
    if (s.expires_at.ns != kNoExpiryNs && now >= s.expires_at) return true;
    return config_.idle_timeout.ns > 0 &&
           now - s.last_use >= config_.idle_timeout;
  }
  [[nodiscard]] EvictReason expire_reason(const Slot& s, SimTime now) const {
    return s.expires_at.ns != kNoExpiryNs && now >= s.expires_at
               ? EvictReason::kTtl
               : EvictReason::kIdle;
  }

  std::uint32_t alloc_slot() {
    if (!free_.empty()) {
      const std::uint32_t si = free_.back();
      free_.pop_back();
      return si;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void lru_push_front(std::uint32_t si) {
    Slot& s = slots_[si];
    s.lru_prev = kNil;
    s.lru_next = lru_head_;
    if (lru_head_ != kNil) slots_[lru_head_].lru_prev = si;
    lru_head_ = si;
    if (lru_tail_ == kNil) lru_tail_ = si;
  }
  void lru_unlink(std::uint32_t si) {
    Slot& s = slots_[si];
    if (s.lru_prev != kNil) {
      slots_[s.lru_prev].lru_next = s.lru_next;
    } else {
      lru_head_ = s.lru_next;
    }
    if (s.lru_next != kNil) {
      slots_[s.lru_next].lru_prev = s.lru_prev;
    } else {
      lru_tail_ = s.lru_prev;
    }
    s.lru_prev = s.lru_next = kNil;
  }
  void lru_move_front(std::uint32_t si) {
    if (lru_head_ == si) return;
    lru_unlink(si);
    lru_push_front(si);
  }

  void remove_slot(std::uint32_t si, std::optional<EvictReason> reason) {
    std::size_t b = bucket_of(slots_[si].key);
    while (index_[b] != si + 1) b = (b + 1) & mask_;
    remove_bucket(b, reason);
  }

  void remove_bucket(std::size_t b, std::optional<EvictReason> reason) {
    const std::uint32_t si = index_[b] - 1;
    Slot& s = slots_[si];
    index_erase_at(b);
    lru_unlink(si);
    Key key = std::move(s.key);
    Value value = std::move(*s.value);
    s.value.reset();
    s.key = Key{};
    s.expires_at = SimTime{kNoExpiryNs};
    free_.push_back(si);
    --size_;
    stats_.occupancy.set(static_cast<std::int64_t>(size_));
    if (reason) {
      switch (*reason) {
        case EvictReason::kCapacity: ++stats_.evicted_capacity; break;
        case EvictReason::kTtl: ++stats_.expired_ttl; break;
        case EvictReason::kIdle: ++stats_.expired_idle; break;
      }
      // Entry is fully unlinked: the callback may reenter this table or
      // others (see the reentrancy rule in the file header); only clear()
      // of this table is off-limits.
      if (on_evict_) on_evict_(key, value, *reason);
    }
  }

  Config config_;
  std::vector<std::uint32_t> index_;  // slot index + 1; 0 = empty
  std::size_t mask_ = 0;
  std::deque<Slot> slots_;            // stable addresses, chunked growth
  std::vector<std::uint32_t> free_;
  std::uint32_t lru_head_ = kNil;     // most recently used
  std::uint32_t lru_tail_ = kNil;     // least recently used
  std::size_t size_ = 0;
  std::size_t cursor_ = 0;            // reap() scan position
  BoundedTableStats stats_;
  EvictCallback on_evict_;
};

}  // namespace dnsguard::common
