// Authoritative name server simulation nodes.
//
// AuthoritativeServerNode models a BIND-like ANS: full zone-based answer
// logic over UDP and TCP, with a calibrated CPU cost model. The paper
// measures BIND 9.3.1 at ~14K UDP queries/sec and ~2.2K TCP queries/sec
// on the testbed hardware (§IV.C); the default costs reproduce those
// capacities.
//
// AnsSimulatorNode models the paper's stripped-down "ANS simulator" that
// "responds to each DNS request with the same answer" at ~110K
// requests/sec (§IV.D) — used to stress the DNS guard without BIND being
// the bottleneck.
#pragma once

#include <memory>
#include <optional>

#include "common/bounded_table.h"
#include "dns/message.h"
#include "obs/drop_reason.h"
#include "server/zone.h"
#include "sim/node.h"
#include "tcp/tcp_stack.h"

namespace dnsguard::server {

/// Counter cells so an ANS node's tallies export through the simulator's
/// MetricsRegistry ("server.ans.udp_queries", ...) without copying.
struct AnsStats {
  obs::Counter udp_queries;
  obs::Counter tcp_queries;
  obs::Counter responses;
  obs::Counter truncated;
  obs::Counter malformed;

  void bind(obs::MetricsRegistry& registry, std::string_view prefix) {
    std::string p(prefix);
    registry.attach_counter(p + ".udp_queries", udp_queries);
    registry.attach_counter(p + ".tcp_queries", tcp_queries);
    registry.attach_counter(p + ".responses", responses);
    registry.attach_counter(p + ".truncated", truncated);
    registry.attach_counter(p + ".malformed", malformed);
  }
};

class AuthoritativeServerNode : public sim::Node {
 public:
  struct Config {
    net::Ipv4Address address;
    /// CPU time per UDP query (default = 1 / 14K req/s, §IV.C).
    SimDuration udp_query_cost = nanoseconds(71429);
    /// CPU time per TCP segment processed.
    SimDuration tcp_segment_cost = microseconds(40);
    /// Additional CPU time per TCP connection (setup/teardown bookkeeping).
    /// With ~6 server-side segments per query, total ≈ 1/2.2K req/s.
    SimDuration tcp_connection_cost = microseconds(200);
    /// When set, every record in every response is rewritten to this TTL
    /// (Fig. 5 config: "TTL of each DNS response is configured to be 0 to
    /// disable DNS caching").
    std::optional<std::uint32_t> ttl_override;
    /// Reap TCP connections idle longer than this.
    SimDuration tcp_idle_timeout = seconds(30);
    /// Largest UDP payload served to EDNS0 requesters (RFC 6891).
    std::size_t max_edns_payload = 4096;
    /// Cap on tracked TCP connections (and their framing buffers); the
    /// LRU connection is reset at the cap, like a full accept backlog.
    std::size_t max_tcp_connections = 65536;
  };

  AuthoritativeServerNode(sim::Simulator& sim, std::string name,
                          Config config);

  void add_zone(Zone zone) { engine_.add_zone(std::move(zone)); }
  [[nodiscard]] const AuthoritativeEngine& engine() const { return engine_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const AnsStats& ans_stats() const { return ans_stats_; }
  void reset_ans_stats() { ans_stats_ = AnsStats{}; }

  /// Produces the response message for `query` (shared by UDP/TCP paths;
  /// public so the guard can consult the engine in unit tests).
  [[nodiscard]] dns::Message answer(const dns::Message& query,
                                    bool via_tcp) const;

 protected:
  SimDuration process(const net::Packet& packet) override;

 private:
  void apply_ttl_override(dns::Message& m) const;
  void on_tcp_data(tcp::ConnId conn, BytesView data);
  void reap_loop();

  Config config_;
  AuthoritativeEngine engine_;
  std::unique_ptr<tcp::TcpStack> tcp_;
  /// Framing buffers keyed by connection id — attacker-driven state (any
  /// client can open connections), so bounded to the TCP stack's own
  /// connection cap.
  common::BoundedTable<tcp::ConnId, tcp::StreamFramer> framers_;
  AnsStats ans_stats_;
  obs::DropCounters drops_;  // bound as "server.ans.drop.<reason>"
  SimDuration pending_cost_{};  // cost accrued by TCP callbacks per packet
};

/// The paper's high-throughput ANS simulator: answers every query with one
/// fixed A record, no zone logic, at ~110K req/s.
class AnsSimulatorNode : public sim::Node {
 public:
  struct Config {
    net::Ipv4Address address;
    net::Ipv4Address answer_address{192, 0, 2, 1};
    std::uint32_t answer_ttl = 60;
    /// CPU time per query (default = 1 / 110K req/s, §IV.D).
    SimDuration query_cost = nanoseconds(9091);
  };

  AnsSimulatorNode(sim::Simulator& sim, std::string name, Config config)
      : sim::Node(sim, std::move(name)), config_(config) {
    set_profile_stage(obs::prof::Stage::kAnsService);
    ans_stats_.bind(sim.metrics(), "server.ans_sim");
    drops_.bind(sim.metrics(), "server.ans_sim");
  }

  [[nodiscard]] const AnsStats& ans_stats() const { return ans_stats_; }
  void reset_ans_stats() { ans_stats_ = AnsStats{}; }
  [[nodiscard]] const Config& config() const { return config_; }

 protected:
  SimDuration process(const net::Packet& packet) override;

 private:
  Config config_;
  AnsStats ans_stats_;
  obs::DropCounters drops_;  // bound as "server.ans_sim.drop.<reason>"
};

}  // namespace dnsguard::server
