// Zone database for the authoritative name server.
//
// A Zone holds the records of one zone (its apex SOA/NS set, in-zone data,
// delegation points with glue). The paper's testbed serves a small
// root/com/foo.com hierarchy (Fig. 1); zones here can be built
// programmatically or parsed from a minimal master-file-like text format.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dns/message.h"
#include "dns/records.h"

namespace dnsguard::server {

class Zone {
 public:
  explicit Zone(dns::DomainName origin) : origin_(std::move(origin)) {}

  [[nodiscard]] const dns::DomainName& origin() const { return origin_; }

  /// Adds a record. Records for names outside the zone are rejected
  /// (returns false) except A records for out-of-zone nameservers, which
  /// are kept as glue.
  bool add(dns::ResourceRecord rr);

  /// Convenience builders.
  void add_a(std::string_view name, net::Ipv4Address addr,
             std::uint32_t ttl = 3600);
  void add_ns(std::string_view zone_name, std::string_view ns_name,
              std::uint32_t ttl = 3600);
  void add_cname(std::string_view name, std::string_view target,
                 std::uint32_t ttl = 3600);
  void add_soa(std::uint32_t serial = 1, std::uint32_t ttl = 3600);

  /// All records whose owner is `name` with type `type`.
  [[nodiscard]] std::vector<dns::ResourceRecord> find(
      const dns::DomainName& name, dns::RrType type) const;

  /// Any records at `name` (for NODATA vs NXDOMAIN distinction)?
  [[nodiscard]] bool has_name(const dns::DomainName& name) const;

  /// Does `name` fall under a delegation cut strictly below the apex?
  /// Returns the deepest such cut's zone name.
  [[nodiscard]] std::optional<dns::DomainName> delegation_for(
      const dns::DomainName& name) const;

  /// The apex SOA record if present.
  [[nodiscard]] std::optional<dns::ResourceRecord> soa() const;

  /// Moves all records of `other` (same origin) into this zone.
  void merge(Zone other);

  [[nodiscard]] std::size_t record_count() const;

 private:
  struct NameKey {
    std::string canonical;  // lowercased presentation form
    auto operator<=>(const NameKey&) const = default;
  };
  static NameKey key_of(const dns::DomainName& name);

  dns::DomainName origin_;
  // DNSGUARD_LINT_ALLOW(bounded): operator-loaded zone data, populated
  // from zone files at startup; queries only read it
  std::map<NameKey, std::vector<dns::ResourceRecord>> records_;
  std::vector<dns::DomainName> delegations_;  // child zone cut names
};

/// The answer a server engine produced, tagged with the paper's
/// referral/non-referral distinction (§III.B).
enum class AnswerKind { Authoritative, Referral, NxDomain, NoData, Refused };

struct Answer {
  AnswerKind kind = AnswerKind::Refused;
  dns::Message message;
};

/// A set of zones plus the RFC-compliant answer logic of an authoritative
/// server: referrals at delegation cuts (NS + glue in additional), CNAME
/// chasing inside the zone, NXDOMAIN/NODATA with SOA.
class AuthoritativeEngine {
 public:
  /// Adds a zone; zones must not nest ambiguously (deepest match wins).
  void add_zone(Zone zone);

  [[nodiscard]] Answer answer(const dns::Message& query) const;

  [[nodiscard]] const Zone* zone_for(const dns::DomainName& name) const;
  [[nodiscard]] std::size_t zone_count() const { return zones_.size(); }

 private:
  std::vector<Zone> zones_;
};

/// Builds the paper's Figure-1 example hierarchy: a root zone delegating
/// "com", a com zone delegating "foo.com", and a foo.com zone with
/// www/mail hosts. `server_addrs` supplies the ANS addresses to delegate
/// to; used by tests and examples.
struct ExampleHierarchy {
  Zone root;
  Zone com;
  Zone foo_com;
};
[[nodiscard]] ExampleHierarchy make_example_hierarchy(
    net::Ipv4Address root_server, net::Ipv4Address com_server,
    net::Ipv4Address foo_server);

}  // namespace dnsguard::server
