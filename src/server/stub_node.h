// StubResolverNode: the end-host stub resolver of Fig. 1.
//
// A stub is "not sophisticated enough to do everything that a local
// recursive server can": it just sends a recursion-desired query to its
// configured LRS and retries on timeout. Used by the examples and the
// end-to-end integration tests to drive whole-stack resolutions.
#pragma once

#include <functional>
#include <unordered_map>

#include "dns/message.h"
#include "obs/drop_reason.h"
#include "sim/node.h"

namespace dnsguard::server {

class StubResolverNode : public sim::Node {
 public:
  struct Config {
    net::Ipv4Address address;
    net::Ipv4Address lrs_address;
    SimDuration timeout = seconds(2);
    int max_retries = 2;
    SimDuration per_packet_cost = microseconds(2);
  };

  struct Result {
    bool ok = false;
    dns::Rcode rcode = dns::Rcode::ServFail;
    std::vector<dns::ResourceRecord> answers;
    SimDuration elapsed{};
  };
  using Callback = std::function<void(const Result&)>;

  StubResolverNode(sim::Simulator& sim, std::string name, Config config)
      : sim::Node(sim, std::move(name)), config_(config) {
    set_profile_stage(obs::prof::Stage::kDriverService);
    drops_.bind(this->sim().metrics(), "stub");
  }

  /// Issues a recursive query to the configured LRS.
  void lookup(const dns::DomainName& qname, dns::RrType qtype, Callback cb);

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t answered = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
  };
  [[nodiscard]] const Stats& stub_stats() const { return stats_; }

 protected:
  SimDuration process(const net::Packet& packet) override;

 private:
  struct Pending {
    dns::Question question;
    Callback callback;
    SimTime started_at;
    int retries = 0;
    std::uint64_t generation = 0;
  };

  void send_query(std::uint16_t id);
  void on_timeout(std::uint16_t id, std::uint64_t generation);

  Config config_;
  Stats stats_;
  obs::DropCounters drops_;  // bound as "stub.drop.<reason>"
  // DNSGUARD_LINT_ALLOW(bounded): keyed by the stub's own 16-bit query
  // ids (self-chosen, not attacker input), so the keyspace caps it at
  // 65535 entries
  std::unordered_map<std::uint16_t, Pending> pending_;
  std::uint16_t next_id_ = 1;
};

}  // namespace dnsguard::server
