#include "server/zone_parser.h"

#include <cctype>
#include <charconv>
#include <vector>

#include "common/log.h"

namespace dnsguard::server {
namespace {

/// A master-file token, tagged with the line it started on.
struct Token {
  std::string text;
  int line = 0;
  bool quoted = false;
};

/// Tokenizes the whole file, honoring comments, quoted strings and
/// parentheses (which merely allow RDATA to span lines — we record a
/// synthetic newline token otherwise, plus a flag when a line starts
/// with whitespace for owner inheritance).
struct Line {
  std::vector<Token> tokens;
  bool leading_ws = false;
  int number = 0;
};

std::vector<Line> tokenize(std::string_view text, std::string* error,
                           int* error_line) {
  std::vector<Line> lines;
  Line current;
  int line_no = 1;
  int paren_depth = 0;
  std::size_t i = 0;
  bool at_line_start = true;

  auto flush_line = [&] {
    if (!current.tokens.empty()) lines.push_back(std::move(current));
    current = Line{};
  };

  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++i;
      if (paren_depth == 0) flush_line();
      ++line_no;
      at_line_start = true;
      continue;
    }
    if (at_line_start) {
      current.number = current.tokens.empty() ? line_no : current.number;
      if ((c == ' ' || c == '\t') && current.tokens.empty()) {
        current.leading_ws = true;
      }
      at_line_start = false;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == ';') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '(') {
      paren_depth++;
      ++i;
      continue;
    }
    if (c == ')') {
      if (paren_depth == 0) {
        *error = "unbalanced ')'";
        *error_line = line_no;
        return {};
      }
      paren_depth--;
      ++i;
      continue;
    }
    if (c == '"') {
      std::string s;
      ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\n') {
          *error = "unterminated string";
          *error_line = line_no;
          return {};
        }
        s.push_back(text[i++]);
      }
      if (i >= text.size()) {
        *error = "unterminated string";
        *error_line = line_no;
        return {};
      }
      ++i;  // closing quote
      if (current.tokens.empty()) current.number = line_no;
      current.tokens.push_back(Token{std::move(s), line_no, true});
      continue;
    }
    std::string word;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i])) &&
           text[i] != ';' && text[i] != '(' && text[i] != ')') {
      word.push_back(text[i++]);
    }
    if (current.tokens.empty()) current.number = line_no;
    current.tokens.push_back(Token{std::move(word), line_no, false});
  }
  if (paren_depth != 0) {
    *error = "unbalanced '('";
    *error_line = line_no;
    return {};
  }
  flush_line();
  return lines;
}

bool parse_u32(std::string_view s, std::uint32_t* out) {
  std::uint64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size() || v > 0xffffffffull) {
    return false;
  }
  *out = static_cast<std::uint32_t>(v);
  return true;
}

/// Resolves a master-file name relative to the origin: '@' is the origin;
/// names without a trailing dot are relative.
std::optional<dns::DomainName> resolve_name(std::string_view text,
                                            const dns::DomainName& origin) {
  if (text == "@") return origin;
  if (!text.empty() && text.back() == '.') {
    return dns::DomainName::parse(text);
  }
  auto relative = dns::DomainName::parse(text);
  if (!relative) return std::nullopt;
  std::vector<std::string> labels = relative->labels();
  labels.insert(labels.end(), origin.labels().begin(), origin.labels().end());
  dns::DomainName out(std::move(labels));
  if (!out.valid()) return std::nullopt;
  return out;
}

bool is_type_token(std::string_view t) {
  return t == "SOA" || t == "NS" || t == "A" || t == "CNAME" || t == "TXT";
}

}  // namespace

ZoneParseResult parse_zone(std::string_view text,
                           const dns::DomainName& default_origin) {
  std::string tok_error;
  int tok_error_line = 0;
  std::vector<Line> lines = tokenize(text, &tok_error, &tok_error_line);
  if (!tok_error.empty()) {
    return ZoneParseError{tok_error_line, tok_error};
  }

  dns::DomainName origin = default_origin;
  std::uint32_t default_ttl = 3600;
  std::optional<dns::DomainName> last_owner;
  std::vector<dns::ResourceRecord> records;

  for (const Line& line : lines) {
    const auto& t = line.tokens;
    if (t.empty()) continue;
    int ln = line.number;

    // Directives.
    if (t[0].text == "$ORIGIN") {
      if (t.size() != 2) return ZoneParseError{ln, "$ORIGIN needs one name"};
      auto n = dns::DomainName::parse(t[1].text);
      if (!n) return ZoneParseError{ln, "bad $ORIGIN name"};
      origin = *n;
      continue;
    }
    if (t[0].text == "$TTL") {
      if (t.size() != 2 || !parse_u32(t[1].text, &default_ttl)) {
        return ZoneParseError{ln, "$TTL needs one integer"};
      }
      continue;
    }
    if (t[0].text.starts_with("$")) {
      return ZoneParseError{ln, "unsupported directive " + t[0].text};
    }

    // Record line: [owner] [ttl] [class] type rdata...
    std::size_t idx = 0;
    dns::DomainName owner;
    if (line.leading_ws) {
      if (!last_owner) return ZoneParseError{ln, "no previous owner"};
      owner = *last_owner;
    } else {
      auto n = resolve_name(t[0].text, origin);
      if (!n) return ZoneParseError{ln, "bad owner name '" + t[0].text + "'"};
      owner = *n;
      idx = 1;
    }
    last_owner = owner;

    std::uint32_t ttl = default_ttl;
    // Optional TTL and/or class in either order (classic BIND tolerance).
    for (int pass = 0; pass < 2 && idx < t.size(); ++pass) {
      std::uint32_t maybe_ttl = 0;
      if (t[idx].text == "IN") {
        ++idx;
      } else if (!is_type_token(t[idx].text) &&
                 parse_u32(t[idx].text, &maybe_ttl)) {
        ttl = maybe_ttl;
        ++idx;
      }
    }
    if (idx >= t.size()) return ZoneParseError{ln, "missing record type"};
    std::string type = t[idx].text;
    ++idx;
    auto remaining = [&] { return t.size() - idx; };

    if (type == "A") {
      if (remaining() != 1) return ZoneParseError{ln, "A needs one address"};
      auto addr = net::Ipv4Address::parse(t[idx].text);
      if (!addr) return ZoneParseError{ln, "bad IPv4 address"};
      records.push_back(dns::ResourceRecord::a(owner, *addr, ttl));
      ++idx;
    } else if (type == "NS") {
      if (remaining() != 1) return ZoneParseError{ln, "NS needs one name"};
      auto n = resolve_name(t[idx].text, origin);
      if (!n) return ZoneParseError{ln, "bad NS target"};
      records.push_back(dns::ResourceRecord::ns(owner, *n, ttl));
      ++idx;
    } else if (type == "CNAME") {
      if (remaining() != 1) return ZoneParseError{ln, "CNAME needs one name"};
      auto n = resolve_name(t[idx].text, origin);
      if (!n) return ZoneParseError{ln, "bad CNAME target"};
      records.push_back(dns::ResourceRecord::cname(owner, *n, ttl));
      ++idx;
    } else if (type == "TXT") {
      if (remaining() < 1) return ZoneParseError{ln, "TXT needs strings"};
      dns::TxtRdata txt;
      for (; idx < t.size(); ++idx) {
        if (t[idx].text.size() > 255) {
          return ZoneParseError{ln, "TXT string over 255 bytes"};
        }
        txt.strings.emplace_back(t[idx].text.begin(), t[idx].text.end());
      }
      records.push_back(dns::ResourceRecord::txt(owner, std::move(txt), ttl));
      idx = t.size();
    } else if (type == "SOA") {
      if (remaining() != 7) {
        return ZoneParseError{ln, "SOA needs mname rname and 5 integers"};
      }
      dns::SoaRdata soa;
      auto mname = resolve_name(t[idx].text, origin);
      auto rname = resolve_name(t[idx + 1].text, origin);
      if (!mname || !rname) return ZoneParseError{ln, "bad SOA names"};
      soa.mname = *mname;
      soa.rname = *rname;
      std::uint32_t* fields[5] = {&soa.serial, &soa.refresh, &soa.retry,
                                  &soa.expire, &soa.minimum};
      for (int f = 0; f < 5; ++f) {
        if (!parse_u32(t[idx + 2 + static_cast<std::size_t>(f)].text,
                       fields[f])) {
          return ZoneParseError{ln, "bad SOA integer"};
        }
      }
      records.push_back(dns::ResourceRecord::soa(owner, std::move(soa), ttl));
      idx = t.size();
    } else {
      return ZoneParseError{ln, "unsupported record type " + type};
    }
    if (idx != t.size()) {
      return ZoneParseError{ln, "trailing tokens after RDATA"};
    }
  }

  Zone zone(origin);
  for (auto& rr : records) {
    if (!zone.add(rr)) {
      return ZoneParseError{
          0, "record out of zone: " + rr.name.to_string() + " (origin " +
                 origin.to_string() + ")"};
    }
  }
  return zone;
}

std::optional<Zone> parse_zone_or_log(std::string_view text,
                                      const dns::DomainName& default_origin) {
  ZoneParseResult r = parse_zone(text, default_origin);
  if (auto* err = std::get_if<ZoneParseError>(&r)) {
    DG_LOG_ERROR("zone", "parse failed: %s", err->to_string().c_str());
    return std::nullopt;
  }
  return std::get<Zone>(std::move(r));
}

}  // namespace dnsguard::server
