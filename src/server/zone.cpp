#include "server/zone.h"

#include <algorithm>
#include <cctype>

namespace dnsguard::server {
namespace {

std::string lower_name(const dns::DomainName& name) {
  std::string s = name.to_string();
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

dns::DomainName must_parse(std::string_view text) {
  auto n = dns::DomainName::parse(text);
  // Builder helpers are called with literals; a typo should fail loudly.
  if (!n) return dns::DomainName{};
  return *n;
}

}  // namespace

Zone::NameKey Zone::key_of(const dns::DomainName& name) {
  return NameKey{lower_name(name)};
}

bool Zone::add(dns::ResourceRecord rr) {
  bool in_zone = rr.name.is_subdomain_of(origin_);
  if (!in_zone && rr.type != dns::RrType::A) return false;  // glue A only
  if (rr.type == dns::RrType::NS && in_zone && !rr.name.equals(origin_)) {
    // A delegation cut.
    if (std::none_of(delegations_.begin(), delegations_.end(),
                     [&rr](const dns::DomainName& d) {
                       return d.equals(rr.name);
                     })) {
      delegations_.push_back(rr.name);
    }
  }
  records_[key_of(rr.name)].push_back(std::move(rr));
  return true;
}

void Zone::add_a(std::string_view name, net::Ipv4Address addr,
                 std::uint32_t ttl) {
  add(dns::ResourceRecord::a(must_parse(name), addr, ttl));
}

void Zone::add_ns(std::string_view zone_name, std::string_view ns_name,
                  std::uint32_t ttl) {
  add(dns::ResourceRecord::ns(must_parse(zone_name), must_parse(ns_name),
                              ttl));
}

void Zone::add_cname(std::string_view name, std::string_view target,
                     std::uint32_t ttl) {
  add(dns::ResourceRecord::cname(must_parse(name), must_parse(target), ttl));
}

void Zone::add_soa(std::uint32_t serial, std::uint32_t ttl) {
  dns::SoaRdata soa;
  soa.mname = origin_;
  soa.rname = origin_;
  soa.serial = serial;
  soa.minimum = 300;
  add(dns::ResourceRecord::soa(origin_, std::move(soa), ttl));
}

std::vector<dns::ResourceRecord> Zone::find(const dns::DomainName& name,
                                            dns::RrType type) const {
  std::vector<dns::ResourceRecord> out;
  auto it = records_.find(key_of(name));
  if (it == records_.end()) return out;
  for (const auto& rr : it->second) {
    if (rr.type == type) out.push_back(rr);
  }
  return out;
}

bool Zone::has_name(const dns::DomainName& name) const {
  return records_.count(key_of(name)) > 0;
}

std::optional<dns::DomainName> Zone::delegation_for(
    const dns::DomainName& name) const {
  const dns::DomainName* best = nullptr;
  for (const auto& cut : delegations_) {
    if (name.is_subdomain_of(cut)) {
      if (best == nullptr || cut.label_count() > best->label_count()) {
        best = &cut;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::optional<dns::ResourceRecord> Zone::soa() const {
  auto soas = find(origin_, dns::RrType::SOA);
  if (soas.empty()) return std::nullopt;
  return soas.front();
}

std::size_t Zone::record_count() const {
  std::size_t n = 0;
  for (const auto& [k, v] : records_) n += v.size();
  return n;
}

void Zone::merge(Zone other) {
  for (auto& [key, rrs] : other.records_) {
    for (auto& rr : rrs) add(std::move(rr));
  }
}

void AuthoritativeEngine::add_zone(Zone zone) {
  // Same-origin zones merge: "add another record set to the zone" is the
  // natural operator-facing semantics, and duplicate apexes would
  // otherwise shadow each other.
  for (auto& z : zones_) {
    if (z.origin().equals(zone.origin())) {
      z.merge(std::move(zone));
      return;
    }
  }
  zones_.push_back(std::move(zone));
}

const Zone* AuthoritativeEngine::zone_for(const dns::DomainName& name) const {
  const Zone* best = nullptr;
  for (const auto& z : zones_) {
    if (name.is_subdomain_of(z.origin())) {
      if (best == nullptr ||
          z.origin().label_count() > best->origin().label_count()) {
        best = &z;
      }
    }
  }
  return best;
}

Answer AuthoritativeEngine::answer(const dns::Message& query) const {
  Answer out;
  out.message = dns::Message::response_to(query);
  const dns::Question* q = query.question();
  if (q == nullptr) {
    out.kind = AnswerKind::Refused;
    out.message.header.rcode = dns::Rcode::FormErr;
    return out;
  }

  const Zone* zone = zone_for(q->qname);
  if (zone == nullptr) {
    out.kind = AnswerKind::Refused;
    out.message.header.rcode = dns::Rcode::Refused;
    return out;
  }

  // Delegation below the apex? Then we answer with a referral, never
  // authoritatively (§III.B: "referral answer").
  if (auto cut = zone->delegation_for(q->qname)) {
    out.kind = AnswerKind::Referral;
    auto ns_records = zone->find(*cut, dns::RrType::NS);
    for (const auto& ns : ns_records) {
      out.message.authority.push_back(ns);
      // Standard delegation practice (paper §III.B issue three): provide
      // glue A records for each delegated nameserver.
      const auto& nsname = std::get<dns::NsRdata>(ns.rdata).nsdname;
      for (const auto& a : zone->find(nsname, dns::RrType::A)) {
        out.message.additional.push_back(a);
      }
    }
    return out;
  }

  out.message.header.aa = true;

  // Exact-name processing with in-zone CNAME chasing.
  dns::DomainName current = q->qname;
  int chase = 0;
  for (;;) {
    auto matches = zone->find(current, q->qtype);
    if (!matches.empty()) {
      for (auto& rr : matches) out.message.answers.push_back(std::move(rr));
      out.kind = AnswerKind::Authoritative;
      return out;
    }
    auto cnames = zone->find(current, dns::RrType::CNAME);
    if (!cnames.empty() && q->qtype != dns::RrType::CNAME) {
      const auto& target = std::get<dns::CnameRdata>(cnames.front().rdata).target;
      out.message.answers.push_back(cnames.front());
      current = target;
      if (++chase > 8 || !current.is_subdomain_of(zone->origin())) {
        // Out-of-zone target: the resolver must chase it itself.
        out.kind = AnswerKind::Authoritative;
        return out;
      }
      continue;
    }
    break;
  }

  if (zone->has_name(current)) {
    out.kind = AnswerKind::NoData;
  } else {
    out.kind = AnswerKind::NxDomain;
    out.message.header.rcode = dns::Rcode::NxDomain;
  }
  if (auto soa = zone->soa()) out.message.authority.push_back(*soa);
  return out;
}

ExampleHierarchy make_example_hierarchy(net::Ipv4Address root_server,
                                        net::Ipv4Address com_server,
                                        net::Ipv4Address foo_server) {
  Zone root(dns::DomainName{});
  root.add_soa();
  root.add_ns(".", "a.root-servers.net.");
  root.add_a("a.root-servers.net.", root_server);
  root.add_ns("com.", "a.gtld-servers.net.");
  root.add_a("a.gtld-servers.net.", com_server);

  Zone com(*dns::DomainName::parse("com."));
  com.add_soa();
  com.add_ns("com.", "a.gtld-servers.net.");
  com.add_a("a.gtld-servers.net.", com_server);
  com.add_ns("foo.com.", "ns1.foo.com.");
  com.add_a("ns1.foo.com.", foo_server);

  Zone foo(*dns::DomainName::parse("foo.com."));
  foo.add_soa();
  foo.add_ns("foo.com.", "ns1.foo.com.");
  foo.add_a("ns1.foo.com.", foo_server);
  foo.add_a("www.foo.com.", net::Ipv4Address(192, 0, 2, 80));
  foo.add_a("mail.foo.com.", net::Ipv4Address(192, 0, 2, 25));
  foo.add_cname("web.foo.com.", "www.foo.com.");

  return ExampleHierarchy{std::move(root), std::move(com), std::move(foo)};
}

}  // namespace dnsguard::server
