// RecursiveResolverNode: a faithful local recursive server (LRS).
//
// This is a *standard* resolver on purpose: the central claim of the
// paper's DNS-based and TCP-based schemes is transparency — an unmodified
// LRS, by simply following referrals, resolving glueless NS names and
// falling back to TCP on truncation, performs the guard's cookie exchange
// without knowing it (§III.B, §III.C). This implementation therefore
// only speaks RFC 1035: iterative resolution from root hints, a
// TTL-honoring cache, glueless-NS sub-resolution, CNAME chasing, UDP
// retransmission with BIND-like timeouts, and TCP fallback on TC=1.
//
// It serves recursive clients (stub resolvers) over UDP port 53 and also
// exposes a local resolve() API for workload drivers.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bounded_table.h"
#include "dns/message.h"
#include "obs/drop_reason.h"
#include "obs/journey.h"
#include "server/cache.h"
#include "sim/node.h"
#include "tcp/tcp_stack.h"

namespace dnsguard::server {

/// Counter cells; attached to the simulator's registry as "server.lrs.*".
struct ResolverStats {
  obs::Counter client_queries;
  obs::Counter client_responses;
  obs::Counter iterative_queries;
  obs::Counter retransmissions;
  obs::Counter tcp_fallbacks;
  obs::Counter referrals_followed;
  obs::Counter glue_subtasks;
  obs::Counter cname_chases;
  obs::Counter failures;
  obs::Counter completed;

  void bind(obs::MetricsRegistry& registry, std::string_view prefix) {
    std::string p(prefix);
    registry.attach_counter(p + ".client_queries", client_queries);
    registry.attach_counter(p + ".client_responses", client_responses);
    registry.attach_counter(p + ".iterative_queries", iterative_queries);
    registry.attach_counter(p + ".retransmissions", retransmissions);
    registry.attach_counter(p + ".tcp_fallbacks", tcp_fallbacks);
    registry.attach_counter(p + ".referrals_followed", referrals_followed);
    registry.attach_counter(p + ".glue_subtasks", glue_subtasks);
    registry.attach_counter(p + ".cname_chases", cname_chases);
    registry.attach_counter(p + ".failures", failures);
    registry.attach_counter(p + ".completed", completed);
  }
};

class RecursiveResolverNode : public sim::Node {
 public:
  struct Config {
    net::Ipv4Address address;
    std::vector<net::Ipv4Address> root_hints;
    /// UDP retransmission timeout. BIND's classic 2 s (§IV.C: "BIND-based
    /// LRS uses a large time-out value of 2 seconds").
    SimDuration retry_timeout = seconds(2);
    /// Retransmissions per server before moving to the next server.
    int max_retries = 2;
    /// CPU cost per packet handled (the LRS is never the bottleneck in
    /// the paper's experiments, but its CPU is still modeled).
    SimDuration per_packet_cost = microseconds(5);
    /// Overall per-task attempt budget (loop protection).
    int max_attempts = 24;
    int max_cname_depth = 8;
    int max_glue_depth = 3;
    /// When nonzero, advertise EDNS0 with this UDP payload size on every
    /// iterative query (reduces TCP fallbacks for large answers).
    std::uint16_t edns_payload_size = 0;
    /// Admission cap on concurrently resolving tasks: past it, new client
    /// queries are shed with ServFail instead of growing the task map. A
    /// real resolver has the same knob (BIND: recursive-clients).
    std::size_t max_inflight_tasks = 8192;
    /// Cap on outstanding iterative queries (keyed by 16-bit id, so the
    /// keyspace itself bounds this at 65535).
    std::size_t max_pending_queries = 65536;
  };

  /// Result delivered to local resolve() callers.
  struct Result {
    bool ok = false;
    dns::Rcode rcode = dns::Rcode::ServFail;
    std::vector<dns::ResourceRecord> answers;
    SimDuration elapsed{};
  };
  using ResolveCallback = std::function<void(const Result&)>;

  RecursiveResolverNode(sim::Simulator& sim, std::string name, Config config);

  /// Starts a resolution driven directly (no stub network hop). The
  /// optional journey key lets a workload driver correlate this
  /// resolution with marks it records itself (see obs/journey.h).
  void resolve(const dns::DomainName& qname, dns::RrType qtype,
               ResolveCallback cb,
               std::optional<obs::JourneyKey> jkey = std::nullopt);

  [[nodiscard]] const ResolverStats& resolver_stats() const { return stats_; }
  void reset_resolver_stats() { stats_ = ResolverStats{}; }
  [[nodiscard]] RrCache& cache() { return cache_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::size_t inflight_tasks() const { return tasks_.size(); }

 protected:
  SimDuration process(const net::Packet& packet) override;

 private:
  struct ClientRef {
    net::SocketAddr addr;
    std::uint16_t query_id;
    dns::Question question;
  };

  struct Task {
    std::uint64_t id = 0;
    dns::Question question;        // current target (follows CNAMEs)
    dns::DomainName original_qname;
    dns::RrType original_qtype = dns::RrType::A;
    std::optional<ClientRef> client;   // network client, or...
    ResolveCallback callback;          // ...local caller
    std::uint64_t parent = 0;          // glue subtask's awaiting parent
    int cname_depth = 0;
    int glue_depth = 0;
    int attempts = 0;
    std::vector<dns::ResourceRecord> accumulated;  // CNAME chain so far
    std::vector<net::Ipv4Address> servers;
    std::size_t server_index = 0;
    int retries = 0;
    SimTime started_at;
    bool waiting_glue = false;
    // Journey correlation: the client's query key (src ip, id, qhash), or
    // a driver-supplied key. Glue subtasks carry none.
    obs::JourneyKey jkey{};
    bool has_jkey = false;
  };

  struct PendingQuery {
    std::uint64_t task_id = 0;
    dns::Question question;
    net::Ipv4Address server;
    std::uint64_t timer_generation = 0;
    bool via_tcp = false;
  };

  // --- task machinery ---
  std::uint64_t start_task(dns::Question question,
                           std::optional<ClientRef> client,
                           ResolveCallback cb, std::uint64_t parent,
                           int glue_depth,
                           std::optional<obs::JourneyKey> jkey = std::nullopt);
  void continue_task(std::uint64_t task_id);
  void send_iterative(Task& task);
  void on_timeout(std::uint16_t query_id, std::uint64_t generation);
  /// Returns false when the response matched no pending query (or failed
  /// the source/question echo checks) — i.e. was dropped unmatched.
  bool handle_response(const dns::Message& response,
                       net::Ipv4Address from_server, bool via_tcp);
  void complete(std::uint64_t task_id, bool ok, dns::Rcode rcode);
  void fail(std::uint64_t task_id) { complete(task_id, false,
                                              dns::Rcode::ServFail); }

  /// Finds the closest enclosing zone with usable nameserver addresses in
  /// cache; falls back to root hints. If NS names are known but none has a
  /// cached address, returns the first such name for glue resolution.
  struct ServerSelection {
    std::vector<net::Ipv4Address> addresses;
    std::optional<dns::DomainName> glue_needed;
  };
  ServerSelection select_servers(const dns::DomainName& qname);

  void cache_message(const dns::Message& m);
  std::uint16_t allocate_query_id();

  // --- TCP fallback ---
  void start_tcp_query(Task& task, net::Ipv4Address server);
  /// Retries send_data until the handshake completes (no-op before
  /// ESTABLISHED) or attempts run out.
  void tcp_try_send(tcp::ConnId conn, Bytes framed, int attempts_left);
  void on_tcp_data(tcp::ConnId conn, BytesView data);

  /// One TCP fallback leg: the pending query it resends plus its framing
  /// buffer. Merged into one bounded table (was two parallel
  /// unordered_maps) — connection ids are minted in response to
  /// attacker-influenced truncation behaviour, so this state is capped
  /// like every other per-source table.
  struct TcpQuery {
    std::uint16_t query_id = 0;
    tcp::StreamFramer framer;
  };

  Config config_;
  RrCache cache_;
  ResolverStats stats_;
  obs::DropCounters drops_;  // bound as "server.lrs.drop.<reason>"
  common::BoundedTable<std::uint64_t, Task> tasks_;
  common::BoundedTable<std::uint16_t, PendingQuery> pending_;  // by query id
  common::BoundedTable<tcp::ConnId, TcpQuery> tcp_queries_;
  std::unique_ptr<tcp::TcpStack> tcp_;
  std::uint64_t next_task_id_ = 1;
  std::uint16_t next_query_id_ = 1;
  std::uint16_t next_ephemeral_port_ = 10000;
};

}  // namespace dnsguard::server
