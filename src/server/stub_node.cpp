#include "server/stub_node.h"

namespace dnsguard::server {
namespace {

obs::JourneyKey jkey_of(net::Ipv4Address stub, std::uint16_t id,
                        const dns::Question& q) {
  return {stub.value(), id, q.qname.hash32()};
}

}  // namespace

void StubResolverNode::lookup(const dns::DomainName& qname, dns::RrType qtype,
                              Callback cb) {
  std::uint16_t id = next_id_++;
  if (id == 0) id = next_id_++;
  stats_.lookups++;
  Pending p;
  p.question = dns::Question{qname, qtype, dns::RrClass::IN};
  p.callback = std::move(cb);
  p.started_at = now();
  if (sim().journeys().enabled()) {
    sim().journeys().mark(jkey_of(config_.address, id, p.question),
                          "stub.query", now());
  }
  pending_[id] = std::move(p);
  send_query(id);
}

void StubResolverNode::send_query(std::uint16_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  dns::Message q = dns::Message::query(id, p.question.qname, p.question.qtype,
                                       /*recursion_desired=*/true);
  send(net::Packet::make_udp({config_.address, 33000},
                             {config_.lrs_address, net::kDnsPort},
                             q.encode()));
  std::uint64_t gen = ++p.generation;
  schedule_in(config_.timeout, [this, id, gen] { on_timeout(id, gen); });
}

void StubResolverNode::on_timeout(std::uint16_t id, std::uint64_t generation) {
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second.generation != generation) return;
  Pending& p = it->second;
  if (p.retries < config_.max_retries) {
    p.retries++;
    stats_.retries++;
    if (sim().journeys().enabled()) {
      sim().journeys().mark(jkey_of(config_.address, id, p.question),
                            "stub.retry", now());
    }
    send_query(id);
    return;
  }
  stats_.timeouts++;
  Result r;
  r.ok = false;
  r.elapsed = now() - p.started_at;
  Callback cb = std::move(p.callback);
  if (sim().journeys().enabled()) {
    sim().journeys().end(jkey_of(config_.address, id, it->second.question),
                         "stub.timeout", now(), /*ok=*/false);
  }
  pending_.erase(it);
  if (cb) cb(r);
}

SimDuration StubResolverNode::process(const net::Packet& packet) {
  if (!packet.is_udp()) return SimDuration{0};
  auto m = dns::Message::decode(BytesView(packet.payload));
  if (!m) {
    drops_.count(obs::DropReason::kMalformed);
    trace(obs::TraceEvent::kDrop, packet, obs::DropReason::kMalformed);
    return config_.per_packet_cost;
  }
  if (!m->header.qr) {
    // A stub never serves queries.
    drops_.count(obs::DropReason::kMalformed);
    trace(obs::TraceEvent::kDrop, packet, obs::DropReason::kMalformed);
    return config_.per_packet_cost;
  }
  trace(obs::TraceEvent::kClassify, packet);
  auto it = pending_.find(m->header.id);
  if (it == pending_.end()) {
    drops_.count(obs::DropReason::kUnmatchedResponse);
    trace(obs::TraceEvent::kDrop, packet,
          obs::DropReason::kUnmatchedResponse);
    return config_.per_packet_cost;
  }
  const dns::Question* q = m->question();
  if (q == nullptr || !(q->qname == it->second.question.qname) ||
      q->qtype != it->second.question.qtype) {
    drops_.count(obs::DropReason::kUnmatchedResponse);
    trace(obs::TraceEvent::kDrop, packet,
          obs::DropReason::kUnmatchedResponse);
    return config_.per_packet_cost;
  }
  Result r;
  r.ok = m->header.rcode == dns::Rcode::NoError;
  r.rcode = m->header.rcode;
  r.answers = m->answers;
  r.elapsed = now() - it->second.started_at;
  stats_.answered++;
  if (sim().journeys().enabled()) {
    sim().journeys().end(jkey_of(config_.address, m->header.id,
                                 it->second.question),
                         "stub.answered", now(), r.ok);
  }
  Callback cb = std::move(it->second.callback);
  pending_.erase(it);
  if (cb) cb(r);
  return config_.per_packet_cost;
}

}  // namespace dnsguard::server
