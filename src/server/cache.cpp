#include "server/cache.h"

#include <algorithm>
#include <cctype>

namespace dnsguard::server {

RrCache::Key RrCache::key_of(const dns::DomainName& name, dns::RrType type) {
  std::string s = name.to_string();
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return Key{std::move(s), static_cast<std::uint16_t>(type)};
}

void RrCache::put(const dns::ResourceRecord& rr, SimTime now) {
  if (rr.ttl == 0) return;
  Key key = key_of(rr.name, rr.type);
  SimTime expires = now + seconds(rr.ttl);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.expires <= now) {
    entries_[key] = Entry{{rr}, expires};
    stats_.inserts++;
    return;
  }
  // Merge into the existing set if this exact record is new; keep the
  // earlier of the two expiries so no record outlives its TTL.
  Entry& e = it->second;
  if (std::none_of(e.rrs.begin(), e.rrs.end(),
                   [&rr](const dns::ResourceRecord& x) { return x == rr; })) {
    e.rrs.push_back(rr);
    stats_.inserts++;
  }
  e.expires = std::min(e.expires, expires);
}

std::optional<std::vector<dns::ResourceRecord>> RrCache::get(
    const dns::DomainName& name, dns::RrType type, SimTime now) {
  auto it = entries_.find(key_of(name, type));
  if (it == entries_.end() || it->second.expires <= now) {
    if (it != entries_.end()) entries_.erase(it);
    stats_.misses++;
    return std::nullopt;
  }
  stats_.hits++;
  return it->second.rrs;
}

void RrCache::evict(const dns::DomainName& name, dns::RrType type) {
  entries_.erase(key_of(name, type));
  negative_.erase(key_of(name, type));
}

void RrCache::put_negative(const dns::DomainName& name, dns::RrType type,
                           dns::Rcode rcode, std::uint32_t ttl, SimTime now) {
  if (ttl == 0) return;
  negative_[key_of(name, type)] = NegativeEntry{rcode, now + seconds(ttl)};
}

std::optional<dns::Rcode> RrCache::get_negative(const dns::DomainName& name,
                                                dns::RrType type,
                                                SimTime now) {
  auto it = negative_.find(key_of(name, type));
  if (it == negative_.end() || it->second.expires <= now) {
    if (it != negative_.end()) negative_.erase(it);
    return std::nullopt;
  }
  stats_.hits++;
  return it->second.rcode;
}

}  // namespace dnsguard::server
