#include "server/cache.h"

#include <algorithm>
#include <cctype>

namespace dnsguard::server {

RrCache::RrCache(Config config)
    : config_(config),
      // Per-entry lifetimes come from the records' own TTLs (set_expiry);
      // at capacity the LRU record set is recycled — correct for a cache,
      // where eviction only costs a refetch.
      entries_({.capacity = config.capacity, .evict_lru_when_full = true}),
      negative_({.capacity = config.negative_capacity,
                 .evict_lru_when_full = true}) {}

RrCache::Key RrCache::key_of(const dns::DomainName& name, dns::RrType type) {
  std::string s = name.to_string();
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return Key{std::move(s), static_cast<std::uint16_t>(type)};
}

void RrCache::put(const dns::ResourceRecord& rr, SimTime now) {
  if (rr.ttl == 0) return;
  Key key = key_of(rr.name, rr.type);
  SimTime expires = now + seconds(rr.ttl);
  // try_emplace lazily evicts an expired entry under this key and hands
  // back a fresh one, so the stale-entry replacement of the std::map
  // version falls out of the table's own expiry handling.
  auto r = entries_.try_emplace(key, now);
  if (r.value == nullptr) return;  // refused (cannot happen with LRU evict)
  Entry& e = *r.value;
  if (r.inserted) {
    e.rrs.push_back(rr);
    e.expires = expires;
    entries_.set_expiry(key, expires);
    stats_.inserts++;
    return;
  }
  // Merge into the existing set if this exact record is new; keep the
  // earlier of the two expiries so no record outlives its TTL.
  if (std::none_of(e.rrs.begin(), e.rrs.end(),
                   [&rr](const dns::ResourceRecord& x) { return x == rr; })) {
    e.rrs.push_back(rr);
    stats_.inserts++;
  }
  e.expires = std::min(e.expires, expires);
  entries_.set_expiry(key, e.expires);
}

std::optional<std::vector<dns::ResourceRecord>> RrCache::get(
    const dns::DomainName& name, dns::RrType type, SimTime now) {
  // find() evicts an expired entry on contact, mirroring the old
  // erase-on-expired-lookup behaviour.
  Entry* e = entries_.find(key_of(name, type), now);
  if (e == nullptr) {
    stats_.misses++;
    return std::nullopt;
  }
  stats_.hits++;
  return e->rrs;
}

void RrCache::evict(const dns::DomainName& name, dns::RrType type) {
  entries_.erase(key_of(name, type));
  negative_.erase(key_of(name, type));
}

void RrCache::put_negative(const dns::DomainName& name, dns::RrType type,
                           dns::Rcode rcode, std::uint32_t ttl, SimTime now) {
  if (ttl == 0) return;
  Key key = key_of(name, type);
  auto r = negative_.try_emplace(key, now, NegativeEntry{rcode, now});
  if (r.value == nullptr) return;
  *r.value = NegativeEntry{rcode, now + seconds(ttl)};
  negative_.set_expiry(key, r.value->expires);
}

std::optional<dns::Rcode> RrCache::get_negative(const dns::DomainName& name,
                                                dns::RrType type,
                                                SimTime now) {
  NegativeEntry* e = negative_.find(key_of(name, type), now);
  if (e == nullptr) return std::nullopt;
  stats_.hits++;
  return e->rcode;
}

}  // namespace dnsguard::server
