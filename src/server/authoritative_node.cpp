#include "server/authoritative_node.h"

#include <algorithm>

#include "common/log.h"

namespace dnsguard::server {

AuthoritativeServerNode::AuthoritativeServerNode(sim::Simulator& sim,
                                                 std::string name,
                                                 Config config)
    : sim::Node(sim, std::move(name)),
      config_(config),
      framers_({.capacity = config.max_tcp_connections,
                .evict_lru_when_full = true}) {
  set_profile_stage(obs::prof::Stage::kAnsService);
  tcp_ = std::make_unique<tcp::TcpStack>(
      [this](net::Packet p) { send(std::move(p)); },
      [this] { return now(); },
      tcp::TcpStack::Callbacks{
          .on_established = {},
          .on_data = [this](tcp::ConnId id,
                            BytesView data) { on_tcp_data(id, data); },
          .on_closed = [this](tcp::ConnId id) { framers_.erase(id); },
      },
      tcp::TcpStack::Options{.syn_cookies = false,
                             .max_connections = config.max_tcp_connections});
  tcp_->listen(net::kDnsPort);
  tcp_->set_drop_counters(&drops_);
  ans_stats_.bind(this->sim().metrics(), "server.ans");
  drops_.bind(this->sim().metrics(), "server.ans");
  tcp_->bind_metrics(this->sim().metrics(), "server.ans.tcp");
  framers_.bind_metrics(this->sim().metrics(), "server.ans.framers");

  // Periodic reaping of dead TCP connections.
  schedule_in(config_.tcp_idle_timeout, [this] { reap_loop(); });
}

void AuthoritativeServerNode::reap_loop() {
  tcp_->reap(config_.tcp_idle_timeout, SimDuration{0});
  schedule_in(config_.tcp_idle_timeout, [this] { reap_loop(); });
}

void AuthoritativeServerNode::apply_ttl_override(dns::Message& m) const {
  if (!config_.ttl_override) return;
  for (auto* section : {&m.answers, &m.authority, &m.additional}) {
    for (auto& rr : *section) rr.ttl = *config_.ttl_override;
  }
}

dns::Message AuthoritativeServerNode::answer(const dns::Message& query,
                                             bool via_tcp) const {
  Answer a = engine_.answer(query);
  apply_ttl_override(a.message);

  // EDNS0 (RFC 6891): an OPT record in the query advertises the
  // requester's reassembly capability; honor it (clamped) instead of the
  // classic 512-byte limit, and mirror an OPT in the response.
  std::size_t max_udp = dns::kMaxUdpPayload;
  bool requester_edns = false;
  for (const auto& rr : query.additional) {
    if (rr.type == dns::RrType::OPT) {
      requester_edns = true;
      const auto& opt = std::get<dns::OptRdata>(rr.rdata);
      max_udp = std::clamp<std::size_t>(opt.udp_payload_size,
                                        dns::kMaxUdpPayload,
                                        config_.max_edns_payload);
      break;
    }
  }
  if (requester_edns) {
    a.message.additional.push_back(dns::ResourceRecord{
        dns::DomainName{}, dns::RrType::OPT, dns::RrClass::IN, 0,
        dns::OptRdata{static_cast<std::uint16_t>(config_.max_edns_payload)}});
  }

  if (!via_tcp && a.message.encode().size() > max_udp) {
    // Too large for UDP: signal truncation; the client retries over TCP.
    dns::Message tc = dns::Message::response_to(query);
    tc.header.tc = true;
    tc.header.aa = a.message.header.aa;
    return tc;
  }
  return a.message;
}

SimDuration AuthoritativeServerNode::process(const net::Packet& packet) {
  if (packet.is_udp()) {
    if (packet.udp().dst_port != net::kDnsPort) return SimDuration{0};
    auto query = dns::Message::decode(BytesView(packet.payload));
    if (!query || query->header.qr || query->question() == nullptr) {
      ans_stats_.malformed++;
      drops_.count(obs::DropReason::kMalformed);
      trace(obs::TraceEvent::kDrop, packet, obs::DropReason::kMalformed);
      return config_.udp_query_cost;  // parsing junk still costs CPU
    }
    ans_stats_.udp_queries++;
    dns::Message resp = answer(*query, /*via_tcp=*/false);
    if (resp.header.tc) ans_stats_.truncated++;
    ans_stats_.responses++;
    if (sim().journeys().enabled()) {
      sim().journeys().mark({packet.src_ip.value(), query->header.id,
                             query->question()->qname.hash32()},
                            resp.header.tc ? "ans.truncate" : "ans.answer",
                            now());
    }
    send(net::Packet::make_udp({config_.address, net::kDnsPort}, packet.src(),
                               resp.encode_pooled()));
    return config_.udp_query_cost;
  }

  // TCP path: the stack drives callbacks; costs accrue in pending_cost_.
  pending_cost_ = config_.tcp_segment_cost;
  if (packet.tcp().flags.syn && !packet.tcp().flags.ack) {
    pending_cost_ = pending_cost_ + config_.tcp_connection_cost;
  }
  tcp_->handle_packet(packet);
  return pending_cost_;
}

void AuthoritativeServerNode::on_tcp_data(tcp::ConnId conn, BytesView data) {
  auto ins = framers_.try_emplace(conn, now());
  if (ins.value == nullptr) {
    // Framer table refused (cannot happen with LRU eviction enabled, but
    // the contract is refuse-or-evict): drop the connection rather than
    // process unframeable bytes.
    drops_.count(obs::DropReason::kStateTableFull);
    tcp_->abort(conn);
    return;
  }
  for (Bytes& msg : ins.value->push(data)) {
    auto query = dns::Message::decode(BytesView(msg));
    if (!query || query->header.qr || query->question() == nullptr) {
      ans_stats_.malformed++;
      drops_.count(obs::DropReason::kMalformed);
      continue;
    }
    ans_stats_.tcp_queries++;
    dns::Message resp = answer(*query, /*via_tcp=*/true);
    ans_stats_.responses++;
    if (sim().journeys().enabled()) {
      if (auto remote = tcp_->remote_of(conn)) {
        sim().journeys().mark({remote->ip.value(), query->header.id,
                               query->question()->qname.hash32()},
                              "ans.answer_tcp", now());
      }
    }
    tcp_->send_data(conn, BytesView(tcp::StreamFramer::frame(resp.encode())));
  }
}

SimDuration AnsSimulatorNode::process(const net::Packet& packet) {
  if (!packet.is_udp() || packet.udp().dst_port != net::kDnsPort) {
    return SimDuration{0};
  }
  auto query = dns::Message::decode(BytesView(packet.payload));
  if (!query || query->header.qr || query->question() == nullptr) {
    ans_stats_.malformed++;
    drops_.count(obs::DropReason::kMalformed);
    trace(obs::TraceEvent::kDrop, packet, obs::DropReason::kMalformed);
    return config_.query_cost;
  }
  ans_stats_.udp_queries++;
  if (sim().journeys().enabled()) {
    sim().journeys().mark({packet.src_ip.value(), query->header.id,
                           query->question()->qname.hash32()},
                          "ans.answer", now());
  }
  dns::Message resp = dns::Message::response_to(*query);
  resp.header.aa = true;
  resp.answers.push_back(dns::ResourceRecord::a(query->question()->qname,
                                                config_.answer_address,
                                                config_.answer_ttl));
  ans_stats_.responses++;
  send(net::Packet::make_udp({config_.address, net::kDnsPort}, packet.src(),
                             resp.encode_pooled()));
  return config_.query_cost;
}

}  // namespace dnsguard::server
