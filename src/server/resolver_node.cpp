#include "server/resolver_node.h"

#include <algorithm>

#include "common/log.h"

namespace dnsguard::server {

RecursiveResolverNode::RecursiveResolverNode(sim::Simulator& sim,
                                             std::string name, Config config)
    : sim::Node(sim, std::move(name)),
      config_(std::move(config)),
      tasks_({.capacity = config_.max_inflight_tasks,
              .evict_lru_when_full = false}),
      pending_({.capacity = config_.max_pending_queries,
                .evict_lru_when_full = false}),
      // One entry per in-flight TCP fallback leg; a pending query backs
      // each, so the same cap applies. LRU eviction just abandons the
      // oldest leg's framing buffer — the query itself still times out.
      tcp_queries_({.capacity = config_.max_pending_queries,
                    .evict_lru_when_full = true}) {
  set_profile_stage(obs::prof::Stage::kResolverService);
  tcp_ = std::make_unique<tcp::TcpStack>(
      [this](net::Packet p) { send(std::move(p)); },
      [this] { return now(); },
      tcp::TcpStack::Callbacks{
          .on_established = {},
          .on_data = [this](tcp::ConnId id,
                            BytesView data) { on_tcp_data(id, data); },
          .on_closed = [this](tcp::ConnId id) { tcp_queries_.erase(id); },
      },
      tcp::TcpStack::Options{});
  // TCP fallback legs are keyed by our client-side endpoint (address,
  // ephemeral port); start_tcp_query aliases them onto the task journey.
  tcp_->set_journey_fn([this](net::SocketAddr client, std::string_view stage) {
    this->sim().journeys().mark({client.ip.value(), client.port, 0}, stage,
                                now());
  });
  stats_.bind(this->sim().metrics(), "server.lrs");
  drops_.bind(this->sim().metrics(), "server.lrs");
  cache_.bind_metrics(this->sim().metrics(), "server.cache");
  tcp_->bind_metrics(this->sim().metrics(), "server.lrs.tcp");
  tasks_.bind_metrics(this->sim().metrics(), "server.lrs.tasks");
  pending_.bind_metrics(this->sim().metrics(), "server.lrs.pending");
  tcp_queries_.bind_metrics(this->sim().metrics(), "server.lrs.tcp_queries");
}

void RecursiveResolverNode::resolve(const dns::DomainName& qname,
                                    dns::RrType qtype, ResolveCallback cb,
                                    std::optional<obs::JourneyKey> jkey) {
  start_task(dns::Question{qname, qtype, dns::RrClass::IN}, std::nullopt,
             std::move(cb), /*parent=*/0, /*glue_depth=*/0, jkey);
}

std::uint16_t RecursiveResolverNode::allocate_query_id() {
  // Skip ids still in flight; with < 2^16 outstanding this terminates.
  for (int i = 0; i < 65536; ++i) {
    std::uint16_t id = next_query_id_++;
    if (id != 0 && !pending_.contains(id)) return id;
  }
  return 0;  // resolver saturated; caller fails the task
}

std::uint64_t RecursiveResolverNode::start_task(
    dns::Question question, std::optional<ClientRef> client,
    ResolveCallback cb, std::uint64_t parent, int glue_depth,
    std::optional<obs::JourneyKey> jkey) {
  Task task;
  task.id = next_task_id_++;
  task.original_qname = question.qname;
  task.original_qtype = question.qtype;
  task.question = std::move(question);
  task.client = std::move(client);
  task.callback = std::move(cb);
  task.parent = parent;
  task.glue_depth = glue_depth;
  task.started_at = now();
  if (jkey) {
    task.jkey = *jkey;
    task.has_jkey = true;
  } else if (task.client) {
    task.jkey = {task.client->addr.ip.value(), task.client->query_id,
                 task.client->question.qname.hash32()};
    task.has_jkey = true;
  }
  std::uint64_t id = task.id;
  auto ins = tasks_.try_emplace(id, now(), std::move(task));
  if (ins.value == nullptr) {
    // At the in-flight cap the table refuses (leaving `task` untouched):
    // shed the new work with ServFail at admission rather than let a
    // query flood grow the task map without bound.
    stats_.failures++;
    if (task.client) {
      dns::Message resp;
      resp.header.id = task.client->query_id;
      resp.header.qr = true;
      resp.header.rd = true;
      resp.header.ra = true;
      resp.header.rcode = dns::Rcode::ServFail;
      resp.questions.push_back(task.client->question);
      stats_.client_responses++;
      send(net::Packet::make_udp({config_.address, net::kDnsPort},
                                 task.client->addr, resp.encode()));
    }
    if (task.callback) {
      Result r;
      r.elapsed = SimDuration{0};
      task.callback(r);
    }
    if (parent != 0) fail(parent);
    return 0;
  }
  continue_task(id);
  return id;
}

RecursiveResolverNode::ServerSelection
RecursiveResolverNode::select_servers(const dns::DomainName& qname) {
  ServerSelection sel;
  // Walk enclosing zones from the deepest: qname itself, its parent, ...
  // down to the root. The guard's fabricated referrals place the "zone"
  // exactly at qname, so starting at depth == label_count matters.
  for (std::size_t depth = qname.label_count();; --depth) {
    dns::DomainName zone = qname.suffix(depth);
    auto ns_set = cache_.get(zone, dns::RrType::NS, now());
    if (ns_set) {
      std::optional<dns::DomainName> first_unresolved;
      for (const auto& ns : *ns_set) {
        const auto& nsname = std::get<dns::NsRdata>(ns.rdata).nsdname;
        if (auto addrs = cache_.get(nsname, dns::RrType::A, now())) {
          for (const auto& a : *addrs) {
            sel.addresses.push_back(std::get<dns::ARdata>(a.rdata).address);
          }
        } else if (!first_unresolved) {
          first_unresolved = nsname;
        }
      }
      if (!sel.addresses.empty()) return sel;
      if (first_unresolved) {
        sel.glue_needed = first_unresolved;
        return sel;
      }
      // NS names cached but unresolvable; fall through to shallower zone.
    }
    if (depth == 0) break;
  }
  sel.addresses = config_.root_hints;
  return sel;
}

void RecursiveResolverNode::continue_task(std::uint64_t task_id) {
  Task* found = tasks_.find(task_id, now());
  if (found == nullptr) return;
  Task& task = *found;
  task.waiting_glue = false;

  if (++task.attempts > config_.max_attempts) {
    fail(task_id);
    return;
  }

  // 1. Cache: direct answer?
  if (auto hit = cache_.get(task.question.qname, task.question.qtype, now())) {
    for (const auto& rr : *hit) task.accumulated.push_back(rr);
    complete(task_id, true, dns::Rcode::NoError);
    return;
  }
  // Negative cache (RFC 2308): a recent NXDOMAIN/NODATA answers without
  // touching the network.
  if (auto neg = cache_.get_negative(task.question.qname, task.question.qtype,
                                     now())) {
    complete(task_id, true, *neg);
    return;
  }
  // Cached CNAME redirect?
  if (task.question.qtype != dns::RrType::CNAME) {
    if (auto cn = cache_.get(task.question.qname, dns::RrType::CNAME, now())) {
      if (++task.cname_depth > config_.max_cname_depth) {
        fail(task_id);
        return;
      }
      stats_.cname_chases++;
      task.accumulated.push_back(cn->front());
      task.question.qname = std::get<dns::CnameRdata>(cn->front().rdata).target;
      continue_task(task_id);
      return;
    }
  }

  // 2. Choose servers.
  ServerSelection sel = select_servers(task.question.qname);
  if (sel.glue_needed) {
    if (task.glue_depth >= config_.max_glue_depth) {
      fail(task_id);
      return;
    }
    stats_.glue_subtasks++;
    task.waiting_glue = true;
    std::uint64_t parent_id = task.id;
    start_task(dns::Question{*sel.glue_needed, dns::RrType::A,
                             dns::RrClass::IN},
               std::nullopt, {}, parent_id, task.glue_depth + 1);
    return;
  }
  task.servers = std::move(sel.addresses);
  task.server_index = 0;
  task.retries = 0;
  if (task.servers.empty()) {
    fail(task_id);
    return;
  }
  send_iterative(task);
}

void RecursiveResolverNode::send_iterative(Task& task) {
  std::uint16_t qid = allocate_query_id();
  if (qid == 0) {
    fail(task.id);
    return;
  }
  net::Ipv4Address server = task.servers[task.server_index];
  dns::Message query = dns::Message::query(qid, task.question.qname,
                                           task.question.qtype,
                                           /*recursion_desired=*/false);
  if (config_.edns_payload_size > 0) {
    query.additional.push_back(dns::ResourceRecord{
        dns::DomainName{}, dns::RrType::OPT, dns::RrClass::IN, 0,
        dns::OptRdata{config_.edns_payload_size}});
  }
  PendingQuery pq;
  pq.task_id = task.id;
  pq.question = task.question;
  pq.server = server;
  pq.timer_generation = 0;
  auto ins = pending_.try_emplace(qid, now(), std::move(pq));
  if (ins.value == nullptr) {
    fail(task.id);
    return;
  }
  stats_.iterative_queries++;

  if (task.has_jkey && sim().journeys().enabled()) {
    // The upstream exchange travels under (our address, new qid, qname):
    // alias it onto the client journey so guard-side marks merge.
    obs::JourneyTracker& jt = sim().journeys();
    jt.alias(task.jkey,
             {config_.address.value(), qid, task.question.qname.hash32()});
    jt.mark(task.jkey, "lrs.iterative", now());
  }

  send(net::Packet::make_udp({config_.address, net::kDnsPort},
                             {server, net::kDnsPort}, query.encode()));

  std::uint64_t gen = ins.value->timer_generation;
  schedule_in(config_.retry_timeout,
              [this, qid, gen] { on_timeout(qid, gen); });
}

void RecursiveResolverNode::on_timeout(std::uint16_t query_id,
                                       std::uint64_t generation) {
  PendingQuery* found = pending_.find(query_id, now());
  if (found == nullptr || found->timer_generation != generation) {
    return;  // already answered or superseded
  }
  PendingQuery pq = std::move(*found);
  pending_.erase(query_id);

  Task* tfound = tasks_.find(pq.task_id, now());
  if (tfound == nullptr) return;
  Task& task = *tfound;

  if (task.has_jkey && sim().journeys().enabled()) {
    sim().journeys().mark(task.jkey, "lrs.timeout", now());
  }
  if (task.retries < config_.max_retries) {
    task.retries++;
    stats_.retransmissions++;
    send_iterative(task);
    return;
  }
  // Next server, if any.
  if (task.server_index + 1 < task.servers.size()) {
    task.server_index++;
    task.retries = 0;
    stats_.retransmissions++;
    send_iterative(task);
    return;
  }
  fail(pq.task_id);
}

void RecursiveResolverNode::cache_message(const dns::Message& m) {
  cache_.put_all(m.answers, now());
  cache_.put_all(m.authority, now());
  cache_.put_all(m.additional, now());
}

bool RecursiveResolverNode::handle_response(const dns::Message& response,
                                            net::Ipv4Address from_server,
                                            bool via_tcp) {
  PendingQuery* pfound = pending_.find(response.header.id, now());
  if (pfound == nullptr) {
    drops_.count(obs::DropReason::kUnmatchedResponse);
    return false;
  }
  PendingQuery& pq = *pfound;
  // Anti-spoofing checks a real resolver performs: the response must come
  // from the queried server and echo the question.
  if (pq.server != from_server) {
    drops_.count(obs::DropReason::kUnmatchedResponse);
    return false;
  }
  const dns::Question* q = response.question();
  if (q == nullptr || !(q->qname == pq.question.qname) ||
      q->qtype != pq.question.qtype) {
    drops_.count(obs::DropReason::kUnmatchedResponse);
    return false;
  }
  std::uint64_t task_id = pq.task_id;

  // Truncated: retry the same query over TCP (RFC 1035 §4.2.2). Keep the
  // pending entry; the TCP response will land back here.
  if (response.header.tc && !via_tcp) {
    Task* tc_task = tasks_.find(task_id, now());
    if (tc_task == nullptr) {
      pending_.erase(response.header.id);
      return true;
    }
    pq.via_tcp = true;
    pq.timer_generation++;
    stats_.tcp_fallbacks++;
    // Arm a fresh timer for the TCP attempt so a stalled connection
    // (e.g. the guard dropping segments under attack) fails the task
    // instead of leaking it.
    std::uint16_t qid = response.header.id;
    std::uint64_t gen = pq.timer_generation;
    schedule_in(config_.retry_timeout * 2,
                [this, qid, gen] { on_timeout(qid, gen); });
    start_tcp_query(*tc_task, from_server);
    return true;
  }

  pending_.erase(response.header.id);
  Task* tfound = tasks_.find(task_id, now());
  if (tfound == nullptr) return true;
  Task& task = *tfound;

  cache_message(response);

  // SOA "minimum" bounds how long a negative result may be cached
  // (RFC 2308 §5): use min(SOA TTL, SOA minimum).
  auto negative_ttl = [&response]() -> std::uint32_t {
    for (const auto& rr : response.authority) {
      if (rr.type == dns::RrType::SOA) {
        const auto& soa = std::get<dns::SoaRdata>(rr.rdata);
        return std::min(rr.ttl, soa.minimum);
      }
    }
    return 0;
  };

  if (response.header.rcode == dns::Rcode::NxDomain) {
    cache_.put_negative(task.question.qname, task.question.qtype,
                        dns::Rcode::NxDomain, negative_ttl(), now());
    complete(task_id, true, dns::Rcode::NxDomain);
    return true;
  }
  if (response.header.rcode != dns::Rcode::NoError) {
    // Try next server; a lame/refusing server shouldn't kill resolution.
    if (task.server_index + 1 < task.servers.size()) {
      task.server_index++;
      task.retries = 0;
      send_iterative(task);
    } else {
      fail(task_id);
    }
    return true;
  }

  if (!response.answers.empty()) {
    // Collect answers; chase a CNAME if the target type is still missing.
    bool have_target_type = false;
    std::optional<dns::DomainName> cname_target;
    for (const auto& rr : response.answers) {
      task.accumulated.push_back(rr);
      if (rr.type == task.question.qtype && rr.name == task.question.qname) {
        have_target_type = true;
      }
      if (rr.type == dns::RrType::CNAME && rr.name == task.question.qname) {
        cname_target = std::get<dns::CnameRdata>(rr.rdata).target;
      }
    }
    // Also accept any record of the right type for a CNAME-chained owner.
    if (!have_target_type) {
      for (const auto& rr : response.answers) {
        if (rr.type == task.question.qtype) have_target_type = true;
      }
    }
    if (have_target_type || task.question.qtype == dns::RrType::CNAME) {
      complete(task_id, true, dns::Rcode::NoError);
      return true;
    }
    if (cname_target) {
      if (++task.cname_depth > config_.max_cname_depth) {
        fail(task_id);
        return true;
      }
      stats_.cname_chases++;
      task.question.qname = *cname_target;
      continue_task(task_id);
      return true;
    }
    // Answers but nothing usable: treat as NODATA.
    complete(task_id, true, dns::Rcode::NoError);
    return true;
  }

  if (response.is_referral()) {
    // Accept the referral if it names a zone enclosing (or equal to) the
    // question; the guard's fabricated referrals use owner == qname.
    const auto& owner = response.authority.front().name;
    if (task.question.qname.is_subdomain_of(owner)) {
      stats_.referrals_followed++;
      continue_task(task_id);
      return true;
    }
  }

  // NODATA (or unusable referral): negative-cache the absence of this
  // type if the server supplied an SOA.
  cache_.put_negative(task.question.qname, task.question.qtype,
                      dns::Rcode::NoError, negative_ttl(), now());
  complete(task_id, true, dns::Rcode::NoError);
  return true;
}

void RecursiveResolverNode::complete(std::uint64_t task_id, bool ok,
                                     dns::Rcode rcode) {
  Task* found = tasks_.find(task_id, now());
  if (found == nullptr) return;
  Task task = std::move(*found);
  tasks_.erase(task_id);

  if (ok) {
    stats_.completed++;
  } else {
    stats_.failures++;
  }

  if (task.has_jkey && sim().journeys().enabled()) {
    // Mark, don't end: the journey terminates where the answer is
    // consumed (stub / driver), which still lies ahead of this hop.
    sim().journeys().mark(task.jkey, "lrs.respond", now());
  }

  if (task.parent != 0) {
    // Glue subtask: results are already in cache; resume the parent.
    Task* parent = tasks_.find(task.parent, now());
    if (parent != nullptr && parent->waiting_glue) {
      if (ok && rcode == dns::Rcode::NoError) {
        continue_task(task.parent);
      } else {
        fail(task.parent);
      }
    }
    return;
  }

  if (task.client) {
    dns::Message resp;
    resp.header.id = task.client->query_id;
    resp.header.qr = true;
    resp.header.rd = true;
    resp.header.ra = true;
    resp.header.rcode = ok ? rcode : dns::Rcode::ServFail;
    resp.questions.push_back(task.client->question);
    if (ok && rcode == dns::Rcode::NoError) {
      resp.answers = task.accumulated;
    }
    stats_.client_responses++;
    send(net::Packet::make_udp({config_.address, net::kDnsPort},
                               task.client->addr, resp.encode()));
  }
  if (task.callback) {
    Result r;
    r.ok = ok;  // "resolution completed"; rcode carries the DNS outcome
    r.rcode = ok ? rcode : dns::Rcode::ServFail;
    r.answers = std::move(task.accumulated);
    r.elapsed = now() - task.started_at;
    task.callback(r);
  }
}

void RecursiveResolverNode::start_tcp_query(Task& task,
                                            net::Ipv4Address server) {
  net::SocketAddr local{config_.address, next_ephemeral_port_++};
  if (next_ephemeral_port_ < 10000) next_ephemeral_port_ = 10000;
  if (task.has_jkey && sim().journeys().enabled()) {
    // The TCP stack marks handshake milestones keyed by our client-side
    // endpoint; fold them into the task's journey.
    obs::JourneyTracker& jt = sim().journeys();
    jt.alias(task.jkey, {local.ip.value(), local.port, 0});
    jt.mark(task.jkey, "lrs.tcp_fallback", now());
  }
  tcp::ConnId conn = tcp_->connect(local, {server, net::kDnsPort});

  // Find the pending query id for this task to resend over TCP.
  std::uint16_t qid = 0;
  pending_.for_each([&](const std::uint16_t& id, const PendingQuery& pq) {
    if (qid == 0 && pq.task_id == task.id) qid = id;
  });
  if (qid == 0) {
    tcp_->abort(conn);
    return;
  }
  auto ins = tcp_queries_.try_emplace(conn, now());
  if (ins.value == nullptr) {
    tcp_->abort(conn);
    return;
  }
  ins.value->query_id = qid;

  dns::Message query = dns::Message::query(qid, task.question.qname,
                                           task.question.qtype, false);
  Bytes framed = tcp::StreamFramer::frame(query.encode());
  // Send once established. Capture by value; the stack ignores sends on
  // dead connections.
  std::uint64_t task_id = task.id;
  (void)task_id;
  // Poll-free approach: TcpStack has no per-connection established hook
  // with payload, so wire it through the general on_established callback
  // is not possible post-construction; instead we piggyback: try now (it
  // will fail silently), and also schedule a retry after the handshake
  // RTT. Robust because send_data() is a no-op until ESTABLISHED.
  tcp_try_send(conn, std::move(framed), 100);
}

void RecursiveResolverNode::tcp_try_send(tcp::ConnId conn, Bytes framed,
                                         int attempts_left) {
  if (tcp_->send_data(conn, BytesView(framed))) return;
  if (attempts_left <= 0) return;
  schedule_in(milliseconds(1),
              [this, conn, framed = std::move(framed), attempts_left] {
                tcp_try_send(conn, framed, attempts_left - 1);
              });
}

void RecursiveResolverNode::on_tcp_data(tcp::ConnId conn, BytesView data) {
  TcpQuery* q = tcp_queries_.find(conn, now());
  if (q == nullptr) return;
  for (Bytes& msg : q->framer.push(data)) {
    auto m = dns::Message::decode(BytesView(msg));
    if (!m || !m->header.qr) continue;
    auto remote = tcp_->remote_of(conn);
    if (!remote) continue;
    handle_response(*m, remote->ip, /*via_tcp=*/true);
  }
  // One query per connection: close after the response arrives.
  tcp_->close(conn);
}

SimDuration RecursiveResolverNode::process(const net::Packet& packet) {
  if (packet.is_tcp()) {
    tcp_->handle_packet(packet);
    return config_.per_packet_cost;
  }
  if (!packet.is_udp()) {
    // Neither TCP nor UDP: nothing a DNS server can parse.
    drops_.count(obs::DropReason::kMalformed);
    trace(obs::TraceEvent::kDrop, packet, obs::DropReason::kMalformed);
    return SimDuration{0};
  }

  auto m = dns::Message::decode(BytesView(packet.payload));
  if (!m) {
    drops_.count(obs::DropReason::kMalformed);
    trace(obs::TraceEvent::kDrop, packet, obs::DropReason::kMalformed);
    return config_.per_packet_cost;
  }

  if (m->header.qr) {
    trace(obs::TraceEvent::kClassify, packet);
    if (!handle_response(*m, packet.src_ip, /*via_tcp=*/false)) {
      trace(obs::TraceEvent::kDrop, packet,
            obs::DropReason::kUnmatchedResponse);
    }
    return config_.per_packet_cost;
  }

  // A recursive client query (stub resolver).
  if (packet.udp().dst_port == net::kDnsPort && m->header.rd &&
      m->question() != nullptr) {
    trace(obs::TraceEvent::kClassify, packet);
    stats_.client_queries++;
    ClientRef client{packet.src(), m->header.id, *m->question()};
    if (sim().journeys().enabled()) {
      sim().journeys().mark({packet.src_ip.value(), m->header.id,
                             m->question()->qname.hash32()},
                            "lrs.client_rx", now());
    }
    start_task(*m->question(), client, {}, 0, 0);
  } else {
    // Neither a usable response nor a recursive query.
    drops_.count(obs::DropReason::kMalformed);
    trace(obs::TraceEvent::kDrop, packet, obs::DropReason::kMalformed);
  }
  return config_.per_packet_cost;
}

}  // namespace dnsguard::server
