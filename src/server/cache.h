// TTL-honoring resource-record cache used by the recursive resolver.
//
// Cache behaviour is load-bearing for the paper: the DNS-based scheme's
// latency depends on the LRS caching fabricated NS records with a large
// TTL while the underlying A records expire on the original schedule
// (§III.B.1, issue one), and Fig. 5 disables caching entirely by serving
// TTL=0 responses.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "dns/message.h"
#include "dns/records.h"
#include "obs/metrics.h"

namespace dnsguard::server {

class RrCache {
 public:
  /// Counter cells: attachable to a MetricsRegistry via bind_metrics().
  struct Stats {
    obs::Counter hits;
    obs::Counter misses;
    obs::Counter inserts;
  };

  /// Caches one record set under (name, type). TTL 0 records are not
  /// cached (RFC 1035 semantics: use only for the current transaction).
  void put(const dns::ResourceRecord& rr, SimTime now);
  void put_all(const std::vector<dns::ResourceRecord>& rrs, SimTime now) {
    for (const auto& rr : rrs) put(rr, now);
  }

  /// Returns unexpired records for (name, type), or nullopt.
  [[nodiscard]] std::optional<std::vector<dns::ResourceRecord>> get(
      const dns::DomainName& name, dns::RrType type, SimTime now);

  /// Removes the entry for (name, type) — used by tests to force expiry.
  void evict(const dns::DomainName& name, dns::RrType type);

  // --- negative caching (RFC 2308) ----------------------------------------
  // NXDOMAIN / NODATA results are cached for the SOA "minimum" interval so
  // repeated lookups of missing names don't re-walk the hierarchy.

  /// Records a negative result for (name, type) lasting `ttl` seconds.
  void put_negative(const dns::DomainName& name, dns::RrType type,
                    dns::Rcode rcode, std::uint32_t ttl, SimTime now);

  /// Unexpired negative result for (name, type), if any.
  [[nodiscard]] std::optional<dns::Rcode> get_negative(
      const dns::DomainName& name, dns::RrType type, SimTime now);

  void clear() {
    entries_.clear();
    negative_.clear();
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t negative_size() const { return negative_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Publishes hit/miss/insert counters as "<prefix>.hits" etc.
  void bind_metrics(obs::MetricsRegistry& registry, std::string_view prefix) {
    std::string p(prefix);
    registry.attach_counter(p + ".hits", stats_.hits);
    registry.attach_counter(p + ".misses", stats_.misses);
    registry.attach_counter(p + ".inserts", stats_.inserts);
  }

 private:
  struct Key {
    std::string name;  // canonical lowercase
    std::uint16_t type;
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    std::vector<dns::ResourceRecord> rrs;
    SimTime expires;
  };

  struct NegativeEntry {
    dns::Rcode rcode;
    SimTime expires;
  };

  static Key key_of(const dns::DomainName& name, dns::RrType type);

  std::map<Key, Entry> entries_;
  std::map<Key, NegativeEntry> negative_;
  Stats stats_;
};

}  // namespace dnsguard::server
