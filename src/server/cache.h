// TTL-honoring resource-record cache used by the recursive resolver.
//
// Cache behaviour is load-bearing for the paper: the DNS-based scheme's
// latency depends on the LRS caching fabricated NS records with a large
// TTL while the underlying A records expire on the original schedule
// (§III.B.1, issue one), and Fig. 5 disables caching entirely by serving
// TTL=0 responses.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bounded_table.h"
#include "common/time.h"
#include "dns/message.h"
#include "dns/records.h"
#include "obs/metrics.h"

namespace dnsguard::server {

class RrCache {
 public:
  /// Counter cells: attachable to a MetricsRegistry via bind_metrics().
  struct Stats {
    obs::Counter hits;
    obs::Counter misses;
    obs::Counter inserts;
  };

  /// Cache keys are attacker-influenced (any qname a client asks for lands
  /// here), so both record sets live in capacity-capped BoundedTables: a
  /// random-subdomain query flood recycles LRU cache slots instead of
  /// growing the resolver's heap — the §V state-exhaustion vector.
  struct Config {
    std::size_t capacity = 65536;
    std::size_t negative_capacity = 16384;
  };

  explicit RrCache(Config config);
  RrCache() : RrCache(Config{}) {}

  /// Caches one record set under (name, type). TTL 0 records are not
  /// cached (RFC 1035 semantics: use only for the current transaction).
  void put(const dns::ResourceRecord& rr, SimTime now);
  void put_all(const std::vector<dns::ResourceRecord>& rrs, SimTime now) {
    for (const auto& rr : rrs) put(rr, now);
  }

  /// Returns unexpired records for (name, type), or nullopt.
  [[nodiscard]] std::optional<std::vector<dns::ResourceRecord>> get(
      const dns::DomainName& name, dns::RrType type, SimTime now);

  /// Removes the entry for (name, type) — used by tests to force expiry.
  void evict(const dns::DomainName& name, dns::RrType type);

  // --- negative caching (RFC 2308) ----------------------------------------
  // NXDOMAIN / NODATA results are cached for the SOA "minimum" interval so
  // repeated lookups of missing names don't re-walk the hierarchy.

  /// Records a negative result for (name, type) lasting `ttl` seconds.
  void put_negative(const dns::DomainName& name, dns::RrType type,
                    dns::Rcode rcode, std::uint32_t ttl, SimTime now);

  /// Unexpired negative result for (name, type), if any.
  [[nodiscard]] std::optional<dns::Rcode> get_negative(
      const dns::DomainName& name, dns::RrType type, SimTime now);

  void clear() {
    entries_.clear();
    negative_.clear();
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t negative_size() const { return negative_.size(); }
  [[nodiscard]] std::size_t capacity() const { return config_.capacity; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Publishes hit/miss/insert counters as "<prefix>.hits" etc., plus the
  /// bounded tables' occupancy/eviction cells under "<prefix>.table".
  void bind_metrics(obs::MetricsRegistry& registry, std::string_view prefix) {
    std::string p(prefix);
    registry.attach_counter(p + ".hits", stats_.hits);
    registry.attach_counter(p + ".misses", stats_.misses);
    registry.attach_counter(p + ".inserts", stats_.inserts);
    entries_.bind_metrics(registry, p + ".table");
    negative_.bind_metrics(registry, p + ".negative_table");
  }

 private:
  struct Key {
    std::string name;  // canonical lowercase
    std::uint16_t type;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = std::hash<std::string_view>{}(k.name);
      return h ^ ((static_cast<std::size_t>(k.type) + 1) *
                  0x9e3779b97f4a7c15ULL);
    }
  };
  struct Entry {
    std::vector<dns::ResourceRecord> rrs;
    SimTime expires;
  };

  struct NegativeEntry {
    dns::Rcode rcode;
    SimTime expires;
  };

  static Key key_of(const dns::DomainName& name, dns::RrType type);

  Config config_;
  common::BoundedTable<Key, Entry, KeyHash> entries_;
  common::BoundedTable<Key, NegativeEntry, KeyHash> negative_;
  Stats stats_;
};

}  // namespace dnsguard::server
