// Minimal RFC 1035 master-file parser.
//
// Supports the subset a DNS-guard deployment actually feeds an ANS:
//   * $ORIGIN and $TTL directives
//   * comments (';' to end of line) and blank lines
//   * '@' for the origin, relative and absolute owner names
//   * owner inheritance (a line starting with whitespace reuses the
//     previous owner)
//   * optional per-record TTL, class IN (optional)
//   * record types: SOA (with multi-line parenthesized RDATA), NS, A,
//     CNAME, TXT (quoted strings)
//
// Errors carry the 1-based line number for operator-friendly messages.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "server/zone.h"

namespace dnsguard::server {

struct ZoneParseError {
  int line = 0;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return "line " + std::to_string(line) + ": " + message;
  }
};

using ZoneParseResult = std::variant<Zone, ZoneParseError>;

/// Parses master-file `text`. `default_origin` seeds $ORIGIN-less files;
/// a $ORIGIN directive overrides it.
[[nodiscard]] ZoneParseResult parse_zone(std::string_view text,
                                         const dns::DomainName& default_origin);

/// Convenience: returns the zone or nullopt, logging the error.
[[nodiscard]] std::optional<Zone> parse_zone_or_log(
    std::string_view text, const dns::DomainName& default_origin);

}  // namespace dnsguard::server
