#include "obs/trace.h"

#include <bit>
#include <cstdio>

namespace dnsguard::obs {

namespace {

std::string ipv4_string(std::uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

}  // namespace

std::string_view trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::kRx: return "rx";
    case TraceEvent::kClassify: return "classify";
    case TraceEvent::kRewrite: return "rewrite";
    case TraceEvent::kDrop: return "drop";
    case TraceEvent::kTx: return "tx";
    case TraceEvent::kQueueDrop: return "queue_drop";
    case TraceEvent::kBatch: return "batch";
  }
  return "?";
}

std::string TraceEntry::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%+12.3fms %-10s %s -> %s info=%u",
                static_cast<double>(at.ns) / 1e6,
                std::string(trace_event_name(event)).c_str(),
                ipv4_string(src).c_str(), ipv4_string(dst).c_str(), info);
  std::string out = buf;
  if (reason != DropReason::kNone) {
    out += " reason=";
    out += drop_reason_name(reason);
  }
  return out;
}

TraceRing::TraceRing(std::size_t capacity) {
  if (capacity < 2) capacity = 2;
  capacity = std::bit_ceil(capacity);
  ring_.resize(capacity);
  mask_ = capacity - 1;
}

std::vector<TraceEntry> TraceRing::entries() const {
  std::vector<TraceEntry> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t start = head_ < ring_.size() ? 0 : head_ - ring_.size();
  for (std::uint64_t i = start; i < head_; ++i) {
    out.push_back(ring_[i & mask_]);
  }
  return out;
}

std::string TraceRing::dump(std::string_view label) const {
  std::string out = "=== " + std::string(label) + " ring (" +
                    std::to_string(size()) + "/" +
                    std::to_string(capacity()) + " entries, " +
                    std::to_string(recorded()) + " recorded) ===\n";
  for (const TraceEntry& e : entries()) {
    out += "  " + e.to_string() + "\n";
  }
  return out;
}

}  // namespace dnsguard::obs
