// Time-series sampling: per-window counter deltas over simulated time.
//
// The paper's evaluation (Figs. 5-7) is time-resolved — response rate and
// latency *during* the attack window — so end-of-run totals are not
// enough. TimeSeriesSampler snapshots a chosen set of registry counters
// at every window boundary (default 1 s of sim time) and retains a
// bounded ring of per-window deltas. Benches export the ring as a
// "timeseries" JSON section; the anomaly detector (anomaly.h) consumes
// the same windows online via the on_window callback.
//
// The sampler is sim-clock-driven but does not know about the event
// queue: the owner (Simulator::start_timeseries) schedules the recurring
// boundary event and calls sample(now). Sampling only *reads* counters
// and charges no simulated CPU, so enabling it never changes virtual-time
// bench results.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"

namespace dnsguard::obs {

class TimeSeriesSampler {
 public:
  /// One closed window: deltas[i] is how much series_names()[i] grew
  /// during [start, end). Rates are deltas[i] / (end - start).seconds().
  struct Window {
    SimTime start{};
    SimTime end{};
    std::vector<std::uint64_t> deltas;
  };

  /// Selects a counter to track. Call before start(); names that do not
  /// resolve in the registry at start() are silently skipped (the series
  /// list is whatever resolved, see series_names()). With no add_counter()
  /// calls, start() tracks every counter registered at that moment.
  void add_counter(std::string name) { wanted_.push_back(std::move(name)); }

  /// Resolves series against `registry`, opens the first window at `now`,
  /// and begins retaining up to `capacity` windows (oldest overwritten).
  /// The registry cells must outlive the sampler's run.
  void start(const MetricsRegistry& registry, SimTime now,
             SimDuration window = seconds(1), std::size_t capacity = 1024);
  void stop() { running_ = false; }
  [[nodiscard]] bool running() const { return running_; }

  [[nodiscard]] SimDuration window_length() const { return window_; }
  /// When the currently open window closes (the owner schedules its
  /// boundary event at this time).
  [[nodiscard]] SimTime next_boundary() const { return open_start_ + window_; }

  /// Closes the window ending at `now`: computes per-series deltas since
  /// the previous boundary, appends to the ring, fires on_window, and
  /// opens the next window. Counter resets between boundaries (registry
  /// reset_values) clamp the delta to the post-reset value, never negative.
  void sample(SimTime now);

  [[nodiscard]] const std::vector<std::string>& series_names() const {
    return names_;
  }
  /// Index of a series by name, or -1.
  [[nodiscard]] int series_index(std::string_view name) const;

  [[nodiscard]] std::size_t window_count() const {
    return head_ < ring_.size() ? static_cast<std::size_t>(head_)
                                : ring_.size();
  }
  /// Retained windows, oldest first.
  [[nodiscard]] std::vector<Window> windows() const;

  /// Fired after each window closes, before the next opens.
  using WindowFn = std::function<void(const Window&)>;
  void set_on_window(WindowFn fn) { on_window_ = std::move(fn); }

  /// The ring as a JSON object:
  ///   {"window_seconds": 1.0, "series": [...],
  ///    "windows": [{"t_start_s": 0.0, "t_end_s": 1.0,
  ///                 "deltas": [12, 0, ...]}, ...]}
  /// `indent` spaces of leading indentation per line.
  [[nodiscard]] std::string to_json(int indent = 2) const;

 private:
  std::vector<std::string> wanted_;     // add_counter() selections
  std::vector<std::string> names_;      // resolved series, ring column order
  std::vector<const Counter*> cells_;   // resolved cells, aligned to names_
  std::vector<std::uint64_t> prev_;     // value at the last boundary
  std::vector<Window> ring_;
  std::uint64_t head_ = 0;              // windows ever closed
  SimTime open_start_{};
  SimDuration window_{};
  bool running_ = false;
  WindowFn on_window_;
};

}  // namespace dnsguard::obs
