#include "obs/timeseries.h"

#include <cstdio>

namespace dnsguard::obs {

void TimeSeriesSampler::start(const MetricsRegistry& registry, SimTime now,
                              SimDuration window, std::size_t capacity) {
  if (window.ns <= 0) window = seconds(1);
  if (capacity == 0) capacity = 1;

  names_.clear();
  cells_.clear();
  std::vector<std::string> candidates =
      wanted_.empty() ? registry.counter_names() : wanted_;
  for (const std::string& name : candidates) {
    const Counter* cell = registry.find_counter(name);
    if (cell == nullptr) continue;
    names_.push_back(name);
    cells_.push_back(cell);
  }

  prev_.resize(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    prev_[i] = cells_[i]->value();
  }

  ring_.assign(capacity, Window{});
  for (Window& w : ring_) w.deltas.resize(cells_.size());
  head_ = 0;
  open_start_ = now;
  window_ = window;
  running_ = true;
}

void TimeSeriesSampler::sample(SimTime now) {
  if (!running_) return;
  Window& w = ring_[head_ % ring_.size()];
  w.start = open_start_;
  w.end = now;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const std::uint64_t v = cells_[i]->value();
    // A counter reset between boundaries (registry reset_values at the
    // start of a measured bench window) makes v < prev_: restart the
    // delta from zero rather than wrapping.
    w.deltas[i] = v >= prev_[i] ? v - prev_[i] : v;
    prev_[i] = v;
  }
  ++head_;
  open_start_ = now;
  if (on_window_) on_window_(w);
}

int TimeSeriesSampler::series_index(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<TimeSeriesSampler::Window> TimeSeriesSampler::windows() const {
  std::vector<Window> out;
  const std::size_t n = window_count();
  out.reserve(n);
  const std::uint64_t start = head_ < ring_.size() ? 0 : head_ - ring_.size();
  for (std::uint64_t i = start; i < head_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

std::string TimeSeriesSampler::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent),
                        ' ');
  char buf[64];
  std::string out = "{\n";

  std::snprintf(buf, sizeof(buf), "%.6g", window_.seconds());
  out += pad + "  \"window_seconds\": " + buf + ",\n";

  out += pad + "  \"series\": [";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (i) out += ", ";
    out += '"' + names_[i] + '"';
  }
  out += "],\n";

  out += pad + "  \"windows\": [";
  bool first = true;
  for (const Window& w : windows()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad + "    {\"t_start_s\": ";
    std::snprintf(buf, sizeof(buf), "%.6f",
                  static_cast<double>(w.start.ns) / 1e9);
    out += buf;
    out += ", \"t_end_s\": ";
    std::snprintf(buf, sizeof(buf), "%.6f",
                  static_cast<double>(w.end.ns) / 1e9);
    out += buf;
    out += ", \"deltas\": [";
    for (std::size_t i = 0; i < w.deltas.size(); ++i) {
      if (i) out += ", ";
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(w.deltas[i]));
      out += buf;
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n" + pad + "  ]\n";
  out += pad + "}";
  return out;
}

}  // namespace dnsguard::obs
