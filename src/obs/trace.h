// Bounded per-node trace ring: the last N packet-lifecycle events
// (rx -> classify -> rewrite/drop -> tx) of a simulation node, recorded
// allocation-free into a fixed ring and dumped when a test fails or a
// bench wants to explain an anomaly.
//
// One entry is 32 bytes of plain data; recording is a handful of stores
// plus a masked index increment, cheap enough to leave on in the packet
// hot path of every node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/drop_reason.h"

namespace dnsguard::obs {

enum class TraceEvent : std::uint8_t {
  kRx = 0,     // packet accepted into the node's receive queue
  kClassify,   // request classified (scheme / cookie decision made)
  kRewrite,    // message rewritten / synthesized (cookie reply, restore)
  kDrop,       // packet discarded; `reason` says why
  kTx,         // packet emitted toward the network
  kQueueDrop,  // arrival discarded before rx (receive queue full)
  kBatch,      // shard batch started; `info` is the burst size (the
               // per-packet classify trace is amortized into this one
               // entry on the sharded hot path)
};

[[nodiscard]] std::string_view trace_event_name(TraceEvent e);

struct TraceEntry {
  SimTime at;                 // simulated time of the event
  std::uint32_t src = 0;      // IPv4 source of the packet, host order
  std::uint32_t dst = 0;      // IPv4 destination, host order
  std::uint16_t info = 0;     // protocol detail (DNS id, port, ...)
  TraceEvent event = TraceEvent::kRx;
  DropReason reason = DropReason::kNone;

  [[nodiscard]] std::string to_string() const;
};

class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (masked wraparound).
  explicit TraceRing(std::size_t capacity = 128);

  void record(SimTime at, TraceEvent event, std::uint32_t src,
              std::uint32_t dst, std::uint16_t info = 0,
              DropReason reason = DropReason::kNone) noexcept {
    TraceEntry& e = ring_[head_ & mask_];
    e.at = at;
    e.src = src;
    e.dst = dst;
    e.info = info;
    e.event = event;
    e.reason = reason;
    ++head_;
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Number of retained entries (<= capacity once wrapped).
  [[nodiscard]] std::size_t size() const {
    return head_ < ring_.size() ? static_cast<std::size_t>(head_)
                                : ring_.size();
  }
  /// Total events ever recorded (monotonic; exceeds size() after wrap).
  [[nodiscard]] std::uint64_t recorded() const { return head_; }

  /// Retained entries, oldest first.
  [[nodiscard]] std::vector<TraceEntry> entries() const;

  /// Multi-line human dump ("  +1.234ms rx 10.0.1.1 -> 10.1.1.254 id=7"),
  /// oldest first; `label` heads the block. Intended for test-failure
  /// diagnostics: EXPECT_...(...) << ring.dump("guard");
  [[nodiscard]] std::string dump(std::string_view label = "trace") const;

  void clear() { head_ = 0; }

 private:
  std::vector<TraceEntry> ring_;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;
};

}  // namespace dnsguard::obs
