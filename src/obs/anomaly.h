// Online attack detection over time-series windows, plus the flight
// recorder that captures system state when something goes wrong.
//
// AnomalyDetector is a robust EWMA detector: it keeps an exponentially
// weighted mean and an exponentially weighted absolute deviation (a
// streaming stand-in for the MAD) of a per-window series, and flags a
// window as anomalous when the value exceeds
//
//     mean + k * max(deviation, floor)
//
// The baseline is FROZEN while in anomaly — a sustained flood must not be
// absorbed into "normal" — and onset/offset require a configurable number
// of consecutive windows (hysteresis), so a single noisy window neither
// raises nor clears an alert.
//
// AttackMonitor wires one detector per watched series onto a
// TimeSeriesSampler's window callback, records onset/offset events in sim
// time, and drives an `under_attack` registry gauge (0/1).
//
// FlightRecorder assembles a post-mortem JSON file from named section
// providers (metrics snapshot, trace rings, time-series windows, open
// journeys — the owner registers whatever it has) and writes it on
// demand: on anomaly onset, or from a gtest failure listener.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace dnsguard::obs {

struct AnomalyConfig {
  double alpha = 0.25;   // EWMA smoothing for mean and deviation
  double k = 8.0;        // threshold multiplier on the deviation
  double dev_floor = 4.0;  // minimum deviation (series units); absorbs the
                           // near-zero-variance idle baseline
  int warmup_windows = 3;     // windows to learn a baseline before firing
  int onset_consecutive = 1;  // windows above threshold to raise onset
  int offset_consecutive = 2;  // windows below threshold to clear
};

class AnomalyDetector {
 public:
  enum class Signal : std::uint8_t { kNone = 0, kOnset, kOffset };

  explicit AnomalyDetector(AnomalyConfig cfg = {}) : cfg_(cfg) {}

  /// Feeds one window's value; returns the state transition (if any).
  Signal update(double value);

  [[nodiscard]] bool in_anomaly() const { return in_anomaly_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double deviation() const { return dev_; }
  [[nodiscard]] double threshold() const;
  [[nodiscard]] int windows_seen() const { return seen_; }

  void reset();

 private:
  AnomalyConfig cfg_;
  double mean_ = 0.0;
  double dev_ = 0.0;
  int seen_ = 0;
  int streak_ = 0;  // consecutive windows agreeing with a transition
  bool in_anomaly_ = false;
};

/// Classifies a load anomaly: an onset is an *attack* when the guard is
/// doing mostly malicious work (drop-taxonomy deltas dominate the load
/// delta), a *flash crowd* when the surge verifies clean and comes with
/// genuine source-population growth. All inputs are sampler series names
/// resolved at bind(); missing series contribute zero.
struct DiscriminatorConfig {
  /// Summed into the window's "malicious work": spoof/bad-cookie drops,
  /// rate-limiter kills — everything the guard rejected.
  std::vector<std::string> malicious_series;
  /// Summed into the window's offered load (e.g. guard.requests_seen).
  std::vector<std::string> load_series;
  /// First-contact source counters (e.g. limiter table inserts): how many
  /// never-seen sources appeared this window. Both attacks and flash
  /// crowds grow the source population — what separates them is whether
  /// those new sources *verify* (tracked via malicious mix), so this
  /// series is reported on events for forensics rather than thresholded.
  std::vector<std::string> source_series;
  /// An onset classifies as attack when malicious/load exceeds this.
  double attack_mix_threshold = 0.5;
};

/// Watches selected sampler series with one detector each and turns
/// per-window signals into discrete attack onset/offset events.
class AttackMonitor {
 public:
  enum class Kind : std::uint8_t { kAttack = 0, kFlashCrowd };

  struct Event {
    SimTime at{};        // end of the window that triggered the transition
    std::string series;  // which watched series fired
    bool onset = false;  // true = anomaly started, false = subsided
    double value = 0.0;  // the window's value
    double threshold = 0.0;
    Kind kind = Kind::kAttack;   // discriminator verdict (offset events
                                 // carry the kind their onset classified)
    double malicious_mix = 0.0;  // malicious/load in the onset window
    double source_growth = 0.0;  // first-contact sources in that window
  };

  [[nodiscard]] static std::string_view kind_name(Kind k) {
    return k == Kind::kFlashCrowd ? "flash_crowd" : "attack";
  }

  explicit AttackMonitor(AnomalyConfig cfg = {}) : cfg_(cfg) {}

  /// Adds a series (sampler counter name) to watch. Call before bind().
  void watch(std::string series_name);

  /// Enables flash-crowd discrimination. Call before bind(); without it,
  /// every onset classifies as an attack (the legacy binary alarm).
  void set_discriminator(DiscriminatorConfig cfg);

  /// Installs this monitor as `sampler`'s window callback and attaches the
  /// under-attack gauge to `registry`. Series that do not exist in the
  /// sampler are dropped (a warning is up to the caller via watched()).
  void bind(TimeSeriesSampler& sampler, MetricsRegistry& registry,
            std::string_view gauge_name = "anomaly.under_attack");

  /// True while any watched series is in an *attack*-classified anomaly;
  /// flash-crowd anomalies do NOT raise this (that is the point).
  [[nodiscard]] bool under_attack() const { return attacking_ > 0; }
  [[nodiscard]] bool in_flash_crowd() const { return flash_crowds_ > 0; }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t watched() const { return series_.size(); }
  [[nodiscard]] std::size_t onsets(Kind kind) const {
    std::size_t n = 0;
    for (const Event& e : events_) {
      if (e.onset && e.kind == kind) ++n;
    }
    return n;
  }

  /// Fired on every onset event (after it is recorded) — the flight
  /// recorder hook.
  using AnomalyFn = std::function<void(const Event&)>;
  void set_on_onset(AnomalyFn fn) { on_onset_ = std::move(fn); }

  /// The event log as a JSON array of objects.
  [[nodiscard]] std::string events_json(int indent = 2) const;

 private:
  struct Watched {
    std::string name;
    int index = -1;  // sampler series index
    AnomalyDetector detector;
    Kind active_kind = Kind::kAttack;  // classification of open anomaly
  };

  void on_window(const TimeSeriesSampler::Window& w);
  [[nodiscard]] static double sum_deltas(
      const TimeSeriesSampler::Window& w, const std::vector<int>& indices);

  AnomalyConfig cfg_;
  DiscriminatorConfig disc_;
  bool discriminate_ = false;
  std::vector<std::string> wanted_;
  std::vector<Watched> series_;
  std::vector<int> malicious_idx_;  // resolved discriminator columns
  std::vector<int> load_idx_;
  std::vector<int> source_idx_;
  std::vector<Event> events_;
  int attacking_ = 0;      // series currently in attack-classified anomaly
  int flash_crowds_ = 0;   // series currently in flash-classified anomaly
  Gauge under_attack_;
  Gauge flash_crowd_;
  AnomalyFn on_onset_;
};

/// Assembles and writes post-mortem JSON dumps. Section providers are
/// registered by the owner (typically the Simulator: metrics, trace
/// rings, timeseries, journeys); each returns a complete JSON value.
class FlightRecorder {
 public:
  /// Where dump files land. Default: $DNSGUARD_FLIGHTREC_DIR if set,
  /// else the current directory.
  void set_output_dir(std::string dir) { dir_ = std::move(dir); }

  using SectionFn = std::function<std::string()>;
  void add_section(std::string name, SectionFn fn);

  /// Writes "<dir>/flightrec_<label>_<seq>.json" containing
  /// {"label": ..., "sim_time_s": ..., "<section>": <value>, ...}.
  /// Returns the path written, or "" on IO failure.
  std::string dump(std::string_view label, SimTime now);

  /// The same document as a string (tests; no filesystem).
  [[nodiscard]] std::string render(std::string_view label, SimTime now) const;

  [[nodiscard]] std::size_t dumps_written() const { return seq_; }

 private:
  std::string dir_;
  std::vector<std::pair<std::string, SectionFn>> sections_;
  std::size_t seq_ = 0;
};

}  // namespace dnsguard::obs
