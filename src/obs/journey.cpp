#include "obs/journey.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace dnsguard::obs {

void JourneyTracker::enable(std::size_t active_capacity,
                            std::size_t completed_capacity) {
  if (active_capacity < 4) active_capacity = 4;
  if (completed_capacity < 4) completed_capacity = 4;
  active_capacity = std::bit_ceil(active_capacity);
  completed_capacity = std::bit_ceil(completed_capacity);

  pool_.assign(active_capacity, Journey{});
  free_.clear();
  free_.reserve(active_capacity);
  for (std::size_t i = active_capacity; i > 0; --i) {
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  // 2x slots keeps the open-addressed index sparse enough that the short
  // probe window almost never collides at full pool occupancy.
  index_.assign(active_capacity * 2, IndexSlot{});
  index_mask_ = index_.size() - 1;
  completed_.assign(completed_capacity, Journey{});
  completed_mask_ = completed_capacity - 1;
  completed_head_ = 0;
  active_count_ = 0;
  evict_cursor_ = 0;
  enabled_ = true;
}

void JourneyTracker::clear() {
  if (index_.empty()) return;
  std::fill(index_.begin(), index_.end(), IndexSlot{});
  free_.clear();
  for (std::size_t i = pool_.size(); i > 0; --i) {
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  completed_head_ = 0;
  active_count_ = 0;
}

std::uint32_t JourneyTracker::lookup(std::uint64_t packed) const {
  if (index_.empty()) return kNoJourney;
  std::uint64_t h = packed;
  for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
    const IndexSlot& s = index_[(h + probe) & index_mask_];
    if (s.key == packed) return s.journey;
  }
  return kNoJourney;
}

void JourneyTracker::index_insert(std::uint64_t packed,
                                  std::uint32_t journey) {
  std::uint64_t h = packed;
  for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
    IndexSlot& s = index_[(h + probe) & index_mask_];
    if (s.key == 0 || s.key == packed) {
      s.key = packed;
      s.journey = journey;
      return;
    }
  }
  // Probe window exhausted: claim the first slot anyway. The displaced
  // journey becomes unreachable by that key — acceptable for a bounded
  // best-effort tracker (its journey still retires via eviction).
  IndexSlot& s = index_[h & index_mask_];
  s.key = packed;
  s.journey = journey;
}

void JourneyTracker::index_remove_journey(const Journey& j) {
  for (std::size_t k = 0; k < j.n_keys; ++k) {
    const std::uint64_t packed = j.keys[k];
    std::uint64_t h = packed;
    for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
      IndexSlot& s = index_[(h + probe) & index_mask_];
      if (s.key == packed) {
        s.key = 0;
        s.journey = 0;
        break;
      }
    }
  }
}

void JourneyTracker::retire(std::uint32_t idx, bool completed_ok) {
  Journey& j = pool_[idx];
  index_remove_journey(j);
  if (completed_ok) {
    j.ended = true;
    completed_[completed_head_ & completed_mask_] = j;
    ++completed_head_;
    stats_.completed++;
    if (!j.ok) stats_.failed++;
  } else {
    stats_.evicted_open++;
  }
  j = Journey{};
  free_.push_back(idx);
  --active_count_;
}

std::uint32_t JourneyTracker::allocate(JourneyKey key, SimTime at) {
  if (free_.empty()) {
    // Pool full: evict the oldest open journey (round-robin cursor is a
    // cheap stand-in for true LRU; journeys are short-lived).
    std::uint32_t victim = evict_cursor_++ & (pool_.size() - 1);
    retire(victim, /*completed_ok=*/false);
  }
  std::uint32_t idx = free_.back();
  free_.pop_back();
  Journey& j = pool_[idx];
  j.first_key = key;
  j.begin = at;
  j.last = at;
  j.seq = next_seq_++;
  j.n_events = 0;
  j.n_keys = 1;
  j.ok = true;
  j.ended = false;
  j.keys[0] = key.packed();
  index_insert(j.keys[0], idx);
  ++active_count_;
  stats_.started++;
  return idx;
}

void JourneyTracker::append_event(Journey& j, std::string_view stage,
                                  SimTime at) {
  if (j.n_events >= kMaxEvents) {
    stats_.marks_dropped++;
    // The event itself is lost, but `last` keeps advancing so duration()
    // still covers the journey's full extent.
    if (at > j.last) j.last = at;
    return;
  }
  j.events[j.n_events].at = at;
  j.events[j.n_events].stage = stage;
  ++j.n_events;
  if (at > j.last) j.last = at;
}

void JourneyTracker::mark(JourneyKey key, std::string_view stage,
                          SimTime at) {
  if (!enabled_) return;
  std::uint32_t idx = lookup(key.packed());
  if (idx == kNoJourney) idx = allocate(key, at);
  append_event(pool_[idx], stage, at);
}

void JourneyTracker::alias(JourneyKey existing, JourneyKey additional) {
  if (!enabled_) return;
  const std::uint64_t add = additional.packed();
  std::uint32_t idx = lookup(existing.packed());
  if (idx == kNoJourney) return;
  if (lookup(add) == idx) return;  // already aliased
  Journey& j = pool_[idx];
  if (j.n_keys >= kMaxKeys) return;
  j.keys[j.n_keys++] = add;
  index_insert(add, idx);
}

void JourneyTracker::end(JourneyKey key, std::string_view stage, SimTime at,
                         bool ok) {
  if (!enabled_) return;
  std::uint32_t idx = lookup(key.packed());
  if (idx == kNoJourney) idx = allocate(key, at);
  Journey& j = pool_[idx];
  append_event(j, stage, at);
  j.ok = ok;
  retire(idx, /*completed_ok=*/true);
}

std::vector<JourneyTracker::Journey> JourneyTracker::completed() const {
  std::vector<Journey> out;
  const std::size_t n = completed_count();
  out.reserve(n);
  const std::uint64_t start =
      completed_head_ < completed_.size() ? 0
                                          : completed_head_ - completed_.size();
  for (std::uint64_t i = start; i < completed_head_; ++i) {
    out.push_back(completed_[i & completed_mask_]);
  }
  return out;
}

const JourneyTracker::Journey* JourneyTracker::find(JourneyKey key) const {
  std::uint32_t idx = lookup(key.packed());
  return idx == kNoJourney ? nullptr : &pool_[idx];
}

namespace {

void append_trace_slice(std::string& out, bool& first, std::uint64_t tid,
                        std::string_view name, SimTime ts, SimDuration dur,
                        std::uint32_t src, std::uint16_t id, bool ok) {
  char buf[256];
  // Chrome trace timestamps/durations are microseconds (doubles allowed).
  std::snprintf(
      buf, sizeof(buf),
      "%s\n    {\"name\": \"%.*s\", \"ph\": \"X\", \"pid\": 1, "
      "\"tid\": %llu, \"ts\": %.3f, \"dur\": %.3f, "
      "\"args\": {\"src\": \"%u.%u.%u.%u\", \"dns_id\": %u, \"ok\": %s}}",
      first ? "" : ",", static_cast<int>(name.size()), name.data(),
      static_cast<unsigned long long>(tid),
      static_cast<double>(ts.ns) / 1e3, static_cast<double>(dur.ns) / 1e3,
      (src >> 24) & 0xff, (src >> 16) & 0xff, (src >> 8) & 0xff, src & 0xff,
      id, ok ? "true" : "false");
  out += buf;
  first = false;
}

void append_journey(std::string& out, bool& first,
                    const JourneyTracker::Journey& j) {
  if (j.n_events == 0) return;
  const std::uint64_t tid = j.seq;
  // Enclosing slice: the whole journey.
  append_trace_slice(out, first, tid, "journey", j.begin, j.last - j.begin,
                     j.first_key.src, j.first_key.id, j.ok);
  // One slice per leg: the interval from each mark to the next. The final
  // mark gets a zero-duration slice (renders as an instant in Perfetto).
  for (std::size_t i = 0; i < j.n_events; ++i) {
    const SimTime at = j.events[i].at;
    const SimTime next =
        i + 1 < j.n_events ? j.events[i + 1].at : j.events[i].at;
    append_trace_slice(out, first, tid, j.events[i].stage, at, next - at,
                       j.first_key.src, j.first_key.id, j.ok);
  }
}

}  // namespace

std::string JourneyTracker::to_chrome_json(bool include_open) const {
  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  for (const Journey& j : completed()) append_journey(out, first, j);
  if (include_open) {
    for (const Journey& j : pool_) {
      if (j.n_keys > 0) append_journey(out, first, j);
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

bool JourneyTracker::write_chrome_json(const std::string& path,
                                       bool include_open) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json(include_open);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace dnsguard::obs
