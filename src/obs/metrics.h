// Observability primitives: zero-allocation-on-hot-path metric cells
// behind a MetricsRegistry with stable string handles.
//
// Design rules, in order:
//
//   1. The hot path touches a *cell* (Counter / Gauge / LatencyHistogram)
//      through a pointer resolved exactly once, at registration. An
//      increment is one add on a plain integer — no hashing, no string
//      compare, no allocation, no branch on "is metrics enabled".
//   2. Cells can live in two places: owned by the registry (created via
//      counter()/gauge()/histogram(), stored in deques so addresses are
//      stable), or embedded in a subsystem's own stats struct and
//      *attached* by name (attach_counter()). Attachment is how the
//      existing per-subsystem stats structs (GuardStats, TcpStackStats,
//      LimiterStats, ...) become registry-visible without an extra copy:
//      the struct field IS the registered cell.
//   3. Export is cold: snapshot() / to_json() walk the name table in
//      registration order. Histograms export count/p50/p90/p99.
//
// Counter deliberately mimics a plain std::uint64_t (operator++, +=,
// implicit conversion) so converting a `std::uint64_t requests = 0;`
// stats field to a Counter changes no call sites.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time.h"

namespace dnsguard::obs {

/// Monotonic event count. Layout-compatible drop-in for a uint64 tally.
class Counter {
 public:
  constexpr Counter() = default;
  constexpr Counter(std::uint64_t v) : value_(v) {}  // NOLINT(runtime/explicit)

  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

  // uint64-tally compatibility.
  constexpr operator std::uint64_t() const noexcept { return value_; }
  Counter& operator++() noexcept { ++value_; return *this; }
  std::uint64_t operator++(int) noexcept { return value_++; }
  Counter& operator+=(std::uint64_t n) noexcept { value_ += n; return *this; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level (queue depth, open connections). Tracks the
/// high-water mark since the last reset alongside the current value.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(std::int64_t d) noexcept { set(value_ + d); }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }
  /// Clears the high-water mark; the current level carries over.
  void reset() noexcept { max_ = value_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

/// Fixed-bucket log-spaced histogram for latency-like values (nanoseconds).
//
// Buckets are power-of-two octaves split into 4 log-spaced sub-buckets
// (bucket (e, s) covers [2^e + s*2^(e-2), 2^e + (s+1)*2^(e-2))), so the
// relative width of any bucket is <= 2^(1/4) ~ 19% and linear
// interpolation inside the winning bucket keeps percentile estimates
// within a few percent of exact quantiles. Values 0..3 get exact buckets.
// observe() is a bit-scan plus one array increment: no allocation ever.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 256;

  void observe_ns(std::int64_t ns) noexcept {
    if (ns < 0) ns = 0;
    ++count_;
    sum_ns_ += static_cast<std::uint64_t>(ns);
    ++buckets_[bucket_index(static_cast<std::uint64_t>(ns))];
  }
  void observe(SimDuration d) noexcept { observe_ns(d.ns); }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum_ns() const noexcept { return sum_ns_; }
  [[nodiscard]] double mean_ns() const noexcept {
    return count_ ? static_cast<double>(sum_ns_) /
                        static_cast<double>(count_)
                  : 0.0;
  }

  /// Estimated p-th percentile in nanoseconds, p in [0, 100]. Linear
  /// interpolation within the selected bucket; 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p90() const { return percentile(90.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }

  void reset() noexcept {
    buckets_.fill(0);
    count_ = 0;
    sum_ns_ = 0;
  }

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < 4) return static_cast<std::size_t>(v);
    const int exp = 63 - std::countl_zero(v);
    const std::size_t sub = (v >> (exp - 2)) & 3;
    const std::size_t idx = 4 + 4 * static_cast<std::size_t>(exp - 2) + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }
  /// Inclusive lower / exclusive upper value bound of a bucket.
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t idx) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t idx) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
};

/// Name -> cell directory. Cells are either owned (stable addresses in
/// deques) or attached references into subsystem stats structs; lookups
/// happen at registration/export time only, never on the hot path.
///
/// Names use dotted paths ("guard.spoofs_dropped", "tcp.proxy.resets_sent").
/// Registering an existing name of the same kind returns the same cell
/// (idempotent); attaching over an existing name gets a "#2" suffix so two
/// instances of one subsystem cannot silently alias each other's cells.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Creates (or finds) a registry-owned cell.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// Registers an externally-owned cell. The cell must outlive this
  /// registry (or be removed with detach_prefix). Returns the name the
  /// cell was registered under (may carry a "#N" suffix on collision).
  std::string attach_counter(std::string_view name, Counter& cell);
  std::string attach_gauge(std::string_view name, Gauge& cell);
  std::string attach_histogram(std::string_view name, LatencyHistogram& cell);

  /// Drops every registration whose name starts with `prefix` (attached
  /// cells only become unreachable; owned cells also stay allocated so
  /// outstanding handles never dangle).
  void detach_prefix(std::string_view prefix);

  /// Cold-path lookup (tests, exporters). nullptr if absent or wrong kind.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const LatencyHistogram* find_histogram(
      std::string_view name) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Names of every registered counter, in registration order. Cold path:
  /// the time-series sampler enumerates these once at start().
  [[nodiscard]] std::vector<std::string> counter_names() const;

  /// Zeroes every registered cell (start of a measurement window).
  void reset_values();

  /// Flat name -> value view in registration order. Gauges contribute
  /// "<name>" and "<name>.max"; histograms "<name>.count", ".p50", ".p90",
  /// ".p99" (nanoseconds). Counters contribute their value.
  using Snapshot = std::vector<std::pair<std::string, double>>;
  [[nodiscard]] Snapshot snapshot() const;

  /// The snapshot as a JSON object, e.g. {"guard.spoofs_dropped": 12, ...}.
  /// `indent` spaces of leading indentation per line.
  [[nodiscard]] std::string to_json(int indent = 2) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    void* cell;  // Counter* / Gauge* / LatencyHistogram*
  };

  Entry* find_entry(std::string_view name, Kind kind);
  const Entry* find_entry(std::string_view name, Kind kind) const;
  std::string register_cell(std::string_view name, Kind kind, void* cell);

  std::deque<Counter> owned_counters_;
  std::deque<Gauge> owned_gauges_;
  std::deque<LatencyHistogram> owned_histograms_;
  std::vector<Entry> entries_;  // registration order
  std::unordered_map<std::string, std::size_t> by_name_;  // -> entries_ index
};

}  // namespace dnsguard::obs
