#include "obs/metrics.h"

#include <cstdio>

namespace dnsguard::obs {

// --- LatencyHistogram --------------------------------------------------------

std::uint64_t LatencyHistogram::bucket_lower(std::size_t idx) noexcept {
  if (idx < 4) return idx;
  const std::size_t exp = 2 + (idx - 4) / 4;
  const std::size_t sub = (idx - 4) % 4;
  return (std::uint64_t{1} << exp) + sub * (std::uint64_t{1} << (exp - 2));
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t idx) noexcept {
  if (idx < 4) return idx + 1;
  if (idx + 1 >= kBuckets) return ~std::uint64_t{0};
  return bucket_lower(idx + 1);
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the target sample, 1-based; p=100 hits the last sample.
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[i];
    if (static_cast<double>(seen) >= rank) {
      const auto lo = static_cast<double>(bucket_lower(i));
      const auto hi = static_cast<double>(bucket_upper(i));
      const double within =
          (rank - before) / static_cast<double>(buckets_[i]);
      return lo + (hi - lo) * within;
    }
  }
  return static_cast<double>(bucket_upper(kBuckets - 1));
}

// --- MetricsRegistry ---------------------------------------------------------

MetricsRegistry::Entry* MetricsRegistry::find_entry(std::string_view name,
                                                    Kind kind) {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return nullptr;
  Entry& e = entries_[it->second];
  return e.kind == kind ? &e : nullptr;
}

const MetricsRegistry::Entry* MetricsRegistry::find_entry(
    std::string_view name, Kind kind) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return nullptr;
  const Entry& e = entries_[it->second];
  return e.kind == kind ? &e : nullptr;
}

std::string MetricsRegistry::register_cell(std::string_view name, Kind kind,
                                           void* cell) {
  std::string unique(name);
  for (int n = 2; by_name_.contains(unique); ++n) {
    unique = std::string(name) + "#" + std::to_string(n);
  }
  by_name_.emplace(unique, entries_.size());
  entries_.push_back(Entry{unique, kind, cell});
  return unique;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (Entry* e = find_entry(name, Kind::kCounter)) {
    return *static_cast<Counter*>(e->cell);
  }
  owned_counters_.emplace_back();
  register_cell(name, Kind::kCounter, &owned_counters_.back());
  return owned_counters_.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (Entry* e = find_entry(name, Kind::kGauge)) {
    return *static_cast<Gauge*>(e->cell);
  }
  owned_gauges_.emplace_back();
  register_cell(name, Kind::kGauge, &owned_gauges_.back());
  return owned_gauges_.back();
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  if (Entry* e = find_entry(name, Kind::kHistogram)) {
    return *static_cast<LatencyHistogram*>(e->cell);
  }
  owned_histograms_.emplace_back();
  register_cell(name, Kind::kHistogram, &owned_histograms_.back());
  return owned_histograms_.back();
}

std::string MetricsRegistry::attach_counter(std::string_view name,
                                            Counter& cell) {
  return register_cell(name, Kind::kCounter, &cell);
}

std::string MetricsRegistry::attach_gauge(std::string_view name, Gauge& cell) {
  return register_cell(name, Kind::kGauge, &cell);
}

std::string MetricsRegistry::attach_histogram(std::string_view name,
                                              LatencyHistogram& cell) {
  return register_cell(name, Kind::kHistogram, &cell);
}

void MetricsRegistry::detach_prefix(std::string_view prefix) {
  std::erase_if(entries_, [prefix](const Entry& e) {
    return e.name.size() >= prefix.size() &&
           std::string_view(e.name).substr(0, prefix.size()) == prefix;
  });
  by_name_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    by_name_.emplace(entries_[i].name, i);
  }
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const Entry* e = find_entry(name, Kind::kCounter);
  return e ? static_cast<const Counter*>(e->cell) : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const Entry* e = find_entry(name, Kind::kGauge);
  return e ? static_cast<const Gauge*>(e->cell) : nullptr;
}

const LatencyHistogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  const Entry* e = find_entry(name, Kind::kHistogram);
  return e ? static_cast<const LatencyHistogram*>(e->cell) : nullptr;
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (e.kind == Kind::kCounter) out.push_back(e.name);
  }
  return out;
}

void MetricsRegistry::reset_values() {
  for (Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter: static_cast<Counter*>(e.cell)->reset(); break;
      case Kind::kGauge: static_cast<Gauge*>(e.cell)->reset(); break;
      case Kind::kHistogram:
        static_cast<LatencyHistogram*>(e.cell)->reset();
        break;
    }
  }
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  out.reserve(entries_.size() * 2);
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out.emplace_back(
            e.name,
            static_cast<double>(static_cast<const Counter*>(e.cell)->value()));
        break;
      case Kind::kGauge: {
        const auto* g = static_cast<const Gauge*>(e.cell);
        out.emplace_back(e.name, static_cast<double>(g->value()));
        out.emplace_back(e.name + ".max", static_cast<double>(g->max()));
        break;
      }
      case Kind::kHistogram: {
        const auto* h = static_cast<const LatencyHistogram*>(e.cell);
        out.emplace_back(e.name + ".count",
                         static_cast<double>(h->count()));
        out.emplace_back(e.name + ".p50", h->p50());
        out.emplace_back(e.name + ".p90", h->p90());
        out.emplace_back(e.name + ".p99", h->p99());
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent),
                        ' ');
  Snapshot snap = snapshot();
  std::string out = "{";
  for (std::size_t i = 0; i < snap.size(); ++i) {
    char num[64];
    // %.17g round-trips doubles; counters print as integers.
    if (snap[i].second ==
        static_cast<double>(static_cast<std::int64_t>(snap[i].second))) {
      std::snprintf(num, sizeof(num), "%lld",
                    static_cast<long long>(snap[i].second));
    } else {
      std::snprintf(num, sizeof(num), "%.6g", snap[i].second);
    }
    out += "\n" + pad + "  \"" + snap[i].first + "\": " + num +
           (i + 1 < snap.size() ? "," : "");
  }
  out += "\n" + pad + "}";
  return out;
}

}  // namespace dnsguard::obs
