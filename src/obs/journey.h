// Query journeys: the time-and-causality dimension of the observability
// layer. A journey correlates one client query across every hop of a
// spoof-detection scheme — stub -> LRS -> guard cookie leg(s) -> ANS ->
// back — and attributes latency to each leg (mint, re-query, verify, TCP
// handshake, proxy relay).
//
// Design rules:
//
//   1. Allocation-free on the hot path. All storage (key index, journey
//      pool, completed ring) is sized at enable() time; mark() is a probe
//      into a fixed open-addressed table plus a couple of stores. When the
//      tracker is disabled (the default) every call is one branch.
//   2. Keys are (source IPv4, DNS id, qname hash). Schemes rename the
//      question mid-dance (fabricated NS labels, restored questions) and
//      resolvers re-query under fresh ids, so a journey can carry several
//      keys: alias() teaches the tracker that a new (src, id, qname) tuple
//      belongs to an existing journey.
//   3. Nothing here ever blocks traffic: a full pool evicts the oldest
//      open journey (counted), a full event list drops marks (counted),
//      and an unknown key on mark() just starts a new journey.
//
// Completed journeys export as Chrome trace_event JSON: load the file in
// Perfetto (or chrome://tracing) and every journey renders as a track of
// stage slices, one slice per leg.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"

namespace dnsguard::obs {

/// Identifies one in-flight query leg. `qhash` is a 32-bit hash of the
/// qname (dns::DomainName::hash32()); 0 is a valid "don't care" used by
/// transport-level marks (TCP handshake legs key on (ip, port, 0)).
struct JourneyKey {
  std::uint32_t src = 0;    // IPv4 source, host order
  std::uint16_t id = 0;     // DNS id (or port for transport legs)
  std::uint32_t qhash = 0;  // qname hash (0 = transport leg)

  /// 64-bit mixed key for the index; never returns 0.
  [[nodiscard]] std::uint64_t packed() const noexcept {
    std::uint64_t v = (static_cast<std::uint64_t>(src) << 32) |
                      (static_cast<std::uint64_t>(qhash ^ id) ^
                       (static_cast<std::uint64_t>(id) << 16));
    // splitmix64-style finalizer: spreads sequential ids across the table.
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebULL;
    v ^= v >> 31;
    return v == 0 ? 1 : v;
  }
};

/// Journey-level counters, bindable to a MetricsRegistry.
struct JourneyStats {
  Counter started;
  Counter completed;
  Counter evicted_open;   // pool full: oldest open journey overwritten
  Counter marks_dropped;  // per-journey event list full
  Counter failed;         // ended with ok=false (drop/timeout)

  void bind(MetricsRegistry& registry, std::string_view prefix) {
    std::string p(prefix);
    registry.attach_counter(p + ".started", started);
    registry.attach_counter(p + ".completed", completed);
    registry.attach_counter(p + ".evicted_open", evicted_open);
    registry.attach_counter(p + ".marks_dropped", marks_dropped);
    registry.attach_counter(p + ".failed", failed);
  }
};

class JourneyTracker {
 public:
  static constexpr std::size_t kMaxEvents = 20;
  static constexpr std::size_t kMaxKeys = 6;  // aliases per journey

  /// One recorded stage boundary. `stage` must point at static storage
  /// (string literals at call sites) — the tracker never copies it.
  struct Event {
    SimTime at{};
    std::string_view stage;
  };

  struct Journey {
    JourneyKey first_key;       // the key of the first mark
    SimTime begin{};            // time of the first mark
    SimTime last{};             // time of the latest mark
    std::uint64_t seq = 0;      // monotonically increasing journey number
    std::uint8_t n_events = 0;
    std::uint8_t n_keys = 0;
    bool ok = true;             // set by end()
    bool ended = false;
    std::array<Event, kMaxEvents> events{};
    std::array<std::uint64_t, kMaxKeys> keys{};  // packed keys incl. aliases

    [[nodiscard]] SimDuration duration() const { return last - begin; }
  };

  JourneyTracker() = default;

  /// Sizes the storage and turns recording on. `active_capacity` bounds
  /// concurrently open journeys; `completed_capacity` bounds the retained
  /// ring of finished ones (oldest overwritten).
  void enable(std::size_t active_capacity = 256,
              std::size_t completed_capacity = 512);
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Records a stage boundary; starts a journey if the key is unknown.
  /// `stage` must be a string literal (or otherwise outlive the tracker).
  void mark(JourneyKey key, std::string_view stage, SimTime at);

  /// Registers `additional` as another key of `existing`'s journey (the
  /// renamed question / re-queried id of the next leg). No-op when
  /// `existing` is unknown or the journey's key list is full.
  void alias(JourneyKey existing, JourneyKey additional);

  /// Records the final stage and moves the journey to the completed ring.
  /// Unknown keys start-and-finish a single-event journey (so terminal
  /// sites never lose data just because the begin mark was elsewhere).
  void end(JourneyKey key, std::string_view stage, SimTime at, bool ok);

  [[nodiscard]] std::size_t active_count() const { return active_count_; }
  [[nodiscard]] std::size_t completed_count() const {
    return completed_head_ < completed_.size()
               ? static_cast<std::size_t>(completed_head_)
               : completed_.size();
  }
  /// Completed journeys, oldest first.
  [[nodiscard]] std::vector<Journey> completed() const;
  /// Looks up an open journey (tests).
  [[nodiscard]] const Journey* find(JourneyKey key) const;

  [[nodiscard]] const JourneyStats& stats() const { return stats_; }
  void bind_metrics(MetricsRegistry& registry, std::string_view prefix) {
    stats_.bind(registry, prefix);
  }

  /// Chrome trace_event JSON ("traceEvents" array of "X" slices, one track
  /// per journey) covering the completed ring; `include_open` adds still
  /// open journeys. Load in Perfetto / chrome://tracing.
  [[nodiscard]] std::string to_chrome_json(bool include_open = false) const;
  /// Writes to_chrome_json() to `path`; false on IO error.
  bool write_chrome_json(const std::string& path,
                         bool include_open = false) const;

  /// Drops all open and completed journeys (capacity and enablement keep).
  void clear();

 private:
  struct IndexSlot {
    std::uint64_t key = 0;       // 0 = empty
    std::uint32_t journey = 0;   // pool index
  };
  static constexpr std::uint32_t kNoJourney = 0xffffffffu;
  static constexpr std::size_t kProbeWindow = 8;

  [[nodiscard]] std::uint32_t lookup(std::uint64_t packed) const;
  void index_insert(std::uint64_t packed, std::uint32_t journey);
  void index_remove_journey(const Journey& j);
  std::uint32_t allocate(JourneyKey key, SimTime at);
  void append_event(Journey& j, std::string_view stage, SimTime at);
  void retire(std::uint32_t idx, bool completed_ok);

  bool enabled_ = false;
  std::vector<IndexSlot> index_;     // open addressing, power-of-two size
  std::uint64_t index_mask_ = 0;
  std::vector<Journey> pool_;
  std::vector<std::uint32_t> free_;  // free pool indices
  std::vector<Journey> completed_;   // ring, masked by completed_mask_
  std::uint64_t completed_mask_ = 0;
  std::uint64_t completed_head_ = 0;
  std::size_t active_count_ = 0;
  std::uint32_t evict_cursor_ = 0;
  std::uint64_t next_seq_ = 1;
  JourneyStats stats_;
};

}  // namespace dnsguard::obs
