#include "obs/drop_reason.h"

namespace dnsguard::obs {

std::string_view drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kNone: return "none";
    case DropReason::kBadCookie: return "bad_cookie";
    case DropReason::kStaleKey: return "stale_key";
    case DropReason::kRateLimited1: return "rate_limited1";
    case DropReason::kRateLimited2: return "rate_limited2";
    case DropReason::kSynCookieFail: return "syn_cookie_fail";
    case DropReason::kProxyConnThrottled: return "proxy_conn_throttled";
    case DropReason::kProxyTimeout: return "proxy_timeout";
    case DropReason::kMalformed: return "malformed";
    case DropReason::kLabelOverflow: return "label_overflow";
    case DropReason::kQueueFull: return "queue_full";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kLossInjected: return "loss_injected";
    case DropReason::kStateTableFull: return "state_table_full";
    case DropReason::kUnmatchedResponse: return "unmatched_response";
    case DropReason::kStraySegment: return "stray_segment";
    case DropReason::kCount: break;
  }
  return "?";
}

void DropCounters::bind(MetricsRegistry& registry, std::string_view prefix) {
  for (std::size_t i = 1; i < kDropReasonCount; ++i) {
    std::string name = std::string(prefix) + ".drop." +
                       std::string(drop_reason_name(
                           static_cast<DropReason>(i)));
    registry.attach_counter(name, cells_[i]);
  }
}

}  // namespace dnsguard::obs
