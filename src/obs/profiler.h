// Wall-clock cost attribution: where do the nanoseconds go?
//
// Everything else in src/obs runs on the *sim* clock; this subsystem is
// the one deliberate exception. It attributes host wall-clock time to
// pipeline stages so the repo can answer questions the virtual clock
// cannot — e.g. ROADMAP item 5: which stage burns the table3 miss-path's
// extra nanoseconds? (See docs/OBSERVABILITY.md "Where the nanoseconds
// go" for a worked example.)
//
// Design, mirroring MetricsRegistry's cell discipline:
//   * A fixed compile-time stage registry (Stage enum + names). Probes
//     index cells by enum — no string hashing, no lookups, no allocation
//     on the hot path.
//   * Scoped probes (DNSGUARD_PROF_SCOPE) read a calibrated TSC
//     (steady_clock calibrates ticks -> ns once, at enable time) and
//     maintain a small nested-span stack per shard lane, so a span's
//     parent is whatever span encloses it on that lane.
//   * Span ends accumulate count / total / min / max / log2-bucket
//     histograms into per-(parent, stage) cells, kept per lane and merged
//     only at report time — exactly how per-shard metric cells work.
//   * Zero cost when disabled: at runtime a disarmed probe is one load
//     and one predictable branch; defining DNSGUARD_PROFILER_DISABLED in
//     a translation unit compiles its probe macros out entirely.
//
// All values accumulate in raw ticks; conversion to nanoseconds happens
// once, in report()/report_json() (cold). The probes themselves never
// multiply, divide or allocate.
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace dnsguard::obs::prof {

/// The stage registry. Fixed at compile time: adding a probe site means
/// adding an enumerator here and a name in stage_name() — nothing is
/// registered at runtime, so probes cost an array index, never a lookup.
enum class Stage : std::uint8_t {
  kRoot = 0,          // implicit bottom of every span stack
  kSimDispatch,       // EventQueue event dispatch (one slice per event)
  kNodeService,       // Node::process, node kinds without their own stage
  kDriverService,     // workload drivers / stub resolvers
  kAttackService,     // attack generators
  kAnsService,        // authoritative server (BIND-model or simulator)
  kResolverService,   // recursive resolver
  kGuardService,      // guard process(): classify + per-scheme handling
  kOutboxFlush,       // Node::flush_outbox_at release event
  kGuardBatchPrepass, // shard burst pre-pass (decode + jobs + bulk verify)
  kGuardDecode,       // dns::Message::decode of an incoming request
  kGuardPrefetch,     // RL1/RL2 bucket prefetch in the batch pre-pass
  kGuardVerifyJobs,   // CookieEngine::verify_jobs bulk verification
  kGuardMint,         // cookie mint / cookie-label / cookie-address make
  kGuardVerify,       // per-packet cookie verification (any encoding)
  kGuardRl1,          // Rate-Limiter1: SpaceSaving + bucket table + bucket
  kGuardRl2,          // Rate-Limiter2: bucket table find + token consume
  kGuardNat,          // TCP-proxy NAT allocate / response rewrite
  kGuardTcpProxy,     // guard TCP path (SYN-cookie stack + proxy)
  kCookieHash,        // crypto::CookieHasher::compute (one MD5 block)
  kCount
};

inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kCount);
/// Shard lanes tracked independently (merged at report time). Lane 0 is
/// the classic sequential discipline; sharded nodes use their lane index.
inline constexpr std::size_t kMaxLanes = 17;
/// Maximum span nesting per lane. Deeper spans are counted (overflow) and
/// dropped rather than recorded with a wrong parent.
inline constexpr std::size_t kMaxDepth = 16;
/// log2 histogram buckets: bucket i counts spans of [2^i, 2^(i+1)) ticks
/// (bucket 0 also holds zero-tick spans). 2^39 ticks is ~minutes at any
/// plausible TSC rate, so the last bucket saturates harmlessly.
inline constexpr std::size_t kHistBuckets = 40;

/// Human-readable stage name (e.g. "guard.verify_jobs"); never nullptr.
[[nodiscard]] const char* stage_name(Stage s) noexcept;

/// Reads the raw timestamp counter. On x86-64 this is rdtsc (unserialized
/// — span boundaries tolerate a few cycles of skew in exchange for probes
/// staying ~nanoseconds); elsewhere it falls back to steady_clock, which
/// calibrate() then measures at ~1 ns/tick.
[[nodiscard]] inline std::uint64_t rdtick() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// One merged (parent, stage) accumulator, converted to nanoseconds.
struct EdgeReport {
  Stage parent = Stage::kRoot;
  Stage stage = Stage::kRoot;
  std::uint64_t count = 0;
  double total_ns = 0;
  double min_ns = 0;
  double max_ns = 0;
  /// Bucket i counts spans of [2^i, 2^(i+1)) ticks; multiply bucket
  /// bounds by ns_per_tick to place them on a nanosecond axis.
  std::array<std::uint64_t, kHistBuckets> hist{};
};

struct Report {
  double ns_per_tick = 1.0;
  std::uint64_t mismatched_spans = 0;
  std::uint64_t overflow_spans = 0;
  /// Calibrated cost of one armed probe (Scope begin+end pair), already
  /// subtracted from edge totals — see "observer-effect correction" in
  /// Profiler::report().
  double probe_cost_ns = 0.0;
  /// Control sample: dispatch slices timed on *disarmed* events (probes
  /// off), interleaved with the armed blocks by DispatchWindow. This is
  /// the true unprofiled cost of an event on the same workload; report()
  /// rescales all edges by `deflation` so attribution sums to what the
  /// events cost without probes, not with them.
  std::uint64_t control_count = 0;
  double control_ns_per_op = 0.0;
  double deflation = 1.0;
  /// Sampling configuration the data was captured under; counts, totals
  /// and histograms in `edges` are already scaled by stride/block, so
  /// they estimate the full (unsampled) run. min/max stay raw (observed).
  std::uint32_t sample_stride = 1;
  std::uint32_t sample_block = 1;
  std::vector<EdgeReport> edges;  // zero cells omitted

  /// Total nanoseconds attributed directly under the root context — the
  /// non-double-counting sum (child spans nest inside their parents).
  [[nodiscard]] double root_total_ns() const;
};

/// The cost-attribution engine. One global instance (`profiler` below)
/// serves the whole process: probes live in code with no Simulator
/// handle (crypto, ratelimit), and the simulator is single-threaded, so
/// per-lane cells need no synchronization.
class Profiler {
 public:
  constexpr Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Calibrates the tick clock on first use and allocates the cell matrix
  /// (the only allocation in the subsystem — never on the hot path).
  /// Accumulated cells persist across disable()/enable() cycles so
  /// recording can pause and resume cheaply; call reset() for a clean
  /// measurement window.
  void enable();
  /// Stops recording; accumulated cells stay readable via report().
  void disable();
  /// Zeroes every cell, span stack and quality counter. Calibration is
  /// kept: reset() is cheap enough to call per measurement window.
  void reset();

  /// Current shard lane for span attribution, in [0, kMaxLanes).
  void set_lane(std::size_t lane) noexcept {
    lane_ = lane < kMaxLanes ? lane : 0;
  }
  [[nodiscard]] std::size_t lane() const noexcept { return lane_; }

  /// Event sampling: the dispatch loop arms probes for the first `block`
  /// events of every `stride` (so the duty cycle is block/stride) and the
  /// report scales totals/counts back up by stride/block. Full profiling
  /// is stride 1 (the default). Sampling is what keeps the enabled-mode
  /// wall overhead inside the benches' 2% gate: a non-sampled event costs
  /// one branch per probe site, exactly like disabled mode. A prime
  /// stride (e.g. 127) avoids aliasing with the event pattern's period.
  void set_sampling(std::uint32_t stride, std::uint32_t block) noexcept {
    sample_stride_ = stride < 1 ? 1 : stride;
    sample_block_ = block < 1 ? 1 : (block > sample_stride_ ? sample_stride_
                                                            : block);
  }
  [[nodiscard]] std::uint32_t sample_stride() const noexcept {
    return sample_stride_;
  }
  [[nodiscard]] std::uint32_t sample_block() const noexcept {
    return sample_block_;
  }

  /// True while probes should record (enabled AND inside a sampled block).
  /// This is the one load every disarmed probe site pays.
  [[nodiscard]] bool recording() const noexcept { return recording_; }
  /// Flipped by DispatchWindow at sampled-block boundaries; forced false
  /// while disabled.
  void set_recording(bool r) noexcept { recording_ = r && enabled_; }

  /// Parent stage adopted by spans that open on an *empty* lane stack.
  /// The dispatch loop pins kSimDispatch here so node-level spans nest
  /// under dispatch even though the loop itself is not a Scope.
  void set_context(Stage s) noexcept { context_ = s; }
  [[nodiscard]] Stage context() const noexcept { return context_; }

  // --- hot-path probes (allocation-free; see tools/lint HOT_PATH_ROOTS) ----

  /// Opens a span on the current lane. False (and counted) on overflow.
  bool span_begin(Stage s) noexcept {
    LaneState& ls = lane_state_[lane_];
    if (ls.depth >= kMaxDepth) {
      ++overflow_spans_;
      return false;
    }
    ls.stack[ls.depth++] = s;
    return true;
  }

  /// Closes the innermost span, accumulating `dt_ticks` under its parent.
  /// A close that does not match the open stack top is counted as
  /// mismatched and the lane's stack is abandoned (reset) rather than
  /// mis-attributed.
  void span_end(Stage s, std::uint64_t dt_ticks) noexcept {
    LaneState& ls = lane_state_[lane_];
    if (ls.depth == 0 || ls.stack[ls.depth - 1] != s) {
      ++mismatched_spans_;
      ls.depth = 0;
      return;
    }
    --ls.depth;
    const Stage parent = ls.depth > 0 ? ls.stack[ls.depth - 1] : context_;
    record(parent, s, dt_ticks);
  }

  /// Accumulates one *control* slice: `dt_ticks` spent dispatching
  /// `events` consecutive events with probes disarmed. DispatchWindow
  /// times one disarmed block per stride — as a single slice, so control
  /// events pay no per-event clock read at all — and report() measures
  /// the armed blocks' observer effect against this probe-free cost of
  /// the same interleaved workload. Slices also land in a fixed ring so
  /// report() can take a per-block *median*: a hypervisor steal burst
  /// inside one control block would otherwise drag the whole mean.
  void record_control(std::uint64_t dt_ticks, std::uint32_t events) noexcept {
    control_total_ += dt_ticks;
    control_count_ += events;
    ctl_slice_ticks_[control_blocks_ % kCtlRing] = dt_ticks;
    ctl_slice_events_[control_blocks_ % kCtlRing] = events;
    ++control_blocks_;
  }
  [[nodiscard]] std::uint64_t control_count() const noexcept {
    return control_count_;
  }

  /// Accumulates one sample into the (parent, stage) cell of the current
  /// lane, bypassing the span stack — the dispatch loop uses this to
  /// charge inter-event slices without a Scope per event.
  void record(Stage parent, Stage s, std::uint64_t dt_ticks) noexcept {
    if (cells_ == nullptr) return;
    Cell& c = cell(lane_, parent, s);
    c.total += dt_ticks;
    if (c.count == 0 || dt_ticks < c.min) c.min = dt_ticks;
    if (dt_ticks > c.max) c.max = dt_ticks;
    ++c.count;
    ++c.hist[bucket_of(dt_ticks)];
  }

  /// log2 bucket index: 0 for v < 2, else floor(log2 v), saturating.
  [[nodiscard]] static constexpr std::size_t bucket_of(
      std::uint64_t v) noexcept {
    if (v < 2) return 0;
    const auto b = static_cast<std::size_t>(std::bit_width(v)) - 1;
    return b < kHistBuckets ? b : kHistBuckets - 1;
  }

  // --- reporting (cold) ----------------------------------------------------

  [[nodiscard]] double ns_per_tick() const noexcept { return ns_per_tick_; }
  [[nodiscard]] std::uint64_t mismatched_spans() const noexcept {
    return mismatched_spans_;
  }
  [[nodiscard]] std::uint64_t overflow_spans() const noexcept {
    return overflow_spans_;
  }

  /// Calibrated per-probe costs in ticks (see calibrate_probe_cost()).
  /// `in` is what an empty span *records* (the ticks between a Scope's two
  /// clock reads); `total` is what one armed begin/end pair costs its
  /// surroundings. Tests pin these to 0 to get uncorrected arithmetic
  /// (set them *after* enable(), which recalibrates when total <= 0).
  void set_probe_cost(double in_ticks, double total_ticks) noexcept {
    probe_in_ticks_ = in_ticks;
    probe_total_ticks_ = total_ticks;
  }
  [[nodiscard]] double probe_total_ticks() const noexcept {
    return probe_total_ticks_;
  }

  /// Merges all lanes' cells into one edge list (ticks -> ns), applying
  /// the observer-effect correction: an *armed* probe's cost lands inside
  /// every enclosing span, so each edge's total is reduced by the
  /// calibrated probe cost times the expected number of probe records
  /// nested inside it. Without this, sampled profiles over-attribute by
  /// the full probe cost of every sampled event (measured ~35% on the
  /// table3 hit path) while unsampled events run probe-free.
  [[nodiscard]] Report report() const;

  /// The "profile" JSON object benches embed. When `measured_wall_ns` is
  /// positive, every edge carries its share of that wall time and the
  /// object reports the root-attributed coverage ("root_share" — the
  /// >= 90% acceptance figure). `indent` is the base indentation of the
  /// object's closing brace, matching TimeSeriesSampler::to_json.
  [[nodiscard]] std::string report_json(double measured_wall_ns,
                                        int indent = 2) const;

 private:
  struct Cell {
    std::uint64_t count;
    std::uint64_t total;
    std::uint64_t min;
    std::uint64_t max;
    std::uint64_t hist[kHistBuckets];
  };
  struct LaneState {
    Stage stack[kMaxDepth];
    std::uint32_t depth;
  };

  [[nodiscard]] Cell& cell(std::size_t lane, Stage parent,
                           Stage s) noexcept {
    return cells_[(lane * kStageCount + static_cast<std::size_t>(parent)) *
                      kStageCount +
                  static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const Cell& cell(std::size_t lane, Stage parent,
                                 Stage s) const noexcept {
    return cells_[(lane * kStageCount + static_cast<std::size_t>(parent)) *
                      kStageCount +
                  static_cast<std::size_t>(s)];
  }

  void calibrate();
  void calibrate_probe_cost();

  bool enabled_ = false;
  bool recording_ = false;
  std::uint32_t sample_stride_ = 1;
  std::uint32_t sample_block_ = 1;
  std::size_t lane_ = 0;
  Stage context_ = Stage::kRoot;
  Cell* cells_ = nullptr;  // kMaxLanes*kStageCount^2, allocated on enable
  LaneState lane_state_[kMaxLanes] = {};
  std::uint64_t mismatched_spans_ = 0;
  std::uint64_t overflow_spans_ = 0;
  double ns_per_tick_ = 0.0;       // 0 = not yet calibrated
  double probe_in_ticks_ = 0.0;    // ticks an empty span records
  double probe_total_ticks_ = 0.0; // ticks one begin/end pair costs
  /// Ring of recent control slices for the median estimator (2 KiB; a
  /// quick bench window produces ~100 control blocks, a full one ~450 —
  /// the median over the most recent kCtlRing is plenty either way).
  static constexpr std::size_t kCtlRing = 256;
  std::uint64_t control_total_ = 0;
  std::uint64_t control_count_ = 0;
  std::uint64_t control_blocks_ = 0;
  std::uint64_t ctl_slice_ticks_[kCtlRing] = {};
  std::uint32_t ctl_slice_events_[kCtlRing] = {};
};

/// The process-wide profiler instance every probe indexes into.
inline constinit Profiler profiler;

/// RAII span probe. Disarmed (one branch) when profiling is off.
class Scope {
 public:
  explicit Scope(Stage s) noexcept : stage_(s) {
    armed_ = profiler.recording() && profiler.span_begin(s);
    if (armed_) start_ = rdtick();
  }
  ~Scope() {
    if (armed_) profiler.span_end(stage_, rdtick() - start_);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  std::uint64_t start_ = 0;
  Stage stage_;
  bool armed_;
};

/// RAII lane selector for shard service bursts (Node::serve_lane).
class LaneScope {
 public:
  explicit LaneScope(std::size_t lane) noexcept : prev_(profiler.lane()) {
    profiler.set_lane(lane);
  }
  ~LaneScope() { profiler.set_lane(prev_); }
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  std::size_t prev_;
};

/// Per-event dispatch accounting for the simulator's run loop: one tick
/// read per sampled event (the previous slice's end is the next one's
/// start) instead of a full Scope, and kSimDispatch pinned as the context
/// so node-level spans parent under it. The window drives the profiler's
/// event sampling: probes are armed only for the first `sample_block`
/// events of each `sample_stride` — a non-sampled event costs this loop
/// one branch and two compares, and every probe site a single load.
class DispatchWindow {
 public:
  DispatchWindow() noexcept {
    armed_ = profiler.enabled();
    if (armed_) {
      stride_ = profiler.sample_stride();
      block_ = profiler.sample_block();
      // A *control* block of disarmed events midway through each stride,
      // when the duty cycle leaves room for one. It is timed as a single
      // slice, so its length is nearly free (two clock reads total) —
      // make it 4x the sample block: the control mean anchors the
      // report's deflation and coverage figures, and a longer block cuts
      // their variance against bursty host interference. Its job is to
      // measure what events cost probe-free, so report() can rescale the
      // armed blocks' inflated attribution (armed probes run cold at low
      // duty and cost several times their hot-loop calibration).
      if (stride_ >= 2 * block_) {
        ctl_start_ = stride_ / 2;
        const std::uint32_t room = stride_ - ctl_start_;
        ctl_len_ = 4 * block_ < room ? 4 * block_ : room;
      } else {
        ctl_start_ = stride_;
        ctl_len_ = 0;
      }
      prev_context_ = profiler.context();
      profiler.set_context(Stage::kSimDispatch);
      profiler.set_recording(true);  // phase 0 is always in-block
      last_ = rdtick();
    }
  }
  ~DispatchWindow() {
    if (armed_) {
      profiler.set_context(prev_context_);
      profiler.set_recording(true);  // outside the loop: full recording
    }
  }
  DispatchWindow(const DispatchWindow&) = delete;
  DispatchWindow& operator=(const DispatchWindow&) = delete;

  /// Call once after each dispatched event.
  void tick() noexcept {
    if (!armed_) return;
    const std::uint32_t p = phase_;
    phase_ = p + 1 == stride_ ? 0 : p + 1;
    const bool cur = p < block_;       // was the finished event sampled?
    const bool nxt = phase_ < block_;  // will the next one be?
    // Unsigned wrap makes `p - ctl_start_ < ctl_len_` a one-compare test
    // for p in [ctl_start_, ctl_start_ + ctl_len_). The control block is
    // timed as a single slice — clock reads only at its two boundaries —
    // so the events inside it run exactly as they would unprofiled.
    const bool ctl_cur = p - ctl_start_ < ctl_len_;
    const bool ctl_nxt = phase_ - ctl_start_ < ctl_len_;
    if (cur || nxt || ctl_cur != ctl_nxt) {
      const std::uint64_t t = rdtick();
      if (cur) {
        profiler.record(Stage::kRoot, Stage::kSimDispatch, t - last_);
      } else if (ctl_cur && !ctl_nxt) {
        profiler.record_control(t - last_, ctl_len_);
      }
      last_ = t;
    }
    if (cur != nxt) profiler.set_recording(nxt);
  }

 private:
  std::uint64_t last_ = 0;
  std::uint32_t phase_ = 0;
  std::uint32_t stride_ = 1;
  std::uint32_t block_ = 1;
  std::uint32_t ctl_start_ = 1;
  std::uint32_t ctl_len_ = 0;
  Stage prev_context_ = Stage::kRoot;
  bool armed_;
};

}  // namespace dnsguard::obs::prof

// Probe macros. A translation unit compiled with DNSGUARD_PROFILER_DISABLED
// drops its probes entirely — not even the disarmed branch survives — which
// is the compile-time half of the zero-cost-when-disabled contract (the
// runtime half is Scope's single-branch disarm).
#if defined(DNSGUARD_PROFILER_DISABLED)
#define DNSGUARD_PROF_COMPILED_IN 0
#define DNSGUARD_PROF_SCOPE(stage) static_cast<void>(0)
#else
#define DNSGUARD_PROF_COMPILED_IN 1
#define DNSGUARD_PROF_CONCAT2(a, b) a##b
#define DNSGUARD_PROF_CONCAT(a, b) DNSGUARD_PROF_CONCAT2(a, b)
#define DNSGUARD_PROF_SCOPE(stage)                               \
  ::dnsguard::obs::prof::Scope DNSGUARD_PROF_CONCAT(             \
      dnsguard_prof_scope_, __LINE__) {                          \
    (stage)                                                      \
  }
#endif
