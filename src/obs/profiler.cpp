#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace dnsguard::obs::prof {

const char* stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::kRoot:
      return "root";
    case Stage::kSimDispatch:
      return "sim.dispatch";
    case Stage::kNodeService:
      return "node.service";
    case Stage::kDriverService:
      return "driver.service";
    case Stage::kAttackService:
      return "attack.service";
    case Stage::kAnsService:
      return "ans.service";
    case Stage::kResolverService:
      return "resolver.service";
    case Stage::kGuardService:
      return "guard.service";
    case Stage::kOutboxFlush:
      return "node.outbox_flush";
    case Stage::kGuardBatchPrepass:
      return "guard.batch_prepass";
    case Stage::kGuardDecode:
      return "guard.decode";
    case Stage::kGuardPrefetch:
      return "guard.limiter_prefetch";
    case Stage::kGuardVerifyJobs:
      return "guard.verify_jobs";
    case Stage::kGuardMint:
      return "guard.mint";
    case Stage::kGuardVerify:
      return "guard.verify";
    case Stage::kGuardRl1:
      return "guard.rl1";
    case Stage::kGuardRl2:
      return "guard.rl2";
    case Stage::kGuardNat:
      return "guard.nat_rewrite";
    case Stage::kGuardTcpProxy:
      return "guard.tcp_proxy";
    case Stage::kCookieHash:
      return "crypto.cookie_hash";
    case Stage::kCount:
      break;
  }
  return "unknown";
}

double Report::root_total_ns() const {
  double total = 0;
  for (const EdgeReport& e : edges) {
    if (e.parent == Stage::kRoot) total += e.total_ns;
  }
  return total;
}

void Profiler::calibrate() {
  // The one place in src/ outside common/time.cpp that reads a host
  // clock by design: ticks have no unit until measured against
  // steady_clock (tools/lint/dnsguard_lint.py exempts this file from the
  // sim-time-purity rule for exactly this reason).
  using Clock = std::chrono::steady_clock;
  const Clock::time_point c0 = Clock::now();
  const std::uint64_t t0 = rdtick();
  for (;;) {
    const Clock::time_point c1 = Clock::now();
    const auto elapsed_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(c1 - c0)
            .count();
    if (elapsed_ns >= 2'000'000) {  // ~2 ms window: stable to <1%
      const std::uint64_t t1 = rdtick();
      ns_per_tick_ = t1 > t0 ? static_cast<double>(elapsed_ns) /
                                   static_cast<double>(t1 - t0)
                             : 1.0;
      return;
    }
  }
}

void Profiler::calibrate_probe_cost() {
  // Runs a tight loop of armed begin/end pairs on a scratch lane to
  // measure the observer effect report() must subtract: `in` = the ticks
  // an empty span records (the gap between a Scope's two clock reads),
  // `total` = what one pair costs its surroundings. A hot-loop figure is
  // a *lower bound* on the cost probes have mid-workload (cold caches,
  // untrained branches), so the correction deliberately under-corrects
  // rather than inventing time that was never spent.
  const std::size_t saved_lane = lane_;
  lane_ = kMaxLanes - 1;
  LaneState saved_state = lane_state_[lane_];
  lane_state_[lane_].depth = 0;
  constexpr int kIters = 1 << 16;
  const std::uint64_t t0 = rdtick();
  for (int i = 0; i < kIters; ++i) {
    if (span_begin(Stage::kSimDispatch)) {
      const std::uint64_t s = rdtick();
      span_end(Stage::kSimDispatch, rdtick() - s);
    }
  }
  const std::uint64_t t1 = rdtick();
  Cell& c = cell(lane_, context_, Stage::kSimDispatch);
  probe_in_ticks_ =
      c.count > 0 ? static_cast<double>(c.total) / static_cast<double>(c.count)
                  : 0.0;
  probe_total_ticks_ = static_cast<double>(t1 - t0) / kIters;
  std::memset(&c, 0, sizeof(Cell));
  lane_state_[lane_] = saved_state;
  lane_ = saved_lane;
}

void Profiler::enable() {
  if (cells_ == nullptr) {
    // Value-initialized: a fresh matrix starts zeroed without a reset().
    cells_ = new Cell[kMaxLanes * kStageCount * kStageCount]();
  }
  if (ns_per_tick_ <= 0.0) calibrate();
  if (probe_total_ticks_ <= 0.0) calibrate_probe_cost();
  enabled_ = true;
  recording_ = true;
}

void Profiler::disable() {
  enabled_ = false;
  recording_ = false;
}

void Profiler::reset() {
  if (cells_ != nullptr) {
    std::memset(cells_, 0,
                kMaxLanes * kStageCount * kStageCount * sizeof(Cell));
  }
  for (LaneState& ls : lane_state_) ls.depth = 0;
  mismatched_spans_ = 0;
  overflow_spans_ = 0;
  control_total_ = 0;
  control_count_ = 0;
  control_blocks_ = 0;
}

Report Profiler::report() const {
  Report r;
  r.ns_per_tick = ns_per_tick_ > 0.0 ? ns_per_tick_ : 1.0;
  r.mismatched_spans = mismatched_spans_;
  r.overflow_spans = overflow_spans_;
  r.sample_stride = sample_stride_;
  r.sample_block = sample_block_;
  r.probe_cost_ns = probe_total_ticks_ * r.ns_per_tick;
  // Sampled captures hold block/stride of the run; scale counts, totals
  // and histograms back up so the report estimates the full run. min/max
  // stay raw: they are observed extrema, not rates.
  const double scale = static_cast<double>(sample_stride_) /
                       static_cast<double>(sample_block_);
  if (cells_ == nullptr) return r;

  // Pass 1: merge lanes into count/total matrices for the observer-effect
  // correction. Every probe record that happened *inside* a span left its
  // own cost (clock reads, stack ops, cell update) in that span's total;
  // D(s) below is the expected number of descendant records per span of
  // stage s, from the edge counts themselves:
  //   D(s) = sum_c count(s,c)/spans(s) * (1 + D(c))
  // Each edge total then sheds count * (probe_in + D(s) * probe_total)
  // ticks: the inflation its own empty-span gap plus its descendants'
  // probes contributed. Cycles (impossible for real nesting, possible
  // with hand-fed record() data) terminate by treating a back edge's
  // D as 0.
  std::uint64_t counts[kStageCount][kStageCount] = {};
  double totals[kStageCount][kStageCount] = {};
  double spans_into[kStageCount] = {};
  for (std::size_t p = 0; p < kStageCount; ++p) {
    for (std::size_t s = 0; s < kStageCount; ++s) {
      for (std::size_t lane = 0; lane < kMaxLanes; ++lane) {
        const Cell& c =
            cell(lane, static_cast<Stage>(p), static_cast<Stage>(s));
        counts[p][s] += c.count;
        totals[p][s] += static_cast<double>(c.total);
      }
      spans_into[s] += static_cast<double>(counts[p][s]);
    }
  }
  int state[kStageCount] = {};  // 0 unvisited, 1 in progress, 2 done
  double descend[kStageCount] = {};
  auto dfs = [&](auto&& self, std::size_t s) -> double {
    if (state[s] == 1) return 0.0;
    if (state[s] == 2) return descend[s];
    state[s] = 1;
    double d = 0.0;
    if (spans_into[s] > 0) {
      for (std::size_t c2 = 0; c2 < kStageCount; ++c2) {
        if (counts[s][c2] == 0) continue;
        d += static_cast<double>(counts[s][c2]) *
             (1.0 + self(self, c2)) / spans_into[s];
      }
    }
    state[s] = 2;
    descend[s] = d;
    return d;
  };
  for (std::size_t s = 0; s < kStageCount; ++s) dfs(dfs, s);

  // Pass 2: build the edge list from corrected totals.
  for (std::size_t p = 0; p < kStageCount; ++p) {
    for (std::size_t s = 0; s < kStageCount; ++s) {
      if (counts[p][s] == 0) continue;
      EdgeReport e;
      e.parent = static_cast<Stage>(p);
      e.stage = static_cast<Stage>(s);
      std::uint64_t min_ticks = 0;
      std::uint64_t max_ticks = 0;
      for (std::size_t lane = 0; lane < kMaxLanes; ++lane) {
        const Cell& c = cell(lane, e.parent, e.stage);
        if (c.count == 0) continue;
        if (e.count == 0 || c.min < min_ticks) min_ticks = c.min;
        if (c.max > max_ticks) max_ticks = c.max;
        e.count += c.count;
        for (std::size_t b = 0; b < kHistBuckets; ++b) e.hist[b] += c.hist[b];
      }
      const double correction =
          static_cast<double>(counts[p][s]) *
          (probe_in_ticks_ + descend[s] * probe_total_ticks_);
      const double corrected =
          totals[p][s] > correction ? totals[p][s] - correction : 0.0;
      if (scale != 1.0) {
        e.count = static_cast<std::uint64_t>(
            static_cast<double>(e.count) * scale + 0.5);
        for (std::size_t b = 0; b < kHistBuckets; ++b) {
          e.hist[b] = static_cast<std::uint64_t>(
              static_cast<double>(e.hist[b]) * scale + 0.5);
        }
      }
      e.total_ns = corrected * r.ns_per_tick * scale;
      e.min_ns = static_cast<double>(min_ticks) * r.ns_per_tick;
      e.max_ns = static_cast<double>(max_ticks) * r.ns_per_tick;
      r.edges.push_back(e);
    }
  }

  // Pass 3: control-based deflation. The probe-cost model above removes
  // *hot-loop* probe cost, but at a low duty cycle armed probes run cold
  // (their code and cells fall out of cache between blocks) and cost
  // several times the calibration figure, so sampled slices still
  // over-attribute. The control block gives the cure: the measured cost
  // of the same interleaved events with probes disarmed. Rescale every
  // edge so the per-event dispatch cost matches the control — shares
  // between stages keep their measured proportions; only the total drops
  // to what the events cost unprofiled.
  r.control_count = control_count_;
  if (control_count_ > 0) {
    // Winsorized mean over the per-block control slices: the mean is the
    // right center (the wall time this anchor is compared against keeps
    // its share of ordinary host interference, which a median would
    // discard), but one hypervisor steal burst inside a single control
    // block must not drag the anchor the whole report rescales against —
    // so blocks are clamped at 3x the median before averaging.
    const std::size_t n = control_blocks_ < kCtlRing
                              ? static_cast<std::size_t>(control_blocks_)
                              : kCtlRing;
    double per_op[kCtlRing];
    std::size_t m = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (ctl_slice_events_[i] == 0) continue;
      per_op[m++] = static_cast<double>(ctl_slice_ticks_[i]) /
                    static_cast<double>(ctl_slice_events_[i]);
    }
    if (m > 0) {
      std::nth_element(per_op, per_op + m / 2, per_op + m);
      const double cap = 3.0 * per_op[m / 2];
      double sum = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        sum += per_op[i] < cap ? per_op[i] : cap;
      }
      r.control_ns_per_op = sum / static_cast<double>(m) * r.ns_per_tick;
    } else {
      r.control_ns_per_op = static_cast<double>(control_total_) /
                            static_cast<double>(control_count_) *
                            r.ns_per_tick;
    }
    const std::size_t root_i = static_cast<std::size_t>(Stage::kRoot);
    const std::size_t disp_i = static_cast<std::size_t>(Stage::kSimDispatch);
    const std::uint64_t disp_count = counts[root_i][disp_i];
    for (const EdgeReport& e : r.edges) {
      if (e.parent != Stage::kRoot || e.stage != Stage::kSimDispatch ||
          disp_count == 0 || e.total_ns <= 0) {
        continue;
      }
      const double sampled_ns_per_op =
          e.total_ns / (static_cast<double>(disp_count) * scale);
      if (sampled_ns_per_op > r.control_ns_per_op) {
        r.deflation = r.control_ns_per_op / sampled_ns_per_op;
      }
      break;
    }
    if (r.deflation < 1.0) {
      for (EdgeReport& e : r.edges) e.total_ns *= r.deflation;
    }
  }
  return r;
}

namespace {

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

std::string Profiler::report_json(double measured_wall_ns,
                                  int indent) const {
  const Report r = report();
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2 = pad + "  ";
  const std::string pad3 = pad2 + "  ";
  std::string out = "{\n";
  out += pad2 + "\"enabled\": " + (enabled_ ? "true" : "false") + ",\n";
  out += pad2 + "\"ns_per_tick\": ";
  append_num(out, r.ns_per_tick);
  out += ",\n" + pad2 + "\"measured_wall_ns\": ";
  append_num(out, measured_wall_ns);
  out += ",\n" + pad2 +
         "\"mismatched_spans\": " + std::to_string(r.mismatched_spans);
  out += ",\n" + pad2 +
         "\"overflow_spans\": " + std::to_string(r.overflow_spans);
  out += ",\n" + pad2 +
         "\"sample_stride\": " + std::to_string(r.sample_stride);
  out += ",\n" + pad2 +
         "\"sample_block\": " + std::to_string(r.sample_block);
  out += ",\n" + pad2 + "\"probe_cost_ns\": ";
  append_num(out, r.probe_cost_ns);
  out += ",\n" + pad2 +
         "\"control_count\": " + std::to_string(r.control_count);
  out += ",\n" + pad2 + "\"control_ns_per_op\": ";
  append_num(out, r.control_ns_per_op);
  out += ",\n" + pad2 + "\"deflation\": ";
  append_num(out, r.deflation);
  if (measured_wall_ns > 0) {
    out += ",\n" + pad2 + "\"root_share\": ";
    append_num(out, r.root_total_ns() / measured_wall_ns);
  }
  out += ",\n" + pad2 + "\"stages\": [";
  bool first = true;
  for (const EdgeReport& e : r.edges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad3 + "{\"parent\": \"" + stage_name(e.parent) +
           "\", \"stage\": \"" + stage_name(e.stage) + "\"";
    out += ", \"count\": " + std::to_string(e.count);
    out += ", \"total_ns\": ";
    append_num(out, e.total_ns);
    out += ", \"ns_per_op\": ";
    append_num(out, e.count > 0 ? e.total_ns / static_cast<double>(e.count)
                                : 0.0);
    out += ", \"min_ns\": ";
    append_num(out, e.min_ns);
    out += ", \"max_ns\": ";
    append_num(out, e.max_ns);
    if (measured_wall_ns > 0) {
      out += ", \"share\": ";
      append_num(out, e.total_ns / measured_wall_ns);
    }
    // Histogram as [lower_bound_ns, count] pairs, zero buckets omitted.
    out += ", \"hist_ns\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (e.hist[b] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      const double lower =
          b == 0 ? 0.0
                 : static_cast<double>(std::uint64_t{1} << b) * r.ns_per_tick;
      out += "[";
      append_num(out, lower);
      out += ", " + std::to_string(e.hist[b]) + "]";
    }
    out += "]}";
  }
  out += first ? "]" : "\n" + pad2 + "]";
  out += "\n" + pad + "}";
  return out;
}

}  // namespace dnsguard::obs::prof
