#include "obs/anomaly.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dnsguard::obs {

double AnomalyDetector::threshold() const {
  const double spread = dev_ > cfg_.dev_floor ? dev_ : cfg_.dev_floor;
  return mean_ + cfg_.k * spread;
}

void AnomalyDetector::reset() {
  mean_ = 0.0;
  dev_ = 0.0;
  seen_ = 0;
  streak_ = 0;
  in_anomaly_ = false;
}

AnomalyDetector::Signal AnomalyDetector::update(double value) {
  ++seen_;
  if (seen_ == 1) {
    mean_ = value;
    dev_ = 0.0;
    return Signal::kNone;
  }

  const auto absorb = [&] {
    const double err = std::abs(value - mean_);
    mean_ = cfg_.alpha * value + (1.0 - cfg_.alpha) * mean_;
    dev_ = cfg_.alpha * err + (1.0 - cfg_.alpha) * dev_;
  };

  if (seen_ <= cfg_.warmup_windows) {
    absorb();
    return Signal::kNone;
  }

  const bool above = value > threshold();
  Signal sig = Signal::kNone;
  if (!in_anomaly_) {
    if (above) {
      if (++streak_ >= cfg_.onset_consecutive) {
        in_anomaly_ = true;
        streak_ = 0;
        sig = Signal::kOnset;
      }
    } else {
      streak_ = 0;
      // Only quiet windows feed the baseline: an above-threshold window —
      // even one that has not yet confirmed onset — must not inflate it.
      absorb();
    }
  } else {
    // Baseline frozen while in anomaly.
    if (!above) {
      if (++streak_ >= cfg_.offset_consecutive) {
        in_anomaly_ = false;
        streak_ = 0;
        sig = Signal::kOffset;
        absorb();
      }
    } else {
      streak_ = 0;
    }
  }
  return sig;
}

void AttackMonitor::watch(std::string series_name) {
  wanted_.push_back(std::move(series_name));
}

void AttackMonitor::bind(TimeSeriesSampler& sampler,
                         MetricsRegistry& registry,
                         std::string_view gauge_name) {
  series_.clear();
  for (const std::string& name : wanted_) {
    const int idx = sampler.series_index(name);
    if (idx < 0) continue;
    series_.push_back(Watched{name, idx, AnomalyDetector(cfg_)});
  }
  registry.attach_gauge(gauge_name, under_attack_);
  under_attack_.set(0);
  sampler.set_on_window(
      [this](const TimeSeriesSampler::Window& w) { on_window(w); });
}

void AttackMonitor::on_window(const TimeSeriesSampler::Window& w) {
  for (Watched& s : series_) {
    const double value =
        static_cast<double>(w.deltas[static_cast<std::size_t>(s.index)]);
    const double thresh = s.detector.threshold();
    const AnomalyDetector::Signal sig = s.detector.update(value);
    if (sig == AnomalyDetector::Signal::kNone) continue;
    const bool onset = sig == AnomalyDetector::Signal::kOnset;
    attacking_ += onset ? 1 : -1;
    under_attack_.set(attacking_ > 0 ? 1 : 0);
    events_.push_back(Event{w.end, s.name, onset, value, thresh});
    if (onset && on_onset_) on_onset_(events_.back());
  }
}

std::string AttackMonitor::events_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent),
                        ' ');
  std::string out = "[";
  bool first = true;
  char buf[160];
  for (const Event& e : events_) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n%s  {\"t_s\": %.6f, \"series\": \"%s\", "
                  "\"onset\": %s, \"value\": %.3f, \"threshold\": %.3f}",
                  first ? "" : ",", pad.c_str(),
                  static_cast<double>(e.at.ns) / 1e9, e.series.c_str(),
                  e.onset ? "true" : "false", e.value, e.threshold);
    out += buf;
    first = false;
  }
  out += first ? "]" : "\n" + pad + "]";
  return out;
}

void FlightRecorder::add_section(std::string name, SectionFn fn) {
  sections_.emplace_back(std::move(name), std::move(fn));
}

std::string FlightRecorder::render(std::string_view label,
                                   SimTime now) const {
  char buf[96];
  std::string out = "{\n  \"label\": \"";
  out.append(label);
  std::snprintf(buf, sizeof(buf), "\",\n  \"sim_time_s\": %.6f",
                static_cast<double>(now.ns) / 1e9);
  out += buf;
  for (const auto& [name, fn] : sections_) {
    out += ",\n  \"" + name + "\": ";
    out += fn ? fn() : "null";
  }
  out += "\n}\n";
  return out;
}

std::string FlightRecorder::dump(std::string_view label, SimTime now) {
  std::string dir = dir_;
  if (dir.empty()) {
    const char* env = std::getenv("DNSGUARD_FLIGHTREC_DIR");
    dir = env != nullptr && *env != '\0' ? env : ".";
  }
  std::string safe;
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    safe.push_back(ok ? c : '_');
  }
  char name[64];
  std::snprintf(name, sizeof(name), "/flightrec_%s_%zu.json", safe.c_str(),
                seq_);
  const std::string path = dir + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  const std::string doc = render(label, now);
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  ++seq_;
  return path;
}

}  // namespace dnsguard::obs
