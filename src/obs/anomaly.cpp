#include "obs/anomaly.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace dnsguard::obs {

double AnomalyDetector::threshold() const {
  const double spread = dev_ > cfg_.dev_floor ? dev_ : cfg_.dev_floor;
  return mean_ + cfg_.k * spread;
}

void AnomalyDetector::reset() {
  mean_ = 0.0;
  dev_ = 0.0;
  seen_ = 0;
  streak_ = 0;
  in_anomaly_ = false;
}

AnomalyDetector::Signal AnomalyDetector::update(double value) {
  ++seen_;
  if (seen_ == 1) {
    mean_ = value;
    dev_ = 0.0;
    return Signal::kNone;
  }

  const auto absorb = [&] {
    const double err = std::abs(value - mean_);
    mean_ = cfg_.alpha * value + (1.0 - cfg_.alpha) * mean_;
    dev_ = cfg_.alpha * err + (1.0 - cfg_.alpha) * dev_;
  };

  if (seen_ <= cfg_.warmup_windows) {
    absorb();
    return Signal::kNone;
  }

  const bool above = value > threshold();
  Signal sig = Signal::kNone;
  if (!in_anomaly_) {
    if (above) {
      if (++streak_ >= cfg_.onset_consecutive) {
        in_anomaly_ = true;
        streak_ = 0;
        sig = Signal::kOnset;
      }
    } else {
      streak_ = 0;
      // Only quiet windows feed the baseline: an above-threshold window —
      // even one that has not yet confirmed onset — must not inflate it.
      absorb();
    }
  } else {
    // Baseline frozen while in anomaly.
    if (!above) {
      if (++streak_ >= cfg_.offset_consecutive) {
        in_anomaly_ = false;
        streak_ = 0;
        sig = Signal::kOffset;
        absorb();
      }
    } else {
      streak_ = 0;
    }
  }
  return sig;
}

void AttackMonitor::watch(std::string series_name) {
  wanted_.push_back(std::move(series_name));
}

void AttackMonitor::set_discriminator(DiscriminatorConfig cfg) {
  disc_ = std::move(cfg);
  discriminate_ = true;
}

namespace {
void resolve_indices(const TimeSeriesSampler& sampler,
                     const std::vector<std::string>& names,
                     std::vector<int>& out) {
  out.clear();
  for (const std::string& name : names) {
    const int idx = sampler.series_index(name);
    if (idx >= 0) out.push_back(idx);
  }
}
}  // namespace

void AttackMonitor::bind(TimeSeriesSampler& sampler,
                         MetricsRegistry& registry,
                         std::string_view gauge_name) {
  series_.clear();
  for (const std::string& name : wanted_) {
    const int idx = sampler.series_index(name);
    if (idx < 0) continue;
    series_.push_back(Watched{name, idx, AnomalyDetector(cfg_)});
  }
  resolve_indices(sampler, disc_.malicious_series, malicious_idx_);
  resolve_indices(sampler, disc_.load_series, load_idx_);
  resolve_indices(sampler, disc_.source_series, source_idx_);
  registry.attach_gauge(gauge_name, under_attack_);
  under_attack_.set(0);
  if (discriminate_) {
    registry.attach_gauge("anomaly.flash_crowd", flash_crowd_);
    flash_crowd_.set(0);
  }
  sampler.set_on_window(
      [this](const TimeSeriesSampler::Window& w) { on_window(w); });
}

double AttackMonitor::sum_deltas(const TimeSeriesSampler::Window& w,
                                 const std::vector<int>& indices) {
  double total = 0.0;
  for (int idx : indices) {
    total += static_cast<double>(w.deltas[static_cast<std::size_t>(idx)]);
  }
  return total;
}

void AttackMonitor::on_window(const TimeSeriesSampler::Window& w) {
  // Discriminator signals for this window (shared by every watched series
  // that fires in it): how much of the guard's work was provably
  // malicious, and how many first-contact sources appeared.
  double mix = 0.0;
  double growth = 0.0;
  if (discriminate_) {
    const double malicious = sum_deltas(w, malicious_idx_);
    const double load = sum_deltas(w, load_idx_);
    mix = load > 0.0 ? malicious / load : 0.0;
    growth = sum_deltas(w, source_idx_);
  }

  for (Watched& s : series_) {
    const double value =
        static_cast<double>(w.deltas[static_cast<std::size_t>(s.index)]);
    const double thresh = s.detector.threshold();
    const AnomalyDetector::Signal sig = s.detector.update(value);
    if (sig == AnomalyDetector::Signal::kNone) continue;
    const bool onset = sig == AnomalyDetector::Signal::kOnset;
    if (onset) {
      // A load surge that is mostly verified-clean traffic is a flash
      // crowd, not an attack; the drop taxonomy is what betrays a flood
      // (spoofed cookies never verify, so the malicious mix jumps).
      s.active_kind = discriminate_ && mix < disc_.attack_mix_threshold
                          ? Kind::kFlashCrowd
                          : Kind::kAttack;
    }
    const Kind kind = s.active_kind;
    int& level = kind == Kind::kAttack ? attacking_ : flash_crowds_;
    level += onset ? 1 : -1;
    under_attack_.set(attacking_ > 0 ? 1 : 0);
    flash_crowd_.set(flash_crowds_ > 0 ? 1 : 0);
    events_.push_back(
        Event{w.end, s.name, onset, value, thresh, kind, mix, growth});
    if (onset && on_onset_) on_onset_(events_.back());
  }
}

std::string AttackMonitor::events_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent),
                        ' ');
  std::string out = "[";
  bool first = true;
  char buf[256];
  for (const Event& e : events_) {
    std::snprintf(
        buf, sizeof(buf),
        "%s\n%s  {\"t_s\": %.6f, \"series\": \"%s\", "
        "\"onset\": %s, \"value\": %.3f, \"threshold\": %.3f, "
        "\"kind\": \"%s\", \"malicious_mix\": %.3f, "
        "\"source_growth\": %.0f}",
        first ? "" : ",", pad.c_str(), static_cast<double>(e.at.ns) / 1e9,
        e.series.c_str(), e.onset ? "true" : "false", e.value, e.threshold,
        std::string(kind_name(e.kind)).c_str(), e.malicious_mix,
        e.source_growth);
    out += buf;
    first = false;
  }
  out += first ? "]" : "\n" + pad + "]";
  return out;
}

void FlightRecorder::add_section(std::string name, SectionFn fn) {
  sections_.emplace_back(std::move(name), std::move(fn));
}

std::string FlightRecorder::render(std::string_view label,
                                   SimTime now) const {
  char buf[96];
  std::string out = "{\n  \"label\": \"";
  out.append(label);
  std::snprintf(buf, sizeof(buf), "\",\n  \"sim_time_s\": %.6f",
                static_cast<double>(now.ns) / 1e9);
  out += buf;
  for (const auto& [name, fn] : sections_) {
    out += ",\n  \"" + name + "\": ";
    out += fn ? fn() : "null";
  }
  out += "\n}\n";
  return out;
}

std::string FlightRecorder::dump(std::string_view label, SimTime now) {
  std::string dir = dir_;
  if (dir.empty()) {
    const char* env = std::getenv("DNSGUARD_FLIGHTREC_DIR");
    dir = env != nullptr && *env != '\0' ? env : ".";
  }
  std::string safe;
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    safe.push_back(ok ? c : '_');
  }
  char name[64];
  std::snprintf(name, sizeof(name), "/flightrec_%s_%zu.json", safe.c_str(),
                seq_);
  const std::string path = dir + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  const std::string doc = render(label, now);
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  ++seq_;
  return path;
}

}  // namespace dnsguard::obs
