// Drop-reason taxonomy: every packet the system discards is charged to
// exactly one reason. *Which* defense dropped a packet and *why* is the
// primary operational signal of a layered spoofing defense — the paper's
// evaluation is entirely rates-and-reasons, and this enum is the uniform
// vocabulary the guard, TCP proxy, rate limiters and simulator share.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "obs/metrics.h"

namespace dnsguard::obs {

enum class DropReason : std::uint8_t {
  kNone = 0,          // not a drop (trace-event filler)
  kBadCookie,         // cookie / cookie-prefix verification failed (spoof)
  kStaleKey,          // failed cookie presented the previous generation's
                      // bit — most likely minted 2+ rotations ago
  kRateLimited1,      // cookie-response limiter (RL1, reflector protection)
  kRateLimited2,      // verified-request limiter (RL2, per-host fairness)
  kSynCookieFail,     // TCP ACK with an invalid SYN cookie
  kProxyConnThrottled,  // per-client TCP connection-rate bucket
  kProxyTimeout,      // proxied connection reaped (idle / 5xRTT lifetime)
  kMalformed,         // undecodable or non-query DNS payload
  kLabelOverflow,     // cookie label would exceed the 63-byte label limit
  kQueueFull,         // receive-queue overflow at a node
  kNoRoute,           // network had no route for the destination
  kLossInjected,      // simulator-injected in-flight loss
  kStateTableFull,    // bounded per-source table refused/recycled an entry
  kUnmatchedResponse,  // response with no matching outstanding query /
                       // NAT entry / pending state (likely spoofed or late)
  kStraySegment,       // TCP segment matching no connection or listener
                       // (RST'd away; spoofed, late, or port-scanning)
  kCount
};

inline constexpr std::size_t kDropReasonCount =
    static_cast<std::size_t>(DropReason::kCount);

/// Stable snake_case name, used as the metric-name suffix.
[[nodiscard]] std::string_view drop_reason_name(DropReason r);

/// One Counter per reason. The cells live here (hot path: one array index
/// + one add); bind() attaches each as "<prefix>.drop.<reason>" so the
/// registry exports the full taxonomy.
class DropCounters {
 public:
  void count(DropReason r, std::uint64_t n = 1) noexcept {
    cells_[static_cast<std::size_t>(r)].inc(n);
  }

  [[nodiscard]] std::uint64_t value(DropReason r) const noexcept {
    return cells_[static_cast<std::size_t>(r)].value();
  }
  /// Total across all real reasons (kNone excluded).
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (std::size_t i = 1; i < kDropReasonCount; ++i) {
      t += cells_[i].value();
    }
    return t;
  }

  void reset() noexcept {
    for (auto& c : cells_) c.reset();
  }

  /// Attaches every per-reason cell (kNone excluded) under
  /// "<prefix>.drop.<reason>".
  void bind(MetricsRegistry& registry, std::string_view prefix);

 private:
  std::array<Counter, kDropReasonCount> cells_{};
};

}  // namespace dnsguard::obs
