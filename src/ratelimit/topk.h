// Space-Saving top-k heavy-hitter tracker (Metwally et al.).
//
// Rate-Limiter1 "tracks the top requesters and limits the rate of cookie
// response to them" (§III.F). Tracking every source address seen during a
// spoofed flood would let the attacker exhaust guard memory, so the guard
// keeps only a bounded table of candidate heavy hitters with the classic
// Space-Saving guarantee: any key with true count > N/capacity is present,
// and each reported count overestimates by at most the minimum counter.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace dnsguard::ratelimit {

template <typename Key, typename Hash = std::hash<Key>>
class SpaceSaving {
 public:
  explicit SpaceSaving(std::size_t capacity) : capacity_(capacity) {}

  /// Records one occurrence of `key`; returns its (over)estimated count.
  std::uint64_t record(const Key& key) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      return bump(it->second);
    }
    if (entries_.size() < capacity_) {
      entries_.push_back(Entry{key, 1, 0});
      index_.emplace(key, entries_.size() - 1);
      return 1;
    }
    // Evict the minimum-count entry and inherit its count as error bound.
    std::size_t victim = min_index();
    Entry& e = entries_[victim];
    index_.erase(e.key);
    std::uint64_t inherited = e.count;
    e.key = key;
    e.error = inherited;
    e.count = inherited + 1;
    index_.emplace(key, victim);
    return e.count;
  }

  /// Estimated count for `key` (0 if not tracked).
  [[nodiscard]] std::uint64_t estimate(const Key& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? 0 : entries_[it->second].count;
  }

  /// Upper bound on the estimation error for `key` (0 if exact).
  [[nodiscard]] std::uint64_t error(const Key& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? 0 : entries_[it->second].error;
  }

  [[nodiscard]] bool contains(const Key& key) const {
    return index_.count(key) > 0;
  }

  struct Item {
    Key key;
    std::uint64_t count;
    std::uint64_t error;
  };

  /// The tracked items, highest count first.
  [[nodiscard]] std::vector<Item> top() const {
    std::vector<Item> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(Item{e.key, e.count, e.error});
    std::sort(out.begin(), out.end(),
              [](const Item& a, const Item& b) { return a.count > b.count; });
    return out;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear() {
    entries_.clear();
    index_.clear();
  }

 private:
  struct Entry {
    Key key;
    std::uint64_t count;
    std::uint64_t error;
  };

  std::uint64_t bump(std::size_t i) { return ++entries_[i].count; }

  std::size_t min_index() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].count < entries_[best].count) best = i;
    }
    return best;
  }

  std::size_t capacity_;
  std::vector<Entry> entries_;
  // DNSGUARD_LINT_ALLOW(bounded): SpaceSaving is capacity-capped by
  // construction — the index only ever holds the fixed monitored set,
  // recycling the minimum-count entry when full
  std::unordered_map<Key, std::size_t, Hash> index_;
};

}  // namespace dnsguard::ratelimit
