#include "ratelimit/token_bucket.h"

#include <algorithm>
#include <cmath>

namespace dnsguard::ratelimit {

void TokenBucket::refill(SimTime now) {
  if (now <= last_) return;
  double elapsed = (now - last_).seconds();
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  last_ = now;
}

void TokenBucket::set_rate(double rate_per_sec, SimTime now) {
  refill(now);  // settle the elapsed window under the old rate
  rate_ = rate_per_sec;
  if (tokens_ > burst_) tokens_ = burst_;
}

bool TokenBucket::try_consume(SimTime now, double cost) {
  refill(now);
  if (tokens_ + 1e-12 < cost) return false;
  tokens_ -= cost;
  return true;
}

double TokenBucket::available(SimTime now) {
  refill(now);
  return tokens_;
}

// Exponential impulse-train estimator: each event contributes 1/tau to the
// estimate and the estimate decays as exp(-dt/tau). For a steady stream of
// rate r with r*tau >> 1 the estimate converges to ~r.
double RateEstimator::decay(SimDuration elapsed) const {
  if (elapsed.ns <= 0) return 1.0;
  double tau = half_life_.seconds() / std::log(2.0);
  return std::exp(-elapsed.seconds() / tau);
}

void RateEstimator::record(SimTime now, double count) {
  double tau = half_life_.seconds() / std::log(2.0);
  if (!primed_) {
    value_ = count / tau;
    last_ = now;
    primed_ = true;
    return;
  }
  value_ = value_ * decay(now - last_) + count / tau;
  last_ = now;
}

double RateEstimator::rate(SimTime now) const {
  if (!primed_) return 0.0;
  return value_ * decay(now - last_);
}

}  // namespace dnsguard::ratelimit
