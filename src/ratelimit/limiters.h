// The DNS guard's two rate limiters (Fig. 4).
//
// Rate-Limiter1 sits on the *cookie response* path: before the guard sends
// any unverified requester a cookie (or a fabricated referral / truncation
// reply), the response must pass this limiter. It tracks top requesters
// with a Space-Saving sketch and throttles per-address cookie responses,
// so an attacker cannot use the guard itself as a traffic reflector
// toward a spoofed victim.
//
// Rate-Limiter2 sits on the *validated request* path: requests whose
// cookie checked out are real, so per-source-address token buckets can
// fairly cap each requester at a nominal rate — the defense against
// non-spoofed (zombie/botnet) floods and against cookie-probing (§III.G).
#pragma once

#include <cstdint>
#include <memory>

#include "common/bounded_table.h"
#include "common/time.h"
#include "net/ipv4.h"
#include "obs/metrics.h"
#include "ratelimit/token_bucket.h"
#include "ratelimit/topk.h"

namespace dnsguard::ratelimit {

/// Counter cells so a limiter's tallies can be attached directly to a
/// MetricsRegistry (e.g. "guard.rl1.throttled") without copying.
struct LimiterStats {
  obs::Counter allowed;
  obs::Counter throttled;

  void bind(obs::MetricsRegistry& registry, std::string_view prefix) {
    std::string p(prefix);
    registry.attach_counter(p + ".allowed", allowed);
    registry.attach_counter(p + ".throttled", throttled);
  }
};

/// Rate-Limiter1: caps cookie responses per destination address.
class CookieResponseLimiter {
 public:
  struct Config {
    /// Cookie responses allowed per second per tracked top requester.
    double per_address_rate = 100.0;
    double per_address_burst = 20.0;
    /// How many requester addresses the heavy-hitter sketch tracks.
    std::size_t tracker_capacity = 1024;
    /// Addresses below this request count are never throttled — only the
    /// *top* requesters are limited (paper: "tracks the top requesters").
    std::uint64_t heavy_hitter_threshold = 32;
    /// Cap on tracked per-address buckets. Spoofed-source floods used to
    /// grow this map without bound; now the LRU bucket is recycled at
    /// capacity and idle buckets are reaped.
    std::size_t max_buckets = 4096;
    SimDuration bucket_idle_timeout = seconds(10);
  };

  explicit CookieResponseLimiter(Config config)
      : config_(config), buckets_(bucket_config(config)) {
    reset();
  }
  CookieResponseLimiter() : CookieResponseLimiter(Config{}) {}

  /// Should a cookie response toward `requester` be sent at `now`?
  bool allow(net::Ipv4Address requester, SimTime now);

  /// Warms the per-address bucket line for `requester` (shard batch
  /// pre-pass); no stats or LRU effect.
  void prefetch(net::Ipv4Address requester) const {
    buckets_.prefetch(requester);
  }

  [[nodiscard]] const LimiterStats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::size_t tracked_buckets() const {
    return buckets_.size();
  }
  [[nodiscard]] const common::BoundedTableStats& table_stats() const {
    return buckets_.stats();
  }
  void bind_metrics(obs::MetricsRegistry& registry, std::string_view prefix) {
    stats_.bind(registry, prefix);
    buckets_.bind_metrics(registry, std::string(prefix) + ".table");
  }
  void reset();

 private:
  static common::BoundedTable<net::Ipv4Address, TokenBucket>::Config
  bucket_config(const Config& c) {
    return {.capacity = c.max_buckets,
            .idle_timeout = c.bucket_idle_timeout,
            .evict_lru_when_full = true};
  }

  Config config_;
  std::unique_ptr<SpaceSaving<net::Ipv4Address>> tracker_;
  common::BoundedTable<net::Ipv4Address, TokenBucket> buckets_;
  LimiterStats stats_;
};

/// Rate-Limiter2: caps validated (non-spoofed) per-host request rates.
class VerifiedRequestLimiter {
 public:
  struct Config {
    /// Nominal per-host request rate (paper: "usually very low").
    double per_host_rate = 200.0;
    double per_host_burst = 50.0;
    /// Bound on the number of per-host buckets kept (validated hosts are
    /// real, so this table cannot be inflated by spoofing).
    std::size_t max_hosts = 65536;
    /// Hosts idle this long are recycled, so a full table of departed
    /// clients does not lock out new ones forever.
    SimDuration host_idle_timeout = seconds(60);
  };

  explicit VerifiedRequestLimiter(Config config)
      : config_(config), buckets_(bucket_config(config)) {}
  VerifiedRequestLimiter() : VerifiedRequestLimiter(Config{}) {}

  /// Should a validated request from `host` be forwarded at `now`?
  bool allow(net::Ipv4Address host, SimTime now);

  /// Warms the per-host bucket line for `host` (shard batch pre-pass).
  void prefetch(net::Ipv4Address host) const { buckets_.prefetch(host); }

  [[nodiscard]] const LimiterStats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const common::BoundedTableStats& table_stats() const {
    return buckets_.stats();
  }
  void bind_metrics(obs::MetricsRegistry& registry, std::string_view prefix) {
    stats_.bind(registry, prefix);
    buckets_.bind_metrics(registry, std::string(prefix) + ".table");
  }
  [[nodiscard]] std::size_t tracked_hosts() const { return buckets_.size(); }
  void reset() {
    buckets_.clear();
    stats_ = LimiterStats{};
  }

 private:
  static common::BoundedTable<net::Ipv4Address, TokenBucket>::Config
  bucket_config(const Config& c) {
    // Refuse new hosts at the cap rather than evict active ones (§III.G):
    // every entry here represents a *verified* requester.
    return {.capacity = c.max_hosts,
            .idle_timeout = c.host_idle_timeout,
            .evict_lru_when_full = false};
  }

  Config config_;
  common::BoundedTable<net::Ipv4Address, TokenBucket> buckets_;
  LimiterStats stats_;
};

}  // namespace dnsguard::ratelimit
