#include "ratelimit/limiters.h"

namespace dnsguard::ratelimit {

void CookieResponseLimiter::reset() {
  tracker_ = std::make_unique<SpaceSaving<net::Ipv4Address>>(
      config_.tracker_capacity);
  buckets_.clear();
  stats_ = LimiterStats{};
}

bool CookieResponseLimiter::allow(net::Ipv4Address requester, SimTime now) {
  std::uint64_t count = tracker_->record(requester);
  if (count < config_.heavy_hitter_threshold) {
    // Light requesters are never throttled: a legitimate LRS fetching a
    // cookie once per TTL stays far below the threshold.
    stats_.allowed++;
    return true;
  }
  auto it = buckets_.find(requester);
  if (it == buckets_.end()) {
    it = buckets_
             .emplace(requester, TokenBucket(config_.per_address_rate,
                                             config_.per_address_burst))
             .first;
  }
  if (it->second.try_consume(now)) {
    stats_.allowed++;
    return true;
  }
  stats_.throttled++;
  return false;
}

bool VerifiedRequestLimiter::allow(net::Ipv4Address host, SimTime now) {
  auto it = buckets_.find(host);
  if (it == buckets_.end()) {
    if (buckets_.size() >= config_.max_hosts) {
      // Table full: refuse new hosts rather than evict active ones. This
      // only triggers with more *validated* distinct hosts than the cap,
      // which spoofing cannot cause.
      stats_.throttled++;
      return false;
    }
    it = buckets_
             .emplace(host, TokenBucket(config_.per_host_rate,
                                        config_.per_host_burst))
             .first;
  }
  if (it->second.try_consume(now)) {
    stats_.allowed++;
    return true;
  }
  stats_.throttled++;
  return false;
}

}  // namespace dnsguard::ratelimit
