#include "ratelimit/limiters.h"

#include "obs/profiler.h"

namespace dnsguard::ratelimit {

void CookieResponseLimiter::reset() {
  tracker_ = std::make_unique<SpaceSaving<net::Ipv4Address>>(
      config_.tracker_capacity);
  buckets_.clear();
  stats_ = LimiterStats{};
}

bool CookieResponseLimiter::allow(net::Ipv4Address requester, SimTime now) {
  DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardRl1);
  std::uint64_t count = tracker_->record(requester);
  if (count < config_.heavy_hitter_threshold) {
    // Light requesters are never throttled: a legitimate LRS fetching a
    // cookie once per TTL stays far below the threshold.
    stats_.allowed++;
    return true;
  }
  buckets_.reap(now, 4);
  auto r = buckets_.try_emplace(requester, now,
                                TokenBucket(config_.per_address_rate,
                                            config_.per_address_burst));
  // The table LRU-evicts at capacity, so the insert always lands; an
  // attacker cycling through spoofed heavy hitters only recycles bucket
  // slots, it cannot grow the map.
  if (r.value->try_consume(now)) {
    stats_.allowed++;
    return true;
  }
  // DNSGUARD_LINT_ALLOW(drop): allow() is a decision point, not a drop
  // site — the guard charges kRateLimited1 when it acts on the false
  stats_.throttled++;
  return false;
}

bool VerifiedRequestLimiter::allow(net::Ipv4Address host, SimTime now) {
  DNSGUARD_PROF_SCOPE(obs::prof::Stage::kGuardRl2);
  buckets_.reap(now, 4);
  auto r = buckets_.try_emplace(host, now,
                                TokenBucket(config_.per_host_rate,
                                            config_.per_host_burst));
  if (r.value == nullptr) {
    // Table full: refuse new hosts rather than evict active ones. This
    // only triggers with more *validated* distinct hosts than the cap,
    // which spoofing cannot cause; idle hosts are reaped so departed
    // clients free their slots.
    // DNSGUARD_LINT_ALLOW(drop): decision point — the caller charges
    // kRateLimited2 when it drops on the false
    stats_.throttled++;
    return false;
  }
  if (r.value->try_consume(now)) {
    stats_.allowed++;
    return true;
  }
  // DNSGUARD_LINT_ALLOW(drop): decision point — the caller charges
  // kRateLimited2 when it drops on the false
  stats_.throttled++;
  return false;
}

}  // namespace dnsguard::ratelimit
