// Token bucket — the primitive behind both of the DNS guard's limiters
// (§III.F) and the TCP proxy's per-client connection throttle (§III.C).
#pragma once

#include <cstdint>

#include "common/time.h"

namespace dnsguard::ratelimit {

class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue per second up to `burst` capacity; the
  /// bucket starts full.
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  /// Tries to take `cost` tokens at time `now`. Returns true on success.
  bool try_consume(SimTime now, double cost = 1.0);

  /// Tokens currently available (after refill to `now`).
  [[nodiscard]] double available(SimTime now);

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double burst() const { return burst_; }

  /// Changes the accrual rate at `now`. Tokens earned since the last
  /// refill are settled under the *old* rate first — swapping `rate_`
  /// without refilling retroactively re-priced the elapsed window, so a
  /// mid-window rate cut confiscated already-earned tokens (and a raise
  /// granted tokens the old rate never accrued). Settled tokens are
  /// clamped to `burst_` as everywhere else.
  void set_rate(double rate_per_sec, SimTime now);

 private:
  void refill(SimTime now);

  double rate_;
  double burst_;
  double tokens_;
  SimTime last_{};
};

/// Exponentially-weighted rate estimator: tracks an arrival rate in
/// events/sec. The DNS guard uses this to decide when the incoming request
/// rate exceeds the protection-activation threshold (§IV.C: spoof detection
/// kicks in only above ~ANS capacity).
class RateEstimator {
 public:
  /// `half_life` controls smoothing: weight of past traffic halves every
  /// half_life of simulated time.
  explicit RateEstimator(SimDuration half_life = milliseconds(250))
      : half_life_(half_life) {}

  void record(SimTime now, double count = 1.0);

  /// Current estimated rate (events/sec) as of `now`.
  [[nodiscard]] double rate(SimTime now) const;

 private:
  [[nodiscard]] double decay(SimDuration elapsed) const;

  SimDuration half_life_;
  double value_ = 0.0;  // smoothed events per second
  SimTime last_{};
  bool primed_ = false;
};

}  // namespace dnsguard::ratelimit
