// IPv4 address and socket-address value types.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace dnsguard::net {

/// An IPv4 address held in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order)
      : addr_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : addr_((static_cast<std::uint32_t>(a) << 24) |
              (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) | d) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return addr_; }
  [[nodiscard]] std::string to_string() const;

  /// Parses dotted-quad "a.b.c.d"; nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view s);

  /// True iff this address lies inside `prefix`/`prefix_len`.
  [[nodiscard]] constexpr bool in_subnet(Ipv4Address prefix,
                                         int prefix_len) const {
    if (prefix_len <= 0) return true;
    if (prefix_len >= 32) return addr_ == prefix.addr_;
    std::uint32_t mask = ~0u << (32 - prefix_len);
    return (addr_ & mask) == (prefix.addr_ & mask);
  }

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t addr_ = 0;
};

/// (address, port) pair.
struct SocketAddr {
  Ipv4Address ip;
  std::uint16_t port = 0;

  constexpr auto operator<=>(const SocketAddr&) const = default;
  [[nodiscard]] std::string to_string() const;
};

inline constexpr std::uint16_t kDnsPort = 53;

}  // namespace dnsguard::net

template <>
struct std::hash<dnsguard::net::Ipv4Address> {
  std::size_t operator()(const dnsguard::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<dnsguard::net::SocketAddr> {
  std::size_t operator()(const dnsguard::net::SocketAddr& a) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(a.ip.value()) << 16) | a.port);
  }
};
